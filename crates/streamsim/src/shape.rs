//! Cost formulas for the KPM device kernels.
//!
//! Kernels declare launch-wide [`KernelCost`]s built from these formulas;
//! the same formulas also price *hypothetical* launches at the paper's full
//! parameter scale without executing them (the figure reproductions — see
//! DESIGN.md §2 on why full-scale functional execution is infeasible here).
//! This module lives in the simulator crate (it moved here from
//! `kpm-stream`) so the command-queue pipeline ([`crate::queue`]) and the
//! `kpm::device` backends can price launches without a dependency cycle;
//! `kpm-stream` re-exports everything at its old paths.
//!
//! Traffic reasoning (derivations in DESIGN.md §5):
//!
//! * **Per-realization vectors** stream once per iteration: read `r_0`,
//!   `r_{n}`, `r_{n+1}`, write `r_{n+2}` → `4 D * 8` bytes, at the
//!   coalescing factor determined by mapping × layout.
//! * **The matrix** is shared by all realizations. If it fits the device's
//!   L2, DRAM sees it once per iteration; otherwise every active SM streams
//!   it independently (`min(num_sms, blocks)` replay).
//! * **Source-vector gathers** inside the matvec re-read each realization's
//!   `x` once per stored entry (dense: `D` times). They hit DRAM whenever
//!   the ensemble of `x` vectors exceeds L2 — for the paper's parameters it
//!   always does.

use crate::kernel::KernelCost;
use crate::layout::{Mapping, VectorLayout};
use crate::model::{GpuSpec, SimTime};

/// Floating-point precision of a hypothetical run.
///
/// The paper computes in double precision throughout; the single-precision
/// variant exists for the precision ablation (Fermi runs SP at 2x the DP
/// rate and every word halves, so the model predicts roughly 2x for
/// compute-bound shapes and more for bandwidth-bound ones).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Precision {
    /// 8-byte IEEE double (the paper's choice).
    #[default]
    Double,
    /// 4-byte IEEE single.
    Single,
}

impl Precision {
    /// Bytes per floating-point word.
    pub fn word_bytes(&self) -> u64 {
        match self {
            Precision::Double => 8,
            Precision::Single => 4,
        }
    }
}

/// Sparse storage format of a priced launch.
///
/// The formats process the same coefficients but stream different bytes:
/// CSR pays a row-pointer traversal on top of the per-entry gather, ELL
/// streams its (padded) slots contiguously with no row pointers, and the
/// stencil regenerates the pattern in registers so the matrix costs no
/// DRAM traffic at all. Callers pricing an ELL launch must pass the
/// *padded* slot count (`model_entries`), not the true `nnz`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SparseFormat {
    /// Compressed sparse row — the paper's CRS format.
    #[default]
    Csr,
    /// Padded slot-major ELLPACK.
    Ell,
    /// Matrix-free lattice stencil.
    Stencil,
}

/// Shape of one *moment-generation* launch (the paper's Fig. 4a kernel:
/// RNG init + the full `N`-iteration recursion + per-realization dots).
#[derive(Debug, Clone, Copy)]
pub struct MomentLaunchShape {
    /// Operator dimension `D` (`H_SIZE`).
    pub dim: usize,
    /// Coefficient slots the kernel processes per sweep (dense `D^2`,
    /// paper's lattice `7 D`; for ELL this is the padded slot count).
    pub stored_entries: usize,
    /// Whether the matrix is stored dense.
    pub dense: bool,
    /// Sparse storage format (ignored when `dense`).
    pub format: SparseFormat,
    /// Moments `N`.
    pub num_moments: usize,
    /// Total realizations `S * R`.
    pub realizations: usize,
    /// Work mapping.
    pub mapping: Mapping,
    /// Vector layout.
    pub layout: VectorLayout,
    /// Threads per block (the paper's `BLOCK_SIZE`).
    pub block_size: usize,
    /// Arithmetic precision (the paper: double).
    pub precision: Precision,
}

impl MomentLaunchShape {
    /// Thread blocks in the launch grid.
    pub fn grid_blocks(&self) -> usize {
        match self.mapping {
            // Paper: "the number of thread blocks becomes RS / BLOCK_SIZE".
            Mapping::ThreadPerRealization => self.realizations.div_ceil(self.block_size),
            Mapping::BlockPerRealization => self.realizations,
        }
    }

    /// Double-precision operations of the launch:
    /// `S*R * [rng + (N-1) * 2*stored + N * 4D]`.
    pub fn flops(&self) -> u64 {
        let d = self.dim as u64;
        let n = self.num_moments as u64;
        let per_real = 10 * d + (n - 1) * 2 * self.stored_entries as u64 + n * 4 * d;
        self.realizations as u64 * per_real
    }

    /// Matrix bytes per full sweep.
    ///
    /// * dense — values only;
    /// * CSR — values + 4-byte column indices + 8-byte row pointers (the
    ///   pointer chase that makes CSR loads a gather);
    /// * ELL — values + column indices for every *padded* slot, streamed
    ///   contiguously with no row pointers;
    /// * stencil — zero: the pattern lives in registers, nothing is stored.
    pub fn matrix_bytes(&self) -> u64 {
        let e = self.stored_entries as u64;
        let w = self.precision.word_bytes();
        if self.dense {
            w * e
        } else {
            match self.format {
                SparseFormat::Csr => (w + 4) * e + 8 * (self.dim as u64 + 1),
                SparseFormat::Ell => (w + 4) * e,
                SparseFormat::Stencil => 0,
            }
        }
    }

    /// DRAM traffic of the launch in bytes (already divided into the
    /// coalesced-equivalent; the returned `KernelCost` carries the layout's
    /// coalescing factor separately).
    fn dram_traffic(&self, spec: &GpuSpec) -> (u64, u64) {
        let d = self.dim as u64;
        let n = self.num_moments as u64;
        let reals = self.realizations as u64;
        let w = self.precision.word_bytes();

        // Per-realization vector streams: 3 reads + 1 write per iteration,
        // plus the RNG writing r_0 and its copy.
        let vec_reads = reals * (n * 3 * w * d);
        let vec_writes = reals * (n * w * d + 2 * w * d);

        // Matrix re-reads: broadcast across realizations, replayed per SM
        // when it does not fit L2.
        let mbytes = self.matrix_bytes();
        let replay = if mbytes <= spec.l2_bytes as u64 {
            1
        } else {
            spec.num_sms.min(self.grid_blocks()).max(1) as u64
        };
        let matrix_reads = (n - 1) * mbytes * replay;

        // Source-vector gathers inside the matvec: `stored_entries` loads
        // of x per realization-iteration, from DRAM when the ensemble of x
        // vectors exceeds L2.
        let x_ensemble = reals * w * d;
        let gather_reads = if x_ensemble <= spec.l2_bytes as u64 {
            0
        } else {
            reals * (n - 1) * w * self.stored_entries as u64
        };

        (vec_reads + matrix_reads + gather_reads, vec_writes)
    }

    /// The declared cost of the generation launch on `spec`.
    pub fn kernel_cost(&self, spec: &GpuSpec) -> KernelCost {
        let (reads, writes) = self.dram_traffic(spec);
        let mut cost = KernelCost::new()
            .flops(self.flops())
            .global_read(reads)
            .global_write(writes)
            .coalescing(self.layout.coalescing(self.mapping))
            .single_precision(self.precision == Precision::Single);
        if self.mapping == Mapping::BlockPerRealization {
            // Tree reduction per dot product: ~2*BLOCK_SIZE shared accesses
            // and log2(BLOCK_SIZE) barriers per iteration.
            let n = self.num_moments as u64;
            cost = cost
                .shared(self.realizations as u64 * n * 2 * self.block_size as u64)
                .barriers(n * (self.block_size.next_power_of_two().trailing_zeros() as u64 + 1));
        }
        cost
    }

    /// Threads per block of the generation launch.
    pub fn threads_per_block(&self) -> usize {
        self.block_size
    }

    /// The reduction launch (Fig. 4b): `N` blocks, each summing
    /// `S*R` partial moments with a shared-memory tree.
    pub fn reduce_cost(&self) -> KernelCost {
        let n = self.num_moments as u64;
        let reals = self.realizations as u64;
        KernelCost::new()
            .flops(n * reals)
            .global_read(8 * n * reals)
            .global_write(8 * n)
            .shared(2 * n * reals)
            .barriers(self.block_size.next_power_of_two().trailing_zeros() as u64 + 1)
    }

    /// Device-global memory required, in bytes: four vectors per
    /// realization plus the `N x S*R` partial-moment buffer plus the
    /// matrix — the accounting of the paper's Sec. III-B-2.
    pub fn device_bytes(&self) -> u64 {
        let w = self.precision.word_bytes();
        let vectors = 4 * w * (self.dim * self.realizations) as u64;
        let partials = w * (self.num_moments * self.realizations) as u64;
        let reduced = w * self.num_moments as u64;
        vectors + partials + reduced + self.matrix_bytes()
    }

    /// Prices the full run on `spec` **without executing anything**:
    /// setup + host→device matrix transfer + generation launch + reduce
    /// launch + moments readback.
    ///
    /// This closed-form entry point is retired: it is now a shim over the
    /// overlap-disabled command-queue pipeline, whose strict-chain makespan
    /// reproduces the analytic sum bit-for-bit. New callers should build a
    /// [`crate::queue::MomentRunPlan`] (or go through `kpm::device::SimDevice`)
    /// to control overlap, chunking, and device count explicitly.
    #[deprecated(
        since = "0.7.0",
        note = "route through queue::MomentRunPlan (or kpm::device::SimDevice); \
                the overlap-off pipeline reproduces this sum exactly"
    )]
    pub fn estimate_total(&self, spec: &GpuSpec, compute_efficiency: f64) -> SimTime {
        crate::queue::MomentRunPlan::new(*self).with_overlap(false).total(spec, compute_efficiency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::MomentRunPlan;

    fn paper_fig5(n: usize) -> MomentLaunchShape {
        MomentLaunchShape {
            dim: 1000,
            stored_entries: 7000,
            dense: false,
            format: SparseFormat::Csr,
            num_moments: n,
            realizations: 1792,
            mapping: Mapping::ThreadPerRealization,
            layout: VectorLayout::Interleaved,
            block_size: 128,
            precision: Precision::Double,
        }
    }

    fn paper_fig8(d: usize) -> MomentLaunchShape {
        MomentLaunchShape {
            dim: d,
            stored_entries: d * d,
            dense: true,
            format: SparseFormat::Csr,
            num_moments: 128,
            realizations: 1792,
            mapping: Mapping::ThreadPerRealization,
            layout: VectorLayout::Interleaved,
            block_size: 128,
            precision: Precision::Double,
        }
    }

    /// Pipeline-priced total (overlap off), the successor of the retired
    /// `estimate_total`.
    fn total(shape: &MomentLaunchShape, spec: &GpuSpec, eff: f64) -> f64 {
        MomentRunPlan::new(*shape).with_overlap(false).total(spec, eff).as_secs_f64()
    }

    #[test]
    fn paper_grid_formula() {
        // RS / BLOCK_SIZE = 1792 / 128 = 14 blocks — exactly one per SM of
        // the C2050, surely not a coincidence in the original experiment.
        assert_eq!(paper_fig5(128).grid_blocks(), 14);
        let block_mapped =
            MomentLaunchShape { mapping: Mapping::BlockPerRealization, ..paper_fig5(128) };
        assert_eq!(block_mapped.grid_blocks(), 1792);
    }

    #[test]
    fn flops_scale_linearly_in_n_and_realizations() {
        let f1 = paper_fig5(128).flops() as f64;
        let f2 = paper_fig5(256).flops() as f64;
        assert!((f2 / f1 - 2.0).abs() < 0.03);
        let mut half = paper_fig5(128);
        half.realizations = 896;
        assert_eq!(half.flops() * 2, paper_fig5(128).flops());
    }

    #[test]
    fn sparse_matrix_bytes_include_indices() {
        let s = paper_fig5(128);
        assert_eq!(s.matrix_bytes(), 12 * 7000 + 8 * 1001);
        assert_eq!(paper_fig8(512).matrix_bytes(), 8 * 512 * 512);
    }

    #[test]
    fn format_traffic_orders_stencil_below_ell_below_csr() {
        let spec = GpuSpec::tesla_c2050();
        // Paper lattice: 7 entries in every row, so ELL pads nothing and
        // its only saving over CSR is the row-pointer stream.
        let csr = paper_fig5(512);
        let ell = MomentLaunchShape { format: SparseFormat::Ell, ..csr };
        let stencil = MomentLaunchShape { format: SparseFormat::Stencil, ..csr };
        assert_eq!(csr.matrix_bytes(), 12 * 7000 + 8 * 1001);
        assert_eq!(ell.matrix_bytes(), 12 * 7000);
        assert_eq!(stencil.matrix_bytes(), 0);
        let t = |s: &MomentLaunchShape| total(s, &spec, 0.2);
        assert!(t(&stencil) < t(&ell), "stencil must beat ELL");
        assert!(t(&ell) < t(&csr), "ELL must beat CSR");
        // Same arithmetic regardless of storage.
        assert_eq!(csr.flops(), ell.flops());
        assert_eq!(csr.flops(), stencil.flops());
    }

    #[test]
    fn ell_padding_charges_extra_slots() {
        // A ragged matrix padded to width 12 at D = 1000 with true
        // nnz = 7000: the ELL shape must be priced at the padded slots.
        let csr = paper_fig5(512);
        let padded =
            MomentLaunchShape { format: SparseFormat::Ell, stored_entries: 12 * 1000, ..csr };
        assert_eq!(padded.matrix_bytes(), 12 * 12_000);
        assert!(padded.matrix_bytes() > csr.matrix_bytes());
    }

    #[test]
    fn device_bytes_match_paper_formula() {
        // Paper Sec. III-B-2: vectors cost 4 * H_SIZE * 8 bytes per
        // realization; partial moments N * 8 per realization.
        let s = paper_fig5(256);
        let expected_vectors = 4u64 * 8 * 1000 * 1792;
        let expected_partials = 8u64 * 256 * 1792;
        assert!(s.device_bytes() >= expected_vectors + expected_partials);
        // and it all fits the C2050's 3 GB.
        assert!(s.device_bytes() < 3 * 1024 * 1024 * 1024);
    }

    #[test]
    fn dense_large_matrix_triggers_replay_and_gather() {
        let spec = GpuSpec::tesla_c2050();
        let big = paper_fig8(4096);
        let small = paper_fig8(64);
        let big_cost = big.kernel_cost(&spec);
        let small_cost = small.kernel_cost(&spec);
        // Big: gather dominates — traffic ~ SR * (N-1) * D^2 * 8.
        let gather = 1792u64 * 127 * 8 * 4096 * 4096;
        assert!(big_cost.global_read_bytes > gather);
        // Small (64x64 = 32 KB fits L2; x ensemble 1792*512B = 0.9 MB > L2
        // still gathers, but matrix replays once).
        assert!(small_cost.global_read_bytes < big_cost.global_read_bytes / 1000);
    }

    #[test]
    fn uncoalesced_layout_multiplies_memory_time() {
        let spec = GpuSpec::tesla_c2050();
        let good = paper_fig5(512);
        let bad = MomentLaunchShape { layout: VectorLayout::Contiguous, ..good };
        let t_good = total(&good, &spec, 0.2);
        let t_bad = total(&bad, &spec, 0.2);
        assert!(t_bad > 2.0 * t_good, "naive layout must be much slower: {t_good} vs {t_bad}");
    }

    #[test]
    fn block_mapping_beats_paper_mapping_at_scale() {
        // More resident warps -> better occupancy -> faster compute-bound
        // runs. This is the crate's headline ablation.
        let spec = GpuSpec::tesla_c2050();
        let paper = paper_fig8(512);
        let improved = MomentLaunchShape {
            mapping: Mapping::BlockPerRealization,
            layout: VectorLayout::Contiguous,
            ..paper
        };
        let t_paper = total(&paper, &spec, 0.2);
        let t_improved = total(&improved, &spec, 0.2);
        assert!(
            t_improved < t_paper,
            "block-per-realization should win: {t_improved} vs {t_paper}"
        );
    }

    #[test]
    fn single_precision_roughly_doubles_throughput() {
        // SP halves every word and doubles the peak rate: compute-bound
        // shapes gain ~2x, bandwidth-bound ones at least that.
        let spec = GpuSpec::tesla_c2050();
        for base in [paper_fig5(1024), paper_fig8(1024)] {
            let sp = MomentLaunchShape { precision: Precision::Single, ..base };
            // Compare kernel-only times so fixed overheads don't dilute.
            let t_dp = spec
                .kernel_time(&base.kernel_cost(&spec), base.grid_blocks(), 128, 0.2)
                .as_secs_f64();
            let t_sp =
                spec.kernel_time(&sp.kernel_cost(&spec), sp.grid_blocks(), 128, 0.2).as_secs_f64();
            let gain = t_dp / t_sp;
            assert!((1.8..=2.6).contains(&gain), "SP gain should be ~2x, got {gain} for {base:?}");
        }
    }

    #[test]
    fn precision_word_sizes() {
        assert_eq!(Precision::Double.word_bytes(), 8);
        assert_eq!(Precision::Single.word_bytes(), 4);
        assert_eq!(Precision::default(), Precision::Double);
    }

    #[test]
    fn estimate_includes_setup_and_transfers() {
        let spec = GpuSpec::tesla_c2050();
        let t = total(&paper_fig5(128), &spec, 0.2);
        assert!(t > spec.setup_overhead.as_secs_f64());
    }

    /// Pins the deprecated shim: `estimate_total` and the overlap-off
    /// pipeline are the same number, bit for bit.
    #[test]
    #[allow(deprecated)]
    fn deprecated_estimate_total_matches_pipeline() {
        let spec = GpuSpec::tesla_c2050();
        for shape in [paper_fig5(128), paper_fig5(1024), paper_fig8(512)] {
            assert_eq!(shape.estimate_total(&spec, 0.2).as_secs_f64(), total(&shape, &spec, 0.2),);
        }
    }
}
