//! Simulator error type.

use std::fmt;

/// Errors raised by the device simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Device global memory exhausted.
    OutOfMemory {
        /// Bytes requested by the allocation.
        requested: usize,
        /// Bytes still available on the device.
        available: usize,
    },
    /// A buffer handle did not belong to this device or was already freed.
    InvalidBuffer,
    /// Host/device copy length did not match the buffer length.
    CopyLengthMismatch {
        /// Buffer length in elements.
        buffer: usize,
        /// Host slice length in elements.
        host: usize,
    },
    /// Launch configuration violates a device limit.
    InvalidLaunch(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::OutOfMemory { requested, available } => {
                write!(f, "device out of memory: requested {requested} B, {available} B free")
            }
            SimError::InvalidBuffer => write!(f, "invalid or stale device buffer handle"),
            SimError::CopyLengthMismatch { buffer, host } => {
                write!(f, "copy length mismatch: buffer holds {buffer} elements, host slice {host}")
            }
            SimError::InvalidLaunch(msg) => write!(f, "invalid launch configuration: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        assert!(SimError::OutOfMemory { requested: 10, available: 5 }.to_string().contains("10 B"));
        assert!(SimError::CopyLengthMismatch { buffer: 4, host: 3 }.to_string().contains('4'));
        assert!(SimError::InvalidLaunch("block too large".into())
            .to_string()
            .contains("block too large"));
    }
}
