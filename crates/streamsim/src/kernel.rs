//! Kernel authoring API: block-granular execution with CUDA semantics.
//!
//! A [`BlockKernel`] describes the work of **one thread block**. The
//! simulator executes blocks independently (possibly concurrently on host
//! threads), mirroring CUDA's guarantee that blocks are scheduled in
//! arbitrary order with no inter-block synchronization inside a launch.
//!
//! Within a block, the kernel author iterates [`BlockScope::threads`] for
//! each barrier-delimited phase. Writing
//!
//! ```text
//! for t in scope.threads() { /* phase 1: each thread's work */ }
//! scope.barrier();
//! for t in scope.threads() { /* phase 2 */ }
//! ```
//!
//! is the simulator's rendering of a CUDA kernel whose body is
//! `phase1(); __syncthreads(); phase2();` — sequential iteration over the
//! threads of a block makes every barrier trivially correct while keeping
//! the *algorithm* (e.g. a shared-memory tree reduction) structurally
//! identical to the CUDA original.
//!
//! Kernels also declare a [`KernelCost`] per launch; the performance layer
//! prices it on the modeled hardware. The scope counts actual global-memory
//! accesses so tests can cross-check declarations against reality.

use crate::dim::{Dim3, LaunchDims};
use crate::mem::{DeviceMemory, GlobalBuffer};
use std::cell::Cell;

/// Work and traffic declared by one kernel **launch** (all blocks together).
///
/// `flops` counts double-precision floating-point operations;
/// `global_read_bytes`/`global_write_bytes` count DRAM traffic assuming
/// perfect caching of repeated accesses *within* a block (the C2050 has an
/// L1/shared hierarchy; the `coalescing` factor scales effective bandwidth
/// for access-pattern inefficiency).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelCost {
    /// Double-precision floating point operations in the launch.
    pub flops: u64,
    /// Bytes read from global memory (post block-level caching).
    pub global_read_bytes: u64,
    /// Bytes written to global memory.
    pub global_write_bytes: u64,
    /// Shared-memory accesses (loads + stores).
    pub shared_accesses: u64,
    /// Block-wide barriers executed per block.
    pub barriers: u64,
    /// Fraction of peak memory bandwidth achieved by the access pattern
    /// (1.0 = fully coalesced, 32-wide contiguous warp accesses).
    pub coalescing: f64,
    /// `true` if the arithmetic runs in single precision (priced at the
    /// device's SP rate instead of DP). The paper uses double precision
    /// throughout; the SP path exists for the precision ablation.
    pub single_precision: bool,
}

impl KernelCost {
    /// Zero cost; chain builder methods to fill in components.
    pub fn new() -> Self {
        Self {
            flops: 0,
            global_read_bytes: 0,
            global_write_bytes: 0,
            shared_accesses: 0,
            barriers: 0,
            coalescing: 1.0,
            single_precision: false,
        }
    }

    /// Sets FLOP count.
    pub fn flops(mut self, n: u64) -> Self {
        self.flops = n;
        self
    }

    /// Sets global-memory read bytes.
    pub fn global_read(mut self, bytes: u64) -> Self {
        self.global_read_bytes = bytes;
        self
    }

    /// Sets global-memory write bytes.
    pub fn global_write(mut self, bytes: u64) -> Self {
        self.global_write_bytes = bytes;
        self
    }

    /// Sets shared-memory access count.
    pub fn shared(mut self, n: u64) -> Self {
        self.shared_accesses = n;
        self
    }

    /// Sets barrier count (per block).
    pub fn barriers(mut self, n: u64) -> Self {
        self.barriers = n;
        self
    }

    /// Sets the coalescing efficiency in `(0, 1]`.
    ///
    /// # Panics
    /// Panics if outside `(0, 1]`.
    pub fn coalescing(mut self, f: f64) -> Self {
        assert!(f > 0.0 && f <= 1.0, "coalescing factor must be in (0, 1]");
        self.coalescing = f;
        self
    }

    /// Marks the launch as single-precision arithmetic.
    pub fn single_precision(mut self, yes: bool) -> Self {
        self.single_precision = yes;
        self
    }

    /// Component-wise sum (keeps the worse coalescing factor).
    pub fn merge(&self, other: &KernelCost) -> KernelCost {
        KernelCost {
            flops: self.flops + other.flops,
            global_read_bytes: self.global_read_bytes + other.global_read_bytes,
            global_write_bytes: self.global_write_bytes + other.global_write_bytes,
            shared_accesses: self.shared_accesses + other.shared_accesses,
            barriers: self.barriers + other.barriers,
            coalescing: self.coalescing.min(other.coalescing),
            single_precision: self.single_precision && other.single_precision,
        }
    }
}

impl Default for KernelCost {
    fn default() -> Self {
        Self::new()
    }
}

/// A device kernel, expressed at thread-block granularity.
pub trait BlockKernel: Sync {
    /// Kernel name for launch records and diagnostics.
    fn name(&self) -> &'static str;

    /// Executes one thread block.
    fn execute(&self, scope: &mut BlockScope<'_>);

    /// Declares the cost of the whole launch with the given dimensions.
    fn cost(&self, dims: &LaunchDims) -> KernelCost;

    /// Shared memory (f64 words) requested per block. Default 0.
    fn shared_words(&self, _dims: &LaunchDims) -> usize {
        0
    }
}

/// Counters accumulated while a block executes (functional layer).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct AccessCounts {
    /// f64 loads from global memory.
    pub global_loads: u64,
    /// f64 stores to global memory.
    pub global_stores: u64,
    /// Shared-memory accesses.
    pub shared_accesses: u64,
    /// Barriers executed.
    pub barriers: u64,
}

/// Execution context handed to a kernel for one thread block.
pub struct BlockScope<'a> {
    mem: &'a DeviceMemory,
    block_idx: Dim3,
    dims: LaunchDims,
    shared: Vec<f64>,
    counts: Cell<AccessCounts>,
}

impl<'a> BlockScope<'a> {
    pub(crate) fn new(
        mem: &'a DeviceMemory,
        block_idx: Dim3,
        dims: LaunchDims,
        shared_words: usize,
    ) -> Self {
        Self { mem, block_idx, dims, shared: vec![0.0; shared_words], counts: Cell::default() }
    }

    /// This block's index within the grid (CUDA `blockIdx`).
    pub fn block_idx(&self) -> Dim3 {
        self.block_idx
    }

    /// Linearized block index.
    pub fn block_id(&self) -> usize {
        self.dims.grid.linearize(self.block_idx)
    }

    /// Threads per block (CUDA `blockDim`).
    pub fn block_dim(&self) -> Dim3 {
        self.dims.block
    }

    /// Grid extent (CUDA `gridDim`).
    pub fn grid_dim(&self) -> Dim3 {
        self.dims.grid
    }

    /// Iterates the thread indices of this block, x fastest — one
    /// barrier-delimited phase of the kernel body.
    pub fn threads(&self) -> impl Iterator<Item = Dim3> {
        let b = self.dims.block;
        (0..b.count()).map(move |lin| b.delinearize(lin))
    }

    /// The global (launch-wide) 1-D id of thread `t` in this block:
    /// `blockIdx.x * blockDim.x + threadIdx.x` generalized through
    /// linearization.
    pub fn global_thread_id(&self, t: Dim3) -> usize {
        self.block_id() * self.dims.block.count() + self.dims.block.linearize(t)
    }

    /// Records a block-wide barrier (CUDA `__syncthreads()`).
    ///
    /// Because threads of a block execute sequentially here, the barrier is
    /// a no-op functionally; it is counted so the cost layer and the
    /// declared [`KernelCost::barriers`] can be cross-checked.
    pub fn barrier(&self) {
        let mut c = self.counts.get();
        c.barriers += 1;
        self.counts.set(c);
    }

    /// A view over a global-memory buffer with access counting.
    pub fn global(&self, buf: GlobalBuffer) -> GlobalView<'_> {
        GlobalView { scope: self, buf }
    }

    /// Shared memory of this block (CUDA `__shared__`), as a raw slice.
    /// Accesses through this slice are *not* counted; prefer
    /// [`BlockScope::shared_load`]/[`BlockScope::shared_store`] in kernels.
    pub fn shared_raw(&mut self) -> &mut [f64] {
        &mut self.shared
    }

    /// Counted shared-memory load.
    ///
    /// # Panics
    /// Panics if `idx` exceeds the requested shared size.
    #[inline]
    pub fn shared_load(&self, idx: usize) -> f64 {
        let mut c = self.counts.get();
        c.shared_accesses += 1;
        self.counts.set(c);
        self.shared[idx]
    }

    /// Counted shared-memory store.
    ///
    /// # Panics
    /// Panics if `idx` exceeds the requested shared size.
    #[inline]
    pub fn shared_store(&mut self, idx: usize, v: f64) {
        let mut c = self.counts.get();
        c.shared_accesses += 1;
        self.counts.set(c);
        self.shared[idx] = v;
    }

    /// Access counters accumulated so far.
    pub fn counts(&self) -> AccessCounts {
        self.counts.get()
    }
}

/// Counted view over one global buffer.
pub struct GlobalView<'a> {
    scope: &'a BlockScope<'a>,
    buf: GlobalBuffer,
}

impl GlobalView<'_> {
    /// Buffer length in elements.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` if the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Loads element `idx`.
    ///
    /// # Panics
    /// Panics if `idx >= len`.
    #[inline]
    pub fn load(&self, idx: usize) -> f64 {
        assert!(idx < self.buf.len, "global load out of bounds");
        let mut c = self.scope.counts.get();
        c.global_loads += 1;
        self.scope.counts.set(c);
        self.scope.mem.load(self.buf.offset + idx)
    }

    /// Stores element `idx`.
    ///
    /// # Panics
    /// Panics if `idx >= len`.
    #[inline]
    pub fn store(&self, idx: usize, v: f64) {
        assert!(idx < self.buf.len, "global store out of bounds");
        let mut c = self.scope.counts.get();
        c.global_stores += 1;
        self.scope.counts.set(c);
        self.scope.mem.store(self.buf.offset + idx, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_builder_accumulates() {
        let c = KernelCost::new()
            .flops(100)
            .global_read(800)
            .global_write(80)
            .shared(10)
            .barriers(2)
            .coalescing(0.5);
        assert_eq!(c.flops, 100);
        assert_eq!(c.global_read_bytes, 800);
        assert_eq!(c.global_write_bytes, 80);
        assert_eq!(c.shared_accesses, 10);
        assert_eq!(c.barriers, 2);
        assert_eq!(c.coalescing, 0.5);
    }

    #[test]
    fn cost_merge_sums_and_keeps_worst_coalescing() {
        let a = KernelCost::new().flops(1).coalescing(0.9);
        let b = KernelCost::new().flops(2).global_read(8).coalescing(0.4);
        let m = a.merge(&b);
        assert_eq!(m.flops, 3);
        assert_eq!(m.global_read_bytes, 8);
        assert_eq!(m.coalescing, 0.4);
    }

    #[test]
    #[should_panic(expected = "coalescing factor")]
    fn coalescing_validated() {
        let _ = KernelCost::new().coalescing(0.0);
    }

    #[test]
    fn scope_thread_enumeration_and_ids() {
        let mem = DeviceMemory::new(1 << 10);
        let dims = LaunchDims::new(Dim3::x(4), Dim3::x(8));
        let scope = BlockScope::new(&mem, Dim3::x(2).delinearize_self(), dims, 0);
        let ids: Vec<usize> = scope.threads().map(|t| scope.global_thread_id(t)).collect();
        assert_eq!(ids, (16..24).collect::<Vec<_>>());
    }

    // Helper so the test above can build a block index succinctly.
    trait Delin {
        fn delinearize_self(self) -> Dim3;
    }
    impl Delin for Dim3 {
        fn delinearize_self(self) -> Dim3 {
            // For Dim3::x(n), the block index is just (n, 0, 0) clamped into
            // the grid — tests only use 1-D grids.
            Dim3 { x: self.x, y: 0, z: 0 }
        }
    }

    #[test]
    fn scope_counts_accesses() {
        let mut mem = DeviceMemory::new(1 << 10);
        let buf = mem.alloc(4).unwrap();
        let dims = LaunchDims::new(Dim3::x(1), Dim3::x(1));
        let mut scope = BlockScope::new(&mem, Dim3 { x: 0, y: 0, z: 0 }, dims, 2);
        {
            let v = scope.global(buf);
            v.store(0, 5.0);
            assert_eq!(v.load(0), 5.0);
        }
        scope.shared_store(0, 1.0);
        assert_eq!(scope.shared_load(0), 1.0);
        scope.barrier();
        let c = scope.counts();
        assert_eq!(c.global_loads, 1);
        assert_eq!(c.global_stores, 1);
        assert_eq!(c.shared_accesses, 2);
        assert_eq!(c.barriers, 1);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn global_view_bounds_checked() {
        let mut mem = DeviceMemory::new(1 << 10);
        let buf = mem.alloc(2).unwrap();
        let dims = LaunchDims::new(Dim3::x(1), Dim3::x(1));
        let scope = BlockScope::new(&mem, Dim3 { x: 0, y: 0, z: 0 }, dims, 0);
        let _ = scope.global(buf).load(2);
    }
}
