//! Asynchronous streams: modeling transfer/compute overlap.
//!
//! CUDA streams let transfers and kernels from different streams overlap;
//! the paper's host code is synchronous (one implicit stream). This module
//! prices a DAG of operations under both disciplines so the harness can
//! ask "would streams have helped?" — a natural follow-up to the paper's
//! overhead-dominated small-`N` regime.
//!
//! The model is a classic list-schedule over three resources: the
//! host→device link, the device→host link (full duplex PCIe), and the
//! compute engine. Operations within one stream are serialized; operations
//! in different streams may overlap as long as their resources differ.

use crate::model::SimTime;

/// What resource an operation occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Host-to-device transfer.
    CopyIn,
    /// Kernel execution.
    Kernel,
    /// Device-to-host transfer.
    CopyOut,
}

/// One operation in a stream program.
#[derive(Debug, Clone, Copy)]
pub struct StreamOp {
    /// Which stream the operation is enqueued on.
    pub stream: usize,
    /// Resource class.
    pub kind: OpKind,
    /// Duration (from the device model's pricing).
    pub duration: SimTime,
}

/// Result of scheduling a stream program.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Schedule {
    /// Makespan with every operation serialized (the paper's synchronous
    /// host code; also what a single stream gives).
    pub serial: SimTime,
    /// Makespan with per-resource overlap across streams.
    pub overlapped: SimTime,
}

impl Schedule {
    /// `serial / overlapped` — the benefit streams would buy.
    pub fn speedup(&self) -> f64 {
        self.serial.as_secs_f64() / self.overlapped.as_secs_f64().max(f64::MIN_POSITIVE)
    }
}

/// Schedules a program of stream operations.
///
/// Within each stream, operations run in the order given; across streams,
/// operations overlap unless they contend for the same resource (each of
/// the three resources processes one operation at a time, FIFO in enqueue
/// order — a faithful simplification of the copy/compute engines).
///
/// Retired in favour of the discrete-event [`crate::queue::DevicePipeline`],
/// which models explicit per-engine command queues with event dependencies
/// instead of a closed-form list schedule. This module stays as the
/// duplex-PCIe (separate in/out links) variant pinned by its tests.
#[deprecated(
    since = "0.7.0",
    note = "use queue::DevicePipeline / queue::MomentRunPlan; this list-schedule \
            model is retained only for the duplex-link comparison"
)]
pub fn schedule(ops: &[StreamOp]) -> Schedule {
    let serial = SimTime(ops.iter().map(|o| o.duration.0).sum());

    // Earliest-start list schedule: track per-stream and per-resource
    // availability times.
    let num_streams = ops.iter().map(|o| o.stream).max().map_or(0, |m| m + 1);
    let mut stream_free = vec![0.0f64; num_streams];
    let mut resource_free = [0.0f64; 3];
    let mut makespan = 0.0f64;
    for op in ops {
        let res = op.kind as usize;
        let start = stream_free[op.stream].max(resource_free[res]);
        let end = start + op.duration.0;
        stream_free[op.stream] = end;
        resource_free[res] = end;
        makespan = makespan.max(end);
    }
    Schedule { serial, overlapped: SimTime(makespan) }
}

/// Convenience: the canonical chunked pipeline `copy-in -> kernel ->
/// copy-out` split into `chunks` equal parts across `chunks` streams —
/// the standard CUDA overlap pattern.
#[deprecated(
    since = "0.7.0",
    note = "use queue::MomentRunPlan with overlap enabled; this helper models a \
            duplex PCIe link and is retained only for comparison"
)]
#[allow(deprecated)]
pub fn chunked_pipeline(
    copy_in: SimTime,
    kernel: SimTime,
    copy_out: SimTime,
    chunks: usize,
) -> Schedule {
    assert!(chunks > 0, "need at least one chunk");
    let n = chunks as f64;
    let mut ops = Vec::with_capacity(3 * chunks);
    for c in 0..chunks {
        ops.push(StreamOp { stream: c, kind: OpKind::CopyIn, duration: SimTime(copy_in.0 / n) });
        ops.push(StreamOp { stream: c, kind: OpKind::Kernel, duration: SimTime(kernel.0 / n) });
        ops.push(StreamOp { stream: c, kind: OpKind::CopyOut, duration: SimTime(copy_out.0 / n) });
    }
    // Interleave by enqueue order: c0 in, c1 in, ..., c0 kernel, ... — the
    // host enqueues chunk-major, but FIFO resources already produce the
    // pipeline; enqueue order above (stream-major) is what a simple loop
    // over streams issues and schedules identically here.
    schedule(&ops)
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime(s)
    }

    #[test]
    fn single_stream_serializes() {
        let ops = [
            StreamOp { stream: 0, kind: OpKind::CopyIn, duration: t(1.0) },
            StreamOp { stream: 0, kind: OpKind::Kernel, duration: t(2.0) },
            StreamOp { stream: 0, kind: OpKind::CopyOut, duration: t(0.5) },
        ];
        let s = schedule(&ops);
        assert_eq!(s.serial.0, 3.5);
        assert_eq!(s.overlapped.0, 3.5, "one stream cannot overlap itself");
        assert!((s.speedup() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn independent_streams_overlap_different_resources() {
        // Stream 0 computes while stream 1 transfers.
        let ops = [
            StreamOp { stream: 0, kind: OpKind::Kernel, duration: t(2.0) },
            StreamOp { stream: 1, kind: OpKind::CopyIn, duration: t(2.0) },
        ];
        let s = schedule(&ops);
        assert_eq!(s.serial.0, 4.0);
        assert_eq!(s.overlapped.0, 2.0);
    }

    #[test]
    fn same_resource_still_serializes_across_streams() {
        let ops = [
            StreamOp { stream: 0, kind: OpKind::Kernel, duration: t(2.0) },
            StreamOp { stream: 1, kind: OpKind::Kernel, duration: t(2.0) },
        ];
        let s = schedule(&ops);
        assert_eq!(s.overlapped.0, 4.0, "one compute engine");
    }

    #[test]
    fn chunked_pipeline_approaches_bottleneck_bound() {
        // Perfectly balanced stages: with many chunks the makespan tends to
        // the bottleneck stage time (plus pipeline fill).
        let s1 = chunked_pipeline(t(1.0), t(1.0), t(1.0), 1);
        assert_eq!(s1.overlapped.0, 3.0);
        let s8 = chunked_pipeline(t(1.0), t(1.0), t(1.0), 8);
        // Bound: max stage (1.0) + fill (2 chunks of 1/8 each).
        assert!((s8.overlapped.0 - 1.25).abs() < 1e-12, "{}", s8.overlapped.0);
        assert!(s8.speedup() > 2.0);
    }

    #[test]
    fn kernel_dominated_pipeline_gains_little() {
        // The paper's Fig. 5 regime: kernel >> transfers. Streams buy ~nothing.
        let s = chunked_pipeline(t(0.02), t(1.5), t(0.001), 4);
        assert!(s.speedup() < 1.05, "speedup {}", s.speedup());
    }

    #[test]
    fn transfer_bound_pipeline_gains_toward_2x_with_duplex() {
        // copy-in ~ kernel, copy-out tiny: in and kernel overlap.
        let s = chunked_pipeline(t(1.0), t(1.0), t(0.0), 16);
        assert!(s.speedup() > 1.8, "speedup {}", s.speedup());
    }

    #[test]
    fn empty_program() {
        let s = schedule(&[]);
        assert_eq!(s.serial, SimTime::ZERO);
        assert_eq!(s.overlapped, SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "at least one chunk")]
    fn zero_chunks_rejected() {
        let _ = chunked_pipeline(t(1.0), t(1.0), t(1.0), 0);
    }
}
