//! Command-queue device pipeline: a discrete-event replacement for the
//! closed-form run pricing.
//!
//! The analytic estimate (`setup + upload + generation + reduction +
//! download`, see [`MomentLaunchShape::estimate_total`]) cannot express
//! transfer/compute **overlap**, multi-stream concurrency, or multi-device
//! scaling — the axes that shape real stream-computing performance. This
//! module models a device the way the hardware works instead: commands are
//! submitted to per-engine FIFO queues and consumed by three independent
//! engines —
//!
//! * `dma` — host↔device transfers (one engine: half-duplex PCIe),
//! * `compute` — kernel launches,
//! * `reduce` — the reduction launch lane,
//!
//! with dependencies between commands expressed as completion events. An
//! event-heap scheduler advances modeled time: whenever an engine is idle
//! and the command at the head of its queue has all dependencies complete,
//! the command starts; its completion is pushed onto a binary heap keyed by
//! finish time (ties broken by submission order, so the schedule is a pure
//! function of the submitted commands — deterministic across runs and
//! thread counts).
//!
//! On top sits [`MomentRunPlan`]: it compiles one KPM moments run (priced
//! by the same [`GpuSpec`] roofline primitives as before) into a command
//! stream. With overlap disabled the stream is the strict chain
//! `setup → upload → generation → reduction → download`, whose makespan
//! equals the retired analytic sum *exactly* (same additions in the same
//! order). With overlap enabled the upload and generation stages are split
//! into per-realization-block chunks so the H2D copy of block `k+1` runs
//! while block `k` computes — pipelining can only remove dead time, never
//! add it, because chunk durations are exact divisions of the stage totals.
//! Multi-device plans split realizations owner-computes across `n` device
//! instances (device `i` takes `sr/n` plus one of the first `sr mod n`
//! remainders) and the run completes when the slowest device does.

use crate::model::{GpuSpec, SimTime};
use crate::shape::MomentLaunchShape;
use std::collections::BinaryHeap;

/// The engine a command executes on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// Host↔device transfer engine (half-duplex).
    Dma,
    /// Kernel-execution engine.
    Compute,
    /// Reduction lane.
    Reduce,
}

impl EngineKind {
    /// All engines, in queue-index order.
    pub const ALL: [EngineKind; 3] = [EngineKind::Dma, EngineKind::Compute, EngineKind::Reduce];

    fn index(self) -> usize {
        match self {
            EngineKind::Dma => 0,
            EngineKind::Compute => 1,
            EngineKind::Reduce => 2,
        }
    }

    /// Canonical lower-case name.
    pub fn as_str(self) -> &'static str {
        match self {
            EngineKind::Dma => "dma",
            EngineKind::Compute => "compute",
            EngineKind::Reduce => "reduce",
        }
    }
}

/// Identifier of a submitted command; also its completion event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CmdId(pub usize);

/// One queued command.
#[derive(Debug, Clone)]
pub struct Command {
    /// Consuming engine.
    pub engine: EngineKind,
    /// Modeled execution time.
    pub duration: SimTime,
    /// Human-readable label for traces.
    pub label: &'static str,
    /// Commands whose completion must precede this one's start (on top of
    /// the engine's in-order FIFO constraint).
    pub deps: Vec<CmdId>,
}

/// Start/finish record of one executed command.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommandTrace {
    /// The command.
    pub id: CmdId,
    /// Engine it ran on.
    pub engine: EngineKind,
    /// Label it was submitted with.
    pub label: &'static str,
    /// Modeled start time.
    pub start: SimTime,
    /// Modeled finish time.
    pub finish: SimTime,
}

/// Per-engine busy time of a completed run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EngineBusy {
    /// DMA engine busy time.
    pub dma: SimTime,
    /// Compute engine busy time.
    pub compute: SimTime,
    /// Reduce engine busy time.
    pub reduce: SimTime,
}

impl EngineBusy {
    /// Busy time of one engine.
    pub fn of(&self, engine: EngineKind) -> SimTime {
        match engine {
            EngineKind::Dma => self.dma,
            EngineKind::Compute => self.compute,
            EngineKind::Reduce => self.reduce,
        }
    }
}

/// Result of running a pipeline to completion.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Modeled end-to-end time (finish of the last command).
    pub makespan: SimTime,
    /// Sum of all command durations — what a fully serialized device would
    /// take. `makespan <= serial_total` always.
    pub serial_total: SimTime,
    /// Busy time per engine.
    pub busy: EngineBusy,
    /// Start/finish of every command, in completion order.
    pub traces: Vec<CommandTrace>,
}

impl PipelineReport {
    /// Overlap win: `serial_total / makespan` (`>= 1`).
    pub fn overlap_speedup(&self) -> f64 {
        if self.makespan.as_secs_f64() == 0.0 {
            1.0
        } else {
            self.serial_total.as_secs_f64() / self.makespan.as_secs_f64()
        }
    }
}

/// A per-device command queue set with an event-heap scheduler.
///
/// Commands are submitted up front ([`DevicePipeline::submit`]) and the
/// whole queue is then run to completion ([`DevicePipeline::run`]). Each
/// engine executes its own commands strictly in submission order; a
/// command additionally waits for its explicit dependencies.
#[derive(Debug, Default, Clone)]
pub struct DevicePipeline {
    commands: Vec<Command>,
}

/// Completion event: ordered by finish time, ties by submission sequence.
/// `BinaryHeap` is a max-heap, so orderings are reversed.
struct Completion {
    finish: f64,
    id: usize,
}

impl PartialEq for Completion {
    fn eq(&self, other: &Self) -> bool {
        self.finish == other.finish && self.id == other.id
    }
}
impl Eq for Completion {}
impl PartialOrd for Completion {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Completion {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Earliest finish first; earliest submission breaks ties.
        other.finish.total_cmp(&self.finish).then_with(|| other.id.cmp(&self.id))
    }
}

impl DevicePipeline {
    /// An empty pipeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues a command and returns its id (usable as a dependency for
    /// later submissions).
    ///
    /// # Panics
    /// Panics if a dependency refers to a not-yet-submitted command:
    /// dependencies must point backwards, which is what makes the event
    /// graph acyclic by construction.
    pub fn submit(
        &mut self,
        engine: EngineKind,
        duration: SimTime,
        label: &'static str,
        deps: &[CmdId],
    ) -> CmdId {
        let id = CmdId(self.commands.len());
        for d in deps {
            assert!(d.0 < id.0, "dependency {:?} submitted after {id:?}", d);
        }
        self.commands.push(Command { engine, duration, label, deps: deps.to_vec() });
        id
    }

    /// Number of queued commands.
    pub fn len(&self) -> usize {
        self.commands.len()
    }

    /// `true` if no commands are queued.
    pub fn is_empty(&self) -> bool {
        self.commands.is_empty()
    }

    /// Runs every queued command to completion and reports the schedule.
    ///
    /// The scheduler is a single-threaded discrete-event loop over a binary
    /// heap of completion events; modeled time is a pure function of the
    /// submitted commands.
    pub fn run(&self) -> PipelineReport {
        let n = self.commands.len();
        // Per-engine FIFO: command indices in submission order.
        let mut queues: [std::collections::VecDeque<usize>; 3] = Default::default();
        for (i, c) in self.commands.iter().enumerate() {
            queues[c.engine.index()].push_back(i);
        }
        let mut finished = vec![false; n];
        let mut engine_busy = [0.0_f64; 3];
        let mut traces = Vec::with_capacity(n);
        let mut heap: BinaryHeap<Completion> = BinaryHeap::new();
        let mut engine_running = [false; 3];
        let mut clock = 0.0_f64;
        let mut completed = 0usize;

        // Tries to start the head command of each idle engine; `clock` is
        // the earliest admissible start.
        let try_dispatch = |queues: &mut [std::collections::VecDeque<usize>; 3],
                            engine_running: &mut [bool; 3],
                            engine_busy: &mut [f64; 3],
                            finished: &[bool],
                            heap: &mut BinaryHeap<Completion>,
                            traces: &mut Vec<CommandTrace>,
                            commands: &[Command],
                            clock: f64| {
            for e in 0..3 {
                if engine_running[e] {
                    continue;
                }
                let Some(&head) = queues[e].front() else { continue };
                let cmd = &commands[head];
                if !cmd.deps.iter().all(|d| finished[d.0]) {
                    continue;
                }
                // Ready: start at the current clock (deps finished at or
                // before it, and the engine is idle now).
                queues[e].pop_front();
                engine_running[e] = true;
                let start = clock;
                let finish = start + cmd.duration.as_secs_f64();
                engine_busy[e] += cmd.duration.as_secs_f64();
                traces.push(CommandTrace {
                    id: CmdId(head),
                    engine: cmd.engine,
                    label: cmd.label,
                    start: SimTime(start),
                    finish: SimTime(finish),
                });
                heap.push(Completion { finish, id: head });
            }
        };

        try_dispatch(
            &mut queues,
            &mut engine_running,
            &mut engine_busy,
            &finished,
            &mut heap,
            &mut traces,
            &self.commands,
            clock,
        );

        while completed < n {
            let ev = heap.pop().expect("pipeline deadlock: no runnable command");
            clock = ev.finish;
            finished[ev.id] = true;
            engine_running[self.commands[ev.id].engine.index()] = false;
            completed += 1;
            try_dispatch(
                &mut queues,
                &mut engine_running,
                &mut engine_busy,
                &finished,
                &mut heap,
                &mut traces,
                &self.commands,
                clock,
            );
        }

        let serial_total: SimTime = self.commands.iter().map(|c| c.duration).sum();
        PipelineReport {
            makespan: SimTime(clock),
            serial_total,
            busy: EngineBusy {
                dma: SimTime(engine_busy[0]),
                compute: SimTime(engine_busy[1]),
                reduce: SimTime(engine_busy[2]),
            },
            traces,
        }
    }
}

/// Per-stage modeled durations of one moments run — the same five numbers
/// the analytic model summed, now priced individually so the pipeline can
/// schedule them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageTimes {
    /// Context/allocation setup.
    pub setup: SimTime,
    /// Host→device matrix transfer.
    pub upload: SimTime,
    /// Moment-generation launch.
    pub generation: SimTime,
    /// Moment-reduction launch.
    pub reduction: SimTime,
    /// Device→host moments transfer.
    pub download: SimTime,
}

impl StageTimes {
    /// Prices the five stages of `shape` on `spec` — identical arithmetic
    /// to the retired closed-form estimate, stage by stage.
    pub fn price(shape: &MomentLaunchShape, spec: &GpuSpec, compute_efficiency: f64) -> Self {
        let generation = spec.kernel_time(
            &shape.kernel_cost(spec),
            shape.grid_blocks(),
            shape.threads_per_block(),
            compute_efficiency,
        );
        let reduction = spec.kernel_time(
            &shape.reduce_cost(),
            shape.num_moments,
            shape.block_size.min(spec.max_threads_per_block),
            compute_efficiency,
        );
        StageTimes {
            setup: spec.setup_overhead,
            upload: spec.transfer_time(shape.matrix_bytes() as usize),
            generation,
            reduction,
            download: spec.transfer_time(8 * shape.num_moments),
        }
    }

    /// Analytic sum-of-stages total, in the canonical order
    /// `setup + upload + generation + reduction + download`.
    pub fn analytic_total(&self) -> SimTime {
        self.setup + self.upload + self.generation + self.reduction + self.download
    }
}

/// A compiled moments run: shape × overlap policy × chunking × device
/// count. [`MomentRunPlan::run`] prices it through the event pipeline.
#[derive(Debug, Clone, Copy)]
pub struct MomentRunPlan {
    /// Launch shape of the full run (all realizations).
    pub shape: MomentLaunchShape,
    /// Whether upload/compute overlap is enabled.
    pub overlap: bool,
    /// Realization blocks the overlapped stages are split into (>= 1;
    /// ignored when `overlap` is off).
    pub chunks: usize,
    /// Device instances fed by the owner-computes splitter (>= 1).
    pub devices: usize,
}

/// Report of a multi-device pipelined run.
#[derive(Debug, Clone)]
pub struct MomentRunReport {
    /// End-to-end modeled time: the slowest device's makespan.
    pub total: SimTime,
    /// Sum-of-stages analytic total of the *undivided* run (what one
    /// device without overlap would take).
    pub serial_total: SimTime,
    /// Per-device pipeline reports, in device order.
    pub per_device: Vec<PipelineReport>,
}

impl MomentRunPlan {
    /// A single-device overlapping plan with the default chunking.
    pub fn new(shape: MomentLaunchShape) -> Self {
        Self { shape, overlap: true, chunks: 4, devices: 1 }
    }

    /// Enables or disables transfer/compute overlap.
    pub fn with_overlap(mut self, overlap: bool) -> Self {
        self.overlap = overlap;
        self
    }

    /// Sets the chunk count for the overlapped stages.
    ///
    /// # Panics
    /// Panics if zero.
    pub fn with_chunks(mut self, chunks: usize) -> Self {
        assert!(chunks > 0, "chunk count must be positive");
        self.chunks = chunks;
        self
    }

    /// Sets the device count for the owner-computes splitter.
    ///
    /// # Panics
    /// Panics if zero.
    pub fn with_devices(mut self, devices: usize) -> Self {
        assert!(devices > 0, "device count must be positive");
        self.devices = devices;
        self
    }

    /// Compiles the single-device command stream for `reals` realizations.
    fn build_pipeline(&self, reals: usize, spec: &GpuSpec, eff: f64) -> DevicePipeline {
        let shape = MomentLaunchShape { realizations: reals, ..self.shape };
        let stages = StageTimes::price(&shape, spec, eff);
        let mut p = DevicePipeline::new();
        let setup = p.submit(EngineKind::Dma, stages.setup, "setup", &[]);
        if !self.overlap || self.chunks == 1 {
            // Strict chain: the makespan reproduces the analytic sum
            // exactly (same additions, same order).
            let up = p.submit(EngineKind::Dma, stages.upload, "upload", &[setup]);
            let gen = p.submit(EngineKind::Compute, stages.generation, "generation", &[up]);
            let red = p.submit(EngineKind::Reduce, stages.reduction, "reduction", &[gen]);
            p.submit(EngineKind::Dma, stages.download, "download", &[red]);
        } else {
            // Split upload and generation into `chunks` realization blocks:
            // upload of block k+1 overlaps generation of block k. Chunk
            // durations are exact divisions of the stage totals (no
            // per-chunk overhead is added), so the pipelined makespan can
            // never exceed the serial chain.
            let c = self.chunks;
            let up_chunk = SimTime(stages.upload.as_secs_f64() / c as f64);
            let gen_chunk = SimTime(stages.generation.as_secs_f64() / c as f64);
            let mut last_gen = setup;
            for _ in 0..c {
                let up = p.submit(EngineKind::Dma, up_chunk, "upload", &[setup]);
                // In-order FIFO already serializes generation chunks; the
                // explicit dep expresses "block k needs its own upload".
                last_gen = p.submit(EngineKind::Compute, gen_chunk, "generation", &[up]);
            }
            let red = p.submit(EngineKind::Reduce, stages.reduction, "reduction", &[last_gen]);
            p.submit(EngineKind::Dma, stages.download, "download", &[red]);
        }
        p
    }

    /// Realizations owned by device `i` of `n`: `sr/n` plus one of the
    /// first `sr mod n` remainders (owner-computes round-robin).
    pub fn device_share(total: usize, device: usize, devices: usize) -> usize {
        total / devices + usize::from(device < total % devices)
    }

    /// Prices an owner-computes split across exactly `devices` instances
    /// (devices with a zero share are skipped).
    fn run_split(
        &self,
        devices: usize,
        spec: &GpuSpec,
        compute_efficiency: f64,
    ) -> MomentRunReport {
        let sr = self.shape.realizations;
        let mut per_device = Vec::with_capacity(devices);
        let mut total = SimTime::ZERO;
        for i in 0..devices {
            let share = Self::device_share(sr, i, devices);
            if share == 0 {
                continue;
            }
            let report = self.build_pipeline(share, spec, compute_efficiency).run();
            if report.makespan.as_secs_f64() > total.as_secs_f64() {
                total = report.makespan;
            }
            per_device.push(report);
        }
        let serial_total =
            StageTimes::price(&self.shape, spec, compute_efficiency).analytic_total();
        MomentRunReport { total, serial_total, per_device }
    }

    /// Runs the plan through the event pipeline.
    ///
    /// With `n` devices the splitter prices every owner-computes split over
    /// `1..=n` instances and keeps the fastest (ties resolve to the fewest
    /// devices). An `n`-device system can always execute an `m < n` split
    /// by leaving devices idle, so this is what a work-placing scheduler
    /// would do — and it makes the modeled total provably non-increasing in
    /// the device count, even where per-device block-granularity effects
    /// (a share of `ceil(sr/n)` realizations occupying proportionally fewer
    /// thread blocks) would make the forced full split marginally slower.
    pub fn run(&self, spec: &GpuSpec, compute_efficiency: f64) -> MomentRunReport {
        let mut best: Option<MomentRunReport> = None;
        for m in 1..=self.devices {
            let candidate = self.run_split(m, spec, compute_efficiency);
            let better = match &best {
                None => true,
                Some(b) => candidate.total.as_secs_f64() < b.total.as_secs_f64(),
            };
            if better {
                best = Some(candidate);
            }
        }
        best.expect("device count is validated positive")
    }

    /// Convenience: end-to-end modeled time only.
    pub fn total(&self, spec: &GpuSpec, compute_efficiency: f64) -> SimTime {
        self.run(spec, compute_efficiency).total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{Mapping, VectorLayout};
    use crate::shape::{Precision, SparseFormat};
    use proptest::prelude::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn paper_shape(n: usize, reals: usize) -> MomentLaunchShape {
        MomentLaunchShape {
            dim: 1000,
            stored_entries: 7000,
            dense: false,
            format: SparseFormat::Csr,
            num_moments: n,
            realizations: reals,
            mapping: Mapping::ThreadPerRealization,
            layout: VectorLayout::Interleaved,
            block_size: 128,
            precision: Precision::Double,
        }
    }

    #[test]
    fn serial_chain_sums_durations() {
        let mut p = DevicePipeline::new();
        let a = p.submit(EngineKind::Dma, t(1.0), "a", &[]);
        let b = p.submit(EngineKind::Compute, t(2.0), "b", &[a]);
        p.submit(EngineKind::Dma, t(0.5), "c", &[b]);
        let r = p.run();
        assert_eq!(r.makespan, t(3.5));
        assert_eq!(r.serial_total, t(3.5));
        assert_eq!(r.busy.dma, t(1.5));
        assert_eq!(r.busy.compute, t(2.0));
        assert_eq!(r.busy.reduce, SimTime::ZERO);
    }

    #[test]
    fn independent_engines_overlap() {
        let mut p = DevicePipeline::new();
        p.submit(EngineKind::Dma, t(1.0), "copy", &[]);
        p.submit(EngineKind::Compute, t(1.0), "kernel", &[]);
        let r = p.run();
        assert_eq!(r.makespan, t(1.0), "independent engines must run concurrently");
        assert_eq!(r.serial_total, t(2.0));
        assert!((r.overlap_speedup() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn same_engine_serializes_in_fifo_order() {
        let mut p = DevicePipeline::new();
        p.submit(EngineKind::Dma, t(1.0), "h2d", &[]);
        p.submit(EngineKind::Dma, t(1.0), "d2h", &[]);
        let r = p.run();
        assert_eq!(r.makespan, t(2.0), "one DMA engine is half-duplex");
        // FIFO: first submitted starts first.
        assert_eq!(r.traces[0].label, "h2d");
        assert_eq!(r.traces[0].start, SimTime::ZERO);
        assert_eq!(r.traces[1].start, t(1.0));
    }

    #[test]
    fn dependency_delays_start_across_engines() {
        let mut p = DevicePipeline::new();
        let copy = p.submit(EngineKind::Dma, t(2.0), "copy", &[]);
        p.submit(EngineKind::Compute, t(1.0), "kernel", &[copy]);
        let r = p.run();
        assert_eq!(r.makespan, t(3.0));
        let kernel = r.traces.iter().find(|c| c.label == "kernel").unwrap();
        assert_eq!(kernel.start, t(2.0));
    }

    #[test]
    fn pipelined_chunks_overlap_copy_and_compute() {
        // Classic 4-chunk pipeline: upload 1 s, compute 2 s, each split in
        // 4. Makespan = first chunk upload (0.25) + full compute (2.0).
        let mut p = DevicePipeline::new();
        for _ in 0..4 {
            let up = p.submit(EngineKind::Dma, t(0.25), "up", &[]);
            p.submit(EngineKind::Compute, t(0.5), "gen", &[up]);
        }
        let r = p.run();
        assert!((r.makespan.as_secs_f64() - 2.25).abs() < 1e-12, "{:?}", r.makespan);
    }

    #[test]
    #[should_panic(expected = "submitted after")]
    fn forward_dependency_rejected() {
        let mut p = DevicePipeline::new();
        p.submit(EngineKind::Dma, t(1.0), "a", &[CmdId(5)]);
    }

    #[test]
    fn empty_pipeline_runs_to_zero() {
        let p = DevicePipeline::new();
        let r = p.run();
        assert_eq!(r.makespan, SimTime::ZERO);
        assert!(r.traces.is_empty());
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
    }

    #[test]
    fn overlap_off_equals_analytic_sum_exactly() {
        // Not within tolerance: bit-for-bit, because the event chain
        // performs the same additions in the same order.
        let spec = GpuSpec::tesla_c2050();
        for n in [128, 256, 1024] {
            let shape = paper_shape(n, 1792);
            let analytic = StageTimes::price(&shape, &spec, 0.2).analytic_total();
            let piped = MomentRunPlan::new(shape).with_overlap(false).total(&spec, 0.2);
            assert_eq!(piped.as_secs_f64(), analytic.as_secs_f64(), "N={n}");
        }
    }

    #[test]
    fn overlap_reduces_time_by_hidden_upload() {
        let spec = GpuSpec::tesla_c2050();
        let shape = paper_shape(512, 1792);
        let serial = MomentRunPlan::new(shape).with_overlap(false).total(&spec, 0.2);
        let piped = MomentRunPlan::new(shape).with_chunks(4).total(&spec, 0.2);
        assert!(piped.as_secs_f64() < serial.as_secs_f64());
        // The win is bounded by the upload stage (that is all overlap can
        // hide in this command stream).
        let stages = StageTimes::price(&shape, &spec, 0.2);
        assert!(serial.as_secs_f64() - piped.as_secs_f64() <= stages.upload.as_secs_f64() + 1e-12);
    }

    #[test]
    fn multi_device_splits_and_is_monotone() {
        let spec = GpuSpec::tesla_c2050();
        let shape = paper_shape(512, 1792);
        let mut last = f64::INFINITY;
        for devices in [1, 2, 4, 8] {
            let total =
                MomentRunPlan::new(shape).with_devices(devices).total(&spec, 0.2).as_secs_f64();
            assert!(
                total <= last + 1e-12,
                "{devices} devices must not be slower: {total} vs {last}"
            );
            last = total;
        }
    }

    #[test]
    fn device_share_is_owner_computes() {
        assert_eq!(MomentRunPlan::device_share(10, 0, 3), 4);
        assert_eq!(MomentRunPlan::device_share(10, 1, 3), 3);
        assert_eq!(MomentRunPlan::device_share(10, 2, 3), 3);
        let total: usize = (0..7).map(|i| MomentRunPlan::device_share(1792, i, 7)).sum();
        assert_eq!(total, 1792);
    }

    #[test]
    fn more_devices_than_realizations_skips_idle_devices() {
        let spec = GpuSpec::test_gpu();
        let shape = paper_shape(16, 2);
        let report = MomentRunPlan::new(shape).with_devices(8).run(&spec, 0.2);
        assert_eq!(report.per_device.len(), 2, "only owning devices run");
        assert!(report.total.as_secs_f64() > 0.0);
    }

    #[test]
    fn engine_names_are_stable() {
        assert_eq!(EngineKind::Dma.as_str(), "dma");
        assert_eq!(EngineKind::Compute.as_str(), "compute");
        assert_eq!(EngineKind::Reduce.as_str(), "reduce");
        assert_eq!(EngineKind::ALL.len(), 3);
    }

    proptest! {
        /// Overlap-off pipelined total equals the analytic sum within 1e-9
        /// for arbitrary shapes (it is exactly equal; the tolerance is the
        /// contract).
        #[test]
        fn prop_overlap_off_matches_analytic(
            n in 2usize..1024,
            reals in 1usize..4096,
            dim in 8usize..4096,
        ) {
            let spec = GpuSpec::tesla_c2050();
            let shape = MomentLaunchShape {
                dim,
                stored_entries: 7 * dim,
                ..paper_shape(n, reals)
            };
            let analytic = StageTimes::price(&shape, &spec, 0.2).analytic_total();
            let piped = MomentRunPlan::new(shape).with_overlap(false).total(&spec, 0.2);
            prop_assert!((piped.as_secs_f64() - analytic.as_secs_f64()).abs() < 1e-9);
        }

        /// Enabling overlap never increases modeled time, for any chunking.
        #[test]
        fn prop_overlap_never_slower(
            n in 2usize..512,
            reals in 1usize..4096,
            chunks in 1usize..16,
        ) {
            let spec = GpuSpec::tesla_c2050();
            let shape = paper_shape(n, reals);
            let serial = MomentRunPlan::new(shape).with_overlap(false).total(&spec, 0.2);
            let piped = MomentRunPlan::new(shape).with_chunks(chunks).total(&spec, 0.2);
            prop_assert!(piped.as_secs_f64() <= serial.as_secs_f64() + 1e-12);
        }

        /// Adding a device never increases the modeled total.
        #[test]
        fn prop_devices_monotone(
            reals in 1usize..4096,
            devices in 1usize..8,
        ) {
            let spec = GpuSpec::tesla_c2050();
            let shape = paper_shape(128, reals);
            let fewer = MomentRunPlan::new(shape).with_devices(devices).total(&spec, 0.2);
            let more = MomentRunPlan::new(shape).with_devices(devices + 1).total(&spec, 0.2);
            prop_assert!(more.as_secs_f64() <= fewer.as_secs_f64() + 1e-12);
        }
    }

    /// The scheduler's modeled clock is a pure function of the command
    /// stream: repeated runs (and runs from spawned threads) agree bitwise.
    #[test]
    fn modeled_clock_is_deterministic_across_runs_and_threads() {
        let spec = GpuSpec::tesla_c2050();
        let shape = paper_shape(512, 1792);
        let reference = MomentRunPlan::new(shape).total(&spec, 0.2).as_secs_f64();
        for _ in 0..3 {
            assert_eq!(MomentRunPlan::new(shape).total(&spec, 0.2).as_secs_f64(), reference);
        }
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(move || {
                    let spec = GpuSpec::tesla_c2050();
                    MomentRunPlan::new(paper_shape(512, 1792)).total(&spec, 0.2).as_secs_f64()
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), reference);
        }
    }
}
