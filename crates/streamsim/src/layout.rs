//! Work mapping and device memory layout.

/// How realizations are mapped onto the device's execution hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mapping {
    /// The paper's mapping: one **thread** per realization,
    /// `ceil(S*R / BLOCK_SIZE)` blocks (Sec. III-A: "the number of thread
    /// blocks becomes RS/BLOCK_SIZE"). Each thread runs the entire
    /// recursion serially over its own four vectors. Simple, but launches
    /// only `S*R` threads — deeply latency-bound on a 448-core device,
    /// which is the structural reason the paper's speedup saturates near
    /// 4x.
    ThreadPerRealization,
    /// One **block** per realization: the block's threads partition the
    /// vector elements for the matvec and Chebyshev update and tree-reduce
    /// the dot products in shared memory. Launches `S*R*BLOCK_SIZE`
    /// threads; our ablation shows what the paper left on the table.
    BlockPerRealization,
}

/// How per-realization vectors are laid out in global memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VectorLayout {
    /// `element-major`: component `i` of realization `t` lives at
    /// `i * num_realizations + t`. Under [`Mapping::ThreadPerRealization`]
    /// adjacent threads then touch adjacent addresses — coalesced.
    Interleaved,
    /// `realization-major`: realization `t` owns the contiguous slab
    /// `t * dim .. (t+1) * dim`. Natural for
    /// [`Mapping::BlockPerRealization`]; catastrophic for coalescing under
    /// thread-per-realization (the naive-port ablation).
    Contiguous,
}

impl VectorLayout {
    /// Flat index of component `i` of realization `t` in a buffer holding
    /// `total` realizations of dimension `dim`.
    #[inline]
    pub fn index(&self, i: usize, t: usize, dim: usize, total: usize) -> usize {
        debug_assert!(i < dim && t < total);
        match self {
            VectorLayout::Interleaved => i * total + t,
            VectorLayout::Contiguous => t * dim + i,
        }
    }

    /// Effective memory-coalescing factor of per-realization vector
    /// accesses under the given mapping (drives the cost model; see
    /// DESIGN.md §5).
    pub fn coalescing(&self, mapping: Mapping) -> f64 {
        match (mapping, self) {
            // Adjacent threads, adjacent addresses: near-ideal (0.8 covers
            // real-world overheads like partial first/last transactions).
            (Mapping::ThreadPerRealization, VectorLayout::Interleaved) => 0.8,
            // Each thread strides by `dim` doubles: one useful double per
            // 128 B transaction, 32-way waste.
            (Mapping::ThreadPerRealization, VectorLayout::Contiguous) => 1.0 / 16.0,
            // Block threads sweep a contiguous slab together: coalesced.
            (Mapping::BlockPerRealization, VectorLayout::Contiguous) => 0.8,
            // Block threads stride by `total`: uncoalesced.
            (Mapping::BlockPerRealization, VectorLayout::Interleaved) => 1.0 / 16.0,
        }
    }

    /// The natural (coalesced) layout for a mapping.
    pub fn natural_for(mapping: Mapping) -> VectorLayout {
        match mapping {
            Mapping::ThreadPerRealization => VectorLayout::Interleaved,
            Mapping::BlockPerRealization => VectorLayout::Contiguous,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_bijective_over_buffer() {
        for layout in [VectorLayout::Interleaved, VectorLayout::Contiguous] {
            let (dim, total) = (7, 5);
            let mut seen = vec![false; dim * total];
            for i in 0..dim {
                for t in 0..total {
                    let idx = layout.index(i, t, dim, total);
                    assert!(!seen[idx], "{layout:?} collision at ({i}, {t})");
                    seen[idx] = true;
                }
            }
            assert!(seen.iter().all(|&b| b));
        }
    }

    #[test]
    fn interleaved_adjacent_realizations_adjacent_addresses() {
        let l = VectorLayout::Interleaved;
        assert_eq!(
            l.index(3, 1, 10, 8),
            l.index(3, 0, 10, 8) + 1,
            "consecutive t must be consecutive addresses"
        );
    }

    #[test]
    fn contiguous_adjacent_components_adjacent_addresses() {
        let l = VectorLayout::Contiguous;
        assert_eq!(l.index(4, 2, 10, 8), l.index(3, 2, 10, 8) + 1);
    }

    #[test]
    fn natural_layouts_coalesce_unnatural_do_not() {
        for mapping in [Mapping::ThreadPerRealization, Mapping::BlockPerRealization] {
            let natural = VectorLayout::natural_for(mapping);
            let unnatural = match natural {
                VectorLayout::Interleaved => VectorLayout::Contiguous,
                VectorLayout::Contiguous => VectorLayout::Interleaved,
            };
            assert!(natural.coalescing(mapping) > 0.5);
            assert!(unnatural.coalescing(mapping) < 0.1);
        }
    }
}
