//! A stream-computing (CUDA-like) device simulator.
//!
//! This crate is the substitute for the NVIDIA Tesla C2050 the paper ran on:
//! no physical GPU is available in this environment, so we reproduce the
//! *execution model* and the *machine balance* instead (see DESIGN.md §2).
//! It provides two coupled layers:
//!
//! 1. **Functional layer** — kernels written against a CUDA-shaped API
//!    (grids and thread blocks, global memory, per-block shared memory,
//!    barrier-phased execution) run on the host and produce real numbers.
//!    The KPM-on-GPU implementation in the `kpm-stream` crate is verified
//!    against the CPU reference through this layer.
//!
//! 2. **Performance layer** — every memcpy and kernel launch is charged to a
//!    simulated clock using an analytic model ([`model::GpuSpec`]):
//!    compute-vs-memory roofline per launch, occupancy as a function of
//!    block size, kernel-launch and PCIe overheads. A matching cache-aware
//!    model for the paper's CPU baseline lives in [`host`]. These produce
//!    the execution-time *shapes* of the paper's Figs. 5, 7 and 8 at full
//!    parameter scale, which would be infeasible to execute functionally on
//!    this machine.
//!
//! The two layers are deliberately independent: functional results never
//! depend on the cost model, and modeled time never depends on how fast the
//! host happens to be.
//!
//! # Example
//!
//! ```
//! use kpm_streamsim::{Device, Dim3, GpuSpec};
//! use kpm_streamsim::kernel::{BlockKernel, BlockScope, KernelCost};
//!
//! /// y[i] = a * x[i] (one element per thread, grid-strided).
//! struct Saxpy { a: f64, x: kpm_streamsim::GlobalBuffer, y: kpm_streamsim::GlobalBuffer, n: usize }
//!
//! impl BlockKernel for Saxpy {
//!     fn name(&self) -> &'static str { "saxpy" }
//!     fn execute(&self, scope: &mut BlockScope<'_>) {
//!         let x = scope.global(self.x);
//!         let y = scope.global(self.y);
//!         for t in scope.threads() {
//!             let i = scope.global_thread_id(t);
//!             if i < self.n {
//!                 y.store(i, self.a * x.load(i));
//!             }
//!         }
//!     }
//!     fn cost(&self, _dims: &kpm_streamsim::LaunchDims) -> KernelCost {
//!         KernelCost::new().flops(self.n as u64).global_read(8 * self.n as u64)
//!             .global_write(8 * self.n as u64)
//!     }
//! }
//!
//! let mut dev = Device::new(GpuSpec::tesla_c2050());
//! let x = dev.alloc(128).unwrap();
//! let y = dev.alloc(128).unwrap();
//! dev.copy_to_device(&vec![2.0; 128], x).unwrap();
//! dev.launch(&Saxpy { a: 3.0, x, y, n: 128 }, Dim3::x(1), Dim3::x(128)).unwrap();
//! let mut out = vec![0.0; 128];
//! dev.copy_to_host(y, &mut out).unwrap();
//! assert!(out.iter().all(|&v| v == 6.0));
//! assert!(dev.elapsed().as_secs_f64() > 0.0); // modeled, not wall-clock
//! ```

pub mod device;
pub mod dim;
pub mod error;
pub mod host;
pub mod kernel;
pub mod layout;
pub mod mem;
pub mod model;
pub mod queue;
pub mod shape;
pub mod streams;

pub use device::{Device, LaunchRecord};
pub use dim::{Dim3, LaunchDims};
pub use error::SimError;
pub use host::{CpuSpec, HostClock, MemTraffic};
pub use kernel::{BlockKernel, BlockScope, KernelCost};
pub use layout::{Mapping, VectorLayout};
pub use mem::GlobalBuffer;
pub use model::{GpuSpec, SimTime};
pub use queue::{
    CmdId, Command, CommandTrace, DevicePipeline, EngineBusy, EngineKind, MomentRunPlan,
    MomentRunReport, PipelineReport, StageTimes,
};
pub use shape::{MomentLaunchShape, Precision, SparseFormat};
