//! Analytic GPU performance model.
//!
//! Prices a kernel launch on modeled hardware from its declared
//! [`KernelCost`](crate::kernel::KernelCost). The structure is a classic
//! roofline-with-occupancy model (in the spirit of Hong & Kim, ISCA 2009):
//!
//! ```text
//! t_launch_total = t_overhead + max(t_compute, t_dram, t_shared) + t_barrier
//! t_compute      = flops / (peak_dp * occupancy * compute_efficiency)
//! t_dram         = bytes / (peak_bw * coalescing)
//! ```
//!
//! Occupancy captures the two effects that dominate the paper's setting:
//!
//! * **Warp-alignment waste** — a block of 100 threads still schedules as
//!   4 warps (128 lanes).
//! * **Latency hiding** — Fermi needs on the order of
//!   [`GpuSpec::warps_for_peak`] resident warps per SM to cover the ~20-cycle
//!   dependent-issue latency of double-precision chains. The paper's
//!   thread-per-realization mapping launches only `S*R = 1792` threads
//!   (= 4 warps/SM on a C2050), so it runs deeply latency-bound — this
//!   single effect is why the measured speedup saturates near 4x rather
//!   than the 100x a peak-vs-peak comparison would suggest.
//!
//! `compute_efficiency` is the one honesty knob: it folds in no-FMA
//! instruction mix, serialization, and addressing overhead of real kernels.
//! It is set per kernel by the implementation layer (`kpm-stream`), within
//! the 0.1–0.5 range typical of unhand-tuned Fermi DP kernels, and is
//! calibrated once against the paper's reported speedup band (DESIGN.md §5).

use std::time::Duration;

/// A span of *modeled* time, in seconds. Distinct from wall-clock time.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct SimTime(pub f64);

impl SimTime {
    /// Zero time.
    pub const ZERO: SimTime = SimTime(0.0);

    /// From seconds.
    pub fn from_secs(s: f64) -> Self {
        assert!(s >= 0.0 && s.is_finite(), "time must be finite and nonnegative");
        SimTime(s)
    }

    /// From microseconds.
    pub fn from_micros(us: f64) -> Self {
        Self::from_secs(us * 1e-6)
    }

    /// As seconds.
    pub fn as_secs_f64(&self) -> f64 {
        self.0
    }

    /// As a std `Duration` (saturating at zero).
    pub fn as_duration(&self) -> Duration {
        Duration::from_secs_f64(self.0.max(0.0))
    }
}

impl std::ops::Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl std::ops::AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl std::iter::Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        SimTime(iter.map(|t| t.0).sum())
    }
}

/// Hardware description of the simulated GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSpec {
    /// Marketing name, for reports.
    pub name: &'static str,
    /// Number of streaming multiprocessors.
    pub num_sms: usize,
    /// Scalar cores per SM.
    pub cores_per_sm: usize,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Peak double-precision rate in FLOP/s.
    pub peak_dp_flops: f64,
    /// Peak single-precision rate in FLOP/s (Fermi: 2x the DP rate).
    pub peak_sp_flops: f64,
    /// Peak global-memory bandwidth in bytes/s.
    pub mem_bandwidth: f64,
    /// Aggregate shared-memory bandwidth in bytes/s.
    pub shared_bandwidth: f64,
    /// One-time per-run overhead: context creation, module load, and
    /// device allocations. Dominates short runs (the paper's Fig. 7 shows
    /// the speedup climbing with `N` as exactly this cost amortizes).
    pub setup_overhead: SimTime,
    /// Kernel launch overhead (driver + dispatch).
    pub launch_overhead: SimTime,
    /// Per-barrier latency, in seconds, per executed barrier wave.
    pub barrier_latency: f64,
    /// Host<->device transfer bandwidth in bytes/s (effective PCIe).
    pub pcie_bandwidth: f64,
    /// Host<->device transfer setup latency.
    pub pcie_latency: SimTime,
    /// Global memory capacity in bytes.
    pub global_mem_bytes: usize,
    /// Unified L2 cache size in bytes (drives read-broadcast reuse
    /// estimates in kernel cost functions).
    pub l2_bytes: usize,
    /// Shared memory per SM in bytes.
    pub shared_mem_per_sm: usize,
    /// Warp width.
    pub warp_size: usize,
    /// Maximum threads per block accepted by a launch.
    pub max_threads_per_block: usize,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: usize,
    /// Maximum resident blocks per SM.
    pub max_blocks_per_sm: usize,
    /// Resident warps per SM needed to reach peak issue rate for
    /// dependent-chain double-precision code.
    pub warps_for_peak: f64,
}

impl GpuSpec {
    /// The NVIDIA Tesla C2050 (Fermi GF100) the paper used: 14 SMs x 32
    /// cores at 1.15 GHz, 515 GFLOP/s DP, 144 GB/s GDDR5, 3 GB global
    /// memory, 48 KB shared/SM (the paper's stated configuration), PCIe
    /// 2.0 x16.
    pub fn tesla_c2050() -> Self {
        Self {
            name: "Tesla C2050 (simulated)",
            num_sms: 14,
            cores_per_sm: 32,
            clock_ghz: 1.15,
            peak_dp_flops: 515e9,
            peak_sp_flops: 1030e9,
            mem_bandwidth: 144e9,
            shared_bandwidth: 1.0e12,
            setup_overhead: SimTime::from_secs(0.1),
            launch_overhead: SimTime::from_micros(5.0),
            barrier_latency: 40e-9,
            pcie_bandwidth: 4.0e9,
            pcie_latency: SimTime::from_micros(10.0),
            global_mem_bytes: 3 * 1024 * 1024 * 1024,
            l2_bytes: 768 * 1024,
            shared_mem_per_sm: 48 * 1024,
            warp_size: 32,
            max_threads_per_block: 1024,
            max_threads_per_sm: 1536,
            max_blocks_per_sm: 8,
            warps_for_peak: 18.0,
        }
    }

    /// An Ampere A100-class device (2020): 108 SMs, 9.7 TFLOP/s DP,
    /// 1.55 TB/s HBM2, 40 GB, PCIe 4.0. Used by the forward-looking
    /// ablation: a decade of hardware makes the paper's
    /// thread-per-realization mapping *relatively worse* (the latency wall
    /// grows with machine width), which is why modern KPM codes use
    /// block-level parallelism.
    pub fn ampere_a100() -> Self {
        Self {
            name: "A100-class (simulated)",
            num_sms: 108,
            cores_per_sm: 64,
            clock_ghz: 1.41,
            peak_dp_flops: 9.7e12,
            peak_sp_flops: 19.5e12,
            mem_bandwidth: 1.555e12,
            shared_bandwidth: 1.0e13,
            setup_overhead: SimTime::from_secs(0.1),
            launch_overhead: SimTime::from_micros(3.0),
            barrier_latency: 20e-9,
            pcie_bandwidth: 20.0e9,
            pcie_latency: SimTime::from_micros(5.0),
            global_mem_bytes: 40 * 1024 * 1024 * 1024,
            l2_bytes: 40 * 1024 * 1024,
            shared_mem_per_sm: 164 * 1024,
            warp_size: 32,
            max_threads_per_block: 1024,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            warps_for_peak: 24.0,
        }
    }

    /// A small "laptop-class" device preset for tests: 2 SMs, slow clock.
    /// Keeps unit tests independent of the C2050 calibration.
    pub fn test_gpu() -> Self {
        Self {
            name: "TestGPU",
            num_sms: 2,
            cores_per_sm: 8,
            clock_ghz: 1.0,
            peak_dp_flops: 16e9,
            peak_sp_flops: 32e9,
            mem_bandwidth: 10e9,
            shared_bandwidth: 100e9,
            setup_overhead: SimTime::from_micros(100.0),
            launch_overhead: SimTime::from_micros(1.0),
            barrier_latency: 40e-9,
            pcie_bandwidth: 1e9,
            pcie_latency: SimTime::from_micros(1.0),
            global_mem_bytes: 64 * 1024 * 1024,
            l2_bytes: 256 * 1024,
            shared_mem_per_sm: 16 * 1024,
            warp_size: 32,
            max_threads_per_block: 512,
            max_threads_per_sm: 1024,
            max_blocks_per_sm: 8,
            warps_for_peak: 8.0,
        }
    }

    /// Fraction of peak issue rate achievable with the given launch shape:
    /// `warp_alignment * latency_hiding * sm_coverage` in `(0, 1]`.
    pub fn occupancy(&self, num_blocks: usize, threads_per_block: usize) -> f64 {
        if num_blocks == 0 || threads_per_block == 0 {
            return 1.0;
        }
        let warps_per_block = threads_per_block.div_ceil(self.warp_size);
        // Lanes wasted by a partially filled final warp.
        let warp_alignment = threads_per_block as f64 / (warps_per_block * self.warp_size) as f64;
        // How many blocks can be resident on one SM at once.
        let resident_blocks = (self.max_threads_per_sm / (warps_per_block * self.warp_size))
            .clamp(1, self.max_blocks_per_sm);
        // Resident warps on an *active* SM drive latency hiding; SMs left
        // without any block are handled by the separate coverage factor
        // (averaging over all SMs here would double-count small grids).
        // Within the active SMs, blocks spread evenly on average.
        let active_sms = self.num_sms.min(num_blocks);
        let avg_blocks_per_active_sm =
            (num_blocks as f64 / active_sms as f64).min(resident_blocks as f64);
        let warps_per_sm = avg_blocks_per_active_sm * warps_per_block as f64;
        let latency_hiding = (warps_per_sm / self.warps_for_peak).min(1.0);
        // SMs left idle when the grid is smaller than the machine.
        let sm_coverage = (num_blocks as f64 / self.num_sms as f64).min(1.0);
        (warp_alignment * latency_hiding * sm_coverage).clamp(1e-6, 1.0)
    }

    /// Models the time of one kernel launch.
    ///
    /// `cost` is the launch-wide declared cost; `compute_efficiency` is the
    /// per-kernel knob described in the module docs.
    pub fn kernel_time(
        &self,
        cost: &crate::kernel::KernelCost,
        num_blocks: usize,
        threads_per_block: usize,
        compute_efficiency: f64,
    ) -> SimTime {
        assert!(
            compute_efficiency > 0.0 && compute_efficiency <= 1.0,
            "compute efficiency must be in (0, 1]"
        );
        let occ = self.occupancy(num_blocks, threads_per_block);
        let peak = if cost.single_precision { self.peak_sp_flops } else { self.peak_dp_flops };
        let t_compute = cost.flops as f64 / (peak * occ * compute_efficiency);
        let bytes = (cost.global_read_bytes + cost.global_write_bytes) as f64;
        let t_dram = bytes / (self.mem_bandwidth * cost.coalescing);
        let t_shared = cost.shared_accesses as f64 * 8.0 / self.shared_bandwidth;
        // Barriers execute once per block; blocks run in waves.
        let warps_per_block = threads_per_block.div_ceil(self.warp_size).max(1);
        let resident_blocks = (self.max_threads_per_sm / (warps_per_block * self.warp_size))
            .clamp(1, self.max_blocks_per_sm);
        let waves = num_blocks.div_ceil(resident_blocks * self.num_sms).max(1);
        let t_barrier = cost.barriers as f64 * waves as f64 * self.barrier_latency;
        self.launch_overhead + SimTime::from_secs(t_compute.max(t_dram).max(t_shared) + t_barrier)
    }

    /// Models a host<->device transfer of `bytes`.
    pub fn transfer_time(&self, bytes: usize) -> SimTime {
        self.pcie_latency + SimTime::from_secs(bytes as f64 / self.pcie_bandwidth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelCost;

    #[test]
    fn simtime_arithmetic() {
        let a = SimTime::from_secs(1.5);
        let b = SimTime::from_micros(500_000.0);
        assert!(((a + b).as_secs_f64() - 2.0).abs() < 1e-12);
        let mut c = SimTime::ZERO;
        c += a;
        assert_eq!(c, a);
        let s: SimTime = vec![a, b].into_iter().sum();
        assert!((s.as_secs_f64() - 2.0).abs() < 1e-12);
        assert_eq!(SimTime::from_secs(2.0).as_duration(), Duration::from_secs(2));
    }

    #[test]
    #[should_panic(expected = "finite and nonnegative")]
    fn negative_time_rejected() {
        let _ = SimTime::from_secs(-1.0);
    }

    #[test]
    fn c2050_spec_matches_published_numbers() {
        let g = GpuSpec::tesla_c2050();
        assert_eq!(g.num_sms, 14);
        assert_eq!(g.num_sms * g.cores_per_sm, 448);
        assert_eq!(g.peak_dp_flops, 515e9);
        assert_eq!(g.global_mem_bytes, 3 * 1024 * 1024 * 1024);
    }

    #[test]
    fn occupancy_full_machine_is_one() {
        let g = GpuSpec::tesla_c2050();
        // Huge launch with warp-aligned blocks: no penalty.
        let occ = g.occupancy(10_000, 256);
        assert!((occ - 1.0).abs() < 1e-12, "occ = {occ}");
    }

    #[test]
    fn occupancy_penalizes_small_launches() {
        let g = GpuSpec::tesla_c2050();
        // The paper's setting: 1792 threads in blocks of 128 = 14 blocks.
        let small = g.occupancy(14, 128);
        let big = g.occupancy(1400, 128);
        assert!(small < big, "small launch must be latency-bound: {small} vs {big}");
        // 4 warps per SM out of 18 needed.
        assert!((small - 4.0 / 18.0).abs() < 1e-9, "small = {small}");
    }

    #[test]
    fn occupancy_penalizes_misaligned_blocks() {
        let g = GpuSpec::tesla_c2050();
        let aligned = g.occupancy(1000, 128);
        let misaligned = g.occupancy(1000, 100); // 4 warps, 28 idle lanes
        assert!(misaligned < aligned);
        assert!((misaligned / aligned - 100.0 / 128.0).abs() < 1e-9);
    }

    #[test]
    fn occupancy_penalizes_undersized_grids() {
        let g = GpuSpec::tesla_c2050();
        let one_block = g.occupancy(1, 256);
        let full = g.occupancy(14, 256);
        assert!(one_block < full / 10.0, "one block must leave 13/14 SMs idle");
    }

    #[test]
    fn kernel_time_compute_bound_scales_with_flops() {
        let g = GpuSpec::test_gpu();
        let c1 = KernelCost::new().flops(16_000_000_000);
        let c2 = KernelCost::new().flops(32_000_000_000);
        let t1 = g.kernel_time(&c1, 1000, 256, 1.0).as_secs_f64();
        let t2 = g.kernel_time(&c2, 1000, 256, 1.0).as_secs_f64();
        // Compute-bound: doubling flops ~doubles time (overhead amortized).
        assert!((t2 / t1 - 2.0).abs() < 0.01, "{t1} {t2}");
        // Peak rate: 16 GFLOP in ~1 s at 16 GFLOP/s (full occupancy).
        assert!((t1 - 1.0).abs() < 0.01, "{t1}");
    }

    #[test]
    fn kernel_time_memory_bound_uses_bandwidth_and_coalescing() {
        let g = GpuSpec::test_gpu();
        let c = KernelCost::new().global_read(10_000_000_000).coalescing(0.5);
        let t = g.kernel_time(&c, 1000, 256, 1.0).as_secs_f64();
        // 10 GB at 10 GB/s * 0.5 = 2 s.
        assert!((t - 2.0).abs() < 0.01, "{t}");
    }

    #[test]
    fn kernel_time_roofline_takes_max_not_sum() {
        let g = GpuSpec::test_gpu();
        let c = KernelCost::new().flops(16_000_000_000).global_read(10_000_000_000);
        let t = g.kernel_time(&c, 1000, 256, 1.0).as_secs_f64();
        // compute 1 s, memory 1 s: overlapped, so ~1 s not ~2 s.
        assert!(t < 1.1, "roofline must overlap compute and memory: {t}");
    }

    #[test]
    fn launch_overhead_dominates_empty_kernels() {
        let g = GpuSpec::tesla_c2050();
        let t = g.kernel_time(&KernelCost::new(), 1, 32, 1.0);
        assert!((t.as_secs_f64() - 5e-6).abs() < 1e-9);
    }

    #[test]
    fn transfer_time_latency_plus_bandwidth() {
        let g = GpuSpec::test_gpu();
        // 1 GB at 1 GB/s + 1 us latency.
        let t = g.transfer_time(1_000_000_000).as_secs_f64();
        assert!((t - 1.000001).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "compute efficiency")]
    fn efficiency_validated() {
        let g = GpuSpec::test_gpu();
        let _ = g.kernel_time(&KernelCost::new(), 1, 32, 0.0);
    }
}
