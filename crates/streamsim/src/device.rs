//! The simulated device: memory management, transfers, kernel launches,
//! and the modeled clock.

use crate::dim::{Dim3, LaunchDims};
use crate::error::SimError;
use crate::kernel::{AccessCounts, BlockKernel, BlockScope, KernelCost};
use crate::mem::{DeviceMemory, GlobalBuffer};
use crate::model::{GpuSpec, SimTime};
use rayon::prelude::*;

/// Record of one kernel launch, kept for reporting and tests.
#[derive(Debug, Clone)]
pub struct LaunchRecord {
    /// Kernel name.
    pub name: &'static str,
    /// Launch dimensions.
    pub dims: LaunchDims,
    /// Cost declared by the kernel.
    pub declared: KernelCost,
    /// Accesses actually performed by the functional execution (summed over
    /// blocks).
    pub counted: AccessCounts,
    /// Modeled duration of this launch.
    pub time: SimTime,
}

/// Aggregated statistics for one kernel across a device's launch history.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelSummary {
    /// Kernel name.
    pub name: &'static str,
    /// Number of launches.
    pub launches: usize,
    /// Total modeled time across launches.
    pub total_time: SimTime,
    /// Total declared FLOPs.
    pub flops: u64,
    /// Total declared DRAM bytes (reads + writes).
    pub dram_bytes: u64,
}

impl KernelSummary {
    /// Achieved FLOP rate under the model, FLOP/s.
    pub fn flop_rate(&self) -> f64 {
        self.flops as f64 / self.total_time.as_secs_f64().max(f64::MIN_POSITIVE)
    }
}

/// A simulated stream-computing device.
///
/// All state mutation goes through `&mut self`, so a `Device` behaves like a
/// single CUDA context used from one host thread (which is how the paper's
/// host code drives the GPU). Kernel *blocks* execute concurrently on the
/// host via rayon — the simulator's analogue of the SMs running blocks in
/// parallel — which is sound because global memory is relaxed-atomic and
/// blocks may not synchronize with each other anyway.
pub struct Device {
    spec: GpuSpec,
    mem: DeviceMemory,
    clock: SimTime,
    launches: Vec<LaunchRecord>,
    transfer_bytes: u64,
    /// Default compute-efficiency knob applied to launches (see
    /// [`GpuSpec::kernel_time`]); kernels may override per launch.
    compute_efficiency: f64,
}

impl Device {
    /// Creates a device with the given hardware spec.
    pub fn new(spec: GpuSpec) -> Self {
        let mem = DeviceMemory::new(spec.global_mem_bytes);
        Self {
            spec,
            mem,
            clock: SimTime::ZERO,
            launches: Vec::new(),
            transfer_bytes: 0,
            compute_efficiency: 0.2,
        }
    }

    /// Sets the default compute-efficiency knob.
    ///
    /// # Panics
    /// Panics if outside `(0, 1]`.
    pub fn set_compute_efficiency(&mut self, eff: f64) {
        assert!(eff > 0.0 && eff <= 1.0, "compute efficiency must be in (0, 1]");
        self.compute_efficiency = eff;
    }

    /// The hardware spec.
    pub fn spec(&self) -> &GpuSpec {
        &self.spec
    }

    /// Total modeled time elapsed on this device.
    pub fn elapsed(&self) -> SimTime {
        self.clock
    }

    /// Adds modeled time from outside (e.g. host-side work in a pipeline).
    pub fn advance_clock(&mut self, t: SimTime) {
        self.clock += t;
    }

    /// Resets the modeled clock and launch records (memory is untouched).
    pub fn reset_clock(&mut self) {
        self.clock = SimTime::ZERO;
        self.launches.clear();
        self.transfer_bytes = 0;
    }

    /// Device memory currently allocated, in bytes.
    pub fn mem_in_use(&self) -> usize {
        self.mem.in_use_bytes()
    }

    /// Total device memory capacity, in bytes.
    pub fn mem_capacity(&self) -> usize {
        self.mem.capacity_bytes()
    }

    /// High-water mark of allocated device memory, in bytes.
    pub fn mem_peak(&self) -> usize {
        self.mem.peak_bytes()
    }

    /// Total bytes moved over the simulated PCIe link.
    pub fn transferred_bytes(&self) -> u64 {
        self.transfer_bytes
    }

    /// Launch records so far.
    pub fn launches(&self) -> &[LaunchRecord] {
        &self.launches
    }

    /// Per-kernel aggregate of the launch history, ordered by total time
    /// (descending) — the device-side profile a `nvprof`-style tool would
    /// print.
    pub fn kernel_summaries(&self) -> Vec<KernelSummary> {
        let mut map: std::collections::BTreeMap<&'static str, KernelSummary> =
            std::collections::BTreeMap::new();
        for rec in &self.launches {
            let entry = map.entry(rec.name).or_insert(KernelSummary {
                name: rec.name,
                launches: 0,
                total_time: SimTime::ZERO,
                flops: 0,
                dram_bytes: 0,
            });
            entry.launches += 1;
            entry.total_time += rec.time;
            entry.flops += rec.declared.flops;
            entry.dram_bytes += rec.declared.global_read_bytes + rec.declared.global_write_bytes;
        }
        let mut out: Vec<KernelSummary> = map.into_values().collect();
        out.sort_by(|a, b| b.total_time.as_secs_f64().total_cmp(&a.total_time.as_secs_f64()));
        out
    }

    /// Allocates `len` f64 elements of global memory.
    ///
    /// # Errors
    /// [`SimError::OutOfMemory`] when the device capacity (3 GB on the
    /// C2050 preset) is exhausted — the same wall the paper's Sec. III-B-2
    /// memory analysis is about.
    pub fn alloc(&mut self, len: usize) -> Result<GlobalBuffer, SimError> {
        self.mem.alloc(len)
    }

    /// Frees a buffer.
    ///
    /// # Errors
    /// [`SimError::InvalidBuffer`] on double-free or foreign handle.
    pub fn free(&mut self, buf: GlobalBuffer) -> Result<(), SimError> {
        self.mem.free(buf)
    }

    /// Copies host data into a device buffer, charging PCIe time.
    ///
    /// # Errors
    /// [`SimError::CopyLengthMismatch`] if lengths differ.
    pub fn copy_to_device(&mut self, src: &[f64], dst: GlobalBuffer) -> Result<(), SimError> {
        self.mem.copy_in(dst, src)?;
        self.clock += self.spec.transfer_time(src.len() * 8);
        self.transfer_bytes += (src.len() * 8) as u64;
        Ok(())
    }

    /// Copies a device buffer back to host memory, charging PCIe time.
    ///
    /// # Errors
    /// [`SimError::CopyLengthMismatch`] if lengths differ.
    pub fn copy_to_host(&mut self, src: GlobalBuffer, dst: &mut [f64]) -> Result<(), SimError> {
        self.mem.copy_out(src, dst)?;
        self.clock += self.spec.transfer_time(dst.len() * 8);
        self.transfer_bytes += (dst.len() * 8) as u64;
        Ok(())
    }

    /// Reads a device buffer **without charging PCIe time** — a
    /// verification/debug facility for tests and statistics that the real
    /// program would not transfer (modeled timing stays faithful).
    ///
    /// # Errors
    /// [`SimError::CopyLengthMismatch`] if lengths differ.
    pub fn peek(&self, src: GlobalBuffer, dst: &mut [f64]) -> Result<(), SimError> {
        self.mem.copy_out(src, dst)
    }

    /// Launches a kernel with the default compute efficiency.
    ///
    /// # Errors
    /// [`SimError::InvalidLaunch`] if the configuration violates device
    /// limits (threads per block, shared memory per block).
    pub fn launch<K: BlockKernel>(
        &mut self,
        kernel: &K,
        grid: Dim3,
        block: Dim3,
    ) -> Result<SimTime, SimError> {
        let eff = self.compute_efficiency;
        self.launch_with_efficiency(kernel, grid, block, eff)
    }

    /// Launches a kernel with an explicit compute-efficiency knob.
    ///
    /// # Errors
    /// See [`Device::launch`].
    pub fn launch_with_efficiency<K: BlockKernel>(
        &mut self,
        kernel: &K,
        grid: Dim3,
        block: Dim3,
        compute_efficiency: f64,
    ) -> Result<SimTime, SimError> {
        let dims = LaunchDims::new(grid, block);
        if dims.threads_per_block() == 0 || dims.num_blocks() == 0 {
            return Err(SimError::InvalidLaunch("empty grid or block".into()));
        }
        if dims.threads_per_block() > self.spec.max_threads_per_block {
            return Err(SimError::InvalidLaunch(format!(
                "{} threads per block exceeds device limit {}",
                dims.threads_per_block(),
                self.spec.max_threads_per_block
            )));
        }
        let shared_words = kernel.shared_words(&dims);
        if shared_words * 8 > self.spec.shared_mem_per_sm {
            return Err(SimError::InvalidLaunch(format!(
                "{} B shared memory per block exceeds {} B per SM",
                shared_words * 8,
                self.spec.shared_mem_per_sm
            )));
        }

        // Functional execution: blocks in parallel (they are independent by
        // construction of the programming model).
        let mem = &self.mem;
        let counted = (0..dims.num_blocks())
            .into_par_iter()
            .map(|lin| {
                let block_idx = dims.grid.delinearize(lin);
                let mut scope = BlockScope::new(mem, block_idx, dims, shared_words);
                kernel.execute(&mut scope);
                scope.counts()
            })
            .reduce(AccessCounts::default, |a, b| AccessCounts {
                global_loads: a.global_loads + b.global_loads,
                global_stores: a.global_stores + b.global_stores,
                shared_accesses: a.shared_accesses + b.shared_accesses,
                barriers: a.barriers + b.barriers,
            });

        // Performance layer.
        let declared = kernel.cost(&dims);
        let time = self.spec.kernel_time(
            &declared,
            dims.num_blocks(),
            dims.threads_per_block(),
            compute_efficiency,
        );
        self.clock += time;
        self.launches.push(LaunchRecord { name: kernel.name(), dims, declared, counted, time });
        Ok(time)
    }
}

impl std::fmt::Debug for Device {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Device")
            .field("spec", &self.spec.name)
            .field("elapsed_s", &self.clock.as_secs_f64())
            .field("mem_in_use", &self.mem.in_use_bytes())
            .field("launches", &self.launches.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// y[i] = x[i] + 1 over n elements, one element per global thread.
    struct AddOne {
        x: GlobalBuffer,
        y: GlobalBuffer,
        n: usize,
    }

    impl BlockKernel for AddOne {
        fn name(&self) -> &'static str {
            "add_one"
        }
        fn execute(&self, scope: &mut BlockScope<'_>) {
            let x = scope.global(self.x);
            let y = scope.global(self.y);
            for t in scope.threads() {
                let i = scope.global_thread_id(t);
                if i < self.n {
                    y.store(i, x.load(i) + 1.0);
                }
            }
        }
        fn cost(&self, _dims: &LaunchDims) -> KernelCost {
            KernelCost::new()
                .flops(self.n as u64)
                .global_read(8 * self.n as u64)
                .global_write(8 * self.n as u64)
        }
    }

    /// Shared-memory tree reduction of one block over x, sum into out[block].
    struct BlockSum {
        x: GlobalBuffer,
        out: GlobalBuffer,
    }

    impl BlockKernel for BlockSum {
        fn name(&self) -> &'static str {
            "block_sum"
        }
        fn execute(&self, scope: &mut BlockScope<'_>) {
            let bsize = scope.block_dim().count();
            // Phase 1: each thread loads one element into shared memory.
            let vals: Vec<f64> = {
                let x = scope.global(self.x);
                scope.threads().map(|t| x.load(scope.global_thread_id(t))).collect()
            };
            for (i, v) in vals.into_iter().enumerate() {
                scope.shared_store(i, v);
            }
            scope.barrier();
            // Phase 2: tree reduction, exactly as a CUDA kernel would.
            let mut stride = bsize / 2;
            while stride > 0 {
                for t in 0..stride {
                    let a = scope.shared_load(t);
                    let b = scope.shared_load(t + stride);
                    scope.shared_store(t, a + b);
                }
                scope.barrier();
                stride /= 2;
            }
            let total = scope.shared_load(0);
            let block = scope.block_id();
            scope.global(self.out).store(block, total);
        }
        fn cost(&self, dims: &LaunchDims) -> KernelCost {
            let n = dims.total_threads() as u64;
            KernelCost::new()
                .flops(n)
                .global_read(8 * n)
                .global_write(8 * dims.num_blocks() as u64)
                .barriers((dims.threads_per_block().trailing_zeros() as u64) + 1)
        }
        fn shared_words(&self, dims: &LaunchDims) -> usize {
            dims.threads_per_block()
        }
    }

    #[test]
    fn elementwise_kernel_computes_and_charges_time() {
        let mut dev = Device::new(GpuSpec::test_gpu());
        let n = 100;
        let x = dev.alloc(n).unwrap();
        let y = dev.alloc(n).unwrap();
        dev.copy_to_device(&vec![1.5; n], x).unwrap();
        let before = dev.elapsed();
        dev.launch(&AddOne { x, y, n }, Dim3::x(4), Dim3::x(32)).unwrap();
        assert!(dev.elapsed().as_secs_f64() > before.as_secs_f64());
        let mut out = vec![0.0; n];
        dev.copy_to_host(y, &mut out).unwrap();
        assert!(out.iter().all(|&v| v == 2.5));
    }

    #[test]
    fn launch_records_track_declared_and_counted() {
        let mut dev = Device::new(GpuSpec::test_gpu());
        let n = 128;
        let x = dev.alloc(n).unwrap();
        let y = dev.alloc(n).unwrap();
        dev.launch(&AddOne { x, y, n }, Dim3::x(4), Dim3::x(32)).unwrap();
        let rec = &dev.launches()[0];
        assert_eq!(rec.name, "add_one");
        assert_eq!(rec.counted.global_loads, n as u64);
        assert_eq!(rec.counted.global_stores, n as u64);
        // Declared read bytes = counted loads * 8 for this kernel.
        assert_eq!(rec.declared.global_read_bytes, rec.counted.global_loads * 8);
    }

    #[test]
    fn block_reduction_is_correct_across_blocks() {
        let mut dev = Device::new(GpuSpec::test_gpu());
        let blocks = 4;
        let bsize = 64;
        let n = blocks * bsize;
        let x = dev.alloc(n).unwrap();
        let out = dev.alloc(blocks).unwrap();
        let data: Vec<f64> = (0..n).map(|i| i as f64).collect();
        dev.copy_to_device(&data, x).unwrap();
        dev.launch(&BlockSum { x, out }, Dim3::x(blocks), Dim3::x(bsize)).unwrap();
        let mut sums = vec![0.0; blocks];
        dev.copy_to_host(out, &mut sums).unwrap();
        for (b, &got) in sums.iter().enumerate() {
            let expect: f64 = (b * bsize..(b + 1) * bsize).map(|i| i as f64).sum();
            assert_eq!(got, expect, "block {b}");
        }
        // Barriers counted: log2(64) + 1 per block * 4 blocks.
        let rec = &dev.launches()[0];
        assert_eq!(rec.counted.barriers, 7 * 4);
    }

    #[test]
    fn launch_validation() {
        let mut dev = Device::new(GpuSpec::test_gpu());
        let x = dev.alloc(1).unwrap();
        let y = dev.alloc(1).unwrap();
        let k = AddOne { x, y, n: 1 };
        assert!(matches!(
            dev.launch(&k, Dim3::x(1), Dim3::x(1024)),
            Err(SimError::InvalidLaunch(_))
        ));
        assert!(matches!(dev.launch(&k, Dim3::x(0), Dim3::x(32)), Err(SimError::InvalidLaunch(_))));
        // Shared memory over the per-SM limit.
        struct Hog;
        impl BlockKernel for Hog {
            fn name(&self) -> &'static str {
                "hog"
            }
            fn execute(&self, _s: &mut BlockScope<'_>) {}
            fn cost(&self, _d: &LaunchDims) -> KernelCost {
                KernelCost::new()
            }
            fn shared_words(&self, _d: &LaunchDims) -> usize {
                1 << 20
            }
        }
        assert!(matches!(
            dev.launch(&Hog, Dim3::x(1), Dim3::x(32)),
            Err(SimError::InvalidLaunch(_))
        ));
    }

    #[test]
    fn transfers_charge_pcie_time_and_count_bytes() {
        let mut dev = Device::new(GpuSpec::test_gpu());
        let buf = dev.alloc(1000).unwrap();
        dev.copy_to_device(&[0.0; 1000], buf).unwrap();
        let t1 = dev.elapsed().as_secs_f64();
        assert!(t1 >= 8000.0 / 1e9, "PCIe time missing: {t1}");
        assert_eq!(dev.transferred_bytes(), 8000);
        let mut out = vec![0.0; 1000];
        dev.copy_to_host(buf, &mut out).unwrap();
        assert_eq!(dev.transferred_bytes(), 16000);
    }

    #[test]
    fn reset_clock_clears_records_not_memory() {
        let mut dev = Device::new(GpuSpec::test_gpu());
        let buf = dev.alloc(10).unwrap();
        dev.copy_to_device(&[3.0; 10], buf).unwrap();
        dev.reset_clock();
        assert_eq!(dev.elapsed(), SimTime::ZERO);
        assert!(dev.launches().is_empty());
        let mut out = vec![0.0; 10];
        dev.copy_to_host(buf, &mut out).unwrap();
        assert_eq!(out, vec![3.0; 10]);
    }

    #[test]
    fn kernel_summaries_aggregate_by_name() {
        let mut dev = Device::new(GpuSpec::test_gpu());
        let n = 64;
        let x = dev.alloc(n).unwrap();
        let y = dev.alloc(n).unwrap();
        let k = AddOne { x, y, n };
        dev.launch(&k, Dim3::x(2), Dim3::x(32)).unwrap();
        dev.launch(&k, Dim3::x(2), Dim3::x(32)).unwrap();
        dev.launch(&BlockSum { x, out: y }, Dim3::x(2), Dim3::x(32)).unwrap();
        let summaries = dev.kernel_summaries();
        assert_eq!(summaries.len(), 2);
        let add = summaries.iter().find(|s| s.name == "add_one").unwrap();
        assert_eq!(add.launches, 2);
        assert_eq!(add.flops, 2 * n as u64);
        assert!(add.total_time.as_secs_f64() > 0.0);
        assert!(add.flop_rate() > 0.0);
        // Sorted by total time descending.
        assert!(summaries[0].total_time.as_secs_f64() >= summaries[1].total_time.as_secs_f64());
    }

    #[test]
    fn oom_is_surfaced() {
        let mut dev = Device::new(GpuSpec::test_gpu());
        let too_big = dev.spec().global_mem_bytes / 8 + 1;
        assert!(matches!(dev.alloc(too_big), Err(SimError::OutOfMemory { .. })));
    }
}
