//! Simulated device global memory.
//!
//! Global memory is a flat arena of `f64` words stored as relaxed atomics so
//! that thread blocks may execute concurrently on the host while kernels
//! write arbitrary locations, exactly as CUDA permits. (Races remain logical
//! bugs in the *kernel*, as on real hardware, but they are not undefined
//! behaviour in the simulator.)
//!
//! Allocation uses a first-fit free list with coalescing on free, and
//! enforces the device capacity — the paper's Sec. III-B-2 memory-consumption
//! analysis is checked against this accounting in the `kpm-stream` tests.

use crate::error::SimError;
use std::sync::atomic::{AtomicU64, Ordering};

/// Handle to a device allocation: `len` f64 elements starting at word
/// offset `offset`. Copyable and cheap, like a raw device pointer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GlobalBuffer {
    pub(crate) offset: usize,
    pub(crate) len: usize,
    pub(crate) generation: u64,
}

impl GlobalBuffer {
    /// Number of f64 elements in the buffer.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.len * 8
    }

    /// A sub-buffer covering `range` (element indices relative to this
    /// buffer). Useful for carving one big allocation into per-realization
    /// vectors, as the paper's implementation does.
    ///
    /// # Panics
    /// Panics if the range exceeds the buffer.
    pub fn slice(&self, start: usize, len: usize) -> GlobalBuffer {
        assert!(start + len <= self.len, "slice out of bounds");
        GlobalBuffer { offset: self.offset + start, len, generation: self.generation }
    }
}

#[derive(Debug, Clone, Copy)]
struct Region {
    offset: usize,
    len: usize,
    free: bool,
}

/// The arena plus its allocator.
#[derive(Debug)]
pub(crate) struct DeviceMemory {
    words: Vec<AtomicU64>,
    regions: Vec<Region>,
    capacity_words: usize,
    in_use_words: usize,
    generation: u64,
    /// High-water mark of allocated words, for reporting.
    peak_words: usize,
}

impl DeviceMemory {
    pub fn new(capacity_bytes: usize) -> Self {
        let capacity_words = capacity_bytes / 8;
        Self {
            words: Vec::new(),
            regions: vec![Region { offset: 0, len: capacity_words, free: true }],
            capacity_words,
            in_use_words: 0,
            generation: 0,
            peak_words: 0,
        }
    }

    pub fn capacity_bytes(&self) -> usize {
        self.capacity_words * 8
    }

    pub fn in_use_bytes(&self) -> usize {
        self.in_use_words * 8
    }

    pub fn peak_bytes(&self) -> usize {
        self.peak_words * 8
    }

    /// Allocates `len` f64 words, first-fit.
    pub fn alloc(&mut self, len: usize) -> Result<GlobalBuffer, SimError> {
        if len == 0 {
            return Ok(GlobalBuffer { offset: 0, len: 0, generation: self.generation });
        }
        let slot = self.regions.iter().position(|r| r.free && r.len >= len).ok_or(
            SimError::OutOfMemory {
                requested: len * 8,
                available: (self.capacity_words - self.in_use_words) * 8,
            },
        )?;
        let region = self.regions[slot];
        let buf = GlobalBuffer { offset: region.offset, len, generation: self.generation };
        if region.len == len {
            self.regions[slot].free = false;
        } else {
            self.regions[slot] = Region { offset: region.offset, len, free: false };
            self.regions.insert(
                slot + 1,
                Region { offset: region.offset + len, len: region.len - len, free: true },
            );
        }
        self.in_use_words += len;
        self.peak_words = self.peak_words.max(self.in_use_words);
        // Grow the backing store lazily up to the high-water mark.
        let needed = buf.offset + len;
        if self.words.len() < needed {
            self.words.resize_with(needed, || AtomicU64::new(0));
        }
        // Fresh allocations are zeroed (like cudaMemset right after malloc;
        // deterministic and convenient for accumulation buffers).
        for w in &self.words[buf.offset..buf.offset + len] {
            w.store(0, Ordering::Relaxed);
        }
        Ok(buf)
    }

    /// Frees a buffer, coalescing adjacent free regions.
    pub fn free(&mut self, buf: GlobalBuffer) -> Result<(), SimError> {
        if buf.len == 0 {
            return Ok(());
        }
        let slot = self
            .regions
            .iter()
            .position(|r| !r.free && r.offset == buf.offset && r.len == buf.len)
            .ok_or(SimError::InvalidBuffer)?;
        self.regions[slot].free = true;
        self.in_use_words -= buf.len;
        // Coalesce with the right neighbour, then the left.
        if slot + 1 < self.regions.len() && self.regions[slot + 1].free {
            self.regions[slot].len += self.regions[slot + 1].len;
            self.regions.remove(slot + 1);
        }
        if slot > 0 && self.regions[slot - 1].free {
            self.regions[slot - 1].len += self.regions[slot].len;
            self.regions.remove(slot);
        }
        Ok(())
    }

    /// Validates that a handle points inside the arena.
    pub fn check(&self, buf: GlobalBuffer) -> Result<(), SimError> {
        if buf.offset + buf.len <= self.capacity_words {
            Ok(())
        } else {
            Err(SimError::InvalidBuffer)
        }
    }

    #[inline]
    pub fn load(&self, word: usize) -> f64 {
        f64::from_bits(self.words[word].load(Ordering::Relaxed))
    }

    #[inline]
    pub fn store(&self, word: usize, value: f64) {
        self.words[word].store(value.to_bits(), Ordering::Relaxed);
    }

    pub fn copy_in(&self, buf: GlobalBuffer, src: &[f64]) -> Result<(), SimError> {
        self.check(buf)?;
        if src.len() != buf.len {
            return Err(SimError::CopyLengthMismatch { buffer: buf.len, host: src.len() });
        }
        for (i, &v) in src.iter().enumerate() {
            self.store(buf.offset + i, v);
        }
        Ok(())
    }

    pub fn copy_out(&self, buf: GlobalBuffer, dst: &mut [f64]) -> Result<(), SimError> {
        self.check(buf)?;
        if dst.len() != buf.len {
            return Err(SimError::CopyLengthMismatch { buffer: buf.len, host: dst.len() });
        }
        for (i, d) in dst.iter_mut().enumerate() {
            *d = self.load(buf.offset + i);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_copy_roundtrip() {
        let mut mem = DeviceMemory::new(1 << 16);
        let buf = mem.alloc(10).unwrap();
        let data: Vec<f64> = (0..10).map(|i| i as f64 * 1.5).collect();
        mem.copy_in(buf, &data).unwrap();
        let mut out = vec![0.0; 10];
        mem.copy_out(buf, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn fresh_allocations_are_zeroed() {
        let mut mem = DeviceMemory::new(1 << 12);
        let a = mem.alloc(8).unwrap();
        mem.copy_in(a, &[7.0; 8]).unwrap();
        mem.free(a).unwrap();
        let b = mem.alloc(8).unwrap();
        let mut out = vec![1.0; 8];
        mem.copy_out(b, &mut out).unwrap();
        assert_eq!(out, vec![0.0; 8]);
    }

    #[test]
    fn capacity_enforced() {
        let mut mem = DeviceMemory::new(64); // 8 words
        assert!(mem.alloc(8).is_ok());
        let e = mem.alloc(1);
        assert!(matches!(e, Err(SimError::OutOfMemory { .. })));
    }

    #[test]
    fn free_allows_reuse_and_coalesces() {
        let mut mem = DeviceMemory::new(64); // 8 words
        let a = mem.alloc(3).unwrap();
        let b = mem.alloc(3).unwrap();
        let c = mem.alloc(2).unwrap();
        assert_eq!(mem.in_use_bytes(), 64);
        mem.free(a).unwrap();
        mem.free(b).unwrap(); // coalesces with a's region
        let big = mem.alloc(6).unwrap();
        assert_eq!(big.offset, 0);
        mem.free(c).unwrap();
        mem.free(big).unwrap();
        assert_eq!(mem.in_use_bytes(), 0);
        // Everything coalesced back into one region.
        let whole = mem.alloc(8).unwrap();
        assert_eq!(whole.offset, 0);
    }

    #[test]
    fn peak_tracking() {
        let mut mem = DeviceMemory::new(1 << 10);
        let a = mem.alloc(16).unwrap();
        let b = mem.alloc(16).unwrap();
        mem.free(a).unwrap();
        mem.free(b).unwrap();
        assert_eq!(mem.peak_bytes(), 32 * 8);
        assert_eq!(mem.in_use_bytes(), 0);
    }

    #[test]
    fn double_free_rejected() {
        let mut mem = DeviceMemory::new(1 << 10);
        let a = mem.alloc(4).unwrap();
        mem.free(a).unwrap();
        assert_eq!(mem.free(a), Err(SimError::InvalidBuffer));
    }

    #[test]
    fn copy_length_mismatch_rejected() {
        let mut mem = DeviceMemory::new(1 << 10);
        let a = mem.alloc(4).unwrap();
        assert!(matches!(
            mem.copy_in(a, &[1.0; 3]),
            Err(SimError::CopyLengthMismatch { buffer: 4, host: 3 })
        ));
        let mut out = vec![0.0; 5];
        assert!(mem.copy_out(a, &mut out).is_err());
    }

    #[test]
    fn zero_length_alloc_is_fine() {
        let mut mem = DeviceMemory::new(64);
        let z = mem.alloc(0).unwrap();
        assert!(z.is_empty());
        assert!(mem.free(z).is_ok());
    }

    #[test]
    fn slice_carves_subbuffer() {
        let mut mem = DeviceMemory::new(1 << 10);
        let a = mem.alloc(10).unwrap();
        mem.copy_in(a, &(0..10).map(|i| i as f64).collect::<Vec<_>>()).unwrap();
        let s = a.slice(4, 3);
        let mut out = vec![0.0; 3];
        mem.copy_out(s, &mut out).unwrap();
        assert_eq!(out, vec![4.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "slice out of bounds")]
    fn slice_bounds_checked() {
        let mut mem = DeviceMemory::new(1 << 10);
        let a = mem.alloc(4).unwrap();
        let _ = a.slice(2, 3);
    }
}
