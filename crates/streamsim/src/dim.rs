//! Grid and block dimensions, mirroring CUDA's `dim3`.

/// A three-component extent, like CUDA's `dim3`. Components default to 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Dim3 {
    /// Extent along x (fastest-varying).
    pub x: usize,
    /// Extent along y.
    pub y: usize,
    /// Extent along z (slowest-varying).
    pub z: usize,
}

impl Dim3 {
    /// A 1-D extent `(n, 1, 1)`.
    pub const fn x(n: usize) -> Self {
        Self { x: n, y: 1, z: 1 }
    }

    /// A 2-D extent `(nx, ny, 1)`.
    pub const fn xy(nx: usize, ny: usize) -> Self {
        Self { x: nx, y: ny, z: 1 }
    }

    /// A full 3-D extent.
    pub const fn xyz(nx: usize, ny: usize, nz: usize) -> Self {
        Self { x: nx, y: ny, z: nz }
    }

    /// Total number of elements `x * y * z`.
    pub const fn count(&self) -> usize {
        self.x * self.y * self.z
    }

    /// Linearizes an index triple within this extent (x fastest).
    ///
    /// # Panics
    /// Panics (debug) if any component is out of range.
    #[inline]
    pub fn linearize(&self, idx: Dim3) -> usize {
        debug_assert!(idx.x < self.x && idx.y < self.y && idx.z < self.z);
        (idx.z * self.y + idx.y) * self.x + idx.x
    }

    /// Inverse of [`Dim3::linearize`].
    #[inline]
    pub fn delinearize(&self, lin: usize) -> Dim3 {
        debug_assert!(lin < self.count());
        let x = lin % self.x;
        let rest = lin / self.x;
        Dim3 { x, y: rest % self.y, z: rest / self.y }
    }
}

impl Default for Dim3 {
    fn default() -> Self {
        Self { x: 1, y: 1, z: 1 }
    }
}

impl From<usize> for Dim3 {
    fn from(n: usize) -> Self {
        Dim3::x(n)
    }
}

/// The dimensions of one kernel launch: grid of thread blocks, threads per
/// block. Mirrors the `<<<grid, block>>>` pair of CUDA.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchDims {
    /// Number of thread blocks along each axis.
    pub grid: Dim3,
    /// Number of threads per block along each axis.
    pub block: Dim3,
}

impl LaunchDims {
    /// Creates launch dimensions.
    pub fn new(grid: Dim3, block: Dim3) -> Self {
        Self { grid, block }
    }

    /// Total number of thread blocks.
    pub fn num_blocks(&self) -> usize {
        self.grid.count()
    }

    /// Threads per block.
    pub fn threads_per_block(&self) -> usize {
        self.block.count()
    }

    /// Total number of threads in the launch.
    pub fn total_threads(&self) -> usize {
        self.num_blocks() * self.threads_per_block()
    }
}

/// Computes the 1-D grid size needed to cover `n` items with `block_size`
/// threads per block — the ubiquitous `(n + b - 1) / b` of CUDA host code.
pub fn grid_for(n: usize, block_size: usize) -> usize {
    assert!(block_size > 0, "block size must be positive");
    n.div_ceil(block_size)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_count() {
        assert_eq!(Dim3::x(5).count(), 5);
        assert_eq!(Dim3::xy(3, 4).count(), 12);
        assert_eq!(Dim3::xyz(2, 3, 4).count(), 24);
        assert_eq!(Dim3::default().count(), 1);
        let d: Dim3 = 7usize.into();
        assert_eq!(d, Dim3::x(7));
    }

    #[test]
    fn linearize_roundtrip() {
        let ext = Dim3::xyz(3, 4, 5);
        for lin in 0..ext.count() {
            assert_eq!(ext.linearize(ext.delinearize(lin)), lin);
        }
    }

    #[test]
    fn linearize_x_fastest() {
        let ext = Dim3::xy(4, 3);
        assert_eq!(ext.linearize(Dim3 { x: 1, y: 0, z: 0 }), 1);
        assert_eq!(ext.linearize(Dim3 { x: 0, y: 1, z: 0 }), 4);
    }

    #[test]
    fn launch_dims_totals() {
        let d = LaunchDims::new(Dim3::x(14), Dim3::x(128));
        assert_eq!(d.num_blocks(), 14);
        assert_eq!(d.threads_per_block(), 128);
        assert_eq!(d.total_threads(), 14 * 128);
    }

    #[test]
    fn grid_for_covers_exactly() {
        assert_eq!(grid_for(1000, 128), 8);
        assert_eq!(grid_for(1024, 128), 8);
        assert_eq!(grid_for(1025, 128), 9);
        assert_eq!(grid_for(0, 128), 0);
    }

    #[test]
    #[should_panic(expected = "block size must be positive")]
    fn grid_for_rejects_zero_block() {
        let _ = grid_for(10, 0);
    }
}
