//! Analytic CPU performance model — the paper's baseline machine.
//!
//! The paper's comparator is "the CPU version … compiled with GCC 4.4.1 with
//! O3 option" on an Intel Core i7 930 (Nehalem, 2.80 GHz, 12 GB DDR3).
//! We model it as a cache-aware roofline:
//!
//! ```text
//! t_phase = max( flops / effective_flops,  bytes / bandwidth(working_set) )
//! ```
//!
//! where `bandwidth(working_set)` walks the Nehalem memory hierarchy: a
//! phase whose working set fits in L1/L2/L3 streams at that cache's
//! bandwidth; once the working set spills past L3 (8 MB) it drops to
//! sustained DRAM bandwidth. This is the mechanism behind the paper's
//! Fig. 8: the dense `H~` matrix is `8 D^2` bytes, which leaves L3 between
//! `D = 1024` (8 MB) and `D = 2048` (32 MB), so the CPU curve bends upward
//! while the GPU's does not.
//!
//! `effective_flops` is deliberately far below the chip's theoretical SSE
//! peak: the paper's inner loops are dependent-chain scalar code
//! (recursion, gathers, reductions) that gcc 4.4 does not vectorize.
//! See DESIGN.md §5 for the calibration discussion.

use crate::model::SimTime;

/// One cache level: capacity and sustainable streaming bandwidth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheLevel {
    /// Capacity in bytes.
    pub capacity: usize,
    /// Sustainable bandwidth in bytes/s for working sets at this level.
    pub bandwidth: f64,
}

/// Hardware description of the simulated host CPU.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuSpec {
    /// Marketing name, for reports.
    pub name: &'static str,
    /// Clock in GHz.
    pub clock_ghz: f64,
    /// Effective double-precision FLOP/s for the modeled workload
    /// (dependent-chain scalar code; *not* the SSE peak).
    pub effective_flops: f64,
    /// Cache hierarchy, innermost first. Working sets larger than the last
    /// level stream from DRAM.
    pub caches: Vec<CacheLevel>,
    /// Sustained DRAM bandwidth in bytes/s.
    pub dram_bandwidth: f64,
}

impl CpuSpec {
    /// The Intel Core i7 930 of the paper's testbed. Bandwidth numbers are
    /// sustained-streaming estimates for Nehalem; `effective_flops` is the
    /// calibrated scalar-code rate (see module docs).
    pub fn core_i7_930() -> Self {
        Self {
            name: "Core i7 930 (simulated)",
            clock_ghz: 2.8,
            // ~2 sustained scalar DP ops/cycle across the whole chip for
            // the paper's loop mix (see DESIGN.md §5 calibration).
            effective_flops: 5.6e9,
            caches: vec![
                CacheLevel { capacity: 32 * 1024, bandwidth: 90e9 },
                CacheLevel { capacity: 256 * 1024, bandwidth: 55e9 },
                CacheLevel { capacity: 8 * 1024 * 1024, bandwidth: 30e9 },
            ],
            // Whole-chip sustained streaming on triple-channel DDR3-1066
            // (theoretical 25.6 GB/s); matches the interpretation that the
            // paper's "CPU version" keeps the full chip busy.
            dram_bandwidth: 20e9,
        }
    }

    /// Small synthetic CPU for tests, with round numbers.
    pub fn test_cpu() -> Self {
        Self {
            name: "TestCPU",
            clock_ghz: 1.0,
            effective_flops: 1e9,
            caches: vec![
                CacheLevel { capacity: 1024, bandwidth: 100e9 },
                CacheLevel { capacity: 1024 * 1024, bandwidth: 10e9 },
            ],
            dram_bandwidth: 1e9,
        }
    }

    /// Bandwidth available to a phase with the given working set.
    pub fn bandwidth_for(&self, working_set_bytes: usize) -> f64 {
        for level in &self.caches {
            if working_set_bytes <= level.capacity {
                return level.bandwidth;
            }
        }
        self.dram_bandwidth
    }

    /// Models one computation phase.
    pub fn phase_time(&self, traffic: &MemTraffic) -> SimTime {
        let t_flops = traffic.flops as f64 / self.effective_flops;
        let t_mem = traffic.bytes as f64 / self.bandwidth_for(traffic.working_set_bytes);
        SimTime::from_secs(t_flops.max(t_mem))
    }
}

/// Work and traffic of one CPU phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemTraffic {
    /// Double-precision operations.
    pub flops: u64,
    /// Bytes moved between the core and the memory system.
    pub bytes: u64,
    /// Size of the data the phase cycles through — selects the cache level.
    pub working_set_bytes: usize,
}

impl MemTraffic {
    /// Builder-style constructor.
    pub fn new(flops: u64, bytes: u64, working_set_bytes: usize) -> Self {
        Self { flops, bytes, working_set_bytes }
    }
}

/// Accumulates modeled CPU time across phases, like
/// [`Device::elapsed`](crate::Device::elapsed) does for the GPU.
#[derive(Debug, Clone, Default)]
pub struct HostClock {
    elapsed: SimTime,
    phases: usize,
}

impl HostClock {
    /// Fresh clock at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges one phase on `cpu` and returns its modeled duration.
    pub fn charge(&mut self, cpu: &CpuSpec, traffic: &MemTraffic) -> SimTime {
        let t = cpu.phase_time(traffic);
        self.elapsed += t;
        self.phases += 1;
        t
    }

    /// Total modeled time.
    pub fn elapsed(&self) -> SimTime {
        self.elapsed
    }

    /// Number of phases charged.
    pub fn phases(&self) -> usize {
        self.phases
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_follows_hierarchy() {
        let cpu = CpuSpec::test_cpu();
        assert_eq!(cpu.bandwidth_for(512), 100e9); // L1
        assert_eq!(cpu.bandwidth_for(100_000), 10e9); // L2
        assert_eq!(cpu.bandwidth_for(10_000_000), 1e9); // DRAM
    }

    #[test]
    fn phase_time_compute_bound() {
        let cpu = CpuSpec::test_cpu();
        // 1 GFLOP on 1 GFLOP/s, tiny memory traffic: 1 s.
        let t = cpu.phase_time(&MemTraffic::new(1_000_000_000, 8, 8));
        assert!((t.as_secs_f64() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn phase_time_memory_bound_when_spilled() {
        let cpu = CpuSpec::test_cpu();
        // 1 GB streamed from DRAM at 1 GB/s dominates 0.1 GFLOP.
        let t = cpu.phase_time(&MemTraffic::new(100_000_000, 1_000_000_000, 10_000_000));
        assert!((t.as_secs_f64() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cache_fit_is_faster_than_spill() {
        let cpu = CpuSpec::test_cpu();
        let in_cache = cpu.phase_time(&MemTraffic::new(0, 1_000_000, 1000));
        let spilled = cpu.phase_time(&MemTraffic::new(0, 1_000_000, 10_000_000));
        assert!(in_cache.as_secs_f64() * 10.0 < spilled.as_secs_f64());
    }

    #[test]
    fn host_clock_accumulates() {
        let cpu = CpuSpec::test_cpu();
        let mut clk = HostClock::new();
        clk.charge(&cpu, &MemTraffic::new(1_000_000_000, 0, 0));
        clk.charge(&cpu, &MemTraffic::new(2_000_000_000, 0, 0));
        assert!((clk.elapsed().as_secs_f64() - 3.0).abs() < 1e-9);
        assert_eq!(clk.phases(), 2);
    }

    #[test]
    fn i7_spec_sanity() {
        let cpu = CpuSpec::core_i7_930();
        assert_eq!(cpu.clock_ghz, 2.8);
        // L3 boundary: 8 MB matrix still in cache, 32 MB not.
        assert!(cpu.bandwidth_for(8 * 1024 * 1024) > cpu.bandwidth_for(32 * 1024 * 1024));
    }
}
