//! Property-based tests for the device simulator.

use kpm_streamsim::kernel::{BlockKernel, BlockScope, KernelCost};
use kpm_streamsim::{Device, Dim3, GpuSpec, LaunchDims};
use proptest::prelude::*;

proptest! {
    #[test]
    fn allocator_never_overlaps_live_buffers(
        sizes in proptest::collection::vec(1usize..200, 1..20),
        free_mask in proptest::collection::vec(any::<bool>(), 20),
    ) {
        let mut dev = Device::new(GpuSpec::test_gpu());
        let mut live = Vec::new();
        for (i, &len) in sizes.iter().enumerate() {
            if let Ok(buf) = dev.alloc(len) {
                live.push(buf);
                if free_mask[i % free_mask.len()] && live.len() > 1 {
                    let victim = live.remove(live.len() / 2);
                    dev.free(victim).unwrap();
                }
            }
        }
        // Write a distinct constant through each live buffer, then verify
        // none clobbered another.
        for (k, buf) in live.iter().enumerate() {
            dev.copy_to_device(&vec![k as f64 + 1.0; buf.len()], *buf).unwrap();
        }
        for (k, buf) in live.iter().enumerate() {
            let mut out = vec![0.0; buf.len()];
            dev.peek(*buf, &mut out).unwrap();
            prop_assert!(out.iter().all(|&v| v == k as f64 + 1.0),
                "buffer {} corrupted", k);
        }
        // Free everything: in-use returns to zero.
        for buf in live {
            dev.free(buf).unwrap();
        }
        prop_assert_eq!(dev.mem_in_use(), 0);
    }

    #[test]
    fn occupancy_is_in_unit_range_and_warp_aligned_is_optimal(
        blocks in 1usize..2000,
        warps in 1usize..8,
    ) {
        let g = GpuSpec::tesla_c2050();
        let aligned = warps * 32;
        let occ = g.occupancy(blocks, aligned);
        prop_assert!(occ > 0.0 && occ <= 1.0);
        // A misaligned block with the same warp count never beats it.
        let misaligned = aligned - 7;
        if misaligned > 0 {
            prop_assert!(g.occupancy(blocks, misaligned) <= occ + 1e-12);
        }
    }

    #[test]
    fn kernel_time_is_monotone_in_cost(
        flops in 0u64..10_000_000_000,
        bytes in 0u64..10_000_000_000,
        blocks in 1usize..500,
    ) {
        let g = GpuSpec::tesla_c2050();
        let base = KernelCost::new().flops(flops).global_read(bytes);
        let more_flops = KernelCost::new().flops(flops * 2 + 1).global_read(bytes);
        let more_bytes = KernelCost::new().flops(flops).global_read(bytes * 2 + 8);
        let t0 = g.kernel_time(&base, blocks, 128, 0.2).as_secs_f64();
        prop_assert!(g.kernel_time(&more_flops, blocks, 128, 0.2).as_secs_f64() >= t0);
        prop_assert!(g.kernel_time(&more_bytes, blocks, 128, 0.2).as_secs_f64() >= t0);
    }

    #[test]
    fn transfer_time_is_affine_in_bytes(a in 1usize..1_000_000, b in 1usize..1_000_000) {
        let g = GpuSpec::test_gpu();
        let ta = g.transfer_time(a).as_secs_f64();
        let tb = g.transfer_time(b).as_secs_f64();
        let tab = g.transfer_time(a + b).as_secs_f64();
        // t(a + b) = t(a) + t(b) - latency (one latency saved by batching).
        let lat = g.pcie_latency.as_secs_f64();
        prop_assert!((tab - (ta + tb - lat)).abs() < 1e-12);
    }
}

/// A kernel whose blocks each write their own slot; used to check that
/// every block of every grid shape executes exactly once.
struct BlockStamp {
    out: kpm_streamsim::GlobalBuffer,
}

impl BlockKernel for BlockStamp {
    fn name(&self) -> &'static str {
        "block_stamp"
    }
    fn execute(&self, scope: &mut BlockScope<'_>) {
        let id = scope.block_id();
        scope.global(self.out).store(id, id as f64 + 1.0);
    }
    fn cost(&self, dims: &LaunchDims) -> KernelCost {
        KernelCost::new().global_write(8 * dims.num_blocks() as u64)
    }
}

proptest! {
    #[test]
    fn every_block_executes_once(
        gx in 1usize..12, gy in 1usize..5, gz in 1usize..4,
    ) {
        let mut dev = Device::new(GpuSpec::test_gpu());
        let n = gx * gy * gz;
        let out = dev.alloc(n).unwrap();
        dev.launch(&BlockStamp { out }, Dim3::xyz(gx, gy, gz), Dim3::x(4)).unwrap();
        let mut res = vec![0.0; n];
        dev.peek(out, &mut res).unwrap();
        for (i, &v) in res.iter().enumerate() {
            prop_assert_eq!(v, i as f64 + 1.0, "block {} missing", i);
        }
    }
}
