//! The streaming-refinement exactness guarantee (ISSUE 6 acceptance
//! criterion): every partial result at order N delivered over the wire is
//! bitwise identical to a cold single-process run at N — through the local
//! compute path and through the sharded engine.

use kpm_net::{NetClient, NetConfig, NetFrame, NetServer};
use kpm_serve::worker::compute_raw_moments;
use kpm_serve::{BatchConfig, JobSpec};
use kpm_shard::ShardedEngine;
use std::sync::Arc;
use std::time::Duration;

const SPEC: &str = "lattice=chain:48 moments=1024 random=2 sets=1 seed=3";
const LADDER: [usize; 3] = [64, 256, 1024];

fn quick_config() -> BatchConfig {
    BatchConfig {
        workers: 2,
        timeout: Duration::from_secs(60),
        max_retries: 0,
        ..BatchConfig::default()
    }
}

fn spec_at(n: usize) -> JobSpec {
    let mut spec = JobSpec::parse(SPEC).unwrap();
    spec.num_moments = n;
    spec
}

/// Submits the ladder and checks each streamed partial bitwise against an
/// independent cold run at that order.
fn assert_refinement_matches_cold_runs(server: NetServer) {
    let addr = server.local_addr().to_string();
    let mut client = NetClient::connect(&addr).unwrap();
    let completions = client.submit_and_collect("refine", 7, SPEC, 3).unwrap();
    client.goodbye().unwrap();
    assert!(matches!(client.recv().unwrap(), NetFrame::Bye));
    let report = server.finish();
    assert_eq!(report.failed(), 0, "{}", report.render());

    assert_eq!(completions.len(), 3);
    for (step, (completion, &n)) in completions.iter().zip(&LADDER).enumerate() {
        assert_eq!(completion.step, step as u32);
        assert_eq!(completion.of, 3);
        assert_eq!(completion.seq, step as u64, "FIFO within the stream");
        assert_eq!(completion.n as usize, n);

        // The cold reference: a fresh single-process run at exactly this
        // order (the same path `kpm batch`/`kpm dos` take).
        let (cold, a_plus, a_minus) = compute_raw_moments(&spec_at(n), 0).unwrap();
        assert_eq!(completion.a_plus.to_bits(), a_plus.to_bits());
        assert_eq!(completion.a_minus.to_bits(), a_minus.to_bits());
        assert_eq!(completion.mean.len(), n);
        for (streamed, cold) in completion.mean.iter().zip(&cold.mean) {
            assert_eq!(streamed.to_bits(), cold.to_bits(), "mean bits at order {n}");
        }
        for (streamed, cold) in completion.std_err.iter().zip(&cold.std_err) {
            assert_eq!(streamed.to_bits(), cold.to_bits(), "std_err bits at order {n}");
        }
    }
}

#[test]
fn refinement_ladder_is_bitwise_identical_to_cold_runs() {
    let server =
        NetServer::start("127.0.0.1:0", quick_config(), None, NetConfig::default()).unwrap();
    assert_refinement_matches_cold_runs(server);
}

#[test]
fn refinement_through_sharded_engine_is_bitwise_identical() {
    let engine = Arc::new(ShardedEngine::local(2));
    let server =
        NetServer::start("127.0.0.1:0", quick_config(), Some(engine), NetConfig::default())
            .unwrap();
    assert_refinement_matches_cold_runs(server);
}
