//! The CI `net-integration` scenario: one localhost server, four concurrent
//! client sessions — two mixed-stream submitters, one slow reader, one
//! flooding client that must be shed — asserting FIFO-per-stream delivery,
//! load shedding without stalling accepted work, and byte-identical results
//! versus the cold batch path.

use kpm_net::{Completion, NetClient, NetConfig, NetFrame, NetServer};
use kpm_serve::worker::compute_raw_moments;
use kpm_serve::{BatchConfig, JobSpec};
use std::collections::HashMap;
use std::time::Duration;

fn server() -> NetServer {
    NetServer::start(
        "127.0.0.1:0",
        BatchConfig {
            workers: 2,
            queue_capacity: 16,
            timeout: Duration::from_secs(60),
            max_retries: 0,
            ..BatchConfig::default()
        },
        None,
        NetConfig { max_inflight_per_session: 8 },
    )
    .unwrap()
}

/// Cold single-process reference for a spec line (the `kpm batch` path —
/// serve's own tests pin `compute_raw_moments` bitwise against it).
fn cold_mean_bits(spec: &str) -> Vec<u64> {
    let (stats, _, _) = compute_raw_moments(&JobSpec::parse(spec).unwrap(), 0).unwrap();
    stats.mean.iter().map(|m| m.to_bits()).collect()
}

/// Submits with bounded retry on `Rejected` (the shed-and-retry protocol a
/// well-behaved client follows under load).
fn submit_with_retry(client: &mut NetClient, stream: &str, tag: u64, spec: &str) {
    client.submit(stream, tag, spec, 1).unwrap();
}

/// Reads frames until `want` completions have arrived, honoring retries for
/// rejected tags; returns completions in arrival order.
fn collect(
    client: &mut NetClient,
    pending: &mut HashMap<u64, (String, String)>,
    delay: Duration,
) -> Vec<Completion> {
    let mut got = Vec::new();
    while !pending.is_empty() {
        if !delay.is_zero() {
            std::thread::sleep(delay); // a deliberately slow reader
        }
        match client.recv().unwrap() {
            NetFrame::Accepted { .. } => {}
            NetFrame::Rejected { tag, retry_after_ms, reason } => {
                // Shed: back off and resubmit the same work.
                assert!(retry_after_ms > 0, "load shed must carry a retry hint: {reason}");
                std::thread::sleep(Duration::from_millis(retry_after_ms.min(200)));
                let (stream, spec) = pending[&tag].clone();
                submit_with_retry(client, &stream, tag, &spec);
            }
            NetFrame::Completion(c) => {
                pending.remove(&c.tag);
                got.push(c);
            }
            other => panic!("unexpected frame {other:?}"),
        }
    }
    got
}

fn run_client(
    addr: &str,
    name: &str,
    jobs: Vec<(String, String)>,
    delay: Duration,
) -> Vec<Completion> {
    let mut client = NetClient::connect(addr).unwrap();
    let mut pending: HashMap<u64, (String, String)> = HashMap::new();
    for (tag, (stream, spec)) in jobs.into_iter().enumerate() {
        submit_with_retry(&mut client, &stream, tag as u64, &spec);
        pending.insert(tag as u64, (stream, spec));
    }
    let got = collect(&mut client, &mut pending, delay);
    client.goodbye().unwrap();
    loop {
        match client.recv().unwrap() {
            NetFrame::Bye => break,
            NetFrame::Accepted { .. } | NetFrame::Rejected { .. } => {}
            other => panic!("{name}: unexpected frame after goodbye: {other:?}"),
        }
    }
    got
}

#[test]
fn four_concurrent_clients_mixed_slow_and_flooding() {
    let server = server();
    let addr = server.local_addr().to_string();

    // Distinct specs so each client's results are attributable; all cheap.
    let mixed_a: Vec<(String, String)> = (0..6)
        .map(|i| {
            let stream = if i % 2 == 0 { "even" } else { "odd" };
            (stream.into(), format!("lattice=chain:32 moments=64 random=2 sets=1 seed={i}"))
        })
        .collect();
    let mixed_b: Vec<(String, String)> = (0..6)
        .map(|i| ("sweep".into(), format!("lattice=chain:24 moments=48 random=1 sets=2 seed={i}")))
        .collect();
    let slow: Vec<(String, String)> = (0..3)
        .map(|i| ("slow".into(), format!("lattice=chain:16 moments=32 random=1 sets=1 seed={i}")))
        .collect();

    let threads: Vec<std::thread::JoinHandle<Vec<Completion>>> = vec![
        {
            let (addr, jobs) = (addr.clone(), mixed_a.clone());
            std::thread::spawn(move || run_client(&addr, "mixed-a", jobs, Duration::ZERO))
        },
        {
            let (addr, jobs) = (addr.clone(), mixed_b.clone());
            std::thread::spawn(move || run_client(&addr, "mixed-b", jobs, Duration::ZERO))
        },
        {
            let (addr, jobs) = (addr.clone(), slow.clone());
            std::thread::spawn(move || run_client(&addr, "slow", jobs, Duration::from_millis(40)))
        },
        {
            // The flooding client: 40 sleepy jobs fired at wire speed into a
            // 16-slot queue behind an 8-job session budget — most must be
            // shed. It submits without reading, then drains.
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = NetClient::connect(&addr).unwrap();
                for tag in 0..40u64 {
                    client
                        .submit(
                            "flood",
                            tag,
                            "lattice=chain:16 moments=16 random=1 sets=1 fault=sleep:20",
                            1,
                        )
                        .unwrap();
                }
                client.goodbye().unwrap();
                let (mut accepted, mut rejected, mut completions) = (0u32, 0u32, Vec::new());
                loop {
                    match client.recv().unwrap() {
                        NetFrame::Accepted { .. } => accepted += 1,
                        NetFrame::Rejected { retry_after_ms, .. } => {
                            assert!(retry_after_ms > 0);
                            rejected += 1;
                        }
                        NetFrame::Completion(c) => completions.push(c),
                        NetFrame::Bye => break,
                        other => panic!("flood: unexpected frame {other:?}"),
                    }
                }
                assert!(rejected > 0, "flooding client must be shed");
                assert_eq!(
                    completions.len() as u32,
                    accepted,
                    "every accepted job completes despite the shedding"
                );
                completions
            })
        },
    ];

    let results: Vec<Vec<Completion>> =
        threads.into_iter().map(|t| t.join().expect("client thread")).collect();

    // FIFO within every stream: arrival order == seq order, seqs contiguous.
    for completions in &results {
        let mut per_stream: HashMap<&str, u64> = HashMap::new();
        for c in completions {
            let next = per_stream.entry(c.stream.as_str()).or_insert(0);
            assert_eq!(c.seq, *next, "FIFO violated on stream {}", c.stream);
            *next += 1;
        }
    }

    // Byte-identical to the cold batch path, for every client's jobs.
    for (completions, jobs) in results.iter().zip([&mixed_a, &mixed_b, &slow]) {
        assert_eq!(completions.len(), jobs.len());
        for c in completions {
            let (_, spec) = &jobs[c.tag as usize];
            let cold = cold_mean_bits(spec);
            let streamed: Vec<u64> = c.mean.iter().map(|m| m.to_bits()).collect();
            assert_eq!(streamed, cold, "moments for {spec} differ from the batch path");
        }
    }
    // (The flooding client's jobs share one spec; spot-check it too.)
    let flood_cold = cold_mean_bits("lattice=chain:16 moments=16 random=1 sets=1 fault=sleep:20");
    for c in &results[3] {
        let streamed: Vec<u64> = c.mean.iter().map(|m| m.to_bits()).collect();
        assert_eq!(streamed, flood_cold);
    }

    let report = server.finish();
    assert_eq!(report.failed(), 0, "{}", report.render());
}

#[test]
fn stats_command_returns_the_versioned_schema() {
    use kpm_obs::json::{parse, Value};
    let server = server();
    let mut client = NetClient::connect(&server.local_addr().to_string()).unwrap();
    // Put one job through so the counters are nonzero.
    client.submit_and_collect("s", 1, "lattice=chain:16 moments=16 random=1 sets=1", 1).unwrap();
    client.stats(99).unwrap();
    let NetFrame::StatsReply { tag, json } = client.recv().unwrap() else {
        panic!("expected stats reply")
    };
    assert_eq!(tag, 99);

    let value = parse(&json).expect("net-stats JSON parses");
    assert_eq!(value.get("version").and_then(Value::as_u64), Some(1));
    assert_eq!(value.get("kind").and_then(Value::as_str), Some("net-stats"));
    let serve = value.get("serve").expect("nested serve metrics");
    assert_eq!(serve.get("kind").and_then(Value::as_str), Some("serve-metrics"));
    assert!(
        serve.get("counters").and_then(|c| c.get("serve.jobs.submitted")).is_some(),
        "serve counters present"
    );
    // The device counters ride along in the same versioned document: the
    // job above ran uncached on the default host device.
    assert_eq!(
        serve.get("counters").and_then(|c| c.get("serve.device.host")).and_then(Value::as_u64),
        Some(1)
    );
    assert_eq!(
        serve.get("counters").and_then(|c| c.get("serve.device.sim")).and_then(Value::as_u64),
        Some(0)
    );
    let net = value.get("net").expect("net section");
    let counters = net.get("counters").expect("net counters");
    assert_eq!(counters.get("net.sessions.opened").and_then(Value::as_u64), Some(1));
    assert_eq!(counters.get("net.submissions.accepted").and_then(Value::as_u64), Some(1));
    assert_eq!(counters.get("net.jobs.delivered").and_then(Value::as_u64), Some(1));
    assert_eq!(counters.get("net.stats.requests").and_then(Value::as_u64), Some(1));
    let gauges = net.get("gauges").expect("net gauges");
    assert_eq!(gauges.get("net.sessions.open").and_then(Value::as_u64), Some(1));
    assert_eq!(gauges.get("net.jobs.inflight").and_then(Value::as_u64), Some(0));

    client.goodbye().unwrap();
    assert!(matches!(client.recv().unwrap(), NetFrame::Bye));
    server.finish();
}

#[test]
fn invalid_spec_is_rejected_without_a_retry_hint() {
    let server = server();
    let mut client = NetClient::connect(&server.local_addr().to_string()).unwrap();
    client.submit("s", 5, "lattice=klein-bottle:7 moments=banana", 1).unwrap();
    match client.recv().unwrap() {
        NetFrame::Rejected { tag, retry_after_ms, reason } => {
            assert_eq!(tag, 5);
            assert_eq!(retry_after_ms, 0, "invalid requests must not suggest retrying");
            assert!(reason.contains("bad spec"), "{reason}");
        }
        other => panic!("expected rejection, got {other:?}"),
    }
    client.goodbye().unwrap();
    assert!(matches!(client.recv().unwrap(), NetFrame::Bye));
    server.finish();
}
