//! Blocking client for the `KPNT` protocol, used by `kpm submit` and the
//! integration tests.

use crate::error::NetError;
use crate::protocol::{self, Completion, NetFrame};
use std::net::TcpStream;

/// One client session. Writes commands, reads server frames; the caller
/// drives the conversation (completions arrive asynchronously, so expect
/// them interleaved with command replies).
pub struct NetClient {
    stream: TcpStream,
}

impl NetClient {
    /// Connects to a server at `addr` (`host:port`).
    ///
    /// # Errors
    /// [`NetError::Io`] on connect failure.
    pub fn connect(addr: &str) -> Result<NetClient, NetError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(NetClient { stream })
    }

    fn send(&mut self, frame: &NetFrame) -> Result<(), NetError> {
        use std::io::Write as _;
        self.stream.write_all(&protocol::encode(frame))?;
        Ok(())
    }

    /// Submits `spec` on `stream` with a client-chosen correlation `tag`;
    /// `refine_steps > 1` requests streaming refinement. Expect an
    /// [`NetFrame::Accepted`] or [`NetFrame::Rejected`] among subsequent
    /// frames.
    ///
    /// # Errors
    /// [`NetError::Io`] on write failure.
    pub fn submit(
        &mut self,
        stream: &str,
        tag: u64,
        spec: &str,
        refine_steps: u32,
    ) -> Result<(), NetError> {
        self.send(&NetFrame::Submit { stream: stream.into(), tag, spec: spec.into(), refine_steps })
    }

    /// Requests a metrics snapshot ([`NetFrame::StatsReply`] with the same
    /// `tag`).
    ///
    /// # Errors
    /// [`NetError::Io`] on write failure.
    pub fn stats(&mut self, tag: u64) -> Result<(), NetError> {
        self.send(&NetFrame::Stats { tag })
    }

    /// Announces the end of the session; the server delivers every pending
    /// completion, then [`NetFrame::Bye`].
    ///
    /// # Errors
    /// [`NetError::Io`] on write failure.
    pub fn goodbye(&mut self) -> Result<(), NetError> {
        self.send(&NetFrame::Goodbye)
    }

    /// Blocking read of the next server frame.
    ///
    /// # Errors
    /// [`NetError::Io`] on socket failure/EOF, [`NetError::Protocol`] on a
    /// malformed frame.
    pub fn recv(&mut self) -> Result<NetFrame, NetError> {
        protocol::read_frame(&mut self.stream)
    }

    /// Convenience: submit one spec and block until the full refinement
    /// ladder has arrived, returning the completions in stream order.
    ///
    /// # Errors
    /// [`NetError::Rejected`] if the server sheds the submission,
    /// [`NetError::Server`] if any ladder step fails or the server closes
    /// early, plus the transport errors of [`NetClient::recv`].
    pub fn submit_and_collect(
        &mut self,
        stream: &str,
        tag: u64,
        spec: &str,
        refine_steps: u32,
    ) -> Result<Vec<Completion>, NetError> {
        self.submit(stream, tag, spec, refine_steps)?;
        let mut expected: Option<u32> = None;
        let mut got = Vec::new();
        loop {
            match self.recv()? {
                NetFrame::Accepted { tag: t, steps } if t == tag => expected = Some(steps),
                NetFrame::Rejected { tag: t, retry_after_ms, reason } if t == tag => {
                    return Err(NetError::Rejected { retry_after_ms, reason });
                }
                NetFrame::Completion(c) if c.tag == tag => {
                    got.push(c);
                    if Some(got.len() as u32) == expected {
                        return Ok(got);
                    }
                }
                NetFrame::JobFailed { tag: t, error, step, .. } if t == tag => {
                    return Err(NetError::Server(format!("step {step} failed: {error}")));
                }
                NetFrame::Bye => return Err(NetError::Server("server closed early".into())),
                _ => {} // frames for other tags/streams: not ours to handle
            }
        }
    }
}
