//! Network-class errors: everything that can go wrong between a client and
//! the serving front-end, as opposed to inside a job (that is a
//! [`kpm_serve::worker::JobError`], delivered in-band as a `JobFailed`
//! frame).

use kpm_wire::WireError;

/// Why a network operation failed.
#[derive(Debug, Clone)]
pub enum NetError {
    /// Socket-level failure (connect, read, write, EOF mid-frame).
    Io(String),
    /// Malformed or incompatible frame (bad magic, version, payload).
    Protocol(String),
    /// The server refused the submission; retry after the given delay
    /// (`0` means the request itself was invalid — do not retry).
    Rejected {
        /// Suggested client backoff, milliseconds.
        retry_after_ms: u64,
        /// Human-readable refusal reason.
        reason: String,
    },
    /// The server closed the session or misbehaved at the protocol level
    /// in a way that is not a framing error (e.g. unexpected frame kind).
    Server(String),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(msg) => write!(f, "net io: {msg}"),
            NetError::Protocol(msg) => write!(f, "net protocol: {msg}"),
            NetError::Rejected { retry_after_ms, reason } => {
                write!(f, "rejected: {reason} (retry after {retry_after_ms} ms)")
            }
            NetError::Server(msg) => write!(f, "server: {msg}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<WireError> for NetError {
    fn from(e: WireError) -> Self {
        match e {
            WireError::Io(msg) => NetError::Io(msg),
            WireError::Protocol(msg) => NetError::Protocol(msg),
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_errors_map_by_class() {
        assert!(matches!(NetError::from(WireError::Io("x".into())), NetError::Io(_)));
        assert!(matches!(NetError::from(WireError::Protocol("x".into())), NetError::Protocol(_)));
    }

    #[test]
    fn display_carries_retry_hint() {
        let e = NetError::Rejected { retry_after_ms: 150, reason: "queue full".into() };
        assert_eq!(e.to_string(), "rejected: queue full (retry after 150 ms)");
    }
}
