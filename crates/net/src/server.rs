//! The TCP front-end: accept loop, session lifecycle, shutdown.

use crate::error::NetError;
use crate::session::{self, Registry, SessionContext};
use crate::NetConfig;
use kpm_serve::{BatchConfig, BatchReport, BatchService, MomentEngine};
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A running network front-end over a [`BatchService`].
///
/// Sessions run on their own threads; jobs execute on the service's worker
/// pool exactly as batch jobs do (same queue, cache, retry machinery), so
/// network results are bitwise identical to `kpm batch` runs of the same
/// specs. Shut down with [`NetServer::finish`].
pub struct NetServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: std::thread::JoinHandle<()>,
    session_threads: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
    service: Arc<BatchService>,
    registry: Arc<Registry>,
}

impl NetServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral test port),
    /// starts the batch service, and begins accepting sessions.
    ///
    /// # Errors
    /// [`NetError::Io`] if the listener cannot bind.
    pub fn start(
        addr: &str,
        config: BatchConfig,
        engine: Option<Arc<dyn MomentEngine>>,
        net: NetConfig,
    ) -> Result<NetServer, NetError> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let registry = Arc::new(Registry::default());
        let queue_capacity = config.queue_capacity;

        // The completion hook captures only the registry — never the
        // service — so the service stays uniquely owned once the session
        // and accept threads are joined (see `finish`).
        let hook_registry = Arc::clone(&registry);
        let service = Arc::new(BatchService::start_full(
            config,
            engine,
            Some(Arc::new(move |record| session::deliver(&hook_registry, record))),
        ));
        // Count prefix upgrades as refinement progress in the net stats.
        let observer_registry = Arc::clone(&registry);
        service.cache().set_upgrade_observer(Arc::new(move |_key, _n| {
            observer_registry.metrics.cache_refinements.inc();
        }));

        let stop = Arc::new(AtomicBool::new(false));
        let session_threads = Arc::new(Mutex::new(Vec::new()));
        let ctx = Arc::new(SessionContext {
            service: Arc::clone(&service),
            registry: Arc::clone(&registry),
            config: net,
            submit_lock: Arc::new(Mutex::new(())),
            queue_capacity,
        });

        let accept_stop = Arc::clone(&stop);
        let accept_sessions = Arc::clone(&session_threads);
        let accept_thread = std::thread::Builder::new()
            .name("kpm-net-accept".into())
            .spawn(move || {
                let next_session = AtomicU64::new(1);
                loop {
                    match listener.accept() {
                        Ok((socket, _peer)) => {
                            let id = next_session.fetch_add(1, Ordering::Relaxed);
                            let ctx = Arc::clone(&ctx);
                            let handle = std::thread::Builder::new()
                                .name(format!("kpm-net-session-{id}"))
                                .spawn(move || session::run_session(socket, id, &ctx))
                                .expect("spawn session");
                            accept_sessions.lock().expect("sessions vec lock").push(handle);
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            if accept_stop.load(Ordering::SeqCst) {
                                return;
                            }
                            std::thread::sleep(Duration::from_millis(10));
                        }
                        Err(_) => return,
                    }
                }
            })
            .expect("spawn accept loop");

        Ok(NetServer { local_addr, stop, accept_thread, session_threads, service, registry })
    }

    /// The bound address (resolves the port when started with `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Jobs currently waiting in the service queue.
    pub fn queue_depth(&self) -> usize {
        self.service.queue_depth()
    }

    /// The `net-stats` JSON document (same payload the `Stats` command
    /// returns over the wire).
    pub fn stats_json(&self) -> String {
        self.registry.stats_json(&self.service)
    }

    /// Stops accepting, force-closes live sessions (already-queued frames
    /// still flush to clients), drains the job queue, and returns the batch
    /// report covering every job the server admitted.
    pub fn finish(self) -> BatchReport {
        self.stop.store(true, Ordering::SeqCst);
        let _ = self.accept_thread.join();
        self.registry.shutdown_sessions();
        for handle in self.session_threads.lock().expect("sessions vec lock").drain(..) {
            let _ = handle.join();
        }
        // All service clones lived in the accept/session threads just
        // joined; the hook holds only the registry.
        let service = Arc::try_unwrap(self.service)
            .unwrap_or_else(|_| panic!("batch service still shared at shutdown"));
        service.finish()
    }
}
