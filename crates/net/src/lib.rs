//! TCP front-end for the KPM batch service: concurrent multi-client
//! sessions, named streams, FIFO-per-stream completions, and streaming
//! prefix refinement.
//!
//! # Model
//!
//! A **session** is one TCP connection speaking the versioned `KPNT`
//! protocol ([`protocol`], on the shared [`kpm_wire`] codec). Within a
//! session the client opens as many named **streams** as it likes; each
//! [`protocol::NetFrame::Submit`] targets one stream and is answered
//! asynchronously — `Accepted`/`Rejected` immediately, then one
//! **completion** per refinement step. Completions are delivered out of
//! order across streams but strictly FIFO within one ([`stream::StreamFifo`]
//! reorders them by admission-time sequence number).
//!
//! # Streaming refinement
//!
//! A submission with `refine_steps > 1` fans out into a ladder of sub-jobs
//! at ascending moment orders ([`refine_ladder`]): the low-order step is
//! cheap (often a cache hit) and arrives first as a partial result; each
//! later step extends the Chebyshev moment prefix. Because moments of order
//! `< N` are a bitwise prefix of any longer run
//! ([`kpm::MomentStats::truncated`]) and the moment cache upgrades entries
//! in place, **every partial is bitwise identical to a cold run at that
//! order** — refinement is exact, not approximate.
//!
//! # Load shedding
//!
//! Admission control refuses work instead of queueing it unboundedly: a
//! full service queue or an exhausted per-session in-flight budget yields a
//! `Rejected` frame carrying a `retry_after_ms` hint, and already-accepted
//! jobs keep flowing (a flooding client is shed without stalling anyone
//! else; a slow reader blocks only its own writer thread).

pub mod client;
pub mod error;
pub mod protocol;
pub mod server;
pub(crate) mod session;
pub mod stream;

pub use client::NetClient;
pub use error::NetError;
pub use protocol::{Completion, NetFrame};
pub use server::NetServer;

/// Front-end tuning knobs (the batch service itself is configured by
/// [`kpm_serve::BatchConfig`]).
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Per-session cap on admitted-but-undelivered sub-jobs; submissions
    /// beyond it are rejected with a retry hint (fairness under flooding).
    pub max_inflight_per_session: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self { max_inflight_per_session: 32 }
    }
}

/// The ascending moment-order ladder for a submission at order `n` with
/// `steps` refinement steps: each earlier step is a quarter the order of
/// the next (e.g. `n = 1024, steps = 3` → `[64, 256, 1024]`), clamped so
/// every step stays a valid KPM order (`>= 2`). Fewer than `steps` entries
/// are returned when the ladder bottoms out.
pub fn refine_ladder(n: usize, steps: u32) -> Vec<usize> {
    let mut ladder = vec![n.max(2)];
    while ladder.len() < steps.max(1) as usize {
        let next = ladder.last().expect("nonempty ladder") / 4;
        if next < 2 {
            break;
        }
        ladder.push(next);
    }
    ladder.reverse();
    ladder
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_matches_the_headline_example() {
        assert_eq!(refine_ladder(1024, 3), vec![64, 256, 1024]);
    }

    #[test]
    fn ladder_without_refinement_is_the_request_itself() {
        assert_eq!(refine_ladder(256, 1), vec![256]);
        assert_eq!(refine_ladder(256, 0), vec![256], "0 is clamped to 1");
    }

    #[test]
    fn ladder_bottoms_out_at_valid_orders() {
        assert_eq!(refine_ladder(8, 5), vec![2, 8]);
        assert_eq!(refine_ladder(2, 3), vec![2]);
        assert_eq!(refine_ladder(0, 2), vec![2], "order is clamped to the KPM minimum");
        for ladder in [refine_ladder(1024, 8), refine_ladder(100, 4)] {
            assert!(ladder.windows(2).all(|w| w[0] < w[1]), "strictly ascending: {ladder:?}");
            assert!(ladder.iter().all(|&n| n >= 2));
        }
    }
}
