//! Per-stream FIFO reorder buffer.
//!
//! Jobs execute on the shared worker pool in whatever order the priority
//! queue and the pool's parallelism dictate, so completions for one stream
//! can arrive out of order. The protocol promises FIFO *delivery* within a
//! stream: each submission step reserves the next sequence number at
//! admission time, and a completed frame is released only once every lower
//! seq has been released before it. Across streams nothing is held back —
//! that independence is the point of having streams.

use std::collections::BTreeMap;

/// Reorder buffer for one named stream.
#[derive(Debug, Default)]
pub struct StreamFifo {
    next_reserved: u64,
    next_to_release: u64,
    parked: BTreeMap<u64, Vec<u8>>,
}

impl StreamFifo {
    /// Reserves the next sequence number (at admission time, so wire order
    /// within the stream matches admission order regardless of execution
    /// order).
    pub fn reserve(&mut self) -> u64 {
        let seq = self.next_reserved;
        self.next_reserved += 1;
        seq
    }

    /// Marks `seq` complete with its encoded frame; returns every frame
    /// that is now releasable, in seq order (empty while a predecessor is
    /// still outstanding).
    pub fn complete(&mut self, seq: u64, frame: Vec<u8>) -> Vec<Vec<u8>> {
        debug_assert!(seq < self.next_reserved, "completing an unreserved seq");
        self.parked.insert(seq, frame);
        let mut released = Vec::new();
        while let Some(frame) = self.parked.remove(&self.next_to_release) {
            released.push(frame);
            self.next_to_release += 1;
        }
        released
    }

    /// Completions parked behind an outstanding predecessor.
    pub fn parked(&self) -> usize {
        self.parked.len()
    }

    /// Reserved sequence numbers not yet released.
    pub fn outstanding(&self) -> u64 {
        self.next_reserved - self.next_to_release
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tagged(n: u8) -> Vec<u8> {
        vec![n]
    }

    #[test]
    fn in_order_completions_release_immediately() {
        let mut fifo = StreamFifo::default();
        let (a, b) = (fifo.reserve(), fifo.reserve());
        assert_eq!((a, b), (0, 1));
        assert_eq!(fifo.complete(a, tagged(0)), vec![tagged(0)]);
        assert_eq!(fifo.complete(b, tagged(1)), vec![tagged(1)]);
        assert_eq!(fifo.outstanding(), 0);
    }

    #[test]
    fn out_of_order_completions_are_parked_then_drained_in_seq_order() {
        let mut fifo = StreamFifo::default();
        let seqs: Vec<u64> = (0..4).map(|_| fifo.reserve()).collect();
        // Finish 2, 1, 3 first: nothing releasable until 0 lands.
        assert!(fifo.complete(seqs[2], tagged(2)).is_empty());
        assert!(fifo.complete(seqs[1], tagged(1)).is_empty());
        assert!(fifo.complete(seqs[3], tagged(3)).is_empty());
        assert_eq!(fifo.parked(), 3);
        assert_eq!(
            fifo.complete(seqs[0], tagged(0)),
            vec![tagged(0), tagged(1), tagged(2), tagged(3)],
        );
        assert_eq!(fifo.parked(), 0);
        assert_eq!(fifo.outstanding(), 0);
    }

    #[test]
    fn release_resumes_mid_stream_after_a_gap() {
        let mut fifo = StreamFifo::default();
        for _ in 0..3 {
            fifo.reserve();
        }
        assert!(fifo.complete(2, tagged(2)).is_empty());
        assert_eq!(fifo.complete(0, tagged(0)), vec![tagged(0)]);
        assert_eq!(fifo.outstanding(), 2);
        assert_eq!(fifo.complete(1, tagged(1)), vec![tagged(1), tagged(2)]);
    }
}
