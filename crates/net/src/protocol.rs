//! The `KPNT` client/server protocol on the shared [`kpm_wire`] codec.
//!
//! Same framing discipline as the shard protocol (`KPSH`): magic, version,
//! type byte, then a length-prefixed payload, with `f64` as raw IEEE-754
//! bits so moments cross the wire bit-exactly. Client-originated frames use
//! type bytes 1–15, server-originated ones 16–31, so a misdirected frame is
//! an immediate protocol error rather than a silent misparse.
//!
//! The unit of work is a **submission** on a named **stream**: the client
//! picks the stream name and a `tag` (echoed verbatim, for client-side
//! correlation); the server assigns each resulting completion a per-stream
//! `seq` and guarantees FIFO delivery within the stream. A submission with
//! `refine_steps > 1` fans out into that many sub-jobs at ascending moment
//! orders (see [`crate::refine_ladder`]), each occupying one `seq`.

use crate::error::NetError;
use kpm_wire::{put_f64, put_f64s, put_str, put_u32, put_u64, Codec, Reader};

/// Frame preamble for the net protocol.
pub const MAGIC: [u8; 4] = *b"KPNT";
/// Protocol revision; bump on any change to framing or payload layout.
pub const VERSION: u16 = 1;

/// The net protocol's framing identity on the shared codec.
pub const CODEC: Codec = Codec { magic: MAGIC, version: VERSION };

/// One successful (partial or final) result on a stream.
#[derive(Debug, Clone, PartialEq)]
pub struct Completion {
    /// Stream this completion belongs to.
    pub stream: String,
    /// Per-stream delivery sequence number (contiguous from 0).
    pub seq: u64,
    /// Client-chosen correlation tag, echoed from the submission.
    pub tag: u64,
    /// Refinement step index, `0..of`.
    pub step: u32,
    /// Total steps in this submission's ladder.
    pub of: u32,
    /// Truncation order of this step.
    pub n: u32,
    /// Stochastic sample count behind the moment statistics.
    pub samples: u64,
    /// Rescaling centre (needed to reconstruct on the energy axis).
    pub a_plus: f64,
    /// Rescaling half-width.
    pub a_minus: f64,
    /// Integral of the reconstructed DoS (~1).
    pub integral: f64,
    /// Energy of the DoS maximum.
    pub peak_energy: f64,
    /// Raw moment means, bit-exact.
    pub mean: Vec<f64>,
    /// Raw moment standard errors, bit-exact.
    pub std_err: Vec<f64>,
}

/// Every message of the net protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum NetFrame {
    /// Client: run `spec` on stream `stream`, refining over `refine_steps`
    /// ascending moment orders (1 = no refinement).
    Submit {
        /// Stream name (FIFO delivery domain).
        stream: String,
        /// Client correlation tag, echoed in every reply.
        tag: u64,
        /// Job spec line ([`kpm_serve::JobSpec::parse`] grammar).
        spec: String,
        /// Ladder length; clamped to the representable range server-side.
        refine_steps: u32,
    },
    /// Client: request a metrics snapshot.
    Stats {
        /// Correlation tag for the [`NetFrame::StatsReply`].
        tag: u64,
    },
    /// Client: no more submissions; server replies [`NetFrame::Bye`] once
    /// every accepted job has been delivered.
    Goodbye,
    /// Server: submission admitted; expect `steps` completions.
    Accepted {
        /// Echoed submission tag.
        tag: u64,
        /// Number of ladder steps admitted (each is one seq).
        steps: u32,
    },
    /// Server: submission refused (load shed or invalid).
    Rejected {
        /// Echoed submission tag.
        tag: u64,
        /// Backoff hint, milliseconds; `0` = invalid request, do not retry.
        retry_after_ms: u64,
        /// Refusal reason.
        reason: String,
    },
    /// Server: one step of a submission finished successfully.
    Completion(Completion),
    /// Server: one step of a submission failed terminally.
    JobFailed {
        /// Stream the failed step was on.
        stream: String,
        /// Its reserved per-stream sequence number.
        seq: u64,
        /// Echoed submission tag.
        tag: u64,
        /// Failed step index.
        step: u32,
        /// Total steps in the ladder.
        of: u32,
        /// Rendered error.
        error: String,
    },
    /// Server: metrics snapshot (versioned JSON, see the crate docs).
    StatsReply {
        /// Echoed stats tag.
        tag: u64,
        /// `net-stats` JSON document.
        json: String,
    },
    /// Server: session drained; the socket closes after this frame.
    Bye,
}

impl NetFrame {
    fn type_byte(&self) -> u8 {
        match self {
            NetFrame::Submit { .. } => 1,
            NetFrame::Stats { .. } => 2,
            NetFrame::Goodbye => 3,
            NetFrame::Accepted { .. } => 16,
            NetFrame::Rejected { .. } => 17,
            NetFrame::Completion(_) => 18,
            NetFrame::JobFailed { .. } => 19,
            NetFrame::StatsReply { .. } => 20,
            NetFrame::Bye => 21,
        }
    }
}

/// Encodes a frame to its full wire representation (header + payload).
pub fn encode(frame: &NetFrame) -> Vec<u8> {
    let mut p = Vec::new();
    match frame {
        NetFrame::Submit { stream, tag, spec, refine_steps } => {
            put_str(&mut p, stream);
            put_u64(&mut p, *tag);
            put_str(&mut p, spec);
            put_u32(&mut p, *refine_steps);
        }
        NetFrame::Stats { tag } => put_u64(&mut p, *tag),
        NetFrame::Goodbye | NetFrame::Bye => {}
        NetFrame::Accepted { tag, steps } => {
            put_u64(&mut p, *tag);
            put_u32(&mut p, *steps);
        }
        NetFrame::Rejected { tag, retry_after_ms, reason } => {
            put_u64(&mut p, *tag);
            put_u64(&mut p, *retry_after_ms);
            put_str(&mut p, reason);
        }
        NetFrame::Completion(c) => {
            put_str(&mut p, &c.stream);
            put_u64(&mut p, c.seq);
            put_u64(&mut p, c.tag);
            put_u32(&mut p, c.step);
            put_u32(&mut p, c.of);
            put_u32(&mut p, c.n);
            put_u64(&mut p, c.samples);
            put_f64(&mut p, c.a_plus);
            put_f64(&mut p, c.a_minus);
            put_f64(&mut p, c.integral);
            put_f64(&mut p, c.peak_energy);
            put_f64s(&mut p, &c.mean);
            put_f64s(&mut p, &c.std_err);
        }
        NetFrame::JobFailed { stream, seq, tag, step, of, error } => {
            put_str(&mut p, stream);
            put_u64(&mut p, *seq);
            put_u64(&mut p, *tag);
            put_u32(&mut p, *step);
            put_u32(&mut p, *of);
            put_str(&mut p, error);
        }
        NetFrame::StatsReply { tag, json } => {
            put_u64(&mut p, *tag);
            put_str(&mut p, json);
        }
    }
    CODEC.frame(frame.type_byte(), p)
}

fn decode_payload(type_byte: u8, payload: &[u8]) -> Result<NetFrame, NetError> {
    let mut r = Reader::new(payload);
    let frame = match type_byte {
        1 => NetFrame::Submit {
            stream: r.string()?,
            tag: r.u64()?,
            spec: r.string()?,
            refine_steps: r.u32()?,
        },
        2 => NetFrame::Stats { tag: r.u64()? },
        3 => NetFrame::Goodbye,
        16 => NetFrame::Accepted { tag: r.u64()?, steps: r.u32()? },
        17 => NetFrame::Rejected { tag: r.u64()?, retry_after_ms: r.u64()?, reason: r.string()? },
        18 => NetFrame::Completion(Completion {
            stream: r.string()?,
            seq: r.u64()?,
            tag: r.u64()?,
            step: r.u32()?,
            of: r.u32()?,
            n: r.u32()?,
            samples: r.u64()?,
            a_plus: r.f64()?,
            a_minus: r.f64()?,
            integral: r.f64()?,
            peak_energy: r.f64()?,
            mean: r.f64s()?,
            std_err: r.f64s()?,
        }),
        19 => NetFrame::JobFailed {
            stream: r.string()?,
            seq: r.u64()?,
            tag: r.u64()?,
            step: r.u32()?,
            of: r.u32()?,
            error: r.string()?,
        },
        20 => NetFrame::StatsReply { tag: r.u64()?, json: r.string()? },
        21 => NetFrame::Bye,
        other => return Err(NetError::Protocol(format!("unknown frame type {other}"))),
    };
    r.finish()?;
    Ok(frame)
}

/// Decodes one full frame from a byte buffer.
pub fn decode_bytes(bytes: &[u8]) -> Result<NetFrame, NetError> {
    let (type_byte, payload) = CODEC.split_frame(bytes)?;
    decode_payload(type_byte, payload)
}

/// Blocking read of one frame from a byte stream.
///
/// # Errors
/// [`NetError::Io`] on read failure or EOF, [`NetError::Protocol`] on
/// malformed frames.
pub fn read_frame<R: std::io::Read>(reader: &mut R) -> Result<NetFrame, NetError> {
    let (type_byte, payload) = CODEC.read_frame(reader)?;
    decode_payload(type_byte, &payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: NetFrame) {
        let bytes = encode(&frame);
        assert_eq!(decode_bytes(&bytes).unwrap(), frame);
        let mut cursor = std::io::Cursor::new(bytes);
        assert_eq!(read_frame(&mut cursor).unwrap(), frame);
    }

    #[test]
    fn all_frames_roundtrip() {
        roundtrip(NetFrame::Submit {
            stream: "dos-sweep".into(),
            tag: 42,
            spec: "lattice=chain:64 moments=1024".into(),
            refine_steps: 3,
        });
        roundtrip(NetFrame::Stats { tag: 7 });
        roundtrip(NetFrame::Goodbye);
        roundtrip(NetFrame::Accepted { tag: 42, steps: 3 });
        roundtrip(NetFrame::Rejected { tag: 43, retry_after_ms: 250, reason: "queue full".into() });
        roundtrip(NetFrame::Completion(Completion {
            stream: "dos-sweep".into(),
            seq: 2,
            tag: 42,
            step: 2,
            of: 3,
            n: 1024,
            samples: 16,
            a_plus: 0.125,
            a_minus: 2.25,
            integral: 0.999_999_3,
            peak_energy: -0.013,
            mean: vec![1.0, 0.1 + 0.2, f64::MIN_POSITIVE],
            std_err: vec![0.0, 1e-8, -0.0],
        }));
        roundtrip(NetFrame::JobFailed {
            stream: "dos-sweep".into(),
            seq: 1,
            tag: 42,
            step: 1,
            of: 3,
            error: "kpm: degenerate spectrum".into(),
        });
        roundtrip(NetFrame::StatsReply { tag: 7, json: "{\"version\":1}".into() });
        roundtrip(NetFrame::Bye);
    }

    /// Golden V1 Submit frame, byte for byte, as emitted by clients built
    /// before the `device=` job-spec key existed. Pins two compatibility
    /// guarantees: the framing itself has not shifted, and a spec line
    /// without a `device=` token still decodes to the default host device.
    #[test]
    fn golden_v1_submit_without_device_decodes_to_host() {
        let stream = b"dos-sweep";
        let spec = b"lattice=chain:64 moments=256 seed=42";
        let mut golden: Vec<u8> = Vec::new();
        golden.extend_from_slice(b"KPNT"); // magic
        golden.extend_from_slice(&1u16.to_le_bytes()); // version 1
        golden.push(1); // type: Submit
        let payload_len = 4 + stream.len() + 8 + 4 + spec.len() + 4;
        golden.extend_from_slice(&(payload_len as u32).to_le_bytes());
        golden.extend_from_slice(&(stream.len() as u32).to_le_bytes());
        golden.extend_from_slice(stream);
        golden.extend_from_slice(&7u64.to_le_bytes()); // tag
        golden.extend_from_slice(&(spec.len() as u32).to_le_bytes());
        golden.extend_from_slice(spec);
        golden.extend_from_slice(&2u32.to_le_bytes()); // refine_steps

        let frame = decode_bytes(&golden).unwrap();
        let NetFrame::Submit { stream, tag, spec, refine_steps } = frame else {
            panic!("expected Submit");
        };
        assert_eq!((stream.as_str(), tag, refine_steps), ("dos-sweep", 7, 2));
        let job = kpm_serve::JobSpec::parse(&spec).unwrap();
        assert_eq!(job.device, kpm::DeviceSpec::Host);
        // And the same frame re-encodes to the identical bytes.
        assert_eq!(encode(&NetFrame::Submit { stream, tag, spec, refine_steps }), golden);
    }

    /// Version tolerance for the bounds provider: a pre-bounds KPNT frame
    /// (spec line with no `bounds=` key) decodes to the Gershgorin default,
    /// and re-encodes to the identical bytes — old clients keep working and
    /// old frames keep their hashes.
    #[test]
    fn golden_v1_submit_without_bounds_decodes_to_gershgorin() {
        let stream = b"legacy";
        let spec = b"lattice=chain:48 moments=128 seed=7";
        let mut golden: Vec<u8> = Vec::new();
        golden.extend_from_slice(b"KPNT"); // magic
        golden.extend_from_slice(&1u16.to_le_bytes()); // version 1
        golden.push(1); // type: Submit
        let payload_len = 4 + stream.len() + 8 + 4 + spec.len() + 4;
        golden.extend_from_slice(&(payload_len as u32).to_le_bytes());
        golden.extend_from_slice(&(stream.len() as u32).to_le_bytes());
        golden.extend_from_slice(stream);
        golden.extend_from_slice(&3u64.to_le_bytes()); // tag
        golden.extend_from_slice(&(spec.len() as u32).to_le_bytes());
        golden.extend_from_slice(spec);
        golden.extend_from_slice(&1u32.to_le_bytes()); // refine_steps

        let frame = decode_bytes(&golden).unwrap();
        let NetFrame::Submit { stream, tag, spec, refine_steps } = frame else {
            panic!("expected Submit");
        };
        let job = kpm_serve::JobSpec::parse(&spec).unwrap();
        assert_eq!(job.bounds, kpm::BoundsMethod::Gershgorin);
        // The legacy canonical line stays bounds-free, so identity hashes
        // are unchanged from the pre-bounds wire format.
        assert!(!job.canonical().contains("bounds="), "{}", job.canonical());
        assert_eq!(encode(&NetFrame::Submit { stream, tag, spec, refine_steps }), golden);
    }

    /// A bounds-bearing spec survives the KPNT round trip verbatim.
    #[test]
    fn bounds_bearing_spec_round_trips_the_net_protocol() {
        let spec = "lattice=chain:48 disorder=5@2 moments=64 bounds=lanczos:32".to_string();
        let frame =
            NetFrame::Submit { stream: "s".into(), tag: 1, spec: spec.clone(), refine_steps: 1 };
        let NetFrame::Submit { spec: decoded, .. } = decode_bytes(&encode(&frame)).unwrap() else {
            panic!("expected Submit");
        };
        assert_eq!(decoded, spec);
        let job = kpm_serve::JobSpec::parse(&decoded).unwrap();
        assert_eq!(job.bounds, kpm::BoundsMethod::Lanczos { steps: 32 });
        assert!(job.canonical().contains("bounds=lanczos:32"), "{}", job.canonical());
    }

    #[test]
    fn moment_bits_survive_exactly() {
        let tricky = vec![0.1 + 0.2, 1.0 / 3.0, f64::from_bits(1), -1e-308];
        let frame = NetFrame::Completion(Completion {
            stream: "s".into(),
            seq: 0,
            tag: 0,
            step: 0,
            of: 1,
            n: 4,
            samples: 1,
            a_plus: 0.0,
            a_minus: 1.0,
            integral: 1.0,
            peak_energy: 0.0,
            mean: tricky.clone(),
            std_err: vec![0.0; 4],
        });
        let NetFrame::Completion(c) = decode_bytes(&encode(&frame)).unwrap() else {
            panic!("expected completion");
        };
        for (a, b) in c.mean.iter().zip(&tricky) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn shard_frames_are_rejected_by_magic() {
        // A KPSH frame accidentally sent to the net port must fail loudly.
        let mut bytes = encode(&NetFrame::Goodbye);
        bytes[..4].copy_from_slice(b"KPSH");
        assert!(matches!(decode_bytes(&bytes), Err(NetError::Protocol(_))));
    }

    #[test]
    fn version_mismatch_and_unknown_type_are_protocol_errors() {
        let mut bytes = encode(&NetFrame::Bye);
        bytes[4] = 99;
        assert!(matches!(decode_bytes(&bytes), Err(NetError::Protocol(_))));
        let mut bytes = encode(&NetFrame::Bye);
        bytes[6] = 99;
        assert!(matches!(decode_bytes(&bytes), Err(NetError::Protocol(_))));
    }

    #[test]
    fn eof_is_io_error() {
        let mut empty = std::io::Cursor::new(Vec::<u8>::new());
        assert!(matches!(read_frame(&mut empty), Err(NetError::Io(_))));
    }
}
