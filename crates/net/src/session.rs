//! Server-side sessions: one reader thread and one writer thread per
//! connection, a process-wide registry routing job completions back to the
//! stream that submitted them.
//!
//! The split matters for isolation. Worker threads finish jobs and call the
//! [`kpm_serve::CompletionHook`]; that hook must never block on a client's
//! socket, or one stalled reader would back up the whole pool. So the hook
//! only resolves the job in the registry, runs the per-stream FIFO reorder
//! buffer, and hands pre-encoded frames to the session's writer over an
//! unbounded channel — the writer thread alone does blocking socket writes,
//! and a slow client slows only itself.

use crate::protocol::{self, Completion, NetFrame};
use crate::stream::StreamFifo;
use crate::NetConfig;
use kpm_obs::{Counter, Gauge};
use kpm_serve::queue::JobId;
use kpm_serve::{BatchService, JobOutcome, JobRecord, JobSpec};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

/// Front-end metrics, reported by the `Stats` command alongside the serve
/// counters (and mirrored into `--trace` sessions like all
/// [`kpm_obs::Counter`]s).
pub(crate) struct NetMetrics {
    pub sessions_opened: Counter,
    pub submissions_accepted: Counter,
    pub submissions_rejected: Counter,
    pub jobs_delivered: Counter,
    pub stats_requests: Counter,
    pub cache_refinements: Counter,
    pub sessions_open: Gauge,
    pub jobs_inflight: Gauge,
}

impl Default for NetMetrics {
    fn default() -> Self {
        Self {
            sessions_opened: Counter::new("net.sessions.opened"),
            submissions_accepted: Counter::new("net.submissions.accepted"),
            submissions_rejected: Counter::new("net.submissions.rejected"),
            jobs_delivered: Counter::new("net.jobs.delivered"),
            stats_requests: Counter::new("net.stats.requests"),
            cache_refinements: Counter::new("net.cache.refinements"),
            sessions_open: Gauge::new("net.sessions.open"),
            jobs_inflight: Gauge::new("net.jobs.inflight"),
        }
    }
}

/// Where one submitted sub-job must be delivered.
struct Pending {
    session: u64,
    stream: String,
    seq: u64,
    tag: u64,
    step: u32,
    of: u32,
}

/// One live connection, as seen by the routing layer.
pub(crate) struct SessionHandle {
    /// Pre-encoded frames for the writer thread, in delivery order.
    tx: mpsc::Sender<Vec<u8>>,
    /// Per-stream reorder buffers.
    streams: Mutex<HashMap<String, StreamFifo>>,
    /// Sub-jobs admitted but not yet handed to the writer.
    inflight: AtomicUsize,
    /// Socket clone so the server can force the reader out at shutdown.
    socket: TcpStream,
}

/// Routing state shared between session readers and the completion hook.
///
/// Deliberately does NOT hold the [`BatchService`]: the service owns the
/// completion hook, the hook holds this registry, and a back-reference
/// would leak the service through the cycle.
#[derive(Default)]
pub(crate) struct Registry {
    sessions: Mutex<HashMap<u64, Arc<SessionHandle>>>,
    jobs: Mutex<HashMap<JobId, Pending>>,
    pub(crate) metrics: NetMetrics,
}

impl Registry {
    /// Force-closes every live session socket (readers unblock with an IO
    /// error) and forgets them; queued writer frames are flushed by the
    /// writer threads as they drain.
    pub(crate) fn shutdown_sessions(&self) {
        let mut sessions = self.sessions.lock().expect("sessions lock");
        for session in sessions.values() {
            let _ = session.socket.shutdown(std::net::Shutdown::Both);
        }
        sessions.clear();
    }

    /// The versioned `net-stats` JSON document: serve metrics nested under
    /// `"serve"`, front-end counters and gauges under `"net"`.
    pub(crate) fn stats_json(&self, service: &BatchService) -> String {
        let m = &self.metrics;
        let mut out = String::from("{\"version\":1,\"kind\":\"net-stats\",\"serve\":");
        out.push_str(&service.metrics_json());
        out.push_str(",\"net\":{\"counters\":{");
        let counters = [
            &m.sessions_opened,
            &m.submissions_accepted,
            &m.submissions_rejected,
            &m.jobs_delivered,
            &m.stats_requests,
            &m.cache_refinements,
        ];
        for (i, c) in counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{}", kpm_obs::json::quote(c.name()), c.get());
        }
        out.push_str("},\"gauges\":{");
        for (i, g) in [&m.sessions_open, &m.jobs_inflight].iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{}", kpm_obs::json::quote(g.name()), g.get());
        }
        out.push_str("}}}");
        out
    }
}

/// Completion-hook entry point: route a terminal job record to its stream.
///
/// Runs on a worker thread; must not block beyond the short registry and
/// stream locks (the socket write happens on the session's writer thread).
pub(crate) fn deliver(registry: &Registry, record: &JobRecord) {
    let Some(pending) = registry.jobs.lock().expect("jobs lock").remove(&record.id) else {
        // Not a net-submitted job (or its session is long gone).
        return;
    };
    let frame = completion_frame(&pending, record);
    release(registry, pending.session, &pending.stream, pending.seq, frame);
}

/// Runs the FIFO buffer for `(session, stream)` and hands every releasable
/// frame to the session writer.
fn release(registry: &Registry, session_id: u64, stream: &str, seq: u64, frame: Vec<u8>) {
    let Some(session) = registry.sessions.lock().expect("sessions lock").get(&session_id).cloned()
    else {
        return; // client disconnected; drop the frame
    };
    let released = {
        let mut streams = session.streams.lock().expect("streams lock");
        let Some(fifo) = streams.get_mut(stream) else { return };
        fifo.complete(seq, frame)
    };
    for frame in released {
        session.inflight.fetch_sub(1, Ordering::SeqCst);
        registry.metrics.jobs_inflight.dec();
        registry.metrics.jobs_delivered.inc();
        let _ = session.tx.send(frame);
    }
}

fn completion_frame(pending: &Pending, record: &JobRecord) -> Vec<u8> {
    let frame = match &record.outcome {
        JobOutcome::Completed(s) => NetFrame::Completion(Completion {
            stream: pending.stream.clone(),
            seq: pending.seq,
            tag: pending.tag,
            step: pending.step,
            of: pending.of,
            n: s.num_moments as u32,
            samples: s.moments.samples as u64,
            a_plus: s.a_plus,
            a_minus: s.a_minus,
            integral: s.integral,
            peak_energy: s.peak_energy,
            mean: s.moments.mean.clone(),
            std_err: s.moments.std_err.clone(),
        }),
        JobOutcome::Failed { error, .. } => NetFrame::JobFailed {
            stream: pending.stream.clone(),
            seq: pending.seq,
            tag: pending.tag,
            step: pending.step,
            of: pending.of,
            error: error.clone(),
        },
        JobOutcome::Cancelled => NetFrame::JobFailed {
            stream: pending.stream.clone(),
            seq: pending.seq,
            tag: pending.tag,
            step: pending.step,
            of: pending.of,
            error: "cancelled at shutdown".into(),
        },
    };
    protocol::encode(&frame)
}

/// Everything a session reader needs from the server.
pub(crate) struct SessionContext {
    pub service: Arc<BatchService>,
    pub registry: Arc<Registry>,
    pub config: NetConfig,
    /// Serializes the capacity check + ladder submission across sessions,
    /// so one submission's ladder is admitted (or refused) atomically.
    pub submit_lock: Arc<Mutex<()>>,
    /// Queue capacity the service was configured with (for admission).
    pub queue_capacity: usize,
}

/// Runs one connection to completion. Returns when the client says
/// [`NetFrame::Goodbye`], disconnects, or breaks protocol.
pub(crate) fn run_session(socket: TcpStream, id: u64, ctx: &SessionContext) {
    let _ = socket.set_nodelay(true);
    let (tx, rx) = mpsc::channel::<Vec<u8>>();
    let writer_socket = match socket.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let writer = std::thread::Builder::new()
        .name(format!("kpm-net-writer-{id}"))
        .spawn(move || run_writer(writer_socket, rx))
        .expect("spawn session writer");

    let handle = Arc::new(SessionHandle {
        tx,
        streams: Mutex::new(HashMap::new()),
        inflight: AtomicUsize::new(0),
        socket: match socket.try_clone() {
            Ok(s) => s,
            Err(_) => return,
        },
    });
    ctx.registry.sessions.lock().expect("sessions lock").insert(id, Arc::clone(&handle));
    ctx.registry.metrics.sessions_opened.inc();
    ctx.registry.metrics.sessions_open.inc();

    let mut reader = socket;
    loop {
        match protocol::read_frame(&mut reader) {
            Ok(NetFrame::Submit { stream, tag, spec, refine_steps }) => {
                handle_submit(ctx, id, &handle, stream, tag, &spec, refine_steps);
            }
            Ok(NetFrame::Stats { tag }) => {
                ctx.registry.metrics.stats_requests.inc();
                let json = ctx.registry.stats_json(&ctx.service);
                let _ = handle.tx.send(protocol::encode(&NetFrame::StatsReply { tag, json }));
            }
            Ok(NetFrame::Goodbye) => {
                // Drain: every admitted sub-job reaches the writer queue
                // before the Bye does, so the client sees all completions
                // first. Worker timeouts bound how long this can take.
                while handle.inflight.load(Ordering::SeqCst) > 0 {
                    std::thread::sleep(Duration::from_millis(2));
                }
                let _ = handle.tx.send(protocol::encode(&NetFrame::Bye));
                break;
            }
            // A server-originated frame arriving at the server, or a
            // broken/absent client: either way the session is over.
            Ok(_) | Err(_) => break,
        }
    }

    if ctx.registry.sessions.lock().expect("sessions lock").remove(&id).is_some() {
        ctx.registry.metrics.sessions_open.dec();
    }
    drop(handle); // last strong ref (barring an in-flight deliver) → writer channel closes
    let _ = writer.join();
}

/// Admission control + ladder fan-out for one `Submit`.
fn handle_submit(
    ctx: &SessionContext,
    session_id: u64,
    handle: &Arc<SessionHandle>,
    stream: String,
    tag: u64,
    spec_line: &str,
    refine_steps: u32,
) {
    let reject = |retry_after_ms: u64, reason: String| {
        ctx.registry.metrics.submissions_rejected.inc();
        let _ =
            handle.tx.send(protocol::encode(&NetFrame::Rejected { tag, retry_after_ms, reason }));
    };

    let spec = match JobSpec::parse(spec_line) {
        Ok(spec) => spec,
        Err(e) => return reject(0, format!("bad spec: {e}")),
    };
    let ladder = crate::refine_ladder(spec.num_moments, refine_steps);
    let steps = ladder.len();

    // Fairness: a single session may not occupy more than its in-flight
    // budget, so a flooding client is shed while others keep submitting.
    if handle.inflight.load(Ordering::SeqCst) + steps > ctx.config.max_inflight_per_session {
        return reject(100, "per-session in-flight cap reached".into());
    }

    // Admission is atomic per ladder: either every step fits the queue
    // bound or the whole submission is refused with a backoff hint scaled
    // to the backlog (mirroring the queue's own retry-after convention).
    let admit = ctx.submit_lock.lock().expect("submit lock");
    let depth = ctx.service.queue_depth();
    if depth + steps > ctx.queue_capacity {
        drop(admit);
        let retry_after_ms = 50 * depth.max(1) as u64;
        return reject(retry_after_ms, format!("queue full ({depth}/{})", ctx.queue_capacity));
    }

    // Reserve delivery order now, so wire order within the stream matches
    // admission order no matter how execution interleaves.
    let seqs: Vec<u64> = {
        let mut streams = handle.streams.lock().expect("streams lock");
        let fifo = streams.entry(stream.clone()).or_default();
        (0..steps).map(|_| fifo.reserve()).collect()
    };
    handle.inflight.fetch_add(steps, Ordering::SeqCst);
    for _ in 0..steps {
        ctx.registry.metrics.jobs_inflight.inc();
    }
    ctx.registry.metrics.submissions_accepted.inc();
    // Accepted goes on the writer queue before any submission below can
    // produce a completion frame, so the client always sees it first.
    let _ = handle.tx.send(protocol::encode(&NetFrame::Accepted { tag, steps: steps as u32 }));

    for (step, (&n, &seq)) in ladder.iter().zip(&seqs).enumerate() {
        let mut sub = spec.clone();
        sub.num_moments = n;
        if step + 1 < steps {
            sub.out = None; // only the final order writes the requested CSV
        }
        let pending = Pending {
            session: session_id,
            stream: stream.clone(),
            seq,
            tag,
            step: step as u32,
            of: steps as u32,
        };
        // Hold the jobs lock across submit + insert: a worker could finish
        // the job before the insert otherwise, and the completion would
        // find no routing entry (deliver() blocks on this lock briefly).
        let mut jobs = ctx.registry.jobs.lock().expect("jobs lock");
        match ctx.service.submit(sub) {
            Ok(job_id) => {
                jobs.insert(job_id, pending);
            }
            Err(full) => {
                // Should not happen under the capacity pre-check; keep the
                // stream's seq accounting intact with a synthetic failure.
                drop(jobs);
                let frame = protocol::encode(&NetFrame::JobFailed {
                    stream: stream.clone(),
                    seq,
                    tag,
                    step: step as u32,
                    of: steps as u32,
                    error: format!("queue full at submit (retry after {:?})", full.retry_after),
                });
                release(&ctx.registry, session_id, &stream, seq, frame);
            }
        }
    }
    drop(admit);
}

/// Writer loop: drains pre-encoded frames onto the socket until the channel
/// closes (session over) or a write fails (client gone). Blocking writes
/// live only here — see the module docs.
fn run_writer(mut socket: TcpStream, rx: mpsc::Receiver<Vec<u8>>) {
    use std::io::Write as _;
    while let Ok(frame) = rx.recv() {
        if socket.write_all(&frame).is_err() {
            // Client is unreachable; drain silently so senders never block.
            for _ in rx.iter() {}
            return;
        }
    }
    let _ = socket.flush();
}
