//! Calibrated-profile reuse across serve jobs.
//!
//! The profile store is keyed on the operator *shape* `(dim, entries,
//! chunks, threads)` — a strict subset of the fields `JobSpec::cache_key`
//! leaves unmasked. Two jobs the moment cache would treat as the same
//! operator therefore resolve the same profile: the first worker probes
//! once (`kpm.tune.probe`), every later job hits (`kpm.tune.hit`) and skips
//! re-measuring. Pinned here through the real `compute_raw_moments` path
//! with the obs counters as evidence.
//!
//! Own test binary: the store and the trace session are process-global.

use kpm_serve::worker::compute_raw_moments;
use kpm_serve::JobSpec;

#[test]
fn masked_equal_jobs_share_one_probe() {
    kpm::tune::store().clear_memory();
    let handle = kpm::obs::TraceHandle::begin();

    // Same lattice/seed/ensemble; different kernel and moment count — both
    // masked out of the cache key, both absent from the probe shape.
    let a = JobSpec::parse("lattice=cubic:10,10,10 moments=32 random=2 sets=1 seed=7").unwrap();
    let b =
        JobSpec::parse("lattice=cubic:10,10,10 moments=64 random=2 sets=1 seed=7 kernel=lorentz:3")
            .unwrap();
    assert_eq!(a.cache_key(), b.cache_key(), "masking treats these as one operator");
    assert_ne!(a.content_hash(), b.content_hash());

    compute_raw_moments(&a, 0).unwrap();
    compute_raw_moments(&b, 0).unwrap();
    // A third masked-equal job from a "different client": still no probe.
    compute_raw_moments(&a, 0).unwrap();

    let report = handle.finish();
    kpm::tune::store().clear_memory();
    let probes = report.counters.get("kpm.tune.probe").copied().unwrap_or(0);
    let hits = report.counters.get("kpm.tune.hit").copied().unwrap_or(0);
    assert_eq!(probes, 1, "only the first contact with the shape may probe");
    // ensure_profile hits on jobs 2 and 3, and the in-run planner
    // (`plan_for`) hits once per moments run on top.
    assert!(hits >= 2, "later jobs must reuse the stored profile (hits = {hits})");
}
