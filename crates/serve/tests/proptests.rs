//! Property tests for the content-addressed moment cache, driven through
//! the real KPM compute path ([`kpm_serve::worker::compute_raw_moments`]).

use kpm_serve::cache::{Lookup, MomentCache};
use kpm_serve::job::JobSpec;
use kpm_serve::worker::compute_raw_moments;
use proptest::prelude::*;

/// A small, fast job over the parameters the cache key depends on.
fn job(sites: usize, moments: usize, seed: u64) -> JobSpec {
    JobSpec::parse(&format!("lattice=chain:{sites} moments={moments} random=2 sets=1 seed={seed}"))
        .expect("valid job line")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A cache hit returns bitwise-identical moments to what was inserted.
    #[test]
    fn hit_is_bitwise_identical(sites in 8usize..40, moments in 8usize..48, seed in 0u64..1000) {
        let spec = job(sites, moments, seed);
        let (stats, a_plus, a_minus) = compute_raw_moments(&spec, 0).unwrap();
        let cache = MomentCache::new(8, None);
        cache.insert(spec.cache_key(), stats.clone(), a_plus, a_minus);
        match cache.lookup(spec.cache_key(), moments) {
            Lookup::Hit(hit) => {
                prop_assert_eq!(hit.stats.mean, stats.mean);
                prop_assert_eq!(hit.stats.std_err, stats.std_err);
                prop_assert_eq!(hit.stats.samples, stats.samples);
                prop_assert_eq!((hit.a_plus, hit.a_minus), (a_plus, a_minus));
            }
            other => prop_assert!(false, "expected hit, got {:?}", other),
        }
    }

    /// Prefix reuse: serving `n < n_cached` from the cache is bitwise equal
    /// to a fresh same-seed run at `n` — the property that makes caching
    /// across truncation orders sound.
    #[test]
    fn prefix_reuse_equals_fresh_run(
        sites in 8usize..40,
        n_small in 4usize..24,
        extra in 1usize..40,
        seed in 0u64..1000,
    ) {
        let n_big = n_small + extra;
        let big = job(sites, n_big, seed);
        let small = job(sites, n_small, seed);
        // Same identity: the key masks the truncation order.
        prop_assert_eq!(big.cache_key(), small.cache_key());

        let (big_stats, a_plus, a_minus) = compute_raw_moments(&big, 0).unwrap();
        let cache = MomentCache::new(8, None);
        cache.insert(big.cache_key(), big_stats, a_plus, a_minus);

        let (fresh, fresh_plus, fresh_minus) = compute_raw_moments(&small, 0).unwrap();
        match cache.lookup(small.cache_key(), n_small) {
            Lookup::Hit(hit) => {
                prop_assert_eq!(hit.stats.mean, fresh.mean, "cached prefix != fresh run");
                prop_assert_eq!(hit.stats.std_err, fresh.std_err);
                prop_assert_eq!((hit.a_plus, hit.a_minus), (fresh_plus, fresh_minus));
            }
            other => prop_assert!(false, "expected hit, got {:?}", other),
        }
    }

    /// The LRU policy never holds more than `capacity` entries, keeps the
    /// most recently touched ones, and reports every eviction.
    #[test]
    fn lru_eviction_respects_capacity(
        capacity in 1usize..6,
        inserts in 1usize..20,
    ) {
        let spec = job(12, 8, 1);
        let (stats, a_plus, a_minus) = compute_raw_moments(&spec, 0).unwrap();
        let cache = MomentCache::new(capacity, None);
        let mut evicted_total = 0;
        for key in 0..inserts as u64 {
            let report = cache.insert(key, stats.clone(), a_plus, a_minus);
            evicted_total += report.evicted;
            prop_assert!(cache.len() <= capacity, "len {} > capacity {}", cache.len(), capacity);
        }
        let surviving = inserts.min(capacity);
        prop_assert_eq!(cache.len(), surviving);
        prop_assert_eq!(evicted_total, inserts - surviving);
        // Insertion order doubles as recency here: exactly the last
        // `capacity` keys must still be resident.
        for key in 0..inserts as u64 {
            let expect_hit = key as usize >= inserts - surviving;
            let found = matches!(cache.lookup(key, 8), Lookup::Hit(_));
            prop_assert_eq!(found, expect_hit, "key {} residency wrong", key);
        }
    }
}
