//! Bounded submission queue: FIFO within three priority lanes, with
//! backpressure.
//!
//! `submit` never blocks — a full queue rejects with a suggested
//! `retry_after` proportional to the backlog, so front-ends can surface
//! load-shedding instead of stalling the producer. Workers block in
//! [`JobQueue::pop`] on a condvar; [`JobQueue::close`] wakes them all for
//! shutdown and [`JobQueue::cancel_pending`] drains whatever never ran.

use crate::job::JobSpec;
use std::collections::VecDeque;
use std::fmt;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Monotonically increasing job identifier, assigned at submission.
pub type JobId = u64;

/// A job sitting in (or popped from) the queue.
#[derive(Debug)]
pub struct QueuedJob {
    /// Submission-order identifier.
    pub id: JobId,
    /// The job itself.
    pub spec: JobSpec,
    /// When it entered the queue (queue-wait metric).
    pub enqueued: Instant,
}

/// Rejection by backpressure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueueFull {
    /// Queue capacity that was hit.
    pub capacity: usize,
    /// Suggested delay before resubmitting.
    pub retry_after: Duration,
}

impl fmt::Display for QueueFull {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "queue full ({} jobs); retry after {:?}", self.capacity, self.retry_after)
    }
}

impl std::error::Error for QueueFull {}

/// Estimated service time per queued job used to size `retry_after`; the
/// exact value only shapes the hint, nothing blocks on it.
const RETRY_STEP: Duration = Duration::from_millis(50);

struct Inner {
    lanes: [VecDeque<QueuedJob>; 3],
    closed: bool,
    next_id: JobId,
}

impl Inner {
    fn depth(&self) -> usize {
        self.lanes.iter().map(VecDeque::len).sum()
    }
}

/// The bounded priority queue.
pub struct JobQueue {
    inner: Mutex<Inner>,
    available: Condvar,
    capacity: usize,
}

impl JobQueue {
    /// Creates a queue holding at most `capacity` pending jobs.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        Self {
            inner: Mutex::new(Inner {
                lanes: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
                closed: false,
                next_id: 0,
            }),
            available: Condvar::new(),
            capacity,
        }
    }

    /// Capacity this queue was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Jobs currently pending.
    pub fn depth(&self) -> usize {
        self.inner.lock().expect("queue lock").depth()
    }

    /// Enqueues a job, assigning its [`JobId`].
    ///
    /// # Errors
    /// [`QueueFull`] when at capacity (or closed), with a `retry_after`
    /// hint scaled to the backlog.
    pub fn submit(&self, spec: JobSpec) -> Result<JobId, QueueFull> {
        let mut inner = self.inner.lock().expect("queue lock");
        let depth = inner.depth();
        if inner.closed || depth >= self.capacity {
            return Err(QueueFull {
                capacity: self.capacity,
                retry_after: RETRY_STEP * (depth.max(1) as u32),
            });
        }
        let id = inner.next_id;
        inner.next_id += 1;
        let lane = spec.priority.lane();
        inner.lanes[lane].push_back(QueuedJob { id, spec, enqueued: Instant::now() });
        drop(inner);
        self.available.notify_one();
        Ok(id)
    }

    /// Blocks until a job is available (highest non-empty lane, FIFO within
    /// it) or the queue is closed and empty, returning `None` then.
    pub fn pop(&self) -> Option<QueuedJob> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if let Some(job) = inner.lanes.iter_mut().find_map(VecDeque::pop_front) {
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            inner = self.available.wait(inner).expect("queue lock");
        }
    }

    /// Stops accepting submissions and wakes all blocked workers; already
    /// queued jobs still drain.
    pub fn close(&self) {
        self.inner.lock().expect("queue lock").closed = true;
        self.available.notify_all();
    }

    /// Closes the queue and removes everything still pending (abort path);
    /// returns the cancelled jobs in priority-then-FIFO order.
    pub fn cancel_pending(&self) -> Vec<QueuedJob> {
        let mut inner = self.inner.lock().expect("queue lock");
        inner.closed = true;
        let cancelled = inner.lanes.iter_mut().flat_map(std::mem::take).collect();
        drop(inner);
        self.available.notify_all();
        cancelled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Priority;
    use std::sync::Arc;

    fn job(priority: Priority) -> JobSpec {
        JobSpec { priority, ..JobSpec::parse("lattice=chain:8 moments=8").unwrap() }
    }

    #[test]
    fn fifo_within_lane_priority_across_lanes() {
        let q = JobQueue::new(8);
        let normal_a = q.submit(job(Priority::Normal)).unwrap();
        let low = q.submit(job(Priority::Low)).unwrap();
        let normal_b = q.submit(job(Priority::Normal)).unwrap();
        let high = q.submit(job(Priority::High)).unwrap();
        let order: Vec<JobId> = (0..4).map(|_| q.pop().unwrap().id).collect();
        assert_eq!(order, vec![high, normal_a, normal_b, low]);
    }

    #[test]
    fn rejects_when_full_with_growing_hint() {
        let q = JobQueue::new(2);
        q.submit(job(Priority::Normal)).unwrap();
        q.submit(job(Priority::Normal)).unwrap();
        let err = q.submit(job(Priority::Normal)).unwrap_err();
        assert_eq!(err.capacity, 2);
        assert!(err.retry_after >= RETRY_STEP * 2);
        assert!(err.to_string().contains("retry after"));
        // Draining one slot frees capacity again.
        q.pop().unwrap();
        assert!(q.submit(job(Priority::Normal)).is_ok());
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q = Arc::new(JobQueue::new(4));
        let q2 = Arc::clone(&q);
        let handle = std::thread::spawn(move || q2.pop());
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert!(handle.join().unwrap().is_none());
        assert!(q.submit(job(Priority::Normal)).is_err(), "closed queue rejects");
    }

    #[test]
    fn close_still_drains_pending() {
        let q = JobQueue::new(4);
        let id = q.submit(job(Priority::Normal)).unwrap();
        q.close();
        assert_eq!(q.pop().unwrap().id, id);
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_pending_empties_queue() {
        let q = JobQueue::new(8);
        for _ in 0..3 {
            q.submit(job(Priority::Normal)).unwrap();
        }
        let cancelled = q.cancel_pending();
        assert_eq!(cancelled.len(), 3);
        assert_eq!(q.depth(), 0);
        assert!(q.pop().is_none());
    }

    #[test]
    fn ids_are_monotonic_in_submission_order() {
        let q = JobQueue::new(8);
        let a = q.submit(job(Priority::Low)).unwrap();
        let b = q.submit(job(Priority::High)).unwrap();
        assert!(b > a);
    }
}
