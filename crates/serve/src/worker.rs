//! Worker pool: pulls jobs off the queue, executes them with panic
//! isolation, per-attempt timeout, and bounded exponential-backoff retry.
//!
//! Each compute attempt runs on a dedicated child thread behind
//! `catch_unwind`, so an injected (or real) panic marks the *job* failed
//! while the worker — and the pool — survives. A timed-out attempt is
//! abandoned (the child thread finishes into a dropped channel) and either
//! retried or reported as [`JobError::TimedOut`]. Only panics and timeouts
//! are retryable; KPM/engine errors are deterministic and fail immediately.

use crate::cache::{CachedMoments, Lookup, MomentCache};
use crate::job::{Backend, Fault, JobMatrix, JobSpec};
use crate::metrics::{bump, Metrics};
use crate::queue::{JobId, JobQueue};
use crate::{CacheStatus, JobOutcome, JobRecord, JobSuccess};
use kpm::prelude::*;
use kpm_stream::StreamKpmEngine;
use kpm_streamsim::GpuSpec;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Why a job (or one attempt of it) failed.
#[derive(Debug, Clone)]
pub enum JobError {
    /// The compute step panicked (caught; pool unaffected).
    Panicked(String),
    /// The attempt exceeded the per-job timeout.
    TimedOut(Duration),
    /// KPM pipeline error (bad parameters, degenerate spectrum...).
    Kpm(String),
    /// Stream-engine error (device memory, launch...).
    Engine(String),
}

impl JobError {
    /// Whether another attempt could plausibly succeed.
    pub fn retryable(&self) -> bool {
        matches!(self, JobError::Panicked(_) | JobError::TimedOut(_))
    }
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Panicked(msg) => write!(f, "panicked: {msg}"),
            JobError::TimedOut(t) => write!(f, "timed out after {t:?}"),
            JobError::Kpm(e) => write!(f, "kpm: {e}"),
            JobError::Engine(e) => write!(f, "engine: {e}"),
        }
    }
}

impl std::error::Error for JobError {}

impl From<KpmError> for JobError {
    fn from(e: KpmError) -> Self {
        JobError::Kpm(e.to_string())
    }
}

/// Retry/timeout policy for one worker.
#[derive(Debug, Clone, Copy)]
pub struct WorkerPolicy {
    /// Wall-clock budget per attempt.
    pub timeout: Duration,
    /// Retries after the first attempt (total attempts = `max_retries + 1`).
    pub max_retries: u32,
    /// First backoff delay; doubles each retry.
    pub backoff_base: Duration,
}

pub(crate) struct WorkerContext {
    pub queue: Arc<JobQueue>,
    pub cache: Arc<MomentCache>,
    pub metrics: Arc<Metrics>,
    pub results: Arc<Mutex<BTreeMap<JobId, JobRecord>>>,
    pub policy: WorkerPolicy,
    pub engine: Option<Arc<dyn crate::MomentEngine>>,
    pub on_complete: Option<crate::CompletionHook>,
}

/// Worker main loop: drain the queue until it closes.
pub(crate) fn run_worker(ctx: Arc<WorkerContext>) {
    while let Some(job) = ctx.queue.pop() {
        ctx.metrics.queue_wait.record(job.enqueued.elapsed());
        let busy_start = Instant::now();
        let record = {
            let _span = if kpm_obs::enabled() {
                kpm_obs::span_labeled("serve.job", &job.spec.canonical())
            } else {
                kpm_obs::span("serve.job")
            };
            process(&ctx, job.id, &job.spec)
        };
        ctx.metrics.record_busy(busy_start.elapsed());
        match &record.outcome {
            JobOutcome::Completed(_) => bump(&ctx.metrics.completed),
            JobOutcome::Failed { .. } => bump(&ctx.metrics.failed),
            JobOutcome::Cancelled => bump(&ctx.metrics.cancelled),
        }
        // Deliver the terminal record to the front-end hook before it lands
        // in the report map; the hook contract (see [`crate::CompletionHook`])
        // is non-blocking handoff.
        if let Some(hook) = &ctx.on_complete {
            hook(&record);
        }
        ctx.results.lock().expect("results lock").insert(job.id, record);
    }
}

fn process(ctx: &WorkerContext, id: JobId, spec: &JobSpec) -> JobRecord {
    let key = spec.cache_key();
    let n = spec.num_moments;
    let started = Instant::now();

    let (cached, cache_status) = match ctx.cache.lookup(key, n) {
        Lookup::Hit(hit) => {
            bump(&ctx.metrics.cache_hits);
            (Some(hit), CacheStatus::Hit)
        }
        Lookup::Stale { .. } => {
            bump(&ctx.metrics.cache_misses);
            (None, CacheStatus::Upgrade)
        }
        Lookup::Miss => {
            bump(&ctx.metrics.cache_misses);
            (None, CacheStatus::Miss)
        }
    };

    let moments = match cached {
        Some(hit) => Ok(hit),
        None => {
            // Count where uncached work actually lands (cache hits execute
            // on no device at all).
            match spec.device {
                kpm::DeviceSpec::Host => bump(&ctx.metrics.device_host),
                kpm::DeviceSpec::Sim { .. } => bump(&ctx.metrics.device_sim),
            }
            compute_with_retry(ctx, spec, key, cache_status)
        }
    };

    let outcome = match moments {
        Err((error, attempts)) => JobOutcome::Failed { error: error.to_string(), attempts },
        Ok(hit) => {
            let dos = match DosEstimator::new(spec.kpm_params()).reconstruct(
                hit.stats,
                hit.a_plus,
                hit.a_minus,
            ) {
                Ok(dos) => dos,
                Err(e) => {
                    return JobRecord {
                        id,
                        spec_line: spec.canonical(),
                        outcome: JobOutcome::Failed {
                            error: JobError::from(e).to_string(),
                            attempts: 1,
                        },
                    };
                }
            };
            let wrote = spec.out.clone();
            if let Some(path) = &wrote {
                if let Err(e) = write_dos_csv(path, &dos) {
                    return JobRecord {
                        id,
                        spec_line: spec.canonical(),
                        outcome: JobOutcome::Failed {
                            error: format!("writing {path}: {e}"),
                            attempts: 1,
                        },
                    };
                }
            }
            JobOutcome::Completed(JobSuccess {
                num_moments: n,
                dim: spec.model.dim(),
                integral: dos.integrate(),
                peak_energy: dos.peak_energy(),
                moments: dos.moments,
                a_plus: hit.a_plus,
                a_minus: hit.a_minus,
                cache: cache_status,
                duration: started.elapsed(),
                wrote,
            })
        }
    };
    JobRecord { id, spec_line: spec.canonical(), outcome }
}

/// Runs the uncached compute path with the retry policy; on success the
/// cache is inserted/upgraded and the (requested-order) moments returned.
fn compute_with_retry(
    ctx: &WorkerContext,
    spec: &JobSpec,
    key: u64,
    status: CacheStatus,
) -> Result<CachedMoments, (JobError, u32)> {
    let policy = ctx.policy;
    let mut attempt = 0;
    loop {
        let t0 = Instant::now();
        match run_attempt_with(spec, attempt, policy.timeout, ctx.engine.clone()) {
            Ok((stats, a_plus, a_minus)) => {
                ctx.metrics.exec_time.record(t0.elapsed());
                let report = ctx.cache.insert(key, stats.clone(), a_plus, a_minus);
                if report.upgraded || status == CacheStatus::Upgrade {
                    bump(&ctx.metrics.cache_upgrades);
                }
                for _ in 0..report.evicted {
                    bump(&ctx.metrics.cache_evictions);
                }
                return Ok(CachedMoments { stats, a_plus, a_minus });
            }
            Err(error) => {
                match &error {
                    JobError::Panicked(_) => bump(&ctx.metrics.panicked),
                    JobError::TimedOut(_) => bump(&ctx.metrics.timed_out),
                    _ => {}
                }
                if error.retryable() && attempt < policy.max_retries {
                    bump(&ctx.metrics.retried);
                    std::thread::sleep(policy.backoff_base * 2u32.pow(attempt));
                    attempt += 1;
                } else {
                    return Err((error, attempt + 1));
                }
            }
        }
    }
}

/// Thread name marking compute attempts, so the process-global panic hook
/// can tell an isolated (caught, reported) job panic from a real one.
pub(crate) const COMPUTE_THREAD: &str = "kpm-serve-compute";

/// Replaces the default panic hook with one that stays silent for
/// [`COMPUTE_THREAD`] threads — their panics are caught by [`run_attempt`]
/// and surface in the job record, so the default stderr backtrace would
/// only be noise on the serving surface. All other threads keep the
/// previous hook's behaviour. Installed once per process.
pub(crate) fn silence_compute_panics() {
    static INSTALL: std::sync::Once = std::sync::Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if std::thread::current().name() != Some(COMPUTE_THREAD) {
                previous(info);
            }
        }));
    });
}

/// One attempt on a sacrificial thread — panic-isolated and time-bounded —
/// with an optional [`crate::MomentEngine`] replacing the local compute
/// path; the isolation machinery is identical either way, so an engine
/// panic still fails only the job, never the pool.
fn run_attempt_with(
    spec: &JobSpec,
    attempt: u32,
    timeout: Duration,
    engine: Option<Arc<dyn crate::MomentEngine>>,
) -> Result<(MomentStats, f64, f64), JobError> {
    let (tx, rx) = mpsc::channel();
    let spec = spec.clone();
    std::thread::Builder::new()
        .name(COMPUTE_THREAD.into())
        .spawn(move || {
            let result = catch_unwind(AssertUnwindSafe(|| match &engine {
                Some(e) => e.compute(&spec, attempt),
                None => compute_raw_moments(&spec, attempt),
            }));
            let _ = tx.send(result);
        })
        .expect("spawn compute thread");
    match rx.recv_timeout(timeout) {
        Ok(Ok(result)) => result,
        // `&*` reaches the payload itself; a bare `&payload` would coerce
        // the Box into the `dyn Any` and every downcast would miss.
        Ok(Err(payload)) => Err(JobError::Panicked(panic_message(&*payload))),
        Err(RecvTimeoutError::Timeout) => Err(JobError::TimedOut(timeout)),
        // The child died without sending — treat like a panic.
        Err(RecvTimeoutError::Disconnected) => {
            Err(JobError::Panicked("compute thread vanished".into()))
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".into())
}

/// The uncached compute path: build the Hamiltonian and run the stochastic
/// moment pipeline on the selected backend. Mirrors `kpm dos` exactly
/// (bounds → padded rescale → `stochastic_moments`), so batch results are
/// bitwise identical to one-shot CLI runs with the same spec and seed.
///
/// Public so correctness tests can compare cache-mediated results against
/// the direct path.
///
/// # Errors
/// [`JobError`] on KPM or engine failures (faults surface as panics, which
/// the caller isolates).
pub fn compute_raw_moments(
    spec: &JobSpec,
    attempt: u32,
) -> Result<(MomentStats, f64, f64), JobError> {
    match spec.fault {
        Some(Fault::Panic) => panic!("injected fault: panic"),
        Some(Fault::Flaky { until }) if attempt < until => {
            panic!("injected fault: flaky attempt {attempt}")
        }
        Some(Fault::SleepMs(ms)) => std::thread::sleep(Duration::from_millis(ms)),
        _ => {}
    }
    let params = spec.kpm_params();
    params.validate()?;
    let matrix = spec.build_matrix();
    // Declare the operator identity for the bounds memo: repeat jobs on one
    // operator (any moments/kernel/seed) resolve spectral bounds from the
    // per-process cache instead of recomputing Gershgorin or re-running a
    // Lanczos probe.
    let _bounds_scope = kpm::OpKeyScope::enter(spec.op_key());
    match spec.backend {
        // The CPU backend submits through the job's device: `host` runs the
        // tiled engine directly, `sim[:n]` runs the identical functional
        // pipeline and additionally prices the run on the event-queue
        // device model — the numbers are bitwise equal either way.
        Backend::Cpu => {
            let device = spec.device.build();
            // Resolve (or probe) the calibrated execution profile for this
            // operator shape before the moments run: jobs sharing an
            // operator hash share a shape, so the first worker probes and
            // every later one hits the store (`kpm.tune.hit`) instead of
            // re-measuring. The rescaled wrapper forwards dim and entry
            // counts, so profiling the raw operator keys identically.
            let chunks =
                kpm::moments::realization_chunk_count(&params, 0..params.total_realizations());
            let run = match &matrix {
                JobMatrix::Sparse(h) => {
                    kpm::tune::ensure_profile(h, chunks);
                    device.submit(kpm::DeviceOp::Sparse(h), &params)?
                }
                JobMatrix::Dense(h) => {
                    kpm::tune::ensure_profile(h, chunks);
                    device.submit(kpm::DeviceOp::Dense(h), &params)?
                }
            };
            Ok((run.moments, run.a_plus, run.a_minus))
        }
        Backend::Stream => {
            let mut engine = StreamKpmEngine::new(GpuSpec::tesla_c2050());
            let result = match &matrix {
                // The stream engine models CSR transfers, so materialize
                // whatever format the spec chose as concrete CSR storage.
                JobMatrix::Sparse(h) => engine.compute_moments_csr(&h.to_csr(), &params),
                JobMatrix::Dense(h) => engine.compute_moments_dense(h, &params),
            }
            .map_err(|e| JobError::Engine(e.to_string()))?;
            Ok((result.moments, result.a_plus, result.a_minus))
        }
    }
}

fn write_dos_csv(path: &str, dos: &kpm::Dos) -> std::io::Result<()> {
    use std::io::Write as _;
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(f, "energy,rho")?;
    for (e, r) in dos.energies.iter().zip(&dos.rho) {
        writeln!(f, "{e},{r}")?;
    }
    f.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(line: &str) -> JobSpec {
        JobSpec::parse(line).unwrap()
    }

    fn run_attempt(
        spec: &JobSpec,
        attempt: u32,
        timeout: Duration,
    ) -> Result<(MomentStats, f64, f64), JobError> {
        run_attempt_with(spec, attempt, timeout, None)
    }

    #[test]
    fn cpu_and_direct_pipeline_agree() {
        // compute_raw_moments must match the DosEstimator pipeline bitwise.
        let job = spec("lattice=chain:32 moments=24 random=3 sets=2 seed=5");
        let (stats, a_plus, a_minus) = compute_raw_moments(&job, 0).unwrap();
        let JobMatrix::Sparse(h) = job.build_matrix() else { panic!("expected sparse") };
        let dos = kpm::DosEstimator::new(job.kpm_params()).compute(&h).unwrap();
        assert_eq!(stats.mean, dos.moments.mean);
        assert_eq!((a_plus, a_minus), (dos.a_plus, dos.a_minus));
    }

    #[test]
    fn sim_device_matches_host_device_bitwise() {
        // The sim backend runs the identical functional pipeline; only the
        // clock differs — the contract that lets the cache mask the device.
        let host = spec("lattice=chain:32 moments=24 random=3 sets=2 seed=5");
        let sim = spec("lattice=chain:32 moments=24 random=3 sets=2 seed=5 device=sim:4");
        let (a, a_plus, a_minus) = compute_raw_moments(&host, 0).unwrap();
        let (b, b_plus, b_minus) = compute_raw_moments(&sim, 0).unwrap();
        assert_eq!(a.mean, b.mean);
        assert_eq!(a.std_err, b.std_err);
        assert_eq!((a_plus, a_minus), (b_plus, b_minus));
        assert_eq!(host.cache_key(), sim.cache_key());
    }

    #[test]
    fn stream_backend_produces_moments() {
        let job = spec("lattice=chain:24 moments=16 random=2 sets=1 backend=stream");
        let (stats, _, a_minus) = compute_raw_moments(&job, 0).unwrap();
        assert_eq!(stats.num_moments(), 16);
        assert!(a_minus > 0.0);
        assert!((stats.mean[0] - 1.0).abs() < 1e-9, "mu_0 ~ 1");
    }

    #[test]
    fn injected_panic_is_isolated_by_run_attempt() {
        let job = spec("lattice=chain:8 moments=8 fault=panic");
        match run_attempt(&job, 0, Duration::from_secs(5)) {
            Err(JobError::Panicked(msg)) => assert!(msg.contains("injected fault")),
            other => panic!("expected panic isolation, got {other:?}"),
        }
    }

    #[test]
    fn flaky_fault_succeeds_on_later_attempt() {
        let job = spec("lattice=chain:8 moments=8 random=1 sets=1 fault=flaky:2");
        assert!(matches!(run_attempt(&job, 0, Duration::from_secs(5)), Err(JobError::Panicked(_))));
        assert!(matches!(run_attempt(&job, 1, Duration::from_secs(5)), Err(JobError::Panicked(_))));
        assert!(run_attempt(&job, 2, Duration::from_secs(5)).is_ok());
    }

    #[test]
    fn sleep_fault_triggers_timeout() {
        let job = spec("lattice=chain:8 moments=8 fault=sleep:5000");
        match run_attempt(&job, 0, Duration::from_millis(50)) {
            Err(JobError::TimedOut(t)) => assert_eq!(t, Duration::from_millis(50)),
            other => panic!("expected timeout, got {other:?}"),
        }
    }

    #[test]
    fn retryability_classification() {
        assert!(JobError::Panicked("x".into()).retryable());
        assert!(JobError::TimedOut(Duration::from_secs(1)).retryable());
        assert!(!JobError::Kpm("x".into()).retryable());
        assert!(!JobError::Engine("x".into()).retryable());
    }
}
