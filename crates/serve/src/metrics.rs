//! Lock-free service counters and latency histograms.
//!
//! Everything is an atomic so workers record without contending on a lock;
//! [`Metrics::render`] produces the human-readable block the front-ends
//! print at shutdown (and which the integration tests assert against).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Power-of-two latency histogram: bucket `i` counts durations in
/// `[2^i, 2^{i+1})` microseconds (bucket 0 also absorbs sub-microsecond).
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; 32],
    sum_micros: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// Records one duration.
    pub fn record(&self, d: Duration) {
        let micros = d.as_micros().min(u128::from(u64::MAX)) as u64;
        let idx = (64 - micros.max(1).leading_zeros() as usize - 1).min(31);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean of recorded durations (zero when empty).
    pub fn mean(&self) -> Duration {
        let n = self.count();
        if n == 0 {
            return Duration::ZERO;
        }
        Duration::from_micros(self.sum_micros.load(Ordering::Relaxed) / n)
    }

    /// Upper edge (exclusive, in µs) of the smallest bucket prefix holding
    /// at least `q` of the samples — a coarse quantile.
    pub fn quantile_upper_micros(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let target = (q * n as f64).ceil() as u64;
        let mut seen = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return 1u64 << (i + 1);
            }
        }
        u64::MAX
    }
}

/// Service-wide counters.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Jobs accepted into the queue.
    pub submitted: AtomicU64,
    /// Jobs rejected by backpressure.
    pub rejected: AtomicU64,
    /// Jobs that produced a result.
    pub completed: AtomicU64,
    /// Jobs that exhausted retries (or failed terminally).
    pub failed: AtomicU64,
    /// Jobs cancelled while still queued (shutdown).
    pub cancelled: AtomicU64,
    /// Individual retry attempts.
    pub retried: AtomicU64,
    /// Attempts that hit the per-job timeout.
    pub timed_out: AtomicU64,
    /// Attempts that panicked (caught; pool survived).
    pub panicked: AtomicU64,
    /// Moment-cache hits (including prefix hits).
    pub cache_hits: AtomicU64,
    /// Moment-cache misses.
    pub cache_misses: AtomicU64,
    /// Cache entries upgraded in place to a higher order.
    pub cache_upgrades: AtomicU64,
    /// Cache entries evicted by the LRU policy.
    pub cache_evictions: AtomicU64,
    /// Time jobs spent queued before a worker picked them up.
    pub queue_wait: Histogram,
    /// Time spent executing (per successful attempt).
    pub exec_time: Histogram,
}

/// Increments an atomic counter by one.
pub fn bump(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed);
}

fn load(counter: &AtomicU64) -> u64 {
    counter.load(Ordering::Relaxed)
}

impl Metrics {
    /// Renders the metrics block. `queue_depth` is sampled by the caller at
    /// render time (the queue owns it).
    pub fn render(&self, queue_depth: usize) -> String {
        let hits = load(&self.cache_hits);
        let misses = load(&self.cache_misses);
        let total_lookups = hits + misses;
        let hit_rate =
            if total_lookups == 0 { 0.0 } else { 100.0 * hits as f64 / total_lookups as f64 };
        format!(
            "jobs      : submitted {} | completed {} | failed {} | cancelled {} | rejected {}\n\
             attempts  : retried {} | timed out {} | panicked {}\n\
             cache     : hits {hits} | misses {misses} | hit rate {hit_rate:.1}% | upgrades {} | \
             evictions {}\n\
             queue     : depth {queue_depth} | wait mean {:?} | wait p90 < {} us\n\
             execution : mean {:?} | p90 < {} us\n",
            load(&self.submitted),
            load(&self.completed),
            load(&self.failed),
            load(&self.cancelled),
            load(&self.rejected),
            load(&self.retried),
            load(&self.timed_out),
            load(&self.panicked),
            load(&self.cache_upgrades),
            load(&self.cache_evictions),
            self.queue_wait.mean(),
            self.queue_wait.quantile_upper_micros(0.9),
            self.exec_time.mean(),
            self.exec_time.quantile_upper_micros(0.9),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_mean() {
        let h = Histogram::default();
        h.record(Duration::from_micros(3));
        h.record(Duration::from_micros(5));
        h.record(Duration::from_micros(1000));
        assert_eq!(h.count(), 3);
        assert_eq!(h.mean(), Duration::from_micros(336));
        // Two of three samples sit in [2, 8) us; p50 upper edge is <= 8.
        assert!(h.quantile_upper_micros(0.5) <= 8);
        assert!(h.quantile_upper_micros(1.0) >= 1024);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = Histogram::default();
        assert_eq!(h.mean(), Duration::ZERO);
        assert_eq!(h.quantile_upper_micros(0.9), 0);
    }

    #[test]
    fn render_mentions_all_counter_groups() {
        let m = Metrics::default();
        bump(&m.submitted);
        bump(&m.cache_hits);
        let text = m.render(4);
        for needle in ["submitted 1", "hits 1", "hit rate 100.0%", "depth 4"] {
            assert!(text.contains(needle), "missing '{needle}' in:\n{text}");
        }
    }
}
