//! Service counters and latency histograms on the shared observability
//! layer.
//!
//! Counters are [`kpm_obs::Counter`]s with canonical `serve.*` names: each
//! [`Metrics`] instance counts locally (plain atomics, one instance per
//! [`BatchService`](crate::BatchService), so concurrent services — and the
//! integration tests — see exact per-service totals), and while a trace
//! session is active every increment is additionally mirrored into the
//! ambient [`kpm_obs`] counter of the same name, so a `--trace` run records
//! the service totals next to the pipeline spans.
//!
//! [`Metrics::render`] produces the human-readable block the front-ends
//! print at shutdown (and which the integration tests assert against);
//! [`Metrics::counters`] is the machine-readable snapshot behind
//! [`BatchService::metrics_json`](crate::BatchService::metrics_json).

use kpm_obs::Counter;
pub use kpm_obs::Histogram;
use std::time::Duration;

/// Service-wide counters.
#[derive(Debug)]
pub struct Metrics {
    /// Jobs accepted into the queue.
    pub submitted: Counter,
    /// Jobs rejected by backpressure.
    pub rejected: Counter,
    /// Jobs that produced a result.
    pub completed: Counter,
    /// Jobs that exhausted retries (or failed terminally).
    pub failed: Counter,
    /// Jobs cancelled while still queued (shutdown).
    pub cancelled: Counter,
    /// Individual retry attempts.
    pub retried: Counter,
    /// Attempts that hit the per-job timeout.
    pub timed_out: Counter,
    /// Attempts that panicked (caught; pool survived).
    pub panicked: Counter,
    /// Moment-cache hits (including prefix hits).
    pub cache_hits: Counter,
    /// Moment-cache misses.
    pub cache_misses: Counter,
    /// Cache entries upgraded in place to a higher order.
    pub cache_upgrades: Counter,
    /// Cache entries evicted by the LRU policy.
    pub cache_evictions: Counter,
    /// Total worker time spent processing jobs, in microseconds (the
    /// utilization numerator; workers × wall time is the denominator).
    pub busy_us: Counter,
    /// Jobs executed on the host device backend.
    pub device_host: Counter,
    /// Jobs executed on the simulated device backend.
    pub device_sim: Counter,
    /// Time jobs spent queued before a worker picked them up.
    pub queue_wait: Histogram,
    /// Time spent executing (per successful attempt).
    pub exec_time: Histogram,
}

impl Default for Metrics {
    fn default() -> Self {
        Self {
            submitted: Counter::new("serve.jobs.submitted"),
            rejected: Counter::new("serve.jobs.rejected"),
            completed: Counter::new("serve.jobs.completed"),
            failed: Counter::new("serve.jobs.failed"),
            cancelled: Counter::new("serve.jobs.cancelled"),
            retried: Counter::new("serve.attempts.retried"),
            timed_out: Counter::new("serve.attempts.timed_out"),
            panicked: Counter::new("serve.attempts.panicked"),
            cache_hits: Counter::new("serve.cache.hits"),
            cache_misses: Counter::new("serve.cache.misses"),
            cache_upgrades: Counter::new("serve.cache.upgrades"),
            cache_evictions: Counter::new("serve.cache.evictions"),
            busy_us: Counter::new("serve.worker.busy_us"),
            device_host: Counter::new("serve.device.host"),
            device_sim: Counter::new("serve.device.sim"),
            queue_wait: Histogram::default(),
            exec_time: Histogram::default(),
        }
    }
}

/// Increments a counter by one (kept for call-site brevity; also mirrors
/// into the ambient trace session, see [`kpm_obs::Counter::add`]).
pub fn bump(counter: &Counter) {
    counter.inc();
}

impl Metrics {
    /// Records worker busy time (mirrored under `serve.worker.busy_us`).
    pub fn record_busy(&self, d: Duration) {
        self.busy_us.add(d.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Snapshot of every counter plus derived queue/latency gauges, as
    /// `(canonical name, value)` pairs in stable order. `queue_depth` is
    /// sampled by the caller (the queue owns it).
    pub fn counters(&self, queue_depth: usize) -> Vec<(&'static str, u64)> {
        let own = [
            &self.submitted,
            &self.rejected,
            &self.completed,
            &self.failed,
            &self.cancelled,
            &self.retried,
            &self.timed_out,
            &self.panicked,
            &self.cache_hits,
            &self.cache_misses,
            &self.cache_upgrades,
            &self.cache_evictions,
            &self.busy_us,
            &self.device_host,
            &self.device_sim,
        ];
        let mut out: Vec<(&'static str, u64)> = own.iter().map(|c| (c.name(), c.get())).collect();
        out.push(("serve.queue.depth", queue_depth as u64));
        out.push(("serve.queue.wait_mean_us", self.queue_wait.mean().as_micros() as u64));
        out.push(("serve.queue.wait_p90_us", self.queue_wait.quantile_upper_micros(0.9)));
        out.push(("serve.exec.mean_us", self.exec_time.mean().as_micros() as u64));
        out.push(("serve.exec.p90_us", self.exec_time.quantile_upper_micros(0.9)));
        out
    }

    /// Renders the metrics block. `queue_depth` is sampled by the caller at
    /// render time (the queue owns it).
    pub fn render(&self, queue_depth: usize) -> String {
        let hits = self.cache_hits.get();
        let misses = self.cache_misses.get();
        let total_lookups = hits + misses;
        let hit_rate =
            if total_lookups == 0 { 0.0 } else { 100.0 * hits as f64 / total_lookups as f64 };
        format!(
            "jobs      : submitted {} | completed {} | failed {} | cancelled {} | rejected {}\n\
             attempts  : retried {} | timed out {} | panicked {}\n\
             cache     : hits {hits} | misses {misses} | hit rate {hit_rate:.1}% | upgrades {} | \
             evictions {}\n\
             queue     : depth {queue_depth} | wait mean {:?} | wait p90 < {} us\n\
             execution : mean {:?} | p90 < {} us\n",
            self.submitted.get(),
            self.completed.get(),
            self.failed.get(),
            self.cancelled.get(),
            self.rejected.get(),
            self.retried.get(),
            self.timed_out.get(),
            self.panicked.get(),
            self.cache_upgrades.get(),
            self.cache_evictions.get(),
            self.queue_wait.mean(),
            self.queue_wait.quantile_upper_micros(0.9),
            self.exec_time.mean(),
            self.exec_time.quantile_upper_micros(0.9),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_mean() {
        let h = Histogram::default();
        h.record(Duration::from_micros(3));
        h.record(Duration::from_micros(5));
        h.record(Duration::from_micros(1000));
        assert_eq!(h.count(), 3);
        assert_eq!(h.mean(), Duration::from_micros(336));
        // Two of three samples sit in [2, 8) us; p50 upper edge is <= 8.
        assert!(h.quantile_upper_micros(0.5) <= 8);
        assert!(h.quantile_upper_micros(1.0) >= 1024);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = Histogram::default();
        assert_eq!(h.mean(), Duration::ZERO);
        assert_eq!(h.quantile_upper_micros(0.9), 0);
    }

    #[test]
    fn render_mentions_all_counter_groups() {
        let m = Metrics::default();
        bump(&m.submitted);
        bump(&m.cache_hits);
        let text = m.render(4);
        for needle in ["submitted 1", "hits 1", "hit rate 100.0%", "depth 4"] {
            assert!(text.contains(needle), "missing '{needle}' in:\n{text}");
        }
    }

    #[test]
    fn counters_snapshot_uses_canonical_names() {
        let m = Metrics::default();
        bump(&m.submitted);
        m.record_busy(Duration::from_millis(2));
        m.exec_time.record(Duration::from_micros(100));
        let snap = m.counters(3);
        let get = |name: &str| {
            snap.iter().find(|(n, _)| *n == name).map(|&(_, v)| v).expect("counter present")
        };
        assert_eq!(get("serve.jobs.submitted"), 1);
        assert_eq!(get("serve.worker.busy_us"), 2000);
        assert_eq!(get("serve.queue.depth"), 3);
        assert_eq!(get("serve.exec.mean_us"), 100);
        assert_eq!(get("serve.jobs.failed"), 0);
    }
}
