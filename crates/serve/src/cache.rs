//! Content-addressed moment cache: in-memory LRU plus optional CSV spill.
//!
//! The cache stores *raw* (undamped) moment statistics keyed by
//! [`crate::job::JobSpec::cache_key`] — the job identity minus truncation
//! order and kernel. That exclusion is the whole point: `mu_0..mu_{N-1}` of
//! a run at order `N' >= N` are bitwise identical to a fresh run at `N`
//! ([`MomentStats::truncated`]), and kernel damping is applied at
//! reconstruction time. So one entry serves
//!
//! * exact repeats (same spec, any kernel),
//! * lower-order requests (prefix reuse), and
//! * higher-order requests *after* recomputation upgrades the entry.
//!
//! With a spill directory, `flush` writes each entry to
//! `<dir>/<key as hex>.csv` using Rust's shortest-round-trip float
//! formatting, and `load` restores them, so a warm cache survives process
//! restarts; the files double as human-readable artifacts under
//! `results/cache/`.

use kpm::MomentStats;
use std::collections::HashMap;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// A cache hit: enough moments for the request, plus the rescaling that
/// produced them (needed for reconstruction on the original energy axis).
#[derive(Debug, Clone)]
pub struct CachedMoments {
    /// Raw moment statistics, already truncated to the requested order.
    pub stats: MomentStats,
    /// Rescaling centre used by the cached run.
    pub a_plus: f64,
    /// Rescaling half-width used by the cached run.
    pub a_minus: f64,
}

/// Outcome of a cache lookup at a requested order.
#[derive(Debug)]
pub enum Lookup {
    /// Entry found with `n_cached >= n`: ready-to-use truncated moments.
    Hit(CachedMoments),
    /// Entry found but only at a lower order; recomputing will upgrade it.
    Stale {
        /// Order stored in the cache.
        cached_n: usize,
    },
    /// No entry.
    Miss,
}

/// Outcome of an insert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InsertReport {
    /// An existing entry was replaced by a higher-order run.
    pub upgraded: bool,
    /// Entries evicted by the LRU policy to make room.
    pub evicted: usize,
}

struct Entry {
    stats: MomentStats,
    a_plus: f64,
    a_minus: f64,
    tick: u64,
}

struct Inner {
    entries: HashMap<u64, Entry>,
    tick: u64,
}

/// Callback invoked after an entry is upgraded to a higher order; receives
/// the cache key and the new order. See [`MomentCache::set_upgrade_observer`].
pub type UpgradeObserver = std::sync::Arc<dyn Fn(u64, usize) + Send + Sync>;

/// The cache. All methods take `&self`; a mutex guards the map.
pub struct MomentCache {
    inner: Mutex<Inner>,
    capacity: usize,
    dir: Option<PathBuf>,
    observer: Mutex<Option<UpgradeObserver>>,
}

impl MomentCache {
    /// An in-memory cache holding at most `capacity` entries; with
    /// `Some(dir)`, [`MomentCache::flush`] spills entries there as CSV.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, dir: Option<PathBuf>) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        Self {
            inner: Mutex::new(Inner { entries: HashMap::new(), tick: 0 }),
            capacity,
            dir,
            observer: Mutex::new(None),
        }
    }

    /// Registers a callback fired whenever [`MomentCache::insert`] upgrades
    /// an existing entry to a higher order (the prefix-extension event a
    /// streaming-refinement front-end watches for). The observer runs
    /// outside the entry lock, so it may call back into the cache. At most
    /// one observer; a later call replaces the earlier one.
    pub fn set_upgrade_observer(&self, observer: UpgradeObserver) {
        *self.observer.lock().expect("observer lock") = Some(observer);
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache lock").entries.len()
    }

    /// `true` when no entries are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Capacity this cache was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks up `key` at truncation order `n`. A hit refreshes the entry's
    /// LRU position and returns moments truncated to exactly `n`.
    pub fn lookup(&self, key: u64, n: usize) -> Lookup {
        let mut inner = self.inner.lock().expect("cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        match inner.entries.get_mut(&key) {
            None => Lookup::Miss,
            Some(entry) => {
                entry.tick = tick;
                if entry.stats.num_moments() >= n {
                    Lookup::Hit(CachedMoments {
                        stats: entry.stats.truncated(n),
                        a_plus: entry.a_plus,
                        a_minus: entry.a_minus,
                    })
                } else {
                    Lookup::Stale { cached_n: entry.stats.num_moments() }
                }
            }
        }
    }

    /// Inserts (or upgrades) the entry for `key`. A run at a *lower* order
    /// than what is already cached is ignored — the cache only grows more
    /// capable. Evicts least-recently-used entries beyond capacity.
    pub fn insert(&self, key: u64, stats: MomentStats, a_plus: f64, a_minus: f64) -> InsertReport {
        let new_n = stats.num_moments();
        let mut inner = self.inner.lock().expect("cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        let mut upgraded = false;
        match inner.entries.get_mut(&key) {
            Some(entry) => {
                if stats.num_moments() > entry.stats.num_moments() {
                    *entry = Entry { stats, a_plus, a_minus, tick };
                    upgraded = true;
                } else {
                    entry.tick = tick;
                }
            }
            None => {
                inner.entries.insert(key, Entry { stats, a_plus, a_minus, tick });
            }
        }
        let mut evicted = 0;
        while inner.entries.len() > self.capacity {
            let oldest = inner
                .entries
                .iter()
                .min_by_key(|(_, e)| e.tick)
                .map(|(&k, _)| k)
                .expect("nonempty over-capacity cache");
            inner.entries.remove(&oldest);
            evicted += 1;
        }
        drop(inner);
        if upgraded {
            let observer = self.observer.lock().expect("observer lock").clone();
            if let Some(observer) = observer {
                observer(key, new_n);
            }
        }
        InsertReport { upgraded, evicted }
    }

    /// Writes every entry to the spill directory (no-op without one);
    /// returns the number of files written.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn flush(&self) -> io::Result<usize> {
        let Some(dir) = &self.dir else { return Ok(0) };
        std::fs::create_dir_all(dir)?;
        let inner = self.inner.lock().expect("cache lock");
        for (key, entry) in &inner.entries {
            let path = dir.join(format!("{key:016x}.csv"));
            let mut f = io::BufWriter::new(std::fs::File::create(path)?);
            writeln!(f, "# kpm-serve moment cache v1")?;
            writeln!(f, "key,{key:016x}")?;
            writeln!(f, "samples,{}", entry.stats.samples)?;
            writeln!(f, "a_plus,{}", entry.a_plus)?;
            writeln!(f, "a_minus,{}", entry.a_minus)?;
            writeln!(f, "n,mean,std_err")?;
            for (n, (m, s)) in entry.stats.mean.iter().zip(&entry.stats.std_err).enumerate() {
                // `{}` is Rust's shortest round-trip formatting, so reading
                // the file back reproduces the f64 bits exactly.
                writeln!(f, "{n},{m},{s}")?;
            }
            f.flush()?;
        }
        Ok(inner.entries.len())
    }

    /// Loads every `*.csv` entry from the spill directory (no-op without
    /// one or when it does not exist); returns the number of entries
    /// loaded. Malformed files are skipped, not fatal.
    ///
    /// # Errors
    /// Propagates directory-listing errors.
    pub fn load(&self) -> io::Result<usize> {
        let Some(dir) = &self.dir else { return Ok(0) };
        if !dir.is_dir() {
            return Ok(0);
        }
        let mut loaded = 0;
        for entry in std::fs::read_dir(dir)? {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) != Some("csv") {
                continue;
            }
            if let Some((key, cached)) = parse_entry(&path) {
                self.insert(key, cached.stats, cached.a_plus, cached.a_minus);
                loaded += 1;
            }
        }
        Ok(loaded)
    }
}

fn parse_entry(path: &Path) -> Option<(u64, CachedMoments)> {
    let text = std::fs::read_to_string(path).ok()?;
    let mut lines = text.lines();
    if lines.next()? != "# kpm-serve moment cache v1" {
        return None;
    }
    let key = u64::from_str_radix(lines.next()?.strip_prefix("key,")?, 16).ok()?;
    let samples: usize = lines.next()?.strip_prefix("samples,")?.parse().ok()?;
    let a_plus: f64 = lines.next()?.strip_prefix("a_plus,")?.parse().ok()?;
    let a_minus: f64 = lines.next()?.strip_prefix("a_minus,")?.parse().ok()?;
    if lines.next()? != "n,mean,std_err" {
        return None;
    }
    let mut mean = Vec::new();
    let mut std_err = Vec::new();
    for (expect_n, line) in lines.enumerate() {
        let mut parts = line.split(',');
        let n: usize = parts.next()?.parse().ok()?;
        if n != expect_n {
            return None;
        }
        mean.push(parts.next()?.parse().ok()?);
        std_err.push(parts.next()?.parse().ok()?);
    }
    if mean.len() < 2 {
        return None;
    }
    Some((key, CachedMoments { stats: MomentStats { mean, std_err, samples }, a_plus, a_minus }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(n: usize, seed: f64) -> MomentStats {
        MomentStats {
            mean: (0..n).map(|i| (i as f64 * 0.37 + seed).sin() / 3.0).collect(),
            std_err: (0..n).map(|i| 1e-3 / (i + 1) as f64).collect(),
            samples: 8,
        }
    }

    #[test]
    fn hit_returns_exact_truncation() {
        let cache = MomentCache::new(4, None);
        let full = stats(32, 0.1);
        cache.insert(1, full.clone(), 0.5, 2.0);
        match cache.lookup(1, 12) {
            Lookup::Hit(hit) => {
                assert_eq!(hit.stats.mean, full.mean[..12].to_vec());
                assert_eq!(hit.stats.std_err, full.std_err[..12].to_vec());
                assert_eq!((hit.a_plus, hit.a_minus), (0.5, 2.0));
            }
            other => panic!("expected hit, got {other:?}"),
        }
    }

    #[test]
    fn stale_then_upgrade() {
        let cache = MomentCache::new(4, None);
        cache.insert(1, stats(8, 0.1), 0.0, 1.0);
        assert!(matches!(cache.lookup(1, 16), Lookup::Stale { cached_n: 8 }));
        let report = cache.insert(1, stats(16, 0.1), 0.0, 1.0);
        assert!(report.upgraded);
        assert!(matches!(cache.lookup(1, 16), Lookup::Hit(_)));
        // A lower-order insert never downgrades.
        let report = cache.insert(1, stats(4, 0.1), 0.0, 1.0);
        assert!(!report.upgraded);
        assert!(matches!(cache.lookup(1, 16), Lookup::Hit(_)));
    }

    #[test]
    fn upgrade_observer_fires_only_on_prefix_extension() {
        use std::sync::{Arc, Mutex};
        let cache = MomentCache::new(4, None);
        let events: Arc<Mutex<Vec<(u64, usize)>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&events);
        cache.set_upgrade_observer(Arc::new(move |key, n| {
            sink.lock().unwrap().push((key, n));
        }));
        cache.insert(9, stats(8, 0.1), 0.0, 1.0); // fresh: no event
        cache.insert(9, stats(8, 0.1), 0.0, 1.0); // same order: no event
        cache.insert(9, stats(4, 0.1), 0.0, 1.0); // downgrade attempt: no event
        cache.insert(9, stats(16, 0.1), 0.0, 1.0); // upgrade
        cache.insert(9, stats(32, 0.1), 0.0, 1.0); // upgrade again
        assert_eq!(*events.lock().unwrap(), vec![(9, 16), (9, 32)]);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = MomentCache::new(2, None);
        cache.insert(1, stats(4, 0.1), 0.0, 1.0);
        cache.insert(2, stats(4, 0.2), 0.0, 1.0);
        // Touch 1 so 2 becomes the LRU victim.
        assert!(matches!(cache.lookup(1, 4), Lookup::Hit(_)));
        let report = cache.insert(3, stats(4, 0.3), 0.0, 1.0);
        assert_eq!(report.evicted, 1);
        assert_eq!(cache.len(), 2);
        assert!(matches!(cache.lookup(2, 4), Lookup::Miss));
        assert!(matches!(cache.lookup(1, 4), Lookup::Hit(_)));
        assert!(matches!(cache.lookup(3, 4), Lookup::Hit(_)));
    }

    #[test]
    fn spill_roundtrip_is_bitwise() {
        let dir = std::env::temp_dir().join(format!("kpm_cache_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = MomentCache::new(8, Some(dir.clone()));
        let original = stats(24, 0.7);
        cache.insert(0xdead_beef, original.clone(), 0.125, 3.5 + 1e-13);
        assert_eq!(cache.flush().unwrap(), 1);

        let restored = MomentCache::new(8, Some(dir.clone()));
        assert_eq!(restored.load().unwrap(), 1);
        match restored.lookup(0xdead_beef, 24) {
            Lookup::Hit(hit) => {
                assert_eq!(hit.stats.mean, original.mean, "bitwise mean round-trip");
                assert_eq!(hit.stats.std_err, original.std_err);
                assert_eq!(hit.stats.samples, 8);
                assert_eq!(hit.a_minus, 3.5 + 1e-13);
            }
            other => panic!("expected hit, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn load_skips_malformed_files() {
        let dir = std::env::temp_dir().join(format!("kpm_cache_bad_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("junk.csv"), "not a cache entry").unwrap();
        std::fs::write(dir.join("notes.txt"), "ignored entirely").unwrap();
        let cache = MomentCache::new(4, Some(dir.clone()));
        assert_eq!(cache.load().unwrap(), 0);
        assert!(cache.is_empty());
        let _ = std::fs::remove_dir_all(dir);
    }
}
