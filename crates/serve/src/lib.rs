//! Batched KPM job execution with a content-addressed moment cache.
//!
//! This crate turns the one-shot KPM pipeline into a small serving system:
//! jobs (density-of-states runs described by [`job::JobSpec`] lines) enter
//! a bounded priority [`queue`], a pool of [`worker`] threads executes them
//! with panic isolation, per-job timeouts, and bounded retry, and raw
//! Chebyshev moments land in a [`cache`] keyed by the job's physical
//! content — so duplicate specs, lower-order repeats, and kernel variations
//! are served without recomputation. [`metrics`] counts everything.
//!
//! The cache exploits two structural facts of the KPM (see
//! [`kpm::MomentStats::truncated`]): moments of order `< N` are a bitwise
//! prefix of any longer run with the same parameters, and kernel damping is
//! a post-processing step. Moments are therefore cached raw at the highest
//! order seen, and reconstruction re-applies the requested kernel per job.
//!
//! # Quickstart
//!
//! ```
//! use kpm_serve::{BatchConfig, BatchService, JobSpec};
//!
//! let service = BatchService::start(BatchConfig { workers: 2, ..BatchConfig::default() });
//! for line in ["lattice=chain:64 moments=64", "lattice=chain:64 moments=32 kernel=fejer"] {
//!     service.submit(JobSpec::parse(line).unwrap()).unwrap();
//! }
//! let report = service.finish();
//! assert_eq!(report.completed(), 2);
//! // The second job is a prefix of the first: one compute, one cache hit.
//! ```

pub mod cache;
pub mod job;
pub mod metrics;
pub mod queue;
pub mod worker;

pub use cache::MomentCache;
pub use job::{Backend, Fault, JobParseError, JobSpec, ModelSpec, Priority};
pub use metrics::Metrics;
pub use queue::{JobId, JobQueue, QueueFull};
pub use worker::{JobError, WorkerPolicy};

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Pluggable moment-computation backend for the worker pool.
///
/// The pool's default compute path is [`worker::compute_raw_moments`]; an
/// engine replaces it (behind the same panic isolation, timeout, and retry
/// machinery) — this is how distributed sharding slots in behind the
/// existing queue and cache. `compute` must return exactly what the local
/// path would for the same spec: the raw stochastic [`kpm::MomentStats`]
/// plus the rescale parameters `(a_plus, a_minus)`. Cache compatibility
/// depends on that bitwise faithfulness, since merged results are stored
/// under the same content-addressed [`JobSpec`] key as local ones.
pub trait MomentEngine: Send + Sync {
    /// Computes raw moments for `spec` (attempt index for fault/retry
    /// bookkeeping).
    ///
    /// # Errors
    /// [`JobError`] classified like the local path: only panics/timeouts
    /// are retryable.
    fn compute(
        &self,
        spec: &JobSpec,
        attempt: u32,
    ) -> Result<(kpm::MomentStats, f64, f64), JobError>;
}

/// How a completed job's moments were obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheStatus {
    /// Served from the cache (exact or prefix reuse).
    Hit,
    /// Computed fresh; no usable entry existed.
    Miss,
    /// Computed fresh at a higher order, upgrading an existing entry.
    Upgrade,
}

impl CacheStatus {
    fn as_str(self) -> &'static str {
        match self {
            CacheStatus::Hit => "hit",
            CacheStatus::Miss => "miss",
            CacheStatus::Upgrade => "upgrade",
        }
    }
}

/// A successfully completed job.
#[derive(Debug, Clone)]
pub struct JobSuccess {
    /// Truncation order served.
    pub num_moments: usize,
    /// Hamiltonian dimension.
    pub dim: usize,
    /// Integral of the reconstructed DoS (~1).
    pub integral: f64,
    /// Energy of the DoS maximum.
    pub peak_energy: f64,
    /// The raw moments behind the reconstruction (bitwise comparable to a
    /// one-shot run with the same spec).
    pub moments: kpm::MomentStats,
    /// Rescaling centre the moments were computed with — carried so a
    /// remote consumer can reconstruct on the original energy axis.
    pub a_plus: f64,
    /// Rescaling half-width the moments were computed with.
    pub a_minus: f64,
    /// Where the moments came from.
    pub cache: CacheStatus,
    /// Wall-clock from dequeue to completion.
    pub duration: Duration,
    /// CSV path written, if the job requested one.
    pub wrote: Option<String>,
}

/// Terminal state of one job.
#[derive(Debug, Clone)]
pub enum JobOutcome {
    /// Finished with a result.
    Completed(JobSuccess),
    /// Exhausted its attempts (or failed terminally).
    Failed {
        /// Last error, rendered.
        error: String,
        /// Attempts consumed.
        attempts: u32,
    },
    /// Still queued when the service was aborted.
    Cancelled,
}

/// One job's identity and terminal state.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Submission-order id.
    pub id: JobId,
    /// Canonical spec line.
    pub spec_line: String,
    /// What happened.
    pub outcome: JobOutcome,
}

/// Service configuration.
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Worker threads (0 = one per available core, capped at 8).
    pub workers: usize,
    /// Maximum queued jobs before submissions are rejected.
    pub queue_capacity: usize,
    /// Wall-clock budget per compute attempt.
    pub timeout: Duration,
    /// Retries after the first attempt (panics/timeouts only).
    pub max_retries: u32,
    /// First retry delay; doubles per retry.
    pub backoff_base: Duration,
    /// Moment-cache entries kept in memory.
    pub cache_capacity: usize,
    /// Spill directory for the cache (`None` = memory only).
    pub cache_dir: Option<PathBuf>,
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self {
            workers: 0,
            queue_capacity: 256,
            timeout: Duration::from_secs(300),
            max_retries: 2,
            backoff_base: Duration::from_millis(20),
            cache_capacity: 128,
            cache_dir: None,
        }
    }
}

/// Final report of a service run.
#[derive(Debug)]
pub struct BatchReport {
    /// All job records, in submission order.
    pub records: Vec<JobRecord>,
    /// Rendered metrics block.
    pub metrics_text: String,
    /// Cache entries spilled to disk at shutdown.
    pub cache_flushed: usize,
}

impl BatchReport {
    /// Number of completed jobs.
    pub fn completed(&self) -> usize {
        self.records.iter().filter(|r| matches!(r.outcome, JobOutcome::Completed(_))).count()
    }

    /// Number of failed jobs.
    pub fn failed(&self) -> usize {
        self.records.iter().filter(|r| matches!(r.outcome, JobOutcome::Failed { .. })).count()
    }

    /// Number of cancelled jobs.
    pub fn cancelled(&self) -> usize {
        self.records.iter().filter(|r| matches!(r.outcome, JobOutcome::Cancelled)).count()
    }

    /// Human-readable per-job table plus the metrics block.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let header = format!(
            "  {:>4} {:>9} {:>8} {:>10} {:>10}  spec",
            "job", "status", "cache", "integral", "ms"
        );
        let _ = writeln!(out, "{header}");
        for r in &self.records {
            match &r.outcome {
                JobOutcome::Completed(s) => {
                    let _ = writeln!(
                        out,
                        "  {:>4} {:>9} {:>8} {:>10.5} {:>10.1}  {}",
                        r.id,
                        "ok",
                        s.cache.as_str(),
                        s.integral,
                        s.duration.as_secs_f64() * 1e3,
                        r.spec_line,
                    );
                }
                JobOutcome::Failed { error, attempts } => {
                    let _ = writeln!(
                        out,
                        "  {:>4} {:>9} {:>8} {:>10} {:>10}  {} ({error}; {attempts} attempts)",
                        r.id, "FAILED", "-", "-", "-", r.spec_line,
                    );
                }
                JobOutcome::Cancelled => {
                    let _ = writeln!(
                        out,
                        "  {:>4} {:>9} {:>8} {:>10} {:>10}  {}",
                        r.id, "cancelled", "-", "-", "-", r.spec_line,
                    );
                }
            }
        }
        out.push('\n');
        out.push_str(&self.metrics_text);
        out
    }
}

/// Callback invoked by a worker thread the moment a job reaches a terminal
/// state (completed or failed), before the record lands in the final
/// report. This is the delivery path for asynchronous front-ends (the net
/// server pushes completion frames from it), so implementations must not
/// block: hand the record off to a queue or channel and return.
pub type CompletionHook = Arc<dyn Fn(&JobRecord) + Send + Sync>;

/// The running service: queue + worker pool + cache + metrics.
pub struct BatchService {
    queue: Arc<JobQueue>,
    cache: Arc<MomentCache>,
    metrics: Arc<Metrics>,
    results: Arc<Mutex<BTreeMap<JobId, JobRecord>>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    submitted: Mutex<Vec<(JobId, String)>>,
}

impl BatchService {
    /// Starts the worker pool. An existing cache spill directory is loaded
    /// (a warm start); load errors are ignored, not fatal.
    pub fn start(config: BatchConfig) -> Self {
        Self::start_with_engine(config, None)
    }

    /// Starts the worker pool with an optional [`MomentEngine`] replacing
    /// the local compute path (`None` behaves exactly like [`start`](Self::start)).
    pub fn start_with_engine(config: BatchConfig, engine: Option<Arc<dyn MomentEngine>>) -> Self {
        Self::start_full(config, engine, None)
    }

    /// Starts the worker pool with an optional engine and an optional
    /// [`CompletionHook`] that observes every terminal job record as it is
    /// produced (asynchronous delivery for network front-ends).
    pub fn start_full(
        config: BatchConfig,
        engine: Option<Arc<dyn MomentEngine>>,
        on_complete: Option<CompletionHook>,
    ) -> Self {
        worker::silence_compute_panics();
        let workers = if config.workers > 0 {
            config.workers
        } else {
            std::thread::available_parallelism().map_or(2, |n| n.get().min(8))
        };
        let queue = Arc::new(JobQueue::new(config.queue_capacity));
        let cache = Arc::new(MomentCache::new(config.cache_capacity, config.cache_dir.clone()));
        let _ = cache.load();
        let metrics = Arc::new(Metrics::default());
        let results = Arc::new(Mutex::new(BTreeMap::new()));
        let ctx = Arc::new(worker::WorkerContext {
            queue: Arc::clone(&queue),
            cache: Arc::clone(&cache),
            metrics: Arc::clone(&metrics),
            results: Arc::clone(&results),
            policy: WorkerPolicy {
                timeout: config.timeout,
                max_retries: config.max_retries,
                backoff_base: config.backoff_base,
            },
            engine,
            on_complete,
        });
        let handles = (0..workers)
            .map(|i| {
                let ctx = Arc::clone(&ctx);
                std::thread::Builder::new()
                    .name(format!("kpm-serve-worker-{i}"))
                    .spawn(move || worker::run_worker(ctx))
                    .expect("spawn worker")
            })
            .collect();
        Self { queue, cache, metrics, results, workers: handles, submitted: Mutex::new(Vec::new()) }
    }

    /// Submits a job.
    ///
    /// # Errors
    /// [`QueueFull`] under backpressure — resubmit after `retry_after`.
    pub fn submit(&self, spec: JobSpec) -> Result<JobId, QueueFull> {
        let line = spec.canonical();
        match self.queue.submit(spec) {
            Ok(id) => {
                metrics::bump(&self.metrics.submitted);
                self.submitted.lock().expect("submitted lock").push((id, line));
                Ok(id)
            }
            Err(full) => {
                metrics::bump(&self.metrics.rejected);
                Err(full)
            }
        }
    }

    /// Jobs currently waiting in the queue.
    pub fn queue_depth(&self) -> usize {
        self.queue.depth()
    }

    /// Live metrics handle.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The moment cache behind the worker pool (e.g. to register a
    /// [`cache::UpgradeObserver`] for streaming-refinement telemetry).
    pub fn cache(&self) -> &MomentCache {
        &self.cache
    }

    /// Machine-readable metrics snapshot: versioned JSON carrying the same
    /// canonical `serve.*` counter names that a `--trace` session records,
    /// plus queue-depth and latency gauges. Safe to call while the service
    /// is running (counters are atomics; values are a point-in-time sample).
    pub fn metrics_json(&self) -> String {
        let mut out = String::from("{\"version\":1,\"kind\":\"serve-metrics\",\"counters\":{");
        for (i, (name, value)) in self.metrics.counters(self.queue.depth()).iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{value}", kpm_obs::json::quote(name));
        }
        out.push_str("}}");
        out
    }

    /// Graceful shutdown: stop accepting jobs, drain the queue, join the
    /// workers, flush the cache, and report.
    pub fn finish(self) -> BatchReport {
        self.queue.close();
        self.shutdown(Vec::new())
    }

    /// Abort: cancel everything still queued (marked [`JobOutcome::Cancelled`]),
    /// wait only for in-flight jobs, flush the cache, and report.
    pub fn abort(self) -> BatchReport {
        let cancelled = self.queue.cancel_pending();
        for _ in &cancelled {
            metrics::bump(&self.metrics.cancelled);
        }
        let cancelled_records = cancelled
            .into_iter()
            .map(|j| JobRecord {
                id: j.id,
                spec_line: j.spec.canonical(),
                outcome: JobOutcome::Cancelled,
            })
            .collect();
        self.shutdown(cancelled_records)
    }

    fn shutdown(self, extra: Vec<JobRecord>) -> BatchReport {
        for handle in self.workers {
            let _ = handle.join();
        }
        let mut map = std::mem::take(&mut *self.results.lock().expect("results lock"));
        for record in extra {
            map.insert(record.id, record);
        }
        // Anything submitted but untracked (shouldn't happen) is surfaced
        // rather than silently dropped.
        for (id, line) in self.submitted.lock().expect("submitted lock").drain(..) {
            map.entry(id).or_insert(JobRecord {
                id,
                spec_line: line,
                outcome: JobOutcome::Failed { error: "lost by the service".into(), attempts: 0 },
            });
        }
        let cache_flushed = self.cache.flush().unwrap_or(0);
        BatchReport {
            records: map.into_values().collect(),
            metrics_text: self.metrics.render(self.queue.depth()),
            cache_flushed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> BatchConfig {
        BatchConfig {
            workers: 2,
            timeout: Duration::from_secs(30),
            max_retries: 1,
            backoff_base: Duration::from_millis(1),
            ..BatchConfig::default()
        }
    }

    fn job(line: &str) -> JobSpec {
        JobSpec::parse(line).unwrap()
    }

    #[test]
    fn duplicate_jobs_hit_the_cache() {
        let service = BatchService::start(quick_config());
        for _ in 0..3 {
            service.submit(job("lattice=chain:32 moments=32 random=2 sets=1")).unwrap();
        }
        let report = service.finish();
        assert_eq!(report.completed(), 3);
        let hits = report
            .records
            .iter()
            .filter(
                |r| matches!(&r.outcome, JobOutcome::Completed(s) if s.cache == CacheStatus::Hit),
            )
            .count();
        // Workers race on the first compute, but at least one duplicate must
        // be served from the cache, and all moments must be identical.
        assert!(hits >= 1, "expected cache hits\n{}", report.render());
        let moments: Vec<_> = report
            .records
            .iter()
            .filter_map(|r| match &r.outcome {
                JobOutcome::Completed(s) => Some(&s.moments.mean),
                _ => None,
            })
            .collect();
        assert!(moments.windows(2).all(|w| w[0] == w[1]), "bitwise-equal moments");
    }

    #[test]
    fn panicking_job_fails_but_pool_survives() {
        let service = BatchService::start(BatchConfig { max_retries: 0, ..quick_config() });
        service.submit(job("lattice=chain:16 moments=16 fault=panic")).unwrap();
        service.submit(job("lattice=chain:16 moments=16 random=2 sets=1")).unwrap();
        let report = service.finish();
        assert_eq!(report.completed(), 1, "{}", report.render());
        assert_eq!(report.failed(), 1);
        assert!(report.render().contains("FAILED"));
    }

    #[test]
    fn flaky_job_recovers_via_retry() {
        let service = BatchService::start(BatchConfig { max_retries: 2, ..quick_config() });
        service.submit(job("lattice=chain:16 moments=16 random=1 sets=1 fault=flaky:2")).unwrap();
        let report = service.finish();
        assert_eq!(report.completed(), 1, "{}", report.render());
        assert!(report.metrics_text.contains("retried 2"), "{}", report.metrics_text);
    }

    #[test]
    fn abort_cancels_pending_jobs() {
        // One worker + a slow first job: later jobs are still queued when we
        // abort and must come back cancelled.
        let service = BatchService::start(BatchConfig {
            workers: 1,
            timeout: Duration::from_secs(30),
            ..BatchConfig::default()
        });
        service.submit(job("lattice=chain:16 moments=16 random=1 sets=1 fault=sleep:300")).unwrap();
        for _ in 0..4 {
            service.submit(job("lattice=chain:16 moments=16 random=1 sets=1")).unwrap();
        }
        std::thread::sleep(Duration::from_millis(50));
        let report = service.abort();
        assert!(report.cancelled() >= 1, "{}", report.render());
        assert_eq!(report.records.len(), 5);
    }

    #[test]
    fn cache_counters_match_direct_lookup_replay_over_ten_jobs() {
        // The same 10-job sequence, replayed directly against a fresh
        // MomentCache with the worker's bookkeeping rules, must predict the
        // service's hit/miss/upgrade counters exactly (workers = 1 makes the
        // service process jobs in submission order, so the interleavings
        // coincide).
        use crate::cache::Lookup;
        let lines = [
            "lattice=chain:32 moments=32 random=2 sets=1", // miss (compute)
            "lattice=chain:32 moments=32 random=2 sets=1", // hit (exact)
            "lattice=chain:32 moments=32 random=2 sets=1", // hit
            "lattice=chain:32 moments=32 random=2 sets=1", // hit
            "lattice=chain:32 moments=16 random=2 sets=1", // hit (prefix)
            "lattice=chain:32 moments=64 random=2 sets=1", // miss -> upgrade
            "lattice=chain:32 moments=64 random=2 sets=1", // hit
            "lattice=chain:48 moments=32 random=2 sets=1", // miss
            "lattice=chain:48 moments=32 random=2 sets=1", // hit
            "lattice=chain:16 moments=32 random=2 sets=1", // miss
        ];

        let (mut hits, mut misses, mut upgrades) = (0u64, 0u64, 0u64);
        let cache = MomentCache::new(128, None);
        for line in &lines {
            let spec = job(line);
            let key = spec.cache_key();
            match cache.lookup(key, spec.num_moments) {
                Lookup::Hit(_) => hits += 1,
                lookup => {
                    misses += 1;
                    let stale = matches!(lookup, Lookup::Stale { .. });
                    let (stats, a_plus, a_minus) = worker::compute_raw_moments(&spec, 0).unwrap();
                    let report = cache.insert(key, stats, a_plus, a_minus);
                    if report.upgraded || stale {
                        upgrades += 1;
                    }
                }
            }
        }
        assert_eq!((hits, misses, upgrades), (6, 4, 1), "replay bookkeeping");

        let service = BatchService::start(BatchConfig { workers: 1, ..quick_config() });
        for line in &lines {
            service.submit(job(line)).unwrap();
        }
        let json = service.metrics_json();
        assert!(json.starts_with("{\"version\":1,\"kind\":\"serve-metrics\""), "{json}");
        let report = service.finish();
        assert_eq!(report.completed(), 10, "{}", report.render());
        for needle in [format!("hits {hits} | misses {misses}"), format!("upgrades {upgrades}")] {
            assert!(
                report.metrics_text.contains(&needle),
                "missing '{needle}' in:\n{}",
                report.metrics_text
            );
        }
    }

    #[test]
    fn custom_engine_replaces_compute_and_stays_cache_compatible() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        struct CountingEngine(AtomicUsize);
        impl MomentEngine for CountingEngine {
            fn compute(
                &self,
                spec: &JobSpec,
                attempt: u32,
            ) -> Result<(kpm::MomentStats, f64, f64), JobError> {
                self.0.fetch_add(1, Ordering::SeqCst);
                worker::compute_raw_moments(spec, attempt)
            }
        }
        let engine = Arc::new(CountingEngine(AtomicUsize::new(0)));
        let service = BatchService::start_with_engine(
            BatchConfig { workers: 1, ..quick_config() },
            Some(engine.clone() as Arc<dyn MomentEngine>),
        );
        let line = "lattice=chain:32 moments=24 random=2 sets=1 seed=5";
        service.submit(job(line)).unwrap();
        service.submit(job(line)).unwrap(); // duplicate: cache, not engine
        let report = service.finish();
        assert_eq!(report.completed(), 2, "{}", report.render());
        assert_eq!(engine.0.load(Ordering::SeqCst), 1, "duplicate must be a cache hit");
        // Engine-computed moments are bitwise the local pipeline's.
        let direct = worker::compute_raw_moments(&job(line), 0).unwrap();
        for r in &report.records {
            let JobOutcome::Completed(s) = &r.outcome else { panic!("completed") };
            assert_eq!(s.moments.mean, direct.0.mean);
        }
    }

    #[test]
    fn completion_hook_sees_every_terminal_record_before_finish() {
        use std::sync::Mutex;
        let seen: Arc<Mutex<Vec<(JobId, bool)>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        let service = BatchService::start_full(
            BatchConfig { workers: 1, max_retries: 0, ..quick_config() },
            None,
            Some(Arc::new(move |record: &JobRecord| {
                let ok = matches!(record.outcome, JobOutcome::Completed(_));
                sink.lock().unwrap().push((record.id, ok));
            })),
        );
        let ok_id = service.submit(job("lattice=chain:16 moments=16 random=1 sets=1")).unwrap();
        let bad_id = service.submit(job("lattice=chain:16 moments=16 fault=panic")).unwrap();
        let report = service.finish();
        assert_eq!(report.completed(), 1);
        assert_eq!(report.failed(), 1);
        // Both terminal outcomes were delivered to the hook, in worker order
        // (one worker = submission order), and the success carries the
        // rescale parameters a remote consumer needs.
        assert_eq!(*seen.lock().unwrap(), vec![(ok_id, true), (bad_id, false)]);
        let success = report
            .records
            .iter()
            .find_map(|r| match &r.outcome {
                JobOutcome::Completed(s) => Some(s),
                _ => None,
            })
            .unwrap();
        assert!(success.a_minus > 0.0, "rescale half-width travels with the record");
    }

    #[test]
    fn backpressure_rejects_and_reports() {
        let service = BatchService::start(BatchConfig {
            workers: 1,
            queue_capacity: 2,
            ..BatchConfig::default()
        });
        // A long sleeper occupies the worker; fill the queue behind it.
        service.submit(job("lattice=chain:8 moments=8 fault=sleep:400")).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        let mut rejected = 0;
        for _ in 0..4 {
            if service.submit(job("lattice=chain:8 moments=8 random=1 sets=1")).is_err() {
                rejected += 1;
            }
        }
        assert!(rejected >= 2, "queue of 2 cannot hold 4 extra jobs");
        let report = service.finish();
        assert!(report.metrics_text.contains(&format!("rejected {rejected}")));
    }
}
