//! The batch job model: a canonical, hashable description of one KPM run.
//!
//! A [`JobSpec`] carries everything needed to reproduce a density-of-states
//! computation: the Hamiltonian (lattice spec or dense random matrix), the
//! KPM parameters `N`, `R`, `S`, the damping kernel, the master seed, and
//! the execution backend. Two spec strings that parse to the same canonical
//! form are the same job — [`JobSpec::content_hash`] is computed over the
//! canonical rendering, never the raw input.
//!
//! The moment cache keys on [`JobSpec::cache_key`], which deliberately
//! *excludes* `N` and the kernel: raw Chebyshev moments do not depend on
//! either (damping is applied at reconstruction), so a cached run at
//! `N_cached >= N` serves any kernel at any order up to `N_cached`.

use kpm::device::DeviceSpec;
use kpm::{BoundsMethod, KernelType};
use kpm_lattice::spec::{parse_boundary, LatticeSpec, SpecError};
use kpm_lattice::{Boundary, OnSite};
use kpm_linalg::{DenseMatrix, MatrixFormat, SparseMatrix};
use std::fmt;

/// Where a job executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Host threads (`kpm::stochastic_moments`).
    Cpu,
    /// The simulated GPU stream engine (`kpm_stream::StreamKpmEngine`).
    Stream,
}

impl Backend {
    fn as_str(self) -> &'static str {
        match self {
            Backend::Cpu => "cpu",
            Backend::Stream => "stream",
        }
    }
}

/// Scheduling priority; higher lanes drain first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Priority {
    /// Served before everything else.
    High,
    /// The default lane.
    #[default]
    Normal,
    /// Served only when the other lanes are empty.
    Low,
}

impl Priority {
    /// Lane index (0 drains first).
    pub fn lane(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }

    fn as_str(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Low => "low",
        }
    }
}

/// Test-only failure injection, settable from the job line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Panic inside the compute step on every attempt.
    Panic,
    /// Panic while `attempt < until`, then succeed — exercises retry.
    Flaky {
        /// First attempt (0-based) that succeeds.
        until: u32,
    },
    /// Sleep this many milliseconds before computing — exercises timeouts.
    SleepMs(u64),
}

/// The Hamiltonian a job runs on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelSpec {
    /// A tight-binding lattice (`chain: | square: | cubic: | honeycomb:`).
    Lattice(LatticeSpec),
    /// A dense random symmetric matrix (`dense:D` or `dense:D@SEED`, built
    /// by [`kpm_lattice::dense_random_symmetric`]); without `@SEED` the
    /// job's `dseed` value applies.
    Dense {
        /// Matrix dimension.
        dim: usize,
        /// Element seed.
        seed: u64,
    },
}

impl ModelSpec {
    /// Matrix dimension this model produces.
    pub fn dim(&self) -> usize {
        match self {
            ModelSpec::Lattice(l) => l.num_sites(),
            ModelSpec::Dense { dim, .. } => *dim,
        }
    }
}

/// Errors from job-line parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobParseError {
    /// A token had no `=`.
    BadToken(String),
    /// Unknown key.
    UnknownKey(String),
    /// A value failed to parse.
    BadValue {
        /// Offending key.
        key: String,
        /// Raw value.
        value: String,
    },
    /// Bad lattice spec.
    Spec(SpecError),
}

impl fmt::Display for JobParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobParseError::BadToken(t) => write!(f, "expected key=value, got '{t}'"),
            JobParseError::UnknownKey(k) => write!(f, "unknown job key '{k}'"),
            JobParseError::BadValue { key, value } => write!(f, "bad value '{value}' for '{key}'"),
            JobParseError::Spec(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for JobParseError {}

impl From<SpecError> for JobParseError {
    fn from(e: SpecError) -> Self {
        JobParseError::Spec(e)
    }
}

/// One batch job: a fully specified KPM density-of-states run.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Hamiltonian description.
    pub model: ModelSpec,
    /// Boundary condition (lattice models only).
    pub boundary: Boundary,
    /// Hopping `t` (lattice) or element scale (dense).
    pub hopping: f64,
    /// Anderson disorder `(width, seed)`, if any.
    pub disorder: Option<(f64, u64)>,
    /// Truncation order `N`.
    pub num_moments: usize,
    /// Random vectors per set, `R`.
    pub num_random: usize,
    /// Realization sets, `S`.
    pub num_realizations: usize,
    /// Damping kernel for reconstruction.
    pub kernel: KernelType,
    /// Master seed of the stochastic trace.
    pub seed: u64,
    /// Execution backend.
    pub backend: Backend,
    /// Device the CPU backend submits to (`host` or a simulated device;
    /// both produce bitwise identical numbers, so only the reported clock
    /// differs). Ignored by the stream backend.
    pub device: DeviceSpec,
    /// Sparse storage format for lattice models (dense models ignore it).
    pub format: MatrixFormat,
    /// Spectral-bounds provider for the rescale stage
    /// (`gershgorin | lanczos[:k] | manual:a,b`). Participates in the
    /// content hash — tighter bounds change the rescale map and hence the
    /// moment bits — but renders only when non-default, so legacy spec
    /// lines and their hashes are untouched.
    pub bounds: BoundsMethod,
    /// Queue lane.
    pub priority: Priority,
    /// Failure injection for tests.
    pub fault: Option<Fault>,
    /// Optional CSV output path for the reconstructed DoS.
    pub out: Option<String>,
}

impl Default for JobSpec {
    fn default() -> Self {
        Self {
            model: ModelSpec::Lattice(LatticeSpec::Cubic(10, 10, 10)),
            boundary: Boundary::Periodic,
            hopping: 1.0,
            disorder: None,
            num_moments: 256,
            num_random: 14,
            num_realizations: 2,
            kernel: KernelType::Jackson,
            seed: 42,
            backend: Backend::Cpu,
            device: DeviceSpec::Host,
            format: MatrixFormat::Csr,
            bounds: BoundsMethod::Gershgorin,
            priority: Priority::Normal,
            fault: None,
            out: None,
        }
    }
}

fn kernel_to_str(k: KernelType) -> String {
    match k {
        KernelType::Jackson => "jackson".into(),
        KernelType::Lorentz { lambda } => format!("lorentz:{lambda}"),
        KernelType::Jacobi { alpha, beta } => format!("jacobi:{alpha},{beta}"),
        KernelType::Fejer => "fejer".into(),
        KernelType::Dirichlet => "dirichlet".into(),
    }
}

fn kernel_from_str(s: &str) -> Option<KernelType> {
    match s.split_once(':') {
        None => match s {
            "jackson" => Some(KernelType::Jackson),
            "lorentz" => Some(KernelType::Lorentz { lambda: 4.0 }),
            "jacobi" => Some(KernelType::Jacobi { alpha: 0.0, beta: 0.0 }),
            "fejer" => Some(KernelType::Fejer),
            "dirichlet" => Some(KernelType::Dirichlet),
            _ => None,
        },
        Some(("lorentz", lambda)) => {
            lambda.parse().ok().map(|lambda| KernelType::Lorentz { lambda })
        }
        Some(("jacobi", args)) => {
            let (a, b) = args.split_once(',')?;
            let alpha: f64 = a.parse().ok()?;
            let beta: f64 = b.parse().ok()?;
            (alpha > -1.0 && beta > -1.0).then_some(KernelType::Jacobi { alpha, beta })
        }
        _ => None,
    }
}

fn model_to_str(m: &ModelSpec) -> String {
    match m {
        ModelSpec::Dense { dim, seed } => format!("dense:{dim}@{seed}"),
        ModelSpec::Lattice(l) => match *l {
            LatticeSpec::Chain(a) => format!("chain:{a}"),
            LatticeSpec::Square(a, b) => format!("square:{a},{b}"),
            LatticeSpec::Cubic(a, b, c) => format!("cubic:{a},{b},{c}"),
            LatticeSpec::Honeycomb(a, b) => format!("honeycomb:{a},{b}"),
        },
    }
}

impl JobSpec {
    /// Parses one job line of whitespace-separated `key=value` tokens.
    ///
    /// Keys: `lattice` (incl. `dense:D`), `bc`, `hopping`, `disorder`,
    /// `dseed`, `moments`, `random`, `sets`, `kernel`, `seed`, `backend`,
    /// `device` (`host | sim | sim:N`), `format`
    /// (`csr | ell | stencil | auto`), `bounds`
    /// (`gershgorin | lanczos[:k] | manual:a,b`), `priority`, `fault`
    /// (`panic | flaky:K | sleep:MS`), `out`. Unset keys take the CLI
    /// defaults.
    ///
    /// # Errors
    /// [`JobParseError`] naming the offending token.
    pub fn parse(line: &str) -> Result<Self, JobParseError> {
        let mut job = JobSpec::default();
        let mut disorder_width: Option<f64> = None;
        let mut dseed: u64 = 7;
        let mut dense_seed_explicit = false;
        let bad = |key: &str, value: &str| JobParseError::BadValue {
            key: key.to_string(),
            value: value.to_string(),
        };
        for token in line.split_whitespace() {
            let (key, value) =
                token.split_once('=').ok_or_else(|| JobParseError::BadToken(token.into()))?;
            match key {
                "lattice" | "model" => {
                    job.model = match value.strip_prefix("dense:") {
                        Some(rest) => {
                            let (dim_str, seed) = match rest.split_once('@') {
                                None => (rest, None),
                                Some((d, s)) => (d, Some(s.parse().map_err(|_| bad(key, value))?)),
                            };
                            let dim = dim_str
                                .parse()
                                .ok()
                                .filter(|&v| v > 0)
                                .ok_or_else(|| bad(key, value))?;
                            dense_seed_explicit = seed.is_some();
                            ModelSpec::Dense { dim, seed: seed.unwrap_or(0) }
                        }
                        None => ModelSpec::Lattice(LatticeSpec::parse(value)?),
                    };
                }
                "bc" => job.boundary = parse_boundary(value)?,
                "hopping" => job.hopping = value.parse().map_err(|_| bad(key, value))?,
                // Accepts the input form (`disorder=W`, seed via `dseed=`)
                // and the canonical form (`disorder=none` / `disorder=W@S`).
                "disorder" => match value.split_once('@') {
                    None if value == "none" => disorder_width = None,
                    None => disorder_width = Some(value.parse().map_err(|_| bad(key, value))?),
                    Some((w, s)) => {
                        disorder_width = Some(w.parse().map_err(|_| bad(key, value))?);
                        dseed = s.parse().map_err(|_| bad(key, value))?;
                    }
                },
                "dseed" => dseed = value.parse().map_err(|_| bad(key, value))?,
                "moments" => {
                    job.num_moments =
                        value.parse().ok().filter(|&v| v >= 2).ok_or_else(|| bad(key, value))?;
                }
                "random" => {
                    job.num_random =
                        value.parse().ok().filter(|&v| v > 0).ok_or_else(|| bad(key, value))?;
                }
                "sets" => {
                    job.num_realizations =
                        value.parse().ok().filter(|&v| v > 0).ok_or_else(|| bad(key, value))?;
                }
                "kernel" => job.kernel = kernel_from_str(value).ok_or_else(|| bad(key, value))?,
                "seed" => job.seed = value.parse().map_err(|_| bad(key, value))?,
                "backend" => {
                    job.backend = match value {
                        "cpu" => Backend::Cpu,
                        "stream" | "gpu" => Backend::Stream,
                        _ => return Err(bad(key, value)),
                    };
                }
                "device" => {
                    job.device = value.parse().map_err(|_| bad(key, value))?;
                }
                "format" => {
                    job.format = value.parse().map_err(|_| bad(key, value))?;
                }
                "bounds" => {
                    job.bounds = value.parse().map_err(|_| bad(key, value))?;
                }
                "priority" => {
                    job.priority = match value {
                        "high" => Priority::High,
                        "normal" => Priority::Normal,
                        "low" => Priority::Low,
                        _ => return Err(bad(key, value)),
                    };
                }
                "fault" => {
                    job.fault = Some(match value.split_once(':') {
                        None if value == "panic" => Fault::Panic,
                        Some(("flaky", k)) => {
                            Fault::Flaky { until: k.parse().map_err(|_| bad(key, value))? }
                        }
                        Some(("sleep", ms)) => {
                            Fault::SleepMs(ms.parse().map_err(|_| bad(key, value))?)
                        }
                        _ => return Err(bad(key, value)),
                    });
                }
                "out" => job.out = Some(value.to_string()),
                _ => return Err(JobParseError::UnknownKey(key.into())),
            }
        }
        if let Some(width) = disorder_width {
            job.disorder = Some((width, dseed));
        }
        if let ModelSpec::Dense { seed, .. } = &mut job.model {
            if !dense_seed_explicit {
                *seed = dseed;
            }
        }
        Ok(job)
    }

    /// Canonical single-line rendering: every field, fixed order, normalized
    /// float formatting. Equal specs render identically, so hashing this
    /// string is content addressing. `fault` and `out` are execution-side
    /// annotations, not physics, and are excluded.
    pub fn canonical(&self) -> String {
        let disorder = match self.disorder {
            None => "none".to_string(),
            Some((w, s)) => format!("{w}@{s}"),
        };
        let mut line = format!(
            "lattice={} bc={} hopping={} disorder={} moments={} random={} sets={} kernel={} \
             seed={} backend={} device={} format={} priority={}",
            model_to_str(&self.model),
            match self.boundary {
                Boundary::Open => "open",
                Boundary::Periodic => "periodic",
            },
            self.hopping,
            disorder,
            self.num_moments,
            self.num_random,
            self.num_realizations,
            kernel_to_str(self.kernel),
            self.seed,
            self.backend.as_str(),
            self.device,
            self.format.as_str(),
            self.priority.as_str(),
        );
        // The bounds provider joined the spec after the KPSH/KPNT/KPFJ
        // protocols shipped: rendering it only when non-default keeps every
        // legacy canonical line (and its content hash, cache key, journal
        // frame) byte-identical, and lets old decoders treat absence as
        // Gershgorin.
        if self.bounds != BoundsMethod::Gershgorin {
            line.push_str(&format!(" bounds={}", self.bounds));
        }
        line
    }

    /// FNV-1a-64 hash of the canonical rendering — the job's identity.
    pub fn content_hash(&self) -> u64 {
        fnv1a(self.canonical().as_bytes())
    }

    /// Cache key: the content hash with `moments`, `kernel`, `format`,
    /// `priority`, and `device` masked out. Raw Chebyshev moments
    /// `mu_0..mu_{N-1}` are a prefix of any longer run and are
    /// kernel-independent, so entries are shared across truncation orders
    /// and kernels; the storage format is excluded too because every format
    /// applies bitwise-identically, so a moment vector computed via ELL
    /// serves a CSR job verbatim. The device is excluded for the same
    /// reason: `SimDevice` runs the exact host functional pipeline and
    /// differs only in the clock it reports, so a sim-computed entry is a
    /// valid host answer. The backend *stays* in the key: the stream
    /// engine's padding/rescaling path is not guaranteed bitwise identical
    /// to the host path. The `bounds` provider stays too: a different
    /// rescale map produces different moment bits, so cached prefixes are
    /// only reusable within one bounds mode.
    pub fn cache_key(&self) -> u64 {
        let neutral = JobSpec {
            num_moments: 2,
            kernel: KernelType::Jackson,
            device: DeviceSpec::Host,
            format: MatrixFormat::Csr,
            priority: Priority::Normal,
            ..self.clone()
        };
        fnv1a(neutral.canonical().as_bytes())
    }

    /// FNV-1a-64 identity of the *operator* this job assembles — the hash
    /// family the shard workers and the fleet inventory advertise, and the
    /// key the bounds memo ([`kpm::bounds::resolve`]) caches under.
    ///
    /// Masks everything that does not change the built matrix: the KPM
    /// parameters, kernel, seed, bounds provider, device, backend, and
    /// priority. Keeps the model, boundary, hopping, disorder, and storage
    /// format. With all maskable fields at their defaults the canonical
    /// line is byte-identical to the pre-`bounds` era, so advertised
    /// inventory hashes are stable across versions.
    pub fn op_key(&self) -> u64 {
        let neutral = JobSpec {
            num_moments: 2,
            num_random: 1,
            num_realizations: 1,
            kernel: KernelType::Jackson,
            seed: 0,
            backend: Backend::Cpu,
            device: DeviceSpec::Host,
            bounds: BoundsMethod::Gershgorin,
            priority: Priority::Normal,
            ..self.clone()
        };
        fnv1a(format!("shard-op/v1;{}", neutral.canonical()).as_bytes())
    }

    /// Builds the Hamiltonian. Dense models go through
    /// [`kpm_lattice::dense_random_symmetric`] seeded by the disorder seed
    /// (default 7) so equal specs yield equal matrices.
    pub fn build_matrix(&self) -> JobMatrix {
        let onsite = match self.disorder {
            None => OnSite::Uniform(0.0),
            Some((width, seed)) => OnSite::Disorder { width, seed },
        };
        match &self.model {
            ModelSpec::Lattice(l) => {
                JobMatrix::Sparse(l.build_format(self.hopping, onsite, self.boundary, self.format))
            }
            ModelSpec::Dense { dim, seed } => {
                JobMatrix::Dense(kpm_lattice::dense_random_symmetric(*dim, self.hopping, *seed))
            }
        }
    }

    /// KPM parameter set equivalent to the CLI's for the same options.
    pub fn kpm_params(&self) -> kpm::KpmParams {
        kpm::KpmParams::new(self.num_moments)
            .with_random_vectors(self.num_random, self.num_realizations)
            .with_seed(self.seed)
            .with_kernel(self.kernel)
            .with_bounds(self.bounds)
    }
}

/// A built job Hamiltonian in its natural storage.
pub enum JobMatrix {
    /// Sparse storage in the spec's selected format (lattice models).
    Sparse(SparseMatrix),
    /// Dense storage (`dense:D` models).
    Dense(DenseMatrix),
}

impl JobMatrix {
    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        match self {
            JobMatrix::Sparse(m) => m.nrows(),
            JobMatrix::Dense(m) => m.nrows(),
        }
    }
}

/// FNV-1a 64-bit hash.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrips_through_canonical() {
        let line = "lattice=chain:64 bc=open hopping=2.5 disorder=1.5 dseed=9 moments=128 \
                    random=4 sets=3 kernel=lorentz:3.5 seed=11 backend=stream priority=high";
        let job = JobSpec::parse(line).unwrap();
        let again = JobSpec::parse(&job.canonical()).unwrap();
        assert_eq!(job, again);
        assert_eq!(job.content_hash(), again.content_hash());
    }

    #[test]
    fn defaults_match_cli_defaults() {
        let job = JobSpec::parse("").unwrap();
        assert_eq!(job.model, ModelSpec::Lattice(LatticeSpec::Cubic(10, 10, 10)));
        assert_eq!(job.num_moments, 256);
        assert_eq!((job.num_random, job.num_realizations), (14, 2));
        assert_eq!(job.seed, 42);
        assert_eq!(job.backend, Backend::Cpu);
    }

    #[test]
    fn content_hash_is_token_order_independent() {
        let a = JobSpec::parse("moments=64 lattice=chain:32").unwrap();
        let b = JobSpec::parse("lattice=chain:32 moments=64").unwrap();
        assert_eq!(a.content_hash(), b.content_hash());
    }

    #[test]
    fn content_hash_distinguishes_physics() {
        let base = JobSpec::parse("lattice=chain:32").unwrap();
        for other in [
            "lattice=chain:33",
            "lattice=chain:32 seed=43",
            "lattice=chain:32 hopping=2",
            "lattice=chain:32 backend=stream",
            "lattice=chain:32 disorder=0.5",
        ] {
            let o = JobSpec::parse(other).unwrap();
            assert_ne!(base.content_hash(), o.content_hash(), "{other}");
        }
    }

    #[test]
    fn cache_key_ignores_moments_and_kernel_but_not_backend_or_seed() {
        let base = JobSpec::parse("lattice=chain:32 moments=64").unwrap();
        let higher_n = JobSpec::parse("lattice=chain:32 moments=256").unwrap();
        let other_kernel = JobSpec::parse("lattice=chain:32 moments=64 kernel=fejer").unwrap();
        let low_prio = JobSpec::parse("lattice=chain:32 moments=64 priority=low").unwrap();
        assert_eq!(base.cache_key(), higher_n.cache_key());
        assert_eq!(base.cache_key(), other_kernel.cache_key());
        assert_eq!(base.cache_key(), low_prio.cache_key());
        let other_seed = JobSpec::parse("lattice=chain:32 moments=64 seed=1").unwrap();
        let stream = JobSpec::parse("lattice=chain:32 moments=64 backend=stream").unwrap();
        assert_ne!(base.cache_key(), other_seed.cache_key());
        assert_ne!(base.cache_key(), stream.cache_key());
    }

    #[test]
    fn format_parses_and_shares_cache_but_not_content_hash() {
        let base = JobSpec::parse("lattice=cubic:4,4,4").unwrap();
        assert_eq!(base.format, MatrixFormat::Csr);
        for (token, format) in [
            ("format=ell", MatrixFormat::Ell),
            ("format=stencil", MatrixFormat::Stencil),
            ("format=auto", MatrixFormat::Auto),
        ] {
            let job = JobSpec::parse(&format!("lattice=cubic:4,4,4 {token}")).unwrap();
            assert_eq!(job.format, format);
            // Distinct canonical identity (the spec says what to run)...
            assert_ne!(job.content_hash(), base.content_hash(), "{token}");
            // ...but the same cached moments serve every format, since the
            // CPU pipeline is bitwise format-invariant.
            assert_eq!(job.cache_key(), base.cache_key(), "{token}");
            // Round-trips through the canonical line.
            let again = JobSpec::parse(&job.canonical()).unwrap();
            assert_eq!(again.format, format);
        }
        assert!(matches!(JobSpec::parse("format=coo"), Err(JobParseError::BadValue { .. })));
    }

    #[test]
    fn device_parses_and_shares_cache_but_not_content_hash() {
        let base = JobSpec::parse("lattice=chain:32 moments=64").unwrap();
        assert_eq!(base.device, DeviceSpec::Host);
        for (token, device) in [
            ("device=host", DeviceSpec::Host),
            ("device=sim", DeviceSpec::Sim { devices: 1 }),
            ("device=sim:4", DeviceSpec::Sim { devices: 4 }),
        ] {
            let job = JobSpec::parse(&format!("lattice=chain:32 moments=64 {token}")).unwrap();
            assert_eq!(job.device, device);
            // Round-trips through the canonical line.
            let again = JobSpec::parse(&job.canonical()).unwrap();
            assert_eq!(again.device, device);
            // The device says *where* to run, not *what*: same cached
            // moments serve either backend (bitwise identical pipelines)...
            assert_eq!(job.cache_key(), base.cache_key(), "{token}");
            // ...but it is part of the job's canonical identity.
            if device != DeviceSpec::Host {
                assert_ne!(job.content_hash(), base.content_hash(), "{token}");
            }
        }
        assert!(matches!(JobSpec::parse("device=gpu"), Err(JobParseError::BadValue { .. })));
        assert!(matches!(JobSpec::parse("device=sim:0"), Err(JobParseError::BadValue { .. })));
    }

    #[test]
    fn bounds_parse_and_participate_in_identity() {
        let base = JobSpec::parse("lattice=chain:32 moments=64").unwrap();
        assert_eq!(base.bounds, BoundsMethod::Gershgorin);
        // Default bounds render nothing: legacy canonical lines unchanged.
        assert!(!base.canonical().contains("bounds="));
        for (token, bounds) in [
            ("bounds=gershgorin", BoundsMethod::Gershgorin),
            ("bounds=lanczos", BoundsMethod::Lanczos { steps: 64 }),
            ("bounds=lanczos:48", BoundsMethod::Lanczos { steps: 48 }),
            ("bounds=manual:-6,6", BoundsMethod::Explicit { lower: -6.0, upper: 6.0 }),
        ] {
            let job = JobSpec::parse(&format!("lattice=chain:32 moments=64 {token}")).unwrap();
            assert_eq!(job.bounds, bounds, "{token}");
            let again = JobSpec::parse(&job.canonical()).unwrap();
            assert_eq!(again.bounds, bounds, "{token}");
            // Non-default bounds are a different job identity (different
            // rescale map, different moment bits)...
            if bounds != BoundsMethod::Gershgorin {
                assert_ne!(job.content_hash(), base.content_hash(), "{token}");
                assert_ne!(job.cache_key(), base.cache_key(), "{token}");
            } else {
                assert_eq!(job.content_hash(), base.content_hash());
            }
            // ...but never a different operator.
            assert_eq!(job.op_key(), base.op_key(), "{token}");
        }
        // Within one bounds mode the key stays moment/kernel-masked.
        let a = JobSpec::parse("lattice=chain:32 moments=64 bounds=lanczos").unwrap();
        let b = JobSpec::parse("lattice=chain:32 moments=256 kernel=fejer bounds=lanczos").unwrap();
        assert_eq!(a.cache_key(), b.cache_key());
        assert!(matches!(JobSpec::parse("bounds=tight"), Err(JobParseError::BadValue { .. })));
        assert!(matches!(JobSpec::parse("bounds=manual:9,1"), Err(JobParseError::BadValue { .. })));
    }

    #[test]
    fn op_key_masks_run_parameters_but_sees_operator_fields() {
        let base = JobSpec::parse("lattice=cubic:4,4,4 disorder=2@5").unwrap();
        for same in [
            "lattice=cubic:4,4,4 disorder=2@5 moments=512 random=3 sets=7",
            "lattice=cubic:4,4,4 disorder=2@5 kernel=lorentz:3 seed=99 priority=low",
            "lattice=cubic:4,4,4 disorder=2@5 backend=stream device=sim:2 bounds=lanczos",
        ] {
            assert_eq!(base.op_key(), JobSpec::parse(same).unwrap().op_key(), "{same}");
        }
        for differs in [
            "lattice=cubic:4,4,5 disorder=2@5",
            "lattice=cubic:4,4,4 disorder=2@6",
            "lattice=cubic:4,4,4 disorder=2@5 hopping=2",
            "lattice=cubic:4,4,4 disorder=2@5 format=ell",
        ] {
            assert_ne!(base.op_key(), JobSpec::parse(differs).unwrap().op_key(), "{differs}");
        }
    }

    #[test]
    fn jacobi_kernel_parses_and_round_trips() {
        let job = JobSpec::parse("lattice=chain:32 kernel=jacobi:0.5,1.5").unwrap();
        assert_eq!(job.kernel, KernelType::Jacobi { alpha: 0.5, beta: 1.5 });
        let again = JobSpec::parse(&job.canonical()).unwrap();
        assert_eq!(again.kernel, job.kernel);
        // Bare `jacobi` is the Legendre member of the family.
        let legendre = JobSpec::parse("kernel=jacobi").unwrap();
        assert_eq!(legendre.kernel, KernelType::Jacobi { alpha: 0.0, beta: 0.0 });
        assert!(matches!(
            JobSpec::parse("kernel=jacobi:-2,0"),
            Err(JobParseError::BadValue { .. })
        ));
    }

    #[test]
    fn format_selects_matrix_storage() {
        let job = JobSpec::parse("lattice=cubic:3,3,3 format=stencil").unwrap();
        match job.build_matrix() {
            JobMatrix::Sparse(m) => assert_eq!(m.format_name(), "stencil"),
            JobMatrix::Dense(_) => panic!("expected sparse"),
        }
    }

    #[test]
    fn fault_and_out_do_not_change_identity() {
        let plain = JobSpec::parse("lattice=chain:16").unwrap();
        let noisy = JobSpec::parse("lattice=chain:16 fault=panic out=x.csv").unwrap();
        assert_eq!(plain.content_hash(), noisy.content_hash());
        assert_eq!(noisy.fault, Some(Fault::Panic));
        assert_eq!(noisy.out.as_deref(), Some("x.csv"));
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(matches!(JobSpec::parse("oops"), Err(JobParseError::BadToken(_))));
        assert!(matches!(JobSpec::parse("color=red"), Err(JobParseError::UnknownKey(_))));
        assert!(matches!(JobSpec::parse("moments=1"), Err(JobParseError::BadValue { .. })));
        assert!(matches!(JobSpec::parse("moments=lots"), Err(JobParseError::BadValue { .. })));
        assert!(matches!(JobSpec::parse("lattice=kagome:3"), Err(JobParseError::Spec(_))));
        assert!(matches!(JobSpec::parse("fault=explode"), Err(JobParseError::BadValue { .. })));
        assert!(matches!(JobSpec::parse("lattice=dense:0"), Err(JobParseError::BadValue { .. })));
    }

    #[test]
    fn fault_variants_parse() {
        assert_eq!(JobSpec::parse("fault=flaky:2").unwrap().fault, Some(Fault::Flaky { until: 2 }));
        assert_eq!(JobSpec::parse("fault=sleep:50").unwrap().fault, Some(Fault::SleepMs(50)));
    }

    #[test]
    fn dense_model_builds_square_symmetric_matrix() {
        let job = JobSpec::parse("lattice=dense:24 dseed=3").unwrap();
        assert_eq!(job.model, ModelSpec::Dense { dim: 24, seed: 3 });
        match job.build_matrix() {
            JobMatrix::Dense(m) => {
                assert_eq!(m.nrows(), 24);
                assert_eq!(m.get(2, 5), m.get(5, 2));
            }
            JobMatrix::Sparse(_) => panic!("expected dense"),
        }
        assert_eq!(job.model.dim(), 24);
        // The canonical form carries the element seed, so identity survives
        // the dseed token being folded in.
        let round = JobSpec::parse(&job.canonical()).unwrap();
        assert_eq!(round.model, job.model);
        assert_eq!(round.content_hash(), job.content_hash());
        // Different element seeds are different jobs.
        let other = JobSpec::parse("lattice=dense:24 dseed=4").unwrap();
        assert_ne!(other.content_hash(), job.content_hash());
    }
}
