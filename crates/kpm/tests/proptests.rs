//! Property-based tests for the KPM core.

use kpm::chebyshev;
use kpm::dct;
use kpm::fft::{dft_naive, fft, Direction};
use kpm::kernels::KernelType;
use kpm::moments::{exact_moments, single_vector_moments, Recursion};
use kpm::random::{fill_random_vector, Distribution};
use kpm_linalg::op::DiagonalOp;
use proptest::prelude::*;

fn unit_interval() -> impl Strategy<Value = f64> {
    -0.999..0.999f64
}

proptest! {
    #[test]
    fn chebyshev_recursion_equals_trig(n in 0usize..200, x in -1.0..1.0f64) {
        let rec = chebyshev::t(n, x);
        let trig = chebyshev::t_trig(n, x);
        prop_assert!((rec - trig).abs() < 1e-8, "T_{}({}) = {} vs {}", n, x, rec, trig);
    }

    #[test]
    fn chebyshev_product_identity(m in 0usize..40, n in 0usize..40, x in unit_interval()) {
        // 2 T_m T_n = T_{m+n} + T_{|m-n|} — the identity moment doubling
        // rests on.
        let lhs = 2.0 * chebyshev::t(m, x) * chebyshev::t(n, x);
        let rhs = chebyshev::t(m + n, x) + chebyshev::t(m.abs_diff(n), x);
        prop_assert!((lhs - rhs).abs() < 1e-9);
    }

    #[test]
    fn chebyshev_bounded_on_unit_interval(n in 0usize..150, x in -1.0..1.0f64) {
        prop_assert!(chebyshev::t(n, x).abs() <= 1.0 + 1e-9);
    }

    #[test]
    fn kernel_coefficients_in_unit_range(n in 1usize..300) {
        for k in [KernelType::Jackson, KernelType::Lorentz { lambda: 4.0 }, KernelType::Fejer] {
            let g = k.coefficients(n);
            prop_assert_eq!(g.len(), n);
            for (i, &gi) in g.iter().enumerate() {
                prop_assert!((-1e-12..=1.0 + 1e-12).contains(&gi),
                    "{:?} g_{} = {}", k, i, gi);
            }
        }
    }

    #[test]
    fn fft_roundtrip_random(signal in proptest::collection::vec(-10.0..10.0f64, 1..65)) {
        let n = signal.len().next_power_of_two();
        let mut buf: Vec<kpm::complex::Complex64> = signal
            .iter()
            .map(|&v| kpm::complex::Complex64::real(v))
            .collect();
        buf.resize(n, kpm::complex::Complex64::ZERO);
        let orig = buf.clone();
        fft(Direction::Forward, &mut buf);
        fft(Direction::Inverse, &mut buf);
        for (a, b) in buf.iter().zip(&orig) {
            prop_assert!((*a - *b).abs() < 1e-9);
        }
    }

    #[test]
    fn fft_is_linear(seed in 0u64..100) {
        let n = 32;
        let mk = |s: u64| -> Vec<kpm::complex::Complex64> {
            (0..n).map(|i| kpm::complex::Complex64::new(
                ((i as u64 + s) as f64 * 0.7).sin(),
                ((i as u64 + 2 * s) as f64 * 0.3).cos(),
            )).collect()
        };
        let a = mk(seed);
        let b = mk(seed + 57);
        let sum: Vec<_> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        let mut fa = a.clone();
        let mut fb = b.clone();
        let mut fsum = sum;
        fft(Direction::Forward, &mut fa);
        fft(Direction::Forward, &mut fb);
        fft(Direction::Forward, &mut fsum);
        for i in 0..n {
            prop_assert!(((fa[i] + fb[i]) - fsum[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn fft_matches_naive_for_random_inputs(seed in 0u64..50) {
        let n = 16;
        let x: Vec<kpm::complex::Complex64> = (0..n)
            .map(|i| kpm::complex::Complex64::new(
                ((i as u64 * 7 + seed) as f64).sin(),
                ((i as u64 * 3 + seed) as f64).cos(),
            ))
            .collect();
        let mut fast = x.clone();
        fft(Direction::Forward, &mut fast);
        let slow = dft_naive(Direction::Forward, &x);
        for i in 0..n {
            prop_assert!((fast[i] - slow[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn dct_fft_equals_naive(
        coeffs in proptest::collection::vec(-2.0..2.0f64, 1..40),
        log_k in 5usize..9,
    ) {
        let k = 1usize << log_k;
        let fast = dct::reconstruction_sums(&coeffs, k);
        let slow = dct::dct3_naive(&coeffs, k);
        for (a, b) in fast.iter().zip(&slow) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn doubling_equals_plain_for_any_start_vector(
        seed in 0u64..200,
        n in 2usize..40,
        d in 2usize..24,
    ) {
        let diag: Vec<f64> = (0..d).map(|i| ((seed + i as u64) as f64 * 0.37).sin() * 0.95).collect();
        let op = DiagonalOp::new(diag);
        let mut r0 = vec![0.0; d];
        fill_random_vector(Distribution::Gaussian, seed, 0, 0, &mut r0);
        let plain = single_vector_moments(&op, &r0, n, Recursion::Plain);
        let doubled = single_vector_moments(&op, &r0, n, Recursion::Doubling);
        for i in 0..n {
            let scale = 1.0 + plain[i].abs();
            prop_assert!((plain[i] - doubled[i]).abs() < 1e-8 * scale,
                "i = {}: {} vs {}", i, plain[i], doubled[i]);
        }
    }

    #[test]
    fn exact_moments_bounded_by_one(
        eigs in proptest::collection::vec(-1.0..1.0f64, 1..50),
        n in 1usize..64,
    ) {
        // |mu_n| = |(1/D) sum T_n(e)| <= 1.
        let mu = exact_moments(&eigs, n);
        prop_assert!((mu[0] - 1.0).abs() < 1e-12);
        for &m in &mu {
            prop_assert!(m.abs() <= 1.0 + 1e-9);
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // index spans several arrays in assertions
    fn stochastic_moments_unbiased_within_error(
        seed in 0u64..20,
    ) {
        // Gaussian estimator vs exact moments; 5-sigma + floor tolerance.
        use kpm::moments::{stochastic_moments, KpmParams};
        let d = 96;
        let eigs: Vec<f64> = (0..d)
            .map(|i| ((seed + i as u64) as f64 * 0.53).sin() * 0.9)
            .collect();
        let op = DiagonalOp::new(eigs.clone());
        let exact = exact_moments(&eigs, 10);
        let p = KpmParams::new(10)
            .with_random_vectors(16, 8)
            .with_distribution(Distribution::Gaussian)
            .with_seed(seed);
        let stats = stochastic_moments(&op, &p);
        for i in 0..10 {
            let tol = 6.0 * stats.std_err[i] + 1e-2;
            prop_assert!((stats.mean[i] - exact[i]).abs() < tol,
                "mu_{}: {} vs {} (se {})", i, stats.mean[i], exact[i], stats.std_err[i]);
        }
    }

    #[test]
    fn random_vectors_have_unit_norm_per_component(
        seed in 0u64..500, s in 0usize..8, r in 0usize..8,
    ) {
        let mut v = vec![0.0; 128];
        fill_random_vector(Distribution::Rademacher, seed, s, r, &mut v);
        // Rademacher: <r|r> = D exactly — the property making mu_0 exact.
        let norm_sq: f64 = v.iter().map(|x| x * x).sum();
        prop_assert_eq!(norm_sq, 128.0);
    }
}
