//! Containment validation for the spectrum-adaptive bounds provider: the
//! contained Lanczos pass must bracket the *full* dense-eigensolve
//! spectrum on every tested operator — random symmetric matrices and the
//! paper's lattices, clean and disordered — while beating the Gershgorin
//! discs wherever disorder makes them loose.

use kpm::prelude::*;
use kpm_lattice::spec::LatticeSpec;
use kpm_lattice::{Boundary, OnSite};
use kpm_linalg::dense::DenseMatrix;
use kpm_linalg::eigen::jacobi_eigenvalues;
use kpm_linalg::{LinearOp, SparseMatrix};
use proptest::prelude::*;

fn to_dense(h: &SparseMatrix) -> DenseMatrix {
    let d = h.dim();
    let mut cols = vec![vec![0.0; d]; d];
    for (j, col) in cols.iter_mut().enumerate() {
        let mut e = vec![0.0; d];
        e[j] = 1.0;
        h.apply(&e, col);
    }
    DenseMatrix::from_fn(d, d, |i, j| cols[j][i])
}

fn assert_contained(label: &str, bounds: &SpectralBounds, eigs: &[f64]) {
    let (lo, hi) = (eigs[0], eigs[eigs.len() - 1]);
    assert!(
        bounds.lower <= lo + 1e-9 && bounds.upper >= hi - 1e-9,
        "{label}: bounds [{}, {}] must contain spectrum [{lo}, {hi}]",
        bounds.lower,
        bounds.upper
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random dense symmetric matrices: for any Krylov depth, the safety
    /// margin keeps the Ritz window a true enclosure of the spectrum.
    #[test]
    fn lanczos_contains_random_symmetric_spectra(
        dim in 2usize..20,
        steps in 2usize..32,
        entries in proptest::collection::vec(-3.0..3.0f64, 400),
    ) {
        let m = DenseMatrix::from_fn(dim, dim, |i, j| {
            (entries[i * dim + j] + entries[j * dim + i]) / 2.0
        });
        let bounds = lanczos_contained(&m, steps).unwrap();
        let mut eigs = jacobi_eigenvalues(&m).unwrap();
        eigs.sort_by(f64::total_cmp);
        let (lo, hi) = (eigs[0], eigs[eigs.len() - 1]);
        prop_assert!(
            bounds.lower <= lo + 1e-9 && bounds.upper >= hi - 1e-9,
            "bounds [{}, {}] vs spectrum [{}, {}] (dim {}, steps {})",
            bounds.lower, bounds.upper, lo, hi, dim, steps
        );
    }
}

/// Paper-style lattices, clean and Anderson-disordered: Lanczos bounds
/// contain the dense spectrum, and on disordered operators they are
/// strictly tighter than the Gershgorin discs (the whole point — the
/// discs overshoot by O(W/2)).
#[test]
fn lanczos_contains_lattice_spectra_and_tightens_under_disorder() {
    let cases: &[(&str, f64)] = &[
        ("chain:48", 0.0),
        ("chain:48", 8.0),
        ("square:6,6", 0.0),
        ("square:6,6", 6.0),
        ("cubic:4,4,4", 12.0),
        ("honeycomb:4,4", 5.0),
    ];
    for &(spec, w) in cases {
        let onsite =
            if w == 0.0 { OnSite::Uniform(0.0) } else { OnSite::Disorder { width: w, seed: 3 } };
        let h = LatticeSpec::parse(spec).unwrap().build_format(
            1.0,
            onsite,
            Boundary::Periodic,
            kpm_linalg::MatrixFormat::Csr,
        );
        let label = format!("{spec} W={w}");
        let gersh = h.spectral_bounds(BoundsMethod::Gershgorin).unwrap();
        let lanczos = lanczos_contained(&h, DEFAULT_LANCZOS_STEPS).unwrap();
        let mut eigs = jacobi_eigenvalues(&to_dense(&h)).unwrap();
        eigs.sort_by(f64::total_cmp);
        assert_contained(&label, &lanczos, &eigs);
        assert_contained(&label, &gersh, &eigs);
        // Lanczos never exceeds Gershgorin beyond its own safety cushion
        // (0.1% of the Ritz spread — visible only on clean operators whose
        // spectrum exactly fills the discs)...
        let cushion = 2e-3 * gersh.width();
        assert!(
            lanczos.lower >= gersh.lower - cushion && lanczos.upper <= gersh.upper + cushion,
            "{label}: lanczos [{}, {}] vs gershgorin [{}, {}]",
            lanczos.lower,
            lanczos.upper,
            gersh.lower,
            gersh.upper
        );
        // ...and beats it decisively wherever disorder inflates the discs.
        if w > 0.0 {
            assert!(
                lanczos.width() < 0.95 * gersh.width(),
                "{label}: expected a real tightening, got {} vs {}",
                lanczos.width(),
                gersh.width()
            );
        }
    }
}

/// The downstream payoff, end to end: at a fixed target resolution the
/// tighter half-width selects fewer moments, and the DoS it produces is
/// still a valid normalized density.
#[test]
fn fewer_moments_at_fixed_resolution_still_reconstructs() {
    let h = LatticeSpec::parse("chain:64").unwrap().build_format(
        1.0,
        OnSite::Disorder { width: 10.0, seed: 5 },
        Boundary::Periodic,
        kpm_linalg::MatrixFormat::Csr,
    );
    let eps = 0.25;
    let n_of = |method: BoundsMethod| {
        let b = h.spectral_bounds(method).unwrap();
        moments_for_resolution(KernelType::Jackson, b.padded(0.01).a_minus(), eps).unwrap()
    };
    let n_g = n_of(BoundsMethod::Gershgorin);
    let n_l = n_of(BoundsMethod::Lanczos { steps: 64 });
    assert!(n_l < n_g, "lanczos N = {n_l} must beat gershgorin N = {n_g}");
    let params = KpmParams::new(n_l)
        .with_random_vectors(4, 1)
        .with_bounds(BoundsMethod::Lanczos { steps: 64 });
    let dos = DosEstimator::new(params).compute(&h).unwrap();
    assert!((dos.integrate() - 1.0).abs() < 0.02, "integral = {}", dos.integrate());
}
