//! Hardened env-override parsing, valid-value half: a well-formed
//! `KPM_TILE_ROWS` wins over both the calibrated profile value and the
//! built-in prior — the top of the documented precedence chain
//! **env > profile > prior**.
//!
//! Own test binary, single test: the override is read once per process.

#[test]
fn valid_env_override_beats_profile_and_prior() {
    std::env::set_var("KPM_TILE_ROWS", "256");

    assert_eq!(kpm::exec::env_tile_rows(), Some(256));
    assert_eq!(kpm::exec::tile_rows(), 256);
    // The operator's explicit choice beats the tuner's measurement...
    assert_eq!(kpm::exec::resolve_tile_rows(Some(512)), 256);
    // ...and the prior.
    assert_eq!(kpm::exec::resolve_tile_rows(None), 256);
}
