//! Integration tests for the row-tiled execution engine: tiled-fused vs
//! untiled-serial agreement across random lattices/formats/tile sizes,
//! bitwise thread-count determinism through `stochastic_moments`, and the
//! shard range-slicing contract at tiled dimensions.
//!
//! `ExecPolicy` / the thread budget are process-global, so every test that
//! mutates them serializes on [`POLICY_LOCK`] and restores the defaults on
//! drop; the engine-level property test uses only explicit arguments and
//! needs no lock.

use kpm::prelude::*;
use kpm::random::fill_random_vector;
use kpm_lattice::spec::LatticeSpec;
use kpm_lattice::{Boundary, OnSite};
use kpm_linalg::op::RescaledOp;
use kpm_linalg::tiled::{fused_block_moments_doubling, fused_block_moments_plain};
use kpm_linalg::{MatrixFormat, SparseMatrix};
use proptest::prelude::*;
use std::sync::Mutex;

static POLICY_LOCK: Mutex<()> = Mutex::new(());

/// Holds the policy lock and restores `Auto` / auto-threads on drop, so a
/// panicking test cannot leak a tiled policy into its neighbours.
struct PolicyGuard(#[allow(dead_code)] std::sync::MutexGuard<'static, ()>);

impl Drop for PolicyGuard {
    fn drop(&mut self) {
        set_exec_policy(ExecPolicy::Auto);
        set_thread_budget(0);
        set_moments_precision(MomentPrecision::F64);
        set_tuning_enabled(true);
        kpm::tune::store().clear_memory();
    }
}

fn policy_guard() -> PolicyGuard {
    PolicyGuard(POLICY_LOCK.lock().unwrap_or_else(|e| e.into_inner()))
}

fn lattice(spec: &str, fmt: MatrixFormat) -> SparseMatrix {
    LatticeSpec::parse(spec).unwrap().build_format(
        1.0,
        OnSite::Uniform(0.0),
        Boundary::Periodic,
        fmt,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The tiled fused engine agrees with the untiled blocked recursion to
    /// 1e-12 relative for random lattices, storage formats, tile sizes, and
    /// worker counts — for both recursions. (The two are *not* bitwise
    /// equal: the per-tile dot accumulation associates differently from
    /// `vecops::dot`.)
    #[test]
    fn tiled_fused_agrees_with_untiled_serial(
        lx in 2usize..5,
        ly in 2usize..5,
        lz in 2usize..4,
        fmt_idx in 0usize..3,
        tile_rows in 1usize..70,
        threads in 1usize..5,
        doubling in any::<bool>(),
        seed in 0u64..512,
    ) {
        let fmt = [MatrixFormat::Csr, MatrixFormat::Ell, MatrixFormat::Stencil][fmt_idx];
        let h = lattice(&format!("cubic:{lx},{ly},{lz}"), fmt);
        let d = h.dim();
        let op = RescaledOp::new(h, 0.0, 8.0);
        let (k, n) = (3usize, 14usize);
        let mut r0 = vec![0.0; d * k];
        fill_random_vector(Distribution::Rademacher, seed, 0, 0, &mut r0);

        let recursion = if doubling { Recursion::Doubling } else { Recursion::Plain };
        let reference = block_vector_moments(&op, &r0, k, n, recursion);
        let (tiled, _stats) = if doubling {
            fused_block_moments_doubling(&op, &r0, k, n, threads, tile_rows)
        } else {
            fused_block_moments_plain(&op, &r0, k, n, threads, tile_rows)
        };

        for (j, (t, r)) in tiled.iter().zip(&reference).enumerate() {
            prop_assert_eq!(t.len(), n);
            for m in 0..n {
                let scale = r[m].abs().max(d as f64);
                prop_assert!(
                    (t[m] - r[m]).abs() <= 1e-12 * scale,
                    "col {} moment {}: tiled {} vs reference {}",
                    j, m, t[m], r[m]
                );
            }
        }
    }
}

/// On the paper's Fig. 5 lattice (`cubic:10,10,10`, D = 1000, N = 256) the
/// tiled plans reproduce the untiled estimator to 1e-12 relative, and the
/// tiled moments are bitwise identical for any thread budget — the pinned
/// acceptance criterion for the engine.
#[test]
fn fig5_config_tiled_matches_untiled_and_is_thread_stable() {
    let _g = policy_guard();
    let h = lattice("cubic:10,10,10", MatrixFormat::Ell);
    let op = RescaledOp::new(h, 0.0, 8.0);
    let params = KpmParams::new(256).with_random_vectors(2, 1).with_seed(42);

    // `Realizations` forces the historical untiled family (D = 1000 is
    // below the realization-parallel cutoff, so it runs fully serial).
    set_exec_policy(ExecPolicy::Realizations);
    let reference = stochastic_moments(&op, &params);

    set_exec_policy(ExecPolicy::Rows);
    let tiled: Vec<MomentStats> = [1usize, 2, 4]
        .iter()
        .map(|&t| {
            set_thread_budget(t);
            stochastic_moments(&op, &params)
        })
        .collect();

    for r in &tiled[1..] {
        assert_eq!(r.mean, tiled[0].mean, "tiled moments must be bitwise thread-stable");
        assert_eq!(r.std_err, tiled[0].std_err);
    }
    assert_eq!(tiled[0].samples, reference.samples);
    for (m, (&t, &r)) in tiled[0].mean.iter().zip(&reference.mean).enumerate() {
        let scale = r.abs().max(1.0);
        assert!((t - r).abs() <= 1e-12 * scale, "moment {m}: tiled {t} vs untiled {r}");
    }
}

/// The Lanczos bounds probe is sequential by construction, so a full DoS
/// run under `--bounds lanczos` — probe, rescale, moments, reconstruct —
/// is bitwise identical across exec policies and thread budgets.
#[test]
fn lanczos_bounds_dos_is_bitwise_across_plans_and_threads() {
    let _g = policy_guard();
    // Disordered operator: the one place Lanczos actually moves the window.
    let h = LatticeSpec::parse("chain:96").unwrap().build_format(
        1.0,
        OnSite::Disorder { width: 6.0, seed: 3 },
        Boundary::Periodic,
        MatrixFormat::Csr,
    );
    let params = KpmParams::new(64)
        .with_random_vectors(3, 2)
        .with_seed(11)
        .with_bounds(BoundsMethod::Lanczos { steps: 32 });
    let dos_under = |policy: ExecPolicy, threads: usize| {
        set_exec_policy(policy);
        set_thread_budget(threads);
        DosEstimator::new(params.clone()).compute(&h).unwrap()
    };
    let reference = dos_under(ExecPolicy::Realizations, 1);
    for policy in [ExecPolicy::Realizations, ExecPolicy::Rows, ExecPolicy::Hybrid] {
        for threads in [1usize, 2, 4] {
            let dos = dos_under(policy, threads);
            let same_bits = |a: &[f64], b: &[f64]| {
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
            };
            assert!(
                same_bits(&dos.rho, &reference.rho)
                    && same_bits(&dos.energies, &reference.energies),
                "{policy:?} x {threads} threads must reproduce the reference bitwise"
            );
        }
    }
}

/// `Rows` and `Hybrid` are scheduling choices over the same tiled value
/// family: for a fixed seed they produce bitwise-identical statistics, for
/// any thread budget.
#[test]
fn rows_and_hybrid_policies_are_bitwise_identical() {
    let _g = policy_guard();
    let h = lattice("chain:600", MatrixFormat::Csr);
    let op = RescaledOp::new(h, 0.0, 3.0);
    let params = KpmParams::new(32).with_random_vectors(3, 2).with_seed(11);

    let runs: Vec<MomentStats> = [
        (ExecPolicy::Rows, 1usize),
        (ExecPolicy::Rows, 2),
        (ExecPolicy::Rows, 4),
        (ExecPolicy::Hybrid, 2),
        (ExecPolicy::Hybrid, 4),
    ]
    .iter()
    .map(|&(p, t)| {
        set_exec_policy(p);
        set_thread_budget(t);
        stochastic_moments(&op, &params)
    })
    .collect();

    for r in &runs[1..] {
        assert_eq!(r.mean, runs[0].mean);
        assert_eq!(r.std_err, runs[0].std_err);
        assert_eq!(r.samples, runs[0].samples);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Calibration never changes the value family: for every profile the
    /// tuner can emit on a tiled-dimension operator (`Rows` or `Hybrid`,
    /// any canonical-grid tile height, any outer split) and every thread
    /// budget, the moments with the profile installed are **bitwise
    /// identical** to the cold-start (static prior) run.
    #[test]
    fn calibrated_profiles_preserve_bitwise_moments(
        hybrid in any::<bool>(),
        tile_mult in 1usize..5,
        outer in 2usize..5,
        threads in 1usize..5,
        seed in 0u64..128,
    ) {
        let _g = policy_guard();
        let h = lattice("chain:600", MatrixFormat::Csr);
        let op = RescaledOp::new(h, 0.0, 3.0);
        let params = KpmParams::new(16).with_random_vectors(3, 2).with_seed(seed);
        set_thread_budget(threads);

        // Cold start: empty store, Auto falls back to the static prior.
        kpm::tune::store().clear_memory();
        let cold = stochastic_moments(&op, &params);

        // Install a measured profile for the exact shape `plan_for` keys on.
        let chunks = realization_chunk_count(&params, 0..params.total_realizations());
        let shape = ProbeShape {
            dim: op.dim(),
            entries: op.model_entries(),
            chunks,
            threads: kpm::exec::effective_threads(),
        };
        let profile = ExecProfile {
            shape,
            policy: if hybrid { ExecPolicy::Hybrid } else { ExecPolicy::Rows },
            outer: if hybrid { outer } else { 0 },
            tile_rows: tile_mult * kpm_linalg::DEFAULT_TILE_ROWS,
            variant_hint: kpm_linalg::vecops::KernelVariant::Unrolled4,
            probe_nanos: 1,
            origin: kpm::tune::ProfileOrigin::Measured,
        };
        prop_assert!(kpm::tune::store().insert(profile));
        let calibrated = stochastic_moments(&op, &params);
        kpm::tune::store().clear_memory();

        prop_assert_eq!(&cold.mean, &calibrated.mean,
            "calibrated run must be bitwise identical to cold start");
        prop_assert_eq!(&cold.std_err, &calibrated.std_err);
    }
}

/// Below `ROW_MIN_DIM` the tuner only ever records the untiled prior; a
/// present profile is bitwise identical to the cold-start run there too.
#[test]
fn small_dim_prior_profile_is_bitwise_stable() {
    let _g = policy_guard();
    let h = lattice("chain:100", MatrixFormat::Csr);
    let op = RescaledOp::new(h, 0.0, 3.0);
    let params = KpmParams::new(16).with_random_vectors(2, 2).with_seed(5);

    kpm::tune::store().clear_memory();
    let cold = stochastic_moments(&op, &params);

    // `ensure_profile` on a small dim records the prior without probing.
    let chunks = realization_chunk_count(&params, 0..params.total_realizations());
    let profile = kpm::tune::ensure_profile(&op, chunks);
    assert_eq!(profile.policy, ExecPolicy::Realizations);
    assert_eq!(profile.origin, kpm::tune::ProfileOrigin::Prior);
    let with_profile = stochastic_moments(&op, &params);

    assert_eq!(cold.mean, with_profile.mean);
    assert_eq!(cold.std_err, with_profile.std_err);
}

/// The mixed-precision moments path (f32 recursion state, f64 dot
/// accumulation) is off by default and stays within its documented error
/// budget on the paper's flagship lattice: every normalized moment within
/// `1e-4` absolute of the f64 reference (`mu_0 = 1` sets the scale).
#[test]
fn mixed_precision_is_opt_in_and_within_error_budget() {
    let _g = policy_guard();
    assert_eq!(
        kpm::exec::moments_precision(),
        MomentPrecision::F64,
        "mixed precision must be off by default"
    );
    let h = lattice("cubic:10,10,10", MatrixFormat::Ell);
    let op = RescaledOp::new(h, 0.0, 8.0);
    let params = KpmParams::new(64).with_random_vectors(2, 1).with_seed(42);
    let reference = stochastic_moments(&op, &params);

    set_moments_precision(MomentPrecision::MixedF32);
    let mixed = stochastic_moments(&op, &params);
    set_moments_precision(MomentPrecision::F64);

    assert_ne!(mixed.mean, reference.mean, "the mixed path must actually run");
    let budget = 1e-4; // documented bound, DESIGN §12
    let mut worst = 0.0f64;
    for (m, (&a, &b)) in mixed.mean.iter().zip(&reference.mean).enumerate() {
        let err = (a - b).abs();
        worst = worst.max(err);
        assert!(err <= budget, "moment {m}: |{a} - {b}| = {err} exceeds budget {budget}");
    }
    // The bound is not vacuous: f32 rounding is visible but far inside it.
    assert!(worst > 0.0);
}

/// The shard contract survives the tiled engine: slicing the realization
/// ensemble into ranges (as the distributed workers do) reproduces the
/// full-range per-realization moments bitwise, even though a cut through a
/// realization set narrows the block the tiled kernels sweep.
#[test]
fn sharded_ranges_merge_bitwise_under_tiled_plans() {
    let _g = policy_guard();
    set_exec_policy(ExecPolicy::Rows);
    set_thread_budget(3);
    let h = lattice("chain:520", MatrixFormat::Ell);
    let op = RescaledOp::new(h, 0.0, 3.0);
    let params = KpmParams::new(24).with_random_vectors(3, 2).with_seed(7);

    let total = params.total_realizations();
    let full = per_realization_moments(&op, &params, 0..total);
    for shards in [2usize, 3, 5] {
        let mut merged = Vec::new();
        for range in shard_plan(total, shards) {
            merged.extend(per_realization_moments(&op, &params, range));
        }
        assert_eq!(merged, full, "{shards} shards must reproduce the full run bitwise");
    }
}
