//! End-to-end format invariance on the paper's flagship workload: the full
//! KPM moment pipeline (Gershgorin bounds → rescale → blocked stochastic
//! recursion) must produce *bitwise-identical* moment statistics whether the
//! 10x10x10 cubic Hamiltonian is stored as CSR, padded ELL, a matrix-free
//! stencil, or dense. This is the acceptance gate for treating the storage
//! format as a pure performance knob.

use kpm::prelude::*;
use kpm_lattice::{Boundary, HypercubicLattice, OnSite, TightBinding};
use kpm_linalg::MatrixFormat;

fn paper_model() -> TightBinding {
    TightBinding::new(
        HypercubicLattice::cubic(10, 10, 10, Boundary::Periodic),
        1.0,
        OnSite::Uniform(0.0),
    )
    .store_zero_diagonal(true)
}

fn params(recursion: Recursion) -> KpmParams {
    KpmParams::new(32).with_random_vectors(4, 2).with_seed(20110516).with_recursion(recursion)
}

fn moments_for<A: Boundable + TiledOp + Sync>(op: &A, p: &KpmParams) -> MomentStats {
    let bounds = op.spectral_bounds(p.bounds).expect("gershgorin bounds");
    let rescaled = rescale(op, bounds, p.padding).expect("rescale");
    stochastic_moments(&rescaled, p)
}

#[test]
fn paper_lattice_moments_bitwise_identical_across_formats() {
    let tb = paper_model();
    let csr_h = tb.build_csr();
    for recursion in [Recursion::Plain, Recursion::Doubling] {
        let p = params(recursion);
        let reference = moments_for(&csr_h, &p);
        for format in [MatrixFormat::Ell, MatrixFormat::Stencil, MatrixFormat::Auto] {
            let m = tb.build_format(format);
            let stats = moments_for(&m, &p);
            assert_eq!(stats.mean, reference.mean, "{format} mean ({recursion:?})");
            assert_eq!(stats.std_err, reference.std_err, "{format} std_err ({recursion:?})");
        }
    }
}

#[test]
fn paper_lattice_dense_moments_match_sparse_closely() {
    // Dense accumulates rows in a different FP order, so equality is to
    // tight tolerance rather than bitwise.
    let tb = paper_model();
    let p = params(Recursion::Plain);
    let sparse = moments_for(&tb.build_csr(), &p);
    let dense = moments_for(&tb.build_csr().to_dense(), &p);
    for (a, b) in dense.mean.iter().zip(&sparse.mean) {
        assert!((a - b).abs() < 1e-12, "dense vs sparse mean: {a} vs {b}");
    }
}

#[test]
fn full_dos_estimate_is_format_invariant() {
    let tb = paper_model();
    let p = params(Recursion::Plain);
    let reference = DosEstimator::new(p.clone()).compute(&tb.build_csr()).expect("csr dos");
    for format in [MatrixFormat::Ell, MatrixFormat::Stencil] {
        let dos =
            DosEstimator::new(p.clone()).compute(&tb.build_format(format)).expect("format dos");
        assert_eq!(dos.rho, reference.rho, "{format}");
        assert_eq!(dos.energies, reference.energies, "{format}");
    }
}
