//! Hardened env-override parsing, invalid-value half: garbage and zero in
//! `KPM_TILE_ROWS` / `KPM_PAR_MIN_DIM` are rejected (with a stderr warning)
//! and fall back to the built-in priors.
//!
//! The overrides are read **once per process** (`OnceLock`), so this lives
//! in its own test binary with a single test: the variables are set before
//! anything can have read them. The valid-value half is
//! `env_overrides_valid.rs`.

#[test]
fn invalid_env_overrides_fall_back_to_priors() {
    std::env::set_var("KPM_TILE_ROWS", "garbage");
    std::env::set_var("KPM_PAR_MIN_DIM", "0");

    // Invalid values are treated as unset...
    assert_eq!(kpm::exec::env_tile_rows(), None);
    assert_eq!(kpm::exec::tile_rows(), kpm_linalg::DEFAULT_TILE_ROWS);
    // ...so the precedence chain env > profile > prior starts at "profile".
    assert_eq!(kpm::exec::resolve_tile_rows(Some(256)), 256);
    assert_eq!(kpm::exec::resolve_tile_rows(None), kpm_linalg::DEFAULT_TILE_ROWS);

    // `KPM_PAR_MIN_DIM=0` (a nonsense threshold) keeps the default cutoff:
    // the default par_min_dim gates parallelism somewhere above trivial
    // sizes, which `0` would have destroyed.
    assert!(!kpm_linalg::vecops::use_parallel(1));
    assert_eq!(kpm_linalg::vecops::parse_positive_override("KPM_PAR_MIN_DIM", "0"), None);
}
