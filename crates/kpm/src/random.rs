//! Random vectors for the stochastic trace estimator.
//!
//! The paper's Eq. (14) requires i.i.d. components with zero mean and unit
//! variance, `<<xi_{r,i}>> = 0`, `<<xi xi'>> = delta delta`. Any such
//! distribution yields an unbiased trace estimate; the variance of the
//! estimator differs. Rademacher (±1) minimizes the single-vector variance
//! for the diagonal part and is the default; Gaussian matches the common
//! alternative in the literature.
//!
//! Seeding is counter-based: vector `(s, r)` draws from a SplitMix64 stream
//! keyed by `(master_seed, s, r)`, so any realization can be regenerated
//! independently of the others — the property the GPU implementation relies
//! on to generate vectors inside the kernel, and the reason CPU and GPU
//! paths can be compared vector-for-vector.

/// Component distribution for random vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Distribution {
    /// Components ±1 with equal probability.
    Rademacher,
    /// Standard normal components (Box–Muller).
    Gaussian,
    /// Uniform on `[-sqrt(3), sqrt(3)]` (unit variance).
    Uniform,
}

/// A deterministic SplitMix64 stream.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a stream from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53-bit resolution.
    #[inline]
    pub fn next_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Mixes `(master_seed, s, r)` into an independent stream key.
///
/// Distinct `(s, r)` pairs map to distinct, well-separated seeds (SplitMix64
/// scrambling of a unique 64-bit encoding).
pub fn realization_seed(master_seed: u64, s: usize, r: usize) -> u64 {
    let mut mix = SplitMix64::new(
        master_seed ^ (s as u64).wrapping_mul(0xa076_1d64_78bd_642f) ^ (r as u64).rotate_left(32),
    );
    // One extra scramble decorrelates adjacent (s, r).
    mix.next_u64()
}

/// The raw per-realization RNG stream for `(master_seed, s, r)`.
///
/// This is the single seed-derivation point of the whole codebase: every
/// random vector — scalar path, blocked path, simulated-GPU kernels, and
/// distributed shard workers — draws its components from exactly this
/// stream. The key property is **shard-layout independence**: the stream
/// depends only on the triple `(master_seed, s, r)`, never on which
/// process, thread, block, or shard evaluates realization `(s, r)`. That is
/// what makes distributed moment computation bitwise reproducible — a
/// coordinator can split `S x R` realizations across workers arbitrarily
/// and each worker regenerates identical vectors.
///
/// The mapping is pinned by tests (`realization_stream_is_pinned`); changing
/// it is a wire-format-level break that silently invalidates every cached
/// moment set and cross-version shard run, so treat the constants as frozen.
pub fn realization_stream(master_seed: u64, s: usize, r: usize) -> SplitMix64 {
    SplitMix64::new(realization_seed(master_seed, s, r))
}

/// A per-realization random-component stream.
///
/// Yields exactly the sequence [`fill_random_vector`] writes, one component
/// at a time — the simulated-GPU kernels drive this directly so their
/// vectors are bit-identical to the CPU reference's.
#[derive(Debug, Clone)]
pub struct RandomStream {
    dist: Distribution,
    rng: SplitMix64,
    /// Second Box–Muller value waiting to be handed out.
    pending: Option<f64>,
}

impl RandomStream {
    /// Stream for realization `(s, r)` under `master_seed`.
    pub fn new(dist: Distribution, master_seed: u64, s: usize, r: usize) -> Self {
        Self { dist, rng: realization_stream(master_seed, s, r), pending: None }
    }

    /// Next random component.
    ///
    /// (Deliberately named `next` to read like an RNG stream; the type does
    /// not implement `Iterator` because it is infinite and `f64`-only.)
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> f64 {
        match self.dist {
            Distribution::Rademacher => {
                if self.rng.next_u64() & 1 == 0 {
                    1.0
                } else {
                    -1.0
                }
            }
            Distribution::Gaussian => {
                if let Some(v) = self.pending.take() {
                    return v;
                }
                // Box–Muller; rejection for u1 = 0.
                let mut u1 = self.rng.next_unit();
                while u1 == 0.0 {
                    u1 = self.rng.next_unit();
                }
                let u2 = self.rng.next_unit();
                let radius = (-2.0 * u1.ln()).sqrt();
                let theta = 2.0 * std::f64::consts::PI * u2;
                self.pending = Some(radius * theta.sin());
                radius * theta.cos()
            }
            Distribution::Uniform => (self.rng.next_unit() * 2.0 - 1.0) * 3.0f64.sqrt(),
        }
    }
}

/// Fills `out` with one random vector for realization `(s, r)`.
pub fn fill_random_vector(
    dist: Distribution,
    master_seed: u64,
    s: usize,
    r: usize,
    out: &mut [f64],
) {
    let mut stream = RandomStream::new(dist, master_seed, s, r);
    for v in out.iter_mut() {
        *v = stream.next();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DISTS: [Distribution; 3] =
        [Distribution::Rademacher, Distribution::Gaussian, Distribution::Uniform];

    #[test]
    fn deterministic_per_realization() {
        for dist in DISTS {
            let mut a = vec![0.0; 64];
            let mut b = vec![0.0; 64];
            fill_random_vector(dist, 7, 2, 3, &mut a);
            fill_random_vector(dist, 7, 2, 3, &mut b);
            assert_eq!(a, b, "{dist:?}");
            fill_random_vector(dist, 7, 2, 4, &mut b);
            assert_ne!(a, b, "{dist:?} must differ across r");
            fill_random_vector(dist, 8, 2, 3, &mut b);
            assert_ne!(a, b, "{dist:?} must differ across master seed");
        }
    }

    #[test]
    fn rademacher_components_are_plus_minus_one() {
        let mut v = vec![0.0; 256];
        fill_random_vector(Distribution::Rademacher, 1, 0, 0, &mut v);
        assert!(v.iter().all(|&x| x == 1.0 || x == -1.0));
        // Both signs occur.
        assert!(v.contains(&1.0) && v.contains(&-1.0));
    }

    #[test]
    fn moments_match_unit_variance_zero_mean() {
        for dist in DISTS {
            let n = 200_000;
            let mut v = vec![0.0; n];
            fill_random_vector(dist, 123, 0, 0, &mut v);
            let mean: f64 = v.iter().sum::<f64>() / n as f64;
            let var: f64 = v.iter().map(|x| x * x).sum::<f64>() / n as f64 - mean * mean;
            assert!(mean.abs() < 0.01, "{dist:?} mean = {mean}");
            assert!((var - 1.0).abs() < 0.02, "{dist:?} var = {var}");
        }
    }

    #[test]
    fn uniform_bounded() {
        let mut v = vec![0.0; 1000];
        fill_random_vector(Distribution::Uniform, 5, 1, 1, &mut v);
        let bound = 3.0f64.sqrt() + 1e-12;
        assert!(v.iter().all(|&x| x.abs() <= bound));
    }

    #[test]
    fn realization_seeds_distinct() {
        let mut seen = std::collections::HashSet::new();
        for s in 0..32 {
            for r in 0..32 {
                assert!(seen.insert(realization_seed(99, s, r)), "collision at ({s}, {r})");
            }
        }
    }

    #[test]
    fn realization_stream_is_pinned() {
        // Frozen constants: the (master_seed, s, r) -> stream mapping is a
        // compatibility contract shared by the moment cache and the shard
        // wire protocol. If this test fails, the change is a breaking one —
        // bump the shard protocol version and invalidate caches rather than
        // updating the constants casually.
        let cases: [(u64, usize, usize, u64, [u64; 4]); 3] = [
            (
                0,
                0,
                0,
                0xe220_a839_7b1d_cdaf,
                [
                    0xa706_dd2f_4d19_7e6f,
                    0xb382_a305_f441_4f5e,
                    0x631a_9154_fbab_f717,
                    0xa80a_ba8c_8664_0906,
                ],
            ),
            (
                42,
                1,
                2,
                0xf20b_02b5_0738_f2be,
                [
                    0x5182_22a0_defa_615c,
                    0x1aa9_e716_1b7a_dcc0,
                    0xd882_4bc2_3108_b8e3,
                    0xbf41_13b2_4e3c_4112,
                ],
            ),
            (
                0x6b70_6d5f_7365,
                3,
                7,
                0xb983_bb01_93ff_dbc9,
                [
                    0xcd31_ca5d_9d77_f235,
                    0x1c38_734b_3e20_a173,
                    0x80d2_ba9e_5da7_560c,
                    0x7671_08c6_eb79_dd80,
                ],
            ),
        ];
        for (master, s, r, seed, words) in cases {
            assert_eq!(realization_seed(master, s, r), seed, "seed({master}, {s}, {r})");
            let mut stream = realization_stream(master, s, r);
            for (i, &w) in words.iter().enumerate() {
                assert_eq!(stream.next_u64(), w, "stream({master}, {s}, {r}) word {i}");
            }
        }
    }

    #[test]
    fn realization_stream_agrees_with_random_stream_seeding() {
        // RandomStream must be a pure wrapper over realization_stream: same
        // underlying u64 sequence regardless of distribution plumbing.
        let mut raw = realization_stream(7, 2, 3);
        let mut via = RandomStream::new(Distribution::Rademacher, 7, 2, 3);
        for _ in 0..16 {
            let expect = if raw.next_u64() & 1 == 0 { 1.0 } else { -1.0 };
            assert_eq!(via.next(), expect);
        }
    }

    #[test]
    fn stream_matches_fill_for_all_distributions() {
        for dist in DISTS {
            let mut expect = vec![0.0; 101]; // odd length: exercises the
                                             // Gaussian pending buffer
            fill_random_vector(dist, 31, 4, 9, &mut expect);
            let mut stream = RandomStream::new(dist, 31, 4, 9);
            for (i, &e) in expect.iter().enumerate() {
                assert_eq!(stream.next(), e, "{dist:?} element {i}");
            }
        }
    }

    #[test]
    fn cross_realization_correlation_is_small() {
        let n = 10_000;
        let mut a = vec![0.0; n];
        let mut b = vec![0.0; n];
        fill_random_vector(Distribution::Rademacher, 42, 0, 0, &mut a);
        fill_random_vector(Distribution::Rademacher, 42, 0, 1, &mut b);
        let corr: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum::<f64>() / n as f64;
        assert!(corr.abs() < 0.03, "correlation = {corr}");
    }
}
