//! Work and traffic accounting for a KPM run — the CPU side of the paper's
//! timing comparison.
//!
//! The benchmark harness prices the paper's *CPU version* by feeding these
//! profiles to `kpm_streamsim::CpuSpec`-style models. Keeping the formulas
//! here (next to the algorithm) means the bench crate never re-derives
//! operation counts.

/// Describes a KPM workload: the paper's parameter set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KpmWorkload {
    /// Operator dimension `D` (the paper's `H_SIZE`).
    pub dim: usize,
    /// Stored matrix entries (dense: `D^2`; the paper's lattice: `7 D`).
    pub stored_entries: usize,
    /// Moments `N`.
    pub num_moments: usize,
    /// Total realizations `S * R`.
    pub realizations: usize,
}

/// Work/traffic of one phase, mirroring
/// `kpm_streamsim::MemTraffic` without depending on that crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseProfile {
    /// Double-precision operations.
    pub flops: u64,
    /// Bytes moved between core and memory system.
    pub bytes: u64,
    /// Working-set size driving the cache level.
    pub working_set_bytes: usize,
}

impl KpmWorkload {
    /// One matrix–vector product: `2 * stored_entries` flops; traffic is
    /// the matrix (streamed once) plus source and destination vectors; the
    /// working set is matrix + a handful of vectors.
    pub fn matvec_profile(&self) -> PhaseProfile {
        let flops = 2 * self.stored_entries as u64;
        // Sparse rows also load the column indices (4 B each); harmless
        // overestimate for dense.
        let matrix_bytes = 8 * self.stored_entries as u64
            + if self.is_sparse() { 4 * self.stored_entries as u64 } else { 0 };
        let vector_bytes = 16 * self.dim as u64; // read x, write y
        PhaseProfile {
            flops,
            bytes: matrix_bytes + vector_bytes,
            working_set_bytes: (matrix_bytes + 4 * 8 * self.dim as u64) as usize,
        }
    }

    /// One fused Chebyshev combine + dot product
    /// (`r_next = 2 h - prev`, `mu~ = <r_0|r_next>`): `4 D` flops, four
    /// vector streams.
    pub fn combine_dot_profile(&self) -> PhaseProfile {
        PhaseProfile {
            flops: 4 * self.dim as u64,
            bytes: 4 * 8 * self.dim as u64,
            working_set_bytes: 4 * 8 * self.dim,
        }
    }

    /// One *fused* single-sweep Chebyshev step, as executed by the row-tiled
    /// engine: the tile streams the matrix once and performs
    /// `y = 2 (H~ x) - p` plus the moment dot(s) in the same pass.
    ///
    /// Relative to the split schedule (`matvec_profile` +
    /// `combine_dot_profile`, 48 B/row of vector traffic: read `h`, read
    /// `prev`, write `next`, read `r0`, read `next`, re-read `next` for the
    /// dot), the fused step touches each row's vector data once — read `x`,
    /// read-modify-write `p`, read `r0` — for 32 B/row. Matrix traffic and
    /// flop count are unchanged.
    pub fn fused_step_profile(&self) -> PhaseProfile {
        let m = self.matvec_profile();
        let flops = m.flops + 4 * self.dim as u64;
        let matrix_bytes = m.bytes - 16 * self.dim as u64;
        PhaseProfile {
            flops,
            bytes: matrix_bytes + 32 * self.dim as u64,
            working_set_bytes: m.working_set_bytes,
        }
    }

    /// Random-vector generation for one realization (`D` draws, ~10 ops
    /// each for the generator + store traffic).
    pub fn rng_profile(&self) -> PhaseProfile {
        PhaseProfile {
            flops: 10 * self.dim as u64,
            bytes: 8 * self.dim as u64,
            working_set_bytes: 8 * self.dim,
        }
    }

    /// Whether the workload is sparse (fewer stored entries than `D^2`).
    pub fn is_sparse(&self) -> bool {
        self.stored_entries < self.dim * self.dim
    }

    /// Total profile of the whole KPM run on one CPU:
    /// `realizations * [rng + (N-1) * matvec + N * combine_dot]`.
    ///
    /// The working set of the combined profile is the matvec's (it
    /// dominates); phase-resolved pricing should use the individual
    /// profiles instead.
    pub fn total_profile(&self) -> PhaseProfile {
        let m = self.matvec_profile();
        let c = self.combine_dot_profile();
        let g = self.rng_profile();
        let n = self.num_moments as u64;
        let reps = self.realizations as u64;
        PhaseProfile {
            flops: reps * (g.flops + (n - 1) * m.flops + n * c.flops),
            bytes: reps * (g.bytes + (n - 1) * m.bytes + n * c.bytes),
            working_set_bytes: m.working_set_bytes,
        }
    }

    /// Matvecs per realization for the plain recursion (`N - 1`).
    pub fn matvecs_per_realization(&self) -> usize {
        self.num_moments.saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_fig5() -> KpmWorkload {
        KpmWorkload { dim: 1000, stored_entries: 7000, num_moments: 256, realizations: 1792 }
    }

    fn paper_fig8(d: usize) -> KpmWorkload {
        KpmWorkload { dim: d, stored_entries: d * d, num_moments: 128, realizations: 1792 }
    }

    #[test]
    fn sparse_detection() {
        assert!(paper_fig5().is_sparse());
        assert!(!paper_fig8(512).is_sparse());
    }

    #[test]
    fn matvec_flops_are_2nnz() {
        assert_eq!(paper_fig5().matvec_profile().flops, 14_000);
        assert_eq!(paper_fig8(512).matvec_profile().flops, 2 * 512 * 512);
    }

    #[test]
    fn dense_working_set_crosses_l3_at_the_right_size() {
        // 8 MB L3: D = 1024 gives exactly 8 MB of matrix + vectors (just
        // over); D = 512 is 2 MB.
        let small = paper_fig8(512).matvec_profile().working_set_bytes;
        let large = paper_fig8(2048).matvec_profile().working_set_bytes;
        assert!(small < 8 * 1024 * 1024);
        assert!(large > 8 * 1024 * 1024);
    }

    #[test]
    fn total_scales_linearly_in_n_and_realizations() {
        let base = paper_fig5();
        let double_n = KpmWorkload { num_moments: 512, ..base };
        let double_r = KpmWorkload { realizations: 3584, ..base };
        let t0 = base.total_profile().flops as f64;
        let tn = double_n.total_profile().flops as f64;
        let tr = double_r.total_profile().flops as f64;
        assert!((tn / t0 - 2.0).abs() < 0.02, "N scaling {}", tn / t0);
        assert!((tr / t0 - 2.0).abs() < 1e-12, "R scaling {}", tr / t0);
    }

    #[test]
    fn matvec_count_matches_plain_recursion() {
        assert_eq!(paper_fig5().matvecs_per_realization(), 255);
    }

    #[test]
    fn fused_step_saves_one_third_of_vector_traffic() {
        let w = paper_fig5();
        let split = w.matvec_profile().bytes + w.combine_dot_profile().bytes;
        let fused = w.fused_step_profile().bytes;
        // Same flops, 16 B/row less vector traffic (48 B -> 32 B).
        assert_eq!(
            w.fused_step_profile().flops,
            w.matvec_profile().flops + w.combine_dot_profile().flops
        );
        assert_eq!(split - fused, 16 * w.dim as u64);
    }

    #[test]
    fn sparse_traffic_includes_indices() {
        let p = paper_fig5().matvec_profile();
        assert_eq!(p.bytes, 8 * 7000 + 4 * 7000 + 16 * 1000);
    }
}
