//! KPM error type.

use kpm_linalg::LinalgError;
use std::fmt;

/// Errors from the KPM pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum KpmError {
    /// A parameter was out of range (message explains which).
    InvalidParameter(String),
    /// The spectral-bounds stage failed.
    Bounds(LinalgError),
    /// The operator has a degenerate (single-point) spectrum and zero
    /// padding was requested, so rescaling is impossible.
    DegenerateSpectrum,
}

impl fmt::Display for KpmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KpmError::InvalidParameter(msg) => write!(f, "invalid KPM parameter: {msg}"),
            KpmError::Bounds(e) => write!(f, "spectral bounds failed: {e}"),
            KpmError::DegenerateSpectrum => {
                write!(f, "degenerate spectrum: rescaling needs nonzero half-width (add padding)")
            }
        }
    }
}

impl std::error::Error for KpmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            KpmError::Bounds(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for KpmError {
    fn from(e: LinalgError) -> Self {
        KpmError::Bounds(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = KpmError::InvalidParameter("N must be >= 2".into());
        assert!(e.to_string().contains("N must be >= 2"));
        let e: KpmError = LinalgError::NotSymmetric.into();
        assert!(std::error::Error::source(&e).is_some());
        assert!(KpmError::DegenerateSpectrum.to_string().contains("padding"));
    }
}
