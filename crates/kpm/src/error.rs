//! KPM error type.

use kpm_linalg::LinalgError;
use std::fmt;

/// Errors from the KPM pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum KpmError {
    /// A parameter was out of range (message explains which).
    InvalidParameter(String),
    /// The spectral-bounds stage failed.
    Bounds(LinalgError),
    /// The operator has a degenerate (single-point) spectrum and zero
    /// padding was requested, so rescaling is impossible.
    DegenerateSpectrum,
    /// `num_moments` below the minimum of 2 required by the recursion
    /// (Eq. 4 needs both `T_0` and `T_1`).
    TooFewMoments {
        /// The requested truncation order.
        got: usize,
    },
    /// The reconstruction grid has fewer points than the expansion order,
    /// which would alias moments away in the DCT (Eq. 11).
    GridTooSmall {
        /// The requested number of grid points.
        grid_points: usize,
        /// The expansion order it must at least match.
        num_moments: usize,
    },
    /// The rescaling padding `eps` was NaN or infinite.
    NonFinitePadding(
        /// The offending value.
        f64,
    ),
}

impl fmt::Display for KpmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KpmError::InvalidParameter(msg) => write!(f, "invalid KPM parameter: {msg}"),
            KpmError::Bounds(e) => write!(f, "spectral bounds failed: {e}"),
            KpmError::DegenerateSpectrum => {
                write!(f, "degenerate spectrum: rescaling needs nonzero half-width (add padding)")
            }
            KpmError::TooFewMoments { got } => {
                write!(f, "num_moments must be >= 2, got {got}")
            }
            KpmError::GridTooSmall { grid_points, num_moments } => {
                write!(f, "grid_points ({grid_points}) must be >= num_moments ({num_moments})")
            }
            KpmError::NonFinitePadding(eps) => {
                write!(f, "rescaling padding must be finite, got {eps}")
            }
        }
    }
}

impl std::error::Error for KpmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            KpmError::Bounds(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for KpmError {
    fn from(e: LinalgError) -> Self {
        KpmError::Bounds(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = KpmError::InvalidParameter("N must be >= 2".into());
        assert!(e.to_string().contains("N must be >= 2"));
        let e: KpmError = LinalgError::NotSymmetric.into();
        assert!(std::error::Error::source(&e).is_some());
        assert!(KpmError::DegenerateSpectrum.to_string().contains("padding"));
    }

    #[test]
    fn validation_variants_render_their_values() {
        assert!(KpmError::TooFewMoments { got: 1 }.to_string().contains("got 1"));
        let e = KpmError::GridTooSmall { grid_points: 8, num_moments: 64 };
        assert!(e.to_string().contains("(8)"));
        assert!(e.to_string().contains("(64)"));
        assert!(KpmError::NonFinitePadding(f64::INFINITY).to_string().contains("inf"));
    }
}
