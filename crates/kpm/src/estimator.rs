//! The unified `Estimator` surface shared by every spectral workload.
//!
//! Weiße et al. (Rev. Mod. Phys. 78, 275) structure KPM identically for
//! every quantity: rescale the operator into `[-1, 1]` (Eqs. 8–9), run the
//! Chebyshev moment recursion (Eq. 4), then reconstruct on an energy grid
//! (Eqs. 10–12). Only the middle and last steps differ between the density
//! of states, local DoS, Green's functions, and Kubo conductivity. The
//! [`Estimator`] trait captures exactly that seam: implementors provide
//! `moments` and `reconstruct`, and the shared `compute` /
//! `compute_with_bounds` defaults supply the bounds → rescale plumbing —
//! and, with it, the per-phase [`kpm_obs`] spans that make the pipeline's
//! time budget visible.
//!
//! # Example
//!
//! ```
//! use kpm::prelude::*;
//!
//! let h = kpm_lattice::dense_random_symmetric(24, 1.0, 7);
//! let params = KpmParams::new(32).with_random_vectors(4, 2);
//! let dos = DosEstimator::new(params).compute(&h).unwrap();
//! assert!((dos.integrate() - 1.0).abs() < 0.1);
//! ```

use crate::error::KpmError;
use crate::moments::KpmParams;
use crate::rescale::{rescale, Boundable};
use kpm_linalg::gershgorin::SpectralBounds;
use kpm_linalg::tiled::TiledOp;

/// A KPM pipeline for one spectral quantity.
///
/// Implementations exist for all four workloads:
/// [`DosEstimator`](crate::dos::DosEstimator),
/// [`LdosEstimator`](crate::ldos::LdosEstimator),
/// [`GreenEstimator`](crate::green::GreenEstimator) and
/// [`KuboEstimator`](crate::kubo::KuboEstimator). The provided `compute*`
/// methods are the canonical entry points; the serve worker pool and the
/// moment cache hook the `moments` / `reconstruct` split so cached moments
/// can skip straight to reconstruction.
pub trait Estimator {
    /// Moment data produced by the recursion stage (e.g.
    /// [`MomentStats`](crate::moments::MomentStats) or
    /// [`DoubleMoments`](crate::kubo::DoubleMoments)).
    type Moments;
    /// The reconstructed quantity (e.g. [`Dos`](crate::dos::Dos)).
    type Output;

    /// The KPM parameter set driving this estimator.
    fn params(&self) -> &KpmParams;

    /// Computes moments of the *already rescaled* operator.
    ///
    /// # Errors
    /// Parameter validation or workload-specific errors (e.g. a site index
    /// out of range).
    fn moments<A: TiledOp + Sync>(&self, op: &A) -> Result<Self::Moments, KpmError>;

    /// Reconstructs the output quantity from moments and the rescaling
    /// coefficients `a_+` (centre) and `a_-` (half-width) that produced
    /// them (Eq. 9). Moments may come from [`Estimator::moments`], the GPU
    /// engine, or the serve moment cache.
    ///
    /// # Errors
    /// Workload-specific errors (e.g. an evaluation energy outside the
    /// rescaled band).
    fn reconstruct(
        &self,
        moments: Self::Moments,
        a_plus: f64,
        a_minus: f64,
    ) -> Result<Self::Output, KpmError>;

    /// Runs the full pipeline on an operator whose bounds we can find.
    ///
    /// The bounds stage is recorded under the `kpm.rescale` span (bounds
    /// estimation is part of the paper's rescaling phase); `moments` and
    /// `reconstruct` record their own `kpm.moments` / `kpm.reconstruct`
    /// spans.
    ///
    /// # Errors
    /// Parameter validation, bounds computation, degenerate-spectrum, or
    /// workload-specific errors.
    fn compute<A: Boundable + TiledOp + Sync>(&self, op: &A) -> Result<Self::Output, KpmError> {
        self.params().validate()?;
        let bounds = {
            let _span = kpm_obs::span("kpm.rescale");
            crate::bounds::resolve(op, self.params().bounds)?
        };
        self.compute_with_bounds(op, bounds)
    }

    /// Runs the pipeline with caller-supplied spectral bounds.
    ///
    /// # Errors
    /// Parameter validation, degenerate-spectrum, or workload-specific
    /// errors.
    fn compute_with_bounds<A: TiledOp + Sync>(
        &self,
        op: &A,
        bounds: SpectralBounds,
    ) -> Result<Self::Output, KpmError> {
        self.params().validate()?;
        let rescaled = rescale(op, bounds, self.params().padding)?;
        let (a_plus, a_minus) = (rescaled.a_plus(), rescaled.a_minus());
        let moments = self.moments(&rescaled)?;
        self.reconstruct(moments, a_plus, a_minus)
    }
}
