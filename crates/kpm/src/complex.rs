//! A minimal complex number type for the FFT and Green's functions.
//!
//! Implemented in-tree (no external `num-complex` dependency) per the
//! workspace's dependency policy; only the operations the crate needs.

use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// A complex number with `f64` parts.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// Zero.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Constructs from parts.
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// A real number.
    pub const fn real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// `e^{i theta}`.
    pub fn cis(theta: f64) -> Self {
        Self { re: theta.cos(), im: theta.sin() }
    }

    /// Complex conjugate.
    pub fn conj(&self) -> Self {
        Self { re: self.re, im: -self.im }
    }

    /// Squared magnitude.
    pub fn norm_sqr(&self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    pub fn abs(&self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Multiplies by a real scalar.
    pub fn scale(&self, s: f64) -> Self {
        Self { re: self.re * s, im: self.im * s }
    }

    /// Complex square root (principal branch).
    pub fn sqrt(&self) -> Self {
        let r = self.abs();
        let re = ((r + self.re) / 2.0).sqrt();
        let im = ((r - self.re) / 2.0).sqrt().copysign(self.im);
        Self { re, im }
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex64 {
    fn add_assign(&mut self, rhs: Complex64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re * rhs.re - self.im * rhs.im, self.re * rhs.im + self.im * rhs.re)
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    fn div(self, rhs: Complex64) -> Complex64 {
        let d = rhs.norm_sqr();
        Complex64::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    fn neg(self) -> Complex64 {
        Complex64::new(-self.re, -self.im)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(3.0, -1.0);
        assert_eq!(a + b, Complex64::new(4.0, 1.0));
        assert_eq!(a - b, Complex64::new(-2.0, 3.0));
        assert_eq!(a * b, Complex64::new(5.0, 5.0));
        let q = (a * b) / b;
        assert!((q.re - a.re).abs() < 1e-14 && (q.im - a.im).abs() < 1e-14);
        assert_eq!(-a, Complex64::new(-1.0, -2.0));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(Complex64::I * Complex64::I, Complex64::new(-1.0, 0.0));
    }

    #[test]
    fn cis_and_conj() {
        let z = Complex64::cis(std::f64::consts::FRAC_PI_2);
        assert!(z.re.abs() < 1e-15 && (z.im - 1.0).abs() < 1e-15);
        assert_eq!(z.conj().im, -z.im);
        assert!((Complex64::cis(0.7).abs() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn sqrt_branches() {
        let z = Complex64::new(-4.0, 0.0);
        let r = z.sqrt();
        assert!(r.re.abs() < 1e-12 && (r.im - 2.0).abs() < 1e-12);
        // sqrt(z)^2 = z generally.
        for &(re, im) in &[(3.0, 4.0), (-1.0, -1.0), (0.0, 2.0), (5.0, 0.0)] {
            let z = Complex64::new(re, im);
            let s = z.sqrt();
            let back = s * s;
            assert!((back.re - re).abs() < 1e-12 && (back.im - im).abs() < 1e-12, "{z:?}");
        }
    }

    #[test]
    fn add_assign_and_scale() {
        let mut z = Complex64::ZERO;
        z += Complex64::new(1.0, 1.0);
        z += Complex64::new(2.0, -3.0);
        assert_eq!(z, Complex64::new(3.0, -2.0));
        assert_eq!(z.scale(2.0), Complex64::new(6.0, -4.0));
        assert_eq!(z.norm_sqr(), 13.0);
    }
}
