//! Retarded Green's functions from Chebyshev moments.
//!
//! The paper motivates the KPM with "DoS and Green's functions" (Sec. I);
//! this module supplies the latter. With the Lorentz kernel, the KPM
//! expansion of the retarded Green's function is (Weiße et al. 2006,
//! Eq. 90)
//!
//! ```text
//! G(omega) = -2i / sqrt(1 - omega^2) *
//!            [ g_0 mu_0 / 2 + sum_{n>=1} g_n mu_n e^{-i n arccos(omega)} ]
//! ```
//!
//! on the rescaled axis; `Im G = -pi rho` recovers the (kernel-smeared)
//! density of states, which is the invariant our tests pin down.

use crate::complex::Complex64;
use crate::error::KpmError;
use crate::estimator::Estimator;
use crate::kernels::KernelType;
use crate::moments::{pair_vector_moments, KpmParams};
use kpm_linalg::tiled::TiledOp;

/// A sampled Green's function on the original energy axis.
#[derive(Debug, Clone)]
pub struct GreensFunction {
    /// Energies (original axis).
    pub energies: Vec<f64>,
    /// `G(omega)` values.
    pub values: Vec<Complex64>,
}

impl GreensFunction {
    /// The spectral function `A(omega) = -Im G(omega) / pi` — equals the
    /// kernel-smeared DoS when the moments are trace moments.
    pub fn spectral_function(&self) -> Vec<f64> {
        self.values.iter().map(|g| -g.im / std::f64::consts::PI).collect()
    }
}

/// Evaluates the KPM Green's function from (undamped) moments.
///
/// * `moments` — `mu_0 .. mu_{N-1}` (trace moments for the global Green's
///   function, or `<i|T_n|j>` moments for a matrix element).
/// * `kernel` — damping kernel; [`KernelType::Lorentz`] is the
///   analyticity-preserving choice.
/// * `energies` — evaluation points on the **original** axis.
/// * `(a_plus, a_minus)` — the rescaling that produced the moments.
///
/// # Errors
/// [`KpmError::InvalidParameter`] if `moments` is empty, `a_minus <= 0`, or
/// any energy maps outside `(-1, 1)`.
pub fn evaluate(
    moments: &[f64],
    kernel: KernelType,
    energies: &[f64],
    a_plus: f64,
    a_minus: f64,
) -> Result<GreensFunction, KpmError> {
    let _span = kpm_obs::span("kpm.reconstruct");
    if moments.is_empty() {
        return Err(KpmError::InvalidParameter("moments must be nonempty".into()));
    }
    if a_minus <= 0.0 {
        return Err(KpmError::InvalidParameter(format!("a_minus must be positive, got {a_minus}")));
    }
    let damped = kernel.damp(moments);
    let mut values = Vec::with_capacity(energies.len());
    for &omega in energies {
        let x = (omega - a_plus) / a_minus;
        if !(x > -1.0 && x < 1.0) {
            return Err(KpmError::InvalidParameter(format!(
                "energy {omega} maps to {x}, outside the open interval (-1, 1)"
            )));
        }
        let phi = x.acos();
        // G~(x) = -2i [ c_0/2 + sum_{n>=1} c_n e^{-i n phi} ] / sqrt(1-x^2)
        let mut acc = Complex64::real(damped[0] / 2.0);
        for (n, &c) in damped.iter().enumerate().skip(1) {
            acc += Complex64::cis(-(n as f64) * phi).scale(c);
        }
        let denom = (1.0 - x * x).sqrt();
        let g_scaled = (Complex64::new(0.0, -2.0) * acc).scale(1.0 / denom);
        // Map back to the original axis: G(omega) = G~(x) / a_-.
        values.push(g_scaled.scale(1.0 / a_minus));
    }
    Ok(GreensFunction { energies: energies.to_vec(), values })
}

/// Evaluates the KPM Green's function from (undamped) moments.
///
/// # Errors
/// Same as [`evaluate`].
#[deprecated(
    since = "0.1.0",
    note = "use `green::evaluate`, or `GreenEstimator` with `Estimator::compute` \
            for the full pipeline"
)]
pub fn greens_function(
    moments: &[f64],
    kernel: KernelType,
    energies: &[f64],
    a_plus: f64,
    a_minus: f64,
) -> Result<GreensFunction, KpmError> {
    evaluate(moments, kernel, energies, a_plus, a_minus)
}

/// Matrix-element Green's function estimator — the [`Estimator`] for
/// `G_ij(omega) = <i|(omega - H)^{-1}|j>` (retarded, kernel-smeared).
///
/// Uses the two-vector recursion for the moments `<i|T_n(H~)|j>`; the
/// stochastic fields of `params` (`R`, `S`, distribution) are ignored.
/// [`KernelType::Lorentz`] is the analyticity-preserving kernel choice.
#[derive(Debug, Clone)]
pub struct GreenEstimator {
    params: KpmParams,
    i: usize,
    j: usize,
    energies: Vec<f64>,
}

impl GreenEstimator {
    /// Creates an estimator for the element `G_ij` sampled at `energies`
    /// (original axis).
    pub fn element(params: KpmParams, i: usize, j: usize, energies: Vec<f64>) -> Self {
        Self { params, i, j, energies }
    }

    /// Creates an estimator for the diagonal element `G_ii`.
    pub fn diagonal(params: KpmParams, i: usize, energies: Vec<f64>) -> Self {
        Self::element(params, i, i, energies)
    }

    /// The element indices `(i, j)`.
    pub fn indices(&self) -> (usize, usize) {
        (self.i, self.j)
    }

    /// The evaluation energies (original axis).
    pub fn energies(&self) -> &[f64] {
        &self.energies
    }
}

impl Estimator for GreenEstimator {
    type Moments = Vec<f64>;
    type Output = GreensFunction;

    fn params(&self) -> &KpmParams {
        &self.params
    }

    /// Two-vector moments `<e_i|T_n(H~)|e_j>`.
    fn moments<A: TiledOp + Sync>(&self, op: &A) -> Result<Vec<f64>, KpmError> {
        self.params.validate()?;
        let d = op.dim();
        if self.i >= d || self.j >= d {
            return Err(KpmError::InvalidParameter(format!(
                "element ({}, {}) out of range for dimension {d}",
                self.i, self.j
            )));
        }
        let _span = kpm_obs::span("kpm.moments");
        let mut e_i = vec![0.0; d];
        e_i[self.i] = 1.0;
        let mut e_j = vec![0.0; d];
        e_j[self.j] = 1.0;
        Ok(pair_vector_moments(op, &e_i, &e_j, self.params.num_moments))
    }

    fn reconstruct(
        &self,
        moments: Vec<f64>,
        a_plus: f64,
        a_minus: f64,
    ) -> Result<GreensFunction, KpmError> {
        evaluate(&moments, self.params.kernel, &self.energies, a_plus, a_minus)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chebyshev;
    use crate::moments::exact_moments;

    #[test]
    fn spectral_function_matches_kpm_dos() {
        // Moments of a flat spectrum on [-0.9, 0.9]; Im G must reproduce the
        // same kernel-damped series the DoS reconstruction uses.
        let eigs: Vec<f64> = (0..100).map(|i| -0.9 + 1.8 * i as f64 / 99.0).collect();
        let n = 64;
        let mu = exact_moments(&eigs, n);
        let kernel = KernelType::Jackson;
        let energies: Vec<f64> = (1..20).map(|i| -0.9 + 0.09 * i as f64).collect();
        let g = evaluate(&mu, kernel, &energies, 0.0, 1.0).unwrap();
        let a = g.spectral_function();
        let damped = kernel.damp(&mu);
        for (i, &omega) in energies.iter().enumerate() {
            let rho = chebyshev::series_eval(&damped, omega);
            assert!((a[i] - rho).abs() < 1e-10, "omega = {omega}: A = {} vs rho = {rho}", a[i]);
        }
    }

    #[test]
    fn single_level_green_function_looks_lorentzian() {
        // One level at 0: with the Lorentz kernel, Im G is peaked at 0 and
        // Re G is antisymmetric, crossing zero at the level.
        let n = 128;
        let mu: Vec<f64> = (0..n).map(|k| chebyshev::t(k, 0.0)).collect();
        let kernel = KernelType::Lorentz { lambda: 4.0 };
        let energies: Vec<f64> = (-40..=40).map(|i| i as f64 * 0.02).collect();
        let g = evaluate(&mu, kernel, &energies, 0.0, 1.0).unwrap();
        let mid = energies.iter().position(|&e| e == 0.0).unwrap();
        // Im G minimal (most negative) at the level.
        let im_mid = g.values[mid].im;
        assert!(g.values.iter().all(|v| v.im <= 1e-9), "Im G must be <= 0");
        assert!(g.values.iter().all(|v| v.im >= im_mid - 1e-12));
        // Re G antisymmetric around the level.
        for off in 1..20 {
            let re_l = g.values[mid - off].re;
            let re_r = g.values[mid + off].re;
            assert!((re_l + re_r).abs() < 1e-6 * (1.0 + re_l.abs()), "off = {off}");
        }
        assert!(g.values[mid].re.abs() < 1e-9);
    }

    #[test]
    fn rescaling_maps_energies_correctly() {
        // Level at omega = 3 with a_+ = 3, a_- = 2: peak must appear at 3.
        let n = 96;
        let mu: Vec<f64> = (0..n).map(|k| chebyshev::t(k, 0.0)).collect();
        let energies: Vec<f64> = (-15..=15).map(|i| 3.0 + i as f64 * 0.1).collect();
        let g = evaluate(&mu, KernelType::Jackson, &energies, 3.0, 2.0).unwrap();
        let a = g.spectral_function();
        let (imax, _) = a.iter().enumerate().max_by(|x, y| x.1.total_cmp(y.1)).unwrap();
        assert!((energies[imax] - 3.0).abs() < 0.05, "peak at {}", energies[imax]);
    }

    #[test]
    fn error_cases() {
        assert!(evaluate(&[], KernelType::Jackson, &[0.0], 0.0, 1.0).is_err());
        assert!(evaluate(&[1.0], KernelType::Jackson, &[0.0], 0.0, 0.0).is_err());
        // Energy outside the band.
        assert!(evaluate(&[1.0, 0.0], KernelType::Jackson, &[2.0], 0.0, 1.0).is_err());
    }

    #[test]
    fn sum_rule_integral_of_spectral_function() {
        // Integral of A over the band = mu_0 = 1 (Gauss-Chebyshev grid).
        let eigs: Vec<f64> = (0..50).map(|i| -0.8 + 1.6 * i as f64 / 49.0).collect();
        let mu = exact_moments(&eigs, 48);
        let k = 256;
        let grid = chebyshev::gauss_grid(k);
        let g = evaluate(&mu, KernelType::Jackson, &grid, 0.0, 1.0).unwrap();
        let a = g.spectral_function();
        // Gauss-Chebyshev: int f(x) dx ~ (pi/K) sum sqrt(1-x^2) f(x).
        let integral: f64 =
            grid.iter().zip(&a).map(|(&x, &ax)| (1.0 - x * x).sqrt() * ax).sum::<f64>()
                * std::f64::consts::PI
                / k as f64;
        assert!((integral - 1.0).abs() < 1e-6, "sum rule violated: {integral}");
    }

    #[test]
    fn green_estimator_diagonal_matches_ldos_spectral_function() {
        // A_ii(omega) = -Im G_ii / pi is the LDoS at site i with the same
        // kernel — compute both through their estimators and compare.
        use crate::ldos::LdosEstimator;
        let h = kpm_lattice::dense_random_symmetric(16, 1.0, 13);
        let params = KpmParams::new(48);
        let ldos = LdosEstimator::new(params.clone(), 3).compute(&h).unwrap();
        // Evaluate G at interior LDoS grid energies (skip edges, where the
        // open-interval check would reject the outermost grid point).
        let energies: Vec<f64> = ldos.energies[10..ldos.energies.len() - 10].to_vec();
        let g = GreenEstimator::diagonal(params, 3, energies.clone()).compute(&h).unwrap();
        let a = g.spectral_function();
        for (k, &omega) in energies.iter().enumerate() {
            let rho = ldos.value_at(omega).unwrap();
            assert!(
                (a[k] - rho).abs() < 1e-6 * (1.0 + rho.abs()),
                "omega = {omega}: A = {} vs LDoS = {rho}",
                a[k]
            );
        }
    }

    #[test]
    fn green_estimator_rejects_out_of_range_element() {
        let h = kpm_lattice::dense_random_symmetric(8, 1.0, 1);
        let est = GreenEstimator::element(KpmParams::new(16), 2, 8, vec![0.0]);
        assert!(matches!(est.compute(&h), Err(KpmError::InvalidParameter(_))));
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_greens_function_shim_matches_evaluate() {
        let mu: Vec<f64> = (0..32).map(|k| chebyshev::t(k, 0.2)).collect();
        let energies = vec![-0.5, 0.0, 0.5];
        let via_shim = greens_function(&mu, KernelType::Jackson, &energies, 0.0, 1.0).unwrap();
        let via_eval = evaluate(&mu, KernelType::Jackson, &energies, 0.0, 1.0).unwrap();
        for (a, b) in via_shim.values.iter().zip(&via_eval.values) {
            assert_eq!(a.re, b.re);
            assert_eq!(a.im, b.im);
        }
    }
}
