//! Finite-temperature observables from a KPM density of states.
//!
//! Once `rho(E)` is known, single-particle thermodynamics of the
//! non-interacting system follow by Fermi–Dirac integrals:
//!
//! * electron filling `n(mu, T) = ∫ rho(E) f((E - mu)/T) dE`,
//! * internal energy `u(mu, T) = ∫ E rho(E) f(...) dE`,
//! * and the chemical potential for a target filling by bisection.
//!
//! This is the standard downstream use of the paper's DoS pipeline (the
//! simulation one actually runs after the moments are in hand), so it
//! belongs in the library. All integrals are Gauss–Chebyshev sums over the
//! reconstruction grid — the same quadrature that makes
//! [`Dos::integrate`](crate::dos::Dos::integrate) exact.

//!
//! # Example
//!
//! ```
//! use kpm::prelude::*;
//! use kpm::thermal;
//! use kpm_linalg::DenseMatrix;
//!
//! let h = DenseMatrix::from_diag(&(0..64).map(|i| i as f64 / 16.0 - 2.0).collect::<Vec<_>>());
//! let dos = DosEstimator::new(KpmParams::new(64)).compute(&h)?;
//! // Half filling sits at the band centre for this symmetric spectrum.
//! let mu = thermal::chemical_potential(&dos, 0.5, 0.05)?;
//! assert!(mu.abs() < 0.15, "mu = {mu}");
//! # Ok::<(), kpm::KpmError>(())
//! ```

use crate::dos::Dos;
use crate::error::KpmError;

/// Fermi–Dirac occupation `1 / (e^{(e - mu)/t} + 1)`.
///
/// `t = 0` is handled exactly (step function, with value 1/2 at `e == mu`).
///
/// # Panics
/// Panics if `t < 0`.
pub fn fermi(e: f64, mu: f64, t: f64) -> f64 {
    assert!(t >= 0.0, "temperature must be nonnegative");
    if t == 0.0 {
        return match e.partial_cmp(&mu).expect("finite energies") {
            std::cmp::Ordering::Less => 1.0,
            std::cmp::Ordering::Equal => 0.5,
            std::cmp::Ordering::Greater => 0.0,
        };
    }
    let x = (e - mu) / t;
    // Numerically stable for both signs.
    if x >= 0.0 {
        let ex = (-x).exp();
        ex / (1.0 + ex)
    } else {
        1.0 / (1.0 + x.exp())
    }
}

/// Electron filling per site at `(mu, T)`:
/// `n = ∫ rho(E) f(E; mu, T) dE` over the reconstructed band.
pub fn filling(dos: &Dos, mu: f64, t: f64) -> f64 {
    weighted_integral(dos, |e| fermi(e, mu, t))
}

/// Internal energy per site at `(mu, T)`:
/// `u = ∫ E rho(E) f(E; mu, T) dE`.
pub fn internal_energy(dos: &Dos, mu: f64, t: f64) -> f64 {
    weighted_integral(dos, |e| e * fermi(e, mu, t))
}

/// Electronic specific heat per site `c_v = du/dT` at fixed `mu`, by a
/// symmetric finite difference with step `dt`.
///
/// # Panics
/// Panics if `t <= 0` or `dt <= 0` or `dt >= t`.
pub fn specific_heat(dos: &Dos, mu: f64, t: f64, dt: f64) -> f64 {
    assert!(t > 0.0 && dt > 0.0 && dt < t, "need 0 < dt < t");
    (internal_energy(dos, mu, t + dt) - internal_energy(dos, mu, t - dt)) / (2.0 * dt)
}

/// Chemical potential that produces the target filling at temperature `t`,
/// found by bisection over the reconstructed band.
///
/// # Errors
/// [`KpmError::InvalidParameter`] if `target` is outside `(0, total)` where
/// `total = dos.integrate()` (cannot fill beyond the band).
pub fn chemical_potential(dos: &Dos, target: f64, t: f64) -> Result<f64, KpmError> {
    let total = dos.integrate();
    if !(target > 0.0 && target < total) {
        return Err(KpmError::InvalidParameter(format!(
            "target filling {target} outside (0, {total})"
        )));
    }
    let band = dos.energies.last().expect("nonempty") - dos.energies[0];
    let mut lo = dos.energies[0] - band - 20.0 * t.max(1e-12);
    let mut hi = *dos.energies.last().expect("nonempty") + band + 20.0 * t.max(1e-12);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if filling(dos, mid, t) < target {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-13 * band.max(1.0) {
            break;
        }
    }
    Ok(0.5 * (lo + hi))
}

/// Gauss–Chebyshev weighted integral `∫ w(E) rho(E) dE` over the band.
fn weighted_integral(dos: &Dos, w: impl Fn(f64) -> f64) -> f64 {
    // rho was reconstructed on the Chebyshev grid x_k; with
    // E = a_- x + a_+ the quadrature is
    // ∫ g(E) dE = (pi a_- / K) sum_k sqrt(1 - x_k^2) g(E_k).
    let k = dos.len() as f64;
    dos.energies
        .iter()
        .zip(&dos.rho)
        .map(|(&e, &r)| {
            let x = (e - dos.a_plus) / dos.a_minus;
            (1.0 - x * x).max(0.0).sqrt() * r * w(e)
        })
        .sum::<f64>()
        * std::f64::consts::PI
        * dos.a_minus
        / k
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dos::DosEstimator;
    use crate::estimator::Estimator;
    use crate::moments::KpmParams;
    use kpm_linalg::gershgorin::SpectralBounds;
    use kpm_linalg::op::DiagonalOp;

    fn flat_dos() -> Dos {
        // Uniform spectrum on [-2, 2]: rho = 1/4 in the bulk.
        let eigs: Vec<f64> = (0..600).map(|i| -2.0 + 4.0 * i as f64 / 599.0).collect();
        let op = DiagonalOp::new(eigs);
        DosEstimator::new(KpmParams::new(128).with_random_vectors(16, 4))
            .compute_with_bounds(&op, SpectralBounds::new(-2.0, 2.0))
            .unwrap()
    }

    #[test]
    fn fermi_function_limits() {
        assert_eq!(fermi(-1.0, 0.0, 0.0), 1.0);
        assert_eq!(fermi(1.0, 0.0, 0.0), 0.0);
        assert_eq!(fermi(0.0, 0.0, 0.0), 0.5);
        assert!((fermi(0.0, 0.0, 0.5) - 0.5).abs() < 1e-15);
        // Symmetry: f(mu + d) + f(mu - d) = 1.
        for &d in &[0.1, 1.0, 30.0] {
            let s = fermi(d, 0.0, 0.7) + fermi(-d, 0.0, 0.7);
            assert!((s - 1.0).abs() < 1e-12, "d = {d}");
        }
        // No overflow at extreme arguments.
        assert_eq!(fermi(1e6, 0.0, 1e-3), 0.0);
        assert_eq!(fermi(-1e6, 0.0, 1e-3), 1.0);
    }

    #[test]
    fn filling_spans_zero_to_one() {
        let dos = flat_dos();
        assert!(filling(&dos, -10.0, 0.01) < 1e-6);
        assert!((filling(&dos, 10.0, 0.01) - 1.0).abs() < 0.01);
        // Half filling at band centre for the symmetric band.
        assert!((filling(&dos, 0.0, 0.05) - 0.5).abs() < 0.01);
    }

    #[test]
    fn zero_temperature_filling_is_cumulative_dos() {
        let dos = flat_dos();
        // Flat band on [-2, 2]: n(mu) = (mu + 2)/4.
        for &mu in &[-1.5, -0.5, 0.5, 1.5] {
            let n = filling(&dos, mu, 0.0);
            let expect = (mu + 2.0) / 4.0;
            assert!((n - expect).abs() < 0.015, "mu = {mu}: {n} vs {expect}");
        }
    }

    #[test]
    fn internal_energy_of_half_filled_symmetric_band_is_negative() {
        let dos = flat_dos();
        let u = internal_energy(&dos, 0.0, 0.01);
        // Filling only E < 0 states: u = ∫_{-2}^0 E/4 dE = -0.5.
        assert!((u + 0.5).abs() < 0.02, "u = {u}");
    }

    #[test]
    fn chemical_potential_inverts_filling() {
        let dos = flat_dos();
        for &target in &[0.25, 0.5, 0.8] {
            for &t in &[0.01, 0.3] {
                let mu = chemical_potential(&dos, target, t).unwrap();
                let back = filling(&dos, mu, t);
                assert!((back - target).abs() < 1e-6, "target {target}, t {t}: {back}");
            }
        }
    }

    #[test]
    fn chemical_potential_rejects_impossible_fillings() {
        let dos = flat_dos();
        assert!(chemical_potential(&dos, 0.0, 0.1).is_err());
        assert!(chemical_potential(&dos, 1.5, 0.1).is_err());
    }

    #[test]
    fn specific_heat_is_linear_at_low_temperature() {
        // Sommerfeld: c_v ~ (pi^2/3) rho(mu) T for T << bandwidth.
        let dos = flat_dos();
        let rho_mu = 0.25;
        for &t in &[0.05, 0.1] {
            let cv = specific_heat(&dos, 0.0, t, t * 0.2);
            let sommerfeld = std::f64::consts::PI.powi(2) / 3.0 * rho_mu * t;
            assert!(
                (cv - sommerfeld).abs() < 0.25 * sommerfeld,
                "t = {t}: cv {cv} vs Sommerfeld {sommerfeld}"
            );
        }
    }

    #[test]
    fn energy_increases_with_temperature_at_fixed_mu() {
        let dos = flat_dos();
        let u_cold = internal_energy(&dos, 0.0, 0.05);
        let u_warm = internal_energy(&dos, 0.0, 0.5);
        assert!(u_warm > u_cold, "{u_warm} vs {u_cold}");
    }
}
