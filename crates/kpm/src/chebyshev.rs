//! Chebyshev polynomials of the first kind.
//!
//! `T_n(x) = cos(n arccos x)` on `[-1, 1]` (the paper's Eq. 3), with the
//! recursion `T_0 = 1`, `T_1 = x`, `T_{n+2} = 2 x T_{n+1} - T_n` (Eq. 4–5)
//! that the whole KPM is built on.

/// Evaluates `T_n(x)` by the three-term recursion.
///
/// Valid for any real `x` (outside `[-1, 1]` it grows like a hyperbolic
/// cosine); the recursion is numerically stable on `[-1, 1]`.
pub fn t(n: usize, x: f64) -> f64 {
    match n {
        0 => 1.0,
        1 => x,
        _ => {
            let mut tm = 1.0; // T_0
            let mut tc = x; // T_1
            for _ in 2..=n {
                let tn = 2.0 * x * tc - tm;
                tm = tc;
                tc = tn;
            }
            tc
        }
    }
}

/// Evaluates `T_n(x)` through the trigonometric definition
/// `cos(n arccos x)` — only valid for `x` in `[-1, 1]`, used as an
/// independent cross-check of the recursion.
///
/// # Panics
/// Panics if `x` is outside `[-1, 1]`.
pub fn t_trig(n: usize, x: f64) -> f64 {
    assert!((-1.0..=1.0).contains(&x), "t_trig requires x in [-1, 1], got {x}");
    (n as f64 * x.acos()).cos()
}

/// Evaluates `T_0(x) .. T_{nmax-1}(x)` in one pass.
pub fn t_all(nmax: usize, x: f64) -> Vec<f64> {
    let mut out = Vec::with_capacity(nmax);
    if nmax == 0 {
        return out;
    }
    out.push(1.0);
    if nmax == 1 {
        return out;
    }
    out.push(x);
    for n in 2..nmax {
        let tn = 2.0 * x * out[n - 1] - out[n - 2];
        out.push(tn);
    }
    out
}

/// The Chebyshev–Gauss grid of `k` points,
/// `x_j = cos(pi (j + 1/2) / k)` for `j = 0..k` — the natural abscissas for
/// KPM reconstruction (they are the zeros of `T_k` and make the
/// reconstruction sum an exact DCT-III).
///
/// Points are returned in decreasing order of `x` (increasing `j`), i.e.
/// from `+1` toward `-1`.
pub fn gauss_grid(k: usize) -> Vec<f64> {
    (0..k).map(|j| (std::f64::consts::PI * (j as f64 + 0.5) / k as f64).cos()).collect()
}

/// Evaluates the damped Chebyshev series of the paper's Eq. (6) at `x`:
///
/// `f(x) = (1 / (pi sqrt(1 - x^2))) * [c_0 + 2 sum_{n>=1} c_n T_n(x)]`
///
/// where `c_n = g_n mu_n` are the kernel-damped moments. Used as the naive
/// (non-DCT) reconstruction path and as the reference in DCT tests.
///
/// # Panics
/// Panics if `x` is outside `(-1, 1)` (the weight diverges at the ends).
pub fn series_eval(coeffs: &[f64], x: f64) -> f64 {
    assert!(x > -1.0 && x < 1.0, "series_eval requires x in (-1, 1), got {x}");
    let mut sum = 0.0;
    if coeffs.is_empty() {
        return 0.0;
    }
    // Clenshaw would be marginally faster; the direct recursion mirrors the
    // formula in the paper and is plenty stable for |x| < 1.
    let mut tm = 1.0;
    let mut tc = x;
    sum += coeffs[0];
    if coeffs.len() > 1 {
        sum += 2.0 * coeffs[1] * tc;
    }
    for c in coeffs.iter().skip(2) {
        let tn = 2.0 * x * tc - tm;
        tm = tc;
        tc = tn;
        sum += 2.0 * c * tc;
    }
    sum / (std::f64::consts::PI * (1.0 - x * x).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_orders_explicit() {
        for &x in &[-1.0, -0.3, 0.0, 0.5, 1.0] {
            assert_eq!(t(0, x), 1.0);
            assert_eq!(t(1, x), x);
            assert!((t(2, x) - (2.0 * x * x - 1.0)).abs() < 1e-15);
            assert!((t(3, x) - (4.0 * x * x * x - 3.0 * x)).abs() < 1e-14);
        }
    }

    #[test]
    fn recursion_matches_trig_definition() {
        for n in 0..64 {
            for i in 0..21 {
                let x = -1.0 + 0.1 * i as f64;
                let x = x.clamp(-1.0, 1.0);
                assert!(
                    (t(n, x) - t_trig(n, x)).abs() < 1e-9,
                    "n = {n}, x = {x}: {} vs {}",
                    t(n, x),
                    t_trig(n, x)
                );
            }
        }
    }

    #[test]
    fn t_all_matches_t() {
        let x = 0.37;
        let all = t_all(20, x);
        assert_eq!(all.len(), 20);
        for (n, &v) in all.iter().enumerate() {
            assert!((v - t(n, x)).abs() < 1e-12);
        }
        assert!(t_all(0, x).is_empty());
        assert_eq!(t_all(1, x), vec![1.0]);
    }

    #[test]
    fn endpoint_values() {
        // T_n(1) = 1, T_n(-1) = (-1)^n.
        for n in 0..50 {
            assert!((t(n, 1.0) - 1.0).abs() < 1e-12);
            let expect = if n % 2 == 0 { 1.0 } else { -1.0 };
            assert!((t(n, -1.0) - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn gauss_grid_are_chebyshev_zeros() {
        let k = 16;
        let grid = gauss_grid(k);
        assert_eq!(grid.len(), k);
        for &x in &grid {
            assert!(t(k, x).abs() < 1e-9, "T_k({x}) = {}", t(k, x));
            assert!((-1.0..=1.0).contains(&x));
        }
        // Decreasing order.
        for w in grid.windows(2) {
            assert!(w[0] > w[1]);
        }
    }

    #[test]
    fn series_of_delta_like_coeffs() {
        // The moments of rho(x) = delta(x - a) are mu_n = T_n(a). With all
        // coefficients undamped, the truncated series at x = a should peak.
        let a = 0.2;
        let coeffs: Vec<f64> = (0..128).map(|n| t(n, a)).collect();
        let at_peak = series_eval(&coeffs, a);
        let off_peak = series_eval(&coeffs, a + 0.4);
        assert!(at_peak > 10.0 * off_peak.abs(), "{at_peak} vs {off_peak}");
    }

    #[test]
    fn series_of_uniform_moments_is_constantish() {
        // rho(x) = 1/(pi sqrt(1-x^2)) has mu_0 = 1, mu_n = 0 for n >= 1.
        let mut coeffs = vec![0.0; 32];
        coeffs[0] = 1.0;
        let x = 0.3;
        let v = series_eval(&coeffs, x);
        let expect = 1.0 / (std::f64::consts::PI * (1.0 - x * x).sqrt());
        assert!((v - expect).abs() < 1e-14);
    }

    #[test]
    #[should_panic(expected = "requires x in (-1, 1)")]
    fn series_rejects_endpoints() {
        let _ = series_eval(&[1.0], 1.0);
    }

    #[test]
    #[should_panic(expected = "requires x in [-1, 1]")]
    fn trig_rejects_outside() {
        let _ = t_trig(3, 1.5);
    }
}
