//! Momentum-resolved spectral functions `A(k, omega)` — the ARPES
//! observable, computed from KPM moments of plane-wave states.
//!
//! For a lattice with real Hamiltonian, the spectral function at momentum
//! `k` is `A(k, omega) = sum_j |<k|j>|^2 delta(omega - E_j)`; its KPM
//! moments are `mu_n(k) = <k| T_n(H~) |k>`. A complex plane wave
//! `|k> = sum_x e^{ikx} |x> / sqrt(D)` splits into cosine and sine waves;
//! for a real symmetric `H`, `<k|T_n|k> = <c_k|T_n|c_k> + <s_k|T_n|s_k>`
//! (the cross terms cancel), so everything stays in real arithmetic.
//!
//! On a translation-invariant chain each `A(k, omega)` is a single smeared
//! delta at the band energy `E(k)` — the sharpest test of the whole KPM
//! stack, which the tests here exploit.

use crate::dos::{Dos, DosEstimator};
use crate::error::KpmError;
use crate::estimator::Estimator;
use crate::moments::{single_vector_moments, KpmParams, MomentStats, Recursion};
use crate::rescale::{rescale, Boundable};

/// The spectral function at one momentum.
#[derive(Debug, Clone)]
pub struct MomentumSpectrum {
    /// Momentum index `m` (wavevector `k = 2 pi m / L`).
    pub k_index: usize,
    /// The reconstructed `A(k, omega)` as a [`Dos`] (it is one: a
    /// positive, normalized spectral density).
    pub a: Dos,
}

impl MomentumSpectrum {
    /// The quasiparticle energy: the peak of `A(k, omega)`.
    pub fn peak(&self) -> f64 {
        self.a.peak_energy()
    }
}

/// Computes `A(k, omega)` on a 1D chain of `l` sites for the given
/// momentum indices (`k = 2 pi m / l`).
///
/// The operator must be the chain Hamiltonian (dimension `l`); site `x`
/// of the chain must map to index `x` (the convention of
/// `kpm_lattice::HypercubicLattice::chain`).
///
/// # Errors
/// Bounds/validation failures, or a momentum index `>= l`.
pub fn chain_spectral_function<A: Boundable + Sync>(
    op: &A,
    l: usize,
    k_indices: &[usize],
    params: &KpmParams,
) -> Result<Vec<MomentumSpectrum>, KpmError> {
    params.validate()?;
    if op.dim() != l {
        return Err(KpmError::InvalidParameter(format!(
            "operator dimension {} != chain length {l}",
            op.dim()
        )));
    }
    let bounds = crate::bounds::resolve(op, params.bounds)?;
    let rescaled = rescale(op, bounds, params.padding)?;
    let (a_plus, a_minus) = (rescaled.a_plus(), rescaled.a_minus());
    let estimator = DosEstimator::new(params.clone());

    let mut out = Vec::with_capacity(k_indices.len());
    for &m in k_indices {
        if m >= l {
            return Err(KpmError::InvalidParameter(format!(
                "momentum index {m} out of range for L = {l}"
            )));
        }
        let k = 2.0 * std::f64::consts::PI * m as f64 / l as f64;
        // Normalized cosine and sine waves.
        let mut c: Vec<f64> = (0..l).map(|x| (k * x as f64).cos()).collect();
        let mut s: Vec<f64> = (0..l).map(|x| (k * x as f64).sin()).collect();
        let norm = |v: &mut [f64]| {
            let n = kpm_linalg::vecops::norm2(v);
            if n > 0.0 {
                kpm_linalg::vecops::scale(1.0 / n, v);
                true
            } else {
                false
            }
        };
        let has_c = norm(&mut c);
        let has_s = norm(&mut s);

        // <k|T_n|k> = w_c <c|T_n|c> + w_s <s|T_n|s> with weights given by
        // the squared norms of the (unnormalized) components; for k = 0 or
        // pi the sine part vanishes.
        let mut mu = vec![0.0; params.num_moments];
        let mut weight_total = 0.0;
        for (vec, present) in [(&c, has_c), (&s, has_s)] {
            if !present {
                continue;
            }
            let m_part =
                single_vector_moments(&rescaled, vec, params.num_moments, Recursion::Plain);
            // Both components carry weight 1/2 except at k = 0, pi where
            // the surviving one carries full weight; using equal weights
            // over the present components reproduces that automatically
            // for translation-invariant chains.
            for (acc, v) in mu.iter_mut().zip(&m_part) {
                *acc += v;
            }
            weight_total += 1.0;
        }
        for v in mu.iter_mut() {
            *v /= weight_total;
        }
        let stats = MomentStats { std_err: vec![0.0; mu.len()], samples: 1, mean: mu };
        out.push(MomentumSpectrum {
            k_index: m,
            a: estimator.reconstruct(stats, a_plus, a_minus)?,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kpm_lattice::{Boundary, HypercubicLattice, OnSite, TightBinding};

    fn chain(l: usize) -> kpm_linalg::CsrMatrix {
        TightBinding::new(
            HypercubicLattice::chain(l, Boundary::Periodic),
            1.0,
            OnSite::Uniform(0.0),
        )
        .build_csr()
    }

    #[test]
    fn peaks_trace_the_cosine_band() {
        // E(k) = -2 cos k for the periodic chain.
        let l = 64;
        let h = chain(l);
        let params = KpmParams::new(256).with_grid_points(1024);
        let ks: Vec<usize> = vec![0, 8, 16, 24, 32];
        let spectra = chain_spectral_function(&h, l, &ks, &params).unwrap();
        for sp in &spectra {
            let k = 2.0 * std::f64::consts::PI * sp.k_index as f64 / l as f64;
            let expect = -2.0 * k.cos();
            assert!(
                (sp.peak() - expect).abs() < 0.08,
                "k index {}: peak {} vs E(k) {}",
                sp.k_index,
                sp.peak(),
                expect
            );
        }
    }

    #[test]
    fn spectral_weight_normalizes_to_one() {
        let l = 32;
        let h = chain(l);
        let params = KpmParams::new(128);
        let spectra = chain_spectral_function(&h, l, &[5], &params).unwrap();
        assert!((spectra[0].a.integrate() - 1.0).abs() < 0.02);
    }

    #[test]
    fn quasiparticle_peak_is_sharp_on_clean_chain() {
        // A(k, omega) for a clean chain is a single Jackson-smeared delta:
        // nearly all weight within a few kernel widths of the peak.
        let l = 48;
        let h = chain(l);
        let params = KpmParams::new(256).with_grid_points(1024);
        let sp = &chain_spectral_function(&h, l, &[7], &params).unwrap()[0];
        let peak = sp.peak();
        let width = 8.0 * std::f64::consts::PI * sp.a.a_minus / 256.0;
        let local = sp.a.integrate_range(peak - width, peak + width);
        assert!(local > 0.9, "weight near peak = {local}");
    }

    #[test]
    fn disorder_broadens_the_quasiparticle() {
        let l = 128;
        let width_of = |w: f64| {
            let onsite = if w == 0.0 {
                OnSite::Uniform(0.0)
            } else {
                OnSite::Disorder { width: w, seed: 9 }
            };
            let h = TightBinding::new(HypercubicLattice::chain(l, Boundary::Periodic), 1.0, onsite)
                .build_csr();
            let params = KpmParams::new(128).with_grid_points(512);
            let sp = &chain_spectral_function(&h, l, &[20], &params).unwrap()[0];
            // Inverse participation of the curve as a width proxy.
            let sum: f64 = sp.a.rho.iter().sum();
            let sum2: f64 = sp.a.rho.iter().map(|r| r * r).sum();
            sum * sum / sum2
        };
        let clean = width_of(0.0);
        let dirty = width_of(3.0);
        assert!(dirty > 1.5 * clean, "disorder must broaden: {clean} vs {dirty}");
    }

    #[test]
    fn invalid_inputs_rejected() {
        let h = chain(16);
        let params = KpmParams::new(32);
        assert!(chain_spectral_function(&h, 16, &[16], &params).is_err());
        assert!(chain_spectral_function(&h, 8, &[0], &params).is_err());
    }
}
