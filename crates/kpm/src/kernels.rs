//! Damping kernels `g_n` for truncated Chebyshev expansions.
//!
//! Truncating the expansion at `N` terms produces Gibbs oscillations; the
//! KPM multiplies the moments by kernel coefficients `g_n` chosen so that
//! the reconstruction converges uniformly (the paper's Eq. 6–7). The
//! Jackson kernel is the paper's (and the field's) default for densities of
//! states; the Lorentz kernel is the right choice for Green's functions;
//! Fejér and Dirichlet are included for comparison/ablation.
//!
//! Formulas follow Weiße et al., Rev. Mod. Phys. 78, 275 (2006), Sec. II.C.

use std::f64::consts::PI;

/// Which damping kernel to apply to the moments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KernelType {
    /// Jacobi-polynomial kernel family (Raikov–Beltukov,
    /// arXiv:2407.03328): the optimal positive kernel for the Jacobi
    /// weight `(1-x)^alpha (1+x)^beta`, built as the autocorrelation of
    /// the top eigenvector of the truncated Jacobi recurrence matrix. At
    /// `alpha = beta = 1/2` (Chebyshev-U weight) it reproduces the Jackson
    /// kernel exactly; other parameters trade endpoint vs. band-centre
    /// resolution.
    Jacobi {
        /// Weight exponent at `x = +1`; must be `> -1`.
        alpha: f64,
        /// Weight exponent at `x = -1`; must be `> -1`.
        beta: f64,
    },
    /// Jackson kernel — optimal (in the sup-norm sense) positive kernel;
    /// approximates a delta function by a near-Gaussian of width
    /// `pi / N`. The paper's choice for the DoS.
    Jackson,
    /// Lorentz kernel with resolution parameter `lambda` (typically 3–5);
    /// approximates a delta by a Lorentzian — the natural kernel for
    /// Green's functions because it preserves analyticity.
    Lorentz {
        /// Resolution parameter λ.
        lambda: f64,
    },
    /// Fejér kernel `g_n = 1 - n/N` — simple, positive, but wider than
    /// Jackson.
    Fejer,
    /// No damping (`g_n = 1`): the raw truncated series, exhibiting Gibbs
    /// oscillations. Included as the baseline the other kernels beat.
    Dirichlet,
}

impl KernelType {
    /// The damping coefficients `g_0 .. g_{n_moments - 1}`.
    ///
    /// # Panics
    /// Panics if `n_moments == 0` or a Lorentz `lambda <= 0`.
    pub fn coefficients(&self, n_moments: usize) -> Vec<f64> {
        assert!(n_moments > 0, "kernel needs at least one moment");
        let nf = n_moments as f64;
        match *self {
            KernelType::Jacobi { alpha, beta } => {
                assert!(
                    alpha > -1.0 && beta > -1.0,
                    "Jacobi kernel needs alpha > -1 and beta > -1"
                );
                jacobi_coefficients(n_moments, alpha, beta)
            }
            KernelType::Jackson => {
                // g_n = [(N - n + 1) cos(pi n / (N+1))
                //        + sin(pi n / (N+1)) cot(pi / (N+1))] / (N + 1)
                let np1 = nf + 1.0;
                let cot = 1.0 / (PI / np1).tan();
                (0..n_moments)
                    .map(|n| {
                        let a = PI * n as f64 / np1;
                        ((nf - n as f64 + 1.0) * a.cos() + a.sin() * cot) / np1
                    })
                    .collect()
            }
            KernelType::Lorentz { lambda } => {
                assert!(lambda > 0.0, "Lorentz kernel needs lambda > 0");
                (0..n_moments)
                    .map(|n| (lambda * (1.0 - n as f64 / nf)).sinh() / lambda.sinh())
                    .collect()
            }
            KernelType::Fejer => (0..n_moments).map(|n| 1.0 - n as f64 / nf).collect(),
            KernelType::Dirichlet => vec![1.0; n_moments],
        }
    }

    /// Applies the kernel to a moment vector, returning `g_n * mu_n`.
    ///
    /// # Panics
    /// Panics if `moments` is empty.
    pub fn damp(&self, moments: &[f64]) -> Vec<f64> {
        let g = self.coefficients(moments.len());
        g.iter().zip(moments).map(|(gn, mu)| gn * mu).collect()
    }

    /// Energy resolution (width of the smeared delta function) of this
    /// kernel at expansion order `n_moments`, on the rescaled `[-1, 1]`
    /// axis at band centre. Jackson: `pi / N`; Lorentz: `lambda / N`;
    /// Fejér/Dirichlet: `O(1/N)` (returned as `pi / N` and `1 / N`).
    pub fn resolution(&self, n_moments: usize) -> f64 {
        let nf = n_moments as f64;
        match *self {
            KernelType::Jacobi { .. } => PI / nf,
            KernelType::Jackson => PI / nf,
            KernelType::Lorentz { lambda } => lambda / nf,
            KernelType::Fejer => PI / nf,
            KernelType::Dirichlet => 1.0 / nf,
        }
    }
}

/// Jacobi kernel coefficients: `g_k` is the normalized autocorrelation of
/// the top eigenvector `w` of the order-`n` Jacobi recurrence matrix.
///
/// Monic Jacobi polynomials obey `x p_j = p_{j+1} + a_j p_j + b_j p_{j-1}`
/// with the Gautschi coefficients below; the symmetrized recurrence matrix
/// is tridiagonal with diagonal `a_j` and off-diagonal `sqrt(b_j)`. The
/// Raikov–Beltukov construction damps moment `k` by
/// `g_k = sum_m w_m w_{m+k} / sum_m w_m^2`, which maximizes the kernel's
/// weighted "peakedness" and guarantees positivity and `g_0 = 1`. For the
/// Chebyshev-U weight (`alpha = beta = 1/2`) the matrix has zero diagonal
/// and constant off-diagonal `1/2`, whose top eigenvector is
/// `w_m = sin((m+1) pi / (n+1))` — the classical Jackson kernel.
fn jacobi_coefficients(n: usize, alpha: f64, beta: f64) -> Vec<f64> {
    if n == 1 {
        return vec![1.0];
    }
    let mut diag = Vec::with_capacity(n);
    let mut off = Vec::with_capacity(n - 1);
    let s = alpha + beta;
    diag.push((beta - alpha) / (s + 2.0));
    for j in 1..n {
        let jf = j as f64;
        let t = 2.0 * jf + s;
        diag.push((beta * beta - alpha * alpha) / (t * (t + 2.0)));
        let b = if j == 1 {
            4.0 * (1.0 + alpha) * (1.0 + beta) / ((2.0 + s) * (2.0 + s) * (3.0 + s))
        } else {
            4.0 * jf * (jf + alpha) * (jf + beta) * (jf + s) / (t * t * (t + 1.0) * (t - 1.0))
        };
        off.push(b.sqrt());
    }
    let w = top_tridiag_eigenvector(&diag, &off);
    let norm: f64 = w.iter().map(|x| x * x).sum();
    (0..n).map(|k| w[..n - k].iter().zip(&w[k..]).map(|(a, b)| a * b).sum::<f64>() / norm).collect()
}

/// Top eigenvector of a symmetric tridiagonal matrix, via QL for the
/// extreme eigenvalue followed by inverse iteration (partially pivoted
/// tridiagonal solves) — `O(n)` per iteration, so large expansion orders
/// stay cheap.
fn top_tridiag_eigenvector(diag: &[f64], off: &[f64]) -> Vec<f64> {
    let n = diag.len();
    let lam = *kpm_linalg::eigen::tridiagonal_eigenvalues(diag, off)
        .expect("Jacobi recurrence matrix eigensolve cannot fail on finite input")
        .last()
        .expect("non-empty spectrum");
    let nf = n as f64;
    let mut v = vec![1.0 / nf.sqrt(); n];
    for _ in 0..4 {
        solve_shifted_tridiag(diag, off, lam, &mut v);
        let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        for x in &mut v {
            *x /= norm;
        }
    }
    // Off-diagonals are positive, so (a Perron argument after diagonal
    // shift) the top eigenvector has uniform sign; normalize it positive.
    let head = v.iter().cloned().fold(0.0, |acc: f64, x| if x.abs() > acc.abs() { x } else { acc });
    if head < 0.0 {
        for x in &mut v {
            *x = -*x;
        }
    }
    v
}

/// Solves `(T - shift I) x = rhs` in place for symmetric tridiagonal `T`
/// with Gaussian elimination and partial pivoting (one superdiagonal of
/// fill-in). Near-singular pivots are floored, which is exactly the
/// behaviour inverse iteration wants when the shift sits on an eigenvalue.
fn solve_shifted_tridiag(diag: &[f64], off: &[f64], shift: f64, x: &mut [f64]) {
    let n = diag.len();
    let mut d: Vec<f64> = diag.iter().map(|&v| v - shift).collect();
    let mut du1: Vec<f64> = off.to_vec();
    let mut du2: Vec<f64> = vec![0.0; n.saturating_sub(2)];
    let scale = diag.iter().chain(off).fold(1.0f64, |a, &v| a.max(v.abs()));
    let tiny = f64::EPSILON * scale;
    for i in 0..n - 1 {
        let sub = off[i];
        if sub.abs() > d[i].abs() {
            // Swap rows i and i+1.
            let (ri_d, ri_u1) = (d[i], du1[i]);
            let ri_u2 = if i + 2 < n { du2[i] } else { 0.0 };
            d[i] = sub;
            du1[i] = d[i + 1];
            let next_u1 = if i + 2 < n { du1[i + 1] } else { 0.0 };
            if i + 2 < n {
                du2[i] = next_u1;
            }
            let m = ri_d / d[i];
            d[i + 1] = ri_u1 - m * du1[i];
            if i + 2 < n {
                du1[i + 1] = ri_u2 - m * du2[i];
            }
            x.swap(i, i + 1);
            x[i + 1] -= m * x[i];
        } else {
            let p = if d[i].abs() <= tiny { tiny.copysign(d[i]) } else { d[i] };
            d[i] = p;
            let m = sub / p;
            d[i + 1] -= m * du1[i];
            if i + 2 < n {
                du1[i + 1] -= m * du2[i];
            }
            x[i + 1] -= m * x[i];
        }
    }
    for i in (0..n).rev() {
        let mut acc = x[i];
        if i + 1 < n {
            acc -= du1[i] * x[i + 1];
        }
        if i + 2 < n {
            acc -= du2[i] * x[i + 2];
        }
        let p = if d[i].abs() <= tiny { tiny.copysign(d[i]) } else { d[i] };
        x[i] = acc / p;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chebyshev;

    const KERNELS: [KernelType; 6] = [
        KernelType::Jackson,
        KernelType::Lorentz { lambda: 4.0 },
        KernelType::Fejer,
        KernelType::Dirichlet,
        KernelType::Jacobi { alpha: 0.5, beta: 0.5 },
        KernelType::Jacobi { alpha: 0.0, beta: 0.0 },
    ];

    #[test]
    fn g0_is_one_for_all_kernels() {
        for k in KERNELS {
            for n in [1usize, 2, 16, 257] {
                let g = k.coefficients(n);
                assert!((g[0] - 1.0).abs() < 1e-12, "{k:?} N={n}: g0 = {}", g[0]);
            }
        }
    }

    #[test]
    fn coefficients_decay_monotonically() {
        for k in KERNELS {
            let g = k.coefficients(64);
            for w in g.windows(2) {
                assert!(
                    w[1] <= w[0] + 1e-12,
                    "{k:?}: coefficients must be non-increasing ({} then {})",
                    w[0],
                    w[1]
                );
            }
        }
    }

    #[test]
    fn jackson_matches_closed_form_small_n() {
        // For N = 2: g_0 = 1, g_1 = [2 cos(pi/3) + sin(pi/3) cot(pi/3)] / 3
        //                        = [1 + cos(pi/3)] / 3 ... compute directly.
        let g = KernelType::Jackson.coefficients(2);
        let np1 = 3.0f64;
        let a = PI / np1;
        let expect = (2.0 * a.cos() + a.sin() / a.tan()) / np1;
        assert!((g[1] - expect).abs() < 1e-14);
    }

    #[test]
    fn jackson_last_coefficient_is_small() {
        let n = 128;
        let g = KernelType::Jackson.coefficients(n);
        assert!(g[n - 1] < 1e-3, "Jackson tail must vanish: {}", g[n - 1]);
        assert!(g[n - 1] > 0.0, "Jackson is a positive kernel");
    }

    #[test]
    fn jackson_reconstruction_is_nonnegative() {
        // Jackson is a positive kernel: the smeared delta must be >= 0
        // everywhere (up to rounding), unlike Dirichlet.
        let n = 64;
        let a = 0.3;
        let mu: Vec<f64> = (0..n).map(|k| chebyshev::t(k, a)).collect();
        let jackson = KernelType::Jackson.damp(&mu);
        let dirichlet = KernelType::Dirichlet.damp(&mu);
        let mut dirichlet_went_negative = false;
        for i in 1..200 {
            let x = -0.995 + 0.01 * i as f64;
            if x >= 1.0 {
                break;
            }
            let j = chebyshev::series_eval(&jackson, x);
            assert!(j > -1e-8, "Jackson went negative at {x}: {j}");
            if chebyshev::series_eval(&dirichlet, x) < -1e-3 {
                dirichlet_went_negative = true;
            }
        }
        assert!(dirichlet_went_negative, "Dirichlet should oscillate below zero");
    }

    #[test]
    fn jackson_delta_width_shrinks_with_n() {
        // Full width at half max of the smeared delta ~ pi/N.
        let a = 0.0;
        let width_at = |n: usize| {
            let mu: Vec<f64> = (0..n).map(|k| chebyshev::t(k, a)).collect();
            let damped = KernelType::Jackson.damp(&mu);
            let peak = chebyshev::series_eval(&damped, a);
            // Scan right for half-max crossing.
            let mut x = a;
            while chebyshev::series_eval(&damped, x) > peak / 2.0 {
                x += 1e-4;
            }
            2.0 * (x - a)
        };
        let w64 = width_at(64);
        let w128 = width_at(128);
        assert!(w128 < w64, "width must shrink: {w64} -> {w128}");
        assert!((w64 / w128 - 2.0).abs() < 0.3, "width ~ 1/N: ratio {}", w64 / w128);
    }

    #[test]
    fn jacobi_half_half_reproduces_jackson() {
        // alpha = beta = 1/2 is the Chebyshev-U weight: zero recurrence
        // diagonal, constant off-diagonal 1/2, top eigenvector
        // sin((m+1) pi / (N+1)) — the Jackson construction exactly.
        for n in [2usize, 3, 16, 64, 129] {
            let jac = KernelType::Jacobi { alpha: 0.5, beta: 0.5 }.coefficients(n);
            let jackson = KernelType::Jackson.coefficients(n);
            for (k, (a, b)) in jac.iter().zip(&jackson).enumerate() {
                assert!((a - b).abs() < 1e-8, "N={n} g_{k}: jacobi {a} vs jackson {b}");
            }
        }
    }

    #[test]
    fn jacobi_coefficients_positive_and_damping() {
        for (alpha, beta) in [(0.0, 0.0), (1.0, 1.0), (0.5, -0.5), (2.0, 0.0)] {
            let g = KernelType::Jacobi { alpha, beta }.coefficients(48);
            assert!((g[0] - 1.0).abs() < 1e-12, "({alpha},{beta}): g0 = {}", g[0]);
            for (k, &gk) in g.iter().enumerate() {
                assert!(gk > -1e-12 && gk <= 1.0 + 1e-12, "({alpha},{beta}) g_{k} = {gk}");
            }
            // The tail must be strongly damped relative to g_0.
            assert!(g[47] < 0.05, "({alpha},{beta}) tail g_47 = {}", g[47]);
        }
    }

    #[test]
    #[should_panic(expected = "alpha > -1")]
    fn jacobi_validates_parameters() {
        let _ = KernelType::Jacobi { alpha: -1.0, beta: 0.0 }.coefficients(4);
    }

    #[test]
    fn lorentz_matches_sinh_formula() {
        let lambda = 3.0;
        let n = 16;
        let g = KernelType::Lorentz { lambda }.coefficients(n);
        for (i, &gi) in g.iter().enumerate() {
            let expect = (lambda * (1.0 - i as f64 / n as f64)).sinh() / lambda.sinh();
            assert!((gi - expect).abs() < 1e-14);
        }
    }

    #[test]
    fn fejer_is_linear_ramp() {
        let g = KernelType::Fejer.coefficients(4);
        assert_eq!(g, vec![1.0, 0.75, 0.5, 0.25]);
    }

    #[test]
    fn damp_multiplies_componentwise() {
        let mu = vec![1.0, 2.0, 3.0, 4.0];
        let damped = KernelType::Fejer.damp(&mu);
        assert_eq!(damped, vec![1.0, 1.5, 1.5, 1.0]);
        let undamped = KernelType::Dirichlet.damp(&mu);
        assert_eq!(undamped, mu);
    }

    #[test]
    fn resolution_decreases_with_order() {
        for k in KERNELS {
            assert!(k.resolution(256) < k.resolution(64));
        }
    }

    #[test]
    #[should_panic(expected = "lambda > 0")]
    fn lorentz_validates_lambda() {
        let _ = KernelType::Lorentz { lambda: 0.0 }.coefficients(4);
    }

    #[test]
    #[should_panic(expected = "at least one moment")]
    fn zero_moments_rejected() {
        let _ = KernelType::Jackson.coefficients(0);
    }
}
