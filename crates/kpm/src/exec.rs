//! Execution planning: choosing *how* to parallelize a moments run.
//!
//! The stochastic estimator has two independent axes of parallelism:
//!
//! * **Realizations** — the `R * S` random-vector chunks are embarrassingly
//!   parallel (the historical behavior, gated on
//!   [`vecops::par_min_dim`]).
//! * **Rows** — within one realization block, the matrix dimension can be
//!   split into tiles whose fused Chebyshev steps run on the row-tiled
//!   engine ([`kpm_linalg::tiled`]), the CPU analogue of the paper's
//!   in-kernel GPU parallelism.
//!
//! [`plan`] picks a strategy from `(D, chunk count, thread budget)`,
//! replacing the old all-or-nothing `PAR_MIN_DIM` cliff: a lone fat job
//! (one realization chunk, large `D`) can now use every core, and the
//! flagship `D = 1000` lattice — below the realization-parallel threshold,
//! so previously fully serial — gets in-realization parallelism plus the
//! single-sweep fused step.
//!
//! # Determinism
//!
//! The *value family* of the result depends only on `(dim, policy,
//! tile rows)` — never on the thread budget or the chunk count:
//!
//! * [`ExecPolicy::Realizations`] (and [`ExecPlan::Serial`]) run the
//!   untiled blocked recursion — bitwise identical to the scalar path.
//! * [`ExecPolicy::Rows`] and [`ExecPolicy::Hybrid`] run the tiled engine,
//!   whose canonical tile-order reduction makes results bitwise independent
//!   of the thread count; Rows and Hybrid are bitwise identical to each
//!   other (they differ only in scheduling).
//! * [`ExecPolicy::Auto`] switches family on `dim` alone
//!   ([`ROW_MIN_DIM`]), so range-sliced shard workers and the single-process
//!   estimator still agree bitwise for every `dim`.

use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::OnceLock;

use kpm_linalg::vecops;

/// Smallest operator dimension at which the tiled row-parallel engine is
/// worth its barrier overhead under [`ExecPolicy::Auto`]. Below this even a
/// single tile is only a few microseconds of work per sweep.
pub const ROW_MIN_DIM: usize = 512;

/// User-facing execution-policy selector (the CLI's `--exec` flag).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecPolicy {
    /// Choose per run from `(D, chunks, threads)`: row/hybrid parallelism
    /// for `D >= ROW_MIN_DIM`, the historical realization-parallel behavior
    /// otherwise.
    #[default]
    Auto,
    /// Realization-level parallelism only (the historical engine; untiled,
    /// bitwise identical to the scalar recursion).
    Realizations,
    /// Row-tiled parallelism within each realization chunk; chunks run one
    /// after another.
    Rows,
    /// Split the thread budget across both axes: several realization chunks
    /// in flight, each on a share of the threads.
    Hybrid,
}

impl ExecPolicy {
    /// Canonical lower-case name (also the CLI token).
    pub fn as_str(&self) -> &'static str {
        match self {
            ExecPolicy::Auto => "auto",
            ExecPolicy::Realizations => "realizations",
            ExecPolicy::Rows => "rows",
            ExecPolicy::Hybrid => "hybrid",
        }
    }
}

impl std::fmt::Display for ExecPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for ExecPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(ExecPolicy::Auto),
            "realizations" => Ok(ExecPolicy::Realizations),
            "rows" => Ok(ExecPolicy::Rows),
            "hybrid" => Ok(ExecPolicy::Hybrid),
            other => Err(format!("unknown exec policy '{other}' (auto|realizations|rows|hybrid)")),
        }
    }
}

// Process-wide execution configuration. Serve workers, shard compute
// threads and the CLI all funnel through `stochastic_moments`, so a global
// (set once at startup) is the least invasive way to thread the choice
// everywhere without changing every signature.
static POLICY: AtomicU8 = AtomicU8::new(0); // discriminants of ExecPolicy
static THREAD_BUDGET: AtomicUsize = AtomicUsize::new(0); // 0 = auto-detect

fn policy_to_u8(p: ExecPolicy) -> u8 {
    match p {
        ExecPolicy::Auto => 0,
        ExecPolicy::Realizations => 1,
        ExecPolicy::Rows => 2,
        ExecPolicy::Hybrid => 3,
    }
}

/// Sets the process-wide execution policy (e.g. from `--exec`).
pub fn set_exec_policy(p: ExecPolicy) {
    POLICY.store(policy_to_u8(p), Ordering::Relaxed);
}

/// The current process-wide execution policy.
pub fn exec_policy() -> ExecPolicy {
    match POLICY.load(Ordering::Relaxed) {
        1 => ExecPolicy::Realizations,
        2 => ExecPolicy::Rows,
        3 => ExecPolicy::Hybrid,
        _ => ExecPolicy::Auto,
    }
}

/// Sets the process-wide thread budget (e.g. from `--threads`); `0` restores
/// auto-detection.
pub fn set_thread_budget(threads: usize) {
    THREAD_BUDGET.store(threads, Ordering::Relaxed);
}

/// The thread budget in effect: the explicit [`set_thread_budget`] value if
/// set, else `RAYON_NUM_THREADS` (read once), else the machine parallelism —
/// always capped at the machine parallelism, because oversubscribing the
/// barrier-synchronized tile engine can only add scheduling latency, never
/// throughput (and the results are bitwise identical either way).
pub fn effective_threads() -> usize {
    static CORES: OnceLock<usize> = OnceLock::new();
    let cores =
        *CORES.get_or_init(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1));
    let budget = THREAD_BUDGET.load(Ordering::Relaxed);
    if budget > 0 {
        return budget.min(cores);
    }
    static ENV: OnceLock<usize> = OnceLock::new();
    (*ENV.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&t| t > 0)
            .unwrap_or(cores)
    }))
    .min(cores)
}

/// The `KPM_TILE_ROWS` environment override, if set *and valid*. Read once;
/// `0`, empty, and non-numeric values are rejected with a one-line stderr
/// warning (via [`vecops::positive_env_override`]) and treated as unset.
pub fn env_tile_rows() -> Option<usize> {
    static CACHED: OnceLock<Option<usize>> = OnceLock::new();
    *CACHED.get_or_init(|| vecops::positive_env_override("KPM_TILE_ROWS"))
}

/// Tile height used by the row-parallel plans when no calibrated profile is
/// in play: `KPM_TILE_ROWS` (validated, read once) or
/// [`kpm_linalg::DEFAULT_TILE_ROWS`].
pub fn tile_rows() -> usize {
    resolve_tile_rows(None)
}

/// Resolves the tile height with the documented precedence:
/// **environment override > calibrated profile > built-in prior.** The
/// profile value is what the autotuner measured as fastest; an explicit
/// `KPM_TILE_ROWS` always wins over it (the operator said so), and the
/// [`kpm_linalg::DEFAULT_TILE_ROWS`] prior backs both.
pub fn resolve_tile_rows(profile: Option<usize>) -> usize {
    env_tile_rows().or(profile).unwrap_or(kpm_linalg::DEFAULT_TILE_ROWS)
}

/// Arithmetic precision of the moments recursion.
///
/// `F64` is the default and the only value family the determinism contract
/// covers. `MixedF32` stores the recursion vectors in f32 (rounding each
/// Chebyshev step to storage precision) while accumulating every moment dot
/// in f64 — the paper's single-precision bandwidth win, modeled on the CPU.
/// It is value-affecting and therefore strictly opt-in; the error-budget
/// test in `kpm/tests/exec_plans.rs` pins its deviation from the f64 path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MomentPrecision {
    /// Full f64 recursion (default).
    #[default]
    F64,
    /// f32 recursion state, f64 dot accumulation (opt-in).
    MixedF32,
}

impl MomentPrecision {
    /// Canonical lower-case name (also the CLI token).
    pub fn as_str(&self) -> &'static str {
        match self {
            MomentPrecision::F64 => "f64",
            MomentPrecision::MixedF32 => "mixed",
        }
    }
}

impl std::str::FromStr for MomentPrecision {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "f64" | "double" => Ok(MomentPrecision::F64),
            "mixed" | "mixed-f32" => Ok(MomentPrecision::MixedF32),
            other => Err(format!("unknown precision '{other}' (expected f64|mixed)")),
        }
    }
}

static PRECISION: AtomicU8 = AtomicU8::new(0);

/// Sets the process-wide moments precision (e.g. from `--precision`).
pub fn set_moments_precision(p: MomentPrecision) {
    PRECISION.store(p as u8, Ordering::Relaxed);
}

/// The moments precision in effect (default [`MomentPrecision::F64`]).
pub fn moments_precision() -> MomentPrecision {
    match PRECISION.load(Ordering::Relaxed) {
        1 => MomentPrecision::MixedF32,
        _ => MomentPrecision::F64,
    }
}

/// The concrete schedule [`plan`] resolved for one moments run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecPlan {
    /// Untiled recursion, chunks in sequence on the calling thread.
    Serial,
    /// Untiled recursion, chunks fanned out realization-parallel.
    Realizations,
    /// Tiled fused recursion inside each chunk; chunks in sequence.
    Rows {
        /// Worker threads per chunk.
        threads: usize,
        /// Tile height in rows.
        tile_rows: usize,
    },
    /// Tiled fused recursion inside each chunk, several chunks in flight.
    Hybrid {
        /// Realization chunks in flight at once.
        outer: usize,
        /// Worker threads inside each chunk.
        inner: usize,
        /// Tile height in rows.
        tile_rows: usize,
    },
}

impl ExecPlan {
    /// Canonical plan name for counters and trace labels.
    pub fn name(&self) -> &'static str {
        match self {
            ExecPlan::Serial => "serial",
            ExecPlan::Realizations => "realizations",
            ExecPlan::Rows { .. } => "rows",
            ExecPlan::Hybrid { .. } => "hybrid",
        }
    }

    /// Whether this plan runs the tiled engine (the tiled value family) as
    /// opposed to the untiled blocked recursion.
    pub fn is_tiled(&self) -> bool {
        matches!(self, ExecPlan::Rows { .. } | ExecPlan::Hybrid { .. })
    }
}

/// The historical dispatch: realization-parallel iff the dimension clears
/// [`vecops::par_min_dim`] and there is more than one chunk.
fn untiled(dim: usize, chunks: usize) -> ExecPlan {
    if vecops::use_parallel(dim) && chunks > 1 {
        ExecPlan::Realizations
    } else {
        ExecPlan::Serial
    }
}

/// Resolves the execution plan for a moments run over `chunks` realization
/// chunks of a `dim`-dimensional operator, using [`exec_policy`] /
/// [`effective_threads`] / [`tile_rows`].
///
/// The choice of value family (tiled vs untiled) is a pure function of
/// `(dim, policy, tile rows)`: under [`ExecPolicy::Auto`] the family
/// switches on `dim >= ROW_MIN_DIM` alone, so slicing the realization range
/// differently (shard workers!) or changing the thread budget can never
/// change a single bit of the result.
pub fn plan(dim: usize, chunks: usize) -> ExecPlan {
    plan_with(exec_policy(), dim, chunks, effective_threads(), tile_rows())
}

/// [`plan`], but consulting the calibrated profile store first.
///
/// Under [`ExecPolicy::Auto`] this looks up the measured [`crate::tune`]
/// profile for `(dim, model entries, chunks, threads)` and uses its plan
/// when one exists; the static heuristic in [`plan_with`] is demoted to the
/// cold-start prior. Any explicit `--exec` policy (non-`Auto`) bypasses the
/// store entirely — the operator's word beats the tuner's. Profiles only
/// ever tune *within* the value family `Auto` would pick for `dim` (the
/// store refuses family-crossing entries), so calibration can never change
/// a bit of the result.
pub fn plan_for(dim: usize, model_entries: usize, chunks: usize) -> ExecPlan {
    let policy = exec_policy();
    let threads = effective_threads();
    if policy == ExecPolicy::Auto {
        if let Some(plan) = crate::tune::calibrated_plan(dim, model_entries, chunks, threads) {
            return plan;
        }
    }
    plan_with(policy, dim, chunks, threads, tile_rows())
}

/// [`plan`] with every input explicit — the deterministic core, also used
/// directly by benches and tests.
pub fn plan_with(
    policy: ExecPolicy,
    dim: usize,
    chunks: usize,
    threads: usize,
    tile_rows: usize,
) -> ExecPlan {
    let threads = threads.max(1);
    match policy {
        ExecPolicy::Realizations => untiled(dim, chunks),
        ExecPolicy::Rows => ExecPlan::Rows { threads, tile_rows },
        ExecPolicy::Hybrid => {
            let outer = chunks.clamp(1, threads);
            ExecPlan::Hybrid { outer, inner: (threads / outer).max(1), tile_rows }
        }
        ExecPolicy::Auto => {
            if dim < ROW_MIN_DIM {
                // Tiny operators: tiles would be pure overhead; keep the
                // historical behavior (which also keeps small-D results
                // bitwise identical to previous releases).
                untiled(dim, chunks)
            } else if chunks >= 2 && threads >= 4 {
                let outer = chunks.clamp(1, threads / 2);
                ExecPlan::Hybrid { outer, inner: (threads / outer).max(1), tile_rows }
            } else {
                ExecPlan::Rows { threads, tile_rows }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TR: usize = 128;

    #[test]
    fn policy_parsing_roundtrips() {
        for p in [ExecPolicy::Auto, ExecPolicy::Realizations, ExecPolicy::Rows, ExecPolicy::Hybrid]
        {
            assert_eq!(p.as_str().parse::<ExecPolicy>().unwrap(), p);
        }
        assert!("gpu".parse::<ExecPolicy>().is_err());
    }

    #[test]
    fn realizations_policy_reproduces_historical_dispatch() {
        // Small D or a single chunk: serial. Large D with chunks: parallel.
        assert_eq!(plan_with(ExecPolicy::Realizations, 1000, 8, 8, TR), ExecPlan::Serial);
        assert_eq!(plan_with(ExecPolicy::Realizations, 1 << 20, 1, 8, TR), ExecPlan::Serial);
        assert_eq!(plan_with(ExecPolicy::Realizations, 1 << 20, 8, 8, TR), ExecPlan::Realizations);
    }

    #[test]
    fn auto_keeps_tiny_operators_on_the_historical_path() {
        assert_eq!(plan_with(ExecPolicy::Auto, 256, 8, 8, TR), ExecPlan::Serial);
    }

    #[test]
    fn auto_rows_for_single_fat_chunk() {
        assert_eq!(
            plan_with(ExecPolicy::Auto, 110_592, 1, 8, TR),
            ExecPlan::Rows { threads: 8, tile_rows: TR }
        );
    }

    #[test]
    fn auto_hybrid_splits_the_budget() {
        let plan = plan_with(ExecPolicy::Auto, 1000, 10, 8, TR);
        match plan {
            ExecPlan::Hybrid { outer, inner, tile_rows } => {
                assert_eq!(outer, 4);
                assert_eq!(inner, 2);
                assert_eq!(tile_rows, TR);
                assert!(outer * inner <= 8);
            }
            other => panic!("expected hybrid, got {other:?}"),
        }
    }

    #[test]
    fn auto_rows_when_threads_too_few_to_split() {
        assert_eq!(
            plan_with(ExecPolicy::Auto, 1000, 10, 2, TR),
            ExecPlan::Rows { threads: 2, tile_rows: TR }
        );
    }

    #[test]
    fn family_is_independent_of_chunks_and_threads() {
        // The tiled-vs-untiled family for a given (policy, dim) must not
        // change with chunk count or thread budget — shard range-slicing
        // bitwise contracts rest on this.
        for policy in
            [ExecPolicy::Auto, ExecPolicy::Realizations, ExecPolicy::Rows, ExecPolicy::Hybrid]
        {
            for dim in [4, 256, 512, 1000, 1 << 20] {
                let family = plan_with(policy, dim, 1, 1, TR).is_tiled();
                for chunks in [1, 2, 7, 64] {
                    for threads in [1, 2, 8, 32] {
                        assert_eq!(
                            plan_with(policy, dim, chunks, threads, TR).is_tiled(),
                            family,
                            "{policy} dim={dim} chunks={chunks} threads={threads}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn plan_names_are_stable() {
        assert_eq!(ExecPlan::Serial.name(), "serial");
        assert_eq!(ExecPlan::Realizations.name(), "realizations");
        assert_eq!(ExecPlan::Rows { threads: 2, tile_rows: TR }.name(), "rows");
        assert_eq!(ExecPlan::Hybrid { outer: 2, inner: 2, tile_rows: TR }.name(), "hybrid");
        assert!(!ExecPlan::Serial.is_tiled());
        assert!(ExecPlan::Rows { threads: 1, tile_rows: TR }.is_tiled());
    }
}
