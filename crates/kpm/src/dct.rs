//! KPM reconstruction sums as a DCT-III.
//!
//! Evaluating the damped series on the Chebyshev–Gauss grid
//! `x_k = cos(pi (k + 1/2) / K)` requires
//!
//! ```text
//! S_k = c_0 + 2 sum_{n=1}^{N-1} c_n cos(pi n (k + 1/2) / K),   k = 0..K-1
//! ```
//!
//! which is exactly a type-III discrete cosine transform of the
//! (zero-padded) coefficient vector. For power-of-two `K` it is computed
//! through a single complex FFT of length `2K`; other lengths fall back to
//! the naive `O(K N)` sum.

use crate::complex::Complex64;
use crate::fft::{fft, Direction};

/// Evaluates the KPM reconstruction sum `S_k` above for `k = 0..grid_len`.
///
/// `coeffs` holds `c_0 .. c_{N-1}` (kernel-damped moments); `N` may be
/// smaller than `grid_len` (the usual case: reconstruct on a finer grid
/// than the moment count) or larger (extra coefficients beyond the grid's
/// resolving power are still summed, naively or via padding).
///
/// # Panics
/// Panics if `grid_len == 0` or `coeffs` is empty.
pub fn reconstruction_sums(coeffs: &[f64], grid_len: usize) -> Vec<f64> {
    assert!(grid_len > 0, "grid must be nonempty");
    assert!(!coeffs.is_empty(), "coefficients must be nonempty");
    if grid_len.is_power_of_two() && coeffs.len() <= grid_len {
        dct3_fft(coeffs, grid_len)
    } else {
        dct3_naive(coeffs, grid_len)
    }
}

/// Naive `O(K N)` evaluation — reference path and fallback.
pub fn dct3_naive(coeffs: &[f64], grid_len: usize) -> Vec<f64> {
    let k_f = grid_len as f64;
    (0..grid_len)
        .map(|k| {
            let phase = std::f64::consts::PI * (k as f64 + 0.5) / k_f;
            let mut s = coeffs[0];
            for (n, &c) in coeffs.iter().enumerate().skip(1) {
                s += 2.0 * c * (n as f64 * phase).cos();
            }
            s
        })
        .collect()
}

/// FFT-backed evaluation for power-of-two `grid_len >= coeffs.len()`.
///
/// Derivation: with `a_0 = c_0`, `a_n = 2 c_n`,
/// `S_k = Re[ sum_n a_n e^{i pi n / (2K)} e^{2 pi i n k / (2K)} ]`,
/// i.e. the first `K` outputs of a `2K`-point inverse-sign DFT of
/// `b_n = a_n e^{i pi n / (2K)}` zero-padded to `2K`.
fn dct3_fft(coeffs: &[f64], grid_len: usize) -> Vec<f64> {
    let two_k = 2 * grid_len;
    let mut buf = vec![Complex64::ZERO; two_k];
    for (n, &c) in coeffs.iter().enumerate() {
        let a = if n == 0 { c } else { 2.0 * c };
        let phase = std::f64::consts::PI * n as f64 / two_k as f64;
        buf[n] = Complex64::cis(phase).scale(a);
    }
    // Positive-exponent transform = Inverse direction; undo its 1/N.
    fft(Direction::Inverse, &mut buf);
    buf[..grid_len].iter().map(|z| z.re * two_k as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chebyshev;

    #[test]
    fn fft_path_matches_naive() {
        let coeffs: Vec<f64> =
            (0..48).map(|n| ((n as f64) * 0.37).sin() / (n as f64 + 1.0)).collect();
        for k in [64usize, 128, 256] {
            let fast = reconstruction_sums(&coeffs, k);
            let slow = dct3_naive(&coeffs, k);
            for (a, b) in fast.iter().zip(&slow) {
                assert!((a - b).abs() < 1e-10, "K = {k}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn non_power_of_two_grid_works() {
        let coeffs = vec![1.0, 0.5, 0.25];
        let out = reconstruction_sums(&coeffs, 100);
        assert_eq!(out.len(), 100);
        let slow = dct3_naive(&coeffs, 100);
        assert_eq!(out, slow);
    }

    #[test]
    fn matches_series_eval_on_gauss_grid() {
        // series_eval divides by the Chebyshev weight; the DCT sum is the
        // bracketed part only. Cross-check on the grid.
        let coeffs: Vec<f64> =
            (0..32).map(|n| chebyshev::t(n, 0.4) * 0.9f64.powi(n as i32)).collect();
        let k = 64;
        let grid = chebyshev::gauss_grid(k);
        let sums = reconstruction_sums(&coeffs, k);
        for (j, (&x, &s)) in grid.iter().zip(&sums).enumerate() {
            let weight = std::f64::consts::PI * (1.0 - x * x).sqrt();
            let expect = chebyshev::series_eval(&coeffs, x) * weight;
            assert!((s - expect).abs() < 1e-9, "j = {j}: {s} vs {expect}");
        }
    }

    #[test]
    fn constant_coefficient_gives_constant_sums() {
        // Only c_0 nonzero: S_k = c_0 for every k.
        let out = reconstruction_sums(&[3.5], 32);
        assert!(out.iter().all(|&v| (v - 3.5).abs() < 1e-12));
    }

    #[test]
    fn single_harmonic() {
        // c_1 = 1 only: S_k = 2 cos(pi (k+1/2) / K).
        let k = 16;
        let out = reconstruction_sums(&[0.0, 1.0], k);
        for (j, &v) in out.iter().enumerate() {
            let expect = 2.0 * (std::f64::consts::PI * (j as f64 + 0.5) / k as f64).cos();
            assert!((v - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn orthogonality_recovers_coefficients() {
        // DCT-III followed by the matching DCT-II analysis recovers c_n:
        // c_n = (1/K) sum_k S_k cos(pi n (k+1/2)/K).
        let coeffs: Vec<f64> = vec![0.7, -0.3, 0.11, 0.05, -0.02];
        let k = 64;
        let sums = reconstruction_sums(&coeffs, k);
        for (n, &c) in coeffs.iter().enumerate() {
            let recovered: f64 = sums
                .iter()
                .enumerate()
                .map(|(j, &s)| {
                    s * (std::f64::consts::PI * n as f64 * (j as f64 + 0.5) / k as f64).cos()
                })
                .sum::<f64>()
                / k as f64;
            assert!((recovered - c).abs() < 1e-10, "n = {n}: {recovered} vs {c}");
        }
    }

    #[test]
    #[should_panic(expected = "grid must be nonempty")]
    fn zero_grid_rejected() {
        let _ = reconstruction_sums(&[1.0], 0);
    }
}
