//! The Kernel Polynomial Method — core library.
//!
//! Implements the full method of the paper (Zhang et al., 2011, Sec. II),
//! which in turn follows Weiße, Wellein, Alvermann & Fehske, *The kernel
//! polynomial method*, Rev. Mod. Phys. 78, 275 (2006):
//!
//! 1. **Rescaling** ([`rescale`]) — map the spectrum of `H` into `[-1, 1]`
//!    with Gershgorin bounds (the paper's Eq. 8–9) or a tighter Lanczos
//!    estimate.
//! 2. **Moments** ([`moments`]) — `mu_n = Tr[T_n(H~)]/D`, estimated
//!    stochastically with `S * R` random vectors (Eq. 13–19) through the
//!    three-term Chebyshev recursion; both the paper's plain recursion and
//!    the moment-doubling optimization are provided.
//! 3. **Kernel damping** ([`kernels`]) — Jackson (the paper's choice),
//!    Lorentz, Fejér, and Dirichlet kernels `g_n` against Gibbs
//!    oscillations.
//! 4. **Reconstruction** ([`dos`], [`dct`], [`fft`]) — evaluate the damped
//!    Chebyshev series on the Chebyshev–Gauss grid with an FFT-backed
//!    DCT-III, yielding the density of states (Eq. 6/10).
//!
//! Beyond the paper's DoS pipeline the crate provides local densities of
//! states ([`ldos`]), retarded Green's functions ([`green`]), Kubo
//! conductivities ([`kubo`]), exact-moment references for validation
//! ([`moments::exact_moments`]), and CPU cost accounting ([`workload`])
//! used by the benchmark harness.
//!
//! All four spectral workloads implement the shared [`Estimator`] trait
//! ([`estimator`]), whose `compute` / `compute_with_bounds` / `reconstruct`
//! methods carry the per-phase [`obs`] spans (`kpm.rescale`,
//! `kpm.moments`, `kpm.reconstruct`) that `kpm <cmd> --trace` reports.
//!
//! # Quickstart
//!
//! ```
//! use kpm::prelude::*;
//! use kpm_linalg::DenseMatrix;
//!
//! // A small symmetric matrix...
//! let h = DenseMatrix::from_diag(&[-1.0, -0.25, 0.25, 1.0]);
//! // ...and a DoS estimate from 64 Chebyshev moments.
//! let params = KpmParams::new(64).with_random_vectors(8, 4);
//! let dos = DosEstimator::new(params).compute(&h).unwrap();
//! assert!((dos.integrate() - 1.0).abs() < 0.05); // DoS integrates to ~1
//! ```

pub mod bessel;
pub mod bounds;
pub mod chebyshev;
pub mod complex;
pub mod dct;
pub mod device;
pub mod dos;
pub mod error;
pub mod estimator;
pub mod exec;
pub mod fft;
pub mod funcapply;
pub mod green;
pub mod kernels;
pub mod kubo;
pub mod ldos;
pub mod moments;
pub mod propagate;
pub mod random;
pub mod rescale;
pub mod spectral;
pub mod thermal;
pub mod tune;
pub mod workload;

pub use bounds::{
    lanczos_contained, moments_for_resolution, BoundsProvider, OpKeyScope, DEFAULT_LANCZOS_STEPS,
};
pub use device::{Device, DeviceClock, DeviceOp, DeviceRun, DeviceSpec, HostDevice, SimDevice};
pub use dos::{Dos, DosEstimator};
pub use error::KpmError;
pub use estimator::Estimator;
pub use exec::{ExecPlan, ExecPolicy, MomentPrecision};
pub use green::{GreenEstimator, GreensFunction};
pub use kernels::KernelType;
pub use kubo::{Conductivity, DoubleMoments, KuboEstimator};
pub use ldos::LdosEstimator;
pub use moments::{shard_plan, KpmParams, MomentStats, Recursion};
pub use random::Distribution;
pub use rescale::BoundsMethod;
pub use tune::{ensure_profile, ExecProfile, ProbeShape, ProfileStore};

/// Re-export of the observability layer so downstream crates (and
/// applications) can open spans and read counters without a separate
/// dependency on `kpm-obs`.
pub use kpm_obs as obs;

/// Convenient glob-import surface.
///
/// Downstream crates (`kpm-stream`, `kpm-serve`, the CLI) import this
/// instead of deep module paths; it covers the [`Estimator`] workloads, the
/// pipeline primitives they are built from, and the tracing handle.
pub mod prelude {
    pub use crate::bounds::{
        lanczos_contained, moments_for_resolution, BoundsProvider, OpKeyScope,
        DEFAULT_LANCZOS_STEPS,
    };
    pub use crate::device::{
        Device, DeviceCaps, DeviceClock, DeviceOp, DeviceRun, DeviceSpec, HostDevice, SimDevice,
    };
    pub use crate::dos::{Dos, DosEstimator};
    pub use crate::error::KpmError;
    pub use crate::estimator::Estimator;
    pub use crate::exec::{
        exec_policy, moments_precision, set_exec_policy, set_moments_precision, set_thread_budget,
        ExecPlan, ExecPolicy, MomentPrecision,
    };
    pub use crate::green::{GreenEstimator, GreensFunction};
    pub use crate::kernels::KernelType;
    pub use crate::kubo::{Conductivity, DoubleMoments, KuboEstimator};
    pub use crate::ldos::LdosEstimator;
    pub use crate::moments::{
        block_vector_moments, block_vector_moments_mixed, per_realization_moments,
        realization_chunk_count, shard_plan, single_vector_moments, stochastic_moments, KpmParams,
        MomentStats, Recursion,
    };
    pub use crate::random::{realization_stream, Distribution};
    pub use crate::rescale::{rescale, Boundable, BoundsMethod};
    pub use crate::tune::{
        ensure_profile, set_profile_dir, set_tuning_enabled, ExecProfile, ProbeShape,
    };
    pub use kpm_linalg::gershgorin::SpectralBounds;
    pub use kpm_linalg::{BlockOp, LinearOp, TiledOp};
    pub use kpm_obs::TraceHandle;
}
