//! Density-of-states estimation — the paper's end-to-end pipeline.
//!
//! `rho(omega) = (1/D) sum_k delta(omega - E_k)` (Eq. 10) is reconstructed
//! from kernel-damped Chebyshev moments on the Chebyshev–Gauss grid and
//! mapped back to the original energy axis through the inverse of the
//! rescaling (Eq. 12). The reconstruction is exact Gauss–Chebyshev
//! quadrature, so `integrate()` returns `mu_0` up to kernel damping — i.e.
//! ~1 for a true DoS.

use crate::chebyshev;
use crate::dct;
use crate::error::KpmError;
use crate::estimator::Estimator;
use crate::moments::{stochastic_moments, KpmParams, MomentStats};
use kpm_linalg::tiled::TiledOp;

/// A reconstructed density of states.
#[derive(Debug, Clone)]
pub struct Dos {
    /// Energies on the *original* (unscaled) axis, ascending.
    pub energies: Vec<f64>,
    /// Density values `rho(energies[i])`, normalized so that the full
    /// integral is `~ mu_0 = 1`.
    pub rho: Vec<f64>,
    /// The raw (undamped) moment statistics behind this reconstruction.
    pub moments: MomentStats,
    /// Rescaling centre `a_+` used (Eq. 9).
    pub a_plus: f64,
    /// Rescaling half-width `a_-` used (Eq. 9).
    pub a_minus: f64,
    /// The bare reconstruction sums `S_k` on the Chebyshev grid (kept for
    /// exact quadrature), in grid order (descending `x`).
    series_sums: Vec<f64>,
}

impl Dos {
    /// Exact Gauss–Chebyshev integral of the reconstructed density over the
    /// whole band. For an exact DoS this is `g_0 mu_0 = 1`.
    pub fn integrate(&self) -> f64 {
        self.series_sums.iter().sum::<f64>() / self.series_sums.len() as f64
    }

    /// Trapezoid integral of the density between `lo` and `hi` on the
    /// original energy axis (clipped to the reconstructed band).
    pub fn integrate_range(&self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "integration range inverted");
        let mut acc = 0.0;
        for w in self.energies.windows(2) {
            let (e0, e1) = (w[0], w[1]);
            let i = self.energies.iter().position(|&e| e == e0).expect("window start");
            let (r0, r1) = (self.rho[i], self.rho[i + 1]);
            let a = e0.max(lo);
            let b = e1.min(hi);
            if a < b {
                // Linear interpolation of rho at the clipped endpoints.
                let f = |e: f64| r0 + (r1 - r0) * (e - e0) / (e1 - e0);
                acc += 0.5 * (f(a) + f(b)) * (b - a);
            }
        }
        acc
    }

    /// Linear interpolation of the density at energy `omega`; `None`
    /// outside the reconstructed band.
    pub fn value_at(&self, omega: f64) -> Option<f64> {
        let first = *self.energies.first()?;
        let last = *self.energies.last()?;
        if omega < first || omega > last {
            return None;
        }
        let idx = match self.energies.binary_search_by(|e| e.total_cmp(&omega)) {
            Ok(i) => return Some(self.rho[i]),
            Err(i) => i,
        };
        let (e0, e1) = (self.energies[idx - 1], self.energies[idx]);
        let (r0, r1) = (self.rho[idx - 1], self.rho[idx]);
        Some(r0 + (r1 - r0) * (omega - e0) / (e1 - e0))
    }

    /// Energy of the maximum of the reconstructed density.
    pub fn peak_energy(&self) -> f64 {
        let (i, _) =
            self.rho.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).expect("nonempty DoS");
        self.energies[i]
    }

    /// Number of grid points.
    pub fn len(&self) -> usize {
        self.energies.len()
    }

    /// `true` if empty (never produced by the estimator).
    pub fn is_empty(&self) -> bool {
        self.energies.is_empty()
    }
}

/// End-to-end DoS estimator: bounds → rescale → stochastic moments →
/// kernel damping → DCT reconstruction.
#[derive(Debug, Clone)]
pub struct DosEstimator {
    params: KpmParams,
}

impl DosEstimator {
    /// Creates an estimator with the given parameters.
    pub fn new(params: KpmParams) -> Self {
        Self { params }
    }

    /// The parameter set.
    pub fn params(&self) -> &KpmParams {
        &self.params
    }
}

/// Kernel damping + DCT reconstruction of a density on the original energy
/// axis — shared by the DoS and LDoS estimators.
pub(crate) fn reconstruct_density(
    params: &KpmParams,
    moments: MomentStats,
    a_plus: f64,
    a_minus: f64,
) -> Dos {
    let _span = kpm_obs::span("kpm.reconstruct");
    let damped = params.kernel.damp(&moments.mean);
    let k = params.grid_points;
    let sums = dct::reconstruction_sums(&damped, k);
    let grid = chebyshev::gauss_grid(k);
    // rho~(x) = S(x) / (pi sqrt(1 - x^2)); rho(omega) = rho~(x)/a_-.
    // Grid is descending in x; reverse for ascending energies.
    let mut energies = Vec::with_capacity(k);
    let mut rho = Vec::with_capacity(k);
    for j in (0..k).rev() {
        let x = grid[j];
        let weight = std::f64::consts::PI * (1.0 - x * x).sqrt();
        energies.push(a_minus * x + a_plus);
        rho.push(sums[j] / (weight * a_minus));
    }
    Dos { energies, rho, moments, a_plus, a_minus, series_sums: sums }
}

impl Estimator for DosEstimator {
    type Moments = MomentStats;
    type Output = Dos;

    fn params(&self) -> &KpmParams {
        &self.params
    }

    /// Stochastic trace moments `mu_n = Tr[T_n]/D` (Eq. 5) of the rescaled
    /// operator.
    fn moments<A: TiledOp + Sync>(&self, op: &A) -> Result<MomentStats, KpmError> {
        self.params.validate()?;
        Ok(stochastic_moments(op, &self.params))
    }

    /// Reconstructs a [`Dos`] from externally computed moments (e.g. the
    /// GPU engine's or the serve cache's) and the rescaling coefficients
    /// that produced them.
    fn reconstruct(
        &self,
        moments: MomentStats,
        a_plus: f64,
        a_minus: f64,
    ) -> Result<Dos, KpmError> {
        Ok(reconstruct_density(&self.params, moments, a_plus, a_minus))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::KernelType;
    use kpm_linalg::gershgorin::SpectralBounds;
    use kpm_linalg::op::DiagonalOp;
    use kpm_linalg::DenseMatrix;

    fn flat_band_op(d: usize, lo: f64, hi: f64) -> (DiagonalOp, Vec<f64>) {
        let eigs: Vec<f64> = (0..d).map(|i| lo + (hi - lo) * i as f64 / (d - 1) as f64).collect();
        (DiagonalOp::new(eigs.clone()), eigs)
    }

    fn default_estimator(n: usize) -> DosEstimator {
        DosEstimator::new(KpmParams::new(n).with_random_vectors(16, 4).with_seed(3))
    }

    #[test]
    fn dos_integrates_to_one() {
        let (op, _) = flat_band_op(200, -3.0, 5.0);
        let est = default_estimator(64);
        let dos = est.compute_with_bounds(&op, SpectralBounds::new(-3.0, 5.0)).unwrap();
        assert!((dos.integrate() - 1.0).abs() < 0.02, "integral = {}", dos.integrate());
    }

    #[test]
    fn energies_cover_original_axis_ascending() {
        let (op, _) = flat_band_op(100, -2.0, 2.0);
        let dos =
            default_estimator(32).compute_with_bounds(&op, SpectralBounds::new(-2.0, 2.0)).unwrap();
        assert!(dos.energies.windows(2).all(|w| w[0] < w[1]));
        assert!(*dos.energies.first().unwrap() > -2.1);
        assert!(*dos.energies.last().unwrap() < 2.1);
        assert!(!dos.is_empty());
        assert_eq!(dos.len(), dos.rho.len());
    }

    #[test]
    fn flat_band_gives_flat_density() {
        // Uniform spectrum on [-1, 1] (with padding) -> rho ~ 1/width in the
        // interior.
        let (op, _) = flat_band_op(400, -1.0, 1.0);
        let dos = default_estimator(128)
            .compute_with_bounds(&op, SpectralBounds::new(-1.0, 1.0))
            .unwrap();
        let mid = dos.value_at(0.0).unwrap();
        let q1 = dos.value_at(-0.5).unwrap();
        let q3 = dos.value_at(0.5).unwrap();
        let expect = 0.5; // 1 / width
        for v in [mid, q1, q3] {
            assert!((v - expect).abs() < 0.06, "rho = {v}, expected ~{expect}");
        }
    }

    #[test]
    fn two_level_system_peaks_at_levels() {
        // Spectrum {-1, +1} (100 copies each): two peaks.
        let eigs: Vec<f64> = (0..200).map(|i| if i < 100 { -1.0 } else { 1.0 }).collect();
        let op = DiagonalOp::new(eigs);
        let est = default_estimator(128);
        let dos = est.compute_with_bounds(&op, SpectralBounds::new(-1.0, 1.0)).unwrap();
        // Peaks near +-1 (inside because of padding), valley at 0.
        let peak = dos.peak_energy();
        assert!(peak.abs() > 0.8, "peak at {peak}");
        let valley = dos.value_at(0.0).unwrap();
        let shoulder = dos.value_at(peak).unwrap();
        assert!(shoulder > 5.0 * valley.max(1e-6), "{shoulder} vs {valley}");
    }

    #[test]
    fn matches_exact_diagonalization_histogram() {
        // Dense symmetric matrix, D = 64: compare KPM rho against the exact
        // spectrum binned with the same resolution.
        let d = 64;
        let h = kpm_lattice::dense_random_symmetric(d, 1.0, 21);
        let eig = kpm_linalg::eigen::jacobi_eigenvalues(&h).unwrap();
        let est = DosEstimator::new(KpmParams::new(64).with_random_vectors(32, 8).with_seed(5));
        let dos = est.compute(&h).unwrap();
        assert!((dos.integrate() - 1.0).abs() < 0.03);
        // Fraction of states below 0 must match.
        let below_exact = eig.iter().filter(|&&e| e < 0.0).count() as f64 / d as f64;
        let lo = dos.energies[0];
        let below_kpm = dos.integrate_range(lo, 0.0);
        assert!((below_exact - below_kpm).abs() < 0.08, "{below_exact} vs {below_kpm}");
    }

    #[test]
    fn value_at_outside_band_is_none() {
        let (op, _) = flat_band_op(50, -1.0, 1.0);
        let dos =
            default_estimator(16).compute_with_bounds(&op, SpectralBounds::new(-1.0, 1.0)).unwrap();
        assert!(dos.value_at(5.0).is_none());
        assert!(dos.value_at(-5.0).is_none());
        assert!(dos.value_at(0.0).is_some());
    }

    #[test]
    fn higher_n_sharpens_two_level_peaks() {
        // The paper's Fig. 6 claim: N = 512 resolves more structure than
        // N = 256. Measure peak height of a delta-like level.
        let eigs = vec![0.5; 32];
        let op = DiagonalOp::new(eigs);
        let bounds = SpectralBounds::new(-1.0, 1.0);
        let peak_height = |n: usize| {
            let est = DosEstimator::new(KpmParams::new(n).with_random_vectors(4, 2));
            let dos = est.compute_with_bounds(&op, bounds).unwrap();
            dos.value_at(0.5).unwrap()
        };
        let h256 = peak_height(256);
        let h512 = peak_height(512);
        assert!(h512 > 1.5 * h256, "N=512 peak {h512} vs N=256 peak {h256}");
    }

    #[test]
    fn dirichlet_oscillates_jackson_does_not() {
        let eigs = vec![0.0; 16];
        let op = DiagonalOp::new(eigs);
        let bounds = SpectralBounds::new(-1.0, 1.0);
        let min_rho = |kernel: KernelType| {
            let est =
                DosEstimator::new(KpmParams::new(64).with_random_vectors(4, 1).with_kernel(kernel));
            let dos = est.compute_with_bounds(&op, bounds).unwrap();
            dos.rho.iter().fold(f64::INFINITY, |m, &v| m.min(v))
        };
        assert!(min_rho(KernelType::Jackson) > -1e-6, "Jackson must stay nonnegative");
        assert!(min_rho(KernelType::Dirichlet) < -1e-3, "Dirichlet must undershoot");
    }

    #[test]
    fn integrate_range_sums_to_total() {
        let (op, _) = flat_band_op(100, -2.0, 2.0);
        let dos =
            default_estimator(64).compute_with_bounds(&op, SpectralBounds::new(-2.0, 2.0)).unwrap();
        let lo = dos.energies[0];
        let hi = *dos.energies.last().unwrap();
        let total = dos.integrate_range(lo, hi);
        let left = dos.integrate_range(lo, 0.0);
        let right = dos.integrate_range(0.0, hi);
        assert!((left + right - total).abs() < 1e-10);
        assert!((total - dos.integrate()).abs() < 0.02);
    }

    #[test]
    fn gershgorin_pipeline_on_dense_matrix() {
        let h = DenseMatrix::from_fn(32, 32, |i, j| if i.abs_diff(j) == 1 { -1.0 } else { 0.0 });
        let dos = default_estimator(48).compute(&h).unwrap();
        // Chain DoS is symmetric: peak density at band edges, min at centre
        // is still positive; integral ~ 1.
        assert!((dos.integrate() - 1.0).abs() < 0.05);
    }
}
