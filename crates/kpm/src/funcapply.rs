//! Chebyshev application of operator functions: `|phi> = f(H) |psi>`.
//!
//! The third classic use of the KPM machinery (after spectral densities and
//! time evolution): expand a scalar function `f` in Chebyshev polynomials
//! on the rescaled spectrum and apply the series through the three-term
//! recursion,
//!
//! ```text
//! f(H) |psi> = sum_n c_n T_n(H~) |psi>,
//! c_n = (2 - delta_{n0})/K * sum_k f(E(x_k)) T_n(x_k)
//! ```
//!
//! with the coefficients computed by Chebyshev–Gauss quadrature (a DCT-II
//! of the sampled function). With `f = exp(-beta (. - mu))`-style weights
//! this is the Fermi-operator expansion of linear-scaling electronic
//! structure; with indicator-like `f` it is a spectral filter.
//!
//! Cost: one matvec per kept coefficient — the same `O(N D)` budget as a
//! DoS run, for a completely different capability.

use crate::chebyshev;
use crate::error::KpmError;
use kpm_linalg::gershgorin::SpectralBounds;
use kpm_linalg::op::{LinearOp, RescaledOp};
use kpm_linalg::vecops;

/// A Chebyshev expansion of a scalar function over a spectral interval,
/// ready to be applied to vectors.
#[derive(Debug, Clone)]
pub struct FunctionExpansion<A> {
    op: RescaledOp<A>,
    /// Chebyshev coefficients `c_0 .. c_{N-1}` (already carrying the
    /// `(2 - delta_{n0})` factors).
    coeffs: Vec<f64>,
}

impl<A: LinearOp> FunctionExpansion<A> {
    /// Expands `f` (a function of the *original* energy) to `order` terms
    /// over the (padded) spectral bounds of `op`.
    ///
    /// The coefficients are computed by `2 * order`-point Chebyshev–Gauss
    /// quadrature, exact for the truncated series of any `f` smooth on the
    /// interval.
    ///
    /// # Errors
    /// [`KpmError::InvalidParameter`] if `order < 1`;
    /// [`KpmError::DegenerateSpectrum`] for zero-width bounds without
    /// padding (the built-in 1% pad normally prevents this).
    pub fn new(
        op: A,
        bounds: SpectralBounds,
        order: usize,
        f: impl Fn(f64) -> f64,
    ) -> Result<Self, KpmError> {
        if order == 0 {
            return Err(KpmError::InvalidParameter("order must be at least 1".into()));
        }
        let padded = bounds.padded(0.01);
        if padded.a_minus() <= 0.0 {
            return Err(KpmError::DegenerateSpectrum);
        }
        let rescaled = RescaledOp::new(op, padded.a_plus(), padded.a_minus());

        // Quadrature nodes x_k = cos(pi (k + 1/2)/K), K = 2 * order.
        let k_quad = 2 * order;
        let nodes = chebyshev::gauss_grid(k_quad);
        let samples: Vec<f64> = nodes.iter().map(|&x| f(rescaled.to_original(x))).collect();
        // c_n = (2 - delta_n0)/K sum_k f_k T_n(x_k) — accumulate T_n by the
        // recursion per node.
        let mut coeffs = vec![0.0; order];
        for (&x, &fx) in nodes.iter().zip(&samples) {
            let mut tm = 1.0;
            let mut tc = x;
            coeffs[0] += fx;
            if order > 1 {
                coeffs[1] += fx * x;
            }
            for c in coeffs.iter_mut().skip(2) {
                let tn = 2.0 * x * tc - tm;
                tm = tc;
                tc = tn;
                *c += fx * tn;
            }
        }
        let kf = k_quad as f64;
        for (n, c) in coeffs.iter_mut().enumerate() {
            *c *= if n == 0 { 1.0 } else { 2.0 } / kf;
        }
        Ok(Self { op: rescaled, coeffs })
    }

    /// The expansion coefficients.
    pub fn coefficients(&self) -> &[f64] {
        &self.coeffs
    }

    /// Evaluates the truncated expansion at a scalar energy (useful to
    /// inspect the approximation quality before paying for matvecs).
    pub fn eval_scalar(&self, energy: f64) -> f64 {
        let x = self.op.to_rescaled(energy);
        let t = chebyshev::t_all(self.coeffs.len(), x);
        self.coeffs.iter().zip(&t).map(|(c, tn)| c * tn).sum()
    }

    /// Applies `f(H)` to a vector: `order - 1` matvecs.
    ///
    /// # Panics
    /// Panics if `psi.len() != dim`.
    pub fn apply(&self, psi: &[f64]) -> Vec<f64> {
        let d = self.op.dim();
        assert_eq!(psi.len(), d, "state dimension");
        let n = self.coeffs.len();
        let mut out: Vec<f64> = psi.iter().map(|&v| v * self.coeffs[0]).collect();
        if n == 1 {
            return out;
        }
        let mut prev = psi.to_vec();
        let mut cur = vec![0.0; d];
        self.op.apply(&prev, &mut cur);
        vecops::axpy(self.coeffs[1], &cur, &mut out);
        let mut scratch = vec![0.0; d];
        for &c in self.coeffs.iter().skip(2) {
            self.op.apply(&cur, &mut scratch);
            vecops::chebyshev_combine_inplace(&scratch, &mut prev);
            std::mem::swap(&mut prev, &mut cur);
            vecops::axpy(c, &cur, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kpm_linalg::gershgorin::gershgorin_dense;
    use kpm_linalg::op::DiagonalOp;

    fn diag_expansion(
        eigs: Vec<f64>,
        order: usize,
        f: impl Fn(f64) -> f64,
    ) -> FunctionExpansion<DiagonalOp> {
        let lo = eigs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = eigs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        FunctionExpansion::new(DiagonalOp::new(eigs), SpectralBounds::new(lo, hi), order, f)
            .unwrap()
    }

    #[test]
    fn identity_function_reproduces_h() {
        // f(E) = E: f(H) psi = H psi.
        let eigs = vec![-1.5, 0.2, 0.9, 2.0];
        let exp = diag_expansion(eigs.clone(), 8, |e| e);
        let psi = vec![1.0, -0.5, 2.0, 0.3];
        let out = exp.apply(&psi);
        for i in 0..4 {
            assert!(
                (out[i] - eigs[i] * psi[i]).abs() < 1e-10,
                "component {i}: {} vs {}",
                out[i],
                eigs[i] * psi[i]
            );
        }
    }

    #[test]
    fn polynomial_functions_are_exact_at_matching_order() {
        // f(E) = E^3 is degree 3: order >= 4 captures it exactly.
        let eigs = vec![-2.0, -0.7, 0.4, 1.3];
        let exp = diag_expansion(eigs.clone(), 6, |e| e * e * e);
        let psi = vec![0.2, 1.0, -1.0, 0.5];
        let out = exp.apply(&psi);
        for i in 0..4 {
            let expect = eigs[i].powi(3) * psi[i];
            assert!((out[i] - expect).abs() < 1e-9, "component {i}");
        }
    }

    #[test]
    fn exponential_converges_with_order() {
        // e^{-H} on a diagonal operator vs exact, at two orders.
        let eigs: Vec<f64> = (0..16).map(|i| -2.0 + 0.25 * i as f64).collect();
        let psi: Vec<f64> = (0..16).map(|i| ((i as f64) * 0.7).sin()).collect();
        let err_at = |order: usize| {
            let exp = diag_expansion(eigs.clone(), order, |e| (-e).exp());
            let out = exp.apply(&psi);
            eigs.iter()
                .zip(&psi)
                .zip(&out)
                .map(|((&e, &p), &o)| (o - (-e).exp() * p).abs())
                .fold(0.0f64, f64::max)
        };
        let coarse = err_at(8);
        let fine = err_at(24);
        assert!(fine < 1e-10, "order 24 error {fine}");
        assert!(fine < coarse / 100.0, "convergence: {coarse} -> {fine}");
    }

    #[test]
    fn fermi_operator_projects_occupied_states() {
        // Zero-temperature-ish Fermi function at mu = 0: states below the
        // chemical potential pass, above are suppressed.
        let eigs = vec![-1.8, -0.9, 0.8, 1.7];
        let beta = 30.0;
        let exp = diag_expansion(eigs.clone(), 256, |e| crate::thermal::fermi(e, 0.0, 1.0 / beta));
        let psi = vec![1.0, 1.0, 1.0, 1.0];
        let out = exp.apply(&psi);
        assert!((out[0] - 1.0).abs() < 1e-4, "deep state passes: {}", out[0]);
        assert!((out[1] - 1.0).abs() < 1e-4);
        assert!(out[2].abs() < 1e-4, "empty state blocked: {}", out[2]);
        assert!(out[3].abs() < 1e-4);
    }

    #[test]
    fn eval_scalar_matches_apply_on_eigenstates() {
        let eigs = vec![-1.0, 0.5, 1.5];
        let f = |e: f64| (0.8 * e).cos();
        let exp = diag_expansion(eigs.clone(), 32, f);
        for (k, &e) in eigs.iter().enumerate() {
            let mut psi = vec![0.0; 3];
            psi[k] = 1.0;
            let out = exp.apply(&psi);
            assert!((out[k] - exp.eval_scalar(e)).abs() < 1e-12);
            assert!((out[k] - f(e)).abs() < 1e-10, "f(e) = {} vs {}", f(e), out[k]);
        }
    }

    #[test]
    fn works_on_dense_matrices_against_exact_diag() {
        let h = kpm_lattice::dense_random_symmetric(20, 1.0, 33);
        let bounds = gershgorin_dense(&h);
        // An entire function (Gaussian weight): Chebyshev converges
        // superexponentially, so order 96 reaches near machine precision
        // even on this wide Gershgorin interval. (A Lorentzian 1/(1+E^2)
        // would converge painfully slowly here — its poles at +-i sit
        // close to the rescaled interval.)
        let f = |e: f64| (-(e / 4.0) * (e / 4.0)).exp();
        let exp = FunctionExpansion::new(&h, bounds, 96, f).unwrap();
        let psi: Vec<f64> = (0..20).map(|i| (i as f64 * 0.37).cos()).collect();
        let out = exp.apply(&psi);

        // Exact: V f(diag) V^T psi.
        let (eigs, vecs) = kpm_linalg::eigen::jacobi_eigen(&h).unwrap();
        let mut exact = vec![0.0; 20];
        for (k, &ek) in eigs.iter().enumerate() {
            let vk: Vec<f64> = (0..20).map(|i| vecs.get(i, k)).collect();
            let amp = vecops::dot(&vk, &psi) * f(ek);
            vecops::axpy(amp, &vk, &mut exact);
        }
        for i in 0..20 {
            assert!((out[i] - exact[i]).abs() < 1e-8, "site {i}: {} vs {}", out[i], exact[i]);
        }
    }

    #[test]
    fn invalid_order_rejected() {
        let op = DiagonalOp::new(vec![0.0]);
        assert!(FunctionExpansion::new(op, SpectralBounds::new(-1.0, 1.0), 0, |e| e).is_err());
    }
}
