//! Spectral rescaling: `H~ = (H - a_+ I) / a_-` (the paper's Eq. 8–9).
//!
//! The Chebyshev machinery requires the spectrum inside `[-1, 1]`; this
//! module chooses the affine map from either Gershgorin bounds (the paper's
//! method — guaranteed, sometimes loose) or a Lanczos estimate (tight,
//! padded for safety), and wraps the operator.

use crate::error::KpmError;
use kpm_linalg::csr::CsrMatrix;
use kpm_linalg::dense::DenseMatrix;
use kpm_linalg::ell::EllMatrix;
use kpm_linalg::gershgorin::{gershgorin_csr, gershgorin_dense, gershgorin_ell, SpectralBounds};
use kpm_linalg::op::{LinearOp, RescaledOp};
use kpm_linalg::sparse::SparseMatrix;
use kpm_linalg::stencil::StencilOp;

/// How to obtain spectral bounds before rescaling.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum BoundsMethod {
    /// Gershgorin discs — the paper's choice. Requires concrete matrix
    /// storage (dense or CSR).
    #[default]
    Gershgorin,
    /// Lanczos Ritz-value estimate with `steps` matvecs, available for any
    /// [`LinearOp`].
    Lanczos {
        /// Maximum Krylov steps.
        steps: usize,
    },
    /// Caller-provided bounds.
    Explicit {
        /// Known lower bound.
        lower: f64,
        /// Known upper bound.
        upper: f64,
    },
}

/// Operators whose spectral bounds we know how to compute.
pub trait Boundable: LinearOp {
    /// Spectral bounds by the requested method.
    ///
    /// # Errors
    /// [`KpmError::InvalidParameter`] if the method cannot be applied to
    /// this operator type.
    fn spectral_bounds(&self, method: BoundsMethod) -> Result<SpectralBounds, KpmError>;
}

impl Boundable for DenseMatrix {
    fn spectral_bounds(&self, method: BoundsMethod) -> Result<SpectralBounds, KpmError> {
        match method {
            BoundsMethod::Gershgorin => Ok(gershgorin_dense(self)),
            other => generic_bounds(self, other),
        }
    }
}

impl Boundable for CsrMatrix {
    fn spectral_bounds(&self, method: BoundsMethod) -> Result<SpectralBounds, KpmError> {
        match method {
            BoundsMethod::Gershgorin => Ok(gershgorin_csr(self)),
            other => generic_bounds(self, other),
        }
    }
}

impl Boundable for EllMatrix {
    fn spectral_bounds(&self, method: BoundsMethod) -> Result<SpectralBounds, KpmError> {
        match method {
            BoundsMethod::Gershgorin => Ok(gershgorin_ell(self)),
            other => generic_bounds(self, other),
        }
    }
}

impl Boundable for StencilOp {
    fn spectral_bounds(&self, method: BoundsMethod) -> Result<SpectralBounds, KpmError> {
        match method {
            BoundsMethod::Gershgorin => Ok(self.gershgorin_bounds()),
            other => generic_bounds(self, other),
        }
    }
}

impl Boundable for SparseMatrix {
    fn spectral_bounds(&self, method: BoundsMethod) -> Result<SpectralBounds, KpmError> {
        match method {
            BoundsMethod::Gershgorin => Ok(self.gershgorin_bounds()),
            other => generic_bounds(self, other),
        }
    }
}

impl<A: Boundable> Boundable for &A {
    fn spectral_bounds(&self, method: BoundsMethod) -> Result<SpectralBounds, KpmError> {
        (**self).spectral_bounds(method)
    }
}

/// Bounds for operators without concrete storage (Lanczos or explicit only).
pub fn generic_bounds<A: LinearOp>(
    op: &A,
    method: BoundsMethod,
) -> Result<SpectralBounds, KpmError> {
    match method {
        BoundsMethod::Gershgorin => Err(KpmError::InvalidParameter(
            "Gershgorin bounds need concrete matrix storage; use Lanczos or Explicit".into(),
        )),
        BoundsMethod::Lanczos { steps } => crate::bounds::lanczos_contained(op, steps),
        BoundsMethod::Explicit { lower, upper } => {
            if lower.is_nan() || upper.is_nan() || lower >= upper {
                return Err(KpmError::InvalidParameter(format!(
                    "explicit bounds must satisfy lower < upper, got [{lower}, {upper}]"
                )));
            }
            Ok(SpectralBounds::new(lower, upper))
        }
    }
}

/// Builds the rescaled operator with relative safety padding `eps`
/// (conventionally ~0.01): the affine map is computed from bounds widened so
/// the spectrum sits strictly inside `(-1, 1)`.
///
/// # Errors
/// [`KpmError::DegenerateSpectrum`] when the (padded) half-width is zero.
pub fn rescale<A: LinearOp>(
    op: A,
    bounds: SpectralBounds,
    eps: f64,
) -> Result<RescaledOp<A>, KpmError> {
    let _span = kpm_obs::span("kpm.rescale");
    let padded = bounds.padded(eps);
    let a_minus = padded.a_minus();
    if a_minus <= 0.0 {
        return Err(KpmError::DegenerateSpectrum);
    }
    Ok(RescaledOp::new(op, padded.a_plus(), a_minus))
}

#[cfg(test)]
mod tests {
    use super::*;
    use kpm_linalg::eigen::jacobi_eigenvalues;
    use kpm_linalg::op::DiagonalOp;

    fn chain(n: usize) -> DenseMatrix {
        DenseMatrix::from_fn(n, n, |i, j| if i.abs_diff(j) == 1 { -1.0 } else { 0.0 })
    }

    #[test]
    fn gershgorin_bounds_via_trait() {
        let m = chain(10);
        let b = m.spectral_bounds(BoundsMethod::Gershgorin).unwrap();
        assert_eq!(b.lower, -2.0);
        assert_eq!(b.upper, 2.0);
    }

    #[test]
    fn lanczos_bounds_via_trait_tighter() {
        let m = chain(32);
        let g = m.spectral_bounds(BoundsMethod::Gershgorin).unwrap();
        let l = m.spectral_bounds(BoundsMethod::Lanczos { steps: 40 }).unwrap();
        assert!(l.lower >= g.lower - 1e-9);
        assert!(l.upper <= g.upper + 1e-9);
        assert!(l.width() < g.width(), "Lanczos must be tighter on the open chain");
    }

    #[test]
    fn explicit_bounds_validated() {
        let m = chain(4);
        assert!(m.spectral_bounds(BoundsMethod::Explicit { lower: -3.0, upper: 3.0 }).is_ok());
        assert!(matches!(
            m.spectral_bounds(BoundsMethod::Explicit { lower: 1.0, upper: 1.0 }),
            Err(KpmError::InvalidParameter(_))
        ));
    }

    #[test]
    fn generic_operator_rejects_gershgorin() {
        let d = DiagonalOp::new(vec![1.0, 2.0]);
        assert!(matches!(
            generic_bounds(&d, BoundsMethod::Gershgorin),
            Err(KpmError::InvalidParameter(_))
        ));
        assert!(generic_bounds(&d, BoundsMethod::Lanczos { steps: 10 }).is_ok());
    }

    #[test]
    fn rescaled_spectrum_strictly_inside_unit_interval() {
        let m = chain(12);
        let b = m.spectral_bounds(BoundsMethod::Gershgorin).unwrap();
        let r = rescale(&m, b, 0.01).unwrap();
        let eig = jacobi_eigenvalues(&m).unwrap();
        for &e in &eig {
            let x = r.to_rescaled(e);
            assert!(x > -1.0 && x < 1.0, "eigenvalue {e} mapped to {x}");
        }
    }

    #[test]
    fn degenerate_spectrum_with_zero_padding_fails() {
        let d = DiagonalOp::new(vec![2.0, 2.0]);
        let b = SpectralBounds::new(2.0, 2.0);
        assert_eq!(rescale(&d, b, 0.0).unwrap_err(), KpmError::DegenerateSpectrum);
        // With padding it succeeds.
        assert!(rescale(&d, b, 0.01).is_ok());
    }

    #[test]
    fn csr_bounds_agree_with_dense() {
        let h = kpm_lattice::paper_cubic_hamiltonian();
        let b = h.spectral_bounds(BoundsMethod::Gershgorin).unwrap();
        assert_eq!((b.lower, b.upper), (-6.0, 6.0));
    }
}
