//! Kubo–Greenwood conductivity by two-dimensional KPM.
//!
//! The zero-temperature, zero-frequency Kubo–Greenwood conductivity is
//!
//! ```text
//! sigma(E)  ∝  Tr[ v delta(E - H) v delta(E - H) ]
//! ```
//!
//! with `v = i [H, X]` the velocity operator. Expanding *both* delta
//! functions in Chebyshev polynomials gives the double-moment form
//!
//! ```text
//! sigma(E~) = sum_{n,m} mu_nm g_n g_m h_n(E~) h_m(E~),
//! h_n(E~)   = T_n(E~) * (2 - delta_{n0}) / (pi sqrt(1 - E~^2))
//! mu_nm     = Tr[ v T_n(H~) v T_m(H~) ] / D
//! ```
//!
//! — the 2D KPM of Weiße et al. 2006, Sec. IV.C (the algorithm behind
//! modern codes like KITE). For a real symmetric `H` on a lattice, `v` is
//! purely imaginary: writing `v = i W` with `W` real antisymmetric,
//! `mu_nm = -Tr[W T_n W T_m]/D` stays entirely in real arithmetic.
//!
//! Cost: `O(N^2 D)` per random vector (one inner Chebyshev recursion per
//! outer moment) — quadratically more than the DoS, which is why the
//! conductivity is the canonical "needs acceleration" KPM workload.

use crate::error::KpmError;
use crate::kernels::KernelType;
use crate::moments::KpmParams;
use crate::random::fill_random_vector;
use kpm_linalg::csr::CsrMatrix;
use kpm_linalg::op::LinearOp;
use kpm_linalg::tiled::TiledOp;
use kpm_linalg::vecops;
use rayon::prelude::*;

/// Builds `W = -i v = [X, H]` (real antisymmetric) for a 1D position
/// operator: `W_ij = (x_i - x_j) H_ij` with `x` the site coordinate along
/// the transport direction.
///
/// Periodic wrap-around bonds need the *minimum-image* displacement, which
/// the caller encodes directly in `positions` semantics: this function
/// applies the minimum-image rule with period `period` (pass `None` for
/// open boundaries).
///
/// # Panics
/// Panics if `positions.len() != h.nrows()`.
pub fn velocity_operator(h: &CsrMatrix, positions: &[f64], period: Option<f64>) -> CsrMatrix {
    assert_eq!(positions.len(), h.nrows(), "one position per site");
    let mut row_ptr = Vec::with_capacity(h.nrows() + 1);
    let mut col_idx = Vec::with_capacity(h.nnz());
    let mut values = Vec::with_capacity(h.nnz());
    row_ptr.push(0);
    for i in 0..h.nrows() {
        for (j, v) in h.row_entries(i) {
            let mut dx = positions[i] - positions[j];
            if let Some(l) = period {
                // Minimum image: wrap displacements into (-l/2, l/2].
                dx -= (dx / l).round() * l;
            }
            let w = dx * v;
            if w != 0.0 {
                col_idx.push(j);
                values.push(w);
            }
        }
        row_ptr.push(col_idx.len());
    }
    CsrMatrix::from_raw(h.nrows(), h.ncols(), row_ptr, col_idx, values)
        .expect("velocity operator construction")
}

/// The `N x N` double-moment matrix `mu_nm = -Tr[W T_n(H~) W T_m(H~)]/D`,
/// estimated stochastically.
#[derive(Debug, Clone)]
pub struct DoubleMoments {
    /// Row-major `N x N` moments.
    pub mu: Vec<f64>,
    /// Expansion order `N`.
    pub order: usize,
}

impl DoubleMoments {
    /// Element `mu_nm`.
    pub fn get(&self, n: usize, m: usize) -> f64 {
        self.mu[n * self.order + m]
    }

    /// Exact merge of per-realization double-moment vectors (row-major
    /// `order x order`, each already normalized by `D`) in the order given.
    ///
    /// The reduction is `mu += per[idx] / total` accumulated in canonical
    /// `idx = s * R + r` order — the same statement [`double_moments`] has
    /// always executed, factored out so a distributed run can replay it:
    /// shard workers return their realizations' vectors untouched, the
    /// coordinator concatenates shards canonically and merges, and the
    /// result is bitwise identical to the single-process run. Summation
    /// order matters (floating point is not associative), which is why
    /// partial *sums* are never combined — only per-realization terms.
    ///
    /// # Panics
    /// Panics if `per_realization` is empty or any vector is not
    /// `order * order` long.
    pub fn merge_realizations(per_realization: &[Vec<f64>], order: usize) -> Self {
        let total = per_realization.len();
        assert!(total > 0, "cannot merge zero realizations");
        let mut mu = vec![0.0; order * order];
        for p in per_realization {
            assert_eq!(p.len(), order * order, "double-moment vector length");
            for (acc, v) in mu.iter_mut().zip(p) {
                *acc += v / total as f64;
            }
        }
        DoubleMoments { mu, order }
    }
}

/// Estimates the double moments for conductivity.
///
/// `h_scaled` must already be rescaled into `[-1, 1]`; `w` is the real
/// antisymmetric part of the velocity operator (from
/// [`velocity_operator`], *unscaled* — velocity matrix elements carry the
/// physical hopping, not the rescaled one).
///
/// Uses `params.num_moments` for `N` and the stochastic fields for the
/// random-vector ensemble.
///
/// # Errors
/// Parameter validation errors.
///
/// # Panics
/// Panics if dimensions disagree.
pub fn double_moments<A: LinearOp + Sync>(
    h_scaled: &A,
    w: &CsrMatrix,
    params: &KpmParams,
) -> Result<DoubleMoments, KpmError> {
    let _span = kpm_obs::span("kpm.moments");
    let per = double_moments_partial(h_scaled, w, params, 0..params.total_realizations())?;
    Ok(DoubleMoments::merge_realizations(&per, params.num_moments))
}

/// The per-realization double-moment vectors (row-major `order x order`,
/// normalized by `D`) for the realization index range `range` of the full
/// `S x R` ensemble — the worker half of a distributed Kubo run
/// ([`DoubleMoments::merge_realizations`] is the coordinator half, and
/// [`double_moments`] is the two glued together over the full range).
///
/// Entry `i` of the result is realization `range.start + i`; values are
/// independent of how the full index range is partitioned because each
/// realization's recursion touches only its own `(s, r)`-keyed vectors.
///
/// # Errors
/// Parameter validation errors, or an invalid `range`.
///
/// # Panics
/// Panics if dimensions disagree.
pub fn double_moments_partial<A: LinearOp + Sync>(
    h_scaled: &A,
    w: &CsrMatrix,
    params: &KpmParams,
    range: std::ops::Range<usize>,
) -> Result<Vec<Vec<f64>>, KpmError> {
    params.validate()?;
    let d = h_scaled.dim();
    assert_eq!(w.nrows(), d, "velocity operator dimension");
    if range.is_empty() || range.end > params.total_realizations() {
        return Err(KpmError::InvalidParameter(format!(
            "realization range {range:?} invalid for {} total realizations",
            params.total_realizations()
        )));
    }
    let n_mom = params.num_moments;
    let r_per_s = params.num_random;

    let per: Vec<Vec<f64>> = range
        .into_par_iter()
        .map(|idx| {
            let (s, r) = (idx / r_per_s, idx % r_per_s);
            let mut rvec = vec![0.0; d];
            fill_random_vector(params.distribution, params.seed, s, r, &mut rvec);

            // Left chain: |l_n> = T_n(H~) W |r>, accumulated against
            // <r| W on the fly. mu_nm contribution
            // = -<r| W T_n W T_m |r>/D: compute |b_m> = T_m|r> rolling in
            // the outer loop, apply W, then run the inner recursion.
            let mut mu = vec![0.0; n_mom * n_mom];

            // Outer recursion over m: b_m = T_m(H~) |r>.
            let mut b_prev = rvec.clone();
            let mut b_cur = vec![0.0; d];
            h_scaled.apply(&b_prev, &mut b_cur);
            let mut b_scratch = vec![0.0; d];

            // <wl| = <r| W  (W antisymmetric: (W^T r) = -W r).
            let mut wr = vec![0.0; d];
            w.spmv(&rvec, &mut wr);
            let wl: Vec<f64> = wr.iter().map(|&v| -v).collect();

            let mut wb = vec![0.0; d];
            let mut l_prev = vec![0.0; d];
            let mut l_cur = vec![0.0; d];
            let mut l_scratch = vec![0.0; d];
            for m in 0..n_mom {
                let b_m: &[f64] = if m == 0 { &b_prev } else { &b_cur };
                // |wb> = W T_m |r>.
                w.spmv(b_m, &mut wb);
                // Inner recursion over n on |wb>, contracting with <wl|.
                l_prev.copy_from_slice(&wb);
                h_scaled.apply(&l_prev, &mut l_cur);
                mu[m] += -vecops::dot(&wl, &l_prev) / d as f64; // n = 0
                if n_mom > 1 {
                    mu[n_mom + m] += -vecops::dot(&wl, &l_cur) / d as f64; // n = 1
                }
                for n in 2..n_mom {
                    h_scaled.apply(&l_cur, &mut l_scratch);
                    vecops::chebyshev_combine_inplace(&l_scratch, &mut l_prev);
                    std::mem::swap(&mut l_prev, &mut l_cur);
                    mu[n * n_mom + m] += -vecops::dot(&wl, &l_cur) / d as f64;
                }
                // Advance the outer recursion (skip after the last m).
                if m + 1 < n_mom && m >= 1 {
                    h_scaled.apply(&b_cur, &mut b_scratch);
                    vecops::chebyshev_combine_inplace(&b_scratch, &mut b_prev);
                    std::mem::swap(&mut b_prev, &mut b_cur);
                }
            }
            kpm_obs::counter_add("kpm.realizations", 1);
            mu
        })
        .collect();
    Ok(per)
}

/// Exact double moments from a full eigendecomposition (ground truth for
/// tests): `mu_nm = (1/D) sum_{k,q} (W_kq)^2 T_n(e_q) T_m(e_k)` where
/// `W_kq` are eigenbasis matrix elements of `W` and `e` the rescaled
/// eigenvalues.
pub fn exact_double_moments(
    rescaled_eigs: &[f64],
    w_eigenbasis: &kpm_linalg::DenseMatrix,
    order: usize,
) -> DoubleMoments {
    let d = rescaled_eigs.len();
    let tn: Vec<Vec<f64>> =
        rescaled_eigs.iter().map(|&e| crate::chebyshev::t_all(order, e)).collect();
    let mut mu = vec![0.0; order * order];
    for k in 0..d {
        for q in 0..d {
            let w2 = w_eigenbasis.get(k, q).powi(2);
            if w2 == 0.0 {
                continue;
            }
            for n in 0..order {
                let tnq = tn[q][n];
                for m in 0..order {
                    mu[n * order + m] += w2 * tnq * tn[k][m] / d as f64;
                }
            }
        }
    }
    DoubleMoments { mu, order }
}

/// Reconstructs `sigma(E~)` on the given rescaled energies from double
/// moments, with Jackson (or other) damping applied on both indices.
pub fn conductivity(
    moments: &DoubleMoments,
    kernel: KernelType,
    rescaled_energies: &[f64],
) -> Vec<f64> {
    let n = moments.order;
    let g = kernel.coefficients(n);
    rescaled_energies
        .iter()
        .map(|&x| {
            assert!(x > -1.0 && x < 1.0, "energy {x} outside (-1, 1)");
            let t = crate::chebyshev::t_all(n, x);
            let weight = std::f64::consts::PI * (1.0 - x * x).sqrt();
            // h_n(x) = g_n T_n(x) (2 - delta_n0) / weight.
            let h: Vec<f64> =
                (0..n).map(|k| g[k] * t[k] * if k == 0 { 1.0 } else { 2.0 } / weight).collect();
            let mut s = 0.0;
            for (i, &hi) in h.iter().enumerate() {
                let row = &moments.mu[i * n..(i + 1) * n];
                s += hi * vecops::dot(row, &h);
            }
            s
        })
        .collect()
}

/// A reconstructed Kubo–Greenwood conductivity on the original energy
/// axis.
#[derive(Debug, Clone)]
pub struct Conductivity {
    /// Energies (original axis).
    pub energies: Vec<f64>,
    /// `sigma(energies[i])` (arbitrary units — no `e^2/h` prefactor).
    pub sigma: Vec<f64>,
}

/// Kubo–Greenwood conductivity estimator — the
/// [`Estimator`](crate::estimator::Estimator) for
/// `sigma(E)` via 2D KPM.
///
/// Owns the (unscaled) velocity operator `W` and the evaluation energies on
/// the original axis; the bounds/rescale plumbing and the `E -> E~` map are
/// handled by the trait methods.
#[derive(Debug, Clone)]
pub struct KuboEstimator {
    params: KpmParams,
    w: CsrMatrix,
    energies: Vec<f64>,
}

impl KuboEstimator {
    /// Creates an estimator for `sigma` at `energies` (original axis), with
    /// velocity operator `w` (see [`velocity_operator`]).
    pub fn new(params: KpmParams, w: CsrMatrix, energies: Vec<f64>) -> Self {
        Self { params, w, energies }
    }

    /// The velocity operator.
    pub fn velocity(&self) -> &CsrMatrix {
        &self.w
    }

    /// The evaluation energies (original axis).
    pub fn energies(&self) -> &[f64] {
        &self.energies
    }
}

impl crate::estimator::Estimator for KuboEstimator {
    type Moments = DoubleMoments;
    type Output = Conductivity;

    fn params(&self) -> &KpmParams {
        &self.params
    }

    /// Stochastic double moments `mu_nm` of the rescaled Hamiltonian.
    fn moments<A: TiledOp + Sync>(&self, op: &A) -> Result<DoubleMoments, KpmError> {
        double_moments(op, &self.w, &self.params)
    }

    fn reconstruct(
        &self,
        moments: DoubleMoments,
        a_plus: f64,
        a_minus: f64,
    ) -> Result<Conductivity, KpmError> {
        if a_minus <= 0.0 {
            return Err(KpmError::InvalidParameter(format!(
                "a_minus must be positive, got {a_minus}"
            )));
        }
        let _span = kpm_obs::span("kpm.reconstruct");
        let mut rescaled = Vec::with_capacity(self.energies.len());
        for &e in &self.energies {
            let x = (e - a_plus) / a_minus;
            if !(x > -1.0 && x < 1.0) {
                return Err(KpmError::InvalidParameter(format!(
                    "energy {e} maps to {x}, outside the open interval (-1, 1)"
                )));
            }
            rescaled.push(x);
        }
        let sigma = conductivity(&moments, self.params.kernel, &rescaled);
        Ok(Conductivity { energies: self.energies.clone(), sigma })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::moments::KpmParams;
    use crate::random::Distribution;
    use kpm_lattice::{Boundary, HypercubicLattice, OnSite, TightBinding};
    use kpm_linalg::eigen::jacobi_eigen;
    use kpm_linalg::gershgorin::gershgorin_csr;
    use kpm_linalg::op::RescaledOp;
    use kpm_linalg::DenseMatrix;

    fn chain(l: usize, disorder: f64) -> (CsrMatrix, Vec<f64>) {
        let onsite = if disorder == 0.0 {
            OnSite::Uniform(0.0)
        } else {
            OnSite::Disorder { width: disorder, seed: 3 }
        };
        let h = TightBinding::new(HypercubicLattice::chain(l, Boundary::Periodic), 1.0, onsite)
            .build_csr();
        let pos: Vec<f64> = (0..l).map(|i| i as f64).collect();
        (h, pos)
    }

    #[test]
    fn velocity_operator_is_antisymmetric_with_unit_displacements() {
        let (h, pos) = chain(8, 0.0);
        let w = velocity_operator(&h, &pos, Some(8.0));
        // W_ij = -W_ji.
        for i in 0..8 {
            for (j, v) in w.row_entries(i) {
                assert!((v + w.get(j, i)).abs() < 1e-14, "({i}, {j})");
                // |dx| = 1 with minimum image, |H_ij| = 1 => |W| = 1.
                assert!((v.abs() - 1.0).abs() < 1e-14);
            }
        }
        // Diagonal absent (dx = 0).
        assert_eq!(w.nnz(), h.nnz());
    }

    #[test]
    fn minimum_image_handles_wraparound_bond() {
        let (h, pos) = chain(6, 0.0);
        let w = velocity_operator(&h, &pos, Some(6.0));
        // Bond 0 <-> 5: raw dx = -5, minimum image +1.
        assert!((w.get(0, 5).abs() - 1.0).abs() < 1e-14);
        // Without the period the wrap bond gets |dx| = 5.
        let w_open = velocity_operator(&h, &pos, None);
        assert!((w_open.get(0, 5).abs() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn stochastic_double_moments_match_exact() {
        let (h, pos) = chain(32, 2.0);
        let b = gershgorin_csr(&h).padded(0.01);
        let hs = RescaledOp::new(&h, b.a_plus(), b.a_minus());
        let w = velocity_operator(&h, &pos, Some(32.0));
        let order = 8;
        let params = KpmParams::new(order)
            .with_random_vectors(24, 8)
            .with_distribution(Distribution::Gaussian)
            .with_seed(10);
        let est = double_moments(&hs, &w, &params).unwrap();

        // Exact: eigendecompose, transform W into the eigenbasis.
        let (eigs, vecs) = jacobi_eigen(&h.to_dense()).unwrap();
        let scaled: Vec<f64> = eigs.iter().map(|&e| hs.to_rescaled(e)).collect();
        let wd = w.to_dense();
        let n = 32;
        // W_eig = V^T W V.
        let mut wv = DenseMatrix::zeros(n, n);
        for k in 0..n {
            let col: Vec<f64> = (0..n).map(|i| vecs.get(i, k)).collect();
            let mut out = vec![0.0; n];
            wd.matvec(&col, &mut out);
            for (i, &v) in out.iter().enumerate() {
                wv.set(i, k, v);
            }
        }
        let mut w_eig = DenseMatrix::zeros(n, n);
        for a in 0..n {
            for bq in 0..n {
                let mut acc = 0.0;
                for i in 0..n {
                    acc += vecs.get(i, a) * wv.get(i, bq);
                }
                w_eig.set(a, bq, acc);
            }
        }
        let exact = exact_double_moments(&scaled, &w_eig, order);
        for i in 0..order {
            for j in 0..order {
                let tol = 0.35 * (1.0 + exact.get(i, j).abs());
                assert!(
                    (est.get(i, j) - exact.get(i, j)).abs() < tol,
                    "mu_{i}{j}: {} vs {}",
                    est.get(i, j),
                    exact.get(i, j)
                );
            }
        }
        // The dominant element must be reproduced tightly.
        let rel = (est.get(0, 0) - exact.get(0, 0)).abs() / exact.get(0, 0).abs();
        assert!(rel < 0.1, "mu_00 relative error {rel}");
    }

    #[test]
    fn sharded_double_moments_merge_bitwise_to_full_run() {
        let (h, pos) = chain(24, 1.5);
        let b = gershgorin_csr(&h).padded(0.01);
        let hs = RescaledOp::new(&h, b.a_plus(), b.a_minus());
        let w = velocity_operator(&h, &pos, Some(24.0));
        let params = KpmParams::new(6)
            .with_random_vectors(3, 2)
            .with_distribution(Distribution::Gaussian)
            .with_seed(8);
        let full = double_moments(&hs, &w, &params).unwrap();
        let total = params.total_realizations();
        for shards in [1usize, 2, 4, 6] {
            let mut rows: Vec<Vec<f64>> = Vec::new();
            for range in crate::moments::shard_plan(total, shards) {
                rows.extend(double_moments_partial(&hs, &w, &params, range).unwrap());
            }
            let merged = DoubleMoments::merge_realizations(&rows, params.num_moments);
            assert_eq!(merged.mu, full.mu, "{shards} shards");
            assert_eq!(merged.order, full.order);
        }
    }

    #[test]
    fn double_moments_are_symmetric() {
        // mu_nm = mu_mn by the cyclic trace and symmetry of H.
        let (h, pos) = chain(24, 1.0);
        let b = gershgorin_csr(&h).padded(0.01);
        let hs = RescaledOp::new(&h, b.a_plus(), b.a_minus());
        let w = velocity_operator(&h, &pos, Some(24.0));
        let params =
            KpmParams::new(6).with_random_vectors(16, 4).with_distribution(Distribution::Gaussian);
        let mu = double_moments(&hs, &w, &params).unwrap();
        for n in 0..6 {
            for m in 0..6 {
                let (a, bb) = (mu.get(n, m), mu.get(m, n));
                assert!((a - bb).abs() < 0.15 * (1.0 + a.abs()), "mu_{n}{m} {a} vs mu_{m}{n} {bb}");
            }
        }
    }

    #[test]
    fn clean_chain_conductivity_is_positive_and_symmetric() {
        let (h, pos) = chain(128, 0.0);
        let b = gershgorin_csr(&h).padded(0.01);
        let hs = RescaledOp::new(&h, b.a_plus(), b.a_minus());
        let w = velocity_operator(&h, &pos, Some(128.0));
        let params = KpmParams::new(16).with_random_vectors(8, 4).with_seed(2);
        let mu = double_moments(&hs, &w, &params).unwrap();
        let xs: Vec<f64> = (-8..=8).map(|i| i as f64 * 0.1).collect();
        let sigma = conductivity(&mu, KernelType::Jackson, &xs);
        // Positive in the band (it is a |matrix element|^2 density).
        for (x, s) in xs.iter().zip(&sigma) {
            assert!(*s > -0.05, "sigma({x}) = {s}");
        }
        // Particle-hole symmetric chain: sigma(x) ~ sigma(-x).
        for i in 0..xs.len() / 2 {
            let (a, bb) = (sigma[i], sigma[xs.len() - 1 - i]);
            assert!((a - bb).abs() < 0.2 * (a.abs() + bb.abs() + 0.1), "{a} vs {bb}");
        }
    }

    #[test]
    fn disorder_suppresses_conductivity() {
        let run = |wdis: f64| {
            let (h, pos) = chain(128, wdis);
            let b = gershgorin_csr(&h).padded(0.01);
            let hs = RescaledOp::new(&h, b.a_plus(), b.a_minus());
            let w = velocity_operator(&h, &pos, Some(128.0));
            let params = KpmParams::new(16).with_random_vectors(8, 4).with_seed(21);
            let mu = double_moments(&hs, &w, &params).unwrap();
            conductivity(&mu, KernelType::Jackson, &[0.0])[0]
        };
        let clean = run(0.0);
        let dirty = run(8.0);
        assert!(dirty < 0.6 * clean, "disorder must suppress sigma: clean {clean}, dirty {dirty}");
    }

    #[test]
    fn kubo_estimator_matches_manual_pipeline() {
        use crate::estimator::Estimator;
        let (h, pos) = chain(64, 1.0);
        let w = velocity_operator(&h, &pos, Some(64.0));
        let params = KpmParams::new(12).with_random_vectors(6, 2).with_seed(4);
        let energies = vec![-1.0, 0.0, 0.7];

        let via_trait =
            KuboEstimator::new(params.clone(), w.clone(), energies.clone()).compute(&h).unwrap();

        // Manual: identical bounds (Gershgorin, padded by params.padding),
        // double moments, and reconstruction on the mapped energies.
        let b = gershgorin_csr(&h).padded(params.padding);
        let hs = RescaledOp::new(&h, b.a_plus(), b.a_minus());
        let mu = double_moments(&hs, &w, &params).unwrap();
        let xs: Vec<f64> = energies.iter().map(|&e| (e - b.a_plus()) / b.a_minus()).collect();
        let manual = conductivity(&mu, KernelType::Jackson, &xs);

        assert_eq!(via_trait.energies, energies);
        for (a, m) in via_trait.sigma.iter().zip(&manual) {
            assert!((a - m).abs() < 1e-12 * (1.0 + m.abs()), "{a} vs {m}");
        }
    }

    #[test]
    fn kubo_estimator_rejects_energy_outside_band() {
        use crate::estimator::Estimator;
        let (h, pos) = chain(16, 0.0);
        let w = velocity_operator(&h, &pos, Some(16.0));
        let est = KuboEstimator::new(KpmParams::new(8).with_random_vectors(2, 1), w, vec![99.0]);
        assert!(matches!(est.compute(&h), Err(KpmError::InvalidParameter(_))));
    }
}
