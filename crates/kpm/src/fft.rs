//! Iterative radix-2 complex FFT, implemented in-tree.
//!
//! Used by [`crate::dct`] to turn the KPM reconstruction sum into an
//! `O(K log K)` transform. Only power-of-two lengths are supported — the
//! DCT layer falls back to the naive sum otherwise.

use crate::complex::Complex64;

/// Transform direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// `X_k = sum_n x_n e^{-2 pi i n k / N}`.
    Forward,
    /// `x_n = (1/N) sum_k X_k e^{+2 pi i n k / N}` (normalized here).
    Inverse,
}

/// In-place radix-2 FFT.
///
/// The inverse direction applies the `1/N` normalization, so
/// `fft(Inverse, fft(Forward, x)) == x`.
///
/// # Panics
/// Panics if `data.len()` is not a power of two (zero-length included).
pub fn fft(direction: Direction, data: &mut [Complex64]) {
    let n = data.len();
    assert!(n.is_power_of_two(), "fft length must be a power of two, got {n}");
    if n == 1 {
        return;
    }

    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if i < j {
            data.swap(i, j);
        }
    }

    let sign = match direction {
        Direction::Forward => -1.0,
        Direction::Inverse => 1.0,
    };

    // Butterfly passes.
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex64::cis(ang);
        for start in (0..n).step_by(len) {
            let mut w = Complex64::ONE;
            for k in 0..len / 2 {
                let a = data[start + k];
                let b = data[start + k + len / 2] * w;
                data[start + k] = a + b;
                data[start + k + len / 2] = a - b;
                w = w * wlen;
            }
        }
        len <<= 1;
    }

    if direction == Direction::Inverse {
        let inv = 1.0 / n as f64;
        for z in data.iter_mut() {
            *z = z.scale(inv);
        }
    }
}

/// Naive `O(N^2)` DFT, any length — the reference implementation for tests.
pub fn dft_naive(direction: Direction, data: &[Complex64]) -> Vec<Complex64> {
    let n = data.len();
    let sign = match direction {
        Direction::Forward => -1.0,
        Direction::Inverse => 1.0,
    };
    let mut out = vec![Complex64::ZERO; n];
    for (k, o) in out.iter_mut().enumerate() {
        let mut acc = Complex64::ZERO;
        for (j, &x) in data.iter().enumerate() {
            let ang = sign * 2.0 * std::f64::consts::PI * (j * k) as f64 / n as f64;
            acc += x * Complex64::cis(ang);
        }
        *o = if direction == Direction::Inverse { acc.scale(1.0 / n as f64) } else { acc };
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: &[Complex64], b: &[Complex64], tol: f64) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (*x - *y).abs() < tol)
    }

    #[test]
    fn impulse_transforms_to_constant() {
        let mut x = vec![Complex64::ZERO; 8];
        x[0] = Complex64::ONE;
        fft(Direction::Forward, &mut x);
        assert!(x.iter().all(|z| (z.re - 1.0).abs() < 1e-14 && z.im.abs() < 1e-14));
    }

    #[test]
    fn forward_then_inverse_roundtrips() {
        for log_n in 0..8 {
            let n = 1usize << log_n;
            let orig: Vec<Complex64> = (0..n)
                .map(|i| Complex64::new((i as f64 * 0.9).sin(), (i as f64 * 1.3).cos()))
                .collect();
            let mut x = orig.clone();
            fft(Direction::Forward, &mut x);
            fft(Direction::Inverse, &mut x);
            assert!(close(&x, &orig, 1e-11), "n = {n}");
        }
    }

    #[test]
    fn matches_naive_dft() {
        let n = 32;
        let orig: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i as f64 * 0.31).cos(), (i as f64 * 0.7).sin() * 0.5))
            .collect();
        for dir in [Direction::Forward, Direction::Inverse] {
            let mut fast = orig.clone();
            fft(dir, &mut fast);
            let slow = dft_naive(dir, &orig);
            assert!(close(&fast, &slow, 1e-10), "{dir:?}");
        }
    }

    #[test]
    fn parseval_energy_conserved() {
        let n = 64;
        let x: Vec<Complex64> = (0..n).map(|i| Complex64::new((i as f64).sin(), 0.0)).collect();
        let time_energy: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let mut f = x.clone();
        fft(Direction::Forward, &mut f);
        let freq_energy: f64 = f.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-9);
    }

    #[test]
    fn pure_tone_has_single_bin() {
        let n = 16;
        let k0 = 3usize;
        let x: Vec<Complex64> = (0..n)
            .map(|i| Complex64::cis(2.0 * std::f64::consts::PI * (k0 * i) as f64 / n as f64))
            .collect();
        let mut f = x;
        fft(Direction::Forward, &mut f);
        for (k, z) in f.iter().enumerate() {
            if k == k0 {
                assert!((z.re - n as f64).abs() < 1e-10);
            } else {
                assert!(z.abs() < 1e-10, "leakage at bin {k}: {}", z.abs());
            }
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let mut x = vec![Complex64::ZERO; 12];
        fft(Direction::Forward, &mut x);
    }
}
