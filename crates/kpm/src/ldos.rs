//! Local density of states (LDoS).
//!
//! `rho_i(omega) = sum_k |<i|k>|^2 delta(omega - E_k)` needs the moments
//! `mu_n^i = <i|T_n(H~)|i>` — the same recursion as the trace estimator but
//! with the deterministic start vector `e_i` instead of random vectors, so
//! no stochastic average is involved. This is the standard KPM application
//! beyond the paper's global DoS (Weiße et al. 2006, Sec. III.A) and is
//! exercised by the disorder example.

use crate::dos::{reconstruct_density, Dos};
use crate::error::KpmError;
use crate::estimator::Estimator;
use crate::moments::{single_vector_moments, KpmParams, MomentStats};
use crate::rescale::Boundable;
use kpm_linalg::tiled::TiledOp;

/// LDoS estimator at a fixed site — the [`Estimator`] for
/// `rho_site(omega)`.
///
/// Uses `params` for the moment count, kernel, bounds method, padding and
/// grid; the stochastic fields (`R`, `S`, distribution) are ignored because
/// the start vector `e_site` is deterministic.
#[derive(Debug, Clone)]
pub struct LdosEstimator {
    params: KpmParams,
    site: usize,
}

impl LdosEstimator {
    /// Creates an estimator for the LDoS at `site`.
    pub fn new(params: KpmParams, site: usize) -> Self {
        Self { params, site }
    }

    /// The site whose local density this estimator reconstructs.
    pub fn site(&self) -> usize {
        self.site
    }
}

impl Estimator for LdosEstimator {
    type Moments = MomentStats;
    type Output = Dos;

    fn params(&self) -> &KpmParams {
        &self.params
    }

    /// Deterministic single-vector moments `<e_i|T_n(H~)|e_i>`.
    fn moments<A: TiledOp + Sync>(&self, op: &A) -> Result<MomentStats, KpmError> {
        self.params.validate()?;
        if self.site >= op.dim() {
            return Err(KpmError::InvalidParameter(format!(
                "site {} out of range for dimension {}",
                self.site,
                op.dim()
            )));
        }
        let _span = kpm_obs::span("kpm.moments");
        let mut e_i = vec![0.0; op.dim()];
        e_i[self.site] = 1.0;
        let mu = single_vector_moments(op, &e_i, self.params.num_moments, self.params.recursion);
        // <e_i|T_n|e_i> is already the LDoS moment: no 1/D, no averaging.
        Ok(MomentStats { std_err: vec![0.0; mu.len()], samples: 1, mean: mu })
    }

    fn reconstruct(
        &self,
        moments: MomentStats,
        a_plus: f64,
        a_minus: f64,
    ) -> Result<Dos, KpmError> {
        Ok(reconstruct_density(&self.params, moments, a_plus, a_minus))
    }
}

/// Computes the LDoS at `site`.
///
/// # Errors
/// Bounds or validation failures, or `site` out of range.
#[deprecated(
    since = "0.1.0",
    note = "use `LdosEstimator::new(params, site)` with `Estimator::compute`"
)]
pub fn local_dos<A: Boundable + TiledOp + Sync>(
    op: &A,
    site: usize,
    params: &KpmParams,
) -> Result<Dos, KpmError> {
    LdosEstimator::new(params.clone(), site).compute(op)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::moments::KpmParams;
    use crate::rescale::rescale;
    use kpm_lattice::{Boundary, HypercubicLattice, OnSite, TightBinding};
    use kpm_linalg::DenseMatrix;

    #[test]
    fn ldos_integrates_to_one_per_site() {
        // sum_k |<i|k>|^2 = 1 for each site.
        let h = kpm_lattice::dense_random_symmetric(24, 1.0, 3);
        let params = KpmParams::new(64);
        for site in [0usize, 7, 23] {
            let ldos = LdosEstimator::new(params.clone(), site).compute(&h).unwrap();
            assert!((ldos.integrate() - 1.0).abs() < 0.02, "site {site}: {}", ldos.integrate());
        }
    }

    #[test]
    fn ldos_of_isolated_level_peaks_there() {
        // Block-diagonal: site 0 decoupled with energy 0.5 — its LDoS is a
        // single smeared delta at 0.5.
        let mut h = DenseMatrix::zeros(8, 8);
        h.set(0, 0, 0.5);
        for i in 1..7 {
            h.set(i, i + 1, -1.0);
            h.set(i + 1, i, -1.0);
        }
        let ldos = LdosEstimator::new(KpmParams::new(128), 0).compute(&h).unwrap();
        assert!((ldos.peak_energy() - 0.5).abs() < 0.05, "peak at {}", ldos.peak_energy());
        // And essentially no weight away from it.
        let away = ldos.value_at(-1.5).unwrap_or(0.0);
        assert!(away.abs() < 0.05 * ldos.value_at(0.5).unwrap());
    }

    #[test]
    fn translation_invariant_lattice_has_uniform_ldos() {
        let tb = TightBinding::new(
            HypercubicLattice::chain(16, Boundary::Periodic),
            1.0,
            OnSite::Uniform(0.0),
        );
        let h = tb.build_csr();
        let params = KpmParams::new(48);
        let a = LdosEstimator::new(params.clone(), 0).compute(&h).unwrap();
        let b = LdosEstimator::new(params.clone(), 7).compute(&h).unwrap();
        for (x, y) in a.rho.iter().zip(&b.rho) {
            assert!((x - y).abs() < 1e-9, "LDoS must be site-independent under PBC");
        }
    }

    #[test]
    fn site_out_of_range_rejected() {
        let h = DenseMatrix::identity(4);
        let e = LdosEstimator::new(KpmParams::new(8), 4).compute(&h);
        assert!(matches!(e, Err(KpmError::InvalidParameter(_))));
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_local_dos_shim_matches_estimator() {
        let h = kpm_lattice::dense_random_symmetric(16, 1.0, 11);
        let params = KpmParams::new(32);
        let via_shim = local_dos(&h, 5, &params).unwrap();
        let via_trait = LdosEstimator::new(params, 5).compute(&h).unwrap();
        assert_eq!(via_shim.rho, via_trait.rho);
        assert_eq!(via_shim.energies, via_trait.energies);
    }

    #[test]
    fn average_ldos_equals_global_dos_moments() {
        // (1/D) sum_i mu_n^i = mu_n exactly.
        let h = kpm_lattice::dense_random_symmetric(12, 1.0, 9);
        let params = KpmParams::new(16);
        let bounds = crate::rescale::Boundable::spectral_bounds(&h, params.bounds).unwrap();
        let rescaled = rescale(&h, bounds, params.padding).unwrap();
        let eig = kpm_linalg::eigen::jacobi_eigenvalues(&h).unwrap();
        let scaled_eigs: Vec<f64> = eig.iter().map(|&e| rescaled.to_rescaled(e)).collect();
        let exact = crate::moments::exact_moments(&scaled_eigs, 16);

        let mut avg = [0.0f64; 16];
        for site in 0..12 {
            let mut e_i = vec![0.0; 12];
            e_i[site] = 1.0;
            let mu = single_vector_moments(&rescaled, &e_i, 16, crate::moments::Recursion::Plain);
            for (a, m) in avg.iter_mut().zip(&mu) {
                *a += m / 12.0;
            }
        }
        for n in 0..16 {
            assert!((avg[n] - exact[n]).abs() < 1e-10, "n = {n}: {} vs {}", avg[n], exact[n]);
        }
    }
}
