//! Local density of states (LDoS).
//!
//! `rho_i(omega) = sum_k |<i|k>|^2 delta(omega - E_k)` needs the moments
//! `mu_n^i = <i|T_n(H~)|i>` — the same recursion as the trace estimator but
//! with the deterministic start vector `e_i` instead of random vectors, so
//! no stochastic average is involved. This is the standard KPM application
//! beyond the paper's global DoS (Weiße et al. 2006, Sec. III.A) and is
//! exercised by the disorder example.

use crate::dos::{Dos, DosEstimator};
use crate::error::KpmError;
use crate::moments::{single_vector_moments, KpmParams, MomentStats};
use crate::rescale::{rescale, Boundable};

/// Computes the LDoS at `site`.
///
/// Uses `params` for the moment count, kernel, bounds method, padding and
/// grid; the stochastic fields (`R`, `S`, distribution) are ignored.
///
/// # Errors
/// Bounds or validation failures, or `site` out of range.
pub fn local_dos<A: Boundable + Sync>(
    op: &A,
    site: usize,
    params: &KpmParams,
) -> Result<Dos, KpmError> {
    params.validate()?;
    if site >= op.dim() {
        return Err(KpmError::InvalidParameter(format!(
            "site {site} out of range for dimension {}",
            op.dim()
        )));
    }
    let bounds = op.spectral_bounds(params.bounds)?;
    let rescaled = rescale(op, bounds, params.padding)?;
    let (a_plus, a_minus) = (rescaled.a_plus(), rescaled.a_minus());

    let mut e_i = vec![0.0; op.dim()];
    e_i[site] = 1.0;
    let mu = single_vector_moments(&rescaled, &e_i, params.num_moments, params.recursion);
    // <e_i|T_n|e_i> is already the LDoS moment: no 1/D, no averaging.
    let stats = MomentStats { std_err: vec![0.0; mu.len()], samples: 1, mean: mu };
    Ok(DosEstimator::new(params.clone()).reconstruct(stats, a_plus, a_minus))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::moments::KpmParams;
    use kpm_lattice::{Boundary, HypercubicLattice, OnSite, TightBinding};
    use kpm_linalg::DenseMatrix;

    #[test]
    fn ldos_integrates_to_one_per_site() {
        // sum_k |<i|k>|^2 = 1 for each site.
        let h = kpm_lattice::dense_random_symmetric(24, 1.0, 3);
        let params = KpmParams::new(64);
        for site in [0usize, 7, 23] {
            let ldos = local_dos(&h, site, &params).unwrap();
            assert!((ldos.integrate() - 1.0).abs() < 0.02, "site {site}: {}", ldos.integrate());
        }
    }

    #[test]
    fn ldos_of_isolated_level_peaks_there() {
        // Block-diagonal: site 0 decoupled with energy 0.5 — its LDoS is a
        // single smeared delta at 0.5.
        let mut h = DenseMatrix::zeros(8, 8);
        h.set(0, 0, 0.5);
        for i in 1..7 {
            h.set(i, i + 1, -1.0);
            h.set(i + 1, i, -1.0);
        }
        let params = KpmParams::new(128);
        let ldos = local_dos(&h, 0, &params).unwrap();
        assert!((ldos.peak_energy() - 0.5).abs() < 0.05, "peak at {}", ldos.peak_energy());
        // And essentially no weight away from it.
        let away = ldos.value_at(-1.5).unwrap_or(0.0);
        assert!(away.abs() < 0.05 * ldos.value_at(0.5).unwrap());
    }

    #[test]
    fn translation_invariant_lattice_has_uniform_ldos() {
        let tb = TightBinding::new(
            HypercubicLattice::chain(16, Boundary::Periodic),
            1.0,
            OnSite::Uniform(0.0),
        );
        let h = tb.build_csr();
        let params = KpmParams::new(48);
        let a = local_dos(&h, 0, &params).unwrap();
        let b = local_dos(&h, 7, &params).unwrap();
        for (x, y) in a.rho.iter().zip(&b.rho) {
            assert!((x - y).abs() < 1e-9, "LDoS must be site-independent under PBC");
        }
    }

    #[test]
    fn site_out_of_range_rejected() {
        let h = DenseMatrix::identity(4);
        let e = local_dos(&h, 4, &KpmParams::new(8));
        assert!(matches!(e, Err(KpmError::InvalidParameter(_))));
    }

    #[test]
    fn average_ldos_equals_global_dos_moments() {
        // (1/D) sum_i mu_n^i = mu_n exactly.
        let h = kpm_lattice::dense_random_symmetric(12, 1.0, 9);
        let params = KpmParams::new(16);
        let bounds = crate::rescale::Boundable::spectral_bounds(&h, params.bounds).unwrap();
        let rescaled = rescale(&h, bounds, params.padding).unwrap();
        let eig = kpm_linalg::eigen::jacobi_eigenvalues(&h).unwrap();
        let scaled_eigs: Vec<f64> = eig.iter().map(|&e| rescaled.to_rescaled(e)).collect();
        let exact = crate::moments::exact_moments(&scaled_eigs, 16);

        let mut avg = [0.0f64; 16];
        for site in 0..12 {
            let mut e_i = vec![0.0; 12];
            e_i[site] = 1.0;
            let mu = single_vector_moments(&rescaled, &e_i, 16, crate::moments::Recursion::Plain);
            for (a, m) in avg.iter_mut().zip(&mu) {
                *a += m / 12.0;
            }
        }
        for n in 0..16 {
            assert!((avg[n] - exact[n]).abs() < 1e-10, "n = {n}: {} vs {}", avg[n], exact[n]);
        }
    }
}
