//! Spectrum-adaptive bounds providers (`kpm::bounds`).
//!
//! The paper rescales with Gershgorin discs (Eq. 8–9), which are loose on
//! disordered lattice Hamiltonians: the rescaled spectrum then occupies only
//! a fraction of `[-1, 1]`, and every unit of wasted support width costs
//! Chebyshev moments at fixed energy resolution. This module adds a
//! deterministic m-step Lanczos provider (Chen, arXiv:2308.15683 §3;
//! Lin–Saad–Yang, arXiv:1308.5467) that returns Ritz-value extremes widened
//! by the per-Ritz residual bound, so the true spectrum is provably
//! contained while the support stays tight.
//!
//! Three providers are exposed under one textual grammar, parsed by the
//! [`FromStr`] impl on [`BoundsMethod`]:
//!
//! | syntax          | provider                                         |
//! |-----------------|--------------------------------------------------|
//! | `gershgorin`    | disc bounds, the paper's method (default)        |
//! | `lanczos[:k]`   | k-step contained Lanczos (default k = 64)        |
//! | `manual:a,b`    | caller-supplied `[a, b]`                         |
//!
//! [`resolve`] is the single entry point the estimator, device pipeline,
//! serve workers, and shard partials all route through. When an operator
//! identity is in scope (see [`OpKeyScope`]) the result is memoized under
//! the same FNV-1a-64 `op_key` family the fleet inventory uses, so repeat
//! jobs on one operator never recompute Gershgorin — and never re-run
//! Lanczos. `kpm.bounds.probe` / `kpm.bounds.cache_hit` counters and a
//! `kpm.bounds` labeled span (carrying `a_plus`/`a_minus`) surface the
//! behaviour in `--trace` output.

use crate::error::KpmError;
use crate::kernels::KernelType;
use crate::random::realization_stream;
use crate::rescale::{Boundable, BoundsMethod};
use kpm_linalg::dense::DenseMatrix;
use kpm_linalg::eigen::jacobi_eigen;
use kpm_linalg::gershgorin::SpectralBounds;
use kpm_linalg::op::LinearOp;
use kpm_linalg::vecops::{axpy, dot, norm2, scale};
use std::cell::Cell;
use std::collections::HashMap;
use std::fmt;
use std::str::FromStr;
use std::sync::{Mutex, OnceLock};

/// The provider abstraction is the existing [`BoundsMethod`] enum — this
/// module gives it the textual grammar, the contained Lanczos
/// implementation, and the memoized resolver.
pub type BoundsProvider = BoundsMethod;

/// Krylov steps used by `--bounds lanczos` when no `:k` suffix is given.
///
/// At m = 64 with full reorthogonalization the extreme Ritz values of the
/// paper's lattices are converged to well below the safety margin, and the
/// probe costs 64 matvecs — negligible next to the `N * R * S` sweeps of
/// the moment stage it shrinks.
pub const DEFAULT_LANCZOS_STEPS: usize = 64;

/// Minimum effective Krylov depth for [`lanczos_contained`].
///
/// `lanczos:K` accepts any `K >= 2` for grammar stability, but the probe
/// silently deepens to this floor (still capped at the operator dimension):
/// below it the extreme Ritz values of a general operator can be far from
/// converged, and the residual-based safety margin would certify a window
/// that misses the true spectral edge.
pub const MIN_CONTAINMENT_STEPS: usize = 12;

/// Master seed for the Lanczos starter vector.
///
/// Drawn through the frozen [`realization_stream`] contract (set 0,
/// realization 0) so the probe is bitwise reproducible everywhere a given
/// operator is assembled — any process, any thread count, any exec plan.
pub const BOUNDS_SEED: u64 = 0x6b70_6d5f_626e_6473; // "kpm_bnds"

impl fmt::Display for BoundsMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoundsMethod::Gershgorin => write!(f, "gershgorin"),
            BoundsMethod::Lanczos { steps } => write!(f, "lanczos:{steps}"),
            BoundsMethod::Explicit { lower, upper } => write!(f, "manual:{lower},{upper}"),
        }
    }
}

impl FromStr for BoundsMethod {
    type Err = KpmError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bad = |msg: String| Err(KpmError::InvalidParameter(msg));
        match s {
            "gershgorin" => Ok(BoundsMethod::Gershgorin),
            "lanczos" => Ok(BoundsMethod::Lanczos { steps: DEFAULT_LANCZOS_STEPS }),
            _ => {
                if let Some(arg) = s.strip_prefix("lanczos:") {
                    let steps: usize = arg.parse().map_err(|_| {
                        KpmError::InvalidParameter(format!("bad lanczos step count '{arg}'"))
                    })?;
                    if steps < 2 {
                        return bad(format!("lanczos needs at least 2 steps, got {steps}"));
                    }
                    Ok(BoundsMethod::Lanczos { steps })
                } else if let Some(arg) = s.strip_prefix("manual:") {
                    let (a, b) = arg.split_once(',').ok_or_else(|| {
                        KpmError::InvalidParameter(format!(
                            "manual bounds need 'manual:lower,upper', got '{s}'"
                        ))
                    })?;
                    let lower: f64 = a.trim().parse().map_err(|_| {
                        KpmError::InvalidParameter(format!("bad manual lower bound '{a}'"))
                    })?;
                    let upper: f64 = b.trim().parse().map_err(|_| {
                        KpmError::InvalidParameter(format!("bad manual upper bound '{b}'"))
                    })?;
                    if !lower.is_finite() || !upper.is_finite() || lower >= upper {
                        return bad(format!(
                            "manual bounds must satisfy lower < upper, got [{lower}, {upper}]"
                        ));
                    }
                    Ok(BoundsMethod::Explicit { lower, upper })
                } else {
                    bad(format!(
                        "unknown bounds provider '{s}' (gershgorin | lanczos[:k] | manual:a,b)"
                    ))
                }
            }
        }
    }
}

/// Contained Lanczos bounds: Ritz extremes plus the residual safety margin.
///
/// Runs `steps` iterations (capped at the operator dimension) of the
/// symmetric Lanczos recursion with full reorthogonalization — at the small
/// m used here the O(m^2 n) reorthogonalization cost is trivial and buys
/// exact-arithmetic behaviour, so the Ritz values are genuine Rayleigh–Ritz
/// estimates from an orthonormal Krylov basis. Per Chen §3, each Ritz pair
/// `(theta_i, s_i)` of the tridiagonal `T_m` has a residual
/// `||A y_i - theta_i y_i|| = beta_m |s_i[m-1]|`, so the interval
/// `[theta_min - eta_min, theta_max + eta_max]` with `eta_i = beta_m
/// |s_i[m-1]|` contains an eigenvalue-centered window; widening each end by
/// its own residual (plus a tiny floating-point floor) yields bounds that
/// contain the full spectrum whenever the extreme eigenvectors have any
/// weight in the starter — guaranteed in practice by the random starter.
///
/// Everything is sequential (one starter vector, scalar dot products in
/// fixed order), so the result is bitwise identical across thread counts
/// and exec plans; only `op.apply` runs on the operator's normal
/// (row-deterministic) path.
///
/// # Errors
/// [`KpmError::InvalidParameter`] for an empty operator or `steps < 2`;
/// [`KpmError::Bounds`] if the tridiagonal eigensolve fails.
pub fn lanczos_contained<A: LinearOp + ?Sized>(
    op: &A,
    steps: usize,
) -> Result<SpectralBounds, KpmError> {
    let n = op.dim();
    if n == 0 {
        return Err(KpmError::InvalidParameter("Lanczos bounds need a non-empty operator".into()));
    }
    if steps < 2 {
        return Err(KpmError::InvalidParameter(format!(
            "lanczos needs at least 2 steps, got {steps}"
        )));
    }
    // Floor the Krylov depth: below ~12 steps the extreme Ritz values of a
    // general operator may not have started converging, and the residual
    // margin then measures a well-converged *interior* pair rather than the
    // spectral edge. Capped at `n`, where the recursion tridiagonalizes the
    // whole operator and the Ritz values are exact.
    let m_max = steps.max(MIN_CONTAINMENT_STEPS).min(n);

    // Deterministic starter through the frozen realization-stream contract.
    let mut rng = realization_stream(BOUNDS_SEED, 0, 0);
    let mut v: Vec<f64> = (0..n).map(|_| 2.0 * rng.next_unit() - 1.0).collect();
    let nrm = norm2(&v);
    scale(1.0 / nrm, &mut v);

    let mut basis: Vec<Vec<f64>> = Vec::with_capacity(m_max);
    basis.push(v);
    let mut alphas: Vec<f64> = Vec::with_capacity(m_max);
    let mut betas: Vec<f64> = Vec::with_capacity(m_max.saturating_sub(1));
    let mut w = vec![0.0; n];
    // Residual norm ||A q_m - (Krylov projection)|| after the final step.
    let mut beta_res = 0.0;
    let mut diag_scale: f64 = 0.0;

    for j in 0..m_max {
        op.apply(&basis[j], &mut w);
        let alpha = dot(&w, &basis[j]);
        alphas.push(alpha);
        diag_scale = diag_scale.max(alpha.abs());
        // Full reorthogonalization, two passes: removes the alpha/beta
        // components and any drift against the whole basis.
        for _ in 0..2 {
            for q in &basis {
                let c = dot(&w, q);
                axpy(-c, q, &mut w);
            }
        }
        let beta = norm2(&w);
        beta_res = beta;
        if j + 1 == m_max {
            break;
        }
        // Breakdown: the Krylov space is (numerically) invariant, so the
        // Ritz values already equal eigenvalues of the restriction.
        if beta <= f64::EPSILON * diag_scale.max(1.0) {
            break;
        }
        diag_scale = diag_scale.max(beta);
        betas.push(beta);
        let mut q = w.clone();
        scale(1.0 / beta, &mut q);
        basis.push(q);
    }

    let m = alphas.len();
    let t = DenseMatrix::from_fn(m, m, |i, j| {
        if i == j {
            alphas[i]
        } else if i.abs_diff(j) == 1 {
            betas[i.min(j)]
        } else {
            0.0
        }
    });
    let (theta, s) = jacobi_eigen(&t)?;
    // Chen §3: the Ritz pair residual is beta_m * |last component of the
    // tridiagonal eigenvector|; widen each extreme by its own residual.
    let eta_lo = beta_res * s.get(m - 1, 0).abs();
    let eta_hi = beta_res * s.get(m - 1, m - 1).abs();
    let span = theta[m - 1].abs().max(theta[0].abs()).max(1.0);
    // Safety cushion on top of the residuals: a 0.1% slice of the Ritz
    // spread absorbs the (exponentially small, but nonzero) tail where an
    // extreme eigenpair is still converging, at negligible cost to the
    // tightening win; the 1e-12 floor covers pure floating-point noise on
    // operators the recursion resolves exactly.
    let cushion = 1e-3 * (theta[m - 1] - theta[0]);
    let floor = cushion + 1e-12 * span;
    Ok(SpectralBounds::new(theta[0] - eta_lo - floor, theta[m - 1] + eta_hi + floor))
}

/// Moments needed to hit energy resolution `eps` given rescale half-width
/// `a_minus` — the moments-at-fixed-resolution autoselect behind
/// `--resolution`.
///
/// A kernel's resolution on the rescaled axis is `c / N` (Jackson: `c =
/// pi`); mapped back to energy units the achieved resolution is `a_minus *
/// c / N`, so `N = ceil(a_minus * c / eps)`. Tighter bounds shrink
/// `a_minus`, and the whole wall-time win of this module is that `N`
/// shrinks with it.
///
/// # Errors
/// [`KpmError::InvalidParameter`] unless `eps` and `a_minus` are finite
/// and positive.
pub fn moments_for_resolution(
    kernel: KernelType,
    a_minus: f64,
    eps: f64,
) -> Result<usize, KpmError> {
    if !eps.is_finite() || eps <= 0.0 {
        return Err(KpmError::InvalidParameter(format!(
            "resolution must be finite and positive, got {eps}"
        )));
    }
    if !a_minus.is_finite() || a_minus <= 0.0 {
        return Err(KpmError::InvalidParameter(format!(
            "rescale half-width must be finite and positive, got {a_minus}"
        )));
    }
    // kernel.resolution(1) is the constant `c` of the `c / N` law.
    let c = kernel.resolution(1);
    let n = (a_minus * c / eps).ceil();
    if !n.is_finite() || n > u32::MAX as f64 {
        return Err(KpmError::InvalidParameter(format!(
            "resolution {eps} needs an unreasonable moment count ({n})"
        )));
    }
    Ok((n as usize).max(2))
}

thread_local! {
    static CURRENT_OP_KEY: Cell<Option<u64>> = const { Cell::new(None) };
}

/// RAII guard that declares the operator identity for [`resolve`] calls on
/// the current thread.
///
/// Serve workers and shard partials enter a scope with their job's
/// FNV-1a-64 `op_key` (the same hash family the fleet inventory
/// advertises); any `resolve` underneath memoizes per `(op_key, provider)`.
/// Without a scope, `resolve` computes unconditionally — correctness never
/// depends on the cache, which only ever holds deterministic
/// recomputable values.
pub struct OpKeyScope {
    prev: Option<u64>,
}

impl OpKeyScope {
    /// Enters a scope; restored (to the previous scope, if nested) on drop.
    pub fn enter(op_key: u64) -> Self {
        let prev = CURRENT_OP_KEY.with(|c| c.replace(Some(op_key)));
        OpKeyScope { prev }
    }
}

impl Drop for OpKeyScope {
    fn drop(&mut self) {
        let prev = self.prev;
        CURRENT_OP_KEY.with(|c| c.set(prev));
    }
}

/// The operator key currently in scope on this thread, if any.
pub fn current_op_key() -> Option<u64> {
    CURRENT_OP_KEY.with(|c| c.get())
}

fn provider_key(method: BoundsMethod) -> u64 {
    crate::tune::fnv1a(method.to_string().as_bytes())
}

fn cache() -> &'static Mutex<HashMap<(u64, u64), SpectralBounds>> {
    static CACHE: OnceLock<Mutex<HashMap<(u64, u64), SpectralBounds>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Drops all memoized bounds. Entries are deterministic and recomputable,
/// so this only exists for tests that assert on probe/hit counters.
pub fn clear_bounds_cache() {
    cache().lock().unwrap().clear();
}

/// Number of memoized `(op_key, provider)` entries — test observability.
pub fn bounds_cache_len() -> usize {
    cache().lock().unwrap().len()
}

/// Resolves spectral bounds for `op`, memoized per operator when an
/// [`OpKeyScope`] is active.
///
/// This is the seam every pipeline routes through (estimator, host device
/// pipeline, shard partials): it bumps `kpm.bounds.probe`, serves repeat
/// probes for a scoped operator from the cache (`kpm.bounds.cache_hit`),
/// and — when tracing is enabled — records a `kpm.bounds` span whose
/// detail carries the provider plus the resulting `a_plus`/`a_minus`.
///
/// # Errors
/// Propagates the provider's error ([`Boundable::spectral_bounds`]).
pub fn resolve<A: Boundable + ?Sized>(
    op: &A,
    method: BoundsMethod,
) -> Result<SpectralBounds, KpmError> {
    kpm_obs::counter_add("kpm.bounds.probe", 1);
    let key = current_op_key().map(|k| (k, provider_key(method)));
    if let Some(k) = key {
        if let Some(hit) = cache().lock().unwrap().get(&k) {
            kpm_obs::counter_add("kpm.bounds.cache_hit", 1);
            return Ok(*hit);
        }
    }
    let bounds = op.spectral_bounds(method)?;
    if let Some(k) = key {
        cache().lock().unwrap().insert(k, bounds);
    }
    if kpm_obs::enabled() {
        let detail =
            format!("{method} a_plus={:.9} a_minus={:.9}", bounds.a_plus(), bounds.a_minus());
        drop(kpm_obs::span_labeled("kpm.bounds", &detail));
    }
    Ok(bounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kpm_linalg::eigen::jacobi_eigenvalues;

    fn chain(n: usize) -> DenseMatrix {
        DenseMatrix::from_fn(n, n, |i, j| if i.abs_diff(j) == 1 { -1.0 } else { 0.0 })
    }

    #[test]
    fn provider_grammar_round_trips() {
        for (text, want) in [
            ("gershgorin", BoundsMethod::Gershgorin),
            ("lanczos", BoundsMethod::Lanczos { steps: DEFAULT_LANCZOS_STEPS }),
            ("lanczos:48", BoundsMethod::Lanczos { steps: 48 }),
            ("manual:-6,6", BoundsMethod::Explicit { lower: -6.0, upper: 6.0 }),
        ] {
            let parsed: BoundsMethod = text.parse().unwrap();
            assert_eq!(parsed, want, "{text}");
            let rendered = parsed.to_string();
            let reparsed: BoundsMethod = rendered.parse().unwrap();
            assert_eq!(reparsed, parsed, "{text} -> {rendered}");
        }
    }

    #[test]
    fn provider_grammar_rejects_nonsense() {
        for bad in
            ["", "lancelot", "lanczos:one", "lanczos:1", "manual:6", "manual:6,-6", "manual:a,b"]
        {
            assert!(bad.parse::<BoundsMethod>().is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn lanczos_contains_dense_spectrum_on_chain() {
        let m = chain(24);
        let eig = jacobi_eigenvalues(&m).unwrap();
        let b = lanczos_contained(&m, 64).unwrap();
        assert!(b.lower <= eig[0], "lower {} vs eig {}", b.lower, eig[0]);
        assert!(b.upper >= eig[eig.len() - 1]);
    }

    #[test]
    fn lanczos_is_deterministic() {
        let m = chain(40);
        let a = lanczos_contained(&m, 24).unwrap();
        let b = lanczos_contained(&m, 24).unwrap();
        assert_eq!(a.lower.to_bits(), b.lower.to_bits());
        assert_eq!(a.upper.to_bits(), b.upper.to_bits());
    }

    #[test]
    fn moments_autoselect_scales_with_half_width() {
        let n_loose = moments_for_resolution(KernelType::Jackson, 6.0, 0.05).unwrap();
        let n_tight = moments_for_resolution(KernelType::Jackson, 3.0, 0.05).unwrap();
        assert_eq!(n_loose, (6.0 * std::f64::consts::PI / 0.05).ceil() as usize);
        assert!(
            n_tight * 2 == n_loose || n_tight * 2 == n_loose + 1,
            "halving the support should halve the moments: {n_tight} vs {n_loose}"
        );
        assert!(moments_for_resolution(KernelType::Jackson, 6.0, 0.0).is_err());
        assert!(moments_for_resolution(KernelType::Jackson, 0.0, 0.05).is_err());
    }

    #[test]
    fn resolve_memoizes_inside_op_key_scope() {
        let m = chain(16);
        // No scope: recomputed each time, never cached.
        let cold = resolve(&m, BoundsMethod::Gershgorin).unwrap();
        let _scope = OpKeyScope::enter(0x0b0c_d00d_f00d_0001);
        let before = bounds_cache_len();
        let first = resolve(&m, BoundsMethod::Gershgorin).unwrap();
        assert_eq!(first.lower.to_bits(), cold.lower.to_bits());
        assert_eq!(bounds_cache_len(), before + 1);
        let second = resolve(&m, BoundsMethod::Gershgorin).unwrap();
        assert_eq!(bounds_cache_len(), before + 1, "repeat probe must be served from cache");
        assert_eq!(second.upper.to_bits(), first.upper.to_bits());
        // A different provider is a distinct cache identity.
        let l = resolve(&m, BoundsMethod::Lanczos { steps: 32 }).unwrap();
        assert_eq!(bounds_cache_len(), before + 2);
        assert!(l.width() <= first.width() + 1e-9);
    }

    #[test]
    fn op_key_scope_nests_and_restores() {
        assert_eq!(current_op_key(), None);
        {
            let _a = OpKeyScope::enter(1);
            assert_eq!(current_op_key(), Some(1));
            {
                let _b = OpKeyScope::enter(2);
                assert_eq!(current_op_key(), Some(2));
            }
            assert_eq!(current_op_key(), Some(1));
        }
        assert_eq!(current_op_key(), None);
    }
}
