//! Chebyshev moment computation — the computational core of the KPM.
//!
//! `mu_n = Tr[T_n(H~)] / D` is estimated stochastically (the paper's
//! Eq. 16/19): for each of `S * R` random vectors `|r>`, run the recursion
//!
//! ```text
//! |r_0> = |r>,   |r_1> = H~ |r_0>,   |r_{n+2}> = 2 H~ |r_{n+1}> - |r_n>
//! ```
//!
//! and accumulate `mu~_n = <r_0 | r_n>`; the estimate is the mean of
//! `mu~_n / D` over realizations. Two recursion strategies are provided:
//!
//! * [`Recursion::Plain`] — the paper's loop: one matvec and one dot per
//!   moment (`N - 1` matvecs for `N` moments).
//! * [`Recursion::Doubling`] — the product identity
//!   `2 T_m T_n = T_{m+n} + T_{m-n}` yields
//!   `mu_{2k} = 2 <r_k|r_k> - mu_0` and `mu_{2k+1} = 2 <r_{k+1}|r_k> - mu_1`,
//!   halving the matvec count (Weiße et al. 2006, Sec. II.D). The paper does
//!   not use this; we include it as a measured ablation.
//!
//! Stochastic estimation is a multiple-right-hand-side problem: every step
//! applies the same `H~` to all `R` vectors of a realization set. The
//! stochastic driver therefore carries each set as one `D x R` column-block
//! through [`kpm_linalg::BlockOp::apply_block`] — three `D x R` buffers
//! pointer-swapped exactly like the single-vector scheme, one matrix sweep
//! amortized over `R` right-hand sides. Per-realization RNG streams are
//! keyed `(s, r)` as before and every block column performs bitwise the
//! same arithmetic as the scalar recursion, so results are bitwise
//! identical to the one-vector-at-a-time path.

use crate::error::KpmError;
use crate::exec::{self, ExecPlan};
use crate::kernels::KernelType;
use crate::random::{fill_random_vector, Distribution};
use crate::rescale::BoundsMethod;
use kpm_linalg::block::BlockOp;
use kpm_linalg::op::LinearOp;
use kpm_linalg::tiled::{self, TiledOp};
use kpm_linalg::vecops;
use rayon::prelude::*;

/// Which Chebyshev recursion to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Recursion {
    /// One matvec per moment (the paper's Fig. 3 loop).
    Plain,
    /// Moment doubling: one matvec per *two* moments.
    Doubling,
}

/// All knobs of a KPM run. Mirrors the paper's parameter set:
/// `N` = `num_moments`, `R` = `num_random`, `S` = `num_realizations`,
/// `H_SIZE` = the operator dimension.
#[derive(Debug, Clone)]
pub struct KpmParams {
    /// Truncation order `N` of the Chebyshev expansion.
    pub num_moments: usize,
    /// Random vectors per realization set, `R`.
    pub num_random: usize,
    /// Realization sets, `S` (outer average of the paper's Eq. 16).
    pub num_realizations: usize,
    /// Master seed; realization `(s, r)` derives its own stream from it.
    pub seed: u64,
    /// Component distribution of the random vectors.
    pub distribution: Distribution,
    /// Recursion strategy.
    pub recursion: Recursion,
    /// Damping kernel for reconstruction.
    pub kernel: KernelType,
    /// How spectral bounds are obtained.
    pub bounds: BoundsMethod,
    /// Relative safety padding applied to the bounds (Eq. 8 rescaling).
    pub padding: f64,
    /// Number of reconstruction grid points (Chebyshev–Gauss abscissas).
    pub grid_points: usize,
}

impl KpmParams {
    /// Defaults around `num_moments`: `R = 8`, `S = 2`, Rademacher vectors,
    /// plain recursion, Jackson kernel, Gershgorin bounds, 1% padding, and
    /// a `2 N` reconstruction grid (rounded up to a power of two).
    pub fn new(num_moments: usize) -> Self {
        Self {
            num_moments,
            num_random: 8,
            num_realizations: 2,
            seed: 0x6b70_6d5f_7365,
            distribution: Distribution::Rademacher,
            recursion: Recursion::Plain,
            kernel: KernelType::Jackson,
            bounds: BoundsMethod::Gershgorin,
            padding: 0.01,
            grid_points: (2 * num_moments).next_power_of_two(),
        }
    }

    /// Sets `R` and `S` — the paper's Fig. 5–8 use `R = 14, S = 128` (or
    /// the swap; only the product matters to cost and accuracy).
    pub fn with_random_vectors(mut self, num_random: usize, num_realizations: usize) -> Self {
        self.num_random = num_random;
        self.num_realizations = num_realizations;
        self
    }

    /// Sets the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the component distribution.
    pub fn with_distribution(mut self, d: Distribution) -> Self {
        self.distribution = d;
        self
    }

    /// Sets the recursion strategy.
    pub fn with_recursion(mut self, r: Recursion) -> Self {
        self.recursion = r;
        self
    }

    /// Sets the damping kernel.
    pub fn with_kernel(mut self, k: KernelType) -> Self {
        self.kernel = k;
        self
    }

    /// Sets the bounds method.
    pub fn with_bounds(mut self, b: BoundsMethod) -> Self {
        self.bounds = b;
        self
    }

    /// Sets the rescaling padding.
    pub fn with_padding(mut self, eps: f64) -> Self {
        self.padding = eps;
        self
    }

    /// Sets the reconstruction grid size.
    pub fn with_grid_points(mut self, k: usize) -> Self {
        self.grid_points = k;
        self
    }

    /// Total number of independent random-vector realizations, `S * R`.
    pub fn total_realizations(&self) -> usize {
        self.num_random * self.num_realizations
    }

    /// Validates the parameter set.
    ///
    /// # Errors
    /// [`KpmError::TooFewMoments`] for `num_moments < 2`,
    /// [`KpmError::GridTooSmall`] for `grid_points < num_moments`,
    /// [`KpmError::NonFinitePadding`] for NaN/infinite padding, and
    /// [`KpmError::InvalidParameter`] naming any other offending field.
    pub fn validate(&self) -> Result<(), KpmError> {
        if self.num_moments < 2 {
            return Err(KpmError::TooFewMoments { got: self.num_moments });
        }
        if self.num_random == 0 || self.num_realizations == 0 {
            return Err(KpmError::InvalidParameter(
                "num_random and num_realizations must be positive".into(),
            ));
        }
        if self.grid_points < self.num_moments {
            return Err(KpmError::GridTooSmall {
                grid_points: self.grid_points,
                num_moments: self.num_moments,
            });
        }
        if !self.padding.is_finite() {
            return Err(KpmError::NonFinitePadding(self.padding));
        }
        if self.padding < 0.0 {
            return Err(KpmError::InvalidParameter(format!(
                "padding must be nonnegative, got {}",
                self.padding
            )));
        }
        Ok(())
    }
}

/// Stochastic moment estimate with per-moment standard errors.
#[derive(Debug, Clone)]
pub struct MomentStats {
    /// Mean moments `mu_0 .. mu_{N-1}`.
    pub mean: Vec<f64>,
    /// Standard error of each mean across realizations (zero when only one
    /// realization was drawn).
    pub std_err: Vec<f64>,
    /// Number of realizations averaged.
    pub samples: usize,
}

impl MomentStats {
    /// Truncation order of this estimate (number of stored moments).
    pub fn num_moments(&self) -> usize {
        self.mean.len()
    }

    /// The first `n` moments as a stand-alone estimate.
    ///
    /// Chebyshev moments of order `< n` do not depend on the truncation
    /// order: a run at `N' > n` performs the identical recursion steps and
    /// the identical index-ordered reduction for the leading `n` entries, so
    /// `truncated(n)` of the longer run is bitwise equal to a fresh run at
    /// `n` with the same parameters. This is what lets a moment cache serve
    /// lower-order requests from a higher-order entry (kernel damping is
    /// applied at reconstruction time, never stored here).
    ///
    /// # Panics
    /// Panics if `n > self.num_moments()` or `n < 2`.
    pub fn truncated(&self, n: usize) -> Self {
        assert!(n >= 2, "need at least two moments");
        assert!(n <= self.mean.len(), "cannot truncate {} moments to {n}", self.mean.len());
        Self {
            mean: self.mean[..n].to_vec(),
            std_err: self.std_err[..n].to_vec(),
            samples: self.samples,
        }
    }

    /// Largest standard error across all moments — a one-number convergence
    /// indicator (zero for deterministic single-vector runs).
    pub fn max_std_err(&self) -> f64 {
        self.std_err.iter().fold(0.0, |m, &e| m.max(e))
    }

    /// Exact merge of per-realization normalized moment vectors into a
    /// [`MomentStats`], in the order given.
    ///
    /// This is *the* reduction of the stochastic estimator: a streaming
    /// Welford pass (mean plus sum of squared deviations) over the
    /// realizations in canonical `idx = s * R + r` order. It is factored out
    /// so that a distributed run can regenerate it exactly — shard workers
    /// return their realizations' `mu~_n / D` vectors untouched, the
    /// coordinator concatenates the shards in canonical order and calls this
    /// function, and the result is bitwise identical to a single-process
    /// [`stochastic_moments`] run (which is itself implemented on top of
    /// this merge). Floating-point summation is not associative, so the
    /// merge deliberately re-runs the sequential reduction instead of
    /// combining partial Welford states.
    ///
    /// # Panics
    /// Panics if `per_realization` is empty or the vectors have unequal
    /// lengths.
    pub fn merge_realizations(per_realization: &[Vec<f64>]) -> Self {
        let total = per_realization.len();
        assert!(total > 0, "cannot merge zero realizations");
        let n = per_realization[0].len();
        let mut mean = vec![0.0; n];
        let mut m2 = vec![0.0; n]; // sum of squared deviations (Welford)
        for (count, mu) in per_realization.iter().enumerate() {
            assert_eq!(mu.len(), n, "realization {count} has wrong moment count");
            let k = (count + 1) as f64;
            for i in 0..n {
                let delta = mu[i] - mean[i];
                mean[i] += delta / k;
                m2[i] += delta * (mu[i] - mean[i]);
            }
        }
        let std_err = if total > 1 {
            m2.iter().map(|&s| (s / (total as f64 - 1.0)).sqrt() / (total as f64).sqrt()).collect()
        } else {
            vec![0.0; n]
        };
        MomentStats { mean, std_err, samples: total }
    }
}

/// Deterministic partition of `total` realizations into at most
/// `num_shards` contiguous, non-empty index ranges covering `0..total`.
///
/// The plan is a pure function of `(total, num_shards)` — no RNG, no
/// timing — so every node of a distributed run derives the identical
/// partition, and shard `k` always means the same realization indices on
/// coordinator and workers. Ranges differ in length by at most one
/// (`k * total / shards` boundaries). When `num_shards > total` the plan
/// degenerates to one shard per realization.
///
/// # Panics
/// Panics if `total == 0` or `num_shards == 0`.
pub fn shard_plan(total: usize, num_shards: usize) -> Vec<std::ops::Range<usize>> {
    assert!(total > 0, "cannot shard zero realizations");
    assert!(num_shards > 0, "need at least one shard");
    let shards = num_shards.min(total);
    (0..shards).map(|k| (k * total / shards)..((k + 1) * total / shards)).collect()
}

/// Groups a realization index range into per-set `(s, r_lo..r_hi)` chunks —
/// the work units [`per_realization_moments`] plans over. Exposed so the
/// serving layers can derive the chunk count a job will use (the calibrated
/// profile key includes it) without duplicating the grouping rule.
pub fn realization_chunks(
    r_per_s: usize,
    range: std::ops::Range<usize>,
) -> Vec<(usize, std::ops::Range<usize>)> {
    let mut chunks: Vec<(usize, std::ops::Range<usize>)> = Vec::new();
    let mut idx = range.start;
    while idx < range.end {
        let s = idx / r_per_s;
        let r_lo = idx % r_per_s;
        let r_hi = (range.end - s * r_per_s).min(r_per_s);
        chunks.push((s, r_lo..r_hi));
        idx = s * r_per_s + r_hi;
    }
    chunks
}

/// The number of planning chunks a `params` run over `range` produces —
/// `realization_chunks(...).len()` without the allocation's contents
/// mattering. Serve workers and shard compute threads feed this to
/// [`crate::tune::ensure_profile`].
pub fn realization_chunk_count(params: &KpmParams, range: std::ops::Range<usize>) -> usize {
    if range.is_empty() {
        return 0;
    }
    realization_chunks(params.num_random, range).len()
}

/// The normalized per-realization moment vectors `mu~_n / D` for the
/// realization index range `range` (canonical `idx = s * R + r` indexing)
/// of the full `S x R` ensemble described by `params`.
///
/// Entry `i` of the result is realization `range.start + i`. Realizations
/// sharing a set `s` advance together as one `D x k` block — and because
/// each block column is bitwise identical to the scalar recursion
/// (the [`block_vector_moments`] contract), the values are independent of
/// how `range` slices through realization sets. This is the worker half of
/// the distributed estimator; [`MomentStats::merge_realizations`] is the
/// coordinator half, and [`stochastic_moments`] is literally the two glued
/// together over the full range.
///
/// # Panics
/// Panics if parameters are invalid, `range` is empty, or
/// `range.end > params.total_realizations()`.
pub fn per_realization_moments<A: TiledOp + Sync>(
    op: &A,
    params: &KpmParams,
    range: std::ops::Range<usize>,
) -> Vec<Vec<f64>> {
    params.validate().expect("invalid KPM parameters");
    assert!(!range.is_empty(), "empty realization range");
    assert!(
        range.end <= params.total_realizations(),
        "range {range:?} exceeds {} total realizations",
        params.total_realizations()
    );
    let d = op.dim();
    let n = params.num_moments;
    let r_per_s = params.num_random;

    // Group the index range by realization set: (s, r_lo..r_hi) chunks, one
    // D x (r_hi - r_lo) block each. A full interior set keeps its full-R
    // block exactly as the unsharded driver builds it.
    let chunks = realization_chunks(r_per_s, range);

    let run_chunk = |(s, rs): &(usize, std::ops::Range<usize>)| -> Vec<Vec<f64>> {
        let k = rs.len();
        let mut block = vec![0.0; d * k];
        for (j, r) in rs.clone().enumerate() {
            fill_random_vector(
                params.distribution,
                params.seed,
                *s,
                r,
                &mut block[j * d..(j + 1) * d],
            );
        }
        let mut per_column = block_vector_moments(op, &block, k, n, params.recursion);
        let inv_d = 1.0 / d as f64;
        for mu in per_column.iter_mut() {
            for m in mu.iter_mut() {
                *m *= inv_d;
            }
        }
        kpm_obs::counter_add("kpm.realizations", k as u64);
        per_column
    };

    // Same chunk, but through the row-tiled fused engine: the recursion,
    // the Chebyshev combine, and the moment dots run in one pass per sweep,
    // parallelized across the matrix dimension.
    let run_chunk_tiled = |(s, rs): &(usize, std::ops::Range<usize>),
                           threads: usize,
                           tile_rows: usize|
     -> Vec<Vec<f64>> {
        let k = rs.len();
        let mut block = vec![0.0; d * k];
        for (j, r) in rs.clone().enumerate() {
            fill_random_vector(
                params.distribution,
                params.seed,
                *s,
                r,
                &mut block[j * d..(j + 1) * d],
            );
        }
        let (mut per_column, stats) = match params.recursion {
            Recursion::Plain => {
                tiled::fused_block_moments_plain(op, &block, k, n, threads, tile_rows)
            }
            Recursion::Doubling => {
                tiled::fused_block_moments_doubling(op, &block, k, n, threads, tile_rows)
            }
        };
        let inv_d = 1.0 / d as f64;
        for mu in per_column.iter_mut() {
            for m in mu.iter_mut() {
                *m *= inv_d;
            }
        }
        if kpm_obs::enabled() {
            kpm_obs::counter_add("kpm.exec.tiles", stats.tiles);
            kpm_obs::counter_add("kpm.exec.steal", stats.steals);
            kpm_obs::counter_add("kpm.spmm.sweeps", stats.sweeps);
            kpm_obs::counter_add("kpm.spmm.rows", stats.sweeps * d as u64);
            kpm_obs::counter_add(&format!("kpm.spmm.width.{k}"), stats.sweeps);
        }
        kpm_obs::counter_add("kpm.realizations", k as u64);
        per_column
    };

    // Mixed precision is value-affecting and opt-in: it runs the untiled
    // f32-state recursion serially per chunk (one value family, documented
    // in DESIGN §12), bypassing the calibrated planner entirely.
    let mixed = exec::moments_precision() == exec::MomentPrecision::MixedF32;
    let run_chunk_mixed = |(s, rs): &(usize, std::ops::Range<usize>)| -> Vec<Vec<f64>> {
        let k = rs.len();
        let mut block = vec![0.0; d * k];
        for (j, r) in rs.clone().enumerate() {
            fill_random_vector(
                params.distribution,
                params.seed,
                *s,
                r,
                &mut block[j * d..(j + 1) * d],
            );
        }
        let mut per_column = block_vector_moments_mixed(op, &block, k, n);
        let inv_d = 1.0 / d as f64;
        for mu in per_column.iter_mut() {
            for m in mu.iter_mut() {
                *m *= inv_d;
            }
        }
        kpm_obs::counter_add("kpm.realizations", k as u64);
        per_column
    };
    if mixed {
        if kpm_obs::enabled() {
            kpm_obs::counter_add("kpm.exec.plan.mixed", 1);
        }
        let _exec_span = kpm_obs::span_labeled("kpm.exec", "mixed");
        let per_chunk: Vec<Vec<Vec<f64>>> = chunks.iter().map(run_chunk_mixed).collect();
        return per_chunk.into_iter().flatten().collect();
    }

    let plan = exec::plan_for(d, op.model_entries(), chunks.len());
    if kpm_obs::enabled() {
        kpm_obs::counter_add(&format!("kpm.exec.plan.{}", plan.name()), 1);
    }
    let _exec_span = kpm_obs::span_labeled("kpm.exec", plan.name());
    let per_chunk: Vec<Vec<Vec<f64>>> = match plan {
        ExecPlan::Serial => chunks.iter().map(run_chunk).collect(),
        ExecPlan::Realizations => {
            (0..chunks.len()).into_par_iter().map(|i| run_chunk(&chunks[i])).collect()
        }
        ExecPlan::Rows { threads, tile_rows } => {
            chunks.iter().map(|c| run_chunk_tiled(c, threads, tile_rows)).collect()
        }
        ExecPlan::Hybrid { outer, inner, tile_rows } => {
            run_chunks_hybrid(outer, &chunks, |c| run_chunk_tiled(c, inner, tile_rows))
        }
    };
    per_chunk.into_iter().flatten().collect()
}

/// Runs `f` over `items` with up to `outer` chunks in flight (the calling
/// thread participates), collecting results *by index* so the output order
/// — and therefore the canonical realization-order reduction downstream —
/// is independent of scheduling.
fn run_chunks_hybrid<C: Sync, T: Send, F: Fn(&C) -> T + Sync>(
    outer: usize,
    items: &[C],
    f: F,
) -> Vec<T> {
    if outer <= 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let worker = || loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        match items.get(i) {
            Some(item) => *slots[i].lock().expect("hybrid slot poisoned") = Some(f(item)),
            None => break,
        }
    };
    std::thread::scope(|scope| {
        let worker = &worker;
        for _ in 1..outer.min(items.len()) {
            scope.spawn(worker);
        }
        worker();
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("hybrid slot poisoned")
                .expect("hybrid worker skipped a chunk — internal bug")
        })
        .collect()
}

/// Computes the moments `<r_0|T_n(H~)|r_0>` (not normalized by `D`) for one
/// start vector, by the requested recursion.
///
/// # Panics
/// Panics if `r0.len() != op.dim()` or `num_moments < 2`.
pub fn single_vector_moments<A: LinearOp>(
    op: &A,
    r0: &[f64],
    num_moments: usize,
    recursion: Recursion,
) -> Vec<f64> {
    assert_eq!(r0.len(), op.dim(), "start vector length");
    assert!(num_moments >= 2, "need at least two moments");
    match recursion {
        Recursion::Plain => plain_moments(op, r0, num_moments),
        Recursion::Doubling => doubling_moments(op, r0, num_moments),
    }
}

fn plain_moments<A: LinearOp>(op: &A, r0: &[f64], n: usize) -> Vec<f64> {
    let d = r0.len();
    let mut mu = Vec::with_capacity(n);
    let mut prev = r0.to_vec(); // r_0
    let mut cur = vec![0.0; d]; // r_1
    op.apply(&prev, &mut cur);
    mu.push(vecops::dot(r0, &prev)); // mu~_0
    mu.push(vecops::dot(r0, &cur)); // mu~_1
    let mut scratch = vec![0.0; d];
    for _ in 2..n {
        // r_{n+2} = 2 H r_{n+1} - r_n, reusing `prev` as the output buffer —
        // the same pointer-swap scheme the paper's GPU code uses. The
        // combine and the moment dot run fused in one pass.
        op.apply(&cur, &mut scratch);
        let mu_n = vecops::chebyshev_combine_dot(&scratch, &mut prev, r0);
        std::mem::swap(&mut prev, &mut cur);
        mu.push(mu_n);
    }
    mu
}

fn doubling_moments<A: LinearOp>(op: &A, r0: &[f64], n: usize) -> Vec<f64> {
    let d = r0.len();
    let mut mu = vec![0.0; n];
    let mut prev = r0.to_vec(); // r_{k-1}, starts as r_0
    let mut cur = vec![0.0; d]; // r_k, starts as r_1
    op.apply(&prev, &mut cur);
    let mu0 = vecops::dot(r0, r0);
    let mu1 = vecops::dot(&cur, r0);
    mu[0] = mu0;
    if n > 1 {
        mu[1] = mu1;
    }
    let mut scratch = vec![0.0; d];
    let mut k = 1usize;
    while 2 * k < n {
        // mu_{2k} = 2 <r_k|r_k> - mu_0
        mu[2 * k] = 2.0 * vecops::dot(&cur, &cur) - mu0;
        if 2 * k + 1 < n {
            // r_{k+1} = 2 H r_k - r_{k-1}; the combine is fused with the
            // cross dot <r_{k+1}|r_k> (dotting against `cur` = r_k before the
            // swap — multiplication is commutative, so the product sequence
            // is bitwise the one the unfused path computed).
            op.apply(&cur, &mut scratch);
            let cross = vecops::chebyshev_combine_dot(&scratch, &mut prev, &cur);
            std::mem::swap(&mut prev, &mut cur);
            // mu_{2k+1} = 2 <r_{k+1}|r_k> - mu_1
            mu[2 * k + 1] = 2.0 * cross - mu1;
        }
        k += 1;
    }
    mu
}

/// One blocked matrix sweep, instrumented: `kpm.spmm.sweeps` counts block
/// applications, `kpm.spmm.rows` the rows streamed, and
/// `kpm.spmm.width.<k>` forms a per-block-width histogram in the trace
/// counters.
fn apply_block_counted<A: BlockOp + ?Sized>(op: &A, x: &[f64], y: &mut [f64], k: usize) {
    op.apply_block(x, y, k);
    if kpm_obs::enabled() {
        kpm_obs::counter_add("kpm.spmm.sweeps", 1);
        kpm_obs::counter_add("kpm.spmm.rows", op.dim() as u64);
        kpm_obs::counter_add(&format!("kpm.spmm.width.{k}"), 1);
    }
}

/// Computes the moments `<r_j|T_n(H~)|r_j>` (not normalized by `D`) for all
/// `k` columns of a `D x k` start block in one recursion: each step is a
/// single [`BlockOp::apply_block`] sweep amortized over the whole block.
///
/// Column `j` of the result is bitwise identical to
/// [`single_vector_moments`] on `block[j * D..(j + 1) * D]`: per column the
/// blocked recursion performs exactly the same arithmetic in the same
/// order, and the [`BlockOp`] contract guarantees the same for the operator
/// application.
///
/// # Panics
/// Panics if `block.len() != op.dim() * k`, `k == 0`, or `num_moments < 2`.
pub fn block_vector_moments<A: BlockOp + ?Sized>(
    op: &A,
    block: &[f64],
    k: usize,
    num_moments: usize,
    recursion: Recursion,
) -> Vec<Vec<f64>> {
    assert!(k > 0, "block must have at least one column");
    assert_eq!(block.len(), op.dim() * k, "start block length");
    assert!(num_moments >= 2, "need at least two moments");
    match recursion {
        Recursion::Plain => block_plain_moments(op, block, k, num_moments),
        Recursion::Doubling => block_doubling_moments(op, block, k, num_moments),
    }
}

/// [`block_vector_moments`] with the mixed-precision recursion: every
/// Chebyshev state vector is rounded to f32 storage precision after each
/// step — the paper's single-precision bandwidth saving, modeled on the CPU
/// — while every moment dot still accumulates in f64. Plain recursion only
/// (moment doubling would square the rounding error for the high moments).
///
/// Value-affecting and strictly opt-in: [`per_realization_moments`] only
/// dispatches here under `MomentPrecision::MixedF32`, and the error-budget
/// test in `kpm/tests/exec_plans.rs` pins its deviation from the f64 path
/// on the paper's lattices.
///
/// # Panics
/// Panics if `block.len() != op.dim() * k`, `k == 0`, or `num_moments < 2`.
pub fn block_vector_moments_mixed<A: BlockOp + ?Sized>(
    op: &A,
    block: &[f64],
    k: usize,
    num_moments: usize,
) -> Vec<Vec<f64>> {
    assert!(k > 0, "block must have at least one column");
    assert_eq!(block.len(), op.dim() * k, "start block length");
    assert!(num_moments >= 2, "need at least two moments");
    let d = op.dim();
    let n = num_moments;
    let quantize = |v: &mut [f64]| {
        for x in v.iter_mut() {
            *x = *x as f32 as f64;
        }
    };
    let mut r0 = block.to_vec();
    quantize(&mut r0);
    let mut mu: Vec<Vec<f64>> = (0..k).map(|_| Vec::with_capacity(n)).collect();
    let mut prev = r0.clone(); // R_0, already at storage precision
    let mut cur = vec![0.0; d * k]; // R_1
    apply_block_counted(op, &prev, &mut cur, k);
    quantize(&mut cur);
    for (j, mu_j) in mu.iter_mut().enumerate() {
        let col = j * d..(j + 1) * d;
        mu_j.push(vecops::dot(&r0[col.clone()], &prev[col.clone()])); // mu~_0
        mu_j.push(vecops::dot(&r0[col.clone()], &cur[col])); // mu~_1
    }
    let mut scratch = vec![0.0; d * k];
    for _ in 2..n {
        apply_block_counted(op, &cur, &mut scratch, k);
        // R_{n+2} = 2 H R_{n+1} - R_n, stored back at f32 precision; the
        // dot against R_0 runs over the rounded state but sums in f64.
        for (p, &s) in prev.iter_mut().zip(scratch.iter()) {
            *p = ((2.0 * s - *p) as f32) as f64;
        }
        for (j, mu_j) in mu.iter_mut().enumerate() {
            let col = j * d..(j + 1) * d;
            mu_j.push(vecops::dot(&r0[col.clone()], &prev[col]));
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    mu
}

fn block_plain_moments<A: BlockOp + ?Sized>(
    op: &A,
    r0: &[f64],
    k: usize,
    n: usize,
) -> Vec<Vec<f64>> {
    let d = op.dim();
    let mut mu: Vec<Vec<f64>> = (0..k).map(|_| Vec::with_capacity(n)).collect();
    let mut prev = r0.to_vec(); // R_0
    let mut cur = vec![0.0; d * k]; // R_1
    apply_block_counted(op, &prev, &mut cur, k);
    for (j, mu_j) in mu.iter_mut().enumerate() {
        let col = j * d..(j + 1) * d;
        mu_j.push(vecops::dot(&r0[col.clone()], &prev[col.clone()])); // mu~_0
        mu_j.push(vecops::dot(&r0[col.clone()], &cur[col])); // mu~_1
    }
    let mut scratch = vec![0.0; d * k];
    for _ in 2..n {
        // R_{n+2} = 2 H R_{n+1} - R_n for the whole block, reusing `prev`
        // as the output — the paper's Fig. 3 pointer swap, widened to R
        // columns so the matrix is streamed once per step. The combine and
        // the per-column moment dots run fused, one pass per column.
        apply_block_counted(op, &cur, &mut scratch, k);
        for (j, mu_j) in mu.iter_mut().enumerate() {
            let col = j * d..(j + 1) * d;
            mu_j.push(vecops::chebyshev_combine_dot(
                &scratch[col.clone()],
                &mut prev[col.clone()],
                &r0[col],
            ));
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    mu
}

fn block_doubling_moments<A: BlockOp + ?Sized>(
    op: &A,
    r0: &[f64],
    k: usize,
    n: usize,
) -> Vec<Vec<f64>> {
    let d = op.dim();
    let mut mu: Vec<Vec<f64>> = vec![vec![0.0; n]; k];
    let mut prev = r0.to_vec(); // R_{m-1}, starts as R_0
    let mut cur = vec![0.0; d * k]; // R_m, starts as R_1
    apply_block_counted(op, &prev, &mut cur, k);
    let mut mu0 = vec![0.0; k];
    let mut mu1 = vec![0.0; k];
    for j in 0..k {
        let col = j * d..(j + 1) * d;
        mu0[j] = vecops::dot(&r0[col.clone()], &r0[col.clone()]);
        mu1[j] = vecops::dot(&cur[col.clone()], &r0[col]);
        mu[j][0] = mu0[j];
        if n > 1 {
            mu[j][1] = mu1[j];
        }
    }
    let mut scratch = vec![0.0; d * k];
    let mut m = 1usize;
    while 2 * m < n {
        for (j, mu_j) in mu.iter_mut().enumerate() {
            let col = j * d..(j + 1) * d;
            // mu_{2m} = 2 <r_m|r_m> - mu_0
            mu_j[2 * m] = 2.0 * vecops::dot(&cur[col.clone()], &cur[col]) - mu0[j];
        }
        if 2 * m + 1 < n {
            // R_{m+1} = 2 H R_m - R_{m-1}; per column the combine fuses with
            // the cross dot <r_{m+1}|r_m> (against `cur` = R_m before the
            // swap; commutative products, bitwise unchanged).
            apply_block_counted(op, &cur, &mut scratch, k);
            for (j, mu_j) in mu.iter_mut().enumerate() {
                let col = j * d..(j + 1) * d;
                let cross = vecops::chebyshev_combine_dot(
                    &scratch[col.clone()],
                    &mut prev[col.clone()],
                    &cur[col],
                );
                // mu_{2m+1} = 2 <r_{m+1}|r_m> - mu_1
                mu_j[2 * m + 1] = 2.0 * cross - mu1[j];
            }
            std::mem::swap(&mut prev, &mut cur);
        }
        m += 1;
    }
    mu
}

/// Off-diagonal (pair) moments `<l | T_n(H~) | r0>` — the ingredients of
/// matrix-element Green's functions `G_ij(omega)` (feed the result to
/// [`crate::green::evaluate`]). Only the plain recursion applies:
/// the doubling identities require `l == r0`.
///
/// # Panics
/// Panics on dimension mismatch or `num_moments < 2`.
pub fn pair_vector_moments<A: LinearOp>(
    op: &A,
    l: &[f64],
    r0: &[f64],
    num_moments: usize,
) -> Vec<f64> {
    assert_eq!(l.len(), op.dim(), "left vector length");
    assert_eq!(r0.len(), op.dim(), "right vector length");
    assert!(num_moments >= 2, "need at least two moments");
    let d = r0.len();
    let mut mu = Vec::with_capacity(num_moments);
    let mut prev = r0.to_vec();
    let mut cur = vec![0.0; d];
    op.apply(&prev, &mut cur);
    mu.push(vecops::dot(l, &prev));
    mu.push(vecops::dot(l, &cur));
    let mut scratch = vec![0.0; d];
    for _ in 2..num_moments {
        op.apply(&cur, &mut scratch);
        let mu_n = vecops::chebyshev_combine_dot(&scratch, &mut prev, l);
        std::mem::swap(&mut prev, &mut cur);
        mu.push(mu_n);
    }
    mu
}

/// Stochastic trace estimation of the normalized moments
/// `mu_n = Tr[T_n(H~)]/D` over `S * R` random vectors (the paper's step
/// (1)–(3), Fig. 3). Each realization set's `R` vectors advance together as
/// one `D x R` block ([`block_vector_moments`]), so the matrix is streamed
/// once per moment step instead of once per vector. Sets are independent
/// and run in parallel when the dimension is large enough to amortize the
/// fork-join overhead ([`vecops::use_parallel`]); results are reduced in a
/// fixed `(s, r)` order so the output is deterministic for a given seed
/// regardless of thread count — and bitwise identical to the serial,
/// one-vector-at-a-time path.
///
/// The operator must already be rescaled into `[-1, 1]`.
///
/// # Panics
/// Panics if parameters are invalid (call [`KpmParams::validate`] first for
/// a recoverable error).
pub fn stochastic_moments<A: TiledOp + Sync>(op: &A, params: &KpmParams) -> MomentStats {
    params.validate().expect("invalid KPM parameters");
    let _span = kpm_obs::span("kpm.moments");
    // Compute every realization, then run the canonical index-ordered
    // reduction — exactly the two halves a distributed run performs on
    // workers and coordinator, so sharded and single-process results are
    // bitwise identical by construction.
    let per_realization = per_realization_moments(op, params, 0..params.total_realizations());
    MomentStats::merge_realizations(&per_realization)
}

/// Exact moments `mu_n = (1/D) sum_k T_n(e_k)` from a full (already
/// rescaled) spectrum — the ground truth the stochastic estimator is tested
/// against.
///
/// # Panics
/// Panics if any eigenvalue lies outside `[-1, 1]` or the spectrum is empty.
pub fn exact_moments(rescaled_eigenvalues: &[f64], num_moments: usize) -> Vec<f64> {
    assert!(!rescaled_eigenvalues.is_empty(), "spectrum must be nonempty");
    let mut mu = vec![0.0; num_moments];
    for &e in rescaled_eigenvalues {
        assert!(
            (-1.0..=1.0).contains(&e),
            "eigenvalue {e} outside [-1, 1]; rescale the spectrum first"
        );
        // Accumulate T_n(e) by the recursion.
        let mut tm = 1.0;
        let mut tc = e;
        mu[0] += 1.0;
        if num_moments > 1 {
            mu[1] += e;
        }
        for slot in mu.iter_mut().skip(2) {
            let tn = 2.0 * e * tc - tm;
            tm = tc;
            tc = tn;
            *slot += tn;
        }
    }
    let inv = 1.0 / rescaled_eigenvalues.len() as f64;
    for m in mu.iter_mut() {
        *m *= inv;
    }
    mu
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chebyshev;
    use kpm_linalg::op::{DiagonalOp, IdentityOp};

    #[test]
    fn params_builder_and_validation() {
        let p = KpmParams::new(128)
            .with_random_vectors(14, 128)
            .with_seed(7)
            .with_recursion(Recursion::Doubling)
            .with_padding(0.02)
            .with_grid_points(512);
        assert_eq!(p.total_realizations(), 1792);
        assert!(p.validate().is_ok());
        assert!(KpmParams::new(1).validate().is_err());
        assert!(KpmParams::new(8).with_random_vectors(0, 1).validate().is_err());
        assert!(KpmParams::new(8).with_grid_points(0).validate().is_err());
        assert!(KpmParams::new(8).with_padding(f64::NAN).validate().is_err());
    }

    #[test]
    fn validate_rejects_too_few_moments_with_specific_variant() {
        assert_eq!(KpmParams::new(0).validate(), Err(KpmError::TooFewMoments { got: 0 }));
        assert_eq!(KpmParams::new(1).validate(), Err(KpmError::TooFewMoments { got: 1 }));
        assert!(KpmParams::new(2).validate().is_ok());
    }

    #[test]
    fn validate_rejects_grid_smaller_than_expansion_order() {
        assert_eq!(
            KpmParams::new(64).with_grid_points(32).validate(),
            Err(KpmError::GridTooSmall { grid_points: 32, num_moments: 64 })
        );
        // Equality is the boundary: a grid exactly as fine as the expansion
        // order is accepted.
        assert!(KpmParams::new(64).with_grid_points(64).validate().is_ok());
    }

    #[test]
    fn validate_rejects_non_finite_padding_with_specific_variant() {
        assert!(matches!(
            KpmParams::new(8).with_padding(f64::NAN).validate(),
            Err(KpmError::NonFinitePadding(eps)) if eps.is_nan()
        ));
        assert_eq!(
            KpmParams::new(8).with_padding(f64::INFINITY).validate(),
            Err(KpmError::NonFinitePadding(f64::INFINITY))
        );
        // Negative-but-finite padding stays an InvalidParameter.
        assert!(matches!(
            KpmParams::new(8).with_padding(-0.1).validate(),
            Err(KpmError::InvalidParameter(_))
        ));
        assert!(KpmParams::new(8).with_padding(0.0).validate().is_ok());
    }

    #[test]
    fn single_vector_moments_on_diagonal_operator() {
        // For H = diag(a) and r0 = e_0 scaled: <r0|T_n(H)|r0> = r0_0^2 T_n(a_0).
        let a = 0.37;
        let op = DiagonalOp::new(vec![a, -0.5]);
        let r0 = vec![2.0, 0.0];
        let mu = single_vector_moments(&op, &r0, 16, Recursion::Plain);
        for (n, &m) in mu.iter().enumerate() {
            assert!((m - 4.0 * chebyshev::t(n, a)).abs() < 1e-12, "n = {n}");
        }
    }

    #[test]
    fn doubling_matches_plain() {
        let diag: Vec<f64> = (0..24).map(|i| ((i as f64) * 0.41).sin() * 0.9).collect();
        let op = DiagonalOp::new(diag);
        let mut r0 = vec![0.0; 24];
        fill_random_vector(Distribution::Gaussian, 5, 0, 0, &mut r0);
        for n in [2usize, 3, 7, 8, 33, 64] {
            let plain = single_vector_moments(&op, &r0, n, Recursion::Plain);
            let doubled = single_vector_moments(&op, &r0, n, Recursion::Doubling);
            for i in 0..n {
                assert!(
                    (plain[i] - doubled[i]).abs() < 1e-9 * (1.0 + plain[i].abs()),
                    "n = {n}, i = {i}: {} vs {}",
                    plain[i],
                    doubled[i]
                );
            }
        }
    }

    #[test]
    fn block_recursion_matches_scalar_per_column_bitwise() {
        // The K = 1 case and every wider block must reproduce the scalar
        // recursion bit for bit, for both recursion strategies.
        let d = 24;
        let op = DiagonalOp::new((0..d).map(|i| ((i as f64) * 0.41).sin() * 0.9).collect());
        for recursion in [Recursion::Plain, Recursion::Doubling] {
            for k in [1usize, 2, 5] {
                let mut block = vec![0.0; d * k];
                for (j, col) in block.chunks_exact_mut(d).enumerate() {
                    fill_random_vector(Distribution::Gaussian, 77, 0, j, col);
                }
                let blocked = block_vector_moments(&op, &block, k, 17, recursion);
                for (j, col_mu) in blocked.iter().enumerate() {
                    let scalar =
                        single_vector_moments(&op, &block[j * d..(j + 1) * d], 17, recursion);
                    assert_eq!(col_mu, &scalar, "{recursion:?}, k = {k}, column {j}");
                }
            }
        }
    }

    #[test]
    fn stochastic_block_path_is_bitwise_equal_to_scalar_seed_path() {
        // Replays the historical one-vector-at-a-time driver (loop over
        // idx = s * R + r, scalar recursion, index-ordered Welford) and
        // demands bitwise agreement with the blocked implementation.
        let d = 40;
        let op = DiagonalOp::new((0..d).map(|i| (i as f64 * 0.77).sin() * 0.8).collect());
        let p = KpmParams::new(16)
            .with_random_vectors(4, 3)
            .with_distribution(Distribution::Gaussian)
            .with_seed(13);
        let stats = stochastic_moments(&op, &p);

        let n = p.num_moments;
        let total = p.total_realizations();
        let mut mean = vec![0.0; n];
        let mut m2 = vec![0.0; n];
        for idx in 0..total {
            let (s, r) = (idx / p.num_random, idx % p.num_random);
            let mut r0 = vec![0.0; d];
            fill_random_vector(p.distribution, p.seed, s, r, &mut r0);
            let mut mu = single_vector_moments(&op, &r0, n, p.recursion);
            let inv_d = 1.0 / d as f64;
            for m in mu.iter_mut() {
                *m *= inv_d;
            }
            let count = (idx + 1) as f64;
            for i in 0..n {
                let delta = mu[i] - mean[i];
                mean[i] += delta / count;
                m2[i] += delta * (mu[i] - mean[i]);
            }
        }
        let std_err: Vec<f64> =
            m2.iter().map(|&s| (s / (total as f64 - 1.0)).sqrt() / (total as f64).sqrt()).collect();
        assert_eq!(stats.mean, mean, "blocked driver must match the scalar seed path bitwise");
        assert_eq!(stats.std_err, std_err);
    }

    #[test]
    fn shard_plan_partitions_exactly() {
        for total in [1usize, 2, 7, 12, 100] {
            for shards in [1usize, 2, 3, 5, 8, 200] {
                let plan = shard_plan(total, shards);
                assert_eq!(plan.len(), shards.min(total));
                assert_eq!(plan[0].start, 0);
                assert_eq!(plan.last().unwrap().end, total);
                for w in plan.windows(2) {
                    assert_eq!(w[0].end, w[1].start, "contiguous");
                }
                for r in &plan {
                    assert!(!r.is_empty(), "no empty shard in {plan:?}");
                }
                // Balanced: lengths differ by at most one.
                let lens: Vec<usize> = plan.iter().map(|r| r.len()).collect();
                let (min, max) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
                assert!(max - min <= 1, "unbalanced plan {plan:?}");
            }
        }
    }

    #[test]
    fn sharded_per_realization_ranges_merge_bitwise_to_full_run() {
        // Any partition of the index range, merged canonically, must equal
        // the single-pass estimator bit for bit — the distributed-run
        // contract, checked here without any transport in the way.
        let d = 40;
        let op = DiagonalOp::new((0..d).map(|i| (i as f64 * 0.77).sin() * 0.8).collect());
        let p = KpmParams::new(16)
            .with_random_vectors(4, 3)
            .with_distribution(Distribution::Gaussian)
            .with_seed(13);
        let full = stochastic_moments(&op, &p);
        let total = p.total_realizations();
        for shards in [1usize, 2, 3, 5, 7, 12] {
            let mut rows: Vec<Vec<f64>> = Vec::new();
            for range in shard_plan(total, shards) {
                rows.extend(per_realization_moments(&op, &p, range));
            }
            let merged = MomentStats::merge_realizations(&rows);
            assert_eq!(merged.mean, full.mean, "{shards} shards");
            assert_eq!(merged.std_err, full.std_err, "{shards} shards");
            assert_eq!(merged.samples, full.samples);
        }
    }

    #[test]
    fn per_realization_moments_are_independent_of_range_slicing() {
        // Realization idx has one value no matter which range produced it,
        // even when a range cuts through the middle of a realization set.
        let d = 32;
        let op = DiagonalOp::new((0..d).map(|i| (i as f64 * 0.41).sin() * 0.9).collect());
        let p = KpmParams::new(12)
            .with_random_vectors(5, 2)
            .with_distribution(Distribution::Uniform)
            .with_seed(77);
        let total = p.total_realizations();
        let whole = per_realization_moments(&op, &p, 0..total);
        for (start, end) in [(0usize, 3usize), (2, 7), (4, 10), (9, 10)] {
            let part = per_realization_moments(&op, &p, start..end);
            for (i, row) in part.iter().enumerate() {
                assert_eq!(row, &whole[start + i], "idx {} via {start}..{end}", start + i);
            }
        }
    }

    #[test]
    #[should_panic(expected = "empty realization range")]
    fn per_realization_moments_reject_empty_range() {
        let op = DiagonalOp::new(vec![0.1, 0.2]);
        let _ = per_realization_moments(&op, &KpmParams::new(4), 3..3);
    }

    #[test]
    fn merge_realizations_single_sample_has_zero_std_err() {
        let merged = MomentStats::merge_realizations(&[vec![1.0, -0.5]]);
        assert_eq!(merged.mean, vec![1.0, -0.5]);
        assert_eq!(merged.std_err, vec![0.0, 0.0]);
        assert_eq!(merged.samples, 1);
    }

    #[test]
    fn identity_moments_are_all_one() {
        // T_n(1) = 1, and Rademacher gives <r|r> = D exactly.
        let op = IdentityOp::new(32);
        // Identity has spectrum {1}: rescaling would be degenerate, so feed
        // a pre-scaled operator directly (spectrum at 1 is allowed edge).
        let params = KpmParams::new(8).with_random_vectors(4, 2);
        let stats = stochastic_moments(&op, &params);
        for (n, &m) in stats.mean.iter().enumerate() {
            assert!((m - 1.0).abs() < 1e-12, "mu_{n} = {m}");
        }
        assert_eq!(stats.samples, 8);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // index spans several arrays in assertions
    fn stochastic_matches_exact_on_diagonal_spectrum() {
        let d = 256;
        let eigs: Vec<f64> = (0..d).map(|i| -0.95 + 1.9 * i as f64 / (d - 1) as f64).collect();
        let op = DiagonalOp::new(eigs.clone());
        let n = 32;
        let exact = exact_moments(&eigs, n);
        let params = KpmParams::new(n).with_random_vectors(16, 8).with_seed(11);
        let stats = stochastic_moments(&op, &params);
        for i in 0..n {
            let tol = 6.0 * stats.std_err[i] + 5e-3;
            assert!(
                (stats.mean[i] - exact[i]).abs() < tol,
                "mu_{i}: {} vs exact {} (err {})",
                stats.mean[i],
                exact[i],
                stats.std_err[i]
            );
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // index spans several arrays in assertions
    fn rademacher_is_exact_on_diagonal_operators() {
        // With xi_i = +-1, <r|T_n(diag)|r> = sum_i xi_i^2 T_n(d_i) is exact:
        // zero variance, independent of the seed. A nice structural check.
        let eigs: Vec<f64> = (0..32).map(|i| (i as f64 * 0.61).sin() * 0.9).collect();
        let op = DiagonalOp::new(eigs.clone());
        let stats = stochastic_moments(&op, &KpmParams::new(12).with_random_vectors(3, 2));
        let exact = exact_moments(&eigs, 12);
        for i in 0..12 {
            assert!((stats.mean[i] - exact[i]).abs() < 1e-12);
            assert!(stats.std_err[i] < 1e-12);
        }
    }

    #[test]
    fn error_bars_shrink_with_more_realizations() {
        // Gaussian vectors (Rademacher would be variance-free on a diagonal
        // operator — see rademacher_is_exact_on_diagonal_operators).
        let d = 64;
        let eigs: Vec<f64> = (0..d).map(|i| (i as f64 / d as f64) * 1.6 - 0.8).collect();
        let op = DiagonalOp::new(eigs);
        let few = stochastic_moments(
            &op,
            &KpmParams::new(16).with_random_vectors(4, 2).with_distribution(Distribution::Gaussian),
        );
        let many = stochastic_moments(
            &op,
            &KpmParams::new(16)
                .with_random_vectors(4, 32)
                .with_distribution(Distribution::Gaussian),
        );
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            avg(&many.std_err) < avg(&few.std_err),
            "{} vs {}",
            avg(&many.std_err),
            avg(&few.std_err)
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let op = DiagonalOp::new((0..40).map(|i| (i as f64 * 0.77).sin() * 0.8).collect());
        let p = KpmParams::new(24)
            .with_random_vectors(6, 3)
            .with_distribution(Distribution::Gaussian)
            .with_seed(99);
        let a = stochastic_moments(&op, &p);
        let b = stochastic_moments(&op, &p);
        assert_eq!(a.mean, b.mean);
        assert_eq!(a.std_err, b.std_err);
        let c = stochastic_moments(&op, &p.clone().with_seed(100));
        assert_ne!(a.mean, c.mean);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // index spans several arrays in assertions
    fn gaussian_and_uniform_agree_with_rademacher_within_error() {
        let d = 128;
        let eigs: Vec<f64> = (0..d).map(|i| -0.9 + 1.8 * i as f64 / (d - 1) as f64).collect();
        let op = DiagonalOp::new(eigs.clone());
        let exact = exact_moments(&eigs, 12);
        for dist in [Distribution::Gaussian, Distribution::Uniform] {
            let p = KpmParams::new(12).with_random_vectors(32, 8).with_distribution(dist);
            let stats = stochastic_moments(&op, &p);
            for i in 0..12 {
                let tol = 8.0 * stats.std_err[i] + 1e-2;
                assert!(
                    (stats.mean[i] - exact[i]).abs() < tol,
                    "{dist:?} mu_{i}: {} vs {}",
                    stats.mean[i],
                    exact[i]
                );
            }
        }
    }

    #[test]
    fn truncated_prefix_is_bitwise_equal_to_shorter_run() {
        // The moment-cache contract: mu_0..mu_{n-1} of a longer run are
        // bitwise identical to a fresh run truncated at n.
        let op = DiagonalOp::new((0..48).map(|i| (i as f64 * 0.53).sin() * 0.85).collect());
        for recursion in [Recursion::Plain, Recursion::Doubling] {
            let base = KpmParams::new(40)
                .with_random_vectors(5, 3)
                .with_distribution(Distribution::Gaussian)
                .with_recursion(recursion)
                .with_seed(321);
            let long = stochastic_moments(&op, &base);
            for n in [2usize, 13, 24, 40] {
                let short = stochastic_moments(&op, &KpmParams { num_moments: n, ..base.clone() });
                let cut = long.truncated(n);
                assert_eq!(cut.mean, short.mean, "{recursion:?} mean prefix, n = {n}");
                assert_eq!(cut.std_err, short.std_err, "{recursion:?} std_err prefix, n = {n}");
                assert_eq!(cut.samples, short.samples);
            }
        }
    }

    #[test]
    #[should_panic(expected = "cannot truncate")]
    fn truncated_rejects_extension() {
        let stats = MomentStats { mean: vec![1.0; 4], std_err: vec![0.0; 4], samples: 1 };
        let _ = stats.truncated(8);
    }

    #[test]
    fn pair_moments_diagonal_case_matches_single_vector() {
        let op = DiagonalOp::new((0..20).map(|i| (i as f64 * 0.31).sin() * 0.9).collect());
        let mut r0 = vec![0.0; 20];
        fill_random_vector(Distribution::Gaussian, 2, 0, 0, &mut r0);
        let single = single_vector_moments(&op, &r0, 24, Recursion::Plain);
        let pair = pair_vector_moments(&op, &r0, &r0, 24);
        assert_eq!(single, pair, "l = r0 must reduce to the diagonal case");
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // index spans several arrays in assertions
    fn pair_moments_match_spectral_decomposition() {
        // <i|T_n(H)|j> = sum_k v_ki T_n(e_k) v_kj from exact eigenvectors.
        let h = kpm_lattice::dense_random_symmetric(12, 1.0, 4);
        let b = kpm_linalg::gershgorin::gershgorin_dense(&h).padded(0.01);
        let op = kpm_linalg::op::RescaledOp::new(&h, b.a_plus(), b.a_minus());
        let (eigs, vecs) = kpm_linalg::eigen::jacobi_eigen(&h).unwrap();

        let (i, j) = (2usize, 7usize);
        let mut ei = vec![0.0; 12];
        let mut ej = vec![0.0; 12];
        ei[i] = 1.0;
        ej[j] = 1.0;
        let mu = pair_vector_moments(&op, &ei, &ej, 16);
        for n in 0..16 {
            let exact: f64 = (0..12)
                .map(|k| {
                    let scaled = (eigs[k] - b.a_plus()) / b.a_minus();
                    vecs.get(i, k) * crate::chebyshev::t(n, scaled) * vecs.get(j, k)
                })
                .sum();
            assert!((mu[n] - exact).abs() < 1e-9, "n = {n}: {} vs {exact}", mu[n]);
        }
    }

    #[test]
    fn pair_moments_are_symmetric_in_l_and_r() {
        // H symmetric => <l|T_n(H)|r> = <r|T_n(H)|l>.
        let h = kpm_lattice::dense_random_symmetric(10, 1.0, 6);
        let b = kpm_linalg::gershgorin::gershgorin_dense(&h).padded(0.01);
        let op = kpm_linalg::op::RescaledOp::new(&h, b.a_plus(), b.a_minus());
        let l: Vec<f64> = (0..10).map(|i| (i as f64).sin()).collect();
        let r: Vec<f64> = (0..10).map(|i| (i as f64 * 0.7).cos()).collect();
        let lr = pair_vector_moments(&op, &l, &r, 12);
        let rl = pair_vector_moments(&op, &r, &l, 12);
        for n in 0..12 {
            assert!((lr[n] - rl[n]).abs() < 1e-10, "n = {n}");
        }
    }

    #[test]
    fn exact_moments_of_symmetric_spectrum_kill_odd_orders() {
        let eigs: Vec<f64> = vec![-0.8, -0.3, 0.3, 0.8];
        let mu = exact_moments(&eigs, 10);
        for n in (1..10).step_by(2) {
            assert!(mu[n].abs() < 1e-14, "odd moment mu_{n} = {}", mu[n]);
        }
        assert_eq!(mu[0], 1.0);
    }

    #[test]
    #[should_panic(expected = "outside [-1, 1]")]
    fn exact_moments_reject_unscaled_spectrum() {
        let _ = exact_moments(&[2.0], 4);
    }
}
