//! Unified device backend API.
//!
//! Every execution substrate the system can place a moments job on sits
//! behind one object-safe [`Device`] trait: [`HostDevice`] runs the tiled
//! CPU engine in wall-clock time, [`SimDevice`] runs the *same functional
//! pipeline* and additionally prices the run through the discrete-event
//! command-queue pipeline of `kpm_streamsim::queue` (per-device `dma` /
//! `compute` / `reduce` engines, event-heap scheduler, transfer/compute
//! overlap, owner-computes multi-device splitting). A future real
//! accelerator slots in as a third implementation without touching callers.
//!
//! The two shipped backends produce **bitwise identical** functional
//! results: `SimDevice` performs exactly the host pipeline
//! (`spectral_bounds → rescale → stochastic_moments`) and differs only in
//! the clock it reports. Serve's moment cache therefore masks the device
//! in its cache key — a sim-computed entry is a valid host answer.
//!
//! Jobs select a backend with a [`DeviceSpec`] (`host`, `sim`, `sim:4`),
//! which travels through serve/net job specs and the CLI's `--device` flag.
//!
//! # Example
//!
//! ```
//! use kpm::device::{Device, DeviceOp, DeviceSpec};
//! use kpm::prelude::*;
//! use kpm_linalg::{CooMatrix, SparseMatrix};
//!
//! // A 16-site ring with nearest-neighbour hopping.
//! let mut coo = CooMatrix::new(16, 16);
//! for i in 0..16 {
//!     coo.push_symmetric(i, (i + 1) % 16, -1.0).unwrap();
//! }
//! let h = SparseMatrix::Csr(coo.to_csr());
//! let params = KpmParams::new(32).with_random_vectors(4, 2);
//!
//! let host = DeviceSpec::Host.build();
//! let sim: DeviceSpec = "sim:2".parse().unwrap();
//! let sim = sim.build();
//!
//! let a = host.submit(DeviceOp::Sparse(&h), &params).unwrap();
//! let b = sim.submit(DeviceOp::Sparse(&h), &params).unwrap();
//! // Same numbers, different clocks: host wall time vs. modeled seconds.
//! assert_eq!(a.moments.mean, b.moments.mean);
//! assert!(b.clock.modeled_secs().unwrap() > 0.0);
//! ```

use std::fmt;
use std::str::FromStr;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use kpm_linalg::{DenseMatrix, LinearOp, SparseMatrix, TiledOp};
use kpm_streamsim::layout::{Mapping, VectorLayout};
use kpm_streamsim::queue::{MomentRunPlan, MomentRunReport};
use kpm_streamsim::shape::{MomentLaunchShape, Precision, SparseFormat};
use kpm_streamsim::{GpuSpec, SimTime};

use crate::error::KpmError;
use crate::moments::{stochastic_moments, KpmParams, MomentStats};
use crate::rescale::{rescale, Boundable};

/// What a job hands to a device: a borrowed Hamiltonian in whichever
/// storage the caller assembled.
#[derive(Debug, Clone, Copy)]
pub enum DeviceOp<'a> {
    /// A sparse operator (CSR / ELL / matrix-free stencil).
    Sparse(&'a SparseMatrix),
    /// A dense operator.
    Dense(&'a DenseMatrix),
}

impl DeviceOp<'_> {
    /// Operator dimension `D`.
    pub fn dim(&self) -> usize {
        match self {
            DeviceOp::Sparse(h) => h.dim(),
            DeviceOp::Dense(h) => h.dim(),
        }
    }

    /// Coefficient slots the cost model must charge — for padded ELL this
    /// is the padded slot count, not the true `nnz` (the accounting seam
    /// shared with the host engines via [`LinearOp::model_entries`]).
    pub fn model_entries(&self) -> usize {
        match self {
            DeviceOp::Sparse(h) => h.model_entries(),
            DeviceOp::Dense(h) => h.model_entries(),
        }
    }

    /// Whether the operator is stored dense.
    pub fn is_dense(&self) -> bool {
        matches!(self, DeviceOp::Dense(_))
    }

    /// The storage format as the simulator's pricing enum (dense operators
    /// report CSR; the flag from [`Self::is_dense`] overrides it).
    pub fn sim_format(&self) -> SparseFormat {
        match self {
            DeviceOp::Dense(_) => SparseFormat::Csr,
            DeviceOp::Sparse(h) => match h.format_name() {
                "ell" => SparseFormat::Ell,
                "stencil" => SparseFormat::Stencil,
                _ => SparseFormat::Csr,
            },
        }
    }
}

/// How much time a device has accumulated, in its own notion of time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DeviceClock {
    /// Real elapsed time on the host.
    Wall(Duration),
    /// Modeled seconds from the event pipeline.
    Modeled(SimTime),
}

impl DeviceClock {
    /// Seconds regardless of flavour.
    pub fn as_secs_f64(&self) -> f64 {
        match self {
            DeviceClock::Wall(d) => d.as_secs_f64(),
            DeviceClock::Modeled(t) => t.as_secs_f64(),
        }
    }

    /// Modeled seconds, or `None` for a wall clock.
    pub fn modeled_secs(&self) -> Option<f64> {
        match self {
            DeviceClock::Modeled(t) => Some(t.as_secs_f64()),
            DeviceClock::Wall(_) => None,
        }
    }
}

/// Static description of a device backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceCaps {
    /// Backend name (`"host"` or `"sim"`).
    pub name: &'static str,
    /// Device instances behind the splitter (1 for the host).
    pub instances: usize,
    /// Whether [`Device::synchronize`] reports modeled time (`true`) or
    /// wall time (`false`).
    pub modeled_clock: bool,
}

/// One completed submission.
#[derive(Debug, Clone)]
pub struct DeviceRun {
    /// Stochastic moment estimate (bitwise identical across backends).
    pub moments: MomentStats,
    /// Rescaling centre `a_plus`.
    pub a_plus: f64,
    /// Rescaling half-width `a_minus`.
    pub a_minus: f64,
    /// Time this submission cost on the device's clock.
    pub clock: DeviceClock,
}

/// An execution substrate for moments jobs.
///
/// Object-safe so pools and schedulers can hold `Box<dyn Device>` /
/// `Arc<dyn Device>` and pick per job.
pub trait Device: Send + Sync {
    /// Static capabilities.
    fn caps(&self) -> DeviceCaps;

    /// Runs the full moments pipeline (`bounds → rescale →
    /// stochastic_moments`) for `op` and charges the device's clock.
    ///
    /// # Errors
    /// [`KpmError`] from parameter validation, bounds, or rescaling.
    fn submit(&self, op: DeviceOp<'_>, params: &KpmParams) -> Result<DeviceRun, KpmError>;

    /// Total time accumulated across all submissions.
    fn synchronize(&self) -> DeviceClock;
}

/// The shared functional pipeline — the exact statement sequence serve's
/// CPU path has always run, so every backend's numbers are bitwise
/// reproducible against it.
fn host_pipeline<A: Boundable + TiledOp + Sync>(
    op: &A,
    params: &KpmParams,
) -> Result<(MomentStats, f64, f64), KpmError> {
    let bounds = crate::bounds::resolve(op, params.bounds)?;
    let rescaled = rescale(op, bounds, params.padding)?;
    let stats = stochastic_moments(&rescaled, params);
    Ok((stats, rescaled.a_plus(), rescaled.a_minus()))
}

fn run_functional(
    op: DeviceOp<'_>,
    params: &KpmParams,
) -> Result<(MomentStats, f64, f64), KpmError> {
    params.validate()?;
    match op {
        DeviceOp::Sparse(h) => host_pipeline(h, params),
        DeviceOp::Dense(h) => host_pipeline(h, params),
    }
}

/// The host backend: the tiled CPU engine (rayon SPMD under the ambient
/// [`crate::exec::ExecPlan`] policy), timed in wall-clock.
#[derive(Debug, Default)]
pub struct HostDevice {
    clock: Mutex<Duration>,
}

impl HostDevice {
    /// A fresh host device with a zeroed clock.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Device for HostDevice {
    fn caps(&self) -> DeviceCaps {
        DeviceCaps { name: "host", instances: 1, modeled_clock: false }
    }

    fn submit(&self, op: DeviceOp<'_>, params: &KpmParams) -> Result<DeviceRun, KpmError> {
        let started = Instant::now();
        let (moments, a_plus, a_minus) = run_functional(op, params)?;
        let elapsed = started.elapsed();
        *self.clock.lock().expect("host clock poisoned") += elapsed;
        Ok(DeviceRun { moments, a_plus, a_minus, clock: DeviceClock::Wall(elapsed) })
    }

    fn synchronize(&self) -> DeviceClock {
        DeviceClock::Wall(*self.clock.lock().expect("host clock poisoned"))
    }
}

/// The simulated-device backend: functionally the host pipeline (bitwise
/// identical results), with time priced by the discrete-event command-queue
/// pipeline — per-device `dma`/`compute`/`reduce` engines, transfer/compute
/// overlap, and an owner-computes splitter across `instances` devices.
#[derive(Debug)]
pub struct SimDevice {
    spec: GpuSpec,
    instances: usize,
    overlap: bool,
    chunks: usize,
    mapping: Mapping,
    layout: VectorLayout,
    block_size: usize,
    compute_efficiency: f64,
    clock: Mutex<f64>,
}

impl SimDevice {
    /// A single simulated device with overlap enabled, the paper's
    /// thread-per-realization mapping, interleaved vectors, `BLOCK_SIZE =
    /// 128`, and the calibrated compute efficiency.
    pub fn new(spec: GpuSpec) -> Self {
        Self {
            spec,
            instances: 1,
            overlap: true,
            chunks: 4,
            mapping: Mapping::ThreadPerRealization,
            layout: VectorLayout::Interleaved,
            block_size: 128,
            compute_efficiency: 0.2,
            clock: Mutex::new(0.0),
        }
    }

    /// The default device model (the paper's Tesla C2050).
    pub fn tesla_c2050() -> Self {
        Self::new(GpuSpec::tesla_c2050())
    }

    /// Sets the instance count fed by the owner-computes splitter.
    ///
    /// # Panics
    /// Panics if zero.
    pub fn with_instances(mut self, instances: usize) -> Self {
        assert!(instances > 0, "device count must be positive");
        self.instances = instances;
        self
    }

    /// Enables or disables transfer/compute overlap in the modeled clock.
    pub fn with_overlap(mut self, overlap: bool) -> Self {
        self.overlap = overlap;
        self
    }

    /// Sets the chunk count for the overlapped stages.
    ///
    /// # Panics
    /// Panics if zero.
    pub fn with_chunks(mut self, chunks: usize) -> Self {
        assert!(chunks > 0, "chunk count must be positive");
        self.chunks = chunks;
        self
    }

    /// Sets the work mapping and its natural vector layout.
    pub fn with_mapping(mut self, mapping: Mapping) -> Self {
        self.mapping = mapping;
        self.layout = VectorLayout::natural_for(mapping);
        self
    }

    /// The launch shape a submission of `op` at `params` is priced at.
    /// `stored_entries` is [`DeviceOp::model_entries`] — padded ELL slots
    /// are charged here exactly as the host engines charge them.
    pub fn shape_for(&self, op: &DeviceOp<'_>, params: &KpmParams) -> MomentLaunchShape {
        MomentLaunchShape {
            dim: op.dim(),
            stored_entries: op.model_entries(),
            dense: op.is_dense(),
            format: op.sim_format(),
            num_moments: params.num_moments,
            realizations: params.num_random * params.num_realizations,
            mapping: self.mapping,
            layout: self.layout,
            block_size: self.block_size,
            precision: Precision::Double,
        }
    }

    /// The compiled event-pipeline plan for a submission (public so the
    /// bench harness and tests can price without running functionally).
    pub fn plan_for(&self, op: &DeviceOp<'_>, params: &KpmParams) -> MomentRunPlan {
        MomentRunPlan::new(self.shape_for(op, params))
            .with_overlap(self.overlap)
            .with_chunks(self.chunks)
            .with_devices(self.instances)
    }

    /// Prices a submission through the event pipeline without running it.
    pub fn model_run(&self, op: &DeviceOp<'_>, params: &KpmParams) -> MomentRunReport {
        self.plan_for(op, params).run(&self.spec, self.compute_efficiency)
    }
}

impl Device for SimDevice {
    fn caps(&self) -> DeviceCaps {
        DeviceCaps { name: "sim", instances: self.instances, modeled_clock: true }
    }

    fn submit(&self, op: DeviceOp<'_>, params: &KpmParams) -> Result<DeviceRun, KpmError> {
        let (moments, a_plus, a_minus) = run_functional(op, params)?;
        let modeled = self.model_run(&op, params).total;
        *self.clock.lock().expect("sim clock poisoned") += modeled.as_secs_f64();
        Ok(DeviceRun { moments, a_plus, a_minus, clock: DeviceClock::Modeled(modeled) })
    }

    fn synchronize(&self) -> DeviceClock {
        DeviceClock::Modeled(SimTime(*self.clock.lock().expect("sim clock poisoned")))
    }
}

/// Serializable backend selection: `host`, `sim`, or `sim:N`.
///
/// This is what travels in job specs (serve/net `device=` key) and the CLI
/// `--device` flag; [`DeviceSpec::build`] turns it into a live backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DeviceSpec {
    /// The tiled CPU engine (wall clock).
    #[default]
    Host,
    /// The simulated device pipeline (modeled clock).
    Sim {
        /// Instances behind the owner-computes splitter.
        devices: usize,
    },
}

impl DeviceSpec {
    /// Builds the backend this spec names (sim devices model the paper's
    /// Tesla C2050).
    pub fn build(&self) -> Box<dyn Device> {
        match *self {
            DeviceSpec::Host => Box::new(HostDevice::new()),
            DeviceSpec::Sim { devices } => {
                Box::new(SimDevice::tesla_c2050().with_instances(devices))
            }
        }
    }

    /// Backend name without the instance count.
    pub fn name(&self) -> &'static str {
        match self {
            DeviceSpec::Host => "host",
            DeviceSpec::Sim { .. } => "sim",
        }
    }
}

impl fmt::Display for DeviceSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            DeviceSpec::Host => write!(f, "host"),
            DeviceSpec::Sim { devices: 1 } => write!(f, "sim"),
            DeviceSpec::Sim { devices } => write!(f, "sim:{devices}"),
        }
    }
}

impl FromStr for DeviceSpec {
    type Err = KpmError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "host" => Ok(DeviceSpec::Host),
            "sim" => Ok(DeviceSpec::Sim { devices: 1 }),
            _ => {
                if let Some(n) = s.strip_prefix("sim:") {
                    let devices: usize = n.parse().map_err(|_| {
                        KpmError::InvalidParameter(format!("bad device count in {s:?}"))
                    })?;
                    if devices == 0 {
                        return Err(KpmError::InvalidParameter(
                            "device count must be positive".into(),
                        ));
                    }
                    Ok(DeviceSpec::Sim { devices })
                } else {
                    Err(KpmError::InvalidParameter(format!(
                        "unknown device {s:?} (expected host, sim, or sim:N)"
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kpm_linalg::MatrixFormat;

    fn lattice(dim: usize) -> SparseMatrix {
        // Ring with nearest-neighbour hopping: sparse, symmetric, bounded.
        let mut coo = kpm_linalg::CooMatrix::new(dim, dim);
        for i in 0..dim {
            coo.push_symmetric(i, (i + 1) % dim, -1.0).unwrap();
        }
        SparseMatrix::Csr(coo.to_csr())
    }

    fn params() -> KpmParams {
        KpmParams::new(32).with_random_vectors(4, 2)
    }

    #[test]
    fn spec_round_trips_through_display_and_parse() {
        for (s, spec) in [
            ("host", DeviceSpec::Host),
            ("sim", DeviceSpec::Sim { devices: 1 }),
            ("sim:4", DeviceSpec::Sim { devices: 4 }),
        ] {
            assert_eq!(s.parse::<DeviceSpec>().unwrap(), spec);
            assert_eq!(spec.to_string(), s);
        }
        assert_eq!(DeviceSpec::default(), DeviceSpec::Host);
        assert!("gpu".parse::<DeviceSpec>().is_err());
        assert!("sim:0".parse::<DeviceSpec>().is_err());
        assert!("sim:x".parse::<DeviceSpec>().is_err());
    }

    #[test]
    fn host_and_sim_results_are_bitwise_identical() {
        let h = lattice(64);
        let p = params();
        let host = DeviceSpec::Host.build();
        for devices in [1, 4] {
            let sim = DeviceSpec::Sim { devices }.build();
            let a = host.submit(DeviceOp::Sparse(&h), &p).unwrap();
            let b = sim.submit(DeviceOp::Sparse(&h), &p).unwrap();
            assert_eq!(a.moments.mean, b.moments.mean);
            assert_eq!(a.moments.std_err, b.moments.std_err);
            assert_eq!(a.a_plus, b.a_plus);
            assert_eq!(a.a_minus, b.a_minus);
        }
    }

    #[test]
    fn clocks_have_the_advertised_flavour() {
        let h = lattice(32);
        let p = params();
        let host = HostDevice::new();
        let run = host.submit(DeviceOp::Sparse(&h), &p).unwrap();
        assert!(run.clock.modeled_secs().is_none());
        assert!(!host.caps().modeled_clock);

        let sim = SimDevice::tesla_c2050();
        let run = sim.submit(DeviceOp::Sparse(&h), &p).unwrap();
        let modeled = run.clock.modeled_secs().unwrap();
        assert!(modeled > 0.0);
        assert!(sim.caps().modeled_clock);
        // The device clock accumulates across submissions.
        let _ = sim.submit(DeviceOp::Sparse(&h), &p).unwrap();
        assert_eq!(sim.synchronize().as_secs_f64(), 2.0 * modeled);
    }

    #[test]
    fn sim_modeled_clock_is_deterministic_and_instance_monotone() {
        let h = lattice(64);
        let p = params();
        let once = SimDevice::tesla_c2050();
        let reference = once.model_run(&DeviceOp::Sparse(&h), &p).total.as_secs_f64();
        assert_eq!(
            SimDevice::tesla_c2050().model_run(&DeviceOp::Sparse(&h), &p).total.as_secs_f64(),
            reference
        );
        let mut last = f64::INFINITY;
        for devices in [1, 2, 4, 8] {
            let dev = SimDevice::tesla_c2050().with_instances(devices);
            let t = dev.model_run(&DeviceOp::Sparse(&h), &p).total.as_secs_f64();
            assert!(t <= last + 1e-12, "{devices} instances slower: {t} vs {last}");
            last = t;
        }
    }

    #[test]
    fn overlap_off_matches_retired_analytic_model() {
        let h = lattice(128);
        let p = params();
        let dev = SimDevice::tesla_c2050().with_overlap(false);
        let shape = dev.shape_for(&DeviceOp::Sparse(&h), &p);
        #[allow(deprecated)]
        let analytic = shape.estimate_total(&GpuSpec::tesla_c2050(), 0.2);
        let piped = dev.model_run(&DeviceOp::Sparse(&h), &p).total;
        assert_eq!(piped.as_secs_f64(), analytic.as_secs_f64());
    }

    #[test]
    fn ell_padding_is_charged_by_the_event_pipeline() {
        // The accounting seam: a ragged matrix stored ELL pads every row to
        // the widest; `model_entries` carries that charge into the pipeline's
        // DMA and compute sizing exactly as the host cost model charges it.
        let dim = 64;
        let mut coo = kpm_linalg::CooMatrix::new(dim, dim);
        for i in 0..dim {
            coo.push_symmetric(i, (i + 1) % dim, -1.0).unwrap();
            // One dense-ish row drives the padded width up.
            if i > 2 && i < dim - 1 {
                coo.push_symmetric(0, i, 0.1).unwrap();
            }
        }
        let csr = SparseMatrix::Csr(coo.to_csr());
        let ell = SparseMatrix::from_csr(csr.to_csr(), MatrixFormat::Ell);
        assert_eq!(ell.format_name(), "ell");
        let nnz: usize = ell.nnz();
        assert!(ell.model_entries() > nnz, "padding must inflate model_entries");

        let p = params();
        let dev = SimDevice::tesla_c2050();
        let shape_ell = dev.shape_for(&DeviceOp::Sparse(&ell), &p);
        let shape_csr = dev.shape_for(&DeviceOp::Sparse(&csr), &p);
        assert_eq!(shape_ell.stored_entries, ell.model_entries());
        assert_eq!(shape_ell.format, SparseFormat::Ell);
        assert_eq!(shape_csr.stored_entries, csr.model_entries());
        // And the priced DMA traffic reflects the padded slots.
        assert_eq!(shape_ell.matrix_bytes(), 12 * ell.model_entries() as u64);
    }

    #[test]
    fn invalid_params_surface_as_kpm_errors() {
        let h = lattice(16);
        let mut p = params();
        p.num_moments = 1;
        let dev = DeviceSpec::Host.build();
        assert!(dev.submit(DeviceOp::Sparse(&h), &p).is_err());
    }

    #[test]
    fn dense_ops_run_on_both_backends() {
        let h = DenseMatrix::from_diag(&[-1.0, -0.5, 0.5, 1.0]);
        let p = KpmParams::new(16).with_random_vectors(2, 2);
        let a = DeviceSpec::Host.build().submit(DeviceOp::Dense(&h), &p).unwrap();
        let b = DeviceSpec::Sim { devices: 2 }.build().submit(DeviceOp::Dense(&h), &p).unwrap();
        assert_eq!(a.moments.mean, b.moments.mean);
        assert!(DeviceOp::Dense(&h).is_dense());
    }
}
