//! Bessel functions of the first kind, `J_n(x)`, for the Chebyshev
//! propagator's expansion coefficients.
//!
//! Computed by Miller's downward-recurrence algorithm: start far above the
//! needed order with an arbitrary tail, recur down through
//! `J_{n-1} = (2n/x) J_n - J_{n+1}`, then normalize with the identity
//! `J_0 + 2 sum_{k>=1} J_{2k} = 1`. Accurate to ~1e-14 for the argument
//! ranges the propagator uses (|x| up to a few hundred).

/// Values `J_0(x) .. J_{nmax-1}(x)`.
///
/// ```
/// let j = kpm::bessel::j_all(3, 1.0);
/// assert!((j[0] - 0.7651976865579666).abs() < 1e-13);
/// assert!((j[1] - 0.4400505857449335).abs() < 1e-13);
/// ```
///
/// # Panics
/// Panics if `nmax == 0` or `x` is not finite.
pub fn j_all(nmax: usize, x: f64) -> Vec<f64> {
    assert!(nmax > 0, "need at least one order");
    assert!(x.is_finite(), "argument must be finite");
    if x == 0.0 {
        let mut out = vec![0.0; nmax];
        out[0] = 1.0;
        return out;
    }
    // J_n(-x) = (-1)^n J_n(x): reduce to positive argument.
    if x < 0.0 {
        let mut out = j_all(nmax, -x);
        for (n, v) in out.iter_mut().enumerate() {
            if n % 2 == 1 {
                *v = -*v;
            }
        }
        return out;
    }

    // Start order: well above both nmax and the turning point ~x.
    let start = (nmax + 16).max((x as usize) + (16.0 * (x + 20.0).sqrt()) as usize);
    let mut jp = 0.0f64; // J_{start+1}
    let mut jc = 1e-300f64; // J_{start} (arbitrary tiny tail)
    let mut out = vec![0.0; nmax];
    let mut norm = 0.0f64; // accumulates J_0 + 2 sum J_{2k}
    for n in (0..=start).rev() {
        let jm = (2.0 * (n as f64 + 1.0) / x) * jc - jp;
        jp = jc;
        jc = jm;
        // jc now holds J_n.
        if n < nmax {
            out[n] = jc;
        }
        if n % 2 == 0 {
            norm += if n == 0 { jc } else { 2.0 * jc };
        }
        // Rescale to avoid overflow of the unnormalized recurrence.
        if jc.abs() > 1e250 {
            let s = 1e-250;
            jc *= s;
            jp *= s;
            norm *= s;
            for v in out.iter_mut() {
                *v *= s;
            }
        }
    }
    let inv = 1.0 / norm;
    for v in out.iter_mut() {
        *v *= inv;
    }
    out
}

/// Single value `J_n(x)`.
pub fn j(n: usize, x: f64) -> f64 {
    j_all(n + 1, x)[n]
}

#[cfg(test)]
mod tests {
    use super::*;

    // Reference values from Abramowitz & Stegun / SciPy.
    const J0_1: f64 = 0.765_197_686_557_966_6;
    const J1_1: f64 = 0.440_050_585_744_933_5;
    const J0_5: f64 = -0.177_596_771_314_338_3;
    const J2_5: f64 = 0.046_565_116_277_752_2;
    const J10_20: f64 = 0.186_482_558_023_945_9;

    #[test]
    fn known_values() {
        assert!((j(0, 1.0) - J0_1).abs() < 1e-13);
        assert!((j(1, 1.0) - J1_1).abs() < 1e-13);
        assert!((j(0, 5.0) - J0_5).abs() < 1e-13);
        assert!((j(2, 5.0) - J2_5).abs() < 1e-13);
        assert!((j(10, 20.0) - J10_20).abs() < 1e-12);
    }

    #[test]
    fn zero_argument() {
        let v = j_all(5, 0.0);
        assert_eq!(v, vec![1.0, 0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn negative_argument_parity() {
        let pos = j_all(6, 3.7);
        let neg = j_all(6, -3.7);
        for n in 0..6 {
            let expect = if n % 2 == 0 { pos[n] } else { -pos[n] };
            assert!((neg[n] - expect).abs() < 1e-14, "n = {n}");
        }
    }

    #[test]
    fn normalization_identity() {
        // J_0 + 2 sum J_{2k} = 1 (for enough terms).
        for &x in &[0.5, 2.0, 10.0, 50.0] {
            let v = j_all(((x as usize) + 60).max(80), x);
            let s: f64 = v[0] + 2.0 * v.iter().skip(2).step_by(2).sum::<f64>();
            assert!((s - 1.0).abs() < 1e-12, "x = {x}: {s}");
        }
    }

    #[test]
    fn recurrence_consistency() {
        // J_{n-1} + J_{n+1} = (2n/x) J_n.
        let x = 7.3;
        let v = j_all(20, x);
        for n in 1..19 {
            let lhs = v[n - 1] + v[n + 1];
            let rhs = 2.0 * n as f64 / x * v[n];
            assert!((lhs - rhs).abs() < 1e-12, "n = {n}");
        }
    }

    #[test]
    fn tail_decays_superexponentially() {
        let v = j_all(60, 5.0);
        assert!(v[40].abs() < 1e-30);
        assert!(v[59].abs() < v[40].abs());
    }

    #[test]
    fn large_argument_stays_bounded() {
        let v = j_all(32, 300.0);
        assert!(v.iter().all(|x| x.is_finite() && x.abs() <= 1.0));
    }
}
