//! Chebyshev time evolution: `|psi(t)> = e^{-i H t} |psi(0)>`.
//!
//! The same three-term recursion that powers the DoS also gives the most
//! accurate polynomial propagator known for Hermitian Hamiltonians
//! (Tal-Ezer & Kosloff 1984; reviewed alongside KPM in Weiße et al. 2006,
//! Sec. VII):
//!
//! ```text
//! e^{-i H t} = e^{-i a_+ t} [ J_0(a_- t) + 2 sum_{n>=1} (-i)^n J_n(a_- t) T_n(H~) ]
//! ```
//!
//! with `H~ = (H - a_+)/a_-` rescaled exactly as for the DoS and `J_n` the
//! Bessel functions ([`crate::bessel`]). The Bessel tail decays
//! super-exponentially once `n > a_- t`, so the series is truncated at a
//! machine-precision tolerance.
//!
//! States are complex; they are stored as split real/imaginary arrays so
//! the real-valued [`LinearOp`] machinery applies to each component.

//!
//! # Example
//!
//! ```
//! use kpm::propagate::{ComplexState, Propagator};
//! use kpm_linalg::gershgorin::SpectralBounds;
//! use kpm_linalg::op::DiagonalOp;
//!
//! // H = diag(0.5): an eigenstate just rotates in phase.
//! let h = DiagonalOp::new(vec![0.5]);
//! let prop = Propagator::new(h, SpectralBounds::new(-1.0, 1.0), 1e-12)?;
//! let psi = ComplexState::from_real(vec![1.0]);
//! let out = prop.evolve(&psi, 2.0);
//! assert!((out.re[0] - (1.0f64).cos()).abs() < 1e-10);
//! assert!((out.im[0] + (1.0f64).sin()).abs() < 1e-10);
//! # Ok::<(), kpm::KpmError>(())
//! ```

use crate::bessel;
use crate::error::KpmError;
use kpm_linalg::gershgorin::SpectralBounds;
use kpm_linalg::op::{LinearOp, RescaledOp};
use kpm_linalg::vecops;

/// A complex state vector in split representation.
#[derive(Debug, Clone, PartialEq)]
pub struct ComplexState {
    /// Real parts.
    pub re: Vec<f64>,
    /// Imaginary parts.
    pub im: Vec<f64>,
}

impl ComplexState {
    /// A purely real state.
    pub fn from_real(re: Vec<f64>) -> Self {
        let im = vec![0.0; re.len()];
        Self { re, im }
    }

    /// Dimension.
    pub fn dim(&self) -> usize {
        self.re.len()
    }

    /// Squared norm `<psi|psi>`.
    pub fn norm_sqr(&self) -> f64 {
        vecops::dot(&self.re, &self.re) + vecops::dot(&self.im, &self.im)
    }

    /// Overlap `<self|other>` returned as `(re, im)`.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn overlap(&self, other: &ComplexState) -> (f64, f64) {
        let re = vecops::dot(&self.re, &other.re) + vecops::dot(&self.im, &other.im);
        let im = vecops::dot(&self.re, &other.im) - vecops::dot(&self.im, &other.re);
        (re, im)
    }

    /// Per-site probability density `|psi_i|^2`.
    pub fn density(&self) -> Vec<f64> {
        self.re.iter().zip(&self.im).map(|(r, i)| r * r + i * i).collect()
    }
}

/// Chebyshev propagator for a fixed Hamiltonian and spectral bounds.
#[derive(Debug)]
pub struct Propagator<A> {
    op: RescaledOp<A>,
    tolerance: f64,
}

impl<A: LinearOp> Propagator<A> {
    /// Builds a propagator. `bounds` must enclose the spectrum (Gershgorin
    /// or padded Lanczos — same rule as the DoS pipeline); `tolerance` is
    /// the truncation threshold on the Bessel coefficients (e.g. `1e-12`).
    ///
    /// # Errors
    /// [`KpmError::DegenerateSpectrum`] for a zero-width interval;
    /// [`KpmError::InvalidParameter`] for a non-positive tolerance.
    pub fn new(op: A, bounds: SpectralBounds, tolerance: f64) -> Result<Self, KpmError> {
        if tolerance.is_nan() || tolerance <= 0.0 {
            return Err(KpmError::InvalidParameter(format!(
                "tolerance must be positive, got {tolerance}"
            )));
        }
        let padded = bounds.padded(0.01);
        if padded.a_minus() <= 0.0 {
            return Err(KpmError::DegenerateSpectrum);
        }
        Ok(Self { op: RescaledOp::new(op, padded.a_plus(), padded.a_minus()), tolerance })
    }

    /// Number of expansion terms needed for a time step `t`.
    pub fn terms_for(&self, t: f64) -> usize {
        let tau = (self.op.a_minus() * t).abs();
        // Bessel tail dies once n > tau; add a safety margin that scales
        // with the tolerance (empirically ~ tau + 20 + 10 log10(1/tol)).
        let margin = 20.0 + 10.0 * (1.0 / self.tolerance).log10().max(0.0);
        (tau + margin * (1.0 + tau).sqrt().min(margin)) as usize + 8
    }

    /// Evolves `psi` forward by time `t` (any sign), returning the new
    /// state. The input is untouched.
    ///
    /// # Panics
    /// Panics if `psi.dim() != op.dim()`.
    pub fn evolve(&self, psi: &ComplexState, t: f64) -> ComplexState {
        let _span = kpm_obs::span("kpm.evolve");
        let d = self.op.dim();
        assert_eq!(psi.dim(), d, "state dimension");
        let tau = self.op.a_minus() * t;
        let nmax = self.terms_for(t).max(2);
        let jn = bessel::j_all(nmax, tau);

        // Accumulator starts with J_0 * T_0 |psi> = J_0 |psi|.
        let mut out = ComplexState {
            re: psi.re.iter().map(|&v| v * jn[0]).collect(),
            im: psi.im.iter().map(|&v| v * jn[0]).collect(),
        };

        // Chebyshev vectors on the complex state: apply H~ to re and im
        // independently (H~ is real).
        let mut prev = psi.clone(); // T_0 |psi>
        let mut cur = ComplexState { re: vec![0.0; d], im: vec![0.0; d] };
        self.op.apply(&prev.re, &mut cur.re);
        self.op.apply(&prev.im, &mut cur.im);

        let mut scratch_re = vec![0.0; d];
        let mut scratch_im = vec![0.0; d];
        for n in 1..nmax {
            let c = 2.0 * jn[n];
            if c.abs() > self.tolerance || n < 2 {
                // (-i)^n cycles 1, -i, -1, i: add c * (-i)^n * cur.
                match n % 4 {
                    0 => {
                        vecops::axpy(c, &cur.re, &mut out.re);
                        vecops::axpy(c, &cur.im, &mut out.im);
                    }
                    1 => {
                        // (-i) * (re + i im) = im - i re
                        vecops::axpy(c, &cur.im, &mut out.re);
                        vecops::axpy(-c, &cur.re, &mut out.im);
                    }
                    2 => {
                        vecops::axpy(-c, &cur.re, &mut out.re);
                        vecops::axpy(-c, &cur.im, &mut out.im);
                    }
                    _ => {
                        vecops::axpy(-c, &cur.im, &mut out.re);
                        vecops::axpy(c, &cur.re, &mut out.im);
                    }
                }
            } else if jn[n..].iter().all(|v| v.abs() <= self.tolerance) {
                break; // the entire remaining tail is negligible
            }
            if n + 1 < nmax {
                // T_{n+1} = 2 H~ T_n - T_{n-1}.
                self.op.apply(&cur.re, &mut scratch_re);
                self.op.apply(&cur.im, &mut scratch_im);
                vecops::chebyshev_combine_inplace(&scratch_re, &mut prev.re);
                vecops::chebyshev_combine_inplace(&scratch_im, &mut prev.im);
                std::mem::swap(&mut prev, &mut cur);
            }
        }

        // Global phase e^{-i a_+ t}.
        let (cp, sp) = ((self.op.a_plus() * t).cos(), -(self.op.a_plus() * t).sin());
        for (r, i) in out.re.iter_mut().zip(out.im.iter_mut()) {
            let (nr, ni) = (*r * cp - *i * sp, *r * sp + *i * cp);
            *r = nr;
            *i = ni;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kpm_linalg::op::DiagonalOp;

    fn diag_prop(eigs: Vec<f64>) -> Propagator<DiagonalOp> {
        let lo = eigs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = eigs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        Propagator::new(DiagonalOp::new(eigs), SpectralBounds::new(lo, hi), 1e-13).unwrap()
    }

    #[test]
    fn eigenstate_acquires_exact_phase() {
        // H = diag(e): e^{-iHt} e_k = e^{-i e_k t} e_k.
        let eigs = vec![-1.3, 0.4, 2.2];
        let p = diag_prop(eigs.clone());
        for (k, &e) in eigs.iter().enumerate() {
            let mut re = vec![0.0; 3];
            re[k] = 1.0;
            let psi = ComplexState::from_real(re);
            for &t in &[0.1, 1.0, 7.5, -3.0] {
                let out = p.evolve(&psi, t);
                let expect_re = (e * t).cos();
                let expect_im = -(e * t).sin();
                assert!(
                    (out.re[k] - expect_re).abs() < 1e-10 && (out.im[k] - expect_im).abs() < 1e-10,
                    "k = {k}, t = {t}: ({}, {}) vs ({expect_re}, {expect_im})",
                    out.re[k],
                    out.im[k]
                );
            }
        }
    }

    #[test]
    fn norm_is_conserved() {
        let h = kpm_lattice::dense_random_symmetric(24, 1.0, 5);
        let bounds = kpm_linalg::gershgorin::gershgorin_dense(&h);
        let p = Propagator::new(&h, bounds, 1e-12).unwrap();
        let mut re = vec![0.0; 24];
        crate::random::fill_random_vector(crate::random::Distribution::Gaussian, 1, 0, 0, &mut re);
        let mut psi = ComplexState::from_real(re);
        let n0 = psi.norm_sqr();
        for _ in 0..5 {
            psi = p.evolve(&psi, 0.7);
        }
        assert!((psi.norm_sqr() - n0).abs() < 1e-9 * n0, "{} vs {n0}", psi.norm_sqr());
    }

    #[test]
    fn evolution_composes() {
        // U(t1 + t2) = U(t2) U(t1).
        let h = kpm_lattice::dense_random_symmetric(16, 1.0, 9);
        let bounds = kpm_linalg::gershgorin::gershgorin_dense(&h);
        let p = Propagator::new(&h, bounds, 1e-13).unwrap();
        let psi = ComplexState::from_real((0..16).map(|i| (i as f64 * 0.3).sin()).collect());
        let once = p.evolve(&psi, 1.9);
        let twice = p.evolve(&p.evolve(&psi, 1.2), 0.7);
        for i in 0..16 {
            assert!((once.re[i] - twice.re[i]).abs() < 1e-9);
            assert!((once.im[i] - twice.im[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn forward_backward_is_identity() {
        let h = kpm_lattice::dense_random_symmetric(12, 1.0, 3);
        let bounds = kpm_linalg::gershgorin::gershgorin_dense(&h);
        let p = Propagator::new(&h, bounds, 1e-13).unwrap();
        let psi = ComplexState::from_real((0..12).map(|i| 1.0 / (i + 1) as f64).collect());
        let back = p.evolve(&p.evolve(&psi, 2.5), -2.5);
        for i in 0..12 {
            assert!((back.re[i] - psi.re[i]).abs() < 1e-9);
            assert!(back.im[i].abs() < 1e-9);
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // index spans several arrays in assertions
    fn matches_exact_diagonalization() {
        // U = V e^{-i diag(E) t} V^T against the Chebyshev propagator.
        let h = kpm_lattice::dense_random_symmetric(10, 1.0, 77);
        let (eigs, vecs) = kpm_linalg::eigen::jacobi_eigen(&h).unwrap();
        let bounds = kpm_linalg::gershgorin::gershgorin_dense(&h);
        let p = Propagator::new(&h, bounds, 1e-13).unwrap();

        let psi0: Vec<f64> = (0..10).map(|i| ((i * i) as f64 * 0.17).cos()).collect();
        let t = 3.3;
        let cheb = p.evolve(&ComplexState::from_real(psi0.clone()), t);

        // Exact: psi(t) = sum_k v_k e^{-i E_k t} <v_k|psi0>.
        let mut exact_re = [0.0f64; 10];
        let mut exact_im = [0.0f64; 10];
        for k in 0..10 {
            let vk: Vec<f64> = (0..10).map(|i| vecs.get(i, k)).collect();
            let amp = vecops::dot(&vk, &psi0);
            let (c, s) = ((eigs[k] * t).cos(), -(eigs[k] * t).sin());
            for i in 0..10 {
                exact_re[i] += vk[i] * amp * c;
                exact_im[i] += vk[i] * amp * s;
            }
        }
        for i in 0..10 {
            assert!(
                (cheb.re[i] - exact_re[i]).abs() < 1e-9 && (cheb.im[i] - exact_im[i]).abs() < 1e-9,
                "site {i}: ({}, {}) vs ({}, {})",
                cheb.re[i],
                cheb.im[i],
                exact_re[i],
                exact_im[i]
            );
        }
    }

    #[test]
    fn overlap_and_density() {
        let a = ComplexState { re: vec![1.0, 0.0], im: vec![0.0, 1.0] };
        let b = ComplexState { re: vec![0.0, 1.0], im: vec![0.0, 0.0] };
        let (re, im) = a.overlap(&b);
        // <a|b> = conj(a) . b = (1, -i*1) . (0,1) -> component 2: conj(i)*1 = -i.
        assert_eq!(re, 0.0);
        assert_eq!(im, -1.0);
        assert_eq!(a.density(), vec![1.0, 1.0]);
        assert_eq!(a.norm_sqr(), 2.0);
    }

    #[test]
    fn invalid_parameters_rejected() {
        let op = DiagonalOp::new(vec![1.0]);
        assert!(Propagator::new(op.clone(), SpectralBounds::new(0.0, 2.0), 0.0).is_err());
        assert!(Propagator::new(op.clone(), SpectralBounds::new(0.0, 2.0), -1.0).is_err());
        // A degenerate interval is rescued by the built-in 1% padding.
        let p = Propagator::new(op, SpectralBounds::new(1.0, 1.0), 1e-12).unwrap();
        let out = p.evolve(&ComplexState::from_real(vec![1.0]), 2.0);
        assert!((out.re[0] - (2.0f64).cos()).abs() < 1e-10);
        assert!((out.im[0] + (2.0f64).sin()).abs() < 1e-10);
    }

    #[test]
    fn long_time_evolution_stays_accurate() {
        // tau = a_- * t ~ 100: exercises the large-argument Bessel path.
        let eigs: Vec<f64> = (0..8).map(|i| i as f64 - 3.5).collect();
        let p = diag_prop(eigs.clone());
        let mut re = vec![0.0; 8];
        re[2] = 1.0;
        let out = p.evolve(&ComplexState::from_real(re), 25.0);
        let expect_re = (eigs[2] * 25.0).cos();
        let expect_im = -(eigs[2] * 25.0).sin();
        assert!((out.re[2] - expect_re).abs() < 1e-8);
        assert!((out.im[2] - expect_im).abs() < 1e-8);
    }
}
