//! Measured execution profiles: the micro-calibration harness behind
//! [`exec::plan_for`].
//!
//! The paper's GPU speedup comes from matching the launch shape to the
//! machine balance, not from a formula — Zhang et al. sweep `BLOCK_SIZE`
//! per device, and Weiße et al. note the sparse recursion is bandwidth
//! bound and shape sensitive. This module is the CPU analogue: on first
//! contact with an operator *shape* it times a short probe sweep over the
//! value-safe corner of the `(tile rows × ExecPolicy)` space using the real
//! tiled engine, and persists the winner as an [`ExecProfile`] in a
//! content-addressed [`ProfileStore`] (in-memory LRU front, optional
//! `results/profiles/` directory behind it). [`exec::plan_for`] consults
//! the store under `ExecPolicy::Auto`; the static heuristic in
//! [`exec::plan_with`] is demoted to the cold-start prior, and an explicit
//! `--exec` policy bypasses calibration entirely.
//!
//! # Determinism
//!
//! Calibration must never change a bit of the result, so the probe sweep is
//! restricted to axes the engine guarantees are value-free:
//!
//! * **Policy / thread splits** — Rows and Hybrid are scheduling-only
//!   reshapes of the same canonical reduction; thread counts never change
//!   bits.
//! * **Tile rows on the canonical grid** — any multiple of
//!   [`kpm_linalg::DEFAULT_TILE_ROWS`] is bitwise identical to the default
//!   (the tiled engine pins dot association to fixed 128-row segments, see
//!   [`kpm_linalg::tiled::tile_rows_is_value_safe`]).
//! * **Family** — the store refuses profiles whose policy crosses the
//!   `dim >= ROW_MIN_DIM` family boundary `Auto` pins, and
//!   [`ExecProfile::plan`] re-checks at use.
//!
//! Value-*affecting* candidates — the [`vecops::KernelVariant::Unrolled8`]
//! kernel and the mixed-precision moments path — are probed but recorded
//! only as an advisory `variant` hint; applying them requires the explicit
//! opt-ins (`KPM_KERNEL_VARIANT`, `--precision mixed`).
//!
//! # Keys
//!
//! Profiles are keyed by FNV-1a over the canonical [`ProbeShape`] string —
//! the same hash family serve's `JobSpec::content_hash` uses. The shape
//! holds `(dim, model entries, chunks, threads)`: every field serve's
//! cache-key masking *ignores* (moment count, kernel, priority, …) is also
//! absent here, so two jobs equal under masking resolve the same profile.

use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

use kpm_linalg::tiled::{self, TiledOp};
use kpm_linalg::vecops::{self, KernelVariant};
use kpm_linalg::DEFAULT_TILE_ROWS;

use crate::exec::{self, ExecPlan, ExecPolicy, ROW_MIN_DIM};
use crate::random::{fill_random_vector, Distribution};

/// FNV-1a 64-bit — the same constants as serve's `JobSpec` content hashes,
/// so profile keys live in the operator `content_hash` family.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The operator shape a profile is calibrated for.
///
/// `entries` is [`kpm_linalg::op::LinearOp::model_entries`] — the padded
/// (performance-model) entry count, so CSR and ELL encodings of the same
/// lattice get distinct profiles when their streamed footprints differ.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProbeShape {
    /// Operator dimension `D`.
    pub dim: usize,
    /// Modeled (padded) stored entries.
    pub entries: usize,
    /// Realization chunk count of the run being planned.
    pub chunks: usize,
    /// Effective thread budget the profile was measured under.
    pub threads: usize,
}

impl ProbeShape {
    /// Canonical string the content key is hashed over.
    pub fn canonical(&self) -> String {
        format!(
            "probe/v1;dim={};entries={};chunks={};threads={}",
            self.dim, self.entries, self.chunks, self.threads
        )
    }

    /// Content-addressed store key.
    pub fn key(&self) -> u64 {
        fnv1a(self.canonical().as_bytes())
    }
}

/// Where a stored profile came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProfileOrigin {
    /// Won a timed probe sweep on this machine.
    #[default]
    Measured,
    /// Cold-start prior (the static heuristic), recorded without timing.
    Prior,
}

impl ProfileOrigin {
    /// Canonical lower-case name.
    pub fn as_str(&self) -> &'static str {
        match self {
            ProfileOrigin::Measured => "measured",
            ProfileOrigin::Prior => "prior",
        }
    }
}

impl std::str::FromStr for ProfileOrigin {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "measured" => Ok(ProfileOrigin::Measured),
            "prior" => Ok(ProfileOrigin::Prior),
            other => Err(format!("unknown profile origin '{other}'")),
        }
    }
}

/// A calibrated execution profile: the winning plan for one [`ProbeShape`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecProfile {
    /// The shape this profile was measured for.
    pub shape: ProbeShape,
    /// Winning policy family member (`Realizations`, `Rows`, or `Hybrid`).
    pub policy: ExecPolicy,
    /// Hybrid outer split (0 when not applicable).
    pub outer: usize,
    /// Winning tile height (a canonical-grid multiple when measured).
    pub tile_rows: usize,
    /// Advisory kernel-variant hint from the micro-probe. Never applied by
    /// [`ExecProfile::plan`] — value-affecting, opt-in via
    /// `KPM_KERNEL_VARIANT` only.
    pub variant_hint: KernelVariant,
    /// Probe time of the winner in nanoseconds (0 for priors).
    pub probe_nanos: u64,
    /// Measured or prior.
    pub origin: ProfileOrigin,
}

impl ExecProfile {
    /// Whether the recorded policy respects the value-family boundary
    /// `ExecPolicy::Auto` pins on `dim` ([`ROW_MIN_DIM`]). Family-crossing
    /// profiles are ignored by the store — a tuner must never move a result
    /// between the tiled and untiled families.
    pub fn family_ok(&self) -> bool {
        if self.shape.dim >= ROW_MIN_DIM {
            matches!(self.policy, ExecPolicy::Rows | ExecPolicy::Hybrid)
        } else {
            matches!(self.policy, ExecPolicy::Realizations)
        }
    }

    /// Resolves the profile into a concrete [`ExecPlan`] for `threads`.
    ///
    /// Applies the tile-rows precedence (env > profile > prior) via
    /// [`exec::resolve_tile_rows`], discards off-grid (value-affecting)
    /// recorded tile heights, and coerces any family-crossing policy back
    /// onto the family `dim` dictates — so a stale or hand-edited profile
    /// can degrade performance but never correctness.
    pub fn plan(&self, threads: usize) -> ExecPlan {
        let threads = threads.max(1);
        let safe = Some(self.tile_rows).filter(|&tr| tiled::tile_rows_is_value_safe(tr));
        let tr = exec::resolve_tile_rows(safe);
        if self.shape.dim < ROW_MIN_DIM {
            return exec::plan_with(
                ExecPolicy::Realizations,
                self.shape.dim,
                self.shape.chunks,
                threads,
                tr,
            );
        }
        match self.policy {
            ExecPolicy::Hybrid if self.outer >= 2 && threads >= 2 => {
                let outer = self.outer.clamp(2, threads);
                let inner = (threads / outer).max(1);
                ExecPlan::Hybrid { outer, inner, tile_rows: tr }
            }
            _ => ExecPlan::Rows { threads, tile_rows: tr },
        }
    }

    /// Serializes to the on-disk text format (`kpm-profile v1` header plus
    /// `key=value` lines).
    pub fn to_text(&self) -> String {
        format!(
            "kpm-profile v1\n\
             dim={}\nentries={}\nchunks={}\nthreads={}\n\
             policy={}\nouter={}\ntile_rows={}\nvariant={}\n\
             probe_nanos={}\norigin={}\n",
            self.shape.dim,
            self.shape.entries,
            self.shape.chunks,
            self.shape.threads,
            self.policy.as_str(),
            self.outer,
            self.tile_rows,
            self.variant_hint.name(),
            self.probe_nanos,
            self.origin.as_str(),
        )
    }

    /// Parses the text format. Unknown keys are tolerated (forward
    /// compatibility); a bad header, malformed line, unparsable value, or a
    /// missing required field is an error — callers treat that as "no
    /// profile", never as fatal.
    pub fn from_text(text: &str) -> Result<ExecProfile, String> {
        let mut lines = text.lines();
        if lines.next().map(str::trim) != Some("kpm-profile v1") {
            return Err("missing 'kpm-profile v1' header".into());
        }
        let mut dim = None;
        let mut entries = None;
        let mut chunks = None;
        let mut threads = None;
        let mut policy = None;
        let mut outer = 0usize;
        let mut tile_rows = None;
        let mut variant = KernelVariant::Unrolled4;
        let mut probe_nanos = 0u64;
        let mut origin = ProfileOrigin::Measured;
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (k, v) = line.split_once('=').ok_or_else(|| format!("malformed line '{line}'"))?;
            let parse_usize =
                |v: &str| v.parse::<usize>().map_err(|_| format!("bad value for {k}: '{v}'"));
            match k {
                "dim" => dim = Some(parse_usize(v)?),
                "entries" => entries = Some(parse_usize(v)?),
                "chunks" => chunks = Some(parse_usize(v)?),
                "threads" => threads = Some(parse_usize(v)?),
                "policy" => policy = Some(v.parse::<ExecPolicy>()?),
                "outer" => outer = parse_usize(v)?,
                "tile_rows" => tile_rows = Some(parse_usize(v)?),
                "variant" => variant = v.parse::<KernelVariant>()?,
                "probe_nanos" => {
                    probe_nanos =
                        v.parse::<u64>().map_err(|_| format!("bad value for {k}: '{v}'"))?
                }
                "origin" => origin = v.parse::<ProfileOrigin>()?,
                _ => {} // unknown keys tolerated
            }
        }
        let shape = ProbeShape {
            dim: dim.ok_or("missing dim")?,
            entries: entries.ok_or("missing entries")?,
            chunks: chunks.ok_or("missing chunks")?,
            threads: threads.ok_or("missing threads")?,
        };
        Ok(ExecProfile {
            shape,
            policy: policy.ok_or("missing policy")?,
            outer,
            tile_rows: tile_rows.ok_or("missing tile_rows")?,
            variant_hint: variant,
            probe_nanos,
            origin,
        })
    }
}

struct StoreInner {
    map: HashMap<u64, ExecProfile>,
    /// LRU order, most recently used last.
    order: Vec<u64>,
    capacity: usize,
    dir: Option<PathBuf>,
    /// Keys whose disk lookup already failed — memoized so a shape absent
    /// from the store costs one `read_to_string` per process, not one per
    /// job (serve workers resolve profiles on every job). Cleared whenever
    /// the directory changes or an insert lands.
    absent: HashSet<u64>,
}

/// Content-addressed profile store: an in-memory LRU front over an optional
/// on-disk directory of `<key>.profile` text files.
pub struct ProfileStore {
    inner: Mutex<StoreInner>,
}

/// In-memory LRU capacity of the global store.
const STORE_CAPACITY: usize = 64;

impl ProfileStore {
    /// An empty store with the given LRU capacity and no backing directory.
    pub fn new(capacity: usize) -> Self {
        ProfileStore {
            inner: Mutex::new(StoreInner {
                map: HashMap::new(),
                order: Vec::new(),
                capacity: capacity.max(1),
                dir: None,
                absent: HashSet::new(),
            }),
        }
    }

    /// Points the store at a persistence directory (created on first
    /// insert), or detaches it with `None`. Existing memory entries stay;
    /// memoized negative disk lookups are forgotten (the new directory may
    /// hold what the old one lacked).
    pub fn set_dir(&self, dir: Option<PathBuf>) {
        let mut inner = self.inner.lock().unwrap();
        inner.dir = dir;
        inner.absent.clear();
    }

    /// The current persistence directory, if any.
    pub fn dir(&self) -> Option<PathBuf> {
        self.inner.lock().unwrap().dir.clone()
    }

    /// Looks up `key`: memory first, then the backing directory. A disk hit
    /// is promoted into memory (counted as `kpm.tune.disk_hit`) so the file
    /// is read once per shape, not once per job; a disk *miss* is memoized
    /// the same way, so an absent shape stops touching the filesystem after
    /// the first lookup. Family-violating or key-mismatched entries (a
    /// hand-edited file, say) are ignored.
    pub fn get(&self, key: u64) -> Option<ExecProfile> {
        let mut inner = self.inner.lock().unwrap();
        if let Some(p) = inner.map.get(&key).cloned() {
            touch(&mut inner.order, key);
            return Some(p);
        }
        if inner.absent.contains(&key) {
            return None;
        }
        let path = inner.dir.as_ref().map(|d| profile_path(d, key))?;
        drop(inner);
        let loaded = std::fs::read_to_string(path)
            .ok()
            .and_then(|text| ExecProfile::from_text(&text).ok())
            .filter(|p| p.shape.key() == key && p.family_ok());
        let mut inner = self.inner.lock().unwrap();
        match loaded {
            Some(profile) => {
                if kpm_obs::enabled() {
                    kpm_obs::counter_add("kpm.tune.disk_hit", 1);
                }
                insert_mem(&mut inner, key, profile.clone());
                Some(profile)
            }
            None => {
                inner.absent.insert(key);
                None
            }
        }
    }

    /// Inserts a profile, persisting it when a directory is attached.
    /// Family-violating profiles are dropped (returns `false`); disk errors
    /// are non-fatal (the memory front still works).
    pub fn insert(&self, profile: ExecProfile) -> bool {
        if !profile.family_ok() {
            return false;
        }
        let key = profile.shape.key();
        let mut inner = self.inner.lock().unwrap();
        let dir = inner.dir.clone();
        inner.absent.remove(&key);
        insert_mem(&mut inner, key, profile.clone());
        drop(inner);
        if let Some(dir) = dir {
            let _ = std::fs::create_dir_all(&dir);
            let _ = std::fs::write(profile_path(&dir, key), profile.to_text());
        }
        true
    }

    /// Drops every in-memory entry (disk files stay). Test hook and the
    /// `--profile-store` re-pointing path. Negative disk memoization is
    /// dropped too, so a later lookup re-consults the directory.
    pub fn clear_memory(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.map.clear();
        inner.order.clear();
        inner.absent.clear();
    }

    /// Keys of every in-memory profile, unordered — the fleet inventory
    /// advertisement ([`crate::tune`] profiles a worker already holds).
    pub fn keys(&self) -> Vec<u64> {
        self.inner.lock().unwrap().map.keys().copied().collect()
    }

    /// Number of in-memory entries.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().map.len()
    }

    /// Whether the memory front is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn profile_path(dir: &Path, key: u64) -> PathBuf {
    dir.join(format!("{key:016x}.profile"))
}

fn touch(order: &mut Vec<u64>, key: u64) {
    if let Some(pos) = order.iter().position(|&k| k == key) {
        order.remove(pos);
    }
    order.push(key);
}

fn insert_mem(inner: &mut StoreInner, key: u64, profile: ExecProfile) {
    inner.map.insert(key, profile);
    touch(&mut inner.order, key);
    while inner.map.len() > inner.capacity {
        let evict = inner.order.remove(0);
        inner.map.remove(&evict);
    }
}

/// The process-wide profile store (LRU capacity 64, no backing directory
/// until [`set_profile_dir`] attaches one).
pub fn store() -> &'static ProfileStore {
    static STORE: OnceLock<ProfileStore> = OnceLock::new();
    STORE.get_or_init(|| ProfileStore::new(STORE_CAPACITY))
}

/// Points the global store at a persistence directory (`--profile-store`).
pub fn set_profile_dir(dir: Option<PathBuf>) {
    store().set_dir(dir);
}

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Enables or disables calibration globally (`--no-tune`). When disabled,
/// lookups and probes are skipped and planning falls back to the static
/// prior.
pub fn set_tuning_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether calibration is enabled (default: yes).
pub fn tuning_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The profile-store lookup behind [`exec::plan_for`]: returns the
/// calibrated plan for the shape, or `None` on a cold start (caller falls
/// back to the static prior). Counts `kpm.tune.hit` on success.
pub fn calibrated_plan(
    dim: usize,
    entries: usize,
    chunks: usize,
    threads: usize,
) -> Option<ExecPlan> {
    if !tuning_enabled() {
        return None;
    }
    let shape = ProbeShape { dim, entries, chunks, threads };
    let profile = store().get(shape.key())?;
    if profile.shape != shape {
        return None; // hash collision — never apply another shape's plan
    }
    if kpm_obs::enabled() {
        kpm_obs::counter_add("kpm.tune.hit", 1);
    }
    Some(profile.plan(threads))
}

/// Resolves (probing if necessary) the profile for `op` split into `chunks`
/// realization chunks under the current thread budget, and stores it.
///
/// * Cached shape → counted as `kpm.tune.hit`, no probe.
/// * `dim < ROW_MIN_DIM` → the untiled prior is recorded without timing
///   (probing microsecond tiles measures noise).
/// * Otherwise → a timed probe sweep (`kpm.tune.probe`) over the value-safe
///   candidates; the winner is persisted.
///
/// With tuning disabled this is a pure function of the static heuristic and
/// touches neither counters nor the store.
pub fn ensure_profile<A: TiledOp + Sync + ?Sized>(op: &A, chunks: usize) -> ExecProfile {
    let threads = exec::effective_threads();
    let shape =
        ProbeShape { dim: op.dim(), entries: op.model_entries(), chunks: chunks.max(1), threads };
    if !tuning_enabled() {
        return prior_profile(shape);
    }
    if let Some(p) = store().get(shape.key()) {
        if p.shape == shape {
            if kpm_obs::enabled() {
                kpm_obs::counter_add("kpm.tune.hit", 1);
            }
            return p;
        }
    }
    let profile = if shape.dim < ROW_MIN_DIM { prior_profile(shape) } else { probe(op, shape) };
    store().insert(profile.clone());
    profile
}

/// The static heuristic recorded as a profile (origin `Prior`, no timing).
pub fn prior_profile(shape: ProbeShape) -> ExecProfile {
    let plan = exec::plan_with(
        ExecPolicy::Auto,
        shape.dim,
        shape.chunks,
        shape.threads,
        exec::tile_rows(),
    );
    let (policy, outer, tile_rows) = match plan {
        ExecPlan::Serial | ExecPlan::Realizations => {
            (ExecPolicy::Realizations, 0, DEFAULT_TILE_ROWS)
        }
        ExecPlan::Rows { tile_rows, .. } => (ExecPolicy::Rows, 0, tile_rows),
        ExecPlan::Hybrid { outer, tile_rows, .. } => (ExecPolicy::Hybrid, outer, tile_rows),
    };
    ExecProfile {
        shape,
        policy,
        outer,
        tile_rows,
        variant_hint: KernelVariant::Unrolled4,
        probe_nanos: 0,
        origin: ProfileOrigin::Prior,
    }
}

/// Probe workload: two start columns, eight moments — enough sweeps to
/// leave the cache-cold regime, short enough to stay a micro-benchmark.
const PROBE_COLUMNS: usize = 2;
const PROBE_MOMENTS: usize = 8;

/// One timed candidate of the probe sweep.
#[derive(Debug, Clone, Copy)]
struct Candidate {
    policy: ExecPolicy,
    outer: usize,
    tile_rows: usize,
}

/// Times a short probe sweep over the value-safe candidate grid and returns
/// the winner. Counts `kpm.tune.probe` once per sweep.
fn probe<A: TiledOp + Sync + ?Sized>(op: &A, shape: ProbeShape) -> ExecProfile {
    if kpm_obs::enabled() {
        kpm_obs::counter_add("kpm.tune.probe", 1);
    }
    let d = shape.dim;
    let (k, n) = (PROBE_COLUMNS, PROBE_MOMENTS);
    let mut r0 = vec![0.0f64; d * k];
    for (j, col) in r0.chunks_exact_mut(d).enumerate() {
        // Seed spells "probe" in ASCII.
        fill_random_vector(Distribution::Gaussian, 0x0070_726f_6265, 0, j, col);
    }

    // Canonical-grid tile heights only (value-safe by construction); larger
    // multiples are pointless once a tile spans the whole operator.
    let tiles: Vec<usize> = [1usize, 2, 4]
        .iter()
        .map(|m| m * DEFAULT_TILE_ROWS)
        .filter(|&tr| tr == DEFAULT_TILE_ROWS || tr < 2 * d)
        .collect();
    let mut candidates: Vec<Candidate> = tiles
        .iter()
        .map(|&tr| Candidate { policy: ExecPolicy::Rows, outer: 0, tile_rows: tr })
        .collect();
    if shape.chunks >= 2 && shape.threads >= 2 {
        let mut outers = vec![2, shape.threads / 2, shape.chunks.min(shape.threads)];
        outers.retain(|&o| o >= 2);
        outers.sort_unstable();
        outers.dedup();
        for o in outers {
            candidates.push(Candidate {
                policy: ExecPolicy::Hybrid,
                outer: o,
                tile_rows: DEFAULT_TILE_ROWS,
            });
        }
    }

    let time_candidate = |c: &Candidate| -> Duration {
        let run_rows = |threads: usize, tr: usize| {
            std::hint::black_box(tiled::fused_block_moments_plain(op, &r0, k, n, threads, tr));
        };
        let run = || match c.policy {
            ExecPolicy::Hybrid => {
                // Model the hybrid split: `outer` concurrent chunk workers,
                // each on its share of the threads.
                let inner = (shape.threads / c.outer).max(1);
                std::thread::scope(|s| {
                    for _ in 1..c.outer {
                        s.spawn(|| run_rows(inner, c.tile_rows));
                    }
                    run_rows(inner, c.tile_rows);
                });
            }
            _ => run_rows(shape.threads, c.tile_rows),
        };
        // Min of two reps — robust against a stray scheduling hiccup while
        // keeping the sweep in the tens of milliseconds.
        let mut best = Duration::MAX;
        for _ in 0..2 {
            let t0 = Instant::now();
            run();
            best = best.min(t0.elapsed());
        }
        best
    };

    // One untimed warmup on the default shape pulls the operator through
    // the cache hierarchy so candidate order doesn't bias the sweep.
    std::hint::black_box(tiled::fused_block_moments_plain(
        op,
        &r0,
        k,
        n,
        shape.threads,
        DEFAULT_TILE_ROWS,
    ));

    let mut best = candidates[0];
    let mut best_t = Duration::MAX;
    for c in &candidates {
        let t = time_candidate(c);
        if t < best_t {
            best_t = t;
            best = *c;
        }
    }

    ExecProfile {
        shape,
        policy: best.policy,
        outer: best.outer,
        tile_rows: best.tile_rows,
        variant_hint: variant_hint(d),
        probe_nanos: best_t.as_nanos().min(u128::from(u64::MAX)) as u64,
        origin: ProfileOrigin::Measured,
    }
}

/// Micro-probes the combine-dot kernel variants on `d`-length buffers and
/// returns the faster one. Advisory only: the hint is recorded in the
/// profile but never applied implicitly (Unrolled8 is value-affecting).
pub fn variant_hint(d: usize) -> KernelVariant {
    let n = d.clamp(1024, 1 << 18);
    let hx = vec![0.5f64; n];
    let r0 = vec![0.25f64; n];
    let mut prev = vec![0.1f64; n];
    let mut time_variant = |v: KernelVariant| -> Duration {
        let mut best = Duration::MAX;
        for _ in 0..3 {
            prev.fill(0.1);
            let t0 = Instant::now();
            std::hint::black_box(vecops::chebyshev_combine_dot_variant(v, &hx, &mut prev, &r0));
            best = best.min(t0.elapsed());
        }
        best
    };
    let t4 = time_variant(KernelVariant::Unrolled4);
    let t8 = time_variant(KernelVariant::Unrolled8);
    if t8 < t4 {
        KernelVariant::Unrolled8
    } else {
        KernelVariant::Unrolled4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn measured(dim: usize, entries: usize) -> ExecProfile {
        ExecProfile {
            shape: ProbeShape { dim, entries, chunks: 4, threads: 8 },
            policy: ExecPolicy::Rows,
            outer: 0,
            tile_rows: 2 * DEFAULT_TILE_ROWS,
            variant_hint: KernelVariant::Unrolled8,
            probe_nanos: 1234,
            origin: ProfileOrigin::Measured,
        }
    }

    #[test]
    fn text_round_trip_preserves_every_field() {
        let p = measured(1000, 6400);
        let back = ExecProfile::from_text(&p.to_text()).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn from_text_tolerates_unknown_keys_and_rejects_garbage() {
        let p = measured(1000, 6400);
        let mut text = p.to_text();
        text.push_str("future_field=whatever\n");
        assert_eq!(ExecProfile::from_text(&text).unwrap(), p);

        assert!(ExecProfile::from_text("not a profile").is_err());
        assert!(ExecProfile::from_text("kpm-profile v1\ndim=ten\n").is_err());
        assert!(ExecProfile::from_text("kpm-profile v1\ndim=10\n").is_err()); // missing fields
        let v2 = text.replace("kpm-profile v1", "kpm-profile v2");
        assert!(ExecProfile::from_text(&v2).is_err());
    }

    #[test]
    fn family_rules_gate_store_and_plan() {
        // Tiled policy on a small dim: refused by the store...
        let mut small = measured(100, 500);
        small.policy = ExecPolicy::Rows;
        assert!(!small.family_ok());
        let s = ProfileStore::new(8);
        assert!(!s.insert(small.clone()));
        assert_eq!(s.len(), 0);
        // ...and coerced to the untiled family if planned anyway.
        assert!(!small.plan(8).is_tiled());

        // Untiled policy on a big dim: refused, coerced to Rows.
        let mut big = measured(4096, 40960);
        big.policy = ExecPolicy::Realizations;
        assert!(!big.family_ok());
        assert!(matches!(big.plan(8), ExecPlan::Rows { .. }));
    }

    #[test]
    fn plan_sanitizes_off_grid_tile_rows_and_respects_outer() {
        let mut p = measured(4096, 40960);
        p.tile_rows = 200; // off the canonical grid -> value-affecting
        match p.plan(8) {
            ExecPlan::Rows { threads, tile_rows } => {
                assert_eq!(threads, 8);
                assert_eq!(tile_rows, exec::resolve_tile_rows(None));
            }
            other => panic!("expected Rows, got {other:?}"),
        }

        p.policy = ExecPolicy::Hybrid;
        p.outer = 4;
        p.tile_rows = 2 * DEFAULT_TILE_ROWS;
        match p.plan(8) {
            ExecPlan::Hybrid { outer, inner, tile_rows } => {
                assert_eq!((outer, inner), (4, 2));
                assert_eq!(tile_rows, exec::resolve_tile_rows(Some(2 * DEFAULT_TILE_ROWS)));
            }
            other => panic!("expected Hybrid, got {other:?}"),
        }
        // A single thread can't split: collapse to Rows.
        assert!(matches!(p.plan(1), ExecPlan::Rows { threads: 1, .. }));
    }

    #[test]
    fn store_is_lru_bounded_and_clearable() {
        let s = ProfileStore::new(2);
        for i in 0..4 {
            assert!(s.insert(measured(1000 + i, 6400)));
        }
        assert_eq!(s.len(), 2);
        // The two most recent shapes survive.
        assert!(s.get(measured(1002, 6400).shape.key()).is_some());
        assert!(s.get(measured(1003, 6400).shape.key()).is_some());
        assert!(s.get(measured(1000, 6400).shape.key()).is_none());
        s.clear_memory();
        assert!(s.is_empty());
    }

    #[test]
    fn disk_round_trip_promotes_and_tolerates_corruption() {
        let dir = std::env::temp_dir().join(format!("kpm-tune-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let s = ProfileStore::new(8);
        s.set_dir(Some(dir.clone()));
        let p = measured(1000, 6400);
        let key = p.shape.key();
        assert!(s.insert(p.clone()));
        assert!(profile_path(&dir, key).is_file());

        // A fresh store (cold memory) reloads from disk.
        let s2 = ProfileStore::new(8);
        s2.set_dir(Some(dir.clone()));
        assert_eq!(s2.get(key), Some(p.clone()));
        assert_eq!(s2.len(), 1); // promoted into memory

        // Corrupt file: ignored, not fatal.
        std::fs::write(profile_path(&dir, key), "kpm-profile v1\ndim=garbage\n").unwrap();
        let s3 = ProfileStore::new(8);
        s3.set_dir(Some(dir.clone()));
        assert_eq!(s3.get(key), None);

        // A file whose content hashes to a different key is also ignored.
        let other = measured(2000, 9999);
        std::fs::write(profile_path(&dir, key), other.to_text()).unwrap();
        let s4 = ProfileStore::new(8);
        s4.set_dir(Some(dir.clone()));
        assert_eq!(s4.get(key), None);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_misses_are_memoized_once_per_shape() {
        let dir = std::env::temp_dir().join(format!("kpm-tune-memo-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let s = ProfileStore::new(8);
        s.set_dir(Some(dir.clone()));

        let p = measured(1000, 6400);
        let key = p.shape.key();
        // First lookup misses disk and memoizes the absence: writing the
        // file afterwards must NOT make the same store see it (the lookup
        // never returns to the filesystem for this shape)...
        assert_eq!(s.get(key), None);
        std::fs::write(profile_path(&dir, key), p.to_text()).unwrap();
        assert_eq!(s.get(key), None);
        // ...until something invalidates the memo: an insert of the shape,
        assert!(s.insert(p.clone()));
        assert_eq!(s.get(key), Some(p.clone()));
        // a memory clear,
        s.clear_memory();
        assert_eq!(s.get(key), Some(p.clone()));
        // or re-pointing the directory.
        s.clear_memory();
        s.set_dir(None);
        assert_eq!(s.get(key), None);
        s.set_dir(Some(dir.clone()));
        assert_eq!(s.get(key), Some(p.clone()));

        assert_eq!(s.keys(), vec![key]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shape_key_is_stable_and_masking_compatible() {
        let a = ProbeShape { dim: 1000, entries: 6400, chunks: 4, threads: 8 };
        let b = ProbeShape { dim: 1000, entries: 6400, chunks: 4, threads: 8 };
        // Two jobs that serve's cache-key masking treats as equal differ
        // only in masked fields (moment count, kernel, priority, seed...)
        // none of which enter ProbeShape — identical shapes, identical keys.
        assert_eq!(a.key(), b.key());
        assert_ne!(a.key(), ProbeShape { dim: 1001, entries: 6400, chunks: 4, threads: 8 }.key());
        // Canonical string pinned: the on-disk key format is a contract.
        assert_eq!(a.canonical(), "probe/v1;dim=1000;entries=6400;chunks=4;threads=8");
    }

    #[test]
    fn prior_profile_matches_the_static_heuristic_family() {
        let small = prior_profile(ProbeShape { dim: 256, entries: 1000, chunks: 4, threads: 8 });
        assert_eq!(small.policy, ExecPolicy::Realizations);
        assert_eq!(small.origin, ProfileOrigin::Prior);
        assert!(small.family_ok());

        let big = prior_profile(ProbeShape { dim: 4096, entries: 40960, chunks: 4, threads: 8 });
        assert!(matches!(big.policy, ExecPolicy::Rows | ExecPolicy::Hybrid));
        assert!(big.family_ok());
    }
}
