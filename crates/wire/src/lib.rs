//! `kpm-wire` — the shared length-prefixed binary framing discipline.
//!
//! Both wire protocols in this workspace (`kpm-shard`'s coordinator/worker
//! protocol, magic `KPSH`, and `kpm-net`'s client/server protocol, magic
//! `KPNT`) frame every message identically:
//!
//! ```text
//! +--------+---------+------+-------------+----------------+
//! | magic  | version | type | payload len | payload        |
//! | 4 B    | u16 LE  | u8   | u32 LE      | `len` bytes    |
//! +--------+---------+------+-------------+----------------+
//! ```
//!
//! All integers are little-endian. Strings are `u32` length + UTF-8 bytes.
//! `f64` values travel as raw IEEE-754 bit patterns ([`put_f64`] /
//! [`Reader::f64`]), never through decimal formatting, so a moment arrives
//! bit-for-bit as computed — the transport cannot perturb an exact-result
//! guarantee.
//!
//! A [`Codec`] pins one protocol's magic and version; header validation
//! checks both on every frame, and a mismatch is a hard
//! [`WireError::Protocol`] rather than a best-effort parse — silently
//! reinterpreting frames across protocol revisions could corrupt payloads
//! without failing loudly. Payload lengths above [`MAX_PAYLOAD`] are
//! rejected up front so a corrupted length prefix can never trigger a
//! multi-gigabyte allocation.

use std::fmt;

/// Header length: magic + version + type + payload length.
pub const HEADER_LEN: usize = 4 + 2 + 1 + 4;

/// Payloads above this are rejected as protocol violations.
pub const MAX_PAYLOAD: u32 = 1 << 30;

/// Why a frame could not be read or decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Transport failure (read error, EOF mid-frame).
    Io(String),
    /// The peer violated the framing or payload layout.
    Protocol(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(msg) => write!(f, "io: {msg}"),
            WireError::Protocol(msg) => write!(f, "protocol: {msg}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e.to_string())
    }
}

/// One protocol's framing identity: a 4-byte magic plus a version that is
/// checked on every frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Codec {
    /// Frame preamble bytes.
    pub magic: [u8; 4],
    /// Protocol revision; bump on any change to framing or payload layout.
    pub version: u16,
}

impl Codec {
    /// Assembles a full frame (header + payload) for a frame type.
    pub fn frame(&self, type_byte: u8, payload: Vec<u8>) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.extend_from_slice(&self.magic);
        out.extend_from_slice(&self.version.to_le_bytes());
        out.push(type_byte);
        put_u32(&mut out, payload.len() as u32);
        out.extend_from_slice(&payload);
        out
    }

    /// Validates a header, returning `(type byte, payload length)`.
    ///
    /// # Errors
    /// [`WireError::Protocol`] on bad magic, version mismatch, or an
    /// oversized payload length.
    pub fn parse_header(&self, header: &[u8; HEADER_LEN]) -> Result<(u8, u32), WireError> {
        let (_, type_byte, len) = self.parse_header_compat(header, self.version)?;
        Ok((type_byte, len))
    }

    /// Validates a header while accepting any protocol revision in
    /// `min_version..=self.version`, returning
    /// `(version, type byte, payload length)`. Protocols that evolve by
    /// *adding* frame types (new types behind a version bump, old payload
    /// layouts untouched) use this on the receive side so current peers
    /// keep decoding frames from older encoders; [`Codec::parse_header`] is
    /// the strict single-version check.
    ///
    /// # Errors
    /// [`WireError::Protocol`] on bad magic, a version outside the accepted
    /// window, or an oversized payload length.
    pub fn parse_header_compat(
        &self,
        header: &[u8; HEADER_LEN],
        min_version: u16,
    ) -> Result<(u16, u8, u32), WireError> {
        if header[..4] != self.magic {
            return Err(WireError::Protocol(format!("bad magic {:02x?}", &header[..4])));
        }
        let version = u16::from_le_bytes([header[4], header[5]]);
        if version < min_version || version > self.version {
            return Err(WireError::Protocol(format!(
                "protocol version {version}, expected {}..={}",
                min_version, self.version
            )));
        }
        let len = u32::from_le_bytes([header[7], header[8], header[9], header[10]]);
        if len > MAX_PAYLOAD {
            return Err(WireError::Protocol(format!("payload length {len} exceeds cap")));
        }
        Ok((version, header[6], len))
    }

    /// Splits one full frame (header + payload) out of a byte buffer, as
    /// in-process loopback transports deliver them. The buffer must hold
    /// exactly one frame.
    ///
    /// # Errors
    /// [`WireError::Protocol`] on a malformed header or a payload whose
    /// length disagrees with it.
    pub fn split_frame<'a>(&self, bytes: &'a [u8]) -> Result<(u8, &'a [u8]), WireError> {
        if bytes.len() < HEADER_LEN {
            return Err(WireError::Protocol(format!(
                "frame of {} bytes has no header",
                bytes.len()
            )));
        }
        let header: [u8; HEADER_LEN] = bytes[..HEADER_LEN].try_into().expect("header slice");
        let (type_byte, len) = self.parse_header(&header)?;
        let payload = &bytes[HEADER_LEN..];
        if payload.len() != len as usize {
            return Err(WireError::Protocol(format!(
                "payload length {} does not match header {len}",
                payload.len()
            )));
        }
        Ok((type_byte, payload))
    }

    /// Blocking read of one frame's `(type byte, payload)` from a byte
    /// stream (the TCP transports).
    ///
    /// # Errors
    /// [`WireError::Io`] on read failure or EOF, [`WireError::Protocol`] on
    /// a malformed header.
    pub fn read_frame<R: std::io::Read>(&self, reader: &mut R) -> Result<(u8, Vec<u8>), WireError> {
        let mut header = [0u8; HEADER_LEN];
        reader.read_exact(&mut header)?;
        let (type_byte, len) = self.parse_header(&header)?;
        let mut payload = vec![0u8; len as usize];
        reader.read_exact(&mut payload)?;
        Ok((type_byte, payload))
    }

    /// [`Codec::split_frame`] with the [`Codec::parse_header_compat`]
    /// version window, additionally returning the frame's version.
    ///
    /// # Errors
    /// [`WireError::Protocol`] on a malformed header or mismatched payload.
    pub fn split_frame_compat<'a>(
        &self,
        bytes: &'a [u8],
        min_version: u16,
    ) -> Result<(u16, u8, &'a [u8]), WireError> {
        if bytes.len() < HEADER_LEN {
            return Err(WireError::Protocol(format!(
                "frame of {} bytes has no header",
                bytes.len()
            )));
        }
        let header: [u8; HEADER_LEN] = bytes[..HEADER_LEN].try_into().expect("header slice");
        let (version, type_byte, len) = self.parse_header_compat(&header, min_version)?;
        let payload = &bytes[HEADER_LEN..];
        if payload.len() != len as usize {
            return Err(WireError::Protocol(format!(
                "payload length {} does not match header {len}",
                payload.len()
            )));
        }
        Ok((version, type_byte, payload))
    }

    /// [`Codec::read_frame`] with the [`Codec::parse_header_compat`]
    /// version window, additionally returning the frame's version.
    ///
    /// # Errors
    /// [`WireError::Io`] on read failure or EOF, [`WireError::Protocol`] on
    /// a malformed header.
    pub fn read_frame_compat<R: std::io::Read>(
        &self,
        reader: &mut R,
        min_version: u16,
    ) -> Result<(u16, u8, Vec<u8>), WireError> {
        let mut header = [0u8; HEADER_LEN];
        reader.read_exact(&mut header)?;
        let (version, type_byte, len) = self.parse_header_compat(&header, min_version)?;
        let mut payload = vec![0u8; len as usize];
        reader.read_exact(&mut payload)?;
        Ok((version, type_byte, payload))
    }
}

// --- Payload writers ----------------------------------------------------

/// Appends a `u32` in little-endian.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64` in little-endian.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `f64` as its raw IEEE-754 bit pattern (bit-exact transport).
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// Appends a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Appends a length-prefixed `f64` slice, each value as raw bits.
pub fn put_f64s(out: &mut Vec<u8>, values: &[f64]) {
    put_u32(out, values.len() as u32);
    for &v in values {
        put_f64(out, v);
    }
}

// --- Payload reader -----------------------------------------------------

/// Cursor over a received payload. Every accessor fails loudly on
/// truncation, and [`Reader::finish`] rejects trailing bytes, so a decoder
/// consumes exactly what the encoder produced or errors.
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A cursor at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Takes the next `n` raw bytes.
    ///
    /// # Errors
    /// [`WireError::Protocol`] when fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.pos + n > self.bytes.len() {
            return Err(WireError::Protocol(format!(
                "truncated payload: wanted {n} bytes at offset {} of {}",
                self.pos,
                self.bytes.len()
            )));
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    /// [`WireError::Protocol`] on truncation.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    /// [`WireError::Protocol`] on truncation.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Reads an `f64` from its raw bit pattern.
    ///
    /// # Errors
    /// [`WireError::Protocol`] on truncation.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    /// [`WireError::Protocol`] on truncation or invalid UTF-8.
    pub fn string(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| WireError::Protocol("non-UTF-8 string field".into()))
    }

    /// Reads a length-prefixed `f64` vector written by [`put_f64s`]. The
    /// declared length is bounded by the remaining payload before
    /// allocation.
    ///
    /// # Errors
    /// [`WireError::Protocol`] on truncation.
    pub fn f64s(&mut self) -> Result<Vec<f64>, WireError> {
        let len = self.u32()? as usize;
        if len.saturating_mul(8) > self.bytes.len() - self.pos {
            return Err(WireError::Protocol(format!(
                "f64 vector of {len} entries exceeds remaining payload"
            )));
        }
        (0..len).map(|_| self.f64()).collect()
    }

    /// Asserts the payload was consumed exactly.
    ///
    /// # Errors
    /// [`WireError::Protocol`] when bytes remain.
    pub fn finish(self) -> Result<(), WireError> {
        if self.pos != self.bytes.len() {
            return Err(WireError::Protocol(format!(
                "{} trailing payload bytes",
                self.bytes.len() - self.pos
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const CODEC: Codec = Codec { magic: *b"TEST", version: 3 };

    #[test]
    fn frame_roundtrips_through_both_decode_paths() {
        let payload = vec![1u8, 2, 3, 4, 5];
        let bytes = CODEC.frame(9, payload.clone());
        assert_eq!(bytes.len(), HEADER_LEN + payload.len());
        let (t, p) = CODEC.split_frame(&bytes).unwrap();
        assert_eq!((t, p), (9, payload.as_slice()));
        let mut cursor = std::io::Cursor::new(bytes);
        let (t, p) = CODEC.read_frame(&mut cursor).unwrap();
        assert_eq!((t, p), (9, payload));
    }

    #[test]
    fn header_rejects_bad_magic_version_and_oversize() {
        let mut bytes = CODEC.frame(1, Vec::new());
        bytes[0] = b'X';
        assert!(matches!(CODEC.split_frame(&bytes), Err(WireError::Protocol(_))));

        let mut bytes = CODEC.frame(1, Vec::new());
        bytes[4] = 99;
        match CODEC.split_frame(&bytes) {
            Err(WireError::Protocol(msg)) => assert!(msg.contains("version"), "{msg}"),
            other => panic!("expected protocol error, got {other:?}"),
        }

        let mut bytes = CODEC.frame(1, Vec::new());
        bytes[7..11].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        match CODEC.split_frame(&bytes) {
            Err(WireError::Protocol(msg)) => assert!(msg.contains("cap"), "{msg}"),
            other => panic!("expected protocol error, got {other:?}"),
        }
    }

    #[test]
    fn compat_window_accepts_older_versions_only() {
        let old = Codec { magic: *b"TEST", version: 2 };
        let bytes = old.frame(5, vec![1, 2]);
        // Strict decode at version 3 rejects the old frame...
        assert!(matches!(CODEC.split_frame(&bytes), Err(WireError::Protocol(_))));
        // ...the compat window accepts it and reports its version...
        let (v, t, p) = CODEC.split_frame_compat(&bytes, 2).unwrap();
        assert_eq!((v, t, p), (2, 5, &[1u8, 2][..]));
        let mut cursor = std::io::Cursor::new(&bytes);
        let (v, t, p) = CODEC.read_frame_compat(&mut cursor, 2).unwrap();
        assert_eq!((v, t, p), (2, 5, vec![1, 2]));
        // ...but versions outside the window stay hard errors.
        let too_old = Codec { magic: *b"TEST", version: 1 }.frame(5, Vec::new());
        assert!(matches!(CODEC.split_frame_compat(&too_old, 2), Err(WireError::Protocol(_))));
        let future = Codec { magic: *b"TEST", version: 4 }.frame(5, Vec::new());
        assert!(matches!(CODEC.split_frame_compat(&future, 2), Err(WireError::Protocol(_))));
    }

    #[test]
    fn truncated_and_trailing_payloads_rejected() {
        let bytes = CODEC.frame(2, vec![7, 7, 7]);
        assert!(matches!(
            CODEC.split_frame(&bytes[..bytes.len() - 1]),
            Err(WireError::Protocol(_))
        ));
        let mut extended = bytes;
        extended.push(0);
        assert!(matches!(CODEC.split_frame(&extended), Err(WireError::Protocol(_))));
    }

    #[test]
    fn eof_is_io_error() {
        let mut empty = std::io::Cursor::new(Vec::<u8>::new());
        assert!(matches!(CODEC.read_frame(&mut empty), Err(WireError::Io(_))));
    }

    #[test]
    fn reader_primitives_roundtrip() {
        let mut payload = Vec::new();
        put_u32(&mut payload, 0xdead);
        put_u64(&mut payload, u64::MAX - 1);
        put_str(&mut payload, "kpm/wire ✓");
        put_f64(&mut payload, -0.0);
        put_f64s(&mut payload, &[0.1 + 0.2, f64::MIN_POSITIVE]);
        let mut r = Reader::new(&payload);
        assert_eq!(r.u32().unwrap(), 0xdead);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.string().unwrap(), "kpm/wire ✓");
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        let v = r.f64s().unwrap();
        assert_eq!(v[0].to_bits(), (0.1 + 0.2f64).to_bits());
        assert_eq!(v[1].to_bits(), f64::MIN_POSITIVE.to_bits());
        r.finish().unwrap();
    }

    #[test]
    fn f64s_length_is_bounded_by_remaining_payload() {
        let mut payload = Vec::new();
        put_u32(&mut payload, u32::MAX); // claims 4G entries
        let mut r = Reader::new(&payload);
        assert!(matches!(r.f64s(), Err(WireError::Protocol(_))));
    }

    #[test]
    fn reader_rejects_short_take_and_bad_utf8() {
        let mut r = Reader::new(&[1, 2]);
        assert!(matches!(r.u32(), Err(WireError::Protocol(_))));
        let mut payload = Vec::new();
        put_u32(&mut payload, 2);
        payload.extend_from_slice(&[0xff, 0xfe]);
        let mut r = Reader::new(&payload);
        assert!(matches!(r.string(), Err(WireError::Protocol(_))));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Any (type byte, payload) framed by a codec decodes back exactly,
        /// through the buffer path and the stream path, and a structured
        /// payload of mixed primitives survives bit-for-bit.
        fn frames_roundtrip(
            type_byte in 0u8..=255,
            words in proptest::collection::vec(proptest::arbitrary::any::<u64>(), 0..16),
            s in proptest::collection::vec(0u8..128, 0..32),
        ) {
            let text: String = s.iter().map(|&b| (b.max(32)) as char).collect();
            let mut payload = Vec::new();
            put_str(&mut payload, &text);
            let floats: Vec<f64> = words.iter().map(|&w| f64::from_bits(w)).collect();
            put_f64s(&mut payload, &floats);
            for &w in &words {
                put_u64(&mut payload, w);
            }

            let bytes = CODEC.frame(type_byte, payload.clone());
            let (t, p) = CODEC.split_frame(&bytes).unwrap();
            prop_assert_eq!(t, type_byte);
            prop_assert_eq!(p, payload.as_slice());
            let mut cursor = std::io::Cursor::new(&bytes);
            let (t, p) = CODEC.read_frame(&mut cursor).unwrap();
            prop_assert_eq!(t, type_byte);

            let mut r = Reader::new(&p);
            prop_assert_eq!(r.string().unwrap(), text);
            let back = r.f64s().unwrap();
            for (a, &w) in back.iter().zip(&words) {
                prop_assert_eq!(a.to_bits(), w, "f64 bits must survive");
            }
            for &w in &words {
                prop_assert_eq!(r.u64().unwrap(), w);
            }
            prop_assert!(r.finish().is_ok());
        }
    }
}
