//! Error taxonomy of the distributed shard layer.
//!
//! Transport failures ([`ShardError::Io`]) and missed heartbeats are
//! *recoverable per worker* — the coordinator reassigns the lost shards and
//! keeps going — so they surface from [`crate::coordinator::run`] only when
//! the last worker dies. Everything else (protocol violations, bad job
//! lines, deterministic compute errors reported by a worker) is fatal to
//! the run: retrying a deterministic failure on another worker would fail
//! identically.

use std::fmt;

/// Why a distributed run (or one of its operations) failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardError {
    /// Socket/channel failure: connect, send, or receive on a transport.
    Io(String),
    /// A peer violated the wire protocol (bad magic, unknown version or
    /// frame type, truncated payload).
    Protocol(String),
    /// The shard job line itself is invalid (unparseable spec, unshardable
    /// backend, site out of range...).
    Job(String),
    /// A worker reported a deterministic compute failure for a shard; every
    /// worker would fail the same way, so the run aborts.
    Worker {
        /// Shard id the failure was reported for.
        shard: u32,
        /// Worker-rendered error message.
        message: String,
    },
    /// Every worker died before the run completed.
    AllWorkersDead {
        /// Shards still unfinished when the last worker was lost.
        pending: usize,
    },
    /// One shard exhausted its reassignment budget.
    ShardFailed {
        /// Shard id.
        shard: u32,
        /// Dispatch attempts consumed.
        attempts: u32,
    },
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::Io(msg) => write!(f, "io: {msg}"),
            ShardError::Protocol(msg) => write!(f, "protocol: {msg}"),
            ShardError::Job(msg) => write!(f, "job: {msg}"),
            ShardError::Worker { shard, message } => {
                write!(f, "worker failed shard {shard}: {message}")
            }
            ShardError::AllWorkersDead { pending } => {
                write!(f, "all workers dead with {pending} shards pending")
            }
            ShardError::ShardFailed { shard, attempts } => {
                write!(f, "shard {shard} failed after {attempts} dispatch attempts")
            }
        }
    }
}

impl std::error::Error for ShardError {}

impl From<std::io::Error> for ShardError {
    fn from(e: std::io::Error) -> Self {
        ShardError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_context() {
        assert_eq!(
            ShardError::Worker { shard: 3, message: "kpm: bad".into() }.to_string(),
            "worker failed shard 3: kpm: bad"
        );
        assert_eq!(
            ShardError::AllWorkersDead { pending: 2 }.to_string(),
            "all workers dead with 2 shards pending"
        );
        assert!(ShardError::Protocol("bad magic".into()).to_string().contains("bad magic"));
    }

    #[test]
    fn io_error_converts() {
        let e: ShardError =
            std::io::Error::new(std::io::ErrorKind::ConnectionRefused, "refused").into();
        assert!(matches!(e, ShardError::Io(_)));
    }
}
