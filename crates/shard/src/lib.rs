//! `kpm-shard` — distributed realization-sharded moment computation.
//!
//! The KPM stochastic trace is an average over `S x R` independent
//! realizations, which makes it embarrassingly parallel across machines —
//! *if* distribution does not change the answer. This crate guarantees it
//! does not: per-realization RNG streams derive from `(seed, s, r)` alone
//! ([`kpm::random::realization_stream`]), workers return per-realization
//! moment rows untouched, and the coordinator replays the exact
//! single-process reduction over the rows in canonical order. Merged
//! moments are **bitwise identical** to an unsharded run with the same
//! seed, for any worker count, shard split, or failure history.
//!
//! Layers, bottom up:
//! - [`wire`]: versioned length-prefixed binary frames (`f64` as raw bits,
//!   so no text round-trip can perturb a moment).
//! - [`transport`]: [`transport::Endpoint`] over TCP (worker processes) or
//!   in-process loopback channels (tests; same codec).
//! - [`job`]: [`ShardJob`] — DoS/LDoS/Kubo jobs with canonical lines, the
//!   worker compute half and the coordinator merge half.
//! - [`inventory`]: the worker's content-addressed warm-state cache —
//!   assembled operators and per-realization moment rows, advertised to
//!   the fleet scheduler for locality-aware placement (DESIGN.md §13).
//! - [`worker`]: serve one connection; heartbeats answered during compute.
//! - [`coordinator`]: dispatch, heartbeat death detection, backoff
//!   reassignment, speculative re-dispatch, exact merge.
//! - [`engine`]: [`ShardedEngine`] implementing
//!   [`kpm_serve::MomentEngine`], so `kpm serve`/`kpm batch` can execute
//!   their queues on a worker fleet while staying cache-compatible.
//!
//! See DESIGN.md §8 for the wire format, the determinism argument, and the
//! failure model.

pub mod coordinator;
pub mod engine;
pub mod error;
pub mod inventory;
pub mod job;
pub mod transport;
pub mod wire;
pub mod worker;

pub use coordinator::{run, ShardPolicy};
pub use engine::{ShardedEngine, WorkerSet};
pub use error::ShardError;
pub use inventory::Inventory;
pub use job::{MergedMoments, ShardJob};
pub use transport::{loopback_pair, Endpoint};
pub use worker::{
    run_tcp_worker, run_tcp_worker_with, serve_endpoint, serve_endpoint_with,
    serve_endpoint_with_inventory, serve_listener, serve_listener_with, WorkerFault,
};
