//! The coordinator: dispatch shards, survive workers, merge exactly.
//!
//! [`run`] partitions a job's realization units into deterministic shards
//! ([`kpm::shard_plan`]), dispatches them to workers over any
//! [`Endpoint`]s, and merges the returned per-realization rows in
//! canonical order — so the merged moments are bitwise identical to a
//! single-process run no matter how many workers, how the shards were
//! split, or which workers died along the way.
//!
//! Fault model:
//! - **Crash**: the connection drops; the pump reports it and every shard
//!   the worker held goes back to pending with exponential backoff.
//! - **Hang**: the connection stays open but heartbeat pongs stop; after
//!   `heartbeat_timeout` without any frame the worker is declared dead and
//!   treated as crashed.
//! - **Straggler**: a shard in flight longer than `speculative_after` is
//!   duplicated onto an idle worker; the first result wins and duplicates
//!   are dropped by shard id.
//!
//! Deterministic failures (a worker *reports* an error, or returns
//! malformed rows) abort the run: every worker computes the same function,
//! so retrying elsewhere would fail identically. The run completes as long
//! as at least one worker survives.

use crate::error::ShardError;
use crate::job::{MergedMoments, ShardJob};
use crate::transport::Endpoint;
use crate::wire::Frame;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Pump-thread poll granularity (bounds shutdown latency only).
const PUMP_POLL: Duration = Duration::from_millis(100);
/// Main-loop event wait (bounds heartbeat/dispatch latency only).
const EVENT_POLL: Duration = Duration::from_millis(20);

/// Scheduling and fault-tolerance knobs.
#[derive(Debug, Clone, Copy)]
pub struct ShardPolicy {
    /// Target shards per worker (> 1 keeps reassignment granular).
    pub shards_per_worker: usize,
    /// How often the coordinator pings every live worker.
    pub heartbeat_interval: Duration,
    /// Silence longer than this declares a worker dead.
    pub heartbeat_timeout: Duration,
    /// In-flight longer than this triggers a speculative duplicate.
    pub speculative_after: Duration,
    /// Dispatch attempts per shard before the run fails.
    pub max_attempts: u32,
    /// First reassignment backoff; doubles per attempt.
    pub backoff_base: Duration,
}

impl Default for ShardPolicy {
    fn default() -> Self {
        Self {
            shards_per_worker: 2,
            heartbeat_interval: Duration::from_millis(200),
            heartbeat_timeout: Duration::from_secs(3),
            speculative_after: Duration::from_secs(30),
            max_attempts: 8,
            backoff_base: Duration::from_millis(25),
        }
    }
}

struct WorkerState {
    peer: String,
    tx: Arc<dyn crate::transport::FrameSink>,
    alive: bool,
    last_seen: Instant,
    /// Shard ids dispatched to this worker and not yet answered.
    inflight: Vec<u32>,
    /// Whether this connection has seen the job's [`Frame::SpecAnnounce`].
    /// The spec line travels once per worker; every shard after that —
    /// including speculative re-dispatches — is an O(1) [`Frame::RequestRef`],
    /// so re-dispatch traffic no longer scales with spec size.
    announced: bool,
}

struct ShardState {
    range: Range<usize>,
    rows: Option<Vec<Vec<f64>>>,
    attempts: u32,
    eligible_at: Instant,
    /// Workers currently holding this shard (first is the primary; any
    /// later entries are speculative duplicates).
    assigned: Vec<usize>,
    dispatched_at: Instant,
    primary: Option<usize>,
}

enum Event {
    Frame(usize, Frame),
    Closed(usize),
}

/// Runs `job` across `endpoints` under `policy`; returns moments bitwise
/// identical to the single-process pipeline.
///
/// # Errors
/// [`ShardError::Job`] for an invalid job or empty worker list,
/// [`ShardError::AllWorkersDead`] when no worker survives,
/// [`ShardError::ShardFailed`] when one shard exhausts its attempts, and
/// [`ShardError::Worker`]/[`ShardError::Protocol`] for deterministic
/// worker failures.
pub fn run(
    job: &ShardJob,
    endpoints: Vec<Endpoint>,
    policy: &ShardPolicy,
) -> Result<MergedMoments, ShardError> {
    job.validate()?;
    if endpoints.is_empty() {
        return Err(ShardError::Job("a distributed run needs at least one worker".into()));
    }
    let _span = kpm_obs::span("shard.run");

    let stop = Arc::new(AtomicBool::new(false));
    let (ev_tx, ev_rx) = mpsc::channel();
    let mut workers = Vec::with_capacity(endpoints.len());
    let mut pumps = Vec::with_capacity(endpoints.len());
    for (i, ep) in endpoints.into_iter().enumerate() {
        let Endpoint { peer, tx, mut rx } = ep;
        workers.push(WorkerState {
            peer,
            tx,
            alive: true,
            last_seen: Instant::now(),
            inflight: Vec::new(),
            announced: false,
        });
        let evt = ev_tx.clone();
        let stop = Arc::clone(&stop);
        pumps.push(
            std::thread::Builder::new()
                .name(format!("kpm-shard-pump-{i}"))
                .spawn(move || loop {
                    match rx.recv_timeout(PUMP_POLL) {
                        Ok(Some(frame)) => {
                            if evt.send(Event::Frame(i, frame)).is_err() {
                                break;
                            }
                        }
                        Ok(None) => {
                            if stop.load(Ordering::Relaxed) {
                                break;
                            }
                        }
                        Err(_) => {
                            let _ = evt.send(Event::Closed(i));
                            break;
                        }
                    }
                })
                .expect("spawn shard pump thread"),
        );
    }
    drop(ev_tx);

    let mut coordinator = Coordinator::new(job, policy, workers);
    let rows = coordinator.drive(&ev_rx);

    // Wind down: stop the pumps, tell surviving workers we are done.
    stop.store(true, Ordering::Relaxed);
    for w in coordinator.workers.iter().filter(|w| w.alive) {
        let _ = w.tx.send(&Frame::Shutdown);
    }
    drop(coordinator); // closes the endpoints so pumps blocked on TCP exit too
    for p in pumps {
        let _ = p.join();
    }

    let rows = rows?;
    let _merge_span = kpm_obs::span("shard.merge");
    job.merge(&rows)
}

struct Coordinator<'a> {
    job: &'a ShardJob,
    policy: &'a ShardPolicy,
    workers: Vec<WorkerState>,
    shards: Vec<ShardState>,
    done: usize,
    nonce: u64,
    job_id: u64,
    spec_line: String,
    inflight_peak: u64,
}

impl<'a> Coordinator<'a> {
    fn new(job: &'a ShardJob, policy: &'a ShardPolicy, workers: Vec<WorkerState>) -> Self {
        let total = job.total_units();
        let num_shards = total.min(workers.len() * policy.shards_per_worker.max(1)).max(1);
        let now = Instant::now();
        let shards = kpm::shard_plan(total, num_shards)
            .into_iter()
            .map(|range| ShardState {
                range,
                rows: None,
                attempts: 0,
                eligible_at: now,
                assigned: Vec::new(),
                dispatched_at: now,
                primary: None,
            })
            .collect();
        Self {
            job,
            policy,
            workers,
            shards,
            done: 0,
            nonce: 0,
            job_id: job.spec().content_hash(),
            spec_line: job.canonical(),
            inflight_peak: 0,
        }
    }

    fn drive(&mut self, events: &mpsc::Receiver<Event>) -> Result<Vec<Vec<f64>>, ShardError> {
        let mut last_ping = Instant::now();
        while self.done < self.shards.len() {
            let now = Instant::now();
            // Hung-worker detection.
            for i in 0..self.workers.len() {
                if self.workers[i].alive
                    && now.duration_since(self.workers[i].last_seen) > self.policy.heartbeat_timeout
                {
                    self.kill_worker(i, now);
                }
            }
            if !self.workers.iter().any(|w| w.alive) {
                return Err(ShardError::AllWorkersDead {
                    pending: self.shards.iter().filter(|s| s.rows.is_none()).count(),
                });
            }
            // Heartbeats.
            if now.duration_since(last_ping) >= self.policy.heartbeat_interval {
                last_ping = now;
                for i in 0..self.workers.len() {
                    if self.workers[i].alive {
                        self.nonce += 1;
                        let ping = Frame::Ping { nonce: self.nonce };
                        if self.workers[i].tx.send(&ping).is_err() {
                            self.kill_worker(i, now);
                        }
                    }
                }
            }
            // Dispatch every pending, eligible shard.
            for k in 0..self.shards.len() {
                let s = &self.shards[k];
                if s.rows.is_some() || !s.assigned.is_empty() || s.eligible_at > now {
                    continue;
                }
                if s.attempts >= self.policy.max_attempts {
                    return Err(ShardError::ShardFailed { shard: k as u32, attempts: s.attempts });
                }
                if let Some(w) = self.pick_worker(&[]) {
                    self.dispatch(k, w, now);
                }
            }
            // Speculative duplicates for stragglers.
            for k in 0..self.shards.len() {
                let s = &self.shards[k];
                if s.rows.is_none()
                    && s.assigned.len() == 1
                    && now.duration_since(s.dispatched_at) > self.policy.speculative_after
                {
                    let holders = s.assigned.clone();
                    if let Some(w) = self.pick_worker(&holders) {
                        kpm_obs::counter_add("shard.speculative", 1);
                        self.dispatch(k, w, now);
                    }
                }
            }
            // Drain events.
            match events.recv_timeout(EVENT_POLL) {
                Ok(ev) => {
                    self.handle(ev)?;
                    while let Ok(ev) = events.try_recv() {
                        self.handle(ev)?;
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    // Every pump exited: no frame can ever arrive again.
                    let now = Instant::now();
                    for i in 0..self.workers.len() {
                        self.kill_worker(i, now);
                    }
                }
            }
        }
        kpm_obs::counter_add("shard.inflight.peak", self.inflight_peak);
        let rows =
            self.shards.iter_mut().flat_map(|s| s.rows.take().expect("all shards done")).collect();
        Ok(rows)
    }

    fn handle(&mut self, ev: Event) -> Result<(), ShardError> {
        match ev {
            Event::Closed(i) => {
                self.kill_worker(i, Instant::now());
                Ok(())
            }
            Event::Frame(i, frame) => {
                self.workers[i].last_seen = Instant::now();
                match frame {
                    Frame::Pong { .. } => Ok(()),
                    Frame::Result(res) => self.accept_result(i, res),
                    Frame::WorkerError { shard, message, .. } => {
                        Err(ShardError::Worker { shard, message })
                    }
                    // Coordinator-bound frames only; anything else is noise.
                    _ => Ok(()),
                }
            }
        }
    }

    fn accept_result(&mut self, i: usize, res: crate::wire::ShardResult) -> Result<(), ShardError> {
        let k = res.shard as usize;
        if k >= self.shards.len() {
            return Err(ShardError::Protocol(format!(
                "worker {} answered unknown shard {k}",
                self.workers[i].peer
            )));
        }
        self.workers[i].inflight.retain(|&s| s != res.shard);
        if self.shards[k].rows.is_some() {
            return Ok(()); // speculative loser (or a ghost from a revived worker)
        }
        let s = &mut self.shards[k];
        let want_rows = s.range.len();
        let want_len = self.job.moment_len();
        if res.rows.len() != want_rows || res.rows.iter().any(|r| r.len() != want_len) {
            return Err(ShardError::Protocol(format!(
                "worker {} returned malformed rows for shard {k}",
                self.workers[i].peer
            )));
        }
        if s.primary.is_some_and(|p| p != i) {
            kpm_obs::counter_add("shard.speculative_wins", 1);
        }
        s.rows = Some(res.rows);
        s.assigned.retain(|&w| w != i);
        self.done += 1;
        kpm_obs::counter_add("shard.completed", 1);
        Ok(())
    }

    /// Marks a worker dead and returns its unfinished shards to pending
    /// with exponential backoff.
    fn kill_worker(&mut self, i: usize, now: Instant) {
        if !self.workers[i].alive {
            return;
        }
        self.workers[i].alive = false;
        kpm_obs::counter_add("shard.workers.dead", 1);
        let lost = std::mem::take(&mut self.workers[i].inflight);
        for shard in lost {
            let s = &mut self.shards[shard as usize];
            s.assigned.retain(|&w| w != i);
            if s.rows.is_none() && s.assigned.is_empty() {
                let exp = s.attempts.min(10);
                s.eligible_at = now + self.policy.backoff_base * 2u32.saturating_pow(exp);
                kpm_obs::counter_add("shard.reassigned", 1);
            }
        }
    }

    /// The live worker with the least in-flight work, excluding `exclude`;
    /// `None` when every live worker is excluded (or none is live).
    fn pick_worker(&self, exclude: &[usize]) -> Option<usize> {
        (0..self.workers.len())
            .filter(|i| self.workers[*i].alive && !exclude.contains(i))
            .min_by_key(|i| self.workers[*i].inflight.len())
    }

    fn dispatch(&mut self, k: usize, w: usize, now: Instant) {
        let request = {
            let s = &mut self.shards[k];
            s.attempts += 1;
            s.assigned.push(w);
            if s.primary.is_none() || s.assigned.len() == 1 {
                s.primary = Some(w);
            }
            s.dispatched_at = now;
            Frame::RequestRef {
                job: self.job_id,
                shard: k as u32,
                start: s.range.start as u64,
                end: s.range.end as u64,
            }
        };
        self.workers[w].inflight.push(k as u32);
        let inflight_total: usize = self.workers.iter().map(|x| x.inflight.len()).sum();
        self.inflight_peak = self.inflight_peak.max(inflight_total as u64);
        kpm_obs::counter_add("shard.dispatched", 1);
        // The full spec line travels once per connection; every dispatch
        // after that (re-dispatch, speculation) is shard-range only.
        if !self.workers[w].announced {
            let announce = Frame::SpecAnnounce { job: self.job_id, spec: self.spec_line.clone() };
            if self.workers[w].tx.send(&announce).is_err() {
                self.kill_worker(w, now);
                return;
            }
            self.workers[w].announced = true;
            kpm_obs::counter_add("shard.spec.announced", 1);
        }
        if self.workers[w].tx.send(&request).is_err() {
            self.kill_worker(w, now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::loopback_pair;
    use crate::worker::{serve_endpoint_with, WorkerFault};
    use kpm_serve::worker::compute_raw_moments;
    use kpm_serve::JobSpec;

    fn spawn_workers(faults: &[Option<WorkerFault>]) -> Vec<Endpoint> {
        faults
            .iter()
            .enumerate()
            .map(|(i, fault)| {
                let (coord, worker) = loopback_pair(&format!("local-{i}"));
                let fault = *fault;
                std::thread::Builder::new()
                    .name(format!("kpm-shard-local-{i}"))
                    .spawn(move || serve_endpoint_with(worker, fault))
                    .expect("spawn local worker");
                coord
            })
            .collect()
    }

    fn fast_policy() -> ShardPolicy {
        ShardPolicy {
            heartbeat_interval: Duration::from_millis(50),
            heartbeat_timeout: Duration::from_millis(600),
            backoff_base: Duration::from_millis(5),
            ..ShardPolicy::default()
        }
    }

    const LINE: &str = "lattice=chain:48 moments=16 random=3 sets=2 seed=11";

    fn reference_mean() -> Vec<f64> {
        compute_raw_moments(&JobSpec::parse(LINE).unwrap(), 0).unwrap().0.mean
    }

    #[test]
    fn distributed_run_is_bitwise_identical_for_any_worker_count() {
        let job = ShardJob::parse(&format!("dos {LINE}")).unwrap();
        let reference = reference_mean();
        for n in [1usize, 2, 4] {
            let endpoints = spawn_workers(&vec![None; n]);
            let merged = run(&job, endpoints, &fast_policy()).unwrap();
            let stats = merged.into_stats().unwrap();
            assert_eq!(stats.mean, reference, "{n} workers must match single-process bitwise");
        }
    }

    #[test]
    fn run_survives_a_worker_dying_mid_job_with_identical_bytes() {
        let job = ShardJob::parse(&format!("dos {LINE}")).unwrap();
        let endpoints = spawn_workers(&[Some(WorkerFault::DieAfterRequests(1)), None, None]);
        let merged = run(&job, endpoints, &fast_policy()).unwrap();
        assert_eq!(merged.into_stats().unwrap().mean, reference_mean());
    }

    #[test]
    fn run_survives_a_hung_worker_via_heartbeat_timeout() {
        let job = ShardJob::parse(&format!("dos {LINE}")).unwrap();
        let endpoints = spawn_workers(&[Some(WorkerFault::HangAfterRequests(0)), None]);
        let merged = run(&job, endpoints, &fast_policy()).unwrap();
        assert_eq!(merged.into_stats().unwrap().mean, reference_mean());
    }

    #[test]
    fn all_workers_dead_is_reported() {
        let job = ShardJob::parse(&format!("dos {LINE}")).unwrap();
        let endpoints = spawn_workers(&[
            Some(WorkerFault::DieAfterRequests(0)),
            Some(WorkerFault::DieAfterRequests(0)),
        ]);
        match run(&job, endpoints, &fast_policy()) {
            Err(ShardError::AllWorkersDead { pending }) => assert!(pending > 0),
            other => panic!("expected AllWorkersDead, got {other:?}"),
        }
    }

    #[test]
    fn deterministic_worker_error_aborts_the_run() {
        // A worker that reports an error for every request (a real worker
        // only does this for deterministic compute failures, which retry
        // cannot fix — so the run must abort, not reassign).
        let (coord, worker) = loopback_pair("broken");
        std::thread::spawn(move || {
            let mut worker = worker;
            while let Ok(Some(frame)) = worker.rx.recv_timeout(Duration::from_secs(10)) {
                match frame {
                    Frame::RequestRef { job, shard, .. } => {
                        let reply = Frame::WorkerError {
                            job,
                            shard,
                            message: "kpm: degenerate spectrum".into(),
                        };
                        let _ = worker.tx.send(&reply);
                    }
                    Frame::Ping { nonce } => {
                        let _ = worker.tx.send(&Frame::Pong { nonce });
                    }
                    Frame::Shutdown => break,
                    _ => {}
                }
            }
        });
        let job = ShardJob::parse(&format!("dos {LINE}")).unwrap();
        match run(&job, vec![coord], &fast_policy()) {
            Err(ShardError::Worker { message, .. }) => {
                assert!(message.contains("degenerate"), "{message}");
            }
            other => panic!("expected ShardError::Worker, got {other:?}"),
        }
    }

    #[test]
    fn spec_is_announced_once_per_worker_for_many_shards() {
        use std::sync::atomic::AtomicUsize;
        let announces = Arc::new(AtomicUsize::new(0));
        let (coord, worker) = loopback_pair("counting");
        let count = Arc::clone(&announces);
        std::thread::spawn(move || {
            let mut worker = worker;
            let mut specs: std::collections::HashMap<u64, ShardJob> = Default::default();
            while let Ok(Some(frame)) = worker.rx.recv_timeout(Duration::from_secs(10)) {
                match frame {
                    Frame::SpecAnnounce { job, spec } => {
                        count.fetch_add(1, Ordering::SeqCst);
                        specs.insert(job, ShardJob::parse(&spec).unwrap());
                    }
                    Frame::RequestRef { job, shard, start, end } => {
                        let rows =
                            specs[&job].compute_partial(start as usize..end as usize).unwrap();
                        let reply = Frame::Result(crate::wire::ShardResult { job, shard, rows });
                        let _ = worker.tx.send(&reply);
                    }
                    Frame::Ping { nonce } => {
                        let _ = worker.tx.send(&Frame::Pong { nonce });
                    }
                    Frame::Shutdown => break,
                    _ => {}
                }
            }
        });
        let job = ShardJob::parse(&format!("dos {LINE}")).unwrap();
        let merged = run(&job, vec![coord], &fast_policy()).unwrap();
        assert_eq!(merged.into_stats().unwrap().mean, reference_mean());
        // Two shards were dispatched (shards_per_worker = 2), one announce.
        assert_eq!(announces.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn empty_worker_list_is_rejected() {
        let job = ShardJob::parse(&format!("dos {LINE}")).unwrap();
        assert!(matches!(run(&job, Vec::new(), &ShardPolicy::default()), Err(ShardError::Job(_))));
    }

    #[test]
    fn ldos_and_kubo_jobs_run_distributed_bitwise() {
        let ldos = ShardJob::parse("ldos:5 lattice=chain:32 moments=16").unwrap();
        let merged = run(&ldos, spawn_workers(&[None, None]), &fast_policy()).unwrap();
        let direct = ldos.compute_partial(0..1).unwrap();
        assert_eq!(merged.into_stats().unwrap().mean, direct[0]);

        let kubo = ShardJob::parse("kubo lattice=chain:16 moments=6 random=2 sets=2").unwrap();
        let merged = run(&kubo, spawn_workers(&[None, None, None]), &fast_policy()).unwrap();
        let mut rows = Vec::new();
        for range in kpm::shard_plan(kubo.total_units(), 1) {
            rows.extend(kubo.compute_partial(range).unwrap());
        }
        let direct = kubo.merge(&rows).unwrap().into_double().unwrap();
        assert_eq!(merged.into_double().unwrap().mu, direct.mu);
    }
}
