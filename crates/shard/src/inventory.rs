//! The worker's content-addressed warm-state inventory.
//!
//! A worker process keeps two caches across connections and jobs: assembled
//! Hamiltonians keyed by [`ShardJob::op_key`] (so a repeat job — or a
//! different estimator on the same lattice — skips matrix assembly), and
//! per-realization moment rows keyed by `(row_key, idx)` (so a repeat job
//! skips the Chebyshev recursion outright). Both keys are FNV-1a-64 content
//! hashes over canonically neutralized spec renderings — the serve cache's
//! hash family — so equality of keys *is* reusability of state.
//!
//! Row reuse is bitwise-safe by the same argument the serve moment cache
//! rests on: a per-realization row at `N'` moments has the `N < N'` row as
//! an exact prefix (the recursion extends, it never revisits), so serving a
//! truncated cached row is identical to recomputing — pinned by tests here
//! and exercised end-to-end by the fleet proptests. Kubo rows are the
//! exception (`N x N` flattening), gated by
//! [`ShardJob::prefix_extendable`] to exact-length reuse.
//!
//! [`Inventory::report`] renders the warm state as a
//! [`crate::wire::InventoryReport`] — operator hashes, contiguous cached row runs,
//! and the keys of tuned [`kpm::tune`] profiles resident in this process —
//! which the fleet scheduler scores placements against.

use crate::error::ShardError;
use crate::job::ShardJob;
use crate::wire::{InventoryReport, RowRun};
use kpm_serve::job::JobMatrix;
use std::collections::{HashMap, VecDeque};
use std::ops::Range;
use std::sync::{Arc, Mutex};

/// Default bound on cached rows when the CLI does not set
/// `--inventory-cap`.
pub const DEFAULT_ROW_CAP: usize = 4096;

/// Assembled operators kept resident (small: matrices dominate memory).
const OP_CAP: usize = 8;

#[derive(Default)]
struct Inner {
    ops: HashMap<u64, Arc<JobMatrix>>,
    op_order: VecDeque<u64>,
    rows: HashMap<(u64, u64), Vec<f64>>,
    row_order: VecDeque<(u64, u64)>,
}

/// Shared warm-state cache for one worker process; cheap to clone handles
/// via `Arc`, safe across the per-connection serving threads.
pub struct Inventory {
    row_cap: usize,
    inner: Mutex<Inner>,
}

impl Inventory {
    /// An inventory bounded to `row_cap` cached rows (0 disables caching —
    /// every compute goes to the recursion, nothing is advertised).
    pub fn new(row_cap: usize) -> Self {
        Inventory { row_cap, inner: Mutex::new(Inner::default()) }
    }

    /// Computes `range` of `job`, serving warm rows when every index of the
    /// range is cached at a sufficient moment count and otherwise running
    /// the real compute path on a (possibly cached) assembled operator,
    /// then retaining the fresh rows. Served rows are bitwise identical to
    /// recomputation (prefix truncation for DoS/LDoS, exact length for
    /// Kubo).
    ///
    /// # Errors
    /// [`ShardError::Job`] on an invalid range or any KPM failure.
    pub fn compute(
        &self,
        job: &ShardJob,
        range: Range<usize>,
    ) -> Result<Vec<Vec<f64>>, ShardError> {
        let need = job.moment_len();
        let key = job.row_key();
        if self.row_cap > 0 {
            let inner = self.inner.lock().expect("inventory lock");
            let warm = |idx: usize| {
                inner.rows.get(&(key, idx as u64)).is_some_and(|row| {
                    row.len() == need || (job.prefix_extendable() && row.len() > need)
                })
            };
            if !range.is_empty() && range.end <= job.total_units() && range.clone().all(warm) {
                let served: Vec<Vec<f64>> = range
                    .clone()
                    .map(|idx| inner.rows[&(key, idx as u64)][..need].to_vec())
                    .collect();
                kpm_obs::counter_add("shard.inventory.row_hits", range.len() as u64);
                return Ok(served);
            }
        }
        let matrix = self.operator(job);
        let rows = job.compute_partial_with(range.clone(), &matrix)?;
        self.retain_rows(key, range.start as u64, &rows);
        Ok(rows)
    }

    /// The job's assembled Hamiltonian, from cache when warm.
    fn operator(&self, job: &ShardJob) -> Arc<JobMatrix> {
        let key = job.op_key();
        {
            let inner = self.inner.lock().expect("inventory lock");
            if let Some(m) = inner.ops.get(&key) {
                kpm_obs::counter_add("shard.inventory.op_hits", 1);
                return Arc::clone(m);
            }
        }
        let built = Arc::new(job.spec().build_matrix());
        let mut inner = self.inner.lock().expect("inventory lock");
        if inner.ops.insert(key, Arc::clone(&built)).is_none() {
            inner.op_order.push_back(key);
            while inner.op_order.len() > OP_CAP {
                let evict = inner.op_order.pop_front().expect("non-empty");
                inner.ops.remove(&evict);
            }
        }
        built
    }

    /// Stores fresh rows, upgrade-only (a longer cached row is never
    /// replaced by a shorter one), evicting oldest-inserted beyond the cap.
    fn retain_rows(&self, key: u64, start: u64, rows: &[Vec<f64>]) {
        if self.row_cap == 0 {
            return;
        }
        let mut inner = self.inner.lock().expect("inventory lock");
        for (i, row) in rows.iter().enumerate() {
            let slot = (key, start + i as u64);
            match inner.rows.get(&slot) {
                Some(existing) if existing.len() >= row.len() => {}
                Some(_) => {
                    inner.rows.insert(slot, row.clone());
                }
                None => {
                    inner.rows.insert(slot, row.clone());
                    inner.row_order.push_back(slot);
                }
            }
        }
        while inner.row_order.len() > self.row_cap {
            let evict = inner.row_order.pop_front().expect("non-empty");
            inner.rows.remove(&evict);
        }
    }

    /// Renders the warm state for the scheduler: operator hashes, cached
    /// rows merged into maximal contiguous same-length runs, and the keys
    /// of tuned profiles resident in this process's [`kpm::tune`] store.
    pub fn report(&self) -> InventoryReport {
        let inner = self.inner.lock().expect("inventory lock");
        let mut ops: Vec<u64> = inner.ops.keys().copied().collect();
        ops.sort_unstable();
        let mut by_key: HashMap<u64, Vec<(u64, u32)>> = HashMap::new();
        for (&(key, idx), row) in &inner.rows {
            by_key.entry(key).or_default().push((idx, row.len() as u32));
        }
        let mut rows = Vec::new();
        let mut keys: Vec<u64> = by_key.keys().copied().collect();
        keys.sort_unstable();
        for key in keys {
            let mut entries = by_key.remove(&key).expect("present");
            entries.sort_unstable();
            let mut run: Option<RowRun> = None;
            for (idx, n) in entries {
                match &mut run {
                    Some(r) if r.end == idx && r.n == n => r.end = idx + 1,
                    _ => {
                        rows.extend(run.take());
                        run = Some(RowRun { key, start: idx, end: idx + 1, n });
                    }
                }
            }
            rows.extend(run);
        }
        let mut profiles = kpm::tune::store().keys();
        profiles.sort_unstable();
        InventoryReport { ops, rows, profiles }
    }
}

impl Default for Inventory {
    fn default() -> Self {
        Inventory::new(DEFAULT_ROW_CAP)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(line: &str) -> ShardJob {
        ShardJob::parse(line).unwrap()
    }

    #[test]
    fn served_rows_are_bitwise_identical_to_recomputation() {
        let inv = Inventory::new(64);
        let j = job("dos lattice=chain:32 moments=20 random=3 sets=2 seed=5");
        let cold = inv.compute(&j, 0..6).unwrap();
        let warm = inv.compute(&j, 0..6).unwrap();
        assert_eq!(cold, warm);
        assert_eq!(cold, j.compute_partial(0..6).unwrap());
        // A sub-range is served from the same cache, still bitwise.
        assert_eq!(inv.compute(&j, 2..5).unwrap(), j.compute_partial(2..5).unwrap());
    }

    #[test]
    fn prefix_rows_serve_lower_moment_orders_bitwise() {
        let inv = Inventory::new(64);
        let long = job("dos lattice=chain:32 moments=24 random=2 sets=2 seed=7");
        let short = job("dos lattice=chain:32 moments=10 random=2 sets=2 seed=7");
        assert_eq!(long.row_key(), short.row_key());
        inv.compute(&long, 0..4).unwrap();
        // The short job is served from the 24-moment rows by truncation —
        // bitwise equal to a cold 10-moment run (the prefix contract).
        let served = inv.compute(&short, 0..4).unwrap();
        assert_eq!(served, short.compute_partial(0..4).unwrap());
        // The reverse is a miss: 10-moment rows cannot serve 24.
        let inv2 = Inventory::new(64);
        inv2.compute(&short, 0..4).unwrap();
        assert_eq!(inv2.compute(&long, 0..4).unwrap(), long.compute_partial(0..4).unwrap());
    }

    #[test]
    fn kubo_rows_reuse_at_exact_order_only() {
        let inv = Inventory::new(64);
        let a = job("kubo lattice=chain:16 moments=6 random=2 sets=1");
        let b = job("kubo lattice=chain:16 moments=4 random=2 sets=1");
        inv.compute(&a, 0..2).unwrap();
        // Same row family, different N: must recompute, and stay correct.
        assert_eq!(inv.compute(&b, 0..2).unwrap(), b.compute_partial(0..2).unwrap());
        // Exact-N repeat is served.
        assert_eq!(inv.compute(&a, 0..2).unwrap(), a.compute_partial(0..2).unwrap());
    }

    #[test]
    fn report_merges_contiguous_runs_and_lists_ops() {
        let inv = Inventory::new(64);
        let j = job("dos lattice=chain:24 moments=12 random=2 sets=3 seed=2");
        inv.compute(&j, 0..3).unwrap();
        inv.compute(&j, 4..6).unwrap();
        let report = inv.report();
        assert_eq!(report.ops, vec![j.op_key()]);
        let runs: Vec<(u64, u64, u32)> =
            report.rows.iter().map(|r| (r.start, r.end, r.n)).collect();
        assert_eq!(runs, vec![(0, 3, 12), (4, 6, 12)]);
        assert!(report.rows.iter().all(|r| r.key == j.row_key()));
        // Filling the gap fuses the runs.
        inv.compute(&j, 3..4).unwrap();
        assert_eq!(inv.report().rows.len(), 1);
    }

    #[test]
    fn zero_cap_disables_caching_and_cap_bounds_rows() {
        let off = Inventory::new(0);
        let j = job("dos lattice=chain:16 moments=8 random=2 sets=2 seed=1");
        off.compute(&j, 0..4).unwrap();
        assert!(off.report().rows.is_empty());

        let tiny = Inventory::new(2);
        tiny.compute(&j, 0..4).unwrap();
        let cached: u64 = tiny.report().rows.iter().map(|r| r.end - r.start).sum();
        assert_eq!(cached, 2);
        // Still correct when partially evicted.
        assert_eq!(tiny.compute(&j, 0..4).unwrap(), j.compute_partial(0..4).unwrap());
    }

    #[test]
    fn operator_cache_is_shared_across_estimator_kinds() {
        let inv = Inventory::new(16);
        let dos = job("dos lattice=chain:20 moments=8 random=1 sets=1 seed=4");
        let ldos = job("ldos:3 lattice=chain:20 moments=8");
        assert_eq!(dos.op_key(), ldos.op_key());
        inv.compute(&dos, 0..1).unwrap();
        assert_eq!(inv.compute(&ldos, 0..1).unwrap(), ldos.compute_partial(0..1).unwrap());
        assert_eq!(inv.report().ops.len(), 1);
    }
}
