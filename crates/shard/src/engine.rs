//! [`ShardedEngine`]: the distributed compute path, pluggable into
//! `kpm-serve` behind its [`MomentEngine`] hook.
//!
//! The engine owns a worker set — `--local-workers N` spawns in-process
//! loopback workers per run; `--workers a,b,...` connects to remote TCP
//! workers per run — and produces moments bitwise identical to the local
//! pipeline, so cached results from sharded and unsharded runs are
//! interchangeable.

use crate::coordinator::{self, ShardPolicy};
use crate::error::ShardError;
use crate::job::{MergedMoments, ShardJob};
use crate::transport::{loopback_pair, Endpoint};
use crate::worker::serve_endpoint;
use kpm_serve::worker::compute_raw_moments;
use kpm_serve::{Backend, JobError, JobSpec, MomentEngine};

/// Where shard workers come from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkerSet {
    /// Spawn this many in-process loopback workers per run.
    Local(usize),
    /// Connect to these TCP worker addresses per run.
    Tcp(Vec<String>),
}

/// A coordinator front-end bound to a worker set and policy.
#[derive(Debug, Clone)]
pub struct ShardedEngine {
    workers: WorkerSet,
    policy: ShardPolicy,
}

impl ShardedEngine {
    /// An engine over `n` in-process loopback workers (minimum 1).
    pub fn local(n: usize) -> Self {
        Self { workers: WorkerSet::Local(n.max(1)), policy: ShardPolicy::default() }
    }

    /// An engine over remote TCP workers.
    pub fn tcp(addrs: Vec<String>) -> Self {
        Self { workers: WorkerSet::Tcp(addrs), policy: ShardPolicy::default() }
    }

    /// Replaces the scheduling/fault-tolerance policy.
    #[must_use]
    pub fn with_policy(mut self, policy: ShardPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The configured worker set.
    pub fn workers(&self) -> &WorkerSet {
        &self.workers
    }

    /// Runs one job across the worker set.
    ///
    /// # Errors
    /// [`ShardError`] from connection setup or the coordinator.
    pub fn run_job(&self, job: &ShardJob) -> Result<MergedMoments, ShardError> {
        match &self.workers {
            WorkerSet::Tcp(addrs) => {
                if addrs.is_empty() {
                    return Err(ShardError::Job("no worker addresses configured".into()));
                }
                let endpoints = addrs
                    .iter()
                    .map(|a| Endpoint::connect_tcp(a))
                    .collect::<Result<Vec<_>, _>>()?;
                coordinator::run(job, endpoints, &self.policy)
            }
            WorkerSet::Local(n) => {
                let mut endpoints = Vec::with_capacity(*n);
                let mut handles = Vec::with_capacity(*n);
                for i in 0..*n {
                    let (coord, worker) = loopback_pair(&format!("local-{i}"));
                    endpoints.push(coord);
                    handles.push(
                        std::thread::Builder::new()
                            .name(format!("kpm-shard-local-{i}"))
                            .spawn(move || serve_endpoint(worker))
                            .map_err(|e| ShardError::Io(e.to_string()))?,
                    );
                }
                let result = coordinator::run(job, endpoints, &self.policy);
                // The coordinator has shut the workers down (or dropped
                // their endpoints); joining just reaps the threads.
                for h in handles {
                    let _ = h.join();
                }
                result
            }
        }
    }
}

impl MomentEngine for ShardedEngine {
    /// Serves a DoS job from the worker set. Non-CPU backends and
    /// fault-injected specs are not shardable and fall back to the local
    /// pipeline, preserving serve's semantics for them.
    fn compute(
        &self,
        spec: &JobSpec,
        attempt: u32,
    ) -> Result<(kpm::MomentStats, f64, f64), JobError> {
        if spec.backend != Backend::Cpu || spec.fault.is_some() {
            return compute_raw_moments(spec, attempt);
        }
        let mut clean = spec.clone();
        clean.out = None; // output is serve's concern, not the workers'
        let job = ShardJob::Dos(clean);
        let to_engine_err = |e: ShardError| JobError::Engine(format!("shard: {e}"));
        let (a_plus, a_minus) = job.bounds().map_err(to_engine_err)?;
        let stats = self
            .run_job(&job)
            .map_err(to_engine_err)?
            .into_stats()
            .expect("dos jobs merge to stats");
        Ok((stats, a_plus, a_minus))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LINE: &str = "lattice=chain:40 moments=12 random=2 sets=2 seed=3";

    #[test]
    fn engine_matches_local_pipeline_bitwise() {
        let spec = JobSpec::parse(LINE).unwrap();
        let (direct, a_plus, a_minus) = compute_raw_moments(&spec, 0).unwrap();
        for engine in [ShardedEngine::local(1), ShardedEngine::local(3)] {
            let (stats, ap, am) = engine.compute(&spec, 0).unwrap();
            assert_eq!(stats.mean, direct.mean);
            assert_eq!(stats.std_err, direct.std_err);
            assert_eq!((ap, am), (a_plus, a_minus));
        }
    }

    #[test]
    fn stream_backend_falls_back_to_local_compute() {
        let spec =
            JobSpec::parse("lattice=chain:24 moments=8 random=2 sets=1 backend=stream").unwrap();
        let engine = ShardedEngine::local(2);
        let (via_engine, ..) = engine.compute(&spec, 0).unwrap();
        let (direct, ..) = compute_raw_moments(&spec, 0).unwrap();
        assert_eq!(via_engine.mean, direct.mean);
    }

    #[test]
    fn empty_tcp_worker_set_is_an_error() {
        let engine = ShardedEngine::tcp(Vec::new());
        let job = ShardJob::parse(&format!("dos {LINE}")).unwrap();
        assert!(matches!(engine.run_job(&job), Err(ShardError::Job(_))));
    }

    #[test]
    fn tcp_engine_runs_against_real_sockets() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            crate::worker::serve_listener(&listener, true).unwrap();
        });
        let spec = JobSpec::parse(LINE).unwrap();
        let (direct, ..) = compute_raw_moments(&spec, 0).unwrap();
        let (stats, ..) = ShardedEngine::tcp(vec![addr]).compute(&spec, 0).unwrap();
        assert_eq!(stats.mean, direct.mean);
        server.join().unwrap();
    }
}
