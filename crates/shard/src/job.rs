//! The distributed job model: what a coordinator splits and a worker runs.
//!
//! A [`ShardJob`] wraps a [`JobSpec`] with the estimator kind (DoS, LDoS at
//! a site, or Kubo double moments) and renders to one canonical line —
//! `"<kind> <spec.canonical()>"` — which is what travels in a
//! [`crate::wire::ShardRequest`]. Workers parse the line, recompute the
//! identical Hamiltonian/parameters, and return the **per-realization**
//! moment vectors of their index range untouched. The coordinator
//! concatenates shard rows in canonical `idx = s * R + r` order and replays
//! the exact single-process reduction ([`MomentStats::merge_realizations`]
//! / [`DoubleMoments::merge_realizations`]), so the merged moments are
//! bitwise identical to an unsharded run — partial *sums* are never
//! combined, because floating-point addition is not associative.

use crate::error::ShardError;
use kpm::device::DeviceSpec;
use kpm::kubo::{double_moments_partial, velocity_operator, DoubleMoments};
use kpm::moments::{per_realization_moments, realization_chunks, single_vector_moments};
use kpm::prelude::*;
use kpm::KernelType;
use kpm_lattice::spec::LatticeSpec;
use kpm_lattice::Boundary;
use kpm_linalg::MatrixFormat;
use kpm_serve::job::JobMatrix;
use kpm_serve::{Backend, JobSpec, ModelSpec, Priority};
use std::ops::Range;

/// One distributed computation: the estimator kind plus the job spec.
#[derive(Debug, Clone, PartialEq)]
pub enum ShardJob {
    /// Stochastic density-of-states moments — `S * R` shardable units.
    Dos(JobSpec),
    /// Deterministic LDoS moments at one site — a single unit.
    Ldos {
        /// Underlying job spec (stochastic fields unused).
        spec: JobSpec,
        /// Site index of the local density.
        site: usize,
    },
    /// Kubo double moments on a chain — `S * R` shardable units.
    Kubo(JobSpec),
}

/// Merged moments in the shape the estimator kind produces.
#[derive(Debug, Clone)]
pub enum MergedMoments {
    /// DoS / LDoS moments.
    Stats(MomentStats),
    /// Kubo `N x N` double moments.
    Double(DoubleMoments),
}

impl MergedMoments {
    /// The DoS/LDoS statistics, if that is what was merged.
    pub fn into_stats(self) -> Option<MomentStats> {
        match self {
            MergedMoments::Stats(s) => Some(s),
            MergedMoments::Double(_) => None,
        }
    }

    /// The Kubo double moments, if that is what was merged.
    pub fn into_double(self) -> Option<DoubleMoments> {
        match self {
            MergedMoments::Double(d) => Some(d),
            MergedMoments::Stats(_) => None,
        }
    }
}

impl ShardJob {
    /// Parses a canonical job line: `"<kind> <key=value ...>"` where kind
    /// is `dos`, `ldos:<site>`, or `kubo`.
    ///
    /// # Errors
    /// [`ShardError::Job`] on an unknown kind, a bad spec line, or a spec
    /// that fails [`ShardJob::validate`].
    pub fn parse(line: &str) -> Result<Self, ShardError> {
        let line = line.trim();
        let (kind, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
        let spec = JobSpec::parse(rest).map_err(|e| ShardError::Job(e.to_string()))?;
        let job = if kind == "dos" {
            ShardJob::Dos(spec)
        } else if kind == "kubo" {
            ShardJob::Kubo(spec)
        } else if let Some(site) = kind.strip_prefix("ldos:") {
            let site =
                site.parse().map_err(|_| ShardError::Job(format!("bad ldos site '{site}'")))?;
            ShardJob::Ldos { spec, site }
        } else {
            return Err(ShardError::Job(format!("unknown shard job kind '{kind}'")));
        };
        job.validate()?;
        Ok(job)
    }

    /// Canonical line rendering; [`ShardJob::parse`] inverts it.
    pub fn canonical(&self) -> String {
        match self {
            ShardJob::Dos(spec) => format!("dos {}", spec.canonical()),
            ShardJob::Ldos { spec, site } => format!("ldos:{site} {}", spec.canonical()),
            ShardJob::Kubo(spec) => format!("kubo {}", spec.canonical()),
        }
    }

    /// The wrapped job spec.
    pub fn spec(&self) -> &JobSpec {
        match self {
            ShardJob::Dos(spec) | ShardJob::Kubo(spec) | ShardJob::Ldos { spec, .. } => spec,
        }
    }

    /// Checks the spec is distributable.
    ///
    /// # Errors
    /// [`ShardError::Job`] for non-CPU backends (the stream engine is a
    /// whole-run model, not shardable per realization), fault injection
    /// (worker processes cannot honor serve-side fault semantics), an LDoS
    /// site out of range, or a Kubo model that is not a chain (the only
    /// lattice with a defined 1D velocity operator here).
    pub fn validate(&self) -> Result<(), ShardError> {
        let spec = self.spec();
        if spec.backend != Backend::Cpu {
            return Err(ShardError::Job("only backend=cpu jobs are shardable".into()));
        }
        if spec.fault.is_some() {
            return Err(ShardError::Job("fault injection is not shardable".into()));
        }
        match self {
            ShardJob::Ldos { spec, site } if *site >= spec.model.dim() => Err(ShardError::Job(
                format!("ldos site {site} out of range for dimension {}", spec.model.dim()),
            )),
            ShardJob::Kubo(spec)
                if !matches!(spec.model, ModelSpec::Lattice(LatticeSpec::Chain(_))) =>
            {
                Err(ShardError::Job("kubo sharding requires a chain:L lattice".into()))
            }
            _ => Ok(()),
        }
    }

    /// Number of independently computable realization units.
    pub fn total_units(&self) -> usize {
        match self {
            ShardJob::Dos(spec) | ShardJob::Kubo(spec) => spec.kpm_params().total_realizations(),
            ShardJob::Ldos { .. } => 1,
        }
    }

    /// Length every per-realization row must have.
    pub fn moment_len(&self) -> usize {
        match self {
            ShardJob::Dos(spec) | ShardJob::Ldos { spec, .. } => spec.num_moments,
            ShardJob::Kubo(spec) => spec.num_moments * spec.num_moments,
        }
    }

    /// Content hash of the assembled-operator identity: the canonical spec
    /// with every non-matrix field neutralized (the Hamiltonian depends
    /// only on model, boundary, hopping, disorder, and storage format —
    /// never on `N`, `R`, `S`, seed, kernel, or bounds provider). Delegates
    /// to [`JobSpec::op_key`] — the serve workers, the fleet inventory, and
    /// the bounds memo all key on the same FNV-1a-64 family, so two jobs
    /// share an `op_key` exactly when a worker can reuse one assembled
    /// matrix (and its memoized spectral bounds) for both.
    pub fn op_key(&self) -> u64 {
        self.spec().op_key()
    }

    /// Content hash of the per-realization row family: the estimator kind
    /// plus every field a row's *bits* depend on (matrix identity, seed,
    /// `R` — the `idx = s * R + r` mapping). Masked out are `N` and the
    /// kernel (raw moments are prefix-extendable and kernel-free, exactly
    /// the serve cache-key argument), `S` (it only bounds which indices
    /// exist), and format/device/priority (bitwise-invariant, pinned
    /// elsewhere). The `bounds` provider *stays in*: a different rescale
    /// map yields different row bits, so warm rows transfer only within one
    /// bounds mode. Two jobs share a `row_key` exactly when a cached row
    /// for realization `idx` of one bitwise serves the other.
    pub fn row_key(&self) -> u64 {
        let kind = match self {
            ShardJob::Dos(_) => "dos".to_string(),
            ShardJob::Ldos { site, .. } => format!("ldos:{site}"),
            ShardJob::Kubo(_) => "kubo".to_string(),
        };
        let neutral = JobSpec {
            num_moments: 2,
            num_realizations: 1,
            kernel: KernelType::Jackson,
            device: DeviceSpec::Host,
            format: MatrixFormat::Csr,
            priority: Priority::Normal,
            ..self.spec().clone()
        };
        kpm::tune::fnv1a(format!("shard-rows/v1;{kind};{}", neutral.canonical()).as_bytes())
    }

    /// Whether a cached row at `n' > n` moments bitwise serves this job
    /// truncated to `n`. True for DoS/LDoS rows (moment `i` never depends
    /// on `N`); false for Kubo rows, whose `N x N` row-major flattening
    /// reshuffles under a different `N` — those reuse at exact `N` only.
    pub fn prefix_extendable(&self) -> bool {
        !matches!(self, ShardJob::Kubo(_))
    }

    /// The `(a_plus, a_minus)` rescaling the moments were computed under —
    /// deterministic from the spec, so coordinator and workers agree
    /// without shipping floats.
    ///
    /// # Errors
    /// [`ShardError::Job`] if bounds or rescaling fail.
    pub fn bounds(&self) -> Result<(f64, f64), ShardError> {
        let spec = self.spec();
        let params = spec.kpm_params();
        let _bounds_scope = kpm::OpKeyScope::enter(self.op_key());
        match self {
            ShardJob::Kubo(_) => {
                let h = kubo_csr(spec)?;
                rescaled_bounds(&h, &params)
            }
            _ => match &spec.build_matrix() {
                JobMatrix::Sparse(h) => rescaled_bounds(h, &params),
                JobMatrix::Dense(h) => rescaled_bounds(h, &params),
            },
        }
    }

    /// The worker half: per-realization moment rows for `range`, one row
    /// per unit, each exactly what the single-process pipeline feeds its
    /// reduction.
    ///
    /// # Errors
    /// [`ShardError::Job`] on an invalid range or any KPM failure.
    pub fn compute_partial(&self, range: Range<usize>) -> Result<Vec<Vec<f64>>, ShardError> {
        self.compute_partial_with(range, &self.spec().build_matrix())
    }

    /// [`ShardJob::compute_partial`] on a pre-assembled Hamiltonian — the
    /// seam the worker inventory uses to skip matrix assembly when a warm
    /// operator (same [`ShardJob::op_key`]) is already resident. `matrix`
    /// must be the spec's own build; the result is bitwise identical either
    /// way because assembly is deterministic from the spec.
    ///
    /// # Errors
    /// [`ShardError::Job`] on an invalid range or any KPM failure.
    pub fn compute_partial_with(
        &self,
        range: Range<usize>,
        matrix: &JobMatrix,
    ) -> Result<Vec<Vec<f64>>, ShardError> {
        if range.is_empty() || range.end > self.total_units() {
            return Err(ShardError::Job(format!(
                "range {range:?} invalid for {} units",
                self.total_units()
            )));
        }
        let spec = self.spec();
        let params = spec.kpm_params();
        params.validate().map_err(job_err)?;
        // Jobs sharing a warm operator also share its memoized spectral
        // bounds — repeat shards probe the cache instead of recomputing.
        let _bounds_scope = kpm::OpKeyScope::enter(self.op_key());
        match self {
            ShardJob::Dos(_) => match matrix {
                JobMatrix::Sparse(h) => dos_partial(h, &params, range),
                JobMatrix::Dense(h) => dos_partial(h, &params, range),
            },
            ShardJob::Ldos { site, .. } => match matrix {
                JobMatrix::Sparse(h) => ldos_partial(h, &params, *site),
                JobMatrix::Dense(h) => ldos_partial(h, &params, *site),
            },
            ShardJob::Kubo(_) => {
                let h = match matrix {
                    JobMatrix::Sparse(h) => h.to_csr(),
                    JobMatrix::Dense(_) => {
                        return Err(ShardError::Job("kubo sharding requires a lattice".into()))
                    }
                };
                let ModelSpec::Lattice(LatticeSpec::Chain(l)) = spec.model else {
                    return Err(ShardError::Job("kubo sharding requires a chain".into()));
                };
                let positions: Vec<f64> = (0..l).map(|i| i as f64).collect();
                let period =
                    if spec.boundary == Boundary::Periodic { Some(l as f64) } else { None };
                let w = velocity_operator(&h, &positions, period);
                let bounds = kpm::bounds::resolve(&h, params.bounds).map_err(job_err)?;
                let rescaled = rescale(&h, bounds, params.padding).map_err(job_err)?;
                double_moments_partial(&rescaled, &w, &params, range).map_err(job_err)
            }
        }
    }

    /// The coordinator half: replays the canonical reduction over all rows
    /// (concatenated in `idx = s * R + r` order).
    ///
    /// # Errors
    /// [`ShardError::Protocol`] when the row count or a row length does not
    /// match the job — a worker returned malformed data.
    pub fn merge(&self, rows: &[Vec<f64>]) -> Result<MergedMoments, ShardError> {
        if rows.len() != self.total_units() {
            return Err(ShardError::Protocol(format!(
                "merged {} rows, job has {} units",
                rows.len(),
                self.total_units()
            )));
        }
        let want = self.moment_len();
        if let Some(bad) = rows.iter().find(|r| r.len() != want) {
            return Err(ShardError::Protocol(format!(
                "row length {} does not match moment length {want}",
                bad.len()
            )));
        }
        Ok(match self {
            ShardJob::Dos(_) => MergedMoments::Stats(MomentStats::merge_realizations(rows)),
            ShardJob::Ldos { .. } => MergedMoments::Stats(MomentStats {
                std_err: vec![0.0; want],
                samples: 1,
                mean: rows[0].clone(),
            }),
            ShardJob::Kubo(spec) => {
                MergedMoments::Double(DoubleMoments::merge_realizations(rows, spec.num_moments))
            }
        })
    }
}

fn job_err(e: KpmError) -> ShardError {
    ShardError::Job(e.to_string())
}

/// The Kubo Hamiltonian as concrete CSR (velocity construction needs it).
fn kubo_csr(spec: &JobSpec) -> Result<kpm_linalg::CsrMatrix, ShardError> {
    match &spec.build_matrix() {
        JobMatrix::Sparse(h) => Ok(h.to_csr()),
        JobMatrix::Dense(_) => Err(ShardError::Job("kubo sharding requires a lattice".into())),
    }
}

fn rescaled_bounds<A: Boundable>(h: &A, params: &KpmParams) -> Result<(f64, f64), ShardError> {
    let bounds = kpm::bounds::resolve(h, params.bounds).map_err(job_err)?;
    let rescaled = rescale(h, bounds, params.padding).map_err(job_err)?;
    Ok((rescaled.a_plus(), rescaled.a_minus()))
}

/// Mirrors the single-process DoS pipeline up to (but excluding) the
/// reduction: bounds, padded rescale, per-realization normalized moments.
fn dos_partial<A: Boundable + TiledOp + Sync>(
    h: &A,
    params: &KpmParams,
    range: Range<usize>,
) -> Result<Vec<Vec<f64>>, ShardError> {
    let bounds = kpm::bounds::resolve(h, params.bounds).map_err(job_err)?;
    let rescaled = rescale(h, bounds, params.padding).map_err(job_err)?;
    // Resolve (or probe) the calibrated profile for this worker's slice of
    // the ensemble — every shard of the same job shares the operator shape,
    // and because calibration only tunes within the value family `Auto`
    // pins on `dim`, the merged rows stay bitwise identical to the
    // single-process reduction regardless of which shard probed first.
    let chunks = realization_chunks(params.num_random, range.clone()).len();
    kpm::tune::ensure_profile(&rescaled, chunks);
    Ok(per_realization_moments(&rescaled, params, range))
}

/// The LDoS "shard": the one deterministic row `<e_site|T_n|e_site>`.
fn ldos_partial<A: Boundable + TiledOp + Sync>(
    h: &A,
    params: &KpmParams,
    site: usize,
) -> Result<Vec<Vec<f64>>, ShardError> {
    let bounds = kpm::bounds::resolve(h, params.bounds).map_err(job_err)?;
    let rescaled = rescale(h, bounds, params.padding).map_err(job_err)?;
    let mut e_i = vec![0.0; rescaled.dim()];
    e_i[site] = 1.0;
    Ok(vec![single_vector_moments(&rescaled, &e_i, params.num_moments, params.recursion)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use kpm_serve::worker::compute_raw_moments;

    fn dos_job(line: &str) -> ShardJob {
        ShardJob::Dos(JobSpec::parse(line).unwrap())
    }

    #[test]
    fn canonical_line_roundtrips() {
        for line in [
            "dos lattice=chain:32 moments=24 random=3 sets=2 seed=5",
            "ldos:7 lattice=chain:16 moments=16",
            "kubo lattice=chain:24 moments=8 random=2 sets=1",
        ] {
            let job = ShardJob::parse(line).unwrap();
            let again = ShardJob::parse(&job.canonical()).unwrap();
            assert_eq!(job, again);
            assert_eq!(job.canonical(), again.canonical());
        }
    }

    #[test]
    fn validation_rejects_unshardable_specs() {
        let stream = "dos lattice=chain:8 moments=8 backend=stream";
        assert!(matches!(ShardJob::parse(stream), Err(ShardError::Job(_))));
        let fault = "dos lattice=chain:8 moments=8 fault=panic";
        assert!(matches!(ShardJob::parse(fault), Err(ShardError::Job(_))));
        let site = "ldos:99 lattice=chain:8 moments=8";
        assert!(matches!(ShardJob::parse(site), Err(ShardError::Job(_))));
        let kubo2d = "kubo lattice=square:4,4 moments=8";
        assert!(matches!(ShardJob::parse(kubo2d), Err(ShardError::Job(_))));
        let kind = "histogram lattice=chain:8";
        assert!(matches!(ShardJob::parse(kind), Err(ShardError::Job(_))));
    }

    #[test]
    fn sim_device_specs_stay_shardable_and_bitwise_identical() {
        // `device=` selects a clock, not a pipeline: the sharded partials
        // are computed by the same host functional path either way, so a
        // sim-device job shards fine and its rows match the host job's.
        let host = ShardJob::parse("dos lattice=chain:16 moments=12 random=2 sets=2").unwrap();
        let sim = ShardJob::parse("dos lattice=chain:16 moments=12 random=2 sets=2 device=sim:4")
            .unwrap();
        assert_eq!(sim.total_units(), host.total_units());
        let a = host.compute_partial(0..host.total_units()).unwrap();
        let b = sim.compute_partial(0..sim.total_units()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn unit_counts_and_row_lengths() {
        let dos = dos_job("lattice=chain:16 moments=12 random=3 sets=2");
        assert_eq!(dos.total_units(), 6);
        assert_eq!(dos.moment_len(), 12);
        let ldos = ShardJob::parse("ldos:3 lattice=chain:16 moments=12").unwrap();
        assert_eq!(ldos.total_units(), 1);
        let kubo = ShardJob::parse("kubo lattice=chain:16 moments=6 random=2 sets=2").unwrap();
        assert_eq!(kubo.moment_len(), 36);
        assert_eq!(kubo.total_units(), 4);
    }

    #[test]
    fn sharded_dos_compute_merge_matches_serve_pipeline_bitwise() {
        let line = "lattice=chain:48 moments=20 random=3 sets=2 seed=9";
        let job = dos_job(line);
        let total = job.total_units();
        let mut rows = Vec::new();
        for range in kpm::shard_plan(total, 4) {
            rows.extend(job.compute_partial(range).unwrap());
        }
        let merged = job.merge(&rows).unwrap().into_stats().unwrap();
        let (stats, a_plus, a_minus) =
            compute_raw_moments(&JobSpec::parse(line).unwrap(), 0).unwrap();
        assert_eq!(merged.mean, stats.mean);
        assert_eq!(merged.std_err, stats.std_err);
        assert_eq!(job.bounds().unwrap(), (a_plus, a_minus));
    }

    #[test]
    fn ldos_partial_matches_estimator_bitwise() {
        let job = ShardJob::parse("ldos:5 lattice=chain:32 moments=16").unwrap();
        let rows = job.compute_partial(0..1).unwrap();
        let merged = job.merge(&rows).unwrap().into_stats().unwrap();
        let spec = job.spec();
        let JobMatrix::Sparse(h) = spec.build_matrix() else { panic!("sparse expected") };
        let direct = LdosEstimator::new(spec.kpm_params(), 5).moments(&{
            let bounds = h.spectral_bounds(spec.kpm_params().bounds).unwrap();
            rescale(&h, bounds, spec.kpm_params().padding).unwrap()
        });
        assert_eq!(merged.mean, direct.unwrap().mean);
    }

    #[test]
    fn kubo_partial_matches_double_moments_bitwise() {
        let job = ShardJob::parse("kubo lattice=chain:24 moments=6 random=2 sets=2").unwrap();
        let mut rows = Vec::new();
        for range in kpm::shard_plan(job.total_units(), 3) {
            rows.extend(job.compute_partial(range).unwrap());
        }
        let merged = job.merge(&rows).unwrap().into_double().unwrap();

        let spec = job.spec();
        let params = spec.kpm_params();
        let h = super::kubo_csr(spec).unwrap();
        let ModelSpec::Lattice(LatticeSpec::Chain(l)) = spec.model else { panic!() };
        let positions: Vec<f64> = (0..l).map(|i| i as f64).collect();
        let w = velocity_operator(&h, &positions, Some(l as f64));
        let bounds = h.spectral_bounds(params.bounds).unwrap();
        let rescaled = rescale(&h, bounds, params.padding).unwrap();
        let direct = kpm::kubo::double_moments(&rescaled, &w, &params).unwrap();
        assert_eq!(merged.mu, direct.mu);
    }

    #[test]
    fn merge_rejects_malformed_rows() {
        let job = dos_job("lattice=chain:8 moments=8 random=2 sets=1");
        assert!(matches!(job.merge(&[vec![0.0; 8]]), Err(ShardError::Protocol(_))));
        assert!(matches!(job.merge(&[vec![0.0; 8], vec![0.0; 7]]), Err(ShardError::Protocol(_))));
    }

    #[test]
    fn compute_rejects_bad_ranges() {
        let job = dos_job("lattice=chain:8 moments=8 random=2 sets=1");
        assert!(job.compute_partial(0..0).is_err());
        assert!(job.compute_partial(1..3).is_err());
    }

    #[test]
    fn op_key_sees_matrix_fields_only() {
        let base = dos_job("lattice=chain:32 moments=24 random=3 sets=2 seed=5");
        // The assembled Hamiltonian is independent of the run parameters...
        for same in [
            "lattice=chain:32 moments=64 random=3 sets=2 seed=5",
            "lattice=chain:32 moments=24 random=7 sets=4 seed=99",
            "lattice=chain:32 moments=24 random=3 sets=2 seed=5 kernel=fejer priority=low",
        ] {
            assert_eq!(base.op_key(), dos_job(same).op_key(), "{same}");
        }
        // ...and a Kubo job on the same lattice shares the operator too.
        let kubo = ShardJob::parse("kubo lattice=chain:32 moments=8").unwrap();
        assert_eq!(base.op_key(), kubo.op_key());
        // ...but every matrix-shaping field changes it.
        for diff in [
            "lattice=chain:33 moments=24",
            "lattice=chain:32 moments=24 bc=open",
            "lattice=chain:32 moments=24 hopping=2",
            "lattice=chain:32 moments=24 disorder=0.5",
            "lattice=chain:32 moments=24 format=ell",
        ] {
            assert_ne!(base.op_key(), dos_job(diff).op_key(), "{diff}");
        }
    }

    #[test]
    fn row_key_masks_prefix_safe_fields_and_keeps_stream_identity() {
        let base = dos_job("lattice=chain:32 moments=24 random=3 sets=2 seed=5");
        // Rows are prefix-extendable and kernel-free; S only bounds the
        // index set; format/device are bitwise-invariant.
        for same in [
            "lattice=chain:32 moments=64 random=3 sets=2 seed=5",
            "lattice=chain:32 moments=24 random=3 sets=4 seed=5",
            "lattice=chain:32 moments=24 random=3 sets=2 seed=5 kernel=fejer",
            "lattice=chain:32 moments=24 random=3 sets=2 seed=5 format=ell device=sim",
        ] {
            assert_eq!(base.row_key(), dos_job(same).row_key(), "{same}");
        }
        // Seed and R change the (seed, s, r) stream mapping; the matrix
        // fields change the rows; the kind changes the estimator.
        for diff in [
            "lattice=chain:32 moments=24 random=3 sets=2 seed=6",
            "lattice=chain:32 moments=24 random=4 sets=2 seed=5",
            "lattice=chain:32 moments=24 random=3 sets=2 seed=5 disorder=0.1",
        ] {
            assert_ne!(base.row_key(), dos_job(diff).row_key(), "{diff}");
        }
        let ldos = ShardJob::parse("ldos:3 lattice=chain:32 moments=24").unwrap();
        let kubo = ShardJob::parse("kubo lattice=chain:32 moments=8").unwrap();
        assert_ne!(base.row_key(), ldos.row_key());
        assert_ne!(base.row_key(), kubo.row_key());
        assert!(base.prefix_extendable());
        assert!(ldos.prefix_extendable());
        assert!(!kubo.prefix_extendable());
    }

    #[test]
    fn bounds_mode_changes_row_key_but_not_op_key() {
        let base = dos_job("lattice=chain:32 moments=24 random=3 sets=2 seed=5");
        let lanczos = dos_job("lattice=chain:32 moments=24 random=3 sets=2 seed=5 bounds=lanczos");
        // Same assembled matrix, so the warm-operator identity is shared...
        assert_eq!(base.op_key(), lanczos.op_key());
        // ...but rows computed under a different rescale map have different
        // bits, so warm rows must not transfer across bounds modes.
        assert_ne!(base.row_key(), lanczos.row_key());
        // And the canonical shard line round-trips the provider.
        let again = ShardJob::parse(&lanczos.canonical()).unwrap();
        assert_eq!(again, lanczos);
    }

    #[test]
    fn lanczos_bounds_job_merges_bitwise_with_serve_pipeline() {
        let line =
            "lattice=chain:48 disorder=6@5 moments=20 random=3 sets=2 seed=9 bounds=lanczos:32";
        let job = dos_job(line);
        let mut rows = Vec::new();
        for range in kpm::shard_plan(job.total_units(), 4) {
            rows.extend(job.compute_partial(range).unwrap());
        }
        let merged = job.merge(&rows).unwrap().into_stats().unwrap();
        let (stats, a_plus, a_minus) =
            compute_raw_moments(&JobSpec::parse(line).unwrap(), 0).unwrap();
        assert_eq!(merged.mean, stats.mean);
        assert_eq!(job.bounds().unwrap(), (a_plus, a_minus));
        // Tighter than Gershgorin on the disordered chain (discs overshoot
        // by O(W/2)): the half-width the shard pipeline agrees on must beat
        // the disc bound's.
        let gersh = dos_job("lattice=chain:48 disorder=6@5 moments=20 random=3 sets=2 seed=9");
        assert!(job.bounds().unwrap().1 < gersh.bounds().unwrap().1);
    }

    #[test]
    fn compute_partial_with_prebuilt_matrix_is_bitwise_identical() {
        let job = dos_job("lattice=chain:32 moments=16 random=2 sets=2 seed=3");
        let matrix = job.spec().build_matrix();
        let direct = job.compute_partial(0..4).unwrap();
        let reused = job.compute_partial_with(0..4, &matrix).unwrap();
        assert_eq!(direct, reused);
    }
}
