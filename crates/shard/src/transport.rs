//! Frame transports: TCP between processes, loopback channels in-process.
//!
//! Both ends of a connection are an [`Endpoint`]: a shared, thread-safe
//! sender ([`FrameSink`]) plus an owned receiver ([`FrameSource`]). The
//! receive side is uniformly a channel fed by the transport — for TCP a
//! dedicated reader thread performs *blocking* frame reads and forwards
//! them, so a receive timeout can never strand a half-read frame on the
//! socket (the failure mode of `set_read_timeout` + partial `read_exact`).
//!
//! The loopback transport carries **encoded bytes**, not `Frame` values:
//! every frame still passes through [`wire::encode`]/[`wire::decode_bytes`],
//! so in-process tests exercise the exact serialization path production TCP
//! traffic takes.

use crate::error::ShardError;
use crate::wire::{self, Frame};
use std::net::TcpStream;
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Sending half of a connection; shared across threads.
pub trait FrameSink: Send + Sync {
    /// Sends one frame.
    ///
    /// # Errors
    /// [`ShardError::Io`] once the peer is gone.
    fn send(&self, frame: &Frame) -> Result<(), ShardError>;
}

/// Receiving half of a connection; owned by one thread.
pub trait FrameSource: Send {
    /// Waits up to `timeout` for a frame. `Ok(None)` is a timeout; `Err`
    /// means the connection is closed or violated the protocol and will
    /// never produce another frame.
    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Frame>, ShardError>;
}

/// One end of a coordinator/worker connection.
pub struct Endpoint {
    /// Peer label for diagnostics (`"tcp:1.2.3.4:5"`, `"local-0"`...).
    pub peer: String,
    /// Shared sender.
    pub tx: Arc<dyn FrameSink>,
    /// Owned receiver.
    pub rx: Box<dyn FrameSource>,
}

// --- TCP ---------------------------------------------------------------

struct TcpSink {
    stream: Mutex<TcpStream>,
}

impl FrameSink for TcpSink {
    fn send(&self, frame: &Frame) -> Result<(), ShardError> {
        use std::io::Write as _;
        let bytes = wire::encode(frame);
        let mut stream = self.stream.lock().expect("tcp sink lock");
        stream.write_all(&bytes)?;
        stream.flush()?;
        Ok(())
    }
}

/// Channel-backed receiver; both transports converge on this type.
struct ChannelSource {
    rx: mpsc::Receiver<Result<Frame, ShardError>>,
    dead: bool,
}

impl FrameSource for ChannelSource {
    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Frame>, ShardError> {
        if self.dead {
            return Err(ShardError::Io("connection closed".into()));
        }
        match self.rx.recv_timeout(timeout) {
            Ok(Ok(frame)) => Ok(Some(frame)),
            Ok(Err(e)) => {
                self.dead = true;
                Err(e)
            }
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => {
                self.dead = true;
                Err(ShardError::Io("connection closed".into()))
            }
        }
    }
}

impl Endpoint {
    /// Wraps a connected TCP stream. Spawns the reader thread; it exits
    /// when the socket closes or a protocol error makes the stream
    /// unusable.
    ///
    /// # Errors
    /// [`ShardError::Io`] if the stream cannot be cloned for the reader.
    pub fn from_tcp(stream: TcpStream, peer: String) -> Result<Self, ShardError> {
        let _ = stream.set_nodelay(true);
        let mut read_half = stream.try_clone()?;
        let (tx, rx) = mpsc::channel();
        std::thread::Builder::new()
            .name(format!("kpm-shard-read-{peer}"))
            .spawn(move || loop {
                match wire::read_frame(&mut read_half) {
                    Ok(frame) => {
                        if tx.send(Ok(frame)).is_err() {
                            break; // endpoint dropped
                        }
                    }
                    Err(e) => {
                        let _ = tx.send(Err(e));
                        break;
                    }
                }
            })
            .expect("spawn tcp reader");
        Ok(Self {
            peer,
            tx: Arc::new(TcpSink { stream: Mutex::new(stream) }),
            rx: Box::new(ChannelSource { rx, dead: false }),
        })
    }

    /// Connects to a worker address.
    ///
    /// # Errors
    /// [`ShardError::Io`] on connection failure.
    pub fn connect_tcp(addr: &str) -> Result<Self, ShardError> {
        let stream =
            TcpStream::connect(addr).map_err(|e| ShardError::Io(format!("connect {addr}: {e}")))?;
        Self::from_tcp(stream, format!("tcp:{addr}"))
    }
}

// --- Loopback ----------------------------------------------------------

struct ByteSink {
    tx: mpsc::Sender<Vec<u8>>,
}

impl FrameSink for ByteSink {
    fn send(&self, frame: &Frame) -> Result<(), ShardError> {
        self.tx.send(wire::encode(frame)).map_err(|_| ShardError::Io("loopback peer gone".into()))
    }
}

struct ByteSource {
    rx: mpsc::Receiver<Vec<u8>>,
    dead: bool,
}

impl FrameSource for ByteSource {
    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Frame>, ShardError> {
        if self.dead {
            return Err(ShardError::Io("connection closed".into()));
        }
        match self.rx.recv_timeout(timeout) {
            Ok(bytes) => match wire::decode_bytes(&bytes) {
                Ok(frame) => Ok(Some(frame)),
                Err(e) => {
                    self.dead = true;
                    Err(e)
                }
            },
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => {
                self.dead = true;
                Err(ShardError::Io("connection closed".into()))
            }
        }
    }
}

/// An in-process connection: returns `(coordinator end, worker end)`.
/// Frames are encoded/decoded exactly as on TCP.
pub fn loopback_pair(peer: &str) -> (Endpoint, Endpoint) {
    let (c_tx, w_rx) = mpsc::channel();
    let (w_tx, c_rx) = mpsc::channel();
    let coordinator = Endpoint {
        peer: peer.to_string(),
        tx: Arc::new(ByteSink { tx: c_tx }),
        rx: Box::new(ByteSource { rx: c_rx, dead: false }),
    };
    let worker = Endpoint {
        peer: format!("{peer}:coordinator"),
        tx: Arc::new(ByteSink { tx: w_tx }),
        rx: Box::new(ByteSource { rx: w_rx, dead: false }),
    };
    (coordinator, worker)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn loopback_carries_frames_through_the_codec() {
        let (coord, mut worker) = loopback_pair("test");
        coord.tx.send(&Frame::Ping { nonce: 9 }).unwrap();
        assert_eq!(
            worker.rx.recv_timeout(Duration::from_secs(1)).unwrap(),
            Some(Frame::Ping { nonce: 9 })
        );
        worker.tx.send(&Frame::Pong { nonce: 9 }).unwrap();
        let mut coord = coord;
        assert_eq!(
            coord.rx.recv_timeout(Duration::from_secs(1)).unwrap(),
            Some(Frame::Pong { nonce: 9 })
        );
    }

    #[test]
    fn loopback_timeout_then_close() {
        let (mut coord, worker) = loopback_pair("test");
        assert_eq!(coord.rx.recv_timeout(Duration::from_millis(10)).unwrap(), None);
        drop(worker);
        assert!(coord.rx.recv_timeout(Duration::from_millis(10)).is_err());
        // Closed is sticky.
        assert!(coord.rx.recv_timeout(Duration::from_millis(10)).is_err());
    }

    #[test]
    fn tcp_roundtrip_on_localhost() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut ep = Endpoint::from_tcp(stream, "client".into()).unwrap();
            let got = ep.rx.recv_timeout(Duration::from_secs(5)).unwrap().unwrap();
            ep.tx.send(&got).unwrap(); // echo
                                       // Hold the endpooint until the client has read the echo.
            assert!(matches!(
                ep.rx.recv_timeout(Duration::from_secs(5)),
                Ok(None) | Err(ShardError::Io(_))
            ));
        });
        let mut client = Endpoint::connect_tcp(&addr.to_string()).unwrap();
        let frame = Frame::Request(wire::ShardRequest {
            job: 1,
            shard: 0,
            start: 0,
            end: 4,
            spec: "dos lattice=chain:8".into(),
        });
        client.tx.send(&frame).unwrap();
        assert_eq!(client.rx.recv_timeout(Duration::from_secs(5)).unwrap(), Some(frame));
        drop(client);
        server.join().unwrap();
    }

    #[test]
    fn tcp_peer_close_surfaces_as_error() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            drop(stream); // immediate close
        });
        let mut client = Endpoint::connect_tcp(&addr.to_string()).unwrap();
        server.join().unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            match client.rx.recv_timeout(Duration::from_millis(50)) {
                Err(_) => break,
                Ok(None) if std::time::Instant::now() < deadline => continue,
                other => panic!("expected closed connection, got {other:?}"),
            }
        }
    }
}
