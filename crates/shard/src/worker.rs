//! The worker side: serve shard requests on one connection.
//!
//! A worker is a small state machine over one [`Endpoint`]: heartbeat pings
//! are answered immediately from the receive loop, while compute requests
//! are forwarded to a dedicated compute thread — so a worker grinding
//! through a long shard still answers heartbeats and is never mistaken for
//! dead. Results flow back through the shared
//! [`FrameSink`](crate::transport::FrameSink) from whichever thread
//! produced them.
//!
//! [`WorkerFault`] injects the two failure modes the coordinator must
//! tolerate: a crash (connection drops) and a hang (connection stays open
//! but nothing is ever answered). Both are test-only behaviours wired
//! through the same public entry points the real worker uses.

use crate::error::ShardError;
use crate::job::ShardJob;
use crate::transport::Endpoint;
use crate::wire::{Frame, ShardRequest, ShardResult};
use std::net::{SocketAddr, TcpListener};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

/// Receive-loop poll granularity; bounds shutdown latency, nothing else.
const POLL: Duration = Duration::from_millis(100);

/// Injected worker failure, for fault-tolerance tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerFault {
    /// Serve this many requests, then drop the connection on the next one.
    DieAfterRequests(usize),
    /// Serve this many requests, then go silent: keep the connection open
    /// but never answer another frame (exercises heartbeat detection).
    HangAfterRequests(usize),
}

/// Serves one connection until the peer shuts down or disconnects.
pub fn serve_endpoint(endpoint: Endpoint) {
    serve_endpoint_with(endpoint, None);
}

/// [`serve_endpoint`] with an optional injected fault.
pub fn serve_endpoint_with(mut endpoint: Endpoint, fault: Option<WorkerFault>) {
    let (work_tx, work_rx) = mpsc::channel::<ShardRequest>();
    let sink = Arc::clone(&endpoint.tx);
    let compute = std::thread::Builder::new()
        .name("kpm-shard-compute".into())
        .spawn(move || {
            while let Ok(req) = work_rx.recv() {
                handle_request(&req, sink.as_ref());
            }
        })
        .expect("spawn shard compute thread");

    let mut served = 0usize;
    loop {
        match endpoint.rx.recv_timeout(POLL) {
            Ok(None) => continue,
            Ok(Some(Frame::Ping { nonce })) => {
                if endpoint.tx.send(&Frame::Pong { nonce }).is_err() {
                    break;
                }
            }
            Ok(Some(Frame::Request(req))) => {
                match fault {
                    Some(WorkerFault::DieAfterRequests(k)) if served >= k => break,
                    Some(WorkerFault::HangAfterRequests(k)) if served >= k => {
                        hang(&mut endpoint);
                        break;
                    }
                    _ => {}
                }
                served += 1;
                if work_tx.send(req).is_err() {
                    break;
                }
            }
            Ok(Some(Frame::Shutdown)) | Err(_) => break,
            Ok(Some(_)) => {} // Pong/Result/WorkerError are coordinator-bound; ignore.
        }
    }
    drop(work_tx);
    drop(endpoint); // unblocks the compute thread's sends if the peer is gone
    let _ = compute.join();
}

/// Drains the connection without ever replying, until it closes.
fn hang(endpoint: &mut Endpoint) {
    while endpoint.rx.recv_timeout(POLL).is_ok() {}
}

/// Parses, computes, and answers one request; every failure is reported as
/// a [`Frame::WorkerError`] (deterministic — the coordinator aborts the
/// run rather than retrying elsewhere).
fn handle_request(req: &ShardRequest, sink: &dyn crate::transport::FrameSink) {
    let outcome = catch_unwind(AssertUnwindSafe(|| -> Result<Vec<Vec<f64>>, ShardError> {
        let job = ShardJob::parse(&req.spec)?;
        let (start, end) = (req.start as usize, req.end as usize);
        job.compute_partial(start..end)
    }));
    let reply = match outcome {
        Ok(Ok(rows)) => {
            kpm_obs::counter_add("shard.worker.completed", 1);
            Frame::Result(ShardResult { job: req.job, shard: req.shard, rows })
        }
        Ok(Err(e)) => Frame::WorkerError { job: req.job, shard: req.shard, message: e.to_string() },
        Err(_) => Frame::WorkerError {
            job: req.job,
            shard: req.shard,
            message: "compute panicked".into(),
        },
    };
    let _ = sink.send(&reply);
}

/// Runs a TCP worker: binds `listen`, reports the bound address through
/// `on_ready` (so callers binding port 0 learn the real port), then serves
/// connections — each on its own thread, or exactly one inline when `once`
/// is set (the test/CI mode).
///
/// # Errors
/// [`ShardError::Io`] on bind/accept failures.
pub fn run_tcp_worker(
    listen: &str,
    once: bool,
    on_ready: impl FnOnce(SocketAddr),
) -> Result<(), ShardError> {
    let listener =
        TcpListener::bind(listen).map_err(|e| ShardError::Io(format!("bind {listen}: {e}")))?;
    on_ready(listener.local_addr()?);
    serve_listener(&listener, once)
}

/// The accept loop behind [`run_tcp_worker`], taking an already-bound
/// listener.
///
/// # Errors
/// [`ShardError::Io`] on accept failures.
pub fn serve_listener(listener: &TcpListener, once: bool) -> Result<(), ShardError> {
    loop {
        let (stream, peer) = listener.accept()?;
        let endpoint = Endpoint::from_tcp(stream, format!("tcp:{peer}"))?;
        if once {
            serve_endpoint(endpoint);
            return Ok(());
        }
        std::thread::Builder::new()
            .name(format!("kpm-shard-conn-{peer}"))
            .spawn(move || serve_endpoint(endpoint))
            .expect("spawn shard connection thread");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::loopback_pair;

    fn spawn_worker(fault: Option<WorkerFault>) -> Endpoint {
        let (coord, worker) = loopback_pair("test-worker");
        std::thread::spawn(move || serve_endpoint_with(worker, fault));
        coord
    }

    fn request(shard: u32, start: u64, end: u64) -> Frame {
        Frame::Request(ShardRequest {
            job: 1,
            shard,
            start,
            end,
            spec: "dos lattice=chain:16 moments=8 random=2 sets=2 seed=3".into(),
        })
    }

    #[test]
    fn worker_answers_pings_and_computes_requests() {
        let mut coord = spawn_worker(None);
        coord.tx.send(&Frame::Ping { nonce: 7 }).unwrap();
        assert_eq!(
            coord.rx.recv_timeout(Duration::from_secs(5)).unwrap(),
            Some(Frame::Pong { nonce: 7 })
        );
        coord.tx.send(&request(2, 1, 3)).unwrap();
        match coord.rx.recv_timeout(Duration::from_secs(30)).unwrap() {
            Some(Frame::Result(res)) => {
                assert_eq!(res.shard, 2);
                assert_eq!(res.rows.len(), 2);
                assert_eq!(res.rows[0].len(), 8);
            }
            other => panic!("expected a result, got {other:?}"),
        }
        coord.tx.send(&Frame::Shutdown).unwrap();
    }

    #[test]
    fn bad_spec_comes_back_as_worker_error() {
        let mut coord = spawn_worker(None);
        coord
            .tx
            .send(&Frame::Request(ShardRequest {
                job: 9,
                shard: 0,
                start: 0,
                end: 1,
                spec: "dos lattice=blob:3".into(),
            }))
            .unwrap();
        match coord.rx.recv_timeout(Duration::from_secs(5)).unwrap() {
            Some(Frame::WorkerError { job, shard, message }) => {
                assert_eq!((job, shard), (9, 0));
                assert!(!message.is_empty());
            }
            other => panic!("expected a worker error, got {other:?}"),
        }
        coord.tx.send(&Frame::Shutdown).unwrap();
    }

    #[test]
    fn die_fault_drops_the_connection() {
        let mut coord = spawn_worker(Some(WorkerFault::DieAfterRequests(0)));
        coord.tx.send(&request(0, 0, 1)).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            match coord.rx.recv_timeout(Duration::from_millis(50)) {
                Err(_) => break, // connection closed, as injected
                Ok(None) if std::time::Instant::now() < deadline => continue,
                other => panic!("expected drop, got {other:?}"),
            }
        }
    }

    #[test]
    fn hang_fault_stays_silent_but_connected() {
        let mut coord = spawn_worker(Some(WorkerFault::HangAfterRequests(0)));
        coord.tx.send(&request(0, 0, 1)).unwrap();
        // Further pings go unanswered while the connection stays open.
        coord.tx.send(&Frame::Ping { nonce: 1 }).unwrap();
        assert_eq!(coord.rx.recv_timeout(Duration::from_millis(400)).unwrap(), None);
        drop(coord); // closing our end lets the hung worker exit
    }
}
