//! The worker side: serve shard requests on one connection.
//!
//! A worker is a small state machine over one [`Endpoint`]: heartbeat pings
//! are answered immediately from the receive loop, while compute requests
//! are forwarded to a dedicated compute thread — so a worker grinding
//! through a long shard still answers heartbeats and is never mistaken for
//! dead. Results flow back through the shared
//! [`FrameSink`](crate::transport::FrameSink) from whichever thread
//! produced them.
//!
//! [`WorkerFault`] injects the two failure modes the coordinator must
//! tolerate: a crash (connection drops) and a hang (connection stays open
//! but nothing is ever answered). Both are test-only behaviours wired
//! through the same public entry points the real worker uses.

use crate::error::ShardError;
use crate::inventory::{Inventory, DEFAULT_ROW_CAP};
use crate::job::ShardJob;
use crate::transport::Endpoint;
use crate::wire::{Frame, ShardResult};
use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

/// Receive-loop poll granularity; bounds shutdown latency, nothing else.
const POLL: Duration = Duration::from_millis(100);

/// Injected worker failure, for fault-tolerance tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerFault {
    /// Serve this many requests, then drop the connection on the next one.
    DieAfterRequests(usize),
    /// Serve this many requests, then go silent: keep the connection open
    /// but never answer another frame (exercises heartbeat detection).
    HangAfterRequests(usize),
}

/// One compute unit bound for the compute thread. Full requests and
/// spec-referencing requests converge here: by the time an item is queued,
/// the spec line is resolved (inline from the frame, or from the
/// connection's announce registry).
struct WorkItem {
    job: u64,
    shard: u32,
    start: u64,
    end: u64,
    spec: Arc<String>,
}

/// Serves one connection until the peer shuts down or disconnects.
pub fn serve_endpoint(endpoint: Endpoint) {
    serve_endpoint_with(endpoint, None);
}

/// [`serve_endpoint`] with an optional injected fault. The connection gets
/// its own [`Inventory`]; use [`serve_endpoint_with_inventory`] to share
/// warm state across connections.
pub fn serve_endpoint_with(endpoint: Endpoint, fault: Option<WorkerFault>) {
    serve_endpoint_with_inventory(endpoint, fault, &Arc::new(Inventory::default()));
}

/// [`serve_endpoint_with`] on a shared warm-state [`Inventory`] — the
/// process-wide cache a TCP worker keeps across connections and jobs.
pub fn serve_endpoint_with_inventory(
    mut endpoint: Endpoint,
    fault: Option<WorkerFault>,
    inventory: &Arc<Inventory>,
) {
    let (work_tx, work_rx) = mpsc::channel::<WorkItem>();
    let sink = Arc::clone(&endpoint.tx);
    let inv = Arc::clone(inventory);
    let compute = std::thread::Builder::new()
        .name("kpm-shard-compute".into())
        .spawn(move || {
            while let Ok(item) = work_rx.recv() {
                handle_item(&item, sink.as_ref(), &inv);
            }
        })
        .expect("spawn shard compute thread");

    // Spec lines announced on this connection, addressable by job id —
    // the O(1)-per-shard dispatch path ([`Frame::RequestRef`]).
    let mut specs: HashMap<u64, Arc<String>> = HashMap::new();
    let mut served = 0usize;
    loop {
        // A compute unit arrived; apply any injected fault before serving.
        let mut trip_fault = || match fault {
            Some(WorkerFault::DieAfterRequests(k)) if served >= k => Some(false),
            Some(WorkerFault::HangAfterRequests(k)) if served >= k => Some(true),
            _ => {
                served += 1;
                None
            }
        };
        match endpoint.rx.recv_timeout(POLL) {
            Ok(None) => continue,
            Ok(Some(Frame::Ping { nonce })) => {
                if endpoint.tx.send(&Frame::Pong { nonce }).is_err() {
                    break;
                }
            }
            Ok(Some(Frame::InventoryQuery)) => {
                if endpoint.tx.send(&Frame::Inventory(inventory.report())).is_err() {
                    break;
                }
            }
            Ok(Some(Frame::SpecAnnounce { job, spec })) => {
                specs.insert(job, Arc::new(spec));
            }
            Ok(Some(Frame::Request(req))) => {
                match trip_fault() {
                    Some(true) => {
                        hang(&mut endpoint);
                        break;
                    }
                    Some(false) => break,
                    None => {}
                }
                let item = WorkItem {
                    job: req.job,
                    shard: req.shard,
                    start: req.start,
                    end: req.end,
                    spec: Arc::new(req.spec),
                };
                if work_tx.send(item).is_err() {
                    break;
                }
            }
            Ok(Some(Frame::RequestRef { job, shard, start, end })) => {
                match trip_fault() {
                    Some(true) => {
                        hang(&mut endpoint);
                        break;
                    }
                    Some(false) => break,
                    None => {}
                }
                let Some(spec) = specs.get(&job) else {
                    let err = Frame::WorkerError {
                        job,
                        shard,
                        message: format!("job {job} referenced before announce"),
                    };
                    if endpoint.tx.send(&err).is_err() {
                        break;
                    }
                    continue;
                };
                let item = WorkItem { job, shard, start, end, spec: Arc::clone(spec) };
                if work_tx.send(item).is_err() {
                    break;
                }
            }
            Ok(Some(Frame::Shutdown)) | Err(_) => break,
            Ok(Some(_)) => {} // Pong/Result/WorkerError/Inventory are coordinator-bound; ignore.
        }
    }
    drop(work_tx);
    drop(endpoint); // unblocks the compute thread's sends if the peer is gone
    let _ = compute.join();
}

/// Drains the connection without ever replying, until it closes.
fn hang(endpoint: &mut Endpoint) {
    while endpoint.rx.recv_timeout(POLL).is_ok() {}
}

/// Parses, computes, and answers one work item; every failure is reported
/// as a [`Frame::WorkerError`] (deterministic — the coordinator aborts the
/// run rather than retrying elsewhere). Compute goes through the
/// [`Inventory`], so warm rows and operators are reused — bitwise
/// identically — and fresh results are retained for later jobs.
fn handle_item(item: &WorkItem, sink: &dyn crate::transport::FrameSink, inventory: &Inventory) {
    let outcome = catch_unwind(AssertUnwindSafe(|| -> Result<Vec<Vec<f64>>, ShardError> {
        let job = ShardJob::parse(&item.spec)?;
        let (start, end) = (item.start as usize, item.end as usize);
        inventory.compute(&job, start..end)
    }));
    let reply = match outcome {
        Ok(Ok(rows)) => {
            kpm_obs::counter_add("shard.worker.completed", 1);
            Frame::Result(ShardResult { job: item.job, shard: item.shard, rows })
        }
        Ok(Err(e)) => {
            Frame::WorkerError { job: item.job, shard: item.shard, message: e.to_string() }
        }
        Err(_) => Frame::WorkerError {
            job: item.job,
            shard: item.shard,
            message: "compute panicked".into(),
        },
    };
    let _ = sink.send(&reply);
}

/// Runs a TCP worker: binds `listen`, reports the bound address through
/// `on_ready` (so callers binding port 0 learn the real port), then serves
/// connections — each on its own thread, or exactly one inline when `once`
/// is set (the test/CI mode).
///
/// # Errors
/// [`ShardError::Io`] on bind/accept failures.
pub fn run_tcp_worker(
    listen: &str,
    once: bool,
    on_ready: impl FnOnce(SocketAddr),
) -> Result<(), ShardError> {
    run_tcp_worker_with(listen, once, DEFAULT_ROW_CAP, on_ready)
}

/// [`run_tcp_worker`] with an explicit warm-row cap (the CLI's
/// `--inventory-cap`; 0 disables caching and locality advertisement).
///
/// # Errors
/// [`ShardError::Io`] on bind/accept failures.
pub fn run_tcp_worker_with(
    listen: &str,
    once: bool,
    inventory_cap: usize,
    on_ready: impl FnOnce(SocketAddr),
) -> Result<(), ShardError> {
    let listener =
        TcpListener::bind(listen).map_err(|e| ShardError::Io(format!("bind {listen}: {e}")))?;
    on_ready(listener.local_addr()?);
    serve_listener_with(&listener, once, inventory_cap)
}

/// The accept loop behind [`run_tcp_worker`], taking an already-bound
/// listener.
///
/// # Errors
/// [`ShardError::Io`] on accept failures.
pub fn serve_listener(listener: &TcpListener, once: bool) -> Result<(), ShardError> {
    serve_listener_with(listener, once, DEFAULT_ROW_CAP)
}

/// [`serve_listener`] with an explicit warm-row cap. All connections
/// accepted here share one process-wide [`Inventory`], so warm state from
/// one coordinator's jobs serves the next — that cross-job reuse is what
/// the fleet scheduler's locality scoring pays off against.
///
/// # Errors
/// [`ShardError::Io`] on accept failures.
pub fn serve_listener_with(
    listener: &TcpListener,
    once: bool,
    inventory_cap: usize,
) -> Result<(), ShardError> {
    let inventory = Arc::new(Inventory::new(inventory_cap));
    loop {
        let (stream, peer) = listener.accept()?;
        let endpoint = Endpoint::from_tcp(stream, format!("tcp:{peer}"))?;
        if once {
            serve_endpoint_with_inventory(endpoint, None, &inventory);
            return Ok(());
        }
        let conn_inventory = Arc::clone(&inventory);
        std::thread::Builder::new()
            .name(format!("kpm-shard-conn-{peer}"))
            .spawn(move || serve_endpoint_with_inventory(endpoint, None, &conn_inventory))
            .expect("spawn shard connection thread");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::loopback_pair;
    use crate::wire::ShardRequest;

    fn spawn_worker(fault: Option<WorkerFault>) -> Endpoint {
        let (coord, worker) = loopback_pair("test-worker");
        std::thread::spawn(move || serve_endpoint_with(worker, fault));
        coord
    }

    fn request(shard: u32, start: u64, end: u64) -> Frame {
        Frame::Request(ShardRequest {
            job: 1,
            shard,
            start,
            end,
            spec: "dos lattice=chain:16 moments=8 random=2 sets=2 seed=3".into(),
        })
    }

    #[test]
    fn worker_answers_pings_and_computes_requests() {
        let mut coord = spawn_worker(None);
        coord.tx.send(&Frame::Ping { nonce: 7 }).unwrap();
        assert_eq!(
            coord.rx.recv_timeout(Duration::from_secs(5)).unwrap(),
            Some(Frame::Pong { nonce: 7 })
        );
        coord.tx.send(&request(2, 1, 3)).unwrap();
        match coord.rx.recv_timeout(Duration::from_secs(30)).unwrap() {
            Some(Frame::Result(res)) => {
                assert_eq!(res.shard, 2);
                assert_eq!(res.rows.len(), 2);
                assert_eq!(res.rows[0].len(), 8);
            }
            other => panic!("expected a result, got {other:?}"),
        }
        coord.tx.send(&Frame::Shutdown).unwrap();
    }

    #[test]
    fn bad_spec_comes_back_as_worker_error() {
        let mut coord = spawn_worker(None);
        coord
            .tx
            .send(&Frame::Request(ShardRequest {
                job: 9,
                shard: 0,
                start: 0,
                end: 1,
                spec: "dos lattice=blob:3".into(),
            }))
            .unwrap();
        match coord.rx.recv_timeout(Duration::from_secs(5)).unwrap() {
            Some(Frame::WorkerError { job, shard, message }) => {
                assert_eq!((job, shard), (9, 0));
                assert!(!message.is_empty());
            }
            other => panic!("expected a worker error, got {other:?}"),
        }
        coord.tx.send(&Frame::Shutdown).unwrap();
    }

    #[test]
    fn announced_spec_serves_referenced_shards_bitwise() {
        let spec = "dos lattice=chain:16 moments=8 random=2 sets=2 seed=3";
        let job = ShardJob::parse(spec).unwrap();
        let mut coord = spawn_worker(None);
        coord.tx.send(&Frame::SpecAnnounce { job: 4, spec: spec.into() }).unwrap();
        coord.tx.send(&Frame::RequestRef { job: 4, shard: 1, start: 1, end: 3 }).unwrap();
        match coord.rx.recv_timeout(Duration::from_secs(30)).unwrap() {
            Some(Frame::Result(res)) => {
                assert_eq!((res.job, res.shard), (4, 1));
                assert_eq!(res.rows, job.compute_partial(1..3).unwrap());
            }
            other => panic!("expected a result, got {other:?}"),
        }
        // An unannounced job id is a protocol error on that shard only.
        coord.tx.send(&Frame::RequestRef { job: 99, shard: 0, start: 0, end: 1 }).unwrap();
        match coord.rx.recv_timeout(Duration::from_secs(5)).unwrap() {
            Some(Frame::WorkerError { job, shard, message }) => {
                assert_eq!((job, shard), (99, 0));
                assert!(message.contains("before announce"));
            }
            other => panic!("expected a worker error, got {other:?}"),
        }
        // The connection is still healthy after the bad reference.
        coord.tx.send(&Frame::RequestRef { job: 4, shard: 2, start: 0, end: 1 }).unwrap();
        assert!(matches!(
            coord.rx.recv_timeout(Duration::from_secs(30)).unwrap(),
            Some(Frame::Result(_))
        ));
        coord.tx.send(&Frame::Shutdown).unwrap();
    }

    #[test]
    fn inventory_query_reports_warm_state() {
        let mut coord = spawn_worker(None);
        // Cold worker: empty report.
        coord.tx.send(&Frame::InventoryQuery).unwrap();
        match coord.rx.recv_timeout(Duration::from_secs(5)).unwrap() {
            Some(Frame::Inventory(report)) => {
                assert!(report.ops.is_empty());
                assert!(report.rows.is_empty());
            }
            other => panic!("expected an inventory, got {other:?}"),
        }
        coord.tx.send(&request(0, 0, 2)).unwrap();
        assert!(matches!(
            coord.rx.recv_timeout(Duration::from_secs(30)).unwrap(),
            Some(Frame::Result(_))
        ));
        coord.tx.send(&Frame::InventoryQuery).unwrap();
        match coord.rx.recv_timeout(Duration::from_secs(5)).unwrap() {
            Some(Frame::Inventory(report)) => {
                let job = ShardJob::parse("dos lattice=chain:16 moments=8 random=2 sets=2 seed=3")
                    .unwrap();
                assert_eq!(report.ops, vec![job.op_key()]);
                assert_eq!(report.rows.len(), 1);
                assert_eq!((report.rows[0].start, report.rows[0].end), (0, 2));
                assert_eq!(report.rows[0].key, job.row_key());
            }
            other => panic!("expected an inventory, got {other:?}"),
        }
        coord.tx.send(&Frame::Shutdown).unwrap();
    }

    #[test]
    fn shared_inventory_carries_warm_state_across_connections() {
        let inventory = Arc::new(Inventory::default());
        let serve = |inv: &Arc<Inventory>| {
            let (coord, worker) = loopback_pair("shared-inv");
            let inv = Arc::clone(inv);
            std::thread::spawn(move || serve_endpoint_with_inventory(worker, None, &inv));
            coord
        };
        let mut first = serve(&inventory);
        first.tx.send(&request(0, 0, 2)).unwrap();
        assert!(matches!(
            first.rx.recv_timeout(Duration::from_secs(30)).unwrap(),
            Some(Frame::Result(_))
        ));
        first.tx.send(&Frame::Shutdown).unwrap();
        // A second "coordinator" sees the first one's warm rows.
        let mut second = serve(&inventory);
        second.tx.send(&Frame::InventoryQuery).unwrap();
        match second.rx.recv_timeout(Duration::from_secs(5)).unwrap() {
            Some(Frame::Inventory(report)) => assert!(!report.rows.is_empty()),
            other => panic!("expected an inventory, got {other:?}"),
        }
        second.tx.send(&Frame::Shutdown).unwrap();
    }

    #[test]
    fn die_fault_drops_the_connection() {
        let mut coord = spawn_worker(Some(WorkerFault::DieAfterRequests(0)));
        coord.tx.send(&request(0, 0, 1)).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            match coord.rx.recv_timeout(Duration::from_millis(50)) {
                Err(_) => break, // connection closed, as injected
                Ok(None) if std::time::Instant::now() < deadline => continue,
                other => panic!("expected drop, got {other:?}"),
            }
        }
    }

    #[test]
    fn hang_fault_stays_silent_but_connected() {
        let mut coord = spawn_worker(Some(WorkerFault::HangAfterRequests(0)));
        coord.tx.send(&request(0, 0, 1)).unwrap();
        // Further pings go unanswered while the connection stays open.
        coord.tx.send(&Frame::Ping { nonce: 1 }).unwrap();
        assert_eq!(coord.rx.recv_timeout(Duration::from_millis(400)).unwrap(), None);
        drop(coord); // closing our end lets the hung worker exit
    }
}
