//! The versioned, length-prefixed binary wire protocol.
//!
//! Framing (magic `KPSH`, version checked on every frame) rides on the
//! shared [`kpm_wire`] codec — the same discipline `kpm-net` uses with its
//! own magic — so both protocols share one header layout, one payload
//! reader, and one set of bit-exact `f64` primitives. See `kpm-wire` for
//! the byte-level format.
//!
//! Moment rows travel as raw IEEE-754 bit patterns (`f64::to_bits`), never
//! through decimal formatting, so a value arrives bit-for-bit as computed —
//! the transport can not perturb the exact-merge guarantee.
//!
//! A version mismatch is a [`ShardError::Protocol`], not a best-effort
//! parse, because silently reinterpreting frames across protocol revisions
//! could corrupt moments without failing loudly.

use crate::error::ShardError;
use kpm_wire::{put_str, put_u32, put_u64, Codec, Reader, WireError};

/// Frame preamble.
pub const MAGIC: [u8; 4] = *b"KPSH";
/// Protocol revision; bump on any change to framing or payload layout.
/// Version 2 added the spec-deduplicated dispatch frames
/// ([`Frame::SpecAnnounce`] / [`Frame::RequestRef`]) and the fleet
/// inventory exchange ([`Frame::InventoryQuery`] / [`Frame::Inventory`]);
/// every version-1 payload layout is unchanged, so decoding accepts
/// [`MIN_VERSION`]`..=`[`VERSION`] (new frame types simply cannot appear in
/// old streams).
pub const VERSION: u16 = 2;
/// Oldest protocol revision the decoder still accepts.
pub const MIN_VERSION: u16 = 1;
/// Header length: magic + version + type + payload length.
pub const HEADER_LEN: usize = kpm_wire::HEADER_LEN;
/// Payloads above this are rejected as protocol violations (a corrupted
/// length prefix must not trigger a multi-gigabyte allocation).
pub const MAX_PAYLOAD: u32 = kpm_wire::MAX_PAYLOAD;

/// The shard protocol's framing identity on the shared codec.
pub const CODEC: Codec = Codec { magic: MAGIC, version: VERSION };

impl From<WireError> for ShardError {
    fn from(e: WireError) -> Self {
        match e {
            WireError::Io(msg) => ShardError::Io(msg),
            WireError::Protocol(msg) => ShardError::Protocol(msg),
        }
    }
}

/// One realization-range assignment for a worker.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardRequest {
    /// Coordinator-chosen run id (echoed back in results).
    pub job: u64,
    /// Shard id within the run's [`kpm::shard_plan`].
    pub shard: u32,
    /// First realization index (canonical `idx = s * R + r`).
    pub start: u64,
    /// One past the last realization index.
    pub end: u64,
    /// Canonical shard-job line ([`crate::job::ShardJob::canonical`]); the
    /// worker rebuilds the Hamiltonian deterministically from it.
    pub spec: String,
}

/// A completed shard: per-realization moment vectors, bit-exact.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardResult {
    /// Run id echoed from the request.
    pub job: u64,
    /// Shard id echoed from the request.
    pub shard: u32,
    /// Row `i` is realization `start + i` of the request's range.
    pub rows: Vec<Vec<f64>>,
}

/// One contiguous run of warm per-realization rows in a worker's
/// inventory: realizations `start..end` of the row family `key` are cached
/// at `n` moments each.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowRun {
    /// Row-family hash ([`crate::job::ShardJob::row_key`]).
    pub key: u64,
    /// First cached realization index.
    pub start: u64,
    /// One past the last cached realization index.
    pub end: u64,
    /// Moments per cached row (prefix-servable for dos/ldos families).
    pub n: u32,
}

/// A worker's content-addressed warm-state advertisement: which assembled
/// operators, per-realization row prefixes, and tuned execution profiles it
/// already holds. The fleet scheduler scores placements against this.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct InventoryReport {
    /// Operator hashes ([`crate::job::ShardJob::op_key`]) of assembled
    /// Hamiltonians held in memory.
    pub ops: Vec<u64>,
    /// Warm per-realization row runs.
    pub rows: Vec<RowRun>,
    /// Keys of tuned [`kpm::tune::ExecProfile`]s resident in the worker's
    /// profile store.
    pub profiles: Vec<u64>,
}

/// Every message of the protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Coordinator liveness probe.
    Ping {
        /// Echoed in the matching [`Frame::Pong`].
        nonce: u64,
    },
    /// Worker liveness reply.
    Pong {
        /// Nonce from the probe.
        nonce: u64,
    },
    /// Shard assignment.
    Request(ShardRequest),
    /// Shard completion.
    Result(ShardResult),
    /// Worker-side deterministic compute failure for a shard.
    WorkerError {
        /// Run id.
        job: u64,
        /// Shard id.
        shard: u32,
        /// Rendered error.
        message: String,
    },
    /// Coordinator tells the worker this session is over.
    Shutdown,
    /// Registers a job's canonical spec line under its run id for this
    /// connection, so later [`Frame::RequestRef`]s (first dispatch, steals,
    /// speculative re-dispatch) are O(1) in spec size (v2).
    SpecAnnounce {
        /// Run id later requests reference.
        job: u64,
        /// Canonical shard-job line ([`crate::job::ShardJob::canonical`]).
        spec: String,
    },
    /// Shard assignment referencing an announced spec (v2). Layout is
    /// [`Frame::Request`] minus the spec string.
    RequestRef {
        /// Run id of a previously announced spec.
        job: u64,
        /// Shard id within the run's [`kpm::shard_plan`].
        shard: u32,
        /// First realization index.
        start: u64,
        /// One past the last realization index.
        end: u64,
    },
    /// Asks the worker for its warm-state inventory (v2).
    InventoryQuery,
    /// The worker's inventory advertisement (v2).
    Inventory(InventoryReport),
}

impl Frame {
    fn type_byte(&self) -> u8 {
        match self {
            Frame::Ping { .. } => 1,
            Frame::Pong { .. } => 2,
            Frame::Request(_) => 3,
            Frame::Result(_) => 4,
            Frame::WorkerError { .. } => 5,
            Frame::Shutdown => 6,
            Frame::SpecAnnounce { .. } => 7,
            Frame::RequestRef { .. } => 8,
            Frame::InventoryQuery => 9,
            Frame::Inventory(_) => 10,
        }
    }
}

/// Encodes a frame to its full wire representation (header + payload).
pub fn encode(frame: &Frame) -> Vec<u8> {
    let mut payload = Vec::new();
    match frame {
        Frame::Ping { nonce } | Frame::Pong { nonce } => put_u64(&mut payload, *nonce),
        Frame::Request(req) => {
            put_u64(&mut payload, req.job);
            put_u32(&mut payload, req.shard);
            put_u64(&mut payload, req.start);
            put_u64(&mut payload, req.end);
            put_str(&mut payload, &req.spec);
        }
        Frame::Result(res) => {
            put_u64(&mut payload, res.job);
            put_u32(&mut payload, res.shard);
            put_u32(&mut payload, res.rows.len() as u32);
            let cols = res.rows.first().map_or(0, Vec::len);
            put_u32(&mut payload, cols as u32);
            for row in &res.rows {
                debug_assert_eq!(row.len(), cols, "ragged result rows");
                for &v in row {
                    put_u64(&mut payload, v.to_bits());
                }
            }
        }
        Frame::WorkerError { job, shard, message } => {
            put_u64(&mut payload, *job);
            put_u32(&mut payload, *shard);
            put_str(&mut payload, message);
        }
        Frame::Shutdown | Frame::InventoryQuery => {}
        Frame::SpecAnnounce { job, spec } => {
            put_u64(&mut payload, *job);
            put_str(&mut payload, spec);
        }
        Frame::RequestRef { job, shard, start, end } => {
            put_u64(&mut payload, *job);
            put_u32(&mut payload, *shard);
            put_u64(&mut payload, *start);
            put_u64(&mut payload, *end);
        }
        Frame::Inventory(inv) => {
            put_u32(&mut payload, inv.ops.len() as u32);
            for &op in &inv.ops {
                put_u64(&mut payload, op);
            }
            put_u32(&mut payload, inv.rows.len() as u32);
            for run in &inv.rows {
                put_u64(&mut payload, run.key);
                put_u64(&mut payload, run.start);
                put_u64(&mut payload, run.end);
                put_u32(&mut payload, run.n);
            }
            put_u32(&mut payload, inv.profiles.len() as u32);
            for &p in &inv.profiles {
                put_u64(&mut payload, p);
            }
        }
    }
    CODEC.frame(frame.type_byte(), payload)
}

/// Validates a header, returning `(type byte, payload length)`. Accepts
/// any revision in [`MIN_VERSION`]`..=`[`VERSION`].
pub fn parse_header(header: &[u8; HEADER_LEN]) -> Result<(u8, u32), ShardError> {
    let (_, type_byte, len) = CODEC.parse_header_compat(header, MIN_VERSION)?;
    Ok((type_byte, len))
}

/// Decodes a payload given its frame type byte.
pub fn decode_payload(type_byte: u8, payload: &[u8]) -> Result<Frame, ShardError> {
    let mut r = Reader::new(payload);
    let frame = match type_byte {
        1 => Frame::Ping { nonce: r.u64()? },
        2 => Frame::Pong { nonce: r.u64()? },
        3 => Frame::Request(ShardRequest {
            job: r.u64()?,
            shard: r.u32()?,
            start: r.u64()?,
            end: r.u64()?,
            spec: r.string()?,
        }),
        4 => {
            let job = r.u64()?;
            let shard = r.u32()?;
            let nrows = r.u32()? as usize;
            let cols = r.u32()? as usize;
            if (nrows as u64) * (cols as u64) * 8 > u64::from(MAX_PAYLOAD) {
                return Err(ShardError::Protocol(format!(
                    "result of {nrows} x {cols} rows exceeds payload cap"
                )));
            }
            let mut rows = Vec::with_capacity(nrows);
            for _ in 0..nrows {
                let mut row = Vec::with_capacity(cols);
                for _ in 0..cols {
                    row.push(f64::from_bits(r.u64()?));
                }
                rows.push(row);
            }
            Frame::Result(ShardResult { job, shard, rows })
        }
        5 => Frame::WorkerError { job: r.u64()?, shard: r.u32()?, message: r.string()? },
        6 => Frame::Shutdown,
        7 => Frame::SpecAnnounce { job: r.u64()?, spec: r.string()? },
        8 => Frame::RequestRef { job: r.u64()?, shard: r.u32()?, start: r.u64()?, end: r.u64()? },
        9 => Frame::InventoryQuery,
        10 => {
            // Each list length is bounded by the payload that must carry it
            // before any allocation (same discipline as Result rows).
            let cap = |len: usize, elem: usize| -> Result<usize, ShardError> {
                if (len as u64) * (elem as u64) > u64::from(MAX_PAYLOAD) {
                    return Err(ShardError::Protocol(format!(
                        "inventory list of {len} entries exceeds payload cap"
                    )));
                }
                Ok(len)
            };
            let nops = cap(r.u32()? as usize, 8)?;
            let mut ops = Vec::with_capacity(nops);
            for _ in 0..nops {
                ops.push(r.u64()?);
            }
            let nrows = cap(r.u32()? as usize, 28)?;
            let mut rows = Vec::with_capacity(nrows);
            for _ in 0..nrows {
                rows.push(RowRun { key: r.u64()?, start: r.u64()?, end: r.u64()?, n: r.u32()? });
            }
            let nprofiles = cap(r.u32()? as usize, 8)?;
            let mut profiles = Vec::with_capacity(nprofiles);
            for _ in 0..nprofiles {
                profiles.push(r.u64()?);
            }
            Frame::Inventory(InventoryReport { ops, rows, profiles })
        }
        other => return Err(ShardError::Protocol(format!("unknown frame type {other}"))),
    };
    r.finish()?;
    Ok(frame)
}

/// Decodes one full frame (header + payload) from a byte buffer, as the
/// loopback transport delivers them. Accepts frames from
/// [`MIN_VERSION`]`..=`[`VERSION`] encoders.
pub fn decode_bytes(bytes: &[u8]) -> Result<Frame, ShardError> {
    let (_, type_byte, payload) = CODEC.split_frame_compat(bytes, MIN_VERSION)?;
    decode_payload(type_byte, payload)
}

/// Blocking read of one frame from a byte stream (the TCP transport).
/// Accepts frames from [`MIN_VERSION`]`..=`[`VERSION`] encoders.
///
/// # Errors
/// [`ShardError::Io`] on read failure or EOF, [`ShardError::Protocol`] on
/// malformed frames.
pub fn read_frame<R: std::io::Read>(reader: &mut R) -> Result<Frame, ShardError> {
    let (_, type_byte, payload) = CODEC.read_frame_compat(reader, MIN_VERSION)?;
    decode_payload(type_byte, &payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: Frame) {
        let bytes = encode(&frame);
        assert_eq!(decode_bytes(&bytes).unwrap(), frame);
        // Stream decode agrees with buffer decode.
        let mut cursor = std::io::Cursor::new(bytes);
        assert_eq!(read_frame(&mut cursor).unwrap(), frame);
    }

    #[test]
    fn all_frames_roundtrip() {
        roundtrip(Frame::Ping { nonce: 0xdead_beef });
        roundtrip(Frame::Pong { nonce: 0 });
        roundtrip(Frame::Request(ShardRequest {
            job: 7,
            shard: 3,
            start: 10,
            end: 20,
            spec: "dos lattice=chain:32 moments=16".into(),
        }));
        roundtrip(Frame::Result(ShardResult {
            job: 7,
            shard: 3,
            rows: vec![vec![1.0, -0.25, f64::MIN_POSITIVE], vec![0.0, -0.0, f64::MAX]],
        }));
        roundtrip(Frame::WorkerError { job: 7, shard: 1, message: "kpm: bad".into() });
        roundtrip(Frame::Shutdown);
        roundtrip(Frame::SpecAnnounce { job: 7, spec: "dos lattice=chain:32 moments=16".into() });
        roundtrip(Frame::RequestRef { job: 7, shard: 3, start: 10, end: 20 });
        roundtrip(Frame::InventoryQuery);
        roundtrip(Frame::Inventory(InventoryReport::default()));
        roundtrip(Frame::Inventory(InventoryReport {
            ops: vec![1, u64::MAX],
            rows: vec![
                RowRun { key: 9, start: 0, end: 4, n: 64 },
                RowRun { key: 9, start: 6, end: 7, n: 32 },
            ],
            profiles: vec![0xfeed],
        }));
    }

    #[test]
    fn frame_bytes_are_pinned_across_the_codec_extraction() {
        // The shared-codec rewrite must not change a single wire byte:
        // golden encoding of a Ping frame, field by field.
        let bytes = encode(&Frame::Ping { nonce: 0x0102_0304_0506_0708 });
        assert_eq!(&bytes[..4], b"KPSH");
        assert_eq!(bytes[4..6], 2u16.to_le_bytes());
        assert_eq!(bytes[6], 1); // type byte
        assert_eq!(bytes[7..11], 8u32.to_le_bytes()); // payload length
        assert_eq!(bytes[11..], 0x0102_0304_0506_0708u64.to_le_bytes());
    }

    #[test]
    fn golden_v1_request_frame_still_decodes() {
        // A version-1 encoder's Request frame, byte for byte: the payload
        // layout predates the v2 spec-dedup frames and must keep decoding
        // unchanged. Built by hand so this test fails if either the v1
        // layout assumption or the compat window regresses.
        let spec = "dos lattice=chain:32 moments=16";
        let mut payload = Vec::new();
        put_u64(&mut payload, 7);
        put_u32(&mut payload, 3);
        put_u64(&mut payload, 10);
        put_u64(&mut payload, 20);
        put_str(&mut payload, spec);
        let v1 = Codec { magic: MAGIC, version: 1 };
        let bytes = v1.frame(3, payload);
        assert_eq!(bytes[4..6], 1u16.to_le_bytes());
        let decoded = decode_bytes(&bytes).unwrap();
        assert_eq!(
            decoded,
            Frame::Request(ShardRequest {
                job: 7,
                shard: 3,
                start: 10,
                end: 20,
                spec: spec.into(),
            })
        );
        // The stream path applies the same window.
        let mut cursor = std::io::Cursor::new(&bytes);
        assert_eq!(read_frame(&mut cursor).unwrap(), decoded);
        // Versions outside the window stay hard protocol errors.
        let v0 = Codec { magic: MAGIC, version: 0 }.frame(6, Vec::new());
        assert!(matches!(decode_bytes(&v0), Err(ShardError::Protocol(_))));
        let v3 = Codec { magic: MAGIC, version: 3 }.frame(6, Vec::new());
        assert!(matches!(decode_bytes(&v3), Err(ShardError::Protocol(_))));
    }

    /// Version tolerance for the bounds provider: a pre-bounds Request
    /// frame (spec line with no `bounds=` key) decodes to a job with the
    /// Gershgorin default and keeps its bounds-free canonical line, while a
    /// bounds-bearing line survives the KPSH round trip verbatim.
    #[test]
    fn legacy_spec_lines_decode_to_gershgorin_bounds() {
        let spec = "dos lattice=chain:32 moments=16";
        let mut payload = Vec::new();
        put_u64(&mut payload, 7);
        put_u32(&mut payload, 3);
        put_u64(&mut payload, 10);
        put_u64(&mut payload, 20);
        put_str(&mut payload, spec);
        let bytes = Codec { magic: MAGIC, version: 1 }.frame(3, payload);
        let Frame::Request(req) = decode_bytes(&bytes).unwrap() else { panic!("expected Request") };
        let job = crate::ShardJob::parse(&req.spec).unwrap();
        assert_eq!(job.spec().bounds, kpm::BoundsMethod::Gershgorin);
        assert!(!job.canonical().contains("bounds="), "{}", job.canonical());

        let line = "ldos:3 lattice=chain:32 disorder=4@1 moments=16 bounds=lanczos:24";
        let job = crate::ShardJob::parse(line).unwrap();
        assert_eq!(job.spec().bounds, kpm::BoundsMethod::Lanczos { steps: 24 });
        let mut payload = Vec::new();
        put_u64(&mut payload, 1);
        put_u32(&mut payload, 0);
        put_u64(&mut payload, 0);
        put_u64(&mut payload, 2);
        put_str(&mut payload, &job.canonical());
        let bytes = CODEC.frame(3, payload);
        let Frame::Request(req) = decode_bytes(&bytes).unwrap() else { panic!("expected Request") };
        let round = crate::ShardJob::parse(&req.spec).unwrap();
        assert_eq!(round.canonical(), job.canonical());
        assert_eq!(round.spec().bounds, kpm::BoundsMethod::Lanczos { steps: 24 });
    }

    #[test]
    fn float_bits_survive_exactly() {
        // Values that decimal round-trips mangle must survive bitwise.
        let tricky = vec![vec![
            0.1 + 0.2,
            f64::EPSILON,
            1.0 / 3.0,
            -1e-308,
            f64::from_bits(0x0000_0000_0000_0001), // subnormal
        ]];
        let frame = Frame::Result(ShardResult { job: 1, shard: 0, rows: tricky.clone() });
        let Frame::Result(res) = decode_bytes(&encode(&frame)).unwrap() else {
            panic!("expected result");
        };
        for (a, b) in res.rows[0].iter().zip(&tricky[0]) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn bad_magic_and_version_are_protocol_errors() {
        let mut bytes = encode(&Frame::Shutdown);
        bytes[0] = b'X';
        assert!(matches!(decode_bytes(&bytes), Err(ShardError::Protocol(_))));

        let mut bytes = encode(&Frame::Shutdown);
        bytes[4] = 99; // version
        match decode_bytes(&bytes) {
            Err(ShardError::Protocol(msg)) => assert!(msg.contains("version"), "{msg}"),
            other => panic!("expected protocol error, got {other:?}"),
        }
    }

    #[test]
    fn truncated_and_trailing_payloads_rejected() {
        let bytes = encode(&Frame::Ping { nonce: 5 });
        assert!(matches!(decode_bytes(&bytes[..bytes.len() - 1]), Err(ShardError::Protocol(_))));
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(matches!(decode_bytes(&extended), Err(ShardError::Protocol(_))));
    }

    #[test]
    fn unknown_frame_type_rejected() {
        let mut bytes = encode(&Frame::Shutdown);
        bytes[6] = 42;
        assert!(matches!(decode_bytes(&bytes), Err(ShardError::Protocol(_))));
    }

    #[test]
    fn eof_is_io_error() {
        let mut empty = std::io::Cursor::new(Vec::<u8>::new());
        assert!(matches!(read_frame(&mut empty), Err(ShardError::Io(_))));
    }
}
