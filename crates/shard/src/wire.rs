//! The versioned, length-prefixed binary wire protocol.
//!
//! Framing (magic `KPSH`, version checked on every frame) rides on the
//! shared [`kpm_wire`] codec — the same discipline `kpm-net` uses with its
//! own magic — so both protocols share one header layout, one payload
//! reader, and one set of bit-exact `f64` primitives. See `kpm-wire` for
//! the byte-level format.
//!
//! Moment rows travel as raw IEEE-754 bit patterns (`f64::to_bits`), never
//! through decimal formatting, so a value arrives bit-for-bit as computed —
//! the transport can not perturb the exact-merge guarantee.
//!
//! A version mismatch is a [`ShardError::Protocol`], not a best-effort
//! parse, because silently reinterpreting frames across protocol revisions
//! could corrupt moments without failing loudly.

use crate::error::ShardError;
use kpm_wire::{put_str, put_u32, put_u64, Codec, Reader, WireError};

/// Frame preamble.
pub const MAGIC: [u8; 4] = *b"KPSH";
/// Protocol revision; bump on any change to framing or payload layout.
pub const VERSION: u16 = 1;
/// Header length: magic + version + type + payload length.
pub const HEADER_LEN: usize = kpm_wire::HEADER_LEN;
/// Payloads above this are rejected as protocol violations (a corrupted
/// length prefix must not trigger a multi-gigabyte allocation).
pub const MAX_PAYLOAD: u32 = kpm_wire::MAX_PAYLOAD;

/// The shard protocol's framing identity on the shared codec.
pub const CODEC: Codec = Codec { magic: MAGIC, version: VERSION };

impl From<WireError> for ShardError {
    fn from(e: WireError) -> Self {
        match e {
            WireError::Io(msg) => ShardError::Io(msg),
            WireError::Protocol(msg) => ShardError::Protocol(msg),
        }
    }
}

/// One realization-range assignment for a worker.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardRequest {
    /// Coordinator-chosen run id (echoed back in results).
    pub job: u64,
    /// Shard id within the run's [`kpm::shard_plan`].
    pub shard: u32,
    /// First realization index (canonical `idx = s * R + r`).
    pub start: u64,
    /// One past the last realization index.
    pub end: u64,
    /// Canonical shard-job line ([`crate::job::ShardJob::canonical`]); the
    /// worker rebuilds the Hamiltonian deterministically from it.
    pub spec: String,
}

/// A completed shard: per-realization moment vectors, bit-exact.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardResult {
    /// Run id echoed from the request.
    pub job: u64,
    /// Shard id echoed from the request.
    pub shard: u32,
    /// Row `i` is realization `start + i` of the request's range.
    pub rows: Vec<Vec<f64>>,
}

/// Every message of the protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Coordinator liveness probe.
    Ping {
        /// Echoed in the matching [`Frame::Pong`].
        nonce: u64,
    },
    /// Worker liveness reply.
    Pong {
        /// Nonce from the probe.
        nonce: u64,
    },
    /// Shard assignment.
    Request(ShardRequest),
    /// Shard completion.
    Result(ShardResult),
    /// Worker-side deterministic compute failure for a shard.
    WorkerError {
        /// Run id.
        job: u64,
        /// Shard id.
        shard: u32,
        /// Rendered error.
        message: String,
    },
    /// Coordinator tells the worker this session is over.
    Shutdown,
}

impl Frame {
    fn type_byte(&self) -> u8 {
        match self {
            Frame::Ping { .. } => 1,
            Frame::Pong { .. } => 2,
            Frame::Request(_) => 3,
            Frame::Result(_) => 4,
            Frame::WorkerError { .. } => 5,
            Frame::Shutdown => 6,
        }
    }
}

/// Encodes a frame to its full wire representation (header + payload).
pub fn encode(frame: &Frame) -> Vec<u8> {
    let mut payload = Vec::new();
    match frame {
        Frame::Ping { nonce } | Frame::Pong { nonce } => put_u64(&mut payload, *nonce),
        Frame::Request(req) => {
            put_u64(&mut payload, req.job);
            put_u32(&mut payload, req.shard);
            put_u64(&mut payload, req.start);
            put_u64(&mut payload, req.end);
            put_str(&mut payload, &req.spec);
        }
        Frame::Result(res) => {
            put_u64(&mut payload, res.job);
            put_u32(&mut payload, res.shard);
            put_u32(&mut payload, res.rows.len() as u32);
            let cols = res.rows.first().map_or(0, Vec::len);
            put_u32(&mut payload, cols as u32);
            for row in &res.rows {
                debug_assert_eq!(row.len(), cols, "ragged result rows");
                for &v in row {
                    put_u64(&mut payload, v.to_bits());
                }
            }
        }
        Frame::WorkerError { job, shard, message } => {
            put_u64(&mut payload, *job);
            put_u32(&mut payload, *shard);
            put_str(&mut payload, message);
        }
        Frame::Shutdown => {}
    }
    CODEC.frame(frame.type_byte(), payload)
}

/// Validates a header, returning `(type byte, payload length)`.
pub fn parse_header(header: &[u8; HEADER_LEN]) -> Result<(u8, u32), ShardError> {
    Ok(CODEC.parse_header(header)?)
}

/// Decodes a payload given its frame type byte.
pub fn decode_payload(type_byte: u8, payload: &[u8]) -> Result<Frame, ShardError> {
    let mut r = Reader::new(payload);
    let frame = match type_byte {
        1 => Frame::Ping { nonce: r.u64()? },
        2 => Frame::Pong { nonce: r.u64()? },
        3 => Frame::Request(ShardRequest {
            job: r.u64()?,
            shard: r.u32()?,
            start: r.u64()?,
            end: r.u64()?,
            spec: r.string()?,
        }),
        4 => {
            let job = r.u64()?;
            let shard = r.u32()?;
            let nrows = r.u32()? as usize;
            let cols = r.u32()? as usize;
            if (nrows as u64) * (cols as u64) * 8 > u64::from(MAX_PAYLOAD) {
                return Err(ShardError::Protocol(format!(
                    "result of {nrows} x {cols} rows exceeds payload cap"
                )));
            }
            let mut rows = Vec::with_capacity(nrows);
            for _ in 0..nrows {
                let mut row = Vec::with_capacity(cols);
                for _ in 0..cols {
                    row.push(f64::from_bits(r.u64()?));
                }
                rows.push(row);
            }
            Frame::Result(ShardResult { job, shard, rows })
        }
        5 => Frame::WorkerError { job: r.u64()?, shard: r.u32()?, message: r.string()? },
        6 => Frame::Shutdown,
        other => return Err(ShardError::Protocol(format!("unknown frame type {other}"))),
    };
    r.finish()?;
    Ok(frame)
}

/// Decodes one full frame (header + payload) from a byte buffer, as the
/// loopback transport delivers them.
pub fn decode_bytes(bytes: &[u8]) -> Result<Frame, ShardError> {
    let (type_byte, payload) = CODEC.split_frame(bytes)?;
    decode_payload(type_byte, payload)
}

/// Blocking read of one frame from a byte stream (the TCP transport).
///
/// # Errors
/// [`ShardError::Io`] on read failure or EOF, [`ShardError::Protocol`] on
/// malformed frames.
pub fn read_frame<R: std::io::Read>(reader: &mut R) -> Result<Frame, ShardError> {
    let (type_byte, payload) = CODEC.read_frame(reader)?;
    decode_payload(type_byte, &payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: Frame) {
        let bytes = encode(&frame);
        assert_eq!(decode_bytes(&bytes).unwrap(), frame);
        // Stream decode agrees with buffer decode.
        let mut cursor = std::io::Cursor::new(bytes);
        assert_eq!(read_frame(&mut cursor).unwrap(), frame);
    }

    #[test]
    fn all_frames_roundtrip() {
        roundtrip(Frame::Ping { nonce: 0xdead_beef });
        roundtrip(Frame::Pong { nonce: 0 });
        roundtrip(Frame::Request(ShardRequest {
            job: 7,
            shard: 3,
            start: 10,
            end: 20,
            spec: "dos lattice=chain:32 moments=16".into(),
        }));
        roundtrip(Frame::Result(ShardResult {
            job: 7,
            shard: 3,
            rows: vec![vec![1.0, -0.25, f64::MIN_POSITIVE], vec![0.0, -0.0, f64::MAX]],
        }));
        roundtrip(Frame::WorkerError { job: 7, shard: 1, message: "kpm: bad".into() });
        roundtrip(Frame::Shutdown);
    }

    #[test]
    fn frame_bytes_are_pinned_across_the_codec_extraction() {
        // The shared-codec rewrite must not change a single wire byte:
        // golden encoding of a Ping frame, field by field.
        let bytes = encode(&Frame::Ping { nonce: 0x0102_0304_0506_0708 });
        assert_eq!(&bytes[..4], b"KPSH");
        assert_eq!(bytes[4..6], 1u16.to_le_bytes());
        assert_eq!(bytes[6], 1); // type byte
        assert_eq!(bytes[7..11], 8u32.to_le_bytes()); // payload length
        assert_eq!(bytes[11..], 0x0102_0304_0506_0708u64.to_le_bytes());
    }

    #[test]
    fn float_bits_survive_exactly() {
        // Values that decimal round-trips mangle must survive bitwise.
        let tricky = vec![vec![
            0.1 + 0.2,
            f64::EPSILON,
            1.0 / 3.0,
            -1e-308,
            f64::from_bits(0x0000_0000_0000_0001), // subnormal
        ]];
        let frame = Frame::Result(ShardResult { job: 1, shard: 0, rows: tricky.clone() });
        let Frame::Result(res) = decode_bytes(&encode(&frame)).unwrap() else {
            panic!("expected result");
        };
        for (a, b) in res.rows[0].iter().zip(&tricky[0]) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn bad_magic_and_version_are_protocol_errors() {
        let mut bytes = encode(&Frame::Shutdown);
        bytes[0] = b'X';
        assert!(matches!(decode_bytes(&bytes), Err(ShardError::Protocol(_))));

        let mut bytes = encode(&Frame::Shutdown);
        bytes[4] = 99; // version
        match decode_bytes(&bytes) {
            Err(ShardError::Protocol(msg)) => assert!(msg.contains("version"), "{msg}"),
            other => panic!("expected protocol error, got {other:?}"),
        }
    }

    #[test]
    fn truncated_and_trailing_payloads_rejected() {
        let bytes = encode(&Frame::Ping { nonce: 5 });
        assert!(matches!(decode_bytes(&bytes[..bytes.len() - 1]), Err(ShardError::Protocol(_))));
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(matches!(decode_bytes(&extended), Err(ShardError::Protocol(_))));
    }

    #[test]
    fn unknown_frame_type_rejected() {
        let mut bytes = encode(&Frame::Shutdown);
        bytes[6] = 42;
        assert!(matches!(decode_bytes(&bytes), Err(ShardError::Protocol(_))));
    }

    #[test]
    fn eof_is_io_error() {
        let mut empty = std::io::Cursor::new(Vec::<u8>::new());
        assert!(matches!(read_frame(&mut empty), Err(ShardError::Io(_))));
    }
}
