//! Property tests for the distributed guarantee: for *any* worker count,
//! shard split, or injected failure, the merged moments are bitwise
//! identical to a single-process run with the same seed.
//!
//! Sharded runs go through the full public stack — loopback endpoints
//! carrying real wire frames, the fault-tolerant coordinator, the exact
//! merge — so these properties cover the codec and scheduling layers, not
//! just the arithmetic.

use kpm_serve::job::JobSpec;
use kpm_serve::worker::compute_raw_moments;
use kpm_shard::worker::serve_endpoint_with;
use kpm_shard::{
    loopback_pair, run, serve_endpoint, MergedMoments, ShardJob, ShardPolicy, WorkerFault,
};
use proptest::prelude::*;
use std::time::Duration;

/// Quick heartbeats so fault paths resolve in test time.
fn fast_policy(shards_per_worker: usize) -> ShardPolicy {
    ShardPolicy {
        shards_per_worker,
        heartbeat_interval: Duration::from_millis(50),
        heartbeat_timeout: Duration::from_millis(600),
        backoff_base: Duration::from_millis(5),
        ..ShardPolicy::default()
    }
}

/// Runs `job` over `workers` loopback workers, one of them optionally
/// carrying an injected fault.
fn run_sharded(
    job: &ShardJob,
    workers: usize,
    policy: &ShardPolicy,
    fault: Option<WorkerFault>,
) -> MergedMoments {
    let mut endpoints = Vec::new();
    let mut handles = Vec::new();
    for i in 0..workers {
        let (coord, worker) = loopback_pair(&format!("prop-{i}"));
        endpoints.push(coord);
        let worker_fault = if i == 0 { fault } else { None };
        handles.push(std::thread::spawn(move || match worker_fault {
            Some(f) => serve_endpoint_with(worker, Some(f)),
            None => serve_endpoint(worker),
        }));
    }
    let merged = run(job, endpoints, policy).expect("sharded run");
    for h in handles {
        let _ = h.join();
    }
    merged
}

/// The single-process reference rows: the full realization range computed
/// and merged in-process (pinned bitwise to the real estimator pipelines by
/// the unit tests in `kpm_shard::job`).
fn reference(job: &ShardJob) -> MergedMoments {
    let rows = job.compute_partial(0..job.total_units()).expect("reference rows");
    job.merge(&rows).expect("reference merge")
}

fn assert_stats_equal(sharded: MergedMoments, reference: MergedMoments, what: &str) {
    match (sharded, reference) {
        (MergedMoments::Stats(a), MergedMoments::Stats(b)) => {
            assert_eq!(a.mean, b.mean, "{what}: mean must be bitwise identical");
            assert_eq!(a.std_err, b.std_err, "{what}: std_err must be bitwise identical");
            assert_eq!(a.samples, b.samples, "{what}: sample count");
        }
        (MergedMoments::Double(a), MergedMoments::Double(b)) => {
            assert_eq!(a.order, b.order, "{what}: moment order");
            assert_eq!(a.mu, b.mu, "{what}: mu_nm must be bitwise identical");
        }
        _ => panic!("{what}: merged moment kinds disagree"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// DoS over random lattice sizes, worker counts, and shard splits is
    /// bitwise equal to `compute_raw_moments` — the exact code path an
    /// unsharded `kpm dos` / serve job runs.
    #[test]
    fn dos_any_split_matches_single_process(
        sites in 8usize..48,
        moments in 8usize..32,
        workers in 1usize..5,
        shards_per_worker in 1usize..4,
        seed in 0u64..1000,
    ) {
        let line = format!("lattice=chain:{sites} moments={moments} random=2 sets=2 seed={seed}");
        let spec = JobSpec::parse(&line).unwrap();
        let (direct, ..) = compute_raw_moments(&spec, 0).unwrap();
        let job = ShardJob::Dos(spec);
        let merged = run_sharded(&job, workers, &fast_policy(shards_per_worker), None);
        let MergedMoments::Stats(stats) = merged else { panic!("dos merges to stats") };
        prop_assert_eq!(stats.mean, direct.mean);
        prop_assert_eq!(stats.std_err, direct.std_err);
    }

    /// LDoS and Kubo across random splits match their single-process rows.
    #[test]
    fn ldos_and_kubo_any_split_match_single_process(
        sites in 8usize..32,
        moments in 4usize..12,
        workers in 1usize..4,
        shards_per_worker in 1usize..4,
        seed in 0u64..1000,
    ) {
        let ldos = ShardJob::parse(&format!(
            "ldos:3 lattice=chain:{sites} moments={moments} random=2 sets=1 seed={seed}"
        )).unwrap();
        let kubo = ShardJob::parse(&format!(
            "kubo lattice=chain:{sites} moments={moments} random=2 sets=2 seed={seed}"
        )).unwrap();
        for job in [ldos, kubo] {
            let merged = run_sharded(&job, workers, &fast_policy(shards_per_worker), None);
            assert_stats_equal(merged, reference(&job), "random split");
        }
    }

    /// Fault injection: worker 0 dies after a random number of served
    /// shards; the survivors absorb the lost work and the result is still
    /// bitwise identical.
    #[test]
    fn killed_worker_converges_to_identical_bytes(
        served_before_death in 0usize..3,
        workers in 2usize..4,
        seed in 0u64..1000,
    ) {
        let line = format!("lattice=chain:40 moments=16 random=3 sets=2 seed={seed}");
        let spec = JobSpec::parse(&line).unwrap();
        let (direct, ..) = compute_raw_moments(&spec, 0).unwrap();
        let job = ShardJob::Dos(spec);
        let merged = run_sharded(
            &job,
            workers,
            &fast_policy(2),
            Some(WorkerFault::DieAfterRequests(served_before_death)),
        );
        let MergedMoments::Stats(stats) = merged else { panic!("dos merges to stats") };
        prop_assert_eq!(stats.mean, direct.mean, "death must not change the moments");
        prop_assert_eq!(stats.std_err, direct.std_err);
    }
}

/// A hung (silent but connected) worker is detected by heartbeat timeout
/// and its shards rerun elsewhere, bitwise identically.
#[test]
fn hung_worker_converges_to_identical_bytes() {
    let spec = JobSpec::parse("lattice=chain:40 moments=16 random=3 sets=2 seed=17").unwrap();
    let (direct, ..) = compute_raw_moments(&spec, 0).unwrap();
    let job = ShardJob::Dos(spec);
    let merged = run_sharded(&job, 2, &fast_policy(2), Some(WorkerFault::HangAfterRequests(1)));
    let MergedMoments::Stats(stats) = merged else { panic!("dos merges to stats") };
    assert_eq!(stats.mean, direct.mean);
    assert_eq!(stats.std_err, direct.std_err);
}
