//! Distributed merge on top of the row-tiled engine.
//!
//! A `chain:600` job crosses the row-parallel cutoff (`ROW_MIN_DIM`), so
//! under the default `Auto` policy every worker computes its shard through
//! the fused tiled kernels. The merged statistics must still be bitwise
//! identical to a single-worker run after the per-realization moments
//! round-trip through the shard wire codec.

use kpm_shard::{ShardJob, ShardedEngine};

#[test]
fn local_workers_merge_bitwise_on_tiled_dimensions() {
    let spec =
        kpm_serve::JobSpec::parse("lattice=chain:600 moments=24 random=3 sets=2 seed=11").unwrap();
    let job = ShardJob::Dos(spec);
    let single = ShardedEngine::local(1).run_job(&job).unwrap().into_stats().unwrap();
    assert_eq!(single.samples, 6);
    for n in [2usize, 3, 4] {
        let multi = ShardedEngine::local(n).run_job(&job).unwrap().into_stats().unwrap();
        assert_eq!(multi.mean, single.mean, "{n} workers must merge bitwise");
        assert_eq!(multi.std_err, single.std_err);
        assert_eq!(multi.samples, single.samples);
    }
}

/// Calibrated planning through the shard codec path: whether the profile
/// store is cold (each worker probes its own slice) or pre-seeded with a
/// measured profile for a different-but-value-safe plan, the merged
/// statistics stay bitwise identical — shards only ever tune *within* the
/// value family, never across it.
#[test]
fn calibrated_profiles_keep_sharded_merges_bitwise() {
    let spec =
        kpm_serve::JobSpec::parse("lattice=chain:600 moments=24 random=3 sets=2 seed=11").unwrap();
    let job = ShardJob::Dos(spec);

    kpm::tune::store().clear_memory();
    let cold = ShardedEngine::local(3).run_job(&job).unwrap().into_stats().unwrap();

    // Seed measured profiles steering every worker-slice shape onto a
    // Hybrid plan with a double-height canonical tile. Worker slices of 6
    // realizations over R = 3 produce 1- or 2-chunk shapes; the shape's
    // entry count is the operator's own (forwarded unchanged through the
    // rescaled wrapper the workers actually profile).
    use kpm_linalg::LinearOp as _;
    let probe_spec =
        kpm_serve::JobSpec::parse("lattice=chain:600 moments=24 random=3 sets=2 seed=11").unwrap();
    let (dim, entries) = match &probe_spec.build_matrix() {
        kpm_serve::job::JobMatrix::Sparse(h) => (h.dim(), h.model_entries()),
        kpm_serve::job::JobMatrix::Dense(h) => (h.dim(), h.model_entries()),
    };
    let threads = kpm::exec::effective_threads();
    for chunks in 1..=2usize {
        let profile = kpm::ExecProfile {
            shape: kpm::ProbeShape { dim, entries, chunks, threads },
            policy: kpm::ExecPolicy::Hybrid,
            outer: 2,
            tile_rows: 2 * kpm_linalg::DEFAULT_TILE_ROWS,
            variant_hint: kpm_linalg::vecops::KernelVariant::Unrolled4,
            probe_nanos: 1,
            origin: kpm::tune::ProfileOrigin::Measured,
        };
        assert!(kpm::tune::store().insert(profile));
    }
    let calibrated = ShardedEngine::local(3).run_job(&job).unwrap().into_stats().unwrap();
    kpm::tune::store().clear_memory();

    assert_eq!(calibrated.mean, cold.mean, "calibration must not change merged bits");
    assert_eq!(calibrated.std_err, cold.std_err);
}
