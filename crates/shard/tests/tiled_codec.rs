//! Distributed merge on top of the row-tiled engine.
//!
//! A `chain:600` job crosses the row-parallel cutoff (`ROW_MIN_DIM`), so
//! under the default `Auto` policy every worker computes its shard through
//! the fused tiled kernels. The merged statistics must still be bitwise
//! identical to a single-worker run after the per-realization moments
//! round-trip through the shard wire codec.

use kpm_shard::{ShardJob, ShardedEngine};

#[test]
fn local_workers_merge_bitwise_on_tiled_dimensions() {
    let spec =
        kpm_serve::JobSpec::parse("lattice=chain:600 moments=24 random=3 sets=2 seed=11").unwrap();
    let job = ShardJob::Dos(spec);
    let single = ShardedEngine::local(1).run_job(&job).unwrap().into_stats().unwrap();
    assert_eq!(single.samples, 6);
    for n in [2usize, 3, 4] {
        let multi = ShardedEngine::local(n).run_job(&job).unwrap().into_stats().unwrap();
        assert_eq!(multi.mean, single.mean, "{n} workers must merge bitwise");
        assert_eq!(multi.std_err, single.std_err);
        assert_eq!(multi.samples, single.samples);
    }
}
