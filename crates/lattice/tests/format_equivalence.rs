//! Cross-format equivalence properties: CSR, ELL, stencil, and dense
//! application of the same lattice Hamiltonian must agree *bitwise*, for
//! single vectors and for column blocks of every width. This is the
//! contract that lets the KPM pipeline select a storage format freely
//! without perturbing physics results.

use kpm_lattice::{Boundary, HypercubicLattice, LatticeSpec, OnSite, TightBinding};
use kpm_linalg::{BlockOp, LinearOp, MatrixFormat, SparseMatrix};
use proptest::prelude::*;

fn boundaries() -> impl Strategy<Value = Vec<Boundary>> {
    proptest::collection::vec(prop_oneof![Just(Boundary::Open), Just(Boundary::Periodic)], 1..4)
}

fn onsite() -> impl Strategy<Value = OnSite> {
    prop_oneof![
        Just(OnSite::Uniform(0.0)),
        (0.1..2.0f64).prop_map(OnSite::Uniform),
        (0u64..50, 0.5..3.0f64).prop_map(|(seed, width)| OnSite::Disorder { width, seed }),
    ]
}

/// Deterministic quasi-random block: nothing special about the values, they
/// just have to exercise every row with distinct magnitudes and signs.
fn test_block(dim: usize, k: usize) -> Vec<f64> {
    (0..dim * k).map(|i| ((i * 2654435761 + 12345) % 1000) as f64 / 500.0 - 1.0).collect()
}

/// Asserts each format's `apply_block` output is bitwise equal to the CSR
/// reference for widths 1..=k_max, and `apply` matches column 0.
fn assert_formats_agree(csr_h: &kpm_linalg::CsrMatrix, variants: &[SparseMatrix], k_max: usize) {
    let d = csr_h.dim();
    for k in 1..=k_max {
        let x = test_block(d, k);
        let mut reference = vec![0.0; d * k];
        csr_h.apply_block(&x, &mut reference, k);
        // CSR reference must itself degenerate to per-column spmv.
        for (j, col) in reference.chunks_exact(d).enumerate() {
            let y = csr_h.apply_alloc(&x[j * d..(j + 1) * d]);
            assert_eq!(col, &y[..], "CSR block column {j} differs from spmv");
        }
        // Dense comparison is tolerance-based (different accumulation
        // order), sparse formats are bitwise.
        let dense = csr_h.to_dense();
        let mut dense_y = vec![0.0; d * k];
        dense.apply_block(&x, &mut dense_y, k);
        for (a, b) in dense_y.iter().zip(&reference) {
            assert!((a - b).abs() < 1e-12, "dense mismatch: {a} vs {b}");
        }
        for m in variants {
            let mut y = vec![0.0; d * k];
            m.apply_block(&x, &mut y, k);
            assert_eq!(y, reference, "format {} k={k} differs from CSR", m.format_name());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn hypercubic_formats_apply_bitwise_identically(
        dims in proptest::collection::vec(1usize..6, 1..4),
        bcs in boundaries(),
        onsite in onsite(),
        store_zero in prop_oneof![Just(false), Just(true)],
        t in 0.2..2.5f64,
    ) {
        let ndim = dims.len().min(bcs.len());
        let lat = HypercubicLattice::with_boundaries(&dims[..ndim], &bcs[..ndim]);
        let tb = TightBinding::new(lat, t, onsite).store_zero_diagonal(store_zero);
        let csr_h = tb.build_csr();
        let variants = [
            tb.build_format(MatrixFormat::Ell),
            tb.build_format(MatrixFormat::Stencil),
            tb.build_format(MatrixFormat::Auto),
        ];
        // The stencil must actually be matrix-free here, not a fallback.
        prop_assert_eq!(variants[1].format_name(), "stencil");
        for m in &variants {
            prop_assert_eq!(m.nnz(), csr_h.nnz(), "{}", m.format_name());
            prop_assert_eq!(m.to_csr(), csr_h.clone(), "{}", m.format_name());
        }
        assert_formats_agree(&csr_h, &variants, 4);
    }

    #[test]
    fn honeycomb_formats_apply_bitwise_identically(
        lx in 1usize..5,
        ly in 1usize..5,
        bc in prop_oneof![Just(Boundary::Open), Just(Boundary::Periodic)],
        onsite in onsite(),
        t in 0.2..2.5f64,
    ) {
        let spec = LatticeSpec::Honeycomb(lx, ly);
        let csr_h = spec.build(t, onsite, bc);
        let variants = [
            spec.build_format(t, onsite, bc, MatrixFormat::Ell),
            spec.build_format(t, onsite, bc, MatrixFormat::Stencil),
        ];
        prop_assert_eq!(variants[1].format_name(), "stencil");
        for m in &variants {
            prop_assert_eq!(m.nnz(), csr_h.nnz(), "{}", m.format_name());
            prop_assert_eq!(m.to_csr(), csr_h.clone(), "{}", m.format_name());
        }
        assert_formats_agree(&csr_h, &variants, 4);
    }

    #[test]
    fn next_nearest_model_falls_back_to_csr(
        l in 4usize..8,
        tp in 0.1..0.6f64,
    ) {
        let tb = TightBinding::new(
            HypercubicLattice::chain(l, Boundary::Periodic),
            1.0,
            OnSite::Uniform(0.0),
        )
        .with_next_nearest(tp);
        prop_assert!(tb.build_stencil().is_none());
        let m = tb.build_format(MatrixFormat::Stencil);
        prop_assert_eq!(m.format_name(), "csr");
        prop_assert_eq!(m.to_csr(), tb.build_csr());
    }
}

#[test]
fn paper_cubic_lattice_formats_agree() {
    // The paper's flagship 10x10x10 periodic cubic lattice with the stored
    // zero diagonal (7 entries per row).
    let spec = LatticeSpec::Cubic(10, 10, 10);
    let tb = TightBinding::new(
        HypercubicLattice::cubic(10, 10, 10, Boundary::Periodic),
        1.0,
        OnSite::Uniform(0.0),
    )
    .store_zero_diagonal(true);
    let csr_h = tb.build_csr();
    assert_eq!(csr_h.nnz(), 7000);
    assert_eq!(spec.num_sites(), 1000);
    let variants = [
        tb.build_format(MatrixFormat::Ell),
        tb.build_format(MatrixFormat::Stencil),
        tb.build_format(MatrixFormat::Auto),
    ];
    assert_eq!(variants[1].format_name(), "stencil");
    assert_eq!(variants[2].format_name(), "ell", "perfectly regular rows must auto-pick ELL");
    assert_formats_agree(&csr_h, &variants, 8);
}
