//! Property-based tests for lattice geometry and Hamiltonian assembly.

use kpm_lattice::{Boundary, HypercubicLattice, OnSite, TightBinding};
use proptest::prelude::*;

fn boundary() -> impl Strategy<Value = Boundary> {
    prop_oneof![Just(Boundary::Open), Just(Boundary::Periodic)]
}

fn small_dims() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(1usize..5, 1..4)
}

proptest! {
    #[test]
    fn site_index_roundtrip(dims in small_dims(), bc in boundary()) {
        let lat = HypercubicLattice::new(&dims, bc);
        for i in 0..lat.num_sites() {
            prop_assert_eq!(lat.site_index(&lat.coordinates(i)), i);
        }
    }

    #[test]
    fn neighbor_relation_is_symmetric(dims in small_dims(), bc in boundary()) {
        let lat = HypercubicLattice::new(&dims, bc);
        for i in 0..lat.num_sites() {
            for j in lat.neighbors(i) {
                prop_assert!(lat.neighbors(j).contains(&i),
                    "site {} lists {} but not vice versa", i, j);
            }
        }
    }

    #[test]
    fn neighbors_contain_no_duplicates_or_self(dims in small_dims(), bc in boundary()) {
        let lat = HypercubicLattice::new(&dims, bc);
        for i in 0..lat.num_sites() {
            let ns = lat.neighbors(i);
            let mut sorted = ns.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), ns.len(), "duplicates at site {}", i);
            prop_assert!(!ns.contains(&i), "self-loop at site {}", i);
        }
    }

    #[test]
    fn degree_bounded_by_2d(dims in small_dims(), bc in boundary()) {
        let lat = HypercubicLattice::new(&dims, bc);
        for i in 0..lat.num_sites() {
            prop_assert!(lat.neighbors(i).len() <= 2 * lat.ndim());
        }
    }

    #[test]
    fn hamiltonian_is_symmetric(
        dims in small_dims(),
        bc in boundary(),
        t in 0.1..3.0f64,
        seed in 0u64..100,
    ) {
        let lat = HypercubicLattice::new(&dims, bc);
        let h = TightBinding::new(lat, t, OnSite::Disorder { width: 2.0, seed }).build_csr();
        prop_assert!(h.is_symmetric(0.0));
    }

    #[test]
    fn hamiltonian_row_sums_match_degree(
        dims in small_dims(),
        bc in boundary(),
    ) {
        // With t = 1 and zero on-site term, row sum = -degree.
        let lat = HypercubicLattice::new(&dims, bc);
        let h = TightBinding::new(lat.clone(), 1.0, OnSite::Uniform(0.0)).build_csr();
        for i in 0..h.nrows() {
            let sum: f64 = h.row_entries(i).map(|(_, v)| v).sum();
            prop_assert!((sum + lat.neighbors(i).len() as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn stored_zero_diagonal_adds_exactly_n_entries(
        dims in small_dims(),
        bc in boundary(),
    ) {
        let lat = HypercubicLattice::new(&dims, bc);
        let plain = TightBinding::new(lat.clone(), 1.0, OnSite::Uniform(0.0)).build_csr();
        let stored = TightBinding::new(lat.clone(), 1.0, OnSite::Uniform(0.0))
            .store_zero_diagonal(true)
            .build_csr();
        prop_assert_eq!(stored.nnz(), plain.nnz() + lat.num_sites());
    }
}
