//! Honeycomb (graphene) lattice.
//!
//! The flagship application of KPM in the modern literature (KITE,
//! pybinding) is graphene: a two-site unit cell on a triangular Bravais
//! lattice, whose tight-binding DoS vanishes linearly at the Dirac point
//! `E = 0`, has van Hove singularities at `E = ±t`, and band edges at
//! `E = ±3t`. Included as the domain extension beyond the paper's cubic
//! lattice; exercised by the `graphene_dos` example.

use crate::hypercubic::Boundary;
use kpm_linalg::coo::CooMatrix;
use kpm_linalg::csr::CsrMatrix;

/// Sublattice label within the two-site unit cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sublattice {
    /// The "A" site.
    A,
    /// The "B" site.
    B,
}

/// An `lx x ly` honeycomb lattice (unit cells), with the same boundary
/// condition along both primitive directions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HoneycombLattice {
    lx: usize,
    ly: usize,
    boundary: Boundary,
}

impl HoneycombLattice {
    /// Builds the lattice.
    ///
    /// # Panics
    /// Panics if either extent is zero.
    pub fn new(lx: usize, ly: usize, boundary: Boundary) -> Self {
        assert!(lx > 0 && ly > 0, "extents must be positive");
        Self { lx, ly, boundary }
    }

    /// Unit cells per direction.
    pub fn cells(&self) -> (usize, usize) {
        (self.lx, self.ly)
    }

    /// Total sites `D = 2 lx ly`.
    pub fn num_sites(&self) -> usize {
        2 * self.lx * self.ly
    }

    /// Site index of `(x, y, sublattice)`; A sites come first within each
    /// cell (`index = 2 (x + lx y) + s`).
    ///
    /// # Panics
    /// Panics if the cell coordinate is out of range.
    pub fn site_index(&self, x: usize, y: usize, s: Sublattice) -> usize {
        assert!(x < self.lx && y < self.ly, "cell ({x}, {y}) out of range");
        2 * (x + self.lx * y) + if s == Sublattice::B { 1 } else { 0 }
    }

    /// Inverse of [`HoneycombLattice::site_index`].
    pub fn site_coords(&self, index: usize) -> (usize, usize, Sublattice) {
        assert!(index < self.num_sites(), "site {index} out of range");
        let s = if index % 2 == 1 { Sublattice::B } else { Sublattice::A };
        let cell = index / 2;
        (cell % self.lx, cell / self.lx, s)
    }

    /// Nearest neighbours of a site. An A site at cell `(x, y)` bonds to
    /// the B sites of cells `(x, y)`, `(x-1, y)`, `(x, y-1)` (and
    /// conversely), with wrapping controlled by the boundary condition.
    pub fn neighbors(&self, index: usize) -> Vec<usize> {
        let (x, y, s) = self.site_coords(index);
        let mut out = Vec::with_capacity(3);
        let deltas: [(isize, isize); 3] = [(0, 0), (-1, 0), (0, -1)];
        for (dx, dy) in deltas {
            let (dx, dy) = match s {
                Sublattice::A => (dx, dy),
                Sublattice::B => (-dx, -dy),
            };
            let nx = x as isize + dx;
            let ny = y as isize + dy;
            let wrap = |v: isize, l: usize| -> Option<usize> {
                if (0..l as isize).contains(&v) {
                    Some(v as usize)
                } else if self.boundary == Boundary::Periodic {
                    Some(v.rem_euclid(l as isize) as usize)
                } else {
                    None
                }
            };
            if let (Some(nx), Some(ny)) = (wrap(nx, self.lx), wrap(ny, self.ly)) {
                let other = match s {
                    Sublattice::A => Sublattice::B,
                    Sublattice::B => Sublattice::A,
                };
                let j = self.site_index(nx, ny, other);
                if j != index && !out.contains(&j) {
                    out.push(j);
                }
            }
        }
        out
    }

    /// The nearest-neighbour tight-binding Hamiltonian with hopping `t`
    /// (entries `-t`) and zero on-site energy.
    pub fn hamiltonian(&self, t: f64) -> CsrMatrix {
        let n = self.num_sites();
        let mut coo = CooMatrix::with_capacity(n, n, 3 * n);
        for i in 0..n {
            for j in self.neighbors(i) {
                coo.push(i, j, -t).expect("in range");
            }
        }
        coo.to_csr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kpm_linalg::eigen::jacobi_eigenvalues;
    use kpm_linalg::gershgorin::gershgorin_csr;

    #[test]
    fn index_roundtrip() {
        let lat = HoneycombLattice::new(4, 3, Boundary::Periodic);
        assert_eq!(lat.num_sites(), 24);
        for i in 0..lat.num_sites() {
            let (x, y, s) = lat.site_coords(i);
            assert_eq!(lat.site_index(x, y, s), i);
        }
    }

    #[test]
    fn periodic_sites_have_three_neighbors_on_other_sublattice() {
        let lat = HoneycombLattice::new(4, 4, Boundary::Periodic);
        for i in 0..lat.num_sites() {
            let ns = lat.neighbors(i);
            assert_eq!(ns.len(), 3, "site {i}");
            let (_, _, s) = lat.site_coords(i);
            for j in ns {
                let (_, _, sj) = lat.site_coords(j);
                assert_ne!(s, sj, "honeycomb is bipartite");
            }
        }
    }

    #[test]
    fn neighbor_relation_is_symmetric() {
        for bc in [Boundary::Open, Boundary::Periodic] {
            let lat = HoneycombLattice::new(3, 4, bc);
            for i in 0..lat.num_sites() {
                for j in lat.neighbors(i) {
                    assert!(lat.neighbors(j).contains(&i), "{i} <-> {j} ({bc:?})");
                }
            }
        }
    }

    #[test]
    fn open_boundary_edges_have_fewer_neighbors() {
        let lat = HoneycombLattice::new(3, 3, Boundary::Open);
        let counts: Vec<usize> = (0..lat.num_sites()).map(|i| lat.neighbors(i).len()).collect();
        assert!(counts.iter().any(|&c| c < 3), "open edges must exist");
        assert!(counts.iter().all(|&c| (1..=3).contains(&c)));
    }

    #[test]
    fn hamiltonian_is_symmetric_with_expected_band() {
        let lat = HoneycombLattice::new(4, 4, Boundary::Periodic);
        let h = lat.hamiltonian(1.0);
        assert!(h.is_symmetric(0.0));
        assert_eq!(h.nnz(), 3 * lat.num_sites());
        // Gershgorin: zero diagonal + three |−1| entries => [-3, 3].
        let b = gershgorin_csr(&h);
        assert_eq!((b.lower, b.upper), (-3.0, 3.0));
    }

    #[test]
    fn spectrum_is_particle_hole_symmetric() {
        // Bipartite lattice: eigenvalues come in +-E pairs.
        let lat = HoneycombLattice::new(3, 3, Boundary::Periodic);
        let eig = jacobi_eigenvalues(&lat.hamiltonian(1.0).to_dense()).unwrap();
        let n = eig.len();
        for k in 0..n {
            assert!(
                (eig[k] + eig[n - 1 - k]).abs() < 1e-9,
                "pair ({}, {})",
                eig[k],
                eig[n - 1 - k]
            );
        }
    }

    #[test]
    fn spectrum_matches_analytic_dispersion() {
        // E(k) = ±|1 + e^{ik1} + e^{ik2}| for the periodic lattice.
        let (lx, ly) = (4, 3);
        let lat = HoneycombLattice::new(lx, ly, Boundary::Periodic);
        let eig = jacobi_eigenvalues(&lat.hamiltonian(1.0).to_dense()).unwrap();
        let mut expected = Vec::new();
        for m in 0..lx {
            for n in 0..ly {
                let k1 = 2.0 * std::f64::consts::PI * m as f64 / lx as f64;
                let k2 = 2.0 * std::f64::consts::PI * n as f64 / ly as f64;
                let re = 1.0 + k1.cos() + k2.cos();
                let im = k1.sin() + k2.sin();
                let e = re.hypot(im);
                expected.push(e);
                expected.push(-e);
            }
        }
        expected.sort_by(f64::total_cmp);
        for (a, b) in eig.iter().zip(&expected) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    #[should_panic(expected = "extents must be positive")]
    fn zero_extent_rejected() {
        let _ = HoneycombLattice::new(0, 3, Boundary::Open);
    }
}
