//! Lattice specification parsing: `cubic:10,10,10` etc.
//!
//! Shared by the CLI (`--lattice` option) and the batch-serving job format
//! (`lattice=` field), so a spec string means the same Hamiltonian
//! everywhere.

use crate::{Boundary, HoneycombLattice, HypercubicLattice, OnSite, TightBinding};
use kpm_linalg::stencil::{StencilGeometry, StencilOp};
use kpm_linalg::{CsrMatrix, MatrixFormat, SparseMatrix};
use std::fmt;

/// Errors from lattice-spec parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// Unknown lattice family.
    UnknownFamily(String),
    /// Wrong number of extents for the family.
    WrongArity {
        /// Family name.
        family: &'static str,
        /// Extents expected.
        expected: usize,
        /// Extents given.
        found: usize,
    },
    /// An extent failed to parse or was zero.
    BadExtent(String),
    /// Unknown boundary condition.
    BadBoundary(String),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::UnknownFamily(s) => {
                write!(f, "unknown lattice '{s}' (chain | square | cubic | honeycomb)")
            }
            SpecError::WrongArity { family, expected, found } => {
                write!(f, "{family} needs {expected} extents, got {found}")
            }
            SpecError::BadExtent(s) => write!(f, "bad extent '{s}' (positive integer)"),
            SpecError::BadBoundary(s) => {
                write!(f, "bad boundary '{s}' (open | periodic)")
            }
        }
    }
}

impl std::error::Error for SpecError {}

/// A parsed lattice description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LatticeSpec {
    /// 1D chain.
    Chain(usize),
    /// 2D square lattice.
    Square(usize, usize),
    /// 3D cubic lattice.
    Cubic(usize, usize, usize),
    /// Honeycomb lattice (unit cells).
    Honeycomb(usize, usize),
}

impl LatticeSpec {
    /// Parses `family:l1[,l2[,l3]]`.
    ///
    /// # Errors
    /// [`SpecError`] describing the problem.
    pub fn parse(s: &str) -> Result<Self, SpecError> {
        let (family, rest) = s.split_once(':').unwrap_or((s, ""));
        let extents: Vec<usize> = if rest.is_empty() {
            Vec::new()
        } else {
            rest.split(',')
                .map(|p| {
                    p.trim()
                        .parse::<usize>()
                        .ok()
                        .filter(|&v| v > 0)
                        .ok_or_else(|| SpecError::BadExtent(p.into()))
                })
                .collect::<Result<_, _>>()?
        };
        let arity = |family: &'static str, n: usize| {
            if extents.len() == n {
                Ok(())
            } else {
                Err(SpecError::WrongArity { family, expected: n, found: extents.len() })
            }
        };
        match family {
            "chain" => {
                arity("chain", 1)?;
                Ok(LatticeSpec::Chain(extents[0]))
            }
            "square" => {
                arity("square", 2)?;
                Ok(LatticeSpec::Square(extents[0], extents[1]))
            }
            "cubic" => {
                arity("cubic", 3)?;
                Ok(LatticeSpec::Cubic(extents[0], extents[1], extents[2]))
            }
            "honeycomb" => {
                arity("honeycomb", 2)?;
                Ok(LatticeSpec::Honeycomb(extents[0], extents[1]))
            }
            other => Err(SpecError::UnknownFamily(other.into())),
        }
    }

    /// Number of sites this spec produces.
    pub fn num_sites(&self) -> usize {
        match *self {
            LatticeSpec::Chain(l) => l,
            LatticeSpec::Square(a, b) => a * b,
            LatticeSpec::Cubic(a, b, c) => a * b * c,
            LatticeSpec::Honeycomb(a, b) => 2 * a * b,
        }
    }

    /// Builds the Hamiltonian with hopping `t`, the given on-site term,
    /// and boundary condition.
    pub fn build(&self, t: f64, onsite: OnSite, bc: Boundary) -> CsrMatrix {
        match *self {
            LatticeSpec::Chain(l) => {
                TightBinding::new(HypercubicLattice::chain(l, bc), t, onsite).build_csr()
            }
            LatticeSpec::Square(a, b) => {
                TightBinding::new(HypercubicLattice::square(a, b, bc), t, onsite).build_csr()
            }
            LatticeSpec::Cubic(a, b, c) => {
                TightBinding::new(HypercubicLattice::cubic(a, b, c, bc), t, onsite).build_csr()
            }
            LatticeSpec::Honeycomb(a, b) => {
                // Honeycomb builder has no on-site hook yet: apply disorder
                // by adding the diagonal afterwards.
                let h = HoneycombLattice::new(a, b, bc).hamiltonian(t);
                match onsite {
                    OnSite::Uniform(0.0) => h,
                    _ => add_diagonal(&h, &onsite_energies(self.num_sites(), onsite)),
                }
            }
        }
    }

    /// Builds the Hamiltonian in the requested storage format.
    ///
    /// Unlike [`SparseMatrix::from_csr`], this knows the generating
    /// geometry, so [`MatrixFormat::Stencil`] produces a genuine
    /// matrix-free operator (for every family — honeycomb included). All
    /// formats apply bitwise-identically to the CSR build.
    pub fn build_format(
        &self,
        t: f64,
        onsite: OnSite,
        bc: Boundary,
        format: MatrixFormat,
    ) -> SparseMatrix {
        match (self.clone(), format) {
            (LatticeSpec::Chain(l), _) => {
                TightBinding::new(HypercubicLattice::chain(l, bc), t, onsite).build_format(format)
            }
            (LatticeSpec::Square(a, b), _) => {
                TightBinding::new(HypercubicLattice::square(a, b, bc), t, onsite)
                    .build_format(format)
            }
            (LatticeSpec::Cubic(a, b, c), _) => {
                TightBinding::new(HypercubicLattice::cubic(a, b, c, bc), t, onsite)
                    .build_format(format)
            }
            (LatticeSpec::Honeycomb(a, b), MatrixFormat::Stencil) => {
                SparseMatrix::Stencil(self.honeycomb_stencil(a, b, t, onsite, bc))
            }
            (LatticeSpec::Honeycomb(..), _) => {
                SparseMatrix::from_csr(self.build(t, onsite, bc), format)
            }
        }
    }

    /// Honeycomb stencil mirroring [`Self::build`]'s CSR exactly: the
    /// `add_diagonal` path stores every diagonal entry whenever the on-site
    /// term is not identically zero, so the stencil does the same.
    fn honeycomb_stencil(
        &self,
        lx: usize,
        ly: usize,
        t: f64,
        onsite: OnSite,
        bc: Boundary,
    ) -> StencilOp {
        let geometry = StencilGeometry::Honeycomb { lx, ly, periodic: bc == Boundary::Periodic };
        let n = self.num_sites();
        match onsite {
            OnSite::Uniform(0.0) => StencilOp::new(geometry, t, vec![0.0; n], false),
            _ => StencilOp::new(geometry, t, onsite_energies(n, onsite), true),
        }
    }
}

fn onsite_energies(n: usize, onsite: OnSite) -> Vec<f64> {
    // Reuse the TightBinding sampler through a throwaway chain model of the
    // same size so disorder seeding matches the library convention.
    TightBinding::new(HypercubicLattice::chain(n, Boundary::Open), 0.0, onsite).onsite_energies()
}

fn add_diagonal(h: &CsrMatrix, diag: &[f64]) -> CsrMatrix {
    let mut coo = kpm_linalg::CooMatrix::with_capacity(h.nrows(), h.ncols(), h.nnz() + diag.len());
    for (i, &d) in diag.iter().enumerate() {
        for (j, v) in h.row_entries(i) {
            coo.push(i, j, v).expect("in range");
        }
        coo.push(i, i, d).expect("in range");
    }
    coo.to_csr()
}

/// Parses `open | periodic`.
///
/// # Errors
/// [`SpecError::BadBoundary`] otherwise.
pub fn parse_boundary(s: &str) -> Result<Boundary, SpecError> {
    match s {
        "open" => Ok(Boundary::Open),
        "periodic" => Ok(Boundary::Periodic),
        other => Err(SpecError::BadBoundary(other.into())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_families() {
        assert_eq!(LatticeSpec::parse("chain:100").unwrap(), LatticeSpec::Chain(100));
        assert_eq!(LatticeSpec::parse("square:8,6").unwrap(), LatticeSpec::Square(8, 6));
        assert_eq!(LatticeSpec::parse("cubic:10,10,10").unwrap(), LatticeSpec::Cubic(10, 10, 10));
        assert_eq!(LatticeSpec::parse("honeycomb:12,9").unwrap(), LatticeSpec::Honeycomb(12, 9));
    }

    #[test]
    fn num_sites() {
        assert_eq!(LatticeSpec::Cubic(10, 10, 10).num_sites(), 1000);
        assert_eq!(LatticeSpec::Honeycomb(4, 5).num_sites(), 40);
    }

    #[test]
    fn rejects_bad_specs() {
        assert!(matches!(LatticeSpec::parse("kagome:3,3"), Err(SpecError::UnknownFamily(_))));
        assert!(matches!(
            LatticeSpec::parse("cubic:3,3"),
            Err(SpecError::WrongArity { expected: 3, found: 2, .. })
        ));
        assert!(matches!(LatticeSpec::parse("chain:zero"), Err(SpecError::BadExtent(_))));
        assert!(matches!(LatticeSpec::parse("chain:0"), Err(SpecError::BadExtent(_))));
        assert!(matches!(LatticeSpec::parse("chain"), Err(SpecError::WrongArity { .. })));
    }

    #[test]
    fn boundary_parsing() {
        assert_eq!(parse_boundary("open").unwrap(), Boundary::Open);
        assert_eq!(parse_boundary("periodic").unwrap(), Boundary::Periodic);
        assert!(parse_boundary("twisted").is_err());
    }

    #[test]
    fn build_produces_expected_hamiltonians() {
        let h = LatticeSpec::parse("cubic:4,4,4").unwrap().build(
            1.0,
            OnSite::Uniform(0.0),
            Boundary::Periodic,
        );
        assert_eq!(h.nrows(), 64);
        assert!(h.is_symmetric(0.0));

        let g = LatticeSpec::parse("honeycomb:4,4").unwrap().build(
            1.0,
            OnSite::Uniform(0.0),
            Boundary::Periodic,
        );
        assert_eq!(g.nrows(), 32);
        assert_eq!(g.nnz(), 3 * 32);
    }

    #[test]
    fn honeycomb_disorder_adds_diagonal() {
        let clean = LatticeSpec::Honeycomb(3, 3).build(1.0, OnSite::Uniform(0.0), Boundary::Open);
        let dirty = LatticeSpec::Honeycomb(3, 3).build(
            1.0,
            OnSite::Disorder { width: 2.0, seed: 1 },
            Boundary::Open,
        );
        assert!(dirty.is_symmetric(0.0));
        assert_eq!(dirty.nnz(), clean.nnz() + 18, "one diagonal entry per site");
        assert!((0..18).any(|i| dirty.get(i, i) != 0.0));
    }

    #[test]
    fn spec_errors_display() {
        assert!(SpecError::UnknownFamily("x".into()).to_string().contains("honeycomb"));
        assert!(SpecError::BadBoundary("x".into()).to_string().contains("periodic"));
    }
}
