//! Hypercubic lattice geometry: site indexing and neighbour enumeration for
//! chains (1D), square lattices (2D), simple-cubic lattices (3D), and any
//! higher dimension.

/// Boundary condition along one lattice direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Boundary {
    /// No wrap-around bond between site `L-1` and site `0`.
    Open,
    /// Wrap-around bond (ring / torus).
    Periodic,
}

/// A `d`-dimensional hypercubic lattice with per-direction extents and
/// boundary conditions. Sites are indexed row-major: index
/// `i = x_0 + L_0 * (x_1 + L_1 * (x_2 + ...))`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HypercubicLattice {
    dims: Vec<usize>,
    boundary: Vec<Boundary>,
}

impl HypercubicLattice {
    /// Builds a lattice with the same boundary condition in every direction.
    ///
    /// # Panics
    /// Panics if `dims` is empty or any extent is zero.
    pub fn new(dims: &[usize], boundary: Boundary) -> Self {
        Self::with_boundaries(dims, &vec![boundary; dims.len()])
    }

    /// Builds a lattice with per-direction boundary conditions.
    ///
    /// # Panics
    /// Panics if `dims` is empty, any extent is zero, or the two slices have
    /// different lengths.
    pub fn with_boundaries(dims: &[usize], boundary: &[Boundary]) -> Self {
        assert!(!dims.is_empty(), "lattice must have at least one dimension");
        assert!(dims.iter().all(|&l| l > 0), "every extent must be positive");
        assert_eq!(dims.len(), boundary.len(), "dims/boundary length mismatch");
        Self { dims: dims.to_vec(), boundary: boundary.to_vec() }
    }

    /// 1D chain of `l` sites.
    pub fn chain(l: usize, boundary: Boundary) -> Self {
        Self::new(&[l], boundary)
    }

    /// 2D square lattice `lx x ly`.
    pub fn square(lx: usize, ly: usize, boundary: Boundary) -> Self {
        Self::new(&[lx, ly], boundary)
    }

    /// 3D simple-cubic lattice `lx x ly x lz` — the paper's geometry.
    pub fn cubic(lx: usize, ly: usize, lz: usize, boundary: Boundary) -> Self {
        Self::new(&[lx, ly, lz], boundary)
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.dims.len()
    }

    /// Extents per dimension.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Boundary condition per dimension.
    pub fn boundaries(&self) -> &[Boundary] {
        &self.boundary
    }

    /// Total number of sites `D = Π L_k` — the paper's `H_SIZE`.
    pub fn num_sites(&self) -> usize {
        self.dims.iter().product()
    }

    /// Converts coordinates to the flat site index.
    ///
    /// # Panics
    /// Panics if `coords` has wrong length or any coordinate is out of range.
    pub fn site_index(&self, coords: &[usize]) -> usize {
        assert_eq!(coords.len(), self.ndim(), "coordinate arity mismatch");
        let mut idx = 0usize;
        for (k, (&c, &l)) in coords.iter().zip(&self.dims).enumerate().rev() {
            assert!(c < l, "coordinate {c} out of range in dimension {k} (extent {l})");
            idx = idx * l + c;
        }
        idx
    }

    /// Converts a flat site index back to coordinates.
    ///
    /// # Panics
    /// Panics if `index >= num_sites()`.
    pub fn coordinates(&self, index: usize) -> Vec<usize> {
        assert!(index < self.num_sites(), "site index {index} out of range");
        let mut rem = index;
        let mut coords = Vec::with_capacity(self.ndim());
        for &l in &self.dims {
            coords.push(rem % l);
            rem /= l;
        }
        coords
    }

    /// Nearest neighbours of a site, in the `+k` and `-k` direction for each
    /// dimension `k`, respecting boundary conditions. Each undirected bond
    /// appears once from each endpoint; the same neighbour is **not**
    /// repeated if the lattice direction has extent 2 with periodic wrap
    /// (where `+k` and `-k` coincide) or extent 1 (self-loops are skipped).
    pub fn neighbors(&self, index: usize) -> Vec<usize> {
        self.axial_neighbors(index, 1)
    }

    /// Sites exactly `step` lattice spacings away *along one axis* (the
    /// `±step` offsets per dimension), respecting boundary conditions.
    /// `step = 1` gives the nearest neighbours; `step = 2` the axial
    /// next-nearest neighbours used by [`crate::TightBinding`]'s `t'` term.
    ///
    /// # Panics
    /// Panics if `step == 0`.
    pub fn axial_neighbors(&self, index: usize, step: usize) -> Vec<usize> {
        assert!(step > 0, "step must be positive");
        let coords = self.coordinates(index);
        let mut out = Vec::with_capacity(2 * self.ndim());
        for k in 0..self.ndim() {
            let l = self.dims[k];
            if l == 1 {
                continue; // self-loop; no hopping term
            }
            let push_site = |c_new: usize, out: &mut Vec<usize>| {
                let mut c2 = coords.clone();
                c2[k] = c_new;
                let j = self.site_index(&c2);
                if j != index && !out.contains(&j) {
                    out.push(j);
                }
            };
            // +k direction
            if coords[k] + step < l {
                push_site(coords[k] + step, &mut out);
            } else if self.boundary[k] == Boundary::Periodic {
                push_site((coords[k] + step) % l, &mut out);
            }
            // -k direction
            if coords[k] >= step {
                push_site(coords[k] - step, &mut out);
            } else if self.boundary[k] == Boundary::Periodic {
                let wrapped = (coords[k] + l - step % l) % l;
                push_site(wrapped, &mut out);
            }
        }
        out
    }

    /// Total number of undirected nearest-neighbour bonds.
    pub fn num_bonds(&self) -> usize {
        let degree_sum: usize = (0..self.num_sites()).map(|i| self.neighbors(i).len()).sum();
        degree_sum / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        let lat = HypercubicLattice::cubic(3, 4, 5, Boundary::Periodic);
        assert_eq!(lat.num_sites(), 60);
        for i in 0..lat.num_sites() {
            assert_eq!(lat.site_index(&lat.coordinates(i)), i);
        }
    }

    #[test]
    fn row_major_order() {
        let lat = HypercubicLattice::square(3, 2, Boundary::Open);
        assert_eq!(lat.site_index(&[0, 0]), 0);
        assert_eq!(lat.site_index(&[1, 0]), 1);
        assert_eq!(lat.site_index(&[2, 0]), 2);
        assert_eq!(lat.site_index(&[0, 1]), 3);
    }

    #[test]
    fn chain_neighbors_open_and_periodic() {
        let open = HypercubicLattice::chain(5, Boundary::Open);
        assert_eq!(open.neighbors(0), vec![1]);
        assert_eq!(open.neighbors(2), vec![3, 1]);
        assert_eq!(open.neighbors(4), vec![3]);

        let per = HypercubicLattice::chain(5, Boundary::Periodic);
        let mut n0 = per.neighbors(0);
        n0.sort_unstable();
        assert_eq!(n0, vec![1, 4]);
    }

    #[test]
    fn cubic_interior_site_has_six_neighbors() {
        let lat = HypercubicLattice::cubic(4, 4, 4, Boundary::Open);
        let center = lat.site_index(&[1, 2, 1]);
        assert_eq!(lat.neighbors(center).len(), 6);
        // Corner of the open lattice has only three.
        assert_eq!(lat.neighbors(lat.site_index(&[0, 0, 0])).len(), 3);
    }

    #[test]
    fn periodic_cubic_every_site_has_six_neighbors() {
        let lat = HypercubicLattice::cubic(3, 3, 3, Boundary::Periodic);
        for i in 0..lat.num_sites() {
            assert_eq!(lat.neighbors(i).len(), 6, "site {i}");
        }
    }

    #[test]
    fn length_two_periodic_does_not_duplicate_neighbor() {
        // With L=2 periodic, +1 and -1 reach the same site: one bond only.
        let lat = HypercubicLattice::chain(2, Boundary::Periodic);
        assert_eq!(lat.neighbors(0), vec![1]);
        assert_eq!(lat.neighbors(1), vec![0]);
    }

    #[test]
    fn length_one_dimension_has_no_bonds() {
        let lat = HypercubicLattice::new(&[1, 3], Boundary::Periodic);
        // Only the extent-3 direction contributes.
        for i in 0..3 {
            assert_eq!(lat.neighbors(i).len(), 2, "site {i}");
        }
    }

    #[test]
    fn bond_counts() {
        // Open chain of L: L-1 bonds; periodic: L (for L > 2).
        assert_eq!(HypercubicLattice::chain(6, Boundary::Open).num_bonds(), 5);
        assert_eq!(HypercubicLattice::chain(6, Boundary::Periodic).num_bonds(), 6);
        // Open LxM square: L(M-1) + M(L-1).
        assert_eq!(HypercubicLattice::square(3, 4, Boundary::Open).num_bonds(), 3 * 3 + 4 * 2);
        // Periodic cubic L^3: 3 L^3 bonds.
        assert_eq!(HypercubicLattice::cubic(3, 3, 3, Boundary::Periodic).num_bonds(), 81);
    }

    #[test]
    fn mixed_boundaries() {
        // Cylinder: periodic in x, open in y.
        let lat =
            HypercubicLattice::with_boundaries(&[4, 3], &[Boundary::Periodic, Boundary::Open]);
        // Site on the open edge: 2 (x-ring) + 1 (y).
        assert_eq!(lat.neighbors(lat.site_index(&[0, 0])).len(), 3);
        // Interior in y: 2 + 2.
        assert_eq!(lat.neighbors(lat.site_index(&[0, 1])).len(), 4);
    }

    #[test]
    #[should_panic(expected = "extent must be positive")]
    fn zero_extent_rejected() {
        let _ = HypercubicLattice::new(&[3, 0], Boundary::Open);
    }

    #[test]
    #[should_panic(expected = "at least one dimension")]
    fn empty_dims_rejected() {
        let _ = HypercubicLattice::new(&[], Boundary::Open);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn coordinate_out_of_range_rejected() {
        let lat = HypercubicLattice::square(2, 2, Boundary::Open);
        let _ = lat.site_index(&[2, 0]);
    }
}
