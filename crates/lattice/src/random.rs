//! Random dense symmetric Hamiltonians.
//!
//! The paper's Figs. 7 and 8 sweeps treat `H~` as a *dense* matrix ("all the
//! elements in the H~ matrix are applied to all the calculations"). The
//! figures are timing studies, so the actual entries only need to form a
//! valid symmetric matrix; we generate a reproducible GOE-like dense matrix
//! so the same sweeps also produce a physically meaningful DoS (the Wigner
//! semicircle) that examples and tests can check.

use kpm_linalg::dense::DenseMatrix;
use rand::distributions::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A reproducible dense symmetric `n x n` matrix with i.i.d. entries uniform
/// in `[-scale, scale]` (up to symmetrization `A <- (A + A^T)/2`-style
/// construction: we draw the upper triangle and mirror it).
///
/// For large `n` its spectral density approaches the Wigner semicircle of
/// radius `≈ 2 scale sqrt(n / 3)`.
///
/// # Panics
/// Panics if `n == 0` or `scale <= 0`.
pub fn dense_random_symmetric(n: usize, scale: f64, seed: u64) -> DenseMatrix {
    assert!(n > 0, "matrix dimension must be positive");
    assert!(scale > 0.0, "scale must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let dist = Uniform::new_inclusive(-scale, scale);
    let mut m = DenseMatrix::zeros(n, n);
    for i in 0..n {
        for j in i..n {
            let v = dist.sample(&mut rng);
            m.set(i, j, v);
            m.set(j, i, v);
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use kpm_linalg::eigen::jacobi_eigenvalues;

    #[test]
    fn symmetric_and_reproducible() {
        let a = dense_random_symmetric(16, 1.0, 99);
        let b = dense_random_symmetric(16, 1.0, 99);
        let c = dense_random_symmetric(16, 1.0, 100);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.is_symmetric(0.0));
    }

    #[test]
    fn entries_bounded_by_scale() {
        let m = dense_random_symmetric(20, 0.5, 1);
        assert!(m.data().iter().all(|&v| v.abs() <= 0.5));
    }

    #[test]
    fn spectrum_roughly_semicircular() {
        // Crude check: extremal eigenvalues near ±2 scale sqrt(n/3) within
        // a generous band, and the middle half of the spectrum holds more
        // states than the outer half (semicircle bulge).
        let n = 64;
        let m = dense_random_symmetric(n, 1.0, 7);
        let eig = jacobi_eigenvalues(&m).unwrap();
        let radius = 2.0 * (n as f64 / 3.0).sqrt();
        assert!(eig[0] > -1.6 * radius && eig[0] < -0.5 * radius, "lo {}", eig[0]);
        let hi = eig[n - 1];
        assert!(hi < 1.6 * radius && hi > 0.5 * radius, "hi {hi}");
        let half = radius / 2.0;
        let inner = eig.iter().filter(|e| e.abs() < half).count();
        assert!(inner * 2 > n, "semicircle bulge missing: {inner}/{n} inside half-radius");
    }

    #[test]
    #[should_panic(expected = "dimension must be positive")]
    fn zero_dim_rejected() {
        let _ = dense_random_symmetric(0, 1.0, 0);
    }
}
