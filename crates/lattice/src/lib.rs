//! Tight-binding lattice Hamiltonian builders.
//!
//! The paper evaluates the KPM on "a lattice model made of cubes in
//! 10×10×10 where an electron is placed in each corner" — a simple-cubic
//! tight-binding model whose Hamiltonian is sparse, symmetric, has a zero
//! diagonal (stored explicitly) and `-1` hopping to each nearest neighbour.
//! This crate builds that model, its 1D/2D relatives, and disordered
//! (Anderson) variants used by the example applications.
//!
//! The builders produce [`kpm_linalg::CsrMatrix`] Hamiltonians; dense copies
//! for the paper's Figs. 7–8 "CRS not applied" runs are obtained with
//! [`kpm_linalg::CsrMatrix::to_dense`] or generated directly as random dense
//! symmetric matrices via [`dense_random_symmetric`].

pub mod honeycomb;
pub mod hypercubic;
pub mod model;
pub mod paper;
pub mod random;
pub mod spec;

pub use honeycomb::{HoneycombLattice, Sublattice};
pub use hypercubic::{Boundary, HypercubicLattice};
pub use model::{OnSite, TightBinding};
pub use paper::{paper_cubic_hamiltonian, paper_cubic_lattice, PAPER_CUBIC_SIDE};
pub use random::dense_random_symmetric;
pub use spec::{parse_boundary, LatticeSpec, SpecError};
