//! The paper's exact Fig. 5 / Fig. 6 workload.
//!
//! Section IV-A: "a lattice model made of cubes in 10×10×10 where an
//! electron is placed in each corner. This model needs a Hamiltonian matrix
//! sized in 1000×1000 … 1) it is sparse and symmetric and 2) any row
//! contains seven non-zero elements with the condition where all diagonal
//! ones are zeros and the other non-zero ones are −1s."
//!
//! A simple-cubic site has six nearest neighbours, so "seven elements per
//! row" is reproduced by storing the zero diagonal explicitly alongside the
//! six `−1` hoppings — which is what this module builds (with periodic
//! boundaries, so *every* row has exactly seven stored entries).

use crate::hypercubic::{Boundary, HypercubicLattice};
use crate::model::{OnSite, TightBinding};
use kpm_linalg::csr::CsrMatrix;

/// Side length of the paper's cubic lattice.
pub const PAPER_CUBIC_SIDE: usize = 10;

/// The paper's 10×10×10 periodic simple-cubic lattice (D = 1000).
pub fn paper_cubic_lattice() -> HypercubicLattice {
    HypercubicLattice::cubic(
        PAPER_CUBIC_SIDE,
        PAPER_CUBIC_SIDE,
        PAPER_CUBIC_SIDE,
        Boundary::Periodic,
    )
}

/// The paper's 1000×1000 Hamiltonian: zero diagonal stored explicitly,
/// six `−1` hoppings per row — seven stored elements per row.
pub fn paper_cubic_hamiltonian() -> CsrMatrix {
    TightBinding::new(paper_cubic_lattice(), 1.0, OnSite::Uniform(0.0))
        .store_zero_diagonal(true)
        .build_csr()
}

/// A scaled variant of the paper's model with side length `l` — used by
/// sweeps that vary `H_SIZE` while keeping the paper's structure.
pub fn scaled_cubic_hamiltonian(l: usize) -> CsrMatrix {
    TightBinding::new(
        HypercubicLattice::cubic(l, l, l, Boundary::Periodic),
        1.0,
        OnSite::Uniform(0.0),
    )
    .store_zero_diagonal(true)
    .build_csr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kpm_linalg::gershgorin::gershgorin_csr;

    #[test]
    fn matches_every_claim_in_section_iv_a() {
        let h = paper_cubic_hamiltonian();
        // "Hamiltonian matrix sized in 1000x1000"
        assert_eq!(h.nrows(), 1000);
        assert_eq!(h.ncols(), 1000);
        // "it is sparse and symmetric"
        assert!(h.is_symmetric(0.0));
        // "any row contains seven non-zero [stored] elements"
        for i in 0..h.nrows() {
            assert_eq!(h.row_entries(i).count(), 7, "row {i}");
        }
        // "all diagonal ones are zeros and the other non-zero ones are -1s"
        for i in 0..h.nrows() {
            for (j, v) in h.row_entries(i) {
                if j == i {
                    assert_eq!(v, 0.0, "diagonal of row {i}");
                } else {
                    assert_eq!(v, -1.0, "off-diagonal ({i}, {j})");
                }
            }
        }
    }

    #[test]
    fn gershgorin_gives_the_expected_six_band() {
        // Zero diagonal + six |−1| entries: bounds are exactly [-6, 6].
        let b = gershgorin_csr(&paper_cubic_hamiltonian());
        assert_eq!(b.lower, -6.0);
        assert_eq!(b.upper, 6.0);
    }

    #[test]
    fn scaled_variant_keeps_structure() {
        let h = scaled_cubic_hamiltonian(4);
        assert_eq!(h.nrows(), 64);
        for i in 0..h.nrows() {
            assert_eq!(h.row_entries(i).count(), 7, "row {i}");
        }
        assert!(h.is_symmetric(0.0));
    }
}
