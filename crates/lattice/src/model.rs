//! Tight-binding Hamiltonian assembly on a hypercubic lattice.
//!
//! `H = Σ_i ε_i |i><i|  -  t Σ_<ij> ( |i><j| + |j><i| )`
//!
//! with on-site energies `ε_i` (uniform or Anderson-disordered) and
//! nearest-neighbour hopping amplitude `t`.

use crate::hypercubic::{Boundary, HypercubicLattice};
use kpm_linalg::coo::CooMatrix;
use kpm_linalg::csr::CsrMatrix;
use kpm_linalg::ell::EllMatrix;
use kpm_linalg::sparse::{MatrixFormat, SparseMatrix};
use kpm_linalg::stencil::{StencilGeometry, StencilOp};
use rand::distributions::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// On-site energy specification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OnSite {
    /// Every site has the same energy `ε`.
    Uniform(f64),
    /// Anderson disorder: `ε_i` i.i.d. uniform in `[-w/2, w/2]`, drawn
    /// deterministically from `seed`.
    Disorder {
        /// Disorder strength `W` (full width of the box distribution).
        width: f64,
        /// RNG seed so disorder realizations are reproducible.
        seed: u64,
    },
}

/// A tight-binding model: geometry + couplings.
#[derive(Debug, Clone)]
pub struct TightBinding {
    lattice: HypercubicLattice,
    hopping: f64,
    next_nearest: f64,
    onsite: OnSite,
    store_zero_diagonal: bool,
}

impl TightBinding {
    /// Model with hopping `t` and on-site term; the Hamiltonian's hopping
    /// entries are `-t` (physics sign convention).
    pub fn new(lattice: HypercubicLattice, hopping: f64, onsite: OnSite) -> Self {
        Self { lattice, hopping, next_nearest: 0.0, onsite, store_zero_diagonal: false }
    }

    /// Adds next-nearest-neighbour hopping `t'` along each axis (entries
    /// `-t'` between sites two steps apart in one direction). A nonzero
    /// `t'` breaks particle–hole symmetry — useful for testing
    /// asymmetric-band physics (thermal, spectral).
    pub fn with_next_nearest(mut self, t_prime: f64) -> Self {
        self.next_nearest = t_prime;
        self
    }

    /// Stores the diagonal explicitly even when it is identically zero.
    ///
    /// The paper's matrix keeps the zero diagonal stored — that is how its
    /// rows come to hold *seven* elements on a 6-neighbour cubic lattice —
    /// so the reproduction enables this for the Fig. 5 workload.
    pub fn store_zero_diagonal(mut self, yes: bool) -> Self {
        self.store_zero_diagonal = yes;
        self
    }

    /// The lattice geometry.
    pub fn lattice(&self) -> &HypercubicLattice {
        &self.lattice
    }

    /// Hopping amplitude `t`.
    pub fn hopping(&self) -> f64 {
        self.hopping
    }

    /// On-site specification.
    pub fn onsite(&self) -> OnSite {
        self.onsite
    }

    /// Realized on-site energies, one per site.
    pub fn onsite_energies(&self) -> Vec<f64> {
        let n = self.lattice.num_sites();
        match self.onsite {
            OnSite::Uniform(e) => vec![e; n],
            OnSite::Disorder { width, seed } => {
                let mut rng = StdRng::seed_from_u64(seed);
                let dist = Uniform::new_inclusive(-width / 2.0, width / 2.0);
                (0..n).map(|_| dist.sample(&mut rng)).collect()
            }
        }
    }

    /// Assembles the Hamiltonian in CSR form.
    pub fn build_csr(&self) -> CsrMatrix {
        let n = self.lattice.num_sites();
        let energies = self.onsite_energies();
        let mut coo = CooMatrix::with_capacity(n, n, n * (2 * self.lattice.ndim() + 1));
        for (i, &e) in energies.iter().enumerate() {
            if e != 0.0 || self.store_zero_diagonal {
                coo.push(i, i, e).expect("diagonal in range");
            }
            for j in self.lattice.neighbors(i) {
                // Each undirected bond is visited from both endpoints, so we
                // push only the directed (i, j) entry here; (j, i) arrives
                // when the loop reaches site j.
                coo.push(i, j, -self.hopping).expect("neighbor in range");
            }
            if self.next_nearest != 0.0 {
                for j in self.lattice.axial_neighbors(i, 2) {
                    coo.push(i, j, -self.next_nearest).expect("neighbor in range");
                }
            }
        }
        coo.to_csr()
    }

    /// Assembles the Hamiltonian in padded ELL form (same entries as
    /// [`Self::build_csr`], bitwise-identical application).
    pub fn build_ell(&self) -> EllMatrix {
        EllMatrix::from_csr(&self.build_csr())
    }

    /// Assembles the Hamiltonian as a matrix-free stencil, or `None` when
    /// the model has terms the stencil cannot express (next-nearest
    /// hopping) or the lattice exceeds the stencil's dimension limit.
    pub fn build_stencil(&self) -> Option<StencilOp> {
        if self.next_nearest != 0.0 || self.lattice.ndim() > 8 {
            return None;
        }
        let geometry = StencilGeometry::Hypercubic {
            dims: self.lattice.dims().to_vec(),
            periodic: self.lattice.boundaries().iter().map(|&b| b == Boundary::Periodic).collect(),
        };
        Some(StencilOp::new(
            geometry,
            self.hopping,
            self.onsite_energies(),
            self.store_zero_diagonal,
        ))
    }

    /// Assembles the Hamiltonian in the requested storage format.
    ///
    /// [`MatrixFormat::Stencil`] falls back to CSR when
    /// [`Self::build_stencil`] cannot express the model.
    pub fn build_format(&self, format: MatrixFormat) -> SparseMatrix {
        match format {
            MatrixFormat::Csr => SparseMatrix::Csr(self.build_csr()),
            MatrixFormat::Ell => SparseMatrix::Ell(self.build_ell()),
            MatrixFormat::Stencil => match self.build_stencil() {
                Some(s) => SparseMatrix::Stencil(s),
                None => SparseMatrix::Csr(self.build_csr()),
            },
            MatrixFormat::Auto => SparseMatrix::auto(self.build_csr()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hypercubic::Boundary;
    use kpm_linalg::eigen::jacobi_eigenvalues;
    use kpm_linalg::LinearOp;

    #[test]
    fn chain_hamiltonian_structure() {
        let tb = TightBinding::new(
            HypercubicLattice::chain(4, Boundary::Open),
            1.0,
            OnSite::Uniform(0.0),
        );
        let h = tb.build_csr();
        assert_eq!(h.nrows(), 4);
        assert_eq!(h.nnz(), 6); // 3 bonds x 2 directed entries, no diagonal
        assert_eq!(h.get(0, 1), -1.0);
        assert_eq!(h.get(1, 0), -1.0);
        assert_eq!(h.get(0, 0), 0.0);
        assert!(h.is_symmetric(0.0));
    }

    #[test]
    fn explicit_zero_diagonal_changes_storage_not_values() {
        let lat = HypercubicLattice::chain(4, Boundary::Periodic);
        let plain = TightBinding::new(lat.clone(), 1.0, OnSite::Uniform(0.0)).build_csr();
        let stored =
            TightBinding::new(lat, 1.0, OnSite::Uniform(0.0)).store_zero_diagonal(true).build_csr();
        assert_eq!(stored.nnz(), plain.nnz() + 4);
        assert_eq!(plain.to_dense(), stored.to_dense());
    }

    #[test]
    fn periodic_chain_spectrum_is_analytic() {
        // PBC chain: E_k = -2 t cos(2 pi k / L).
        let l = 8;
        let tb = TightBinding::new(
            HypercubicLattice::chain(l, Boundary::Periodic),
            1.0,
            OnSite::Uniform(0.0),
        );
        let h = tb.build_csr().to_dense();
        let eig = jacobi_eigenvalues(&h).unwrap();
        let mut expected: Vec<f64> = (0..l)
            .map(|k| -2.0 * (2.0 * std::f64::consts::PI * k as f64 / l as f64).cos())
            .collect();
        expected.sort_by(f64::total_cmp);
        for (a, b) in eig.iter().zip(&expected) {
            assert!((a - b).abs() < 1e-10, "{a} vs {b}");
        }
    }

    #[test]
    fn square_lattice_spectrum_is_separable() {
        // PBC square lattice: E = -2t (cos kx + cos ky).
        let l = 4;
        let tb = TightBinding::new(
            HypercubicLattice::square(l, l, Boundary::Periodic),
            1.0,
            OnSite::Uniform(0.0),
        );
        let eig = jacobi_eigenvalues(&tb.build_csr().to_dense()).unwrap();
        let mut expected = Vec::new();
        for kx in 0..l {
            for ky in 0..l {
                let e = -2.0
                    * ((2.0 * std::f64::consts::PI * kx as f64 / l as f64).cos()
                        + (2.0 * std::f64::consts::PI * ky as f64 / l as f64).cos());
                expected.push(e);
            }
        }
        expected.sort_by(f64::total_cmp);
        for (a, b) in eig.iter().zip(&expected) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn uniform_onsite_shifts_spectrum() {
        let lat = HypercubicLattice::chain(6, Boundary::Open);
        let h0 = TightBinding::new(lat.clone(), 1.0, OnSite::Uniform(0.0)).build_csr();
        let h1 = TightBinding::new(lat, 1.0, OnSite::Uniform(0.7)).build_csr();
        let e0 = jacobi_eigenvalues(&h0.to_dense()).unwrap();
        let e1 = jacobi_eigenvalues(&h1.to_dense()).unwrap();
        for (a, b) in e0.iter().zip(&e1) {
            assert!((a + 0.7 - b).abs() < 1e-10);
        }
    }

    #[test]
    fn disorder_is_reproducible_and_bounded() {
        let lat = HypercubicLattice::square(5, 5, Boundary::Periodic);
        let mk = |seed| {
            TightBinding::new(lat.clone(), 1.0, OnSite::Disorder { width: 2.0, seed })
                .onsite_energies()
        };
        let a = mk(42);
        let b = mk(42);
        let c = mk(43);
        assert_eq!(a, b, "same seed must give same disorder");
        assert_ne!(a, c, "different seeds must differ");
        assert!(a.iter().all(|&e| (-1.0..=1.0).contains(&e)));
        // Not all equal (vanishing probability).
        assert!(a.iter().any(|&e| (e - a[0]).abs() > 1e-12));
    }

    #[test]
    fn disordered_hamiltonian_is_symmetric_with_diagonal() {
        let lat = HypercubicLattice::cubic(3, 3, 3, Boundary::Periodic);
        let tb = TightBinding::new(lat, 1.0, OnSite::Disorder { width: 4.0, seed: 7 });
        let h = tb.build_csr();
        assert!(h.is_symmetric(0.0));
        // 6 neighbors + nonzero diagonal per row (diagonal ~ never exactly 0).
        assert_eq!(h.nnz(), 27 * 7);
        assert_eq!(h.dim(), 27);
    }

    #[test]
    fn hopping_amplitude_scales_entries() {
        let lat = HypercubicLattice::chain(3, Boundary::Open);
        let h = TightBinding::new(lat, 2.5, OnSite::Uniform(0.0)).build_csr();
        assert_eq!(h.get(0, 1), -2.5);
    }

    #[test]
    fn next_nearest_hopping_spectrum_is_analytic() {
        // PBC chain with t and t': E_k = -2t cos k - 2t' cos 2k.
        let l = 10;
        let (t, tp) = (1.0, 0.3);
        let h = TightBinding::new(
            HypercubicLattice::chain(l, Boundary::Periodic),
            t,
            OnSite::Uniform(0.0),
        )
        .with_next_nearest(tp)
        .build_csr();
        assert!(h.is_symmetric(0.0));
        assert_eq!(h.get(0, 2), -tp);
        assert_eq!(h.get(0, l - 2), -tp, "periodic wrap of the t' bond");
        let eig = jacobi_eigenvalues(&h.to_dense()).unwrap();
        let mut expected: Vec<f64> = (0..l)
            .map(|m| {
                let k = 2.0 * std::f64::consts::PI * m as f64 / l as f64;
                -2.0 * t * k.cos() - 2.0 * tp * (2.0 * k).cos()
            })
            .collect();
        expected.sort_by(f64::total_cmp);
        for (a, b) in eig.iter().zip(&expected) {
            assert!((a - b).abs() < 1e-10, "{a} vs {b}");
        }
    }

    #[test]
    fn next_nearest_breaks_particle_hole_symmetry() {
        let l = 12;
        let h = TightBinding::new(
            HypercubicLattice::chain(l, Boundary::Periodic),
            1.0,
            OnSite::Uniform(0.0),
        )
        .with_next_nearest(0.4)
        .build_csr();
        let eig = jacobi_eigenvalues(&h.to_dense()).unwrap();
        // Spectrum no longer symmetric about zero: the trace of H^1 is 0
        // but of the asymmetry shows in eigenvalue pairing.
        let paired = (0..l).all(|k| (eig[k] + eig[l - 1 - k]).abs() < 1e-9);
        assert!(!paired, "t' must break +-E pairing");
    }

    #[test]
    fn axial_neighbors_open_boundary_edges() {
        let lat = HypercubicLattice::chain(5, Boundary::Open);
        assert_eq!(lat.axial_neighbors(0, 2), vec![2]);
        assert_eq!(lat.axial_neighbors(2, 2), vec![4, 0]);
        assert_eq!(lat.axial_neighbors(4, 2), vec![2]);
        // Step beyond the lattice: nothing.
        assert!(lat.axial_neighbors(2, 5).is_empty());
    }
}
