//! Zero-cost-when-disabled observability for the KPM pipeline.
//!
//! The paper's entire evaluation is wall-clock timing of pipeline phases
//! (rescale, moment recursion, reconstruction — Figs. 5–8), so the
//! reproduction needs a way to see where time goes without perturbing the
//! numbers it is trying to measure. This crate provides that in the same
//! vendored-shim spirit as `vendor/*`: hand-rolled, no external
//! dependencies, and a single relaxed atomic load on every instrumentation
//! site when tracing is off.
//!
//! # Model
//!
//! - A **trace session** is started with [`TraceHandle::begin`] and closed
//!   with [`TraceHandle::finish`], which returns a [`TraceReport`]. At most
//!   one session is active per process; instrumentation is process-global.
//! - A **span** ([`span`] / [`span_labeled`]) is an RAII guard measuring one
//!   phase. Spans nest per thread: a span opened while another is open on
//!   the same thread records that span as its parent. Spans opened on other
//!   threads (worker pools, rayon) are recorded without a parent.
//! - A **counter** is either an ambient named tally ([`counter_add`], which
//!   only exists inside the active session) or a [`Counter`] cell that is
//!   always live (serve-style metrics) and mirrors into the session when
//!   tracing is enabled.
//!
//! # Example
//!
//! ```
//! let handle = kpm_obs::TraceHandle::begin();
//! {
//!     let _phase = kpm_obs::span("kpm.moments");
//!     kpm_obs::counter_add("kpm.realizations", 4);
//! }
//! let report = handle.finish();
//! assert_eq!(report.spans[0].name, "kpm.moments");
//! assert_eq!(report.counter("kpm.realizations"), Some(4));
//! ```

pub mod json;

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_SESSION_ID: AtomicU64 = AtomicU64::new(1);
static SESSION: Mutex<Option<Session>> = Mutex::new(None);

struct SpanRec {
    name: &'static str,
    detail: Option<String>,
    start_us: u64,
    dur_us: u64,
    closed: bool,
    parent: Option<usize>,
}

struct Session {
    id: u64,
    origin: Instant,
    spans: Vec<SpanRec>,
    counters: BTreeMap<String, u64>,
}

thread_local! {
    /// Per-thread stack of open spans: (session id, span index).
    static SPAN_STACK: RefCell<Vec<(u64, usize)>> = const { RefCell::new(Vec::new()) };
}

/// Returns `true` while a trace session is active.
///
/// Instrumentation sites may use this to skip work whose only purpose is
/// producing trace detail (e.g. formatting a label string).
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

fn lock_session() -> std::sync::MutexGuard<'static, Option<Session>> {
    // A panic while holding the lock only poisons trace bookkeeping, never
    // the computation being traced, so recover rather than propagate.
    SESSION.lock().unwrap_or_else(|e| e.into_inner())
}

/// Opens a span named `name`. Equivalent to [`span_labeled`] with no detail.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { slot: None };
    }
    open_span(name, None)
}

/// Opens a span with a free-form detail string (e.g. the CLI subcommand).
///
/// The detail is only formatted into the record when tracing is enabled, but
/// callers constructing an expensive `detail` should still guard on
/// [`enabled`] themselves.
#[inline]
pub fn span_labeled(name: &'static str, detail: &str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { slot: None };
    }
    open_span(name, Some(detail.to_string()))
}

fn open_span(name: &'static str, detail: Option<String>) -> SpanGuard {
    let mut guard = lock_session();
    let Some(session) = guard.as_mut() else {
        return SpanGuard { slot: None };
    };
    let id = session.id;
    let parent =
        SPAN_STACK.with(|s| s.borrow().last().filter(|(sid, _)| *sid == id).map(|&(_, idx)| idx));
    // Timestamps are assigned under the session lock, so indices in
    // `session.spans` are globally monotonic in `start_us` — the golden
    // trace test pins this ordering.
    let start_us = session.origin.elapsed().as_micros() as u64;
    session.spans.push(SpanRec { name, detail, start_us, dur_us: 0, closed: false, parent });
    let idx = session.spans.len() - 1;
    drop(guard);
    SPAN_STACK.with(|s| s.borrow_mut().push((id, idx)));
    SpanGuard { slot: Some((id, idx)) }
}

/// RAII guard returned by [`span`]; records the span duration on drop.
///
/// Guards belonging to a session that has since been finished (or replaced
/// by a newer [`TraceHandle::begin`]) become inert: dropping them touches
/// nothing.
#[must_use = "a span measures the scope it is alive in; binding it to `_` drops it immediately"]
pub struct SpanGuard {
    slot: Option<(u64, usize)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some((id, idx)) = self.slot else { return };
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if stack.last() == Some(&(id, idx)) {
                stack.pop();
            }
        });
        let mut guard = lock_session();
        if let Some(session) = guard.as_mut() {
            if session.id == id {
                let now = session.origin.elapsed().as_micros() as u64;
                let rec = &mut session.spans[idx];
                rec.dur_us = now.saturating_sub(rec.start_us);
                rec.closed = true;
            }
        }
    }
}

/// Adds `delta` to the named ambient counter of the active session.
///
/// A no-op (one relaxed atomic load) when tracing is disabled; the counter
/// springs into existence on first use.
#[inline]
pub fn counter_add(name: &str, delta: u64) {
    if !enabled() {
        return;
    }
    let mut guard = lock_session();
    if let Some(session) = guard.as_mut() {
        *session.counters.entry(name.to_string()).or_insert(0) += delta;
    }
}

/// Handle to an active trace session; finishing it yields the report.
pub struct TraceHandle {
    id: u64,
}

impl TraceHandle {
    /// Starts a new trace session, replacing any active one.
    ///
    /// Replacing invalidates the previous session's open [`SpanGuard`]s
    /// (they become inert) and discards its records. Tests sharing a
    /// process must serialize calls to `begin`/`finish`.
    pub fn begin() -> TraceHandle {
        let id = NEXT_SESSION_ID.fetch_add(1, Ordering::Relaxed);
        let mut guard = lock_session();
        *guard = Some(Session {
            id,
            origin: Instant::now(),
            spans: Vec::new(),
            counters: BTreeMap::new(),
        });
        drop(guard);
        ENABLED.store(true, Ordering::SeqCst);
        TraceHandle { id }
    }

    /// Ends the session and returns everything it recorded.
    ///
    /// Spans still open at this point (e.g. on other threads) are closed
    /// with a duration running to the finish instant. If a newer session
    /// has replaced this one, an empty report is returned and the newer
    /// session is left running.
    pub fn finish(self) -> TraceReport {
        let mut guard = lock_session();
        let owned = matches!(guard.as_ref(), Some(s) if s.id == self.id);
        if !owned {
            return TraceReport::default();
        }
        let session = guard.take().expect("session checked above");
        drop(guard);
        ENABLED.store(false, Ordering::SeqCst);

        let wall_us = session.origin.elapsed().as_micros() as u64;
        let spans = session
            .spans
            .into_iter()
            .map(|rec| TraceSpan {
                name: rec.name.to_string(),
                detail: rec.detail,
                start_us: rec.start_us,
                dur_us: if rec.closed { rec.dur_us } else { wall_us.saturating_sub(rec.start_us) },
                parent: rec.parent,
            })
            .collect();
        TraceReport { command: String::new(), wall_us, spans, counters: session.counters }
    }
}

/// One recorded span in a [`TraceReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpan {
    /// Phase name, e.g. `"kpm.moments"` (see the README span glossary).
    pub name: String,
    /// Optional free-form detail (e.g. the CLI subcommand).
    pub detail: Option<String>,
    /// Start offset from session begin, microseconds.
    pub start_us: u64,
    /// Duration, microseconds.
    pub dur_us: u64,
    /// Index into the report's `spans` of the enclosing span, if any.
    pub parent: Option<usize>,
}

/// Everything a finished trace session recorded.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceReport {
    /// The command or workload this trace covers (set by the producer).
    pub command: String,
    /// Wall time from `begin` to `finish`, microseconds.
    pub wall_us: u64,
    /// Recorded spans, in start order.
    pub spans: Vec<TraceSpan>,
    /// Ambient counters accumulated via [`counter_add`] (and mirrored
    /// [`Counter`] cells), keyed by name.
    pub counters: BTreeMap<String, u64>,
}

impl TraceReport {
    /// Sum of the durations of all spans named `name`, microseconds.
    pub fn span_total_us(&self, name: &str) -> u64 {
        self.spans.iter().filter(|s| s.name == name).map(|s| s.dur_us).sum()
    }

    /// Value of the named counter, if it was ever bumped.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// Sets a counter after the fact (used to fold derived gauges into the
    /// report before serialization).
    pub fn set_counter(&mut self, name: &str, value: u64) {
        self.counters.insert(name.to_string(), value);
    }

    /// Serializes the report to the versioned trace JSON schema.
    ///
    /// Schema (`version` 1): `command` (string), `wall_us` (integer),
    /// `spans` (array of `{name, detail?, start_us, dur_us, parent}` with
    /// `parent` an index or `null`), `counters` (object of integers).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.spans.len() * 96);
        out.push_str("{\n  \"version\": 1,\n  \"command\": ");
        out.push_str(&json::quote(&self.command));
        out.push_str(",\n  \"wall_us\": ");
        out.push_str(&self.wall_us.to_string());
        out.push_str(",\n  \"spans\": [");
        for (i, span) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"name\": ");
            out.push_str(&json::quote(&span.name));
            if let Some(detail) = &span.detail {
                out.push_str(", \"detail\": ");
                out.push_str(&json::quote(detail));
            }
            out.push_str(", \"start_us\": ");
            out.push_str(&span.start_us.to_string());
            out.push_str(", \"dur_us\": ");
            out.push_str(&span.dur_us.to_string());
            out.push_str(", \"parent\": ");
            match span.parent {
                Some(p) => out.push_str(&p.to_string()),
                None => out.push_str("null"),
            }
            out.push('}');
        }
        if !self.spans.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"counters\": {");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            out.push_str(&json::quote(name));
            out.push_str(": ");
            out.push_str(&value.to_string());
        }
        if !self.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }

    /// Writes [`TraceReport::to_json`] to `path`.
    pub fn write_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// A named, always-live counter cell (serve-style metric).
///
/// Unlike [`counter_add`], the cell accumulates whether or not tracing is
/// enabled, so instance-owned metrics (e.g. per-`BatchService`) stay exact.
/// While a trace session is active, every increment is additionally
/// mirrored into the session's ambient counter of the same name.
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
}

impl Counter {
    /// Creates a zeroed counter with the given canonical name.
    pub const fn new(name: &'static str) -> Counter {
        Counter { name, value: AtomicU64::new(0) }
    }

    /// The canonical metric name, e.g. `"serve.jobs.submitted"`.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `delta`.
    #[inline]
    pub fn add(&self, delta: u64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
        counter_add(self.name, delta);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A named, always-live up/down gauge cell (point-in-time metric).
///
/// Where a [`Counter`] only ever grows, a gauge tracks a level that rises
/// and falls — open network sessions, per-client in-flight jobs, queue
/// occupancy. Decrements saturate at zero rather than wrapping, so a
/// double-release bug reads as a stuck-low gauge instead of a number near
/// `u64::MAX`.
#[derive(Debug)]
pub struct Gauge {
    name: &'static str,
    value: AtomicU64,
}

impl Gauge {
    /// Creates a zeroed gauge with the given canonical name.
    pub const fn new(name: &'static str) -> Gauge {
        Gauge { name, value: AtomicU64::new(0) }
    }

    /// The canonical metric name, e.g. `"net.sessions.open"`.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Raises the level by one and returns the new value.
    #[inline]
    pub fn inc(&self) -> u64 {
        self.value.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Lowers the level by one, saturating at zero.
    #[inline]
    pub fn dec(&self) {
        // fetch_update never wraps below zero even under concurrent decs.
        let _ = self
            .value
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| Some(v.saturating_sub(1)));
    }

    /// Sets the level directly (e.g. mirroring a queue depth).
    #[inline]
    pub fn set(&self, value: u64) {
        self.value.store(value, Ordering::Relaxed);
    }

    /// Current level.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Lock-free log₂-bucketed latency histogram (microsecond resolution).
///
/// Bucket `i` counts samples with `floor(log2(µs)) == i`, saturating at the
/// top bucket; sub-microsecond samples land in bucket 0. Good enough for
/// order-of-magnitude queue-wait and execution-time quantiles without
/// allocation or locking on the hot path.
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; 32],
    sum_micros: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// Records one duration sample.
    pub fn record(&self, d: Duration) {
        let micros = d.as_micros().min(u128::from(u64::MAX)) as u64;
        let idx = if micros == 0 { 0 } else { (63 - micros.leading_zeros() as usize).min(31) };
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean of recorded samples (zero when empty).
    pub fn mean(&self) -> Duration {
        let n = self.count();
        if n == 0 {
            return Duration::ZERO;
        }
        Duration::from_micros(self.sum_micros.load(Ordering::Relaxed) / n)
    }

    /// Upper bound (in µs) of the bucket containing the `q`-quantile.
    ///
    /// Returns an exclusive power-of-two bound: e.g. `1024` means the
    /// quantile sample took less than 1024 µs.
    pub fn quantile_upper_micros(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let target = ((n as f64) * q.clamp(0.0, 1.0)).ceil() as u64;
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= target.max(1) {
                return 1u64 << (i + 1);
            }
        }
        u64::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Trace sessions are process-global; tests touching them serialize.
    static TRACE_TEST_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        TRACE_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_tracing_records_nothing() {
        let _lock = locked();
        assert!(!enabled());
        {
            let _s = span("kpm.moments");
            counter_add("kpm.realizations", 10);
        }
        let report = TraceHandle::begin().finish();
        assert!(report.spans.is_empty());
        assert!(report.counters.is_empty());
    }

    #[test]
    fn spans_nest_and_counters_accumulate() {
        let _lock = locked();
        let handle = TraceHandle::begin();
        {
            let _outer = span_labeled("cli.command", "dos");
            {
                let _inner = span("kpm.moments");
                counter_add("kpm.realizations", 3);
                counter_add("kpm.realizations", 4);
            }
            let _sibling = span("kpm.reconstruct");
        }
        let report = handle.finish();
        assert!(!enabled());
        assert_eq!(report.spans.len(), 3);
        assert_eq!(report.spans[0].name, "cli.command");
        assert_eq!(report.spans[0].detail.as_deref(), Some("dos"));
        assert_eq!(report.spans[0].parent, None);
        assert_eq!(report.spans[1].name, "kpm.moments");
        assert_eq!(report.spans[1].parent, Some(0));
        assert_eq!(report.spans[2].name, "kpm.reconstruct");
        assert_eq!(report.spans[2].parent, Some(0));
        assert_eq!(report.counter("kpm.realizations"), Some(7));
        // Start offsets are monotonic in record order.
        for pair in report.spans.windows(2) {
            assert!(pair[0].start_us <= pair[1].start_us);
        }
    }

    #[test]
    fn stale_guard_from_replaced_session_is_inert() {
        let _lock = locked();
        let old = TraceHandle::begin();
        let stale = span("kpm.moments");
        let new = TraceHandle::begin();
        assert!(old.finish().spans.is_empty(), "replaced handle yields an empty report");
        drop(stale); // must not touch the new session
        let _live = span("kpm.rescale");
        drop(_live);
        let report = new.finish();
        assert_eq!(report.spans.len(), 1);
        assert_eq!(report.spans[0].name, "kpm.rescale");
        assert_eq!(report.spans[0].parent, None);
    }

    #[test]
    fn counter_cell_mirrors_into_session_when_enabled() {
        let _lock = locked();
        static HITS: Counter = Counter::new("serve.cache.hits");
        let before = HITS.get();
        HITS.inc(); // disabled: cell only
        let handle = TraceHandle::begin();
        HITS.add(2); // enabled: cell + session mirror
        let report = handle.finish();
        assert_eq!(HITS.get(), before + 3);
        assert_eq!(report.counter("serve.cache.hits"), Some(2));
    }

    #[test]
    fn json_output_parses_and_roundtrips_fields() {
        let _lock = locked();
        let handle = TraceHandle::begin();
        {
            let _root = span_labeled("cli.command", "dos \"quoted\"");
            let _child = span("kpm.moments");
        }
        let mut report = handle.finish();
        report.command = "dos".to_string();
        report.set_counter("kpm.realizations", 28);

        let value = json::parse(&report.to_json()).expect("trace JSON parses");
        assert_eq!(value.get("version").and_then(json::Value::as_u64), Some(1));
        assert_eq!(value.get("command").and_then(json::Value::as_str), Some("dos"));
        let spans = value.get("spans").and_then(json::Value::as_array).unwrap();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].get("detail").and_then(json::Value::as_str), Some("dos \"quoted\""));
        assert!(spans[0].get("parent").unwrap().is_null());
        assert_eq!(spans[1].get("parent").and_then(json::Value::as_u64), Some(0));
        let counters = value.get("counters").unwrap();
        assert_eq!(counters.get("kpm.realizations").and_then(json::Value::as_u64), Some(28));
    }

    #[test]
    fn gauge_rises_falls_and_saturates_at_zero() {
        static OPEN: Gauge = Gauge::new("net.sessions.open");
        assert_eq!(OPEN.name(), "net.sessions.open");
        assert_eq!(OPEN.inc(), 1);
        assert_eq!(OPEN.inc(), 2);
        OPEN.dec();
        assert_eq!(OPEN.get(), 1);
        OPEN.dec();
        OPEN.dec(); // extra release must not wrap
        assert_eq!(OPEN.get(), 0);
        OPEN.set(7);
        assert_eq!(OPEN.get(), 7);
        OPEN.set(0);
    }

    #[test]
    fn gauge_is_consistent_under_concurrent_inc_dec() {
        let gauge = std::sync::Arc::new(Gauge::new("net.inflight"));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let g = std::sync::Arc::clone(&gauge);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    g.inc();
                    g.dec();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(gauge.get(), 0);
    }

    #[test]
    fn histogram_mean_and_quantiles_match_serve_semantics() {
        let h = Histogram::default();
        for micros in [3u64, 5, 1000] {
            h.record(Duration::from_micros(micros));
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.mean(), Duration::from_micros(336));
        assert_eq!(h.quantile_upper_micros(0.5), 8);
        assert_eq!(h.quantile_upper_micros(1.0), 1024);
        assert_eq!(Histogram::default().quantile_upper_micros(0.9), 0);
    }

    #[test]
    fn cross_thread_spans_are_recorded_without_parent() {
        let _lock = locked();
        let handle = TraceHandle::begin();
        {
            let _root = span("cli.command");
            std::thread::spawn(|| {
                let _worker = span("serve.job");
            })
            .join()
            .unwrap();
        }
        let report = handle.finish();
        let worker = report.spans.iter().find(|s| s.name == "serve.job").unwrap();
        assert_eq!(worker.parent, None);
    }
}
