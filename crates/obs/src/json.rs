//! Minimal hand-rolled JSON writer helpers and parser.
//!
//! The trace schema only needs objects, arrays, strings, numbers, booleans
//! and `null`, so this stays tiny instead of pulling in a dependency. The
//! parser exists for tests and tooling that read trace files back; it
//! accepts standard JSON (with `\uXXXX` escapes, including surrogate
//! pairs) and rejects trailing garbage.

/// Quotes and escapes `s` as a JSON string literal (including the quotes).
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; key order is preserved as written.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object's fields, if it is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// `true` only for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Parses a complete JSON document.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == byte {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", char::from(byte), *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Value::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return Err("unterminated string".to_string());
        };
        *pos += 1;
        match b {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&esc) = bytes.get(*pos) else {
                    return Err("unterminated escape".to_string());
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{0008}'),
                    b'f' => out.push('\u{000c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hi = parse_hex4(bytes, pos)?;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: expect \uXXXX low half.
                            expect(bytes, pos, b'\\')?;
                            expect(bytes, pos, b'u')?;
                            let lo = parse_hex4(bytes, pos)?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err("invalid low surrogate".to_string());
                            }
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else {
                            hi
                        };
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| "invalid unicode escape".to_string())?,
                        );
                    }
                    other => return Err(format!("invalid escape '\\{}'", char::from(other))),
                }
            }
            b if b < 0x80 => out.push(char::from(b)),
            _ => {
                // Multi-byte UTF-8: re-borrow the source slice for the char.
                let rest = std::str::from_utf8(&bytes[*pos - 1..])
                    .map_err(|_| "invalid utf-8 in string".to_string())?;
                let c = rest.chars().next().expect("non-empty utf-8");
                out.push(c);
                *pos += c.len_utf8() - 1;
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, String> {
    if *pos + 4 > bytes.len() {
        return Err("truncated \\u escape".to_string());
    }
    let hex = std::str::from_utf8(&bytes[*pos..*pos + 4])
        .map_err(|_| "invalid \\u escape".to_string())?;
    let v = u32::from_str_radix(hex, 16).map_err(|_| "invalid \\u escape".to_string())?;
    *pos += 4;
    Ok(v)
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quote_escapes_specials() {
        assert_eq!(quote("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(quote("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a": [1, 2.5, -3], "b": {"c": null, "d": true}, "e": "x\ny"}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[1].as_f64(), Some(2.5));
        assert!(v.get("b").unwrap().get("c").unwrap().is_null());
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Value::Bool(true)));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.as_object().unwrap().len(), 3);
    }

    #[test]
    fn roundtrips_quoted_strings() {
        for s in ["plain", "with \"quotes\"", "tab\tnl\n", "unicode μ₀ ✓"] {
            let doc = format!("{{\"k\": {}}}", quote(s));
            let v = parse(&doc).unwrap();
            assert_eq!(v.get("k").unwrap().as_str(), Some(s));
        }
    }

    #[test]
    fn parses_surrogate_pair_escape() {
        let v = parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1, ]").is_err());
        assert!(parse("123 junk").is_err());
        assert!(parse(r#""\q""#).is_err());
    }
}
