//! End-to-end tests of `kpm batch` driving the real binary.

use std::path::{Path, PathBuf};
use std::process::Command;

fn kpm() -> Command {
    Command::new(env!("CARGO_BIN_EXE_kpm"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kpm_batch_it_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_jobs(dir: &Path, name: &str, lines: &[String]) -> PathBuf {
    let path = dir.join(name);
    std::fs::write(&path, lines.join("\n") + "\n").unwrap();
    path
}

/// Pulls `cache : hits N | misses M ...` counters out of the metrics block.
fn cache_counters(report: &str) -> (u64, u64) {
    let line = report
        .lines()
        .find(|l| l.trim_start().starts_with("cache"))
        .unwrap_or_else(|| panic!("no cache line in:\n{report}"));
    let grab = |tag: &str| -> u64 {
        let idx = line.find(tag).unwrap_or_else(|| panic!("no '{tag}' in: {line}"));
        line[idx + tag.len()..]
            .split_whitespace()
            .next()
            .and_then(|w| w.parse().ok())
            .unwrap_or_else(|| panic!("bad counter after '{tag}' in: {line}"))
    };
    (grab("hits"), grab("misses"))
}

#[test]
fn batch_ten_jobs_with_duplicates_panic_and_prefix_reuse() {
    let dir = temp_dir("full");
    let out_csv = dir.join("batch_dos.csv");
    let base = "lattice=chain:48 moments=64 random=4 sets=1 seed=9";
    let jobs = write_jobs(
        &dir,
        "jobs.txt",
        &[
            "# ten-job acceptance workload".to_string(),
            base.to_string(),
            base.to_string(), // exact duplicate -> cache hit
            "lattice=chain:48 moments=32 random=4 sets=1 seed=9".to_string(), // prefix-N hit
            base.to_string(), // another duplicate
            "lattice=chain:48 moments=64 random=4 sets=1 seed=10".to_string(), // new seed -> miss
            "lattice=square:6,6 moments=32 random=4 sets=1 seed=9".to_string(),
            // Kernel is post-processing: excluded from the cache key -> hit.
            "lattice=chain:48 moments=64 random=4 sets=1 seed=9 kernel=lorentz:3".to_string(),
            "lattice=chain:16 moments=16 random=2 sets=1 fault=panic".to_string(),
            format!("lattice=chain:40 moments=48 random=4 sets=1 seed=5 out={}", out_csv.display()),
            "model=dense:24@3 moments=32 random=2 sets=1 backend=stream".to_string(),
        ],
    );

    let output = kpm()
        .args(["batch", jobs.to_str().unwrap(), "--cache-dir"])
        .arg(dir.join("cache"))
        // One worker makes the hit/miss sequence deterministic (duplicates
        // would otherwise race their first computation).
        .args(["--workers", "1", "--retries", "1", "--backoff-ms", "1"])
        .output()
        .unwrap();
    // One injected panic -> jobs-failed exit code (6), report on stderr.
    assert_eq!(
        output.status.code(),
        Some(6),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let report = String::from_utf8_lossy(&output.stderr).into_owned();

    assert!(report.contains("1 job(s) failed"), "{report}");
    assert!(report.contains("injected fault"), "panic should surface as the failure: {report}");
    // The pool survives the panic: the nine other jobs all complete.
    assert!(report.contains("completed 9"), "{report}");
    let (hits, misses) = cache_counters(&report);
    // Two duplicates + prefix-N + kernel variant = four hits.
    assert!(hits >= 4, "expected >= 4 cache hits, got {hits}:\n{report}");
    assert!(misses >= 4, "expected >= 4 misses, got {misses}:\n{report}");

    // Batch `out=` CSV is byte-identical to a one-shot `kpm dos` with the
    // same seed (same pipeline, same shortest-round-trip float rendering).
    let oneshot_csv = dir.join("oneshot_dos.csv");
    let status = kpm()
        .args(["dos", "--lattice", "chain:40", "--moments", "48", "--random", "4"])
        .args(["--sets", "1", "--seed", "5", "--out", oneshot_csv.to_str().unwrap()])
        .status()
        .unwrap();
    assert!(status.success());
    let batch_bytes = std::fs::read(&out_csv).unwrap();
    let oneshot_bytes = std::fs::read(&oneshot_csv).unwrap();
    assert_eq!(batch_bytes, oneshot_bytes, "batch moments must match one-shot dos");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn batch_all_green_exits_zero_and_warm_cache_spills() {
    let dir = temp_dir("green");
    let cache = dir.join("cache");
    let jobs = write_jobs(
        &dir,
        "jobs.txt",
        &[
            "lattice=chain:32 moments=32 random=2 sets=1 seed=4".to_string(),
            "lattice=chain:32 moments=32 random=2 sets=1 seed=4 priority=high".to_string(),
        ],
    );
    let run = || {
        kpm().args(["batch", jobs.to_str().unwrap(), "--cache-dir"]).arg(&cache).output().unwrap()
    };

    let first = run();
    assert_eq!(first.status.code(), Some(0), "{}", String::from_utf8_lossy(&first.stderr));
    let stdout = String::from_utf8_lossy(&first.stdout);
    assert!(stdout.contains("completed 2"), "{stdout}");
    let spilled = std::fs::read_dir(&cache).unwrap().count();
    assert!(spilled >= 1, "cache dir should hold spilled moments");

    // Second process starts cold but loads the spill: all hits, no misses.
    let second = run();
    assert_eq!(second.status.code(), Some(0));
    let (hits, misses) = cache_counters(&String::from_utf8_lossy(&second.stdout));
    assert_eq!((hits, misses), (2, 0), "warm-start run should be all hits");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn batch_rejects_malformed_jobs_file_with_usage_codes() {
    let dir = temp_dir("bad");
    let jobs = write_jobs(&dir, "jobs.txt", &["lattice=blob:3".to_string()]);
    let out = kpm().args(["batch", jobs.to_str().unwrap()]).output().unwrap();
    assert_eq!(out.status.code(), Some(3), "bad lattice family is a spec error");

    let missing = kpm().args(["batch", dir.join("nope.txt").to_str().unwrap()]).output().unwrap();
    assert_eq!(missing.status.code(), Some(5), "unreadable jobs file is an io error");

    let none = kpm().arg("batch").output().unwrap();
    assert_eq!(none.status.code(), Some(1));

    let _ = std::fs::remove_dir_all(&dir);
}
