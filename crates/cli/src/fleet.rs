//! `kpm fleet` — run jobs on a persistent, locality-aware worker fleet.
//!
//! Unlike `kpm batch --local-workers N` (which builds a worker set per
//! job), `fleet` keeps one [`kpm_fleet::Fleet`] alive for the whole run:
//! workers accumulate warm operators and moment rows, the scheduler routes
//! repeat specs to them, and a `--journal DIR` makes an interrupted run
//! resumable with a bitwise-identical merge. Results flow through the same
//! serve stack as `batch`, so `--out` CSVs are byte-identical to an
//! unsharded run.

use crate::args::Args;
use crate::commands::CmdError;
use kpm_fleet::{Fleet, FleetEngine, FleetPolicy};
use kpm_serve::{BatchConfig, BatchService, JobSpec};
use kpm_shard::transport::{loopback_pair, Endpoint};
use kpm_shard::worker::serve_endpoint;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Worker connections for the fleet: `--workers a,b,...` dials TCP
/// workers; otherwise `--local-workers N` (default 2) spawns in-process
/// loopback workers that live as long as the fleet — each keeps its own
/// warm inventory across jobs, which is what locality scoring feeds on.
fn fleet_endpoints(args: &Args) -> Result<Vec<Endpoint>, CmdError> {
    if let Some(v) = args.get("workers") {
        if v.parse::<usize>().is_err() {
            let addrs: Vec<&str> = v.split(',').map(str::trim).filter(|s| !s.is_empty()).collect();
            if addrs.is_empty() {
                return Err(CmdError::Other("--workers: no addresses given".into()));
            }
            return addrs
                .iter()
                .map(|a| Endpoint::connect_tcp(a).map_err(CmdError::Shard))
                .collect();
        }
    }
    let n: usize = args.get_or("local-workers", 2usize)?;
    if n == 0 {
        return Err(CmdError::Other("--local-workers must be positive".into()));
    }
    Ok((0..n)
        .map(|i| {
            let (coord, worker) = loopback_pair(&format!("fleet-local-{i}"));
            std::thread::Builder::new()
                .name(format!("kpm-fleet-worker-{i}"))
                .spawn(move || serve_endpoint(worker))
                .expect("spawn fleet worker");
            coord
        })
        .collect())
}

fn fleet_policy(args: &Args) -> Result<FleetPolicy, CmdError> {
    let mut policy = FleetPolicy::default();
    policy.shards_per_job = args.get_or("shards", policy.shards_per_job)?;
    if policy.shards_per_job == 0 {
        return Err(CmdError::Other("--shards must be positive".into()));
    }
    policy.locality = !args.flag("no-locality");
    // Crash-injection knob for restart drills (CI and operators): the
    // coordinator process aborts scheduling after N journaled results,
    // leaving the journal for a `--journal`-matched restart to replay.
    let kill: usize = args.get_or("kill-after", 0usize)?;
    if kill > 0 {
        policy.kill_after_results = Some(kill);
    }
    Ok(policy)
}

fn start_fleet(args: &Args) -> Result<Fleet, CmdError> {
    let endpoints = fleet_endpoints(args)?;
    let journal = args.get("journal").map(PathBuf::from);
    Fleet::start(endpoints, fleet_policy(args)?, journal.as_deref()).map_err(CmdError::Fleet)
}

/// Serve-side config for the fleet front-end. `--workers` is the fleet's
/// address list here, never a thread count, so the pool size stays on auto
/// unless `--queue`/friends say otherwise.
fn service_config(args: &Args) -> Result<BatchConfig, CmdError> {
    Ok(BatchConfig {
        workers: 0,
        queue_capacity: args.get_or("queue", 256usize)?,
        timeout: Duration::from_secs_f64(args.get_or("timeout-secs", 300.0)?),
        max_retries: args.get_or("retries", 2u32)?,
        backoff_base: Duration::from_millis(args.get_or("backoff-ms", 20u64)?),
        cache_capacity: args.get_or("cache-capacity", 128usize)?,
        cache_dir: match args.get("cache-dir") {
            Some("none") => None,
            Some(dir) => Some(PathBuf::from(dir)),
            None => Some(PathBuf::from("results/cache")),
        },
    })
}

/// `kpm fleet <jobs-file>` (or `--listen ADDR`): the batch/serve front-end
/// with the fleet as the moment engine.
pub fn fleet(args: &Args, positionals: &[String]) -> Result<String, CmdError> {
    if let Some(listen) = args.get("listen") {
        return fleet_listen(args, listen);
    }
    let Some(path) = positionals.first().map(String::as_str).or_else(|| args.get("jobs")) else {
        return Err(CmdError::Other(
            "usage: kpm fleet <jobs-file> [--local-workers N | --workers A,B,...] \
             [--journal DIR] [--no-locality] | kpm fleet --listen ADDR [...]"
                .into(),
        ));
    };
    if positionals.len() > 1 {
        return Err(CmdError::Other(format!("unexpected argument '{}'", positionals[1])));
    }
    let default_bounds = crate::batch::default_bounds_flag(args)?;
    let text = std::fs::read_to_string(path)?;
    let mut specs = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let line = crate::batch::with_default_bounds(line, default_bounds.as_deref());
        specs.push(JobSpec::parse(&line).map_err(|e| match e {
            kpm_serve::JobParseError::Spec(s) => CmdError::Spec(s),
            other => CmdError::Other(format!("jobs line {}: {other}", idx + 1)),
        })?);
    }
    if specs.is_empty() {
        return Err(CmdError::Other(format!("{path}: no jobs found")));
    }

    let fleet = start_fleet(args)?;
    let engine: Arc<dyn kpm_serve::MomentEngine> = Arc::new(FleetEngine::new(fleet.client()));
    let service = BatchService::start_with_engine(service_config(args)?, Some(engine));
    let total = specs.len();
    for spec in specs {
        loop {
            match service.submit(spec.clone()) {
                Ok(_) => break,
                Err(full) => std::thread::sleep(full.retry_after.min(Duration::from_millis(500))),
            }
        }
    }
    let report = service.finish();
    let stats_line =
        fleet.shutdown().map_or_else(String::new, |s| format!("{}\n", s.render_json()));
    let text = format!("fleet of {total} jobs from {path}:\n{}{stats_line}", report.render());
    let failed = report.failed();
    if failed > 0 {
        Err(CmdError::Jobs { failed, report: text })
    } else {
        Ok(text)
    }
}

/// `kpm fleet --listen ADDR` — a `KPNT` network front-end whose jobs run
/// on the fleet. Same drain-on-SIGINT behavior as `kpm serve --listen`.
fn fleet_listen(args: &Args, listen: &str) -> Result<String, CmdError> {
    let fleet = start_fleet(args)?;
    let engine: Arc<dyn kpm_serve::MomentEngine> = Arc::new(FleetEngine::new(fleet.client()));
    let net_config =
        kpm_net::NetConfig { max_inflight_per_session: args.get_or("max-inflight", 32usize)? };
    let server =
        kpm_net::NetServer::start(listen, service_config(args)?, Some(engine), net_config)?;
    eprintln!("kpm fleet listening on {}", server.local_addr());
    crate::batch::wait_for_interrupt();
    let report = server.finish();
    let stats_line =
        fleet.shutdown().map_or_else(String::new, |s| format!("{}\n", s.render_json()));
    let text = format!(
        "fleet --listen {listen}: interrupted; sessions closed, in-flight drained:\n{}{stats_line}",
        report.render()
    );
    let failed = report.failed();
    if failed > 0 {
        Err(CmdError::Jobs { failed, report: text })
    } else {
        Ok(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(words: &[&str]) -> Args {
        Args::parse(words.iter().map(|s| s.to_string())).unwrap()
    }

    fn write_jobs(tag: &str, lines: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("kpm-cli-fleet-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("jobs.txt");
        std::fs::write(&path, lines).unwrap();
        path
    }

    #[test]
    fn fleet_requires_a_jobs_file_or_listen() {
        let err = fleet(&args(&[]), &[]).unwrap_err();
        assert!(err.to_string().contains("usage"), "{err}");
    }

    #[test]
    fn fleet_rejects_zero_workers_and_zero_shards() {
        let jobs = write_jobs("validate", "lattice=chain:16 moments=16 sets=1\n");
        let p = jobs.to_str().unwrap().to_string();
        for bad in [vec!["--local-workers", "0"], vec!["--shards", "0"]] {
            let mut words = bad.clone();
            words.extend_from_slice(&["--cache-dir", "none"]);
            let err = fleet(&args(&words), std::slice::from_ref(&p)).unwrap_err();
            assert!(err.to_string().contains("positive"), "{bad:?}: {err}");
        }
        let _ = std::fs::remove_dir_all(jobs.parent().unwrap());
    }

    /// The acceptance criterion at the CLI surface: `kpm fleet` writes
    /// byte-identical `--out` CSVs to `kpm batch`, journal or not.
    #[test]
    fn fleet_csvs_match_batch_byte_for_byte() {
        let dir = std::env::temp_dir().join(format!("kpm-cli-fleet-csv-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let out = |name: &str| dir.join(name).to_str().unwrap().to_string();
        let jobs_for = |tag: &str| {
            let lines = format!(
                "lattice=chain:48 moments=24 random=3 sets=2 seed=11 out={}\n\
                 lattice=chain:32 moments=16 random=2 sets=2 seed=7 out={}\n",
                out(&format!("a_{tag}.csv")),
                out(&format!("b_{tag}.csv")),
            );
            let path = dir.join(format!("jobs_{tag}.txt"));
            std::fs::write(&path, lines).unwrap();
            path.to_str().unwrap().to_string()
        };

        let batch_jobs = jobs_for("batch");
        crate::batch::batch(&args(&["--cache-dir", "none"]), &[batch_jobs]).unwrap();

        let fleet_jobs = jobs_for("fleet");
        let journal = dir.join("journal");
        let a = args(&[
            "--cache-dir",
            "none",
            "--local-workers",
            "2",
            "--journal",
            journal.to_str().unwrap(),
        ]);
        let report = fleet(&a, &[fleet_jobs]).unwrap();
        assert!(report.contains("\"kind\":\"fleet-stats\""), "{report}");

        for name in ["a", "b"] {
            assert_eq!(
                std::fs::read(dir.join(format!("{name}_fleet.csv"))).unwrap(),
                std::fs::read(dir.join(format!("{name}_batch.csv"))).unwrap(),
                "{name}: fleet CSV must match batch bytes"
            );
        }
        assert!(journal.join("journal.log").exists(), "journal must be written");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn no_locality_flag_disables_warm_routing() {
        let p = fleet_policy(&args(&["--no-locality"])).unwrap();
        assert!(!p.locality);
        let p = fleet_policy(&args(&[])).unwrap();
        assert!(p.locality);
        assert_eq!(fleet_policy(&args(&["--shards", "7"])).unwrap().shards_per_job, 7);
        assert_eq!(p.kill_after_results, None);
        let p = fleet_policy(&args(&["--kill-after", "2"])).unwrap();
        assert_eq!(p.kill_after_results, Some(2));
    }
}
