//! Minimal `--key value` / `--flag` argument parser (no external
//! dependencies, per the workspace policy).

use std::collections::BTreeMap;
use std::fmt;

/// Argument parsing errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// A `--key` had no value.
    MissingValue(String),
    /// A positional argument appeared where none is accepted.
    UnexpectedPositional(String),
    /// A value failed to parse.
    BadValue {
        /// Offending key.
        key: String,
        /// Raw value.
        value: String,
        /// What was expected.
        expected: &'static str,
    },
    /// A required key was absent.
    Required(String),
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::MissingValue(k) => write!(f, "--{k} needs a value"),
            ArgError::UnexpectedPositional(p) => write!(f, "unexpected argument: {p}"),
            ArgError::BadValue { key, value, expected } => {
                write!(f, "--{key} {value}: expected {expected}")
            }
            ArgError::Required(k) => write!(f, "missing required option --{k}"),
        }
    }
}

impl std::error::Error for ArgError {}

/// Parsed `--key value` options plus boolean flags.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: BTreeMap<String, String>,
    flags: Vec<String>,
}

/// Keys that are boolean flags (no value).
const FLAGS: &[&str] = &["full", "help", "no-locality", "no-tune", "once", "quiet", "stats"];

impl Args {
    /// Parses raw arguments (after the subcommand).
    ///
    /// # Errors
    /// [`ArgError`] on malformed input.
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Self, ArgError> {
        let (args, positionals) = Self::parse_with_positionals(raw)?;
        match positionals.into_iter().next() {
            None => Ok(args),
            Some(p) => Err(ArgError::UnexpectedPositional(p)),
        }
    }

    /// Like [`Args::parse`], but collects bare (non `--key`) arguments
    /// instead of rejecting them — for commands that take positionals, like
    /// `kpm batch <jobs-file>`.
    ///
    /// # Errors
    /// [`ArgError`] on malformed `--key` options.
    pub fn parse_with_positionals<I: IntoIterator<Item = String>>(
        raw: I,
    ) -> Result<(Self, Vec<String>), ArgError> {
        let mut out = Args::default();
        let mut positionals = Vec::new();
        let mut iter = raw.into_iter().peekable();
        while let Some(a) = iter.next() {
            if let Some(key) = a.strip_prefix("--") {
                if FLAGS.contains(&key) {
                    out.flags.push(key.to_string());
                } else {
                    let v = iter.next().ok_or_else(|| ArgError::MissingValue(key.into()))?;
                    out.values.insert(key.to_string(), v);
                }
            } else {
                positionals.push(a);
            }
        }
        Ok((out, positionals))
    }

    /// Raw string value.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(|s| s.as_str())
    }

    /// Sets (or overwrites) a value — for commands that fold a positional
    /// argument into a keyed option, like `kpm tune <lattice>`.
    pub fn set(&mut self, key: &str, value: &str) {
        self.values.insert(key.to_string(), value.to_string());
    }

    /// `true` if the flag was given.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    /// Parsed value with a default.
    ///
    /// # Errors
    /// [`ArgError::BadValue`] if present but unparsable.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError::BadValue {
                key: key.into(),
                value: v.into(),
                expected: std::any::type_name::<T>(),
            }),
        }
    }

    /// Required parsed value.
    ///
    /// # Errors
    /// [`ArgError::Required`] if absent, [`ArgError::BadValue`] if
    /// unparsable.
    pub fn require<T: std::str::FromStr>(&self, key: &str) -> Result<T, ArgError> {
        let v = self.get(key).ok_or_else(|| ArgError::Required(key.into()))?;
        v.parse().map_err(|_| ArgError::BadValue {
            key: key.into(),
            value: v.into(),
            expected: std::any::type_name::<T>(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Result<Args, ArgError> {
        Args::parse(words.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_key_values_and_flags() {
        let a = parse(&["--moments", "256", "--full", "--seed", "7"]).unwrap();
        assert_eq!(a.get("moments"), Some("256"));
        assert!(a.flag("full"));
        assert!(!a.flag("quiet"));
        assert_eq!(a.get_or::<usize>("seed", 0).unwrap(), 7);
    }

    #[test]
    fn defaults_apply_when_absent() {
        let a = parse(&[]).unwrap();
        assert_eq!(a.get_or::<usize>("moments", 128).unwrap(), 128);
        assert_eq!(a.get_or::<f64>("padding", 0.01).unwrap(), 0.01);
    }

    #[test]
    fn missing_value_rejected() {
        match parse(&["--moments"]) {
            Err(ArgError::MissingValue(k)) => assert_eq!(k, "moments"),
            other => panic!("expected MissingValue, got {other:?}"),
        }
    }

    #[test]
    fn positional_rejected() {
        assert!(matches!(parse(&["oops"]), Err(ArgError::UnexpectedPositional(_))));
    }

    #[test]
    fn positionals_collected_when_requested() {
        let raw = ["jobs.txt", "--workers", "2", "more"].iter().map(|s| s.to_string());
        let (args, positionals) = Args::parse_with_positionals(raw).unwrap();
        assert_eq!(positionals, vec!["jobs.txt".to_string(), "more".to_string()]);
        assert_eq!(args.get("workers"), Some("2"));
    }

    #[test]
    fn bad_value_reports_key() {
        let a = parse(&["--moments", "many"]).unwrap();
        let e = a.require::<usize>("moments").unwrap_err();
        assert!(matches!(e, ArgError::BadValue { .. }));
        assert!(e.to_string().contains("moments"));
    }

    #[test]
    fn required_missing_reports() {
        let a = parse(&[]).unwrap();
        assert_eq!(a.require::<usize>("site").unwrap_err(), ArgError::Required("site".into()));
    }
}
