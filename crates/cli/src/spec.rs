//! Lattice specification parsing — re-exported from [`kpm_lattice::spec`].
//!
//! The parser moved into `kpm-lattice` so the batch-serving job format
//! (`kpm-serve`) and the CLI share one definition of what a spec string
//! means; this module keeps the historical `kpm_cli::spec` paths working.

pub use kpm_lattice::spec::{parse_boundary, LatticeSpec, SpecError};
