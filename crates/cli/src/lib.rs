//! Library backing the `kpm` command-line tool.
//!
//! Kept as a library so argument parsing, lattice-spec parsing, and command
//! execution are unit-testable; `main.rs` is a thin shim.

pub mod args;
pub mod batch;
pub mod commands;
pub mod fleet;
pub mod spec;

pub use args::{ArgError, Args};
pub use spec::{LatticeSpec, SpecError};
