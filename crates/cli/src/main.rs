//! The `kpm` command-line tool. See [`kpm_cli::commands::USAGE`].

use kpm_cli::commands;
use kpm_cli::Args;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut argv = std::env::args().skip(1);
    let Some(command) = argv.next() else {
        eprintln!("{}", commands::USAGE);
        return ExitCode::FAILURE;
    };
    let args = match Args::parse(argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match commands::run(&command, &args) {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
