//! The `kpm` command-line tool. See [`kpm_cli::commands::USAGE`].
//!
//! Exit codes distinguish failure classes (see `USAGE`): 2 for argument
//! errors, 3 for lattice-spec errors, 4 for KPM failures, 5 for I/O, 6 when
//! a batch/serve run completed with failed jobs, 1 otherwise.

use kpm_cli::commands;
use kpm_cli::Args;
use std::process::ExitCode;

fn main() -> ExitCode {
    let argv = std::env::args().skip(1);
    let mut it = argv.into_iter();
    let Some(command) = it.next() else {
        eprintln!("{}", commands::USAGE);
        return ExitCode::from(2);
    };
    let (args, positionals) = match Args::parse_with_positionals(it) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    match commands::run_with_positionals(&command, &args, &positionals) {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}
