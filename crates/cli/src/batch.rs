//! `kpm batch`, `kpm serve`, and `kpm submit` — front-ends to the
//! [`kpm_serve`] and [`kpm_net`] subsystems.
//!
//! `batch` executes a jobs file (one `key=value...` spec per line, `#`
//! comments) through the worker pool and prints the per-job table plus
//! service metrics. `serve` reads the same lines from stdin until EOF or
//! SIGINT; on SIGINT pending jobs are cancelled, in-flight jobs finish, the
//! cache is flushed, and the metrics block is printed — a graceful drain in
//! both cases. With `--listen ADDR`, `serve` instead accepts concurrent
//! `KPNT` client sessions over TCP ([`kpm_net::NetServer`]) until SIGINT;
//! `submit` is the matching one-shot client.

use crate::args::Args;
use crate::commands::CmdError;
use kpm_serve::{BatchConfig, BatchReport, BatchService, JobParseError, JobSpec};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Service options shared by `batch` and `serve`. A non-numeric `--workers`
/// value is a shard-worker address list (handled by
/// [`crate::commands::shard_engine`]), not a thread count — the pool size
/// then stays on auto.
fn service_config(args: &Args) -> Result<BatchConfig, CmdError> {
    Ok(BatchConfig {
        workers: args.get("workers").and_then(|v| v.parse().ok()).unwrap_or(0),
        queue_capacity: args.get_or("queue", 256usize)?,
        timeout: Duration::from_secs_f64(args.get_or("timeout-secs", 300.0)?),
        max_retries: args.get_or("retries", 2u32)?,
        backoff_base: Duration::from_millis(args.get_or("backoff-ms", 20u64)?),
        cache_capacity: args.get_or("cache-capacity", 128usize)?,
        cache_dir: match args.get("cache-dir") {
            Some("none") => None,
            Some(dir) => Some(PathBuf::from(dir)),
            None => Some(PathBuf::from("results/cache")),
        },
    })
}

/// Starts the batch service, routing moment computation through a sharded
/// worker fleet when `--local-workers` / `--workers ADDR,...` selects one.
fn start_service(args: &Args) -> Result<BatchService, CmdError> {
    let engine = crate::commands::shard_engine(args)?
        .map(|e| std::sync::Arc::new(e) as std::sync::Arc<dyn kpm_serve::MomentEngine>);
    Ok(BatchService::start_with_engine(service_config(args)?, engine))
}

/// Validates `--bounds` once up front and returns its canonical spelling,
/// so a typo fails the whole run instead of every line.
pub(crate) fn default_bounds_flag(args: &Args) -> Result<Option<String>, CmdError> {
    match args.get("bounds") {
        None => Ok(None),
        Some(v) => {
            let method: kpm::BoundsMethod = v.parse().map_err(CmdError::Kpm)?;
            Ok(Some(method.to_string()))
        }
    }
}

/// Applies `--bounds` as the *default* spectral-bounds provider for a job
/// line: a line carrying its own `bounds=` keeps it, everything else gets
/// the flag value appended.
pub(crate) fn with_default_bounds(line: &str, bounds: Option<&str>) -> String {
    match bounds {
        Some(b) if !line.split_whitespace().any(|t| t.starts_with("bounds=")) => {
            format!("{line} bounds={b}")
        }
        _ => line.to_string(),
    }
}

fn job_parse_err(lineno: usize, e: JobParseError) -> CmdError {
    match e {
        JobParseError::Spec(spec) => CmdError::Spec(spec),
        other => CmdError::Other(format!("jobs line {lineno}: {other}")),
    }
}

/// Submits with bounded waiting under backpressure: sleeps the queue's
/// `retry_after` hint (capped) and retries — the file driver has nowhere
/// else to put the job.
fn submit_blocking(service: &BatchService, spec: JobSpec) {
    loop {
        match service.submit(spec.clone()) {
            Ok(_) => return,
            Err(full) => std::thread::sleep(full.retry_after.min(Duration::from_millis(500))),
        }
    }
}

fn finish_report(report: &BatchReport, header: String) -> Result<String, CmdError> {
    let text = format!("{header}\n{}", report.render());
    let failed = report.failed();
    if failed > 0 {
        Err(CmdError::Jobs { failed, report: text })
    } else {
        Ok(text)
    }
}

/// `kpm batch <jobs-file>`.
pub fn batch(args: &Args, positionals: &[String]) -> Result<String, CmdError> {
    let Some(path) = positionals.first().map(String::as_str).or_else(|| args.get("jobs")) else {
        return Err(CmdError::Other("usage: kpm batch <jobs-file> [options]".into()));
    };
    if positionals.len() > 1 {
        return Err(CmdError::Other(format!("unexpected argument '{}'", positionals[1])));
    }
    let default_bounds = default_bounds_flag(args)?;
    let text = std::fs::read_to_string(path)?;
    let mut specs = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let line = with_default_bounds(line, default_bounds.as_deref());
        specs.push(JobSpec::parse(&line).map_err(|e| job_parse_err(idx + 1, e))?);
    }
    if specs.is_empty() {
        return Err(CmdError::Other(format!("{path}: no jobs found")));
    }

    let service = start_service(args)?;
    let total = specs.len();
    for spec in specs {
        submit_blocking(&service, spec);
    }
    let report = service.finish();
    finish_report(&report, format!("batch of {total} jobs from {path}:"))
}

static INTERRUPTED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_sigint() {
    extern "C" fn on_sigint(_sig: i32) {
        INTERRUPTED.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    unsafe {
        signal(SIGINT, on_sigint);
    }
}

#[cfg(not(unix))]
fn install_sigint() {}

/// `kpm serve` — accept job lines on stdin until EOF or SIGINT.
pub fn serve(args: &Args) -> Result<String, CmdError> {
    let quiet = args.flag("quiet");
    let metrics_every = match args.get("metrics-every-secs") {
        None => None,
        Some(_) => {
            let secs: f64 = args.get_or("metrics-every-secs", 0.0)?;
            if secs <= 0.0 {
                return Err(CmdError::Other("--metrics-every-secs must be positive".into()));
            }
            Some(Duration::from_secs_f64(secs))
        }
    };
    if let Some(listen) = args.get("listen") {
        return serve_listen(args, listen, metrics_every);
    }
    let default_bounds = default_bounds_flag(args)?;
    let service = start_service(args)?;
    install_sigint();
    INTERRUPTED.store(false, Ordering::SeqCst);

    // Stdin is read on its own thread so the main loop can poll the SIGINT
    // flag; a blocked read would otherwise pin us until the next line.
    let (tx, rx) = mpsc::channel::<String>();
    std::thread::spawn(move || {
        use std::io::BufRead as _;
        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            let Ok(line) = line else { break };
            if tx.send(line).is_err() {
                break;
            }
        }
    });

    let mut accepted = 0usize;
    let mut next_dump = metrics_every.map(|every| Instant::now() + every);
    let interrupted = loop {
        if INTERRUPTED.load(Ordering::SeqCst) {
            break true;
        }
        if let (Some(every), Some(at)) = (metrics_every, next_dump) {
            if Instant::now() >= at {
                eprintln!("{}", service.metrics_json());
                next_dump = Some(at + every);
            }
        }
        match rx.recv_timeout(Duration::from_millis(100)) {
            Err(mpsc::RecvTimeoutError::Timeout) => continue,
            // SIGINT often kills the stdin producer too (pipelines share the
            // foreground process group), so EOF and the signal race; prefer
            // the abort path whenever the signal arrived.
            Err(mpsc::RecvTimeoutError::Disconnected) => break INTERRUPTED.load(Ordering::SeqCst),
            Ok(line) => {
                let line = line.trim();
                if line.is_empty() || line.starts_with('#') {
                    continue;
                }
                if line == "quit" || line == "exit" {
                    break false;
                }
                match JobSpec::parse(&with_default_bounds(line, default_bounds.as_deref())) {
                    Err(e) => eprintln!("rejected: {e}"),
                    Ok(spec) => match service.submit(spec) {
                        Ok(id) => {
                            accepted += 1;
                            if !quiet {
                                eprintln!(
                                    "accepted job {id} (queue depth {})",
                                    service.queue_depth()
                                );
                            }
                        }
                        Err(full) => eprintln!("rejected: {full}"),
                    },
                }
            }
        }
    };

    let (report, verb) = if interrupted {
        (service.abort(), "interrupted; pending jobs cancelled, in-flight drained")
    } else {
        (service.finish(), "stdin closed; queue drained")
    };
    finish_report(&report, format!("serve: {verb} ({accepted} jobs accepted):"))
}

/// Installs the SIGINT handler and blocks until it fires — the shared
/// wait used by the long-running listeners (`serve --listen`,
/// `fleet --listen`).
pub(crate) fn wait_for_interrupt() {
    install_sigint();
    INTERRUPTED.store(false, Ordering::SeqCst);
    while !INTERRUPTED.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// `kpm serve --listen ADDR` — accept concurrent `KPNT` client sessions
/// over TCP until SIGINT, then drain accepted work and report.
fn serve_listen(
    args: &Args,
    listen: &str,
    metrics_every: Option<Duration>,
) -> Result<String, CmdError> {
    let engine = crate::commands::shard_engine(args)?
        .map(|e| std::sync::Arc::new(e) as std::sync::Arc<dyn kpm_serve::MomentEngine>);
    let net_config =
        kpm_net::NetConfig { max_inflight_per_session: args.get_or("max-inflight", 32usize)? };
    let server = kpm_net::NetServer::start(listen, service_config(args)?, engine, net_config)?;
    eprintln!("kpm serve listening on {}", server.local_addr());
    install_sigint();
    INTERRUPTED.store(false, Ordering::SeqCst);

    let mut next_dump = metrics_every.map(|every| Instant::now() + every);
    while !INTERRUPTED.load(Ordering::SeqCst) {
        if let (Some(every), Some(at)) = (metrics_every, next_dump) {
            if Instant::now() >= at {
                eprintln!("{}", server.stats_json());
                next_dump = Some(at + every);
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    let report = server.finish();
    finish_report(
        &report,
        format!("serve --listen {listen}: interrupted; sessions closed, in-flight drained:"),
    )
}

/// `kpm submit` — send one job line to a `kpm serve --listen` server and
/// print each streamed refinement step in order.
pub fn submit(args: &Args, positionals: &[String]) -> Result<String, CmdError> {
    let spec_line = match (args.get("spec"), positionals.is_empty()) {
        (Some(_), false) => {
            return Err(CmdError::Other(
                "pass the job line either positionally or via --spec, not both".into(),
            ))
        }
        (Some(s), true) => s.to_string(),
        (None, false) => positionals.join(" "),
        (None, true) => {
            return Err(CmdError::Other(
                "usage: kpm submit 'lattice=... moments=...' [--addr HOST:PORT] [--refine N]"
                    .into(),
            ))
        }
    };
    let spec_line = with_default_bounds(&spec_line, default_bounds_flag(args)?.as_deref());
    let addr = args.get("addr").unwrap_or("127.0.0.1:7080");
    let stream = args.get("stream").unwrap_or("cli");
    let refine: u32 = args.get_or("refine", 1u32)?;

    let mut client = kpm_net::NetClient::connect(addr)?;
    let completions = client.submit_and_collect(stream, 1, &spec_line, refine)?;
    let mut report = format!("submitted to {addr} on stream '{stream}': {spec_line}\n");
    for c in &completions {
        let _ = writeln!(
            report,
            "  step {}/{}: N = {:>5}  samples = {}  band = [{:.4}, {:.4}]  integral = {:.5}  peak E = {:.4}",
            c.step + 1,
            c.of,
            c.n,
            c.samples,
            c.a_plus - c.a_minus,
            c.a_plus + c.a_minus,
            c.integral,
            c.peak_energy,
        );
    }
    if args.flag("stats") {
        client.stats(0)?;
        loop {
            if let kpm_net::NetFrame::StatsReply { json, .. } = client.recv()? {
                report.push_str(&json);
                report.push('\n');
                break;
            }
        }
    }
    client.goodbye()?;
    while !matches!(client.recv()?, kpm_net::NetFrame::Bye) {}
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kpm_net::{NetClient, NetConfig, NetFrame, NetServer};

    fn args(words: &[&str]) -> Args {
        Args::parse(words.iter().map(|s| s.to_string())).unwrap()
    }

    fn quick_config() -> BatchConfig {
        BatchConfig { workers: 2, max_retries: 0, ..BatchConfig::default() }
    }

    #[test]
    fn bounds_flag_is_the_default_for_job_lines() {
        assert_eq!(
            with_default_bounds("lattice=chain:8", Some("lanczos:24")),
            "lattice=chain:8 bounds=lanczos:24"
        );
        // Per-line values win over the flag.
        assert_eq!(
            with_default_bounds("lattice=chain:8 bounds=gershgorin", Some("lanczos:24")),
            "lattice=chain:8 bounds=gershgorin"
        );
        assert_eq!(with_default_bounds("lattice=chain:8", None), "lattice=chain:8");
        // The flag is validated once up front and canonicalized.
        assert!(default_bounds_flag(&args(&["--bounds", "psychic"])).is_err());
        assert_eq!(
            default_bounds_flag(&args(&["--bounds", "lanczos"])).unwrap().as_deref(),
            Some("lanczos:64")
        );
        assert_eq!(default_bounds_flag(&args(&[])).unwrap(), None);
    }

    /// `kpm batch --bounds X` produces the same bytes as spelling
    /// `bounds=X` on every job line.
    #[test]
    fn batch_bounds_flag_matches_per_line_bounds() {
        let dir = std::env::temp_dir().join(format!("kpm-cli-batch-bounds-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let run = |tag: &str, line_suffix: &str, flags: &[&str]| {
            let out = dir.join(format!("{tag}.csv"));
            let jobs = dir.join(format!("jobs_{tag}.txt"));
            let line = format!(
                "lattice=chain:32 disorder=5@3 moments=16 random=2 sets=1 seed=5{line_suffix} out={}\n",
                out.to_str().unwrap()
            );
            std::fs::write(&jobs, line).unwrap();
            let mut words = vec!["--cache-dir", "none"];
            words.extend_from_slice(flags);
            batch(&args(&words), &[jobs.to_str().unwrap().to_string()]).unwrap();
            std::fs::read(&out).unwrap()
        };
        let flagged = run("flag", "", &["--bounds", "lanczos:24"]);
        let inline = run("inline", " bounds=lanczos:24", &[]);
        let gersh = run("gersh", "", &[]);
        assert_eq!(flagged, inline, "--bounds must equal per-line bounds=");
        assert_ne!(flagged, gersh, "lanczos window must differ from gershgorin on disorder");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn submit_streams_a_refinement_ladder_and_reports_stats() {
        let server =
            NetServer::start("127.0.0.1:0", quick_config(), None, NetConfig::default()).unwrap();
        let addr = server.local_addr().to_string();
        let a = args(&["--addr", &addr, "--refine", "2", "--stats"]);
        let report =
            submit(&a, &["lattice=chain:24 moments=64 random=1 sets=1".to_string()]).unwrap();
        assert!(report.contains("step 1/2: N =    16"), "{report}");
        assert!(report.contains("step 2/2: N =    64"), "{report}");
        assert!(report.contains("\"kind\":\"net-stats\""), "{report}");
        let rep = server.finish();
        assert_eq!(rep.failed(), 0, "{}", rep.render());
    }

    #[test]
    fn submit_maps_connect_failure_to_exit_code_8() {
        // TEST-NET-3 (RFC 5737) is unroutable; localhost port 1 refuses.
        let a = args(&["--addr", "127.0.0.1:1"]);
        let err = submit(&a, &["lattice=chain:8 moments=16".to_string()]).unwrap_err();
        assert!(matches!(err, CmdError::Net(kpm_net::NetError::Io(_))), "{err}");
        assert_eq!(err.exit_code(), 8);
    }

    #[test]
    fn submit_surfaces_server_rejection_with_exit_code_8() {
        let server =
            NetServer::start("127.0.0.1:0", quick_config(), None, NetConfig::default()).unwrap();
        let addr = server.local_addr().to_string();
        let a = args(&["--addr", &addr]);
        let err = submit(&a, &["lattice=moebius:7".to_string()]).unwrap_err();
        assert!(matches!(err, CmdError::Net(kpm_net::NetError::Rejected { .. })), "{err}");
        assert_eq!(err.exit_code(), 8);
        server.finish();
    }

    #[test]
    fn submit_requires_exactly_one_spec_source() {
        let err = submit(&args(&[]), &[]).unwrap_err();
        assert!(err.to_string().contains("usage"), "{err}");
        let err =
            submit(&args(&["--spec", "lattice=chain:8"]), &["lattice=chain:8".into()]).unwrap_err();
        assert!(err.to_string().contains("not both"), "{err}");
    }

    /// End-to-end through the CLI surface: `kpm serve --listen` on a free
    /// port, a network client runs a job, SIGINT (simulated via the same
    /// flag the handler sets) drains the server and yields the report.
    #[test]
    fn serve_listen_accepts_network_clients_and_drains_on_interrupt() {
        let port = {
            let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            probe.local_addr().unwrap().port()
        };
        let addr = format!("127.0.0.1:{port}");
        let handle = {
            let listen = addr.clone();
            std::thread::spawn(move || {
                let a = args(&[
                    "--listen",
                    &listen,
                    "--workers",
                    "2",
                    "--retries",
                    "0",
                    "--cache-dir",
                    "none",
                ]);
                serve(&a)
            })
        };

        // The listener comes up asynchronously; retry the connect briefly.
        let mut client = loop {
            match NetClient::connect(&addr) {
                Ok(c) => break c,
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
        };
        let completions = client
            .submit_and_collect("s", 3, "lattice=chain:16 moments=32 random=1 sets=1", 1)
            .unwrap();
        assert_eq!(completions.len(), 1);
        client.goodbye().unwrap();
        assert!(matches!(client.recv().unwrap(), NetFrame::Bye));

        INTERRUPTED.store(true, Ordering::SeqCst);
        let report = handle.join().unwrap().unwrap();
        assert!(report.contains("serve --listen"), "{report}");
        assert!(report.contains("in-flight drained"), "{report}");
    }
}
